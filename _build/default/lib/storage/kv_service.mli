(** The replicated key-value service: {!Kv_op} semantics as an
    {!Auth_store.apply} function, plus convenience constructors. *)

val apply : Auth_store.apply
(** [Put] stores and returns ["ok"]; [Get] returns the value or [""];
    [Noop] and undecodable operations return [""] without touching the
    state (undecodable operations cannot abort the state machine — all
    replicas must stay in lock step). *)

val create : unit -> Auth_store.t
(** Fresh authenticated store running the KV service. *)

val put : key:string -> value:string -> string
(** Encoded [Put] operation. *)

val get : key:string -> string
val noop : string
