lib/storage/kv_op.ml: Codec Format Fun List Option Sbft_wire String
