lib/storage/auth_store.mli: Lazy Sbft_crypto
