lib/storage/kv_service.mli: Auth_store
