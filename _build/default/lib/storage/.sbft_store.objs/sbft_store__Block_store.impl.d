lib/storage/block_store.ml: Hashtbl Lazy List String
