lib/storage/kv_op.mli: Format
