lib/storage/kv_service.ml: Auth_store Kv_op List Option Sbft_crypto
