lib/storage/auth_store.ml: Array Codec Hashtbl List Merkle Merkle_map Option Printf Sbft_crypto Sbft_wire Sha256 String
