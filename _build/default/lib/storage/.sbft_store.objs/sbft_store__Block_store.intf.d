lib/storage/block_store.mli: Lazy
