(** Ledger of committed decision blocks with commit certificates.

    Each replica persists committed blocks (the paper writes them to
    RocksDB); the block store also serves state transfer: a lagging
    replica fetches a checkpoint snapshot plus the blocks after it.
    Retention is bounded by the checkpoint protocol via {!prune_below}. *)

type certificate =
  | Fast of string  (** σ(h) combined signature bytes *)
  | Slow of string  (** τ(τ(h)) combined signature bytes *)

type entry = {
  seq : int;
  view : int;
  ops : string list;
  cert : certificate;
}

type t

val create : unit -> t

val add : t -> entry -> unit
(** Idempotent per sequence number (first write wins). *)

val find : t -> int -> entry option
val mem : t -> int -> bool
val highest : t -> int
(** Highest stored sequence number; 0 when empty. *)

val prune_below : t -> int -> unit

val set_checkpoint : t -> seq:int -> snapshot:string Lazy.t -> unit
(** Retains the latest stable checkpoint snapshot (serialized only when
    first served). *)

val checkpoint : t -> (int * string Lazy.t) option

val entry_size : entry -> int
(** Approximate persisted size in bytes (for disk-cost accounting). *)
