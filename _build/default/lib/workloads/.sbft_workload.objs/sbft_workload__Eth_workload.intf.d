lib/workloads/eth_workload.mli: Sbft_core Sbft_sim
