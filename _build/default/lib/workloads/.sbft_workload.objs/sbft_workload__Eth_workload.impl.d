lib/workloads/eth_workload.ml: Char Contracts Evm_service Lazy List Printf Sbft_core Sbft_crypto Sbft_evm Sbft_store State String Tx U256
