lib/workloads/kv_workload.ml: Char Kv_op List Printf Sbft_core Sbft_crypto Sbft_store String
