lib/workloads/kv_workload.mli: Sbft_core Sbft_sim
