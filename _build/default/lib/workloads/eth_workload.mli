(** Synthetic Ethereum-like smart-contract workload.

    The paper replays 500,000 real Ethereum transactions (2 months of
    history, ≈5,000 contract creations ≈ 1%).  We cannot ship that
    proprietary trace, so this module generates a synthetic equivalent
    with the same structural mix and the same client-side framing
    (≈50 transactions per ≈12 KB chunk): mostly ERC20-style token
    transfers, some escrow contributions, a sprinkle of contract
    creations.  A deterministic genesis (accounts funded, token/escrow
    contracts deployed, balances distributed) plays the role of the
    historical chain state.  The substitution is documented in
    DESIGN.md. *)

val num_accounts : int
val num_tokens : int
val txs_per_chunk : int
(** ≈50, matching the paper's 12 KB chunks. *)

val account : int -> string
(** Deterministic 20-byte user address. *)

val token_address : int -> string
(** Address of the i-th pre-deployed token contract. *)

val escrow_address : string

val genesis_ops : string list
(** Encoded transactions that set up the genesis state. *)

val make_chunk : client:int -> int -> string
(** The i-th request of a client: an encoded {!Sbft_evm.Tx.Chunk}. *)

val chunk_tx_count : string -> int
(** Transactions inside an encoded chunk (for ops-throughput metrics). *)

val exec_cost : Sbft_core.Types.request list -> Sbft_sim.Engine.time
(** Per-transaction EVM execution + persistence cost. *)

val service : Sbft_core.Cluster.service
(** EVM ledger service with the genesis pre-applied. *)
