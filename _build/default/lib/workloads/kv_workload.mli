(** The paper's key-value micro-benchmark workloads (§IX,
    "Measurements"): each client sequentially sends requests; in
    no-batching mode a request is a single put of a random value to a
    random key; in batching mode each request contains 64 operations. *)

val batch_size : int
(** 64, as in the paper. *)

val key_space : int
(** Number of distinct keys the generator draws from. *)

val single_op : client:int -> int -> string
(** Deterministic "random" single put for (client, request index). *)

val batch_op : client:int -> int -> string
(** A 64-operation batch request. *)

val make_op : batching:bool -> client:int -> int -> string

val ops_per_request : batching:bool -> int

val exec_cost : Sbft_core.Types.request list -> Sbft_sim.Engine.time
(** Virtual execution cost: per primitive KV operation plus block
    persistence. *)

val service : Sbft_core.Cluster.service
