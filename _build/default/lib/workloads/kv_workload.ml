open Sbft_store

let batch_size = 64
let key_space = 10_000

(* Deterministic pseudo-random keys/values from the (client, index)
   coordinates keep workload generation reproducible without threading
   generator state through the benchmark harness. *)
let mix client i j =
  let h = Sbft_crypto.Sha256.digest (Printf.sprintf "kv-%d-%d-%d" client i j) in
  Char.code h.[0] lor (Char.code h.[1] lsl 8) lor (Char.code h.[2] lsl 16)

let key client i j = Printf.sprintf "key-%06d" (mix client i j mod key_space)
let value client i j = Printf.sprintf "value-%010d" (mix client (i + 7) (j + 13))

let single_op ~client i =
  Kv_op.encode (Kv_op.Put { key = key client i 0; value = value client i 0 })

let batch_op ~client i =
  Kv_op.encode
    (Kv_op.Batch
       (List.init batch_size (fun j ->
            Kv_op.Put { key = key client i j; value = value client i j })))

let make_op ~batching ~client i =
  if batching then batch_op ~client i else single_op ~client i

let ops_per_request ~batching = if batching then batch_size else 1

let exec_cost = Sbft_core.Cluster.kv_service.Sbft_core.Cluster.exec_cost
let service = Sbft_core.Cluster.kv_service
