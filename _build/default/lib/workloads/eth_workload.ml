open Sbft_evm

let num_accounts = 200
let num_tokens = 5
let txs_per_chunk = 50

(* Deterministic addresses. *)
let account i =
  String.sub (Sbft_crypto.Keccak.digest (Printf.sprintf "eth-account-%d" i)) 12 20

let deployer = account 0

(* Contract addresses are a function of (deployer, nonce); genesis
   deploys tokens at nonces 0..num_tokens-1 and the escrow next. *)
let token_address i = State.contract_address ~sender:deployer ~nonce:i
let escrow_address = State.contract_address ~sender:deployer ~nonce:num_tokens

let token_supply = U256.of_int 1_000_000_000

let genesis_ops =
  let faucets =
    List.init num_accounts (fun i ->
        Tx.Faucet { account = account i; amount = U256.of_int 1_000_000 })
  in
  let deploys =
    List.init num_tokens (fun _ ->
        Tx.Create
          {
            sender = deployer;
            value = U256.zero;
            init_code = Contracts.token_init ~supply:token_supply;
            gas = 10_000_000;
          })
    @ [
        Tx.Create
          {
            sender = deployer;
            value = U256.zero;
            init_code = Contracts.escrow_init;
            gas = 10_000_000;
          };
      ]
  in
  (* Seed every account with a balance on every token. *)
  let distributions =
    List.concat
      (List.init num_tokens (fun tk ->
           List.init num_accounts (fun i ->
               Tx.Call
                 {
                   sender = deployer;
                   to_ = token_address tk;
                   value = U256.zero;
                   data =
                     Contracts.token_transfer ~to_:(account i)
                       ~amount:(U256.of_int 1_000_000);
                   gas = 200_000;
                 })))
  in
  List.map Tx.encode (faucets @ deploys @ distributions)

let mix client i j =
  let h = Sbft_crypto.Sha256.digest (Printf.sprintf "eth-%d-%d-%d" client i j) in
  Char.code h.[0] lor (Char.code h.[1] lsl 8) lor (Char.code h.[2] lsl 16)

(* Transaction mix mirroring the paper's trace: ~1% creations, the rest
   dominated by token transfers with some escrow contributions. *)
let make_tx ~client ~req j =
  let v = mix client req j in
  let sender = account (v mod num_accounts) in
  match v mod 100 with
  | 0 ->
      Tx.Create
        { sender; value = U256.zero; init_code = Contracts.counter_init; gas = 5_000_000 }
  | x when x < 15 ->
      Tx.Call
        {
          sender;
          to_ = escrow_address;
          value = U256.of_int (1 + (v mod 50));
          data = Contracts.escrow_contribute;
          gas = 200_000;
        }
  | _ ->
      let tk = token_address (v mod num_tokens) in
      let recipient = account ((v / 7) mod num_accounts) in
      Tx.Call
        {
          sender;
          to_ = tk;
          value = U256.zero;
          data = Contracts.token_transfer ~to_:recipient ~amount:(U256.of_int (1 + (v mod 100)));
          gas = 200_000;
        }

let make_chunk ~client i =
  Tx.encode (Tx.Chunk (List.init txs_per_chunk (fun j -> make_tx ~client ~req:i j)))

let chunk_tx_count op =
  match Tx.decode op with Some tx -> Tx.count tx | None -> 0

let exec_cost reqs =
  List.fold_left
    (fun acc (r : Sbft_core.Types.request) ->
      acc + (chunk_tx_count r.Sbft_core.Types.op * Sbft_crypto.Cost_model.evm_execute_tx))
    0 reqs

(* Genesis is deterministic, so it is executed once per process and the
   per-replica stores are clones sharing the persistent state. *)
let genesis_store =
  lazy
    (let store = Evm_service.create () in
     Sbft_store.Auth_store.bootstrap store ~ops:genesis_ops;
     store)

let service =
  {
    Sbft_core.Cluster.make_store =
      (fun () -> Sbft_store.Auth_store.clone (Lazy.force genesis_store));
    exec_cost;
  }
