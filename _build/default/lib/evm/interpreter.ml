open Sbft_crypto

type context = {
  block_number : int;
  timestamp : int;
  origin : string;
  gas_price : U256.t;
}

let default_context =
  { block_number = 0; timestamp = 0; origin = String.make 20 '\x00'; gas_price = U256.zero }

type log = { address : string; topics : U256.t list; data : string }

type internal_result = {
  ok_internal : bool;
  state_internal : State.t;
  output_internal : string;
  gas_left_internal : int;
  logs_internal : log list;
}

type result = {
  state : State.t;
  success : bool;
  output : string;
  gas_used : int;
  logs : log list;
  reverted : bool;
  error : string option;
}

(* Internal halting conditions of one frame. *)
exception Halt of string (* RETURN / STOP payload *)
exception Rev of string (* REVERT payload *)
exception Fail of string (* consumes all gas *)

let max_call_depth = 256
let max_memory_words = 1 lsl 22 (* 128 MiB *)

type frame = {
  ctx : context;
  code : string;
  jumpdests : bool array;
  stack : Machine.Stack.t;
  mem : Machine.Memory.t;
  mutable pc : int;
  mutable gas : int;
  mutable charged_words : int;
  mutable state : State.t;
  mutable logs : log list;
  mutable returndata : string;
  caller : string;
  address : string;
  value : U256.t;
  data : string;
  depth : int;
}

let analyze_jumpdests code =
  let n = String.length code in
  let valid = Array.make n false in
  let i = ref 0 in
  while !i < n do
    let b = Char.code code.[!i] in
    if b = 0x5b then valid.(!i) <- true;
    if b >= 0x60 && b <= 0x7f then i := !i + (b - 0x5f) + 1 else incr i
  done;
  valid

let use_gas f n =
  if n < 0 || f.gas < n then raise (Fail "out of gas");
  f.gas <- f.gas - n

(* Charge memory expansion to cover [offset, offset+len). *)
let charge_memory f ~offset ~len =
  if len > 0 then begin
    if offset < 0 || len < 0 || offset > max_int - len then raise (Fail "memory overflow");
    let words = (offset + len + 31) / 32 in
    if words > max_memory_words then raise (Fail "memory limit");
    if words > f.charged_words then begin
      use_gas f (Gas.memory_cost words - Gas.memory_cost f.charged_words);
      f.charged_words <- words
    end
  end

let pop_int f =
  (* Stack value used as an offset/length: anything that does not fit an
     int would blow the memory limit anyway. *)
  U256.to_int_clamped (Machine.Stack.pop f.stack)

let word_count len = (len + 31) / 32

let push_bool f b = Machine.Stack.push f.stack (if b then U256.one else U256.zero)

(* Exponent byte length for EXP gas. *)
let byte_length v = (U256.bits v + 7) / 8

let rec exec_frame f : unit =
  let stack = f.stack in
  while true do
    if f.pc >= String.length f.code then raise (Halt "");
    let op = Opcode.of_byte (Char.code f.code.[f.pc]) in
    use_gas f (Gas.static_cost op);
    (match op with
    | STOP -> raise (Halt "")
    | ADD ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.add a b)
    | MUL ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.mul a b)
    | SUB ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.sub a b)
    | DIV ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.div a b)
    | SDIV ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.sdiv a b)
    | MOD ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.rem a b)
    | SMOD ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.srem a b)
    | ADDMOD ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        let m = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.addmod a b m)
    | MULMOD ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        let m = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.mulmod a b m)
    | EXP ->
        let base = Machine.Stack.pop stack and e = Machine.Stack.pop stack in
        use_gas f (Gas.g_exp_byte * byte_length e);
        Machine.Stack.push stack (U256.exp base e)
    | SIGNEXTEND ->
        let b = Machine.Stack.pop stack and x = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.sign_extend (U256.to_int_clamped b) x)
    | LT ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        push_bool f (U256.lt a b)
    | GT ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        push_bool f (U256.gt a b)
    | SLT ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        push_bool f (U256.slt a b)
    | SGT ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        push_bool f (U256.sgt a b)
    | EQ ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        push_bool f (U256.equal a b)
    | ISZERO -> push_bool f (U256.is_zero (Machine.Stack.pop stack))
    | AND ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.logand a b)
    | OR ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.logor a b)
    | XOR ->
        let a = Machine.Stack.pop stack and b = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.logxor a b)
    | NOT -> Machine.Stack.push stack (U256.lognot (Machine.Stack.pop stack))
    | BYTE ->
        let i = Machine.Stack.pop stack and x = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.byte (U256.to_int_clamped i) x)
    | SHL ->
        let n = Machine.Stack.pop stack and x = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.shift_left x (min 256 (U256.to_int_clamped n)))
    | SHR ->
        let n = Machine.Stack.pop stack and x = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.shift_right x (min 256 (U256.to_int_clamped n)))
    | SAR ->
        let n = Machine.Stack.pop stack and x = Machine.Stack.pop stack in
        Machine.Stack.push stack (U256.shift_right_arith x (min 256 (U256.to_int_clamped n)))
    | SHA3 ->
        let offset = pop_int f and len = pop_int f in
        charge_memory f ~offset ~len;
        use_gas f (Gas.g_sha3_word * word_count len);
        let data = Machine.Memory.load_slice f.mem ~offset ~len in
        Machine.Stack.push stack (U256.of_bytes_be (Keccak.digest data))
    | ADDRESS -> Machine.Stack.push stack (U256.of_bytes_be f.address)
    | BALANCE ->
        let addr = U256.to_bytes_be (Machine.Stack.pop stack) in
        let addr20 = String.sub addr 12 20 in
        Machine.Stack.push stack (State.balance f.state addr20)
    | SELFBALANCE -> Machine.Stack.push stack (State.balance f.state f.address)
    | ORIGIN -> Machine.Stack.push stack (U256.of_bytes_be f.ctx.origin)
    | CALLER -> Machine.Stack.push stack (U256.of_bytes_be f.caller)
    | CALLVALUE -> Machine.Stack.push stack f.value
    | CALLDATALOAD ->
        let off = pop_int f in
        let buf = Bytes.make 32 '\x00' in
        let avail = String.length f.data - off in
        if avail > 0 then
          Bytes.blit_string f.data off buf 0 (min 32 avail);
        Machine.Stack.push stack (U256.of_bytes_be (Bytes.unsafe_to_string buf))
    | CALLDATASIZE -> Machine.Stack.push stack (U256.of_int (String.length f.data))
    | CALLDATACOPY ->
        let dst = pop_int f and src = pop_int f and len = pop_int f in
        charge_memory f ~offset:dst ~len;
        use_gas f (Gas.g_copy_word * word_count len);
        let chunk = Bytes.make len '\x00' in
        let avail = String.length f.data - src in
        if avail > 0 then Bytes.blit_string f.data src chunk 0 (min len avail);
        Machine.Memory.store_slice f.mem ~offset:dst (Bytes.unsafe_to_string chunk)
    | CODESIZE -> Machine.Stack.push stack (U256.of_int (String.length f.code))
    | CODECOPY ->
        let dst = pop_int f and src = pop_int f and len = pop_int f in
        charge_memory f ~offset:dst ~len;
        use_gas f (Gas.g_copy_word * word_count len);
        let chunk = Bytes.make len '\x00' in
        let avail = String.length f.code - src in
        if avail > 0 then Bytes.blit_string f.code src chunk 0 (min len avail);
        Machine.Memory.store_slice f.mem ~offset:dst (Bytes.unsafe_to_string chunk)
    | GASPRICE -> Machine.Stack.push stack f.ctx.gas_price
    | EXTCODESIZE ->
        let addr = String.sub (U256.to_bytes_be (Machine.Stack.pop stack)) 12 20 in
        Machine.Stack.push stack (U256.of_int (String.length (State.code f.state addr)))
    | EXTCODEHASH ->
        let addr = String.sub (U256.to_bytes_be (Machine.Stack.pop stack)) 12 20 in
        if State.account_exists f.state addr then
          Machine.Stack.push stack
            (U256.of_bytes_be (Keccak.digest (State.code f.state addr)))
        else Machine.Stack.push stack U256.zero
    | EXTCODECOPY ->
        let addr = String.sub (U256.to_bytes_be (Machine.Stack.pop stack)) 12 20 in
        let dst = pop_int f and src = pop_int f and len = pop_int f in
        charge_memory f ~offset:dst ~len;
        use_gas f (Gas.g_copy_word * word_count len);
        let code = State.code f.state addr in
        let chunk = Bytes.make len '\x00' in
        let avail = String.length code - src in
        if avail > 0 then Bytes.blit_string code src chunk 0 (min len avail);
        Machine.Memory.store_slice f.mem ~offset:dst (Bytes.unsafe_to_string chunk)
    | RETURNDATASIZE -> Machine.Stack.push stack (U256.of_int (String.length f.returndata))
    | RETURNDATACOPY ->
        let dst = pop_int f and src = pop_int f and len = pop_int f in
        if src + len > String.length f.returndata then raise (Fail "returndata out of bounds");
        charge_memory f ~offset:dst ~len;
        use_gas f (Gas.g_copy_word * word_count len);
        Machine.Memory.store_slice f.mem ~offset:dst (String.sub f.returndata src len)
    | COINBASE -> Machine.Stack.push stack U256.zero
    | TIMESTAMP -> Machine.Stack.push stack (U256.of_int f.ctx.timestamp)
    | NUMBER -> Machine.Stack.push stack (U256.of_int f.ctx.block_number)
    | POP -> ignore (Machine.Stack.pop stack)
    | MLOAD ->
        let off = pop_int f in
        charge_memory f ~offset:off ~len:32;
        Machine.Stack.push stack (Machine.Memory.load_word f.mem off)
    | MSTORE ->
        let off = pop_int f in
        let v = Machine.Stack.pop stack in
        charge_memory f ~offset:off ~len:32;
        Machine.Memory.store_word f.mem off v
    | MSTORE8 ->
        let off = pop_int f in
        let v = Machine.Stack.pop stack in
        charge_memory f ~offset:off ~len:1;
        Machine.Memory.store_byte f.mem off (U256.to_int_clamped (U256.logand v (U256.of_int 0xFF)))
    | SLOAD ->
        let slot = Machine.Stack.pop stack in
        Machine.Stack.push stack (State.sload f.state ~addr:f.address ~slot)
    | SSTORE ->
        let slot = Machine.Stack.pop stack in
        let v = Machine.Stack.pop stack in
        let old = State.sload f.state ~addr:f.address ~slot in
        use_gas f
          (if U256.is_zero old && not (U256.is_zero v) then Gas.g_sstore_set
           else Gas.g_sstore_reset);
        f.state <- State.sstore f.state ~addr:f.address ~slot v
    | JUMP ->
        let dst = pop_int f in
        if dst >= Array.length f.jumpdests || not f.jumpdests.(dst) then
          raise (Fail "bad jump destination");
        f.pc <- dst - 1 (* incremented below *)
    | JUMPI ->
        let dst = pop_int f in
        let cond = Machine.Stack.pop stack in
        if not (U256.is_zero cond) then begin
          if dst >= Array.length f.jumpdests || not f.jumpdests.(dst) then
            raise (Fail "bad jump destination");
          f.pc <- dst - 1
        end
    | PC -> Machine.Stack.push stack (U256.of_int f.pc)
    | MSIZE -> Machine.Stack.push stack (U256.of_int (32 * Machine.Memory.size_words f.mem))
    | GAS -> Machine.Stack.push stack (U256.of_int f.gas)
    | JUMPDEST -> ()
    | PUSH n ->
        let avail = String.length f.code - (f.pc + 1) in
        let take = min n avail in
        let v =
          if take <= 0 then U256.zero
          else begin
            (* Bytes past the end of code read as zero. *)
            let raw = String.sub f.code (f.pc + 1) take ^ String.make (n - take) '\x00' in
            U256.of_bytes_be raw
          end
        in
        Machine.Stack.push stack v;
        f.pc <- f.pc + n
    | DUP n -> Machine.Stack.dup stack n
    | SWAP n -> Machine.Stack.swap stack n
    | LOG n ->
        let offset = pop_int f and len = pop_int f in
        let topics = List.init n (fun _ -> Machine.Stack.pop stack) in
        charge_memory f ~offset ~len;
        use_gas f (Gas.g_log_byte * len);
        let data = Machine.Memory.load_slice f.mem ~offset ~len in
        f.logs <- { address = f.address; topics; data } :: f.logs
    | RETURN ->
        let offset = pop_int f and len = pop_int f in
        charge_memory f ~offset ~len;
        raise (Halt (Machine.Memory.load_slice f.mem ~offset ~len))
    | REVERT ->
        let offset = pop_int f and len = pop_int f in
        charge_memory f ~offset ~len;
        raise (Rev (Machine.Memory.load_slice f.mem ~offset ~len))
    | CALL -> do_call f ~mode:`Call
    | STATICCALL -> do_call f ~mode:`Static
    | DELEGATECALL -> do_call f ~mode:`Delegate
    | CREATE -> do_create f
    | INVALID b -> raise (Fail (Printf.sprintf "invalid opcode 0x%02x" b)));
    f.pc <- f.pc + 1
  done

and do_call f ~mode =
  let stack = f.stack in
  let gas_req = U256.to_int_clamped (Machine.Stack.pop stack) in
  let to_word = Machine.Stack.pop stack in
  let value =
    match mode with `Call -> Machine.Stack.pop stack | `Static | `Delegate -> U256.zero
  in
  let in_off = pop_int f and in_len = pop_int f in
  let out_off = pop_int f and out_len = pop_int f in
  let to_addr = String.sub (U256.to_bytes_be to_word) 12 20 in
  charge_memory f ~offset:in_off ~len:in_len;
  charge_memory f ~offset:out_off ~len:out_len;
  if not (U256.is_zero value) then use_gas f Gas.g_call_value;
  (* EIP-150: forward at most 63/64 of the remaining gas. *)
  let cap = f.gas - (f.gas / 64) in
  let child_gas = min gas_req cap in
  use_gas f child_gas;
  let stipend = if U256.is_zero value then 0 else 2300 in
  let calldata = Machine.Memory.load_slice f.mem ~offset:in_off ~len:in_len in
  let res =
    match mode with
    | `Call | `Static ->
        run_call ~ctx:f.ctx ~state:f.state ~caller:f.address ~address:to_addr ~value
          ~data:calldata ~gas:(child_gas + stipend) ~depth:(f.depth + 1)
    | `Delegate ->
        (* DELEGATECALL: run the callee's code in OUR storage context,
           preserving caller and call value. *)
        if f.depth + 1 > max_call_depth then
          { ok_internal = false; state_internal = f.state; output_internal = "";
            gas_left_internal = 0; logs_internal = [] }
        else begin
          let code = State.code f.state to_addr in
          if String.length code = 0 then
            { ok_internal = true; state_internal = f.state; output_internal = "";
              gas_left_internal = child_gas; logs_internal = [] }
          else
            run_code ~ctx:f.ctx ~state:f.state ~caller:f.caller ~address:f.address
              ~value:f.value ~data:calldata ~gas:child_gas ~code ~depth:(f.depth + 1)
        end
  in
  f.gas <- f.gas + res.gas_left_internal;
  f.returndata <- res.output_internal;
  if res.ok_internal then begin
    f.state <- res.state_internal;
    f.logs <- res.logs_internal @ f.logs
  end;
  let copy_len = min out_len (String.length res.output_internal) in
  if copy_len > 0 then
    Machine.Memory.store_slice f.mem ~offset:out_off (String.sub res.output_internal 0 copy_len);
  push_bool f res.ok_internal

and do_create f =
  let stack = f.stack in
  let value = Machine.Stack.pop stack in
  let offset = pop_int f and len = pop_int f in
  charge_memory f ~offset ~len;
  let init_code = Machine.Memory.load_slice f.mem ~offset ~len in
  let cap = f.gas - (f.gas / 64) in
  use_gas f cap;
  let res, addr =
    run_create ~ctx:f.ctx ~state:f.state ~caller:f.address ~value ~init_code ~gas:cap
      ~depth:(f.depth + 1)
  in
  f.gas <- f.gas + res.gas_left_internal;
  f.returndata <- (if res.ok_internal then "" else res.output_internal);
  if res.ok_internal then begin
    f.state <- res.state_internal;
    f.logs <- res.logs_internal @ f.logs;
    Machine.Stack.push stack (U256.of_bytes_be addr)
  end
  else Machine.Stack.push stack U256.zero

(* Internal result threading between nested frames. *)
and run_call ~ctx ~state ~caller ~address ~value ~data ~gas ~depth =
  if depth > max_call_depth then
    { ok_internal = false; state_internal = state; output_internal = "";
      gas_left_internal = 0; logs_internal = [] }
  else begin
    match State.transfer state ~from_:caller ~to_:address value with
    | None ->
        { ok_internal = false; state_internal = state; output_internal = "";
          gas_left_internal = gas; logs_internal = [] }
    | Some state' ->
        let code = State.code state' address in
        if String.length code = 0 then
          (* Plain value transfer. *)
          { ok_internal = true; state_internal = state'; output_internal = "";
            gas_left_internal = gas; logs_internal = [] }
        else run_code ~ctx ~state:state' ~caller ~address ~value ~data ~gas ~code ~depth
  end

and run_create ~ctx ~state ~caller ~value ~init_code ~gas ~depth =
  let failure =
    { ok_internal = false; state_internal = state; output_internal = "";
      gas_left_internal = 0; logs_internal = [] }
  in
  if depth > max_call_depth then (failure, "")
  else begin
    let nonce = State.nonce state caller in
    let addr = State.contract_address ~sender:caller ~nonce in
    let state = State.incr_nonce state caller in
    match State.transfer state ~from_:caller ~to_:addr value with
    | None -> ({ failure with gas_left_internal = gas }, addr)
    | Some state' -> (
        let res =
          run_code ~ctx ~state:state' ~caller ~address:addr ~value ~data:"" ~gas
            ~code:init_code ~depth
        in
        if not res.ok_internal then (res, addr)
        else begin
          let deposit = Gas.g_code_deposit_byte * String.length res.output_internal in
          if deposit > res.gas_left_internal then (failure, addr)
          else
            ( { res with
                state_internal = State.set_code res.state_internal addr res.output_internal;
                gas_left_internal = res.gas_left_internal - deposit;
                output_internal = "" },
              addr )
        end)
  end

and run_code ~ctx ~state ~caller ~address ~value ~data ~gas ~code ~depth =
  let f =
    {
      ctx; code;
      jumpdests = analyze_jumpdests code;
      stack = Machine.Stack.create ();
      mem = Machine.Memory.create ();
      pc = 0; gas; charged_words = 0; state;
      logs = []; returndata = "";
      caller; address; value; data; depth;
    }
  in
  match exec_frame f with
  | () ->
      (* unreachable: exec_frame only exits via exceptions *)
      assert false
  | exception Halt output ->
      { ok_internal = true; state_internal = f.state; output_internal = output;
        gas_left_internal = f.gas; logs_internal = f.logs }
  | exception Rev output ->
      { ok_internal = false; state_internal = state; output_internal = output;
        gas_left_internal = f.gas; logs_internal = [] }
  | exception (Fail _ | Machine.Stack_overflow_evm | Machine.Stack_underflow_evm) ->
      { ok_internal = false; state_internal = state; output_internal = "";
        gas_left_internal = 0; logs_internal = [] }

let call ~ctx ~state ~caller ~address ~value ~data ~gas =
  let r = run_call ~ctx ~state ~caller ~address ~value ~data ~gas ~depth:0 in
  {
    state = r.state_internal;
    success = r.ok_internal;
    output = r.output_internal;
    gas_used = gas - r.gas_left_internal;
    logs = List.rev r.logs_internal;
    reverted = (not r.ok_internal) && String.length r.output_internal > 0;
    error = (if r.ok_internal then None else Some "call failed");
  }

let create ~ctx ~state ~caller ~value ~init_code ~gas =
  let r, addr = run_create ~ctx ~state ~caller ~value ~init_code ~gas ~depth:0 in
  ( {
      state = r.state_internal;
      success = r.ok_internal;
      output = r.output_internal;
      gas_used = gas - r.gas_left_internal;
      logs = List.rev r.logs_internal;
      reverted = (not r.ok_internal) && String.length r.output_internal > 0;
      error = (if r.ok_internal then None else Some "create failed");
    },
    addr )

let execute_code ~ctx ~state ~caller ~address ~value ~data ~gas ~code =
  let r = run_code ~ctx ~state ~caller ~address ~value ~data ~gas ~code ~depth:0 in
  {
    state = r.state_internal;
    success = r.ok_internal;
    output = r.output_internal;
    gas_used = gas - r.gas_left_internal;
    logs = List.rev r.logs_internal;
    reverted = (not r.ok_internal) && String.length r.output_internal > 0;
    error = (if r.ok_internal then None else Some "execution failed");
  }
