(** EVM bytecode interpreter.

    Executes contract code against a {!State.t}, with Yellow-Paper gas
    accounting for the implemented instruction subset.  State is
    persistent, so reverts are O(1) (the caller keeps the pre-call
    map). *)

type context = {
  block_number : int;
  timestamp : int;
  origin : string;  (** 20-byte transaction origin *)
  gas_price : U256.t;
}

val default_context : context

type log = { address : string; topics : U256.t list; data : string }

type result = {
  state : State.t;  (** post-state; equals the pre-state on failure/revert *)
  success : bool;
  output : string;  (** RETURN / REVERT payload *)
  gas_used : int;
  logs : log list;
  reverted : bool;  (** [true] when halted by REVERT (vs. an error) *)
  error : string option;
}

val call :
  ctx:context -> state:State.t -> caller:string -> address:string ->
  value:U256.t -> data:string -> gas:int -> result
(** Message call to [address]: transfers [value] then runs its code. *)

val create :
  ctx:context -> state:State.t -> caller:string -> value:U256.t ->
  init_code:string -> gas:int -> result * string
(** Contract creation: runs [init_code]; its RETURN payload becomes the
    new account's code.  Also returns the created address (meaningful
    only on success). *)

val execute_code :
  ctx:context -> state:State.t -> caller:string -> address:string ->
  value:U256.t -> data:string -> gas:int -> code:string -> result
(** Runs explicit [code] in [address]'s storage context (used for tests
    and for the paper's single-machine execution baseline). *)
