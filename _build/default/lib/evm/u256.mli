(** 256-bit machine words for the EVM, implemented over four [int64]
    limbs (no external bignum dependency).

    All arithmetic is modulo 2^256 as the EVM specifies; "signed"
    variants interpret words as two's complement.  Conversions to and
    from 32-byte big-endian strings match the EVM's memory/storage
    representation. *)

type t

val zero : t
val one : t
val max_value : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [Some] when the value fits a non-negative OCaml [int]. *)

val to_int_clamped : t -> int
(** Like {!to_int_opt} but saturates at [max_int] (useful for gas/size
    arguments where anything huge means "out of range anyway"). *)

val of_bytes_be : string -> t
(** Big-endian; shorter strings are left-padded with zeros.
    @raise Invalid_argument when longer than 32 bytes. *)

val to_bytes_be : t -> string
(** Always 32 bytes. *)

val of_hex : string -> t
(** Accepts an optional ["0x"] prefix. *)

val to_hex : t -> string
(** Minimal-length lowercase hex with ["0x"] prefix. *)

(** {2 Arithmetic (mod 2^256)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Unsigned; division by zero yields zero (EVM semantics). *)

val rem : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t
val addmod : t -> t -> t -> t
val mulmod : t -> t -> t -> t
val exp : t -> t -> t
val neg : t -> t

(** {2 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical. Shifts ≥ 256 yield zero. *)

val shift_right_arith : t -> int -> t
val byte : int -> t -> t
(** [byte i x]: the [i]-th byte of [x] counting from the most
    significant (EVM [BYTE]); [i >= 32] yields zero. *)

val sign_extend : int -> t -> t
(** [sign_extend b x]: extend from byte [b] (0 = least significant). *)

(** {2 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned. *)

val lt : t -> t -> bool
val gt : t -> t -> bool
val slt : t -> t -> bool
val sgt : t -> t -> bool
val is_zero : t -> bool
val is_negative : t -> bool
(** Two's-complement sign bit. *)

val bits : t -> int
(** Position of the highest set bit + 1; 0 for zero. *)

val pp : Format.formatter -> t -> unit
