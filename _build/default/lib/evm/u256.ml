(* Four little-endian int64 limbs; w0 is least significant.  Int64
   addition/multiplication wrap exactly like unsigned arithmetic, so only
   comparisons need the [unsigned_compare] variants. *)

type t = { w0 : int64; w1 : int64; w2 : int64; w3 : int64 }

let zero = { w0 = 0L; w1 = 0L; w2 = 0L; w3 = 0L }
let one = { w0 = 1L; w1 = 0L; w2 = 0L; w3 = 0L }
let max_value = { w0 = -1L; w1 = -1L; w2 = -1L; w3 = -1L }

let limb t i =
  match i with 0 -> t.w0 | 1 -> t.w1 | 2 -> t.w2 | _ -> t.w3

let make l =
  { w0 = l.(0); w1 = l.(1); w2 = l.(2); w3 = l.(3) }

let of_int x =
  if x < 0 then invalid_arg "U256.of_int: negative";
  { zero with w0 = Int64.of_int x }

let to_int_opt t =
  if t.w1 = 0L && t.w2 = 0L && t.w3 = 0L && Int64.unsigned_compare t.w0 (Int64.of_int max_int) <= 0
  then Some (Int64.to_int t.w0)
  else None

let to_int_clamped t = match to_int_opt t with Some v -> v | None -> max_int

let equal a b = a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2 && a.w3 = b.w3
let is_zero t = equal t zero

let compare a b =
  let c3 = Int64.unsigned_compare a.w3 b.w3 in
  if c3 <> 0 then c3
  else begin
    let c2 = Int64.unsigned_compare a.w2 b.w2 in
    if c2 <> 0 then c2
    else begin
      let c1 = Int64.unsigned_compare a.w1 b.w1 in
      if c1 <> 0 then c1 else Int64.unsigned_compare a.w0 b.w0
    end
  end

let lt a b = compare a b < 0
let gt a b = compare a b > 0
let is_negative t = Int64.compare t.w3 0L < 0

(* -------------------- add / sub -------------------- *)

let add_limb a b carry =
  (* carry is 0L or 1L *)
  let s = Int64.add a b in
  let c1 = if Int64.unsigned_compare s a < 0 then 1L else 0L in
  let s' = Int64.add s carry in
  let c2 = if carry = 1L && s' = 0L then 1L else 0L in
  (s', Int64.logor c1 c2)

let add a b =
  let w0, c0 = add_limb a.w0 b.w0 0L in
  let w1, c1 = add_limb a.w1 b.w1 c0 in
  let w2, c2 = add_limb a.w2 b.w2 c1 in
  let w3, _ = add_limb a.w3 b.w3 c2 in
  { w0; w1; w2; w3 }

let lognot t =
  { w0 = Int64.lognot t.w0; w1 = Int64.lognot t.w1; w2 = Int64.lognot t.w2;
    w3 = Int64.lognot t.w3 }

let neg t = add (lognot t) one
let sub a b = add a (neg b)

(* -------------------- bitwise -------------------- *)

let logand a b =
  { w0 = Int64.logand a.w0 b.w0; w1 = Int64.logand a.w1 b.w1;
    w2 = Int64.logand a.w2 b.w2; w3 = Int64.logand a.w3 b.w3 }

let logor a b =
  { w0 = Int64.logor a.w0 b.w0; w1 = Int64.logor a.w1 b.w1;
    w2 = Int64.logor a.w2 b.w2; w3 = Int64.logor a.w3 b.w3 }

let logxor a b =
  { w0 = Int64.logxor a.w0 b.w0; w1 = Int64.logxor a.w1 b.w1;
    w2 = Int64.logxor a.w2 b.w2; w3 = Int64.logxor a.w3 b.w3 }

let shift_left t n =
  if n <= 0 then (if n = 0 then t else invalid_arg "shift_left")
  else if n >= 256 then zero
  else begin
    let limbs = n / 64 and bits = n mod 64 in
    let get i =
      let j = i - limbs in
      if j < 0 then 0L
      else if bits = 0 then limb t j
      else begin
        let lo = if j - 1 >= 0 then Int64.shift_right_logical (limb t (j - 1)) (64 - bits) else 0L in
        Int64.logor (Int64.shift_left (limb t j) bits) lo
      end
    in
    make [| get 0; get 1; get 2; get 3 |]
  end

let shift_right t n =
  if n <= 0 then (if n = 0 then t else invalid_arg "shift_right")
  else if n >= 256 then zero
  else begin
    let limbs = n / 64 and bits = n mod 64 in
    let get i =
      let j = i + limbs in
      if j > 3 then 0L
      else if bits = 0 then limb t j
      else begin
        let hi = if j + 1 <= 3 then Int64.shift_left (limb t (j + 1)) (64 - bits) else 0L in
        Int64.logor (Int64.shift_right_logical (limb t j) bits) hi
      end
    in
    make [| get 0; get 1; get 2; get 3 |]
  end

let shift_right_arith t n =
  if n = 0 then t
  else begin
    let negative = is_negative t in
    if n >= 256 then if negative then max_value else zero
    else begin
      let logical = shift_right t n in
      if not negative then logical
      else (* fill the vacated top n bits with ones *)
        logor logical (shift_left max_value (256 - n))
    end
  end

(* -------------------- bytes / hex -------------------- *)

let of_bytes_be s =
  let len = String.length s in
  if len > 32 then invalid_arg "U256.of_bytes_be: longer than 32 bytes";
  let limbs = Array.make 4 0L in
  for i = 0 to len - 1 do
    (* byte i (big-endian) corresponds to bit offset 8*(len-1-i) *)
    let bit_off = 8 * (len - 1 - i) in
    let l = bit_off / 64 and sh = bit_off mod 64 in
    limbs.(l) <-
      Int64.logor limbs.(l) (Int64.shift_left (Int64.of_int (Char.code s.[i])) sh)
  done;
  make limbs

let to_bytes_be t =
  let b = Bytes.create 32 in
  for i = 0 to 31 do
    let bit_off = 8 * (31 - i) in
    let l = bit_off / 64 and sh = bit_off mod 64 in
    let v = Int64.to_int (Int64.logand (Int64.shift_right_logical (limb t l) sh) 0xFFL) in
    Bytes.set b i (Char.chr v)
  done;
  Bytes.unsafe_to_string b

let of_hex s =
  let s = if String.length s >= 2 && String.sub s 0 2 = "0x" then String.sub s 2 (String.length s - 2) else s in
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  let n = String.length s / 2 in
  if n > 32 then invalid_arg "U256.of_hex: too long";
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  done;
  of_bytes_be (Bytes.unsafe_to_string b)

let to_hex t =
  if is_zero t then "0x0"
  else begin
    let raw = to_bytes_be t in
    let buf = Buffer.create 66 in
    Buffer.add_string buf "0x";
    let started = ref false in
    String.iter
      (fun c ->
        if !started then Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))
        else if Char.code c <> 0 then begin
          started := true;
          Buffer.add_string buf (Printf.sprintf "%x" (Char.code c))
        end)
      raw;
    Buffer.contents buf
  end

let byte i t =
  if i >= 32 || i < 0 then zero
  else of_int (Char.code (to_bytes_be t).[i])

let sign_extend b t =
  if b >= 31 || b < 0 then t
  else begin
    let sign_bit_pos = (8 * (b + 1)) - 1 in
    let bit_set =
      let l = sign_bit_pos / 64 and sh = sign_bit_pos mod 64 in
      Int64.logand (Int64.shift_right_logical (limb t l) sh) 1L = 1L
    in
    let mask = shift_left max_value (8 * (b + 1)) in
    if bit_set then logor t mask else logand t (lognot mask)
  end

(* -------------------- mul -------------------- *)

(* 16-bit digit decomposition: sixteen digits, least significant first.
   Products of 16-bit digits plus accumulators fit comfortably in
   OCaml's 63-bit ints (a 32-bit digit scheme would overflow them). *)
let to_digits t =
  let d = Array.make 16 0 in
  for i = 0 to 3 do
    let l = limb t i in
    for j = 0 to 3 do
      d.((4 * i) + j) <-
        Int64.to_int (Int64.logand (Int64.shift_right_logical l (16 * j)) 0xFFFFL)
    done
  done;
  d

let of_digits d =
  let l i =
    let v = ref 0L in
    for j = 3 downto 0 do
      v := Int64.logor (Int64.shift_left !v 16) (Int64.of_int (d.((4 * i) + j) land 0xFFFF))
    done;
    !v
  in
  make [| l 0; l 1; l 2; l 3 |]

let mul a b =
  let da = to_digits a and db = to_digits b in
  let out = Array.make 16 0 in
  for i = 0 to 15 do
    let carry = ref 0 in
    for j = 0 to 15 - i do
      let k = i + j in
      let v = out.(k) + (da.(i) * db.(j)) + !carry in
      out.(k) <- v land 0xFFFF;
      carry := v lsr 16
    done
  done;
  of_digits out

(* -------------------- div / rem -------------------- *)

let bits t =
  let rec limb_bits i =
    if i < 0 then 0
    else begin
      let l = limb t i in
      if l = 0L then limb_bits (i - 1)
      else begin
        let rec high b = if Int64.shift_right_logical l b <> 0L then b + 1 else high (b - 1) in
        (64 * i) + high 63
      end
    end
  in
  limb_bits 3

let bit_at t i =
  let l = i / 64 and sh = i mod 64 in
  Int64.logand (Int64.shift_right_logical (limb t l) sh) 1L = 1L

let divrem a b =
  if is_zero b then (zero, zero) (* EVM: x / 0 = 0, x mod 0 = 0 *)
  else if compare a b < 0 then (zero, a)
  else begin
    (* Restoring long division over the significant bits of [a].  The
       invariant [r < b] bounds the shifted value below [2b]; when the
       shift overflows 256 bits (possible only if [b > 2^255]) the true
       value certainly exceeds [b], and the wrapping subtraction still
       yields the correct in-range remainder. *)
    let q = ref zero and r = ref zero in
    for i = bits a - 1 downto 0 do
      let overflow = bit_at !r 255 in
      r := shift_left !r 1;
      if bit_at a i then r := logor !r one;
      if overflow || compare !r b >= 0 then begin
        r := sub !r b;
        q := logor !q (shift_left one i)
      end
    done;
    (!q, !r)
  end

let div a b = fst (divrem a b)
let rem a b = snd (divrem a b)

(* Signed division/modulo (two's complement), EVM semantics: the result
   of SDIV truncates toward zero; SMOD takes the dividend's sign. *)
let sdiv a b =
  if is_zero b then zero
  else begin
    let abs x = if is_negative x then neg x else x in
    let q = div (abs a) (abs b) in
    if is_negative a <> is_negative b then neg q else q
  end

let srem a b =
  if is_zero b then zero
  else begin
    let abs x = if is_negative x then neg x else x in
    let r = rem (abs a) (abs b) in
    if is_negative a then neg r else r
  end

let slt a b =
  match (is_negative a, is_negative b) with
  | true, false -> true
  | false, true -> false
  | _ -> lt a b

let sgt a b = slt b a

(* -------------------- modular / exp -------------------- *)

(* ADDMOD and MULMOD are defined over arbitrary precision before the
   final reduction.  For ADDMOD track the single carry bit explicitly;
   for MULMOD use 512-bit digit arithmetic. *)
let addmod a b m =
  if is_zero m then zero
  else begin
    (* With x, y < m the true sum is < 2m; a wrapped result certainly
       exceeds m and the wrapping subtraction is still correct. *)
    let addmod_small x y =
      let s = add x y in
      if compare s x < 0 then sub s m else rem s m
    in
    addmod_small (rem a m) (rem b m)
  end

let mulmod a b m =
  if is_zero m then zero
  else begin
    (* Full 512-bit product in 16-bit digits, then long division by m
       bit-by-bit over 512 bits, tracking only the remainder. *)
    let da = to_digits a and db = to_digits b in
    let prod = Array.make 33 0 in
    for i = 0 to 15 do
      let carry = ref 0 in
      for j = 0 to 15 do
        let k = i + j in
        let v = prod.(k) + (da.(i) * db.(j)) + !carry in
        prod.(k) <- v land 0xFFFF;
        carry := v lsr 16
      done;
      prod.(i + 16) <- prod.(i + 16) + !carry
    done;
    let r = ref zero in
    for bit = 511 downto 0 do
      let overflow = bit_at !r 255 in
      r := shift_left !r 1;
      let digit = bit / 16 and sh = bit mod 16 in
      if (prod.(digit) lsr sh) land 1 = 1 then r := logor !r one;
      (* r < m before the shift, so the shifted value is < 2m; if the
         shift wrapped past 2^256 the wrapping subtraction still lands
         in range. *)
      if overflow || compare !r m >= 0 then r := sub !r m
    done;
    !r
  end

let exp base e =
  let result = ref one and b = ref base in
  for i = 0 to 255 do
    if bit_at e i then result := mul !result !b;
    b := mul !b !b
  done;
  !result

let pp fmt t = Format.pp_print_string fmt (to_hex t)
