(** Hand-assembled contracts used by examples, tests and the
    Ethereum-like benchmark workload (stand-ins for the compiled
    Solidity contracts in the paper's 500k-transaction trace).

    Calling convention: calldata byte 0 is the selector; arguments are
    32-byte big-endian words at offsets 1, 33, 65, … Return values are
    single 32-byte words. *)

(** {2 Counter} — one storage slot.
    Selector 0: increment, returns the new value. Selector 1: get. *)

val counter_runtime : string
val counter_init : string
(** Init code that deploys {!counter_runtime}. *)

val counter_increment : string
val counter_get : string

(** {2 Token} — ERC20-style balances, one slot per holder
    (slot = holder address).  The constructor credits the creator with
    the initial supply.
    Selector 1: transfer(to, amount) — reverts on insufficient balance,
    returns 1.  Selector 2: balanceOf(addr). *)

val token_runtime : string
val token_init : supply:U256.t -> string

val token_transfer : to_:string -> amount:U256.t -> string
val token_balance_of : addr:string -> string

(** {2 Escrow} — accepts contributions (CALLVALUE), tracking the total
    (slot 0) and per-contributor amounts (slot = contributor address).
    Selector 0: contribute, returns new total. Selector 1: total.
    Selector 2: contribution_of(addr). *)

val escrow_runtime : string
val escrow_init : string

val escrow_contribute : string
val escrow_total : string
val escrow_contribution_of : addr:string -> string

val deploy_wrapper : ctor:Asm.instr list -> runtime:string -> string
(** Builds init code: runs [ctor], then returns [runtime] as the
    deployed code (the standard CODECOPY/RETURN epilogue). *)

val word_of_address : string -> U256.t
