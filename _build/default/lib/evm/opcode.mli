(** EVM opcode set (the subset the paper's workloads exercise, which is
    the vast majority of the Homestead/Byzantium instruction set). *)

type t =
  | STOP
  | ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | ADDMOD | MULMOD | EXP | SIGNEXTEND
  | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR | NOT | BYTE | SHL | SHR | SAR
  | SHA3
  | ADDRESS | BALANCE | ORIGIN | CALLER | CALLVALUE | CALLDATALOAD | CALLDATASIZE
  | CALLDATACOPY | CODESIZE | CODECOPY | GASPRICE | RETURNDATASIZE | RETURNDATACOPY
  | EXTCODESIZE | EXTCODECOPY | EXTCODEHASH
  | COINBASE | TIMESTAMP | NUMBER | SELFBALANCE
  | POP | MLOAD | MSTORE | MSTORE8 | SLOAD | SSTORE | JUMP | JUMPI | PC | MSIZE | GAS
  | JUMPDEST
  | PUSH of int  (** [PUSH n], 1 ≤ n ≤ 32 *)
  | DUP of int  (** [DUP n], 1 ≤ n ≤ 16 *)
  | SWAP of int  (** [SWAP n], 1 ≤ n ≤ 16 *)
  | LOG of int  (** [LOG n], 0 ≤ n ≤ 4 *)
  | CREATE | CALL | STATICCALL | DELEGATECALL | RETURN | REVERT
  | INVALID of int  (** any unassigned byte *)

val of_byte : int -> t
val to_byte : t -> int
val name : t -> string
