exception Stack_overflow_evm
exception Stack_underflow_evm

module Stack = struct
  type t = { mutable data : U256.t array; mutable len : int }

  let limit = 1024

  let create () = { data = Array.make 64 U256.zero; len = 0 }

  let depth t = t.len

  let push t v =
    if t.len >= limit then raise Stack_overflow_evm;
    if t.len = Array.length t.data then begin
      let nd = Array.make (min limit (2 * Array.length t.data)) U256.zero in
      Array.blit t.data 0 nd 0 t.len;
      t.data <- nd
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let pop t =
    if t.len = 0 then raise Stack_underflow_evm;
    t.len <- t.len - 1;
    t.data.(t.len)

  let peek t i =
    if i >= t.len then raise Stack_underflow_evm;
    t.data.(t.len - 1 - i)

  let dup t n =
    if n < 1 || n > t.len then raise Stack_underflow_evm;
    push t t.data.(t.len - n)

  let swap t n =
    if n < 1 || n + 1 > t.len then raise Stack_underflow_evm;
    let top = t.len - 1 in
    let other = t.len - 1 - n in
    let tmp = t.data.(top) in
    t.data.(top) <- t.data.(other);
    t.data.(other) <- tmp
end

module Memory = struct
  type t = { mutable data : Bytes.t; mutable words : int }

  let create () = { data = Bytes.make 256 '\x00'; words = 0 }

  let size_words t = t.words

  let ensure_capacity t bytes_needed =
    if Bytes.length t.data < bytes_needed then begin
      let ncap = ref (Bytes.length t.data) in
      while !ncap < bytes_needed do
        ncap := !ncap * 2
      done;
      let nd = Bytes.make !ncap '\x00' in
      Bytes.blit t.data 0 nd 0 (Bytes.length t.data);
      t.data <- nd
    end

  let expand t ~offset ~len =
    if len > 0 then begin
      let needed_words = (offset + len + 31) / 32 in
      if needed_words > t.words then begin
        ensure_capacity t (needed_words * 32);
        t.words <- needed_words
      end
    end

  let load_word t off =
    expand t ~offset:off ~len:32;
    U256.of_bytes_be (Bytes.sub_string t.data off 32)

  let store_word t off v =
    expand t ~offset:off ~len:32;
    Bytes.blit_string (U256.to_bytes_be v) 0 t.data off 32

  let store_byte t off b =
    expand t ~offset:off ~len:1;
    Bytes.set t.data off (Char.chr (b land 0xFF))

  let load_slice t ~offset ~len =
    if len = 0 then ""
    else begin
      expand t ~offset ~len;
      Bytes.sub_string t.data offset len
    end

  let store_slice t ~offset s =
    if String.length s > 0 then begin
      expand t ~offset ~len:(String.length s);
      Bytes.blit_string s 0 t.data offset (String.length s)
    end
end
