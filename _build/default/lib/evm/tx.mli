(** Ethereum transaction types modelled as replicated-service operations
    (paper §IV: "an interface for modeling the two main Ethereum
    transaction types (contract creation and contract execution) as
    operations in our replicated service").

    A third [Faucet] operation mints balance for an account; the paper's
    trace starts from a historical state we do not have, so workloads
    use it to seed accounts (substitution documented in DESIGN.md). *)

type t =
  | Create of { sender : string; value : U256.t; init_code : string; gas : int }
  | Call of { sender : string; to_ : string; value : U256.t; data : string; gas : int }
  | Faucet of { account : string; amount : U256.t }
  | Chunk of t list
      (** A client-side batch: the paper's clients pack transactions
          into ~12 KB chunks (≈50 transactions) per request. *)

val count : t -> int
(** Number of primitive transactions (chunks count their contents). *)

val encode : t -> string
val decode : string -> t option

(** {2 Receipts} *)

type receipt = {
  ok : bool;
  gas_used : int;
  output : string;  (** return data, or the 20-byte created address *)
}

val encode_receipt : receipt -> string
val decode_receipt : string -> receipt option

val pp : Format.formatter -> t -> unit
