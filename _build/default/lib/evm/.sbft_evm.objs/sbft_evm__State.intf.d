lib/evm/state.mli: Sbft_crypto U256
