lib/evm/tx.ml: Codec Format Fun List Option Sbft_wire State U256
