lib/evm/interpreter.mli: State U256
