lib/evm/tx.mli: Format U256
