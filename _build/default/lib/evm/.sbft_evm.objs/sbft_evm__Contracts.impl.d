lib/evm/contracts.ml: Asm String U256
