lib/evm/contracts.mli: Asm U256
