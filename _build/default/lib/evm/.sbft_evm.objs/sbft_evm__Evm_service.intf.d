lib/evm/evm_service.mli: Sbft_store
