lib/evm/gas.ml: Opcode String
