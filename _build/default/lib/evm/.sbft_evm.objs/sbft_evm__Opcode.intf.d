lib/evm/opcode.mli:
