lib/evm/interpreter.ml: Array Bytes Char Gas Keccak List Machine Opcode Printf Sbft_crypto State String U256
