lib/evm/machine.ml: Array Bytes Char String U256
