lib/evm/state.ml: Buffer Char Keccak Merkle_map Option Printf Sbft_crypto String U256
