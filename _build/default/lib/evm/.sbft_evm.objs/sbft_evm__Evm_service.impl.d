lib/evm/evm_service.ml: Gas Interpreter List Sbft_store State String Tx
