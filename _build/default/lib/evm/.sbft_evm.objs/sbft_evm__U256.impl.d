lib/evm/u256.ml: Array Buffer Bytes Char Format Int64 Printf String
