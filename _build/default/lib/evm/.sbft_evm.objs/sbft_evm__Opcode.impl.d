lib/evm/opcode.ml: Printf
