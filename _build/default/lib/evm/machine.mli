(** Execution machine components: the operand stack (max 1024 words) and
    byte-addressed expanding memory. *)

exception Stack_overflow_evm
exception Stack_underflow_evm

module Stack : sig
  type t

  val create : unit -> t
  val depth : t -> int
  val push : t -> U256.t -> unit
  val pop : t -> U256.t
  val peek : t -> int -> U256.t
  (** [peek s 0] is the top. *)

  val dup : t -> int -> unit
  (** [dup s n] duplicates the n-th item (1-based, EVM DUPn). *)

  val swap : t -> int -> unit
  (** [swap s n] swaps top with the (n+1)-th item (EVM SWAPn). *)
end

module Memory : sig
  type t

  val create : unit -> t

  val size_words : t -> int
  (** Current extent in 32-byte words. *)

  val expand : t -> offset:int -> len:int -> unit
  (** Grow so that [offset + len) is addressable ([len = 0] is a
      no-op, per EVM semantics). *)

  val load_word : t -> int -> U256.t
  val store_word : t -> int -> U256.t -> unit
  val store_byte : t -> int -> int -> unit
  val load_slice : t -> offset:int -> len:int -> string
  val store_slice : t -> offset:int -> string -> unit
end
