type instr =
  | Op of Opcode.t
  | Push of U256.t
  | Push_int of int
  | Push_label of string
  | Label of string
  | Mark of string
  | Raw of string

let push_width v =
  let b = U256.bits v in
  if b = 0 then 1 else (b + 7) / 8

let instr_size = function
  | Op _ -> 1
  | Push v -> 1 + push_width v
  | Push_int v -> 1 + push_width (U256.of_int v)
  | Push_label _ -> 3
  | Label _ -> 1
  | Mark _ -> 0
  | Raw s -> String.length s

let assemble instrs =
  (* Pass 1: label offsets. *)
  let labels = Hashtbl.create 16 in
  let _ =
    List.fold_left
      (fun off i ->
        (match i with
        | Label l | Mark l ->
            if Hashtbl.mem labels l then invalid_arg ("Asm: duplicate label " ^ l);
            Hashtbl.replace labels l off
        | _ -> ());
        off + instr_size i)
      0 instrs
  in
  (* Pass 2: emit. *)
  let buf = Buffer.create 256 in
  let emit_byte b = Buffer.add_char buf (Char.chr (b land 0xFF)) in
  let emit_push v =
    let w = push_width v in
    emit_byte (Opcode.to_byte (PUSH w));
    let raw = U256.to_bytes_be v in
    Buffer.add_string buf (String.sub raw (32 - w) w)
  in
  List.iter
    (fun i ->
      match i with
      | Op op -> emit_byte (Opcode.to_byte op)
      | Push v -> emit_push v
      | Push_int v -> emit_push (U256.of_int v)
      | Push_label l -> (
          match Hashtbl.find_opt labels l with
          | None -> invalid_arg ("Asm: undefined label " ^ l)
          | Some off ->
              emit_byte (Opcode.to_byte (PUSH 2));
              emit_byte (off lsr 8);
              emit_byte off)
      | Label _ -> emit_byte (Opcode.to_byte JUMPDEST)
      | Mark _ -> ()
      | Raw s -> Buffer.add_string buf s)
    instrs;
  Buffer.contents buf

let disassemble code =
  let buf = Buffer.create 256 in
  let i = ref 0 in
  let n = String.length code in
  while !i < n do
    let op = Opcode.of_byte (Char.code code.[!i]) in
    Buffer.add_string buf (Printf.sprintf "%04x: %s" !i (Opcode.name op));
    (match op with
    | PUSH w ->
        let avail = min w (n - !i - 1) in
        Buffer.add_string buf " 0x";
        for j = 0 to avail - 1 do
          Buffer.add_string buf (Printf.sprintf "%02x" (Char.code code.[!i + 1 + j]))
        done;
        i := !i + w
    | _ -> ());
    Buffer.add_char buf '\n';
    incr i
  done;
  Buffer.contents buf
