open Sbft_crypto

type t = Merkle_map.t

let address_of_hex s =
  let s = if String.length s >= 2 && String.sub s 0 2 = "0x" then String.sub s 2 (String.length s - 2) else s in
  if String.length s <> 40 then invalid_arg "State.address_of_hex: want 40 hex digits";
  String.init 20 (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let address_hex a =
  let b = Buffer.create 42 in
  Buffer.add_string b "0x";
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) a;
  Buffer.contents b

let contract_address ~sender ~nonce =
  let preimage = sender ^ Printf.sprintf "%016x" nonce in
  String.sub (Keccak.digest preimage) 12 20

let balance_key addr = "b" ^ addr
let nonce_key addr = "n" ^ addr
let code_key addr = "c" ^ addr
let storage_key addr slot = "s" ^ addr ^ U256.to_bytes_be slot

let balance t addr =
  match Merkle_map.get t (balance_key addr) with
  | Some v -> U256.of_bytes_be v
  | None -> U256.zero

let set_balance t addr v =
  if U256.is_zero v then Merkle_map.remove t (balance_key addr)
  else Merkle_map.set t ~key:(balance_key addr) ~value:(U256.to_bytes_be v)

let add_balance t addr v = set_balance t addr (U256.add (balance t addr) v)

let transfer t ~from_ ~to_ v =
  if U256.is_zero v then Some t
  else begin
    let b = balance t from_ in
    if U256.lt b v then None
    else begin
      let t = set_balance t from_ (U256.sub b v) in
      Some (add_balance t to_ v)
    end
  end

let nonce t addr =
  match Merkle_map.get t (nonce_key addr) with
  | Some v -> int_of_string v
  | None -> 0

let incr_nonce t addr =
  Merkle_map.set t ~key:(nonce_key addr) ~value:(string_of_int (nonce t addr + 1))

let code t addr = Option.value ~default:"" (Merkle_map.get t (code_key addr))

let set_code t addr c = Merkle_map.set t ~key:(code_key addr) ~value:c

let sload t ~addr ~slot =
  match Merkle_map.get t (storage_key addr slot) with
  | Some v -> U256.of_bytes_be v
  | None -> U256.zero

let sstore t ~addr ~slot v =
  let key = storage_key addr slot in
  if U256.is_zero v then Merkle_map.remove t key
  else Merkle_map.set t ~key ~value:(U256.to_bytes_be v)

let account_exists t addr =
  Merkle_map.get t (balance_key addr) <> None
  || Merkle_map.get t (nonce_key addr) <> None
  || Merkle_map.get t (code_key addr) <> None
