(** Tiny EVM assembler: instruction lists with symbolic labels are
    assembled into bytecode.  Used to author the benchmark/example
    contracts readably (the paper's workloads run compiled Solidity; we
    hand-assemble equivalent bytecode). *)

type instr =
  | Op of Opcode.t  (** Any non-push opcode. *)
  | Push of U256.t  (** Emitted with the minimal PUSHn width. *)
  | Push_int of int
  | Push_label of string  (** PUSH2 with the label's code offset. *)
  | Label of string  (** Defines a label and emits a JUMPDEST. *)
  | Mark of string  (** Defines a label without emitting anything. *)
  | Raw of string  (** Verbatim bytes. *)

val assemble : instr list -> string
(** @raise Invalid_argument on undefined or duplicate labels. *)

val disassemble : string -> string
(** Human-readable listing, for debugging and tests. *)
