let ctx = Interpreter.default_context

let fail_receipt reason =
  Tx.encode_receipt { ok = false; gas_used = 0; output = reason }

let rec apply_tx state (tx : Tx.t) =
  match tx with
  | Faucet { account; amount } ->
      (State.add_balance state account amount,
       Tx.encode_receipt { ok = true; gas_used = 0; output = "" })
  | Create { sender; value; init_code; gas } ->
      let intrinsic = Gas.intrinsic ~is_create:true ~data:init_code in
      if gas < intrinsic then (state, fail_receipt "intrinsic gas too low")
      else begin
        let res, addr =
          Interpreter.create ~ctx ~state ~caller:sender ~value ~init_code
            ~gas:(gas - intrinsic)
        in
        let receipt =
          Tx.encode_receipt
            {
              ok = res.success;
              gas_used = intrinsic + res.gas_used;
              output = (if res.success then addr else res.output);
            }
        in
        ((if res.success then res.state else state), receipt)
      end
  | Call { sender; to_; value; data; gas } ->
      let intrinsic = Gas.intrinsic ~is_create:false ~data in
      if gas < intrinsic then (state, fail_receipt "intrinsic gas too low")
      else begin
        let res =
          Interpreter.call ~ctx ~state ~caller:sender ~address:to_ ~value ~data
            ~gas:(gas - intrinsic)
        in
        let receipt =
          Tx.encode_receipt
            { ok = res.success; gas_used = intrinsic + res.gas_used; output = res.output }
        in
        ((if res.success then res.state else state), receipt)
      end
  | Chunk txs ->
      (* Apply sub-transactions in order; the chunk receipt aggregates
         success count and total gas. *)
      let state, ok_count, gas =
        List.fold_left
          (fun (state, ok_count, gas) tx ->
            let state, receipt = apply_tx state tx in
            match Tx.decode_receipt receipt with
            | Some rc ->
                (state, (if rc.Tx.ok then ok_count + 1 else ok_count), gas + rc.Tx.gas_used)
            | None -> (state, ok_count, gas))
          (state, 0, 0) txs
      in
      ( state,
        Tx.encode_receipt
          { ok = ok_count = List.length txs; gas_used = gas; output = string_of_int ok_count } )

let apply state op =
  match Tx.decode op with
  | None -> (state, fail_receipt "undecodable transaction")
  | Some tx -> apply_tx state tx

let create () = Sbft_store.Auth_store.create ~apply ()

let created_address ~receipt =
  match Tx.decode_receipt receipt with
  | Some { ok = true; output; _ } when String.length output = 20 -> Some output
  | _ -> None
