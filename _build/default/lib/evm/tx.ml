open Sbft_wire

type t =
  | Create of { sender : string; value : U256.t; init_code : string; gas : int }
  | Call of { sender : string; to_ : string; value : U256.t; data : string; gas : int }
  | Faucet of { account : string; amount : U256.t }
  | Chunk of t list

let rec write w tx =
  match tx with
  | Create { sender; value; init_code; gas } ->
      Codec.Writer.u8 w 1;
      Codec.Writer.raw w sender;
      Codec.Writer.raw w (U256.to_bytes_be value);
      Codec.Writer.str w init_code;
      Codec.Writer.u64 w gas
  | Call { sender; to_; value; data; gas } ->
      Codec.Writer.u8 w 2;
      Codec.Writer.raw w sender;
      Codec.Writer.raw w to_;
      Codec.Writer.raw w (U256.to_bytes_be value);
      Codec.Writer.str w data;
      Codec.Writer.u64 w gas
  | Faucet { account; amount } ->
      Codec.Writer.u8 w 3;
      Codec.Writer.raw w account;
      Codec.Writer.raw w (U256.to_bytes_be amount)
  | Chunk txs ->
      Codec.Writer.u8 w 4;
      Codec.Writer.list w (write w) txs

let encode tx =
  let w = Codec.Writer.create () in
  write w tx;
  Codec.Writer.contents w

let rec read r =
  match Codec.Reader.u8 r with
    | 1 ->
        let sender = Codec.Reader.raw r 20 in
        let value = U256.of_bytes_be (Codec.Reader.raw r 32) in
        let init_code = Codec.Reader.str r in
        let gas = Codec.Reader.u64 r in
        Some (Create { sender; value; init_code; gas })
    | 2 ->
        let sender = Codec.Reader.raw r 20 in
        let to_ = Codec.Reader.raw r 20 in
        let value = U256.of_bytes_be (Codec.Reader.raw r 32) in
        let data = Codec.Reader.str r in
        let gas = Codec.Reader.u64 r in
        Some (Call { sender; to_; value; data; gas })
    | 3 ->
        let account = Codec.Reader.raw r 20 in
        let amount = U256.of_bytes_be (Codec.Reader.raw r 32) in
        Some (Faucet { account; amount })
    | 4 ->
        let txs = Codec.Reader.list r read in
        if List.exists Option.is_none txs then None
        else Some (Chunk (List.filter_map Fun.id txs))
    | _ -> None

let decode s =
  match read (Codec.Reader.of_string s) with
  | v -> v
  | exception Codec.Reader.Truncated -> None

let rec count = function
  | Create _ | Call _ | Faucet _ -> 1
  | Chunk txs -> List.fold_left (fun acc tx -> acc + count tx) 0 txs

type receipt = { ok : bool; gas_used : int; output : string }

let encode_receipt rc =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w (if rc.ok then 1 else 0);
  Codec.Writer.u64 w rc.gas_used;
  Codec.Writer.str w rc.output;
  Codec.Writer.contents w

let decode_receipt s =
  match
    let r = Codec.Reader.of_string s in
    let ok = Codec.Reader.u8 r = 1 in
    let gas_used = Codec.Reader.u64 r in
    let output = Codec.Reader.str r in
    Some { ok; gas_used; output }
  with
  | v -> v
  | exception Codec.Reader.Truncated -> None

let pp fmt = function
  | Create { sender; _ } -> Format.fprintf fmt "create(from=%s)" (State.address_hex sender)
  | Call { sender; to_; _ } ->
      Format.fprintf fmt "call(from=%s, to=%s)" (State.address_hex sender)
        (State.address_hex to_)
  | Faucet { account; amount } ->
      Format.fprintf fmt "faucet(%s, %s)" (State.address_hex account) (U256.to_hex amount)
  | Chunk txs -> Format.fprintf fmt "chunk(%d txs)" (List.length txs)
