(** EVM gas schedule (Byzantium-era constants; see Yellow Paper
    Appendix G for the reference values). *)

val g_zero : int
val g_base : int
val g_verylow : int
val g_low : int
val g_mid : int
val g_high : int
val g_jumpdest : int
val g_balance : int
val g_sload : int
val g_sstore_set : int
(** Zero → non-zero. *)

val g_sstore_reset : int
(** Non-zero → any. *)

val g_sha3 : int
val g_sha3_word : int
val g_copy_word : int
val g_log : int
val g_log_topic : int
val g_log_byte : int
val g_call : int
val g_call_value : int
val g_create : int
val g_code_deposit_byte : int
val g_tx : int
val g_tx_create : int
val g_tx_data_zero : int
val g_tx_data_nonzero : int
val g_exp : int
val g_exp_byte : int

val memory_cost : int -> int
(** [memory_cost words]: total cost of having expanded memory to
    [words] 32-byte words ([3w + w²/512]). *)

val intrinsic : is_create:bool -> data:string -> int
(** Intrinsic transaction gas: base + per-byte data charges. *)

val static_cost : Opcode.t -> int
(** Base cost of an opcode, excluding dynamic components (memory
    expansion, copy sizes, storage transitions, calls). *)
