type t =
  | STOP
  | ADD | MUL | SUB | DIV | SDIV | MOD | SMOD | ADDMOD | MULMOD | EXP | SIGNEXTEND
  | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR | NOT | BYTE | SHL | SHR | SAR
  | SHA3
  | ADDRESS | BALANCE | ORIGIN | CALLER | CALLVALUE | CALLDATALOAD | CALLDATASIZE
  | CALLDATACOPY | CODESIZE | CODECOPY | GASPRICE | RETURNDATASIZE | RETURNDATACOPY
  | EXTCODESIZE | EXTCODECOPY | EXTCODEHASH
  | COINBASE | TIMESTAMP | NUMBER | SELFBALANCE
  | POP | MLOAD | MSTORE | MSTORE8 | SLOAD | SSTORE | JUMP | JUMPI | PC | MSIZE | GAS
  | JUMPDEST
  | PUSH of int
  | DUP of int
  | SWAP of int
  | LOG of int
  | CREATE | CALL | STATICCALL | DELEGATECALL | RETURN | REVERT
  | INVALID of int

let of_byte b =
  match b with
  | 0x00 -> STOP
  | 0x01 -> ADD | 0x02 -> MUL | 0x03 -> SUB | 0x04 -> DIV | 0x05 -> SDIV
  | 0x06 -> MOD | 0x07 -> SMOD | 0x08 -> ADDMOD | 0x09 -> MULMOD | 0x0a -> EXP
  | 0x0b -> SIGNEXTEND
  | 0x10 -> LT | 0x11 -> GT | 0x12 -> SLT | 0x13 -> SGT | 0x14 -> EQ
  | 0x15 -> ISZERO | 0x16 -> AND | 0x17 -> OR | 0x18 -> XOR | 0x19 -> NOT
  | 0x1a -> BYTE | 0x1b -> SHL | 0x1c -> SHR | 0x1d -> SAR
  | 0x20 -> SHA3
  | 0x30 -> ADDRESS | 0x31 -> BALANCE | 0x32 -> ORIGIN | 0x33 -> CALLER
  | 0x34 -> CALLVALUE | 0x35 -> CALLDATALOAD | 0x36 -> CALLDATASIZE
  | 0x37 -> CALLDATACOPY | 0x38 -> CODESIZE | 0x39 -> CODECOPY | 0x3a -> GASPRICE
  | 0x3b -> EXTCODESIZE | 0x3c -> EXTCODECOPY | 0x3f -> EXTCODEHASH
  | 0x3d -> RETURNDATASIZE | 0x3e -> RETURNDATACOPY
  | 0x41 -> COINBASE | 0x42 -> TIMESTAMP | 0x43 -> NUMBER | 0x47 -> SELFBALANCE
  | 0x50 -> POP | 0x51 -> MLOAD | 0x52 -> MSTORE | 0x53 -> MSTORE8
  | 0x54 -> SLOAD | 0x55 -> SSTORE | 0x56 -> JUMP | 0x57 -> JUMPI
  | 0x58 -> PC | 0x59 -> MSIZE | 0x5a -> GAS | 0x5b -> JUMPDEST
  | b when b >= 0x60 && b <= 0x7f -> PUSH (b - 0x5f)
  | b when b >= 0x80 && b <= 0x8f -> DUP (b - 0x7f)
  | b when b >= 0x90 && b <= 0x9f -> SWAP (b - 0x8f)
  | b when b >= 0xa0 && b <= 0xa4 -> LOG (b - 0xa0)
  | 0xf0 -> CREATE | 0xf1 -> CALL | 0xfa -> STATICCALL | 0xf4 -> DELEGATECALL
  | 0xf3 -> RETURN | 0xfd -> REVERT
  | b -> INVALID b

let to_byte = function
  | STOP -> 0x00
  | ADD -> 0x01 | MUL -> 0x02 | SUB -> 0x03 | DIV -> 0x04 | SDIV -> 0x05
  | MOD -> 0x06 | SMOD -> 0x07 | ADDMOD -> 0x08 | MULMOD -> 0x09 | EXP -> 0x0a
  | SIGNEXTEND -> 0x0b
  | LT -> 0x10 | GT -> 0x11 | SLT -> 0x12 | SGT -> 0x13 | EQ -> 0x14
  | ISZERO -> 0x15 | AND -> 0x16 | OR -> 0x17 | XOR -> 0x18 | NOT -> 0x19
  | BYTE -> 0x1a | SHL -> 0x1b | SHR -> 0x1c | SAR -> 0x1d
  | SHA3 -> 0x20
  | ADDRESS -> 0x30 | BALANCE -> 0x31 | ORIGIN -> 0x32 | CALLER -> 0x33
  | CALLVALUE -> 0x34 | CALLDATALOAD -> 0x35 | CALLDATASIZE -> 0x36
  | CALLDATACOPY -> 0x37 | CODESIZE -> 0x38 | CODECOPY -> 0x39 | GASPRICE -> 0x3a
  | RETURNDATASIZE -> 0x3d | RETURNDATACOPY -> 0x3e
  | EXTCODESIZE -> 0x3b | EXTCODECOPY -> 0x3c | EXTCODEHASH -> 0x3f
  | COINBASE -> 0x41 | TIMESTAMP -> 0x42 | NUMBER -> 0x43 | SELFBALANCE -> 0x47
  | POP -> 0x50 | MLOAD -> 0x51 | MSTORE -> 0x52 | MSTORE8 -> 0x53
  | SLOAD -> 0x54 | SSTORE -> 0x55 | JUMP -> 0x56 | JUMPI -> 0x57
  | PC -> 0x58 | MSIZE -> 0x59 | GAS -> 0x5a | JUMPDEST -> 0x5b
  | PUSH n -> 0x5f + n
  | DUP n -> 0x7f + n
  | SWAP n -> 0x8f + n
  | LOG n -> 0xa0 + n
  | CREATE -> 0xf0 | CALL -> 0xf1 | STATICCALL -> 0xfa | DELEGATECALL -> 0xf4
  | RETURN -> 0xf3 | REVERT -> 0xfd
  | INVALID b -> b

let name = function
  | STOP -> "STOP"
  | ADD -> "ADD" | MUL -> "MUL" | SUB -> "SUB" | DIV -> "DIV" | SDIV -> "SDIV"
  | MOD -> "MOD" | SMOD -> "SMOD" | ADDMOD -> "ADDMOD" | MULMOD -> "MULMOD"
  | EXP -> "EXP" | SIGNEXTEND -> "SIGNEXTEND"
  | LT -> "LT" | GT -> "GT" | SLT -> "SLT" | SGT -> "SGT" | EQ -> "EQ"
  | ISZERO -> "ISZERO" | AND -> "AND" | OR -> "OR" | XOR -> "XOR" | NOT -> "NOT"
  | BYTE -> "BYTE" | SHL -> "SHL" | SHR -> "SHR" | SAR -> "SAR"
  | SHA3 -> "SHA3"
  | ADDRESS -> "ADDRESS" | BALANCE -> "BALANCE" | ORIGIN -> "ORIGIN"
  | CALLER -> "CALLER" | CALLVALUE -> "CALLVALUE" | CALLDATALOAD -> "CALLDATALOAD"
  | CALLDATASIZE -> "CALLDATASIZE" | CALLDATACOPY -> "CALLDATACOPY"
  | CODESIZE -> "CODESIZE" | CODECOPY -> "CODECOPY" | GASPRICE -> "GASPRICE"
  | RETURNDATASIZE -> "RETURNDATASIZE" | RETURNDATACOPY -> "RETURNDATACOPY"
  | EXTCODESIZE -> "EXTCODESIZE" | EXTCODECOPY -> "EXTCODECOPY"
  | EXTCODEHASH -> "EXTCODEHASH"
  | COINBASE -> "COINBASE" | TIMESTAMP -> "TIMESTAMP" | NUMBER -> "NUMBER"
  | SELFBALANCE -> "SELFBALANCE"
  | POP -> "POP" | MLOAD -> "MLOAD" | MSTORE -> "MSTORE" | MSTORE8 -> "MSTORE8"
  | SLOAD -> "SLOAD" | SSTORE -> "SSTORE" | JUMP -> "JUMP" | JUMPI -> "JUMPI"
  | PC -> "PC" | MSIZE -> "MSIZE" | GAS -> "GAS" | JUMPDEST -> "JUMPDEST"
  | PUSH n -> Printf.sprintf "PUSH%d" n
  | DUP n -> Printf.sprintf "DUP%d" n
  | SWAP n -> Printf.sprintf "SWAP%d" n
  | LOG n -> Printf.sprintf "LOG%d" n
  | CREATE -> "CREATE" | CALL -> "CALL" | STATICCALL -> "STATICCALL"
  | DELEGATECALL -> "DELEGATECALL"
  | RETURN -> "RETURN" | REVERT -> "REVERT"
  | INVALID b -> Printf.sprintf "INVALID(0x%02x)" b
