let g_zero = 0
let g_base = 2
let g_verylow = 3
let g_low = 5
let g_mid = 8
let g_high = 10
let g_jumpdest = 1
let g_balance = 400
let g_sload = 200
let g_sstore_set = 20000
let g_sstore_reset = 5000
let g_sha3 = 30
let g_sha3_word = 6
let g_copy_word = 3
let g_log = 375
let g_log_topic = 375
let g_log_byte = 8
let g_call = 700
let g_call_value = 9000
let g_create = 32000
let g_code_deposit_byte = 200
let g_tx = 21000
let g_tx_create = 53000
let g_tx_data_zero = 4
let g_tx_data_nonzero = 68
let g_exp = 10
let g_exp_byte = 50

let memory_cost words = (3 * words) + (words * words / 512)

let intrinsic ~is_create ~data =
  let base = if is_create then g_tx_create else g_tx in
  String.fold_left
    (fun acc c -> acc + if c = '\x00' then g_tx_data_zero else g_tx_data_nonzero)
    base data

let static_cost (op : Opcode.t) =
  match op with
  | STOP | RETURN | REVERT -> g_zero
  | ADDRESS | ORIGIN | CALLER | CALLVALUE | CALLDATASIZE | CODESIZE | GASPRICE
  | COINBASE | TIMESTAMP | NUMBER | RETURNDATASIZE | POP | PC | MSIZE | GAS ->
      g_base
  | ADD | SUB | NOT | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR | BYTE
  | SHL | SHR | SAR | CALLDATALOAD | MLOAD | MSTORE | MSTORE8 | PUSH _ | DUP _
  | SWAP _ ->
      g_verylow
  | MUL | DIV | SDIV | MOD | SMOD | SIGNEXTEND | SELFBALANCE -> g_low
  | ADDMOD | MULMOD | JUMP -> g_mid
  | JUMPI -> g_high
  | JUMPDEST -> g_jumpdest
  | BALANCE | EXTCODESIZE | EXTCODEHASH -> g_balance
  | EXTCODECOPY -> g_balance
  | SLOAD -> g_sload
  | SSTORE -> 0 (* dynamic *)
  | SHA3 -> g_sha3
  | CALLDATACOPY | CODECOPY | RETURNDATACOPY -> g_verylow
  | EXP -> g_exp
  | LOG n -> g_log + (n * g_log_topic)
  | CALL | STATICCALL | DELEGATECALL -> g_call
  | CREATE -> g_create
  | INVALID _ -> 0
