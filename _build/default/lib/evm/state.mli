(** World state: accounts (balance, nonce, code) and contract storage,
    kept in the authenticated {!Sbft_crypto.Merkle_map} so the
    replication layer's state digests and proofs cover the whole ledger
    (paper §IV: "the key-value store keeps the state of the ledger
    service ... the code of the contracts and the contracts' state").

    All functions are persistent: they return the updated map.
    Addresses are 20-byte strings. *)

type t = Sbft_crypto.Merkle_map.t

val address_of_hex : string -> string
(** Parses a 40-hex-digit (optionally 0x-prefixed) address. *)

val address_hex : string -> string

val contract_address : sender:string -> nonce:int -> string
(** Deterministic address for a contract created by [sender] at [nonce]:
    last 20 bytes of keccak256(sender ‖ nonce).  (Real Ethereum RLP-
    encodes the pair first; the substitution is documented in
    DESIGN.md and is equally collision-resistant.) *)

val balance : t -> string -> U256.t
val set_balance : t -> string -> U256.t -> t
val add_balance : t -> string -> U256.t -> t

val transfer : t -> from_:string -> to_:string -> U256.t -> t option
(** [None] when the sender balance is insufficient. *)

val nonce : t -> string -> int
val incr_nonce : t -> string -> t

val code : t -> string -> string
val set_code : t -> string -> string -> t

val sload : t -> addr:string -> slot:U256.t -> U256.t
val sstore : t -> addr:string -> slot:U256.t -> U256.t -> t
(** Storing zero deletes the slot (keeps the trie canonical and makes
    the SSTORE refund semantics representable). *)

val account_exists : t -> string -> bool
