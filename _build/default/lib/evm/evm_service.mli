(** The smart-contract ledger as a replicated service: decodes {!Tx}
    operations, charges intrinsic gas, runs the {!Interpreter} and
    returns an encoded {!Tx.receipt}.  Plugs into
    {!Sbft_store.Auth_store} exactly like the plain KV service, so the
    same replication engine drives both (paper §IV's layering). *)

val apply : Sbft_store.Auth_store.apply

val create : unit -> Sbft_store.Auth_store.t
(** Fresh authenticated store running the EVM ledger. *)

val created_address : receipt:string -> string option
(** Convenience: the 20-byte address out of a successful [Create]
    receipt. *)
