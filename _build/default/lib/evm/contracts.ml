open Asm

let word_of_address a = U256.of_bytes_be a

(* Shared prologue: leave the 1-byte selector on the stack. *)
let load_selector = [ Push_int 0; Op CALLDATALOAD; Push_int 248; Op SHR ]

let revert_tail = [ Push_int 0; Push_int 0; Op REVERT ]

(* Return the 32-byte word on top of the stack. *)
let return_top =
  [ Push_int 0; Op MSTORE; Push_int 32; Push_int 0; Op RETURN ]

let deploy_wrapper ~ctor ~runtime =
  assemble
    (ctor
    @ [
        Push_int (String.length runtime);
        Push_label "runtime_start";
        Push_int 0;
        Op CODECOPY;
        Push_int (String.length runtime);
        Push_int 0;
        Op RETURN;
        Mark "runtime_start";
        Raw runtime;
      ])

(* ------------------------------------------------------------------ *)
(* Counter *)

let counter_runtime =
  assemble
    (load_selector
    @ [
        Op (DUP 1); Op ISZERO; Push_label "increment"; Op JUMPI;
        Push_int 1; Op EQ; Push_label "get"; Op JUMPI;
      ]
    @ revert_tail
    @ [ Label "increment"; Op POP;
        Push_int 0; Op SLOAD; Push_int 1; Op ADD;
        Op (DUP 1); Push_int 0; Op SSTORE ]
    @ return_top
    @ [ Label "get"; Push_int 0; Op SLOAD ]
    @ return_top)

let counter_init = deploy_wrapper ~ctor:[] ~runtime:counter_runtime

let counter_increment = "\x00"
let counter_get = "\x01"

(* ------------------------------------------------------------------ *)
(* Token *)

let token_runtime =
  assemble
    (load_selector
    @ [
        Op (DUP 1); Push_int 1; Op EQ; Push_label "transfer"; Op JUMPI;
        Op (DUP 1); Push_int 2; Op EQ; Push_label "balance_of"; Op JUMPI;
      ]
    @ revert_tail
    @ [
        Label "transfer"; Op POP;
        (* stack: [] -> [amount; to; caller_balance] *)
        Push_int 33; Op CALLDATALOAD;
        Push_int 1; Op CALLDATALOAD;
        Op CALLER; Op SLOAD;
        (* insufficient? caller_balance < amount *)
        Op (DUP 3); Op (DUP 2); Op LT; Push_label "insufficient"; Op JUMPI;
        (* balances[caller] = caller_balance - amount *)
        Op (DUP 3); Op (SWAP 1); Op SUB; Op CALLER; Op SSTORE;
        (* balances[to] += amount ; stack: [amount; to] *)
        Op (DUP 1); Op SLOAD; Op (DUP 3); Op ADD; Op (SWAP 1); Op SSTORE;
        Op POP;
        Push_int 1;
      ]
    @ return_top
    @ [ Label "balance_of"; Op POP; Push_int 1; Op CALLDATALOAD; Op SLOAD ]
    @ return_top
    @ [ Label "insufficient" ]
    @ revert_tail)

let token_init ~supply =
  deploy_wrapper
    ~ctor:[ Push supply; Op CALLER; Op SSTORE ]
    ~runtime:token_runtime

let token_transfer ~to_ ~amount =
  "\x01" ^ U256.to_bytes_be (word_of_address to_) ^ U256.to_bytes_be amount

let token_balance_of ~addr = "\x02" ^ U256.to_bytes_be (word_of_address addr)

(* ------------------------------------------------------------------ *)
(* Escrow *)

let escrow_runtime =
  assemble
    (load_selector
    @ [
        Op (DUP 1); Op ISZERO; Push_label "contribute"; Op JUMPI;
        Op (DUP 1); Push_int 1; Op EQ; Push_label "total"; Op JUMPI;
        Op (DUP 1); Push_int 2; Op EQ; Push_label "of"; Op JUMPI;
      ]
    @ revert_tail
    @ [
        Label "contribute"; Op POP;
        Push_int 0; Op SLOAD; Op CALLVALUE; Op ADD;
        Op (DUP 1); Push_int 0; Op SSTORE;
        Op CALLER; Op SLOAD; Op CALLVALUE; Op ADD; Op CALLER; Op SSTORE;
      ]
    @ return_top
    @ [ Label "total"; Op POP; Push_int 0; Op SLOAD ]
    @ return_top
    @ [ Label "of"; Op POP; Push_int 1; Op CALLDATALOAD; Op SLOAD ]
    @ return_top)

let escrow_init = deploy_wrapper ~ctor:[] ~runtime:escrow_runtime

let escrow_contribute = "\x00"
let escrow_total = "\x01"
let escrow_contribution_of ~addr = "\x02" ^ U256.to_bytes_be (word_of_address addr)
