(** Table and CSV rendering of benchmark points. *)

val print_throughput_table :
  title:string -> clients:int list -> rows:(string * Scenario.point list) list -> unit
(** One row per protocol, one column per client count; cells show
    ops/second. *)

val print_latency_table :
  title:string -> clients:int list -> rows:(string * Scenario.point list) list -> unit
(** Same layout; cells show "latency_ms @ throughput" pairs (the axes of
    the paper's Figure 3). *)

val print_points : title:string -> Scenario.point list -> unit
(** Generic long-format dump, one line per point. *)

val csv_of_points : Scenario.point list -> string

val write_csv : path:string -> Scenario.point list -> unit
