lib/harness/experiments.mli:
