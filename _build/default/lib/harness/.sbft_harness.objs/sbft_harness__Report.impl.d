lib/harness/report.ml: Buffer List Printf Scenario String
