lib/harness/experiments.ml: Cluster Config Engine Format Fun List Printf Report Sbft_core Sbft_sim Sbft_store Sbft_workload Scenario Topology Trace Types
