lib/harness/report.mli: Scenario
