lib/harness/scenario.mli: Sbft_core Sbft_sim
