let hr = String.make 96 '-'

let print_throughput_table ~title ~clients ~rows =
  Printf.printf "\n%s\n%s\n" title hr;
  Printf.printf "%-22s" "protocol";
  List.iter (fun c -> Printf.printf "%12s" (Printf.sprintf "%d cl" c)) clients;
  print_newline ();
  List.iter
    (fun (name, points) ->
      Printf.printf "%-22s" name;
      List.iter
        (fun (p : Scenario.point) -> Printf.printf "%12.0f" p.Scenario.throughput_ops)
        points;
      print_newline ())
    rows;
  Printf.printf "%s\n(cells: operations/second)\n%!" hr

let print_latency_table ~title ~clients ~rows =
  Printf.printf "\n%s\n%s\n" title hr;
  Printf.printf "%-22s" "protocol";
  List.iter (fun c -> Printf.printf "%18s" (Printf.sprintf "%d cl" c)) clients;
  print_newline ();
  List.iter
    (fun (name, points) ->
      Printf.printf "%-22s" name;
      List.iter
        (fun (p : Scenario.point) ->
          Printf.printf "%18s"
            (Printf.sprintf "%.0fms@%.0f" p.Scenario.median_latency_ms
               p.Scenario.throughput_ops))
        points;
      print_newline ())
    rows;
  Printf.printf "%s\n(cells: median latency @ throughput)\n%!" hr

let print_points ~title points =
  Printf.printf "\n%s\n%s\n" title hr;
  Printf.printf "%-22s %8s %6s %9s %9s %9s %7s %5s %6s\n" "protocol" "clients" "fail"
    "ops/s" "med ms" "mean ms" "fast%" "vc" "agree";
  List.iter
    (fun (p : Scenario.point) ->
      let s = p.Scenario.scenario in
      Printf.printf "%-22s %8d %6d %9.0f %9.1f %9.1f %6.0f%% %5d %6b\n"
        (Scenario.protocol_name s.Scenario.protocol)
        s.Scenario.num_clients s.Scenario.failures p.Scenario.throughput_ops
        p.Scenario.median_latency_ms p.Scenario.mean_latency_ms
        (100.0 *. p.Scenario.fast_fraction)
        p.Scenario.view_changes p.Scenario.agreement)
    points;
  Printf.printf "%s\n%!" hr

let csv_of_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "protocol,f,workload,clients,failures,topology,ops_per_sec,median_ms,mean_ms,p90_ms,completed,messages,bytes,fast_fraction,view_changes,agreement\n";
  List.iter
    (fun (p : Scenario.point) ->
      let s = p.Scenario.scenario in
      let workload =
        match s.Scenario.workload with
        | Scenario.Kv { batching } -> if batching then "kv-batch" else "kv-nobatch"
        | Scenario.Eth -> "eth"
      in
      let topo =
        match s.Scenario.topology with
        | `Lan -> "lan"
        | `Continent -> "continent"
        | `World -> "world"
      in
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%d,%d,%s,%.1f,%.2f,%.2f,%.2f,%d,%d,%d,%.3f,%d,%b\n"
           (Scenario.protocol_name s.Scenario.protocol)
           s.Scenario.f workload s.Scenario.num_clients s.Scenario.failures topo
           p.Scenario.throughput_ops p.Scenario.median_latency_ms
           p.Scenario.mean_latency_ms p.Scenario.p90_latency_ms
           p.Scenario.completed_requests p.Scenario.messages p.Scenario.bytes
           p.Scenario.fast_fraction p.Scenario.view_changes p.Scenario.agreement))
    points;
  Buffer.contents b

let write_csv ~path points =
  let oc = open_out path in
  output_string oc (csv_of_points points);
  close_out oc
