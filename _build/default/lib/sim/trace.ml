type record = { time : Engine.time; node : int; kind : string; detail : string }

type t = { mutable on : bool; mutable recs : record list }

let create ?(enabled = false) () = { on = enabled; recs = [] }
let enabled t = t.on
let set_enabled t b = t.on <- b

let emit t ~time ~node ~kind ~detail =
  if t.on then t.recs <- { time; node; kind; detail } :: t.recs

let records t = List.rev t.recs
let find_all t ~kind = List.filter (fun r -> r.kind = kind) (records t)
let clear t = t.recs <- []

let pp_record fmt r =
  Format.fprintf fmt "%10.3fms node=%-3d %-24s %s" (Engine.to_ms r.time) r.node
    r.kind r.detail
