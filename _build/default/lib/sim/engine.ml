type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let ms_f x = int_of_float (x *. 1_000_000.)
let sec x = x * 1_000_000_000
let sec_f x = int_of_float (x *. 1_000_000_000.)

let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

type node = {
  id : int;
  mutable cpu_free_at : time;
  mutable crashed : bool;
  mutable cpu_scale : float;
  pending : pending_work Queue.t;
  mutable drain_at : time; (* time of the scheduled drain event, or -1 *)
}

and pending_work = Work : (ctx_ -> unit) -> pending_work

and ctx_ = { eng : t_; node : node; mutable cpu_now : time }

and t_ = {
  mutable now : time;
  mutable seq : int;
  events : (unit -> unit) Heap.t;
  nodes : node array;
  rng : Rng.t;
  mutable executed : int;
}

type t = t_
type ctx = ctx_

type timer = { mutable cancelled : bool }

let create ~num_nodes ~seed () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ();
    nodes =
      Array.init num_nodes (fun id ->
          {
            id;
            cpu_free_at = 0;
            crashed = false;
            cpu_scale = 1.0;
            pending = Queue.create ();
            drain_at = -1;
          });
    rng = Rng.create seed;
    executed = 0;
  }

let num_nodes t = Array.length t.nodes
let now t = t.now
let rng t = t.rng

let node t i = t.nodes.(i)

let crash t i = (node t i).crashed <- true

let recover t i =
  let nd = node t i in
  nd.crashed <- false;
  nd.cpu_free_at <- t.now;
  Queue.clear nd.pending;
  nd.drain_at <- -1

let is_crashed t i = (node t i).crashed
let set_cpu_scale t i s = (node t i).cpu_scale <- s

let schedule t ~at f =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Heap.push t.events ~key0:at ~key1:t.seq f

(* Per-node FIFO CPU queue: each arriving work item enqueues; a single
   "drain" event per node runs items back-to-back as the CPU frees up,
   so a busy CPU costs O(1) events per handler instead of a requeue
   storm. *)
let rec drain t nd () =
  nd.drain_at <- -1;
  if not nd.crashed then begin
    while (not (Queue.is_empty nd.pending)) && nd.cpu_free_at <= t.now do
      let (Work f) = Queue.pop nd.pending in
      let c = { eng = t; node = nd; cpu_now = (if nd.cpu_free_at > t.now then nd.cpu_free_at else t.now) } in
      f c;
      if c.cpu_now > nd.cpu_free_at then nd.cpu_free_at <- c.cpu_now
    done;
    if not (Queue.is_empty nd.pending) then begin
      nd.drain_at <- nd.cpu_free_at;
      schedule t ~at:nd.cpu_free_at (drain t nd)
    end
  end
  else Queue.clear nd.pending

let arrive t nd f =
  if not nd.crashed then begin
    Queue.push (Work f) nd.pending;
    if nd.drain_at < 0 then begin
      let at = if nd.cpu_free_at > t.now then nd.cpu_free_at else t.now in
      nd.drain_at <- at;
      if at <= t.now then drain t nd () else schedule t ~at (drain t nd)
    end
  end

let dispatch t ~dst ~at f =
  let nd = node t dst in
  schedule t ~at (fun () -> arrive t nd f)

let set_timer t ~node:i ~after f =
  let tm = { cancelled = false } in
  let wrapped c = if not tm.cancelled then f c in
  dispatch t ~dst:i ~at:(t.now + after) wrapped;
  tm

let cancel_timer tm = tm.cancelled <- true

let self c = c.node.id
let ctx_now c = c.cpu_now

let charge c dt =
  let scaled =
    if c.node.cpu_scale = 1.0 then dt
    else int_of_float (float_of_int dt *. c.node.cpu_scale)
  in
  c.cpu_now <- c.cpu_now + scaled

let engine c = c.eng

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match Heap.peek_key t.events with
    | Some (at, _) when at <= deadline -> (
        match Heap.pop_min t.events with
        | Some (at, _, f) ->
            t.now <- (if at > t.now then at else t.now);
            t.executed <- t.executed + 1;
            f ()
        | None -> continue := false)
    | _ -> continue := false
  done;
  if deadline > t.now then t.now <- deadline

let run_all ?(max_events = max_int) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.pop_min t.events with
    | Some (at, _, f) ->
        t.now <- (if at > t.now then at else t.now);
        t.executed <- t.executed + 1;
        decr budget;
        f ()
    | None -> continue := false
  done

let events_executed t = t.executed
let pending_events t = Heap.size t.events
