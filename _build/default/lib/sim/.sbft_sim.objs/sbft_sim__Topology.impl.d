lib/sim/topology.ml: Array Engine Float Rng
