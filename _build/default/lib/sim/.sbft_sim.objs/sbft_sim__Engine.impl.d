lib/sim/engine.ml: Array Heap Queue Rng
