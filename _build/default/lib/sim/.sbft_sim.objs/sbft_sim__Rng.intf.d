lib/sim/rng.mli:
