lib/sim/network.ml: Array Engine Hashtbl Rng Topology
