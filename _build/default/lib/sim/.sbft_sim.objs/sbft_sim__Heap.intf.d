lib/sim/heap.mli:
