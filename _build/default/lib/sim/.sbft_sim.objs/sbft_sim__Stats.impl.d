lib/sim/stats.ml: Array Engine
