type 'a entry = { k0 : int; k1 : int; v : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty t = t.len = 0
let size t = t.len

let less a b = a.k0 < b.k0 || (a.k0 = b.k0 && a.k1 < b.k1)

let grow t e =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nd = Array.make ncap e in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let push t ~key0 ~key1 v =
  let e = { k0 = key0; k1 = key1; v } in
  grow t e;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less t.data.(!i) t.data.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(p);
    t.data.(p) <- tmp;
    i := p
  done

let pop_min t =
  if t.len = 0 then None
  else begin
    let root = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (root.k0, root.k1, root.v)
  end

let peek_key t = if t.len = 0 then None else Some (t.data.(0).k0, t.data.(0).k1)

let clear t =
  t.data <- [||];
  t.len <- 0
