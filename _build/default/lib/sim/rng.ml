(* SplitMix64 (Steele, Lea, Flood 2014): a tiny, fast, splittable PRNG
   with excellent statistical quality for simulation purposes. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix Int64.(add seed golden_gamma) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative; modulo bias is negligible for bounds far below 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t =
  (* 53 high bits -> [0, 1) *)
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t p = float t < p

let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let exponential t ~mean =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
