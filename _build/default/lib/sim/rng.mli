(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through a value of
    type {!t} so that a simulation seeded with the same value replays the
    exact same schedule.  Generators are splittable: {!split} derives an
    independent stream, which lets each node or workload own a private
    generator without perturbing the others. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int64 -> t

(** [split t] derives an independent generator from [t], advancing [t]. *)
val split : t -> t

(** [int64 t] returns the next raw 64-bit output. *)
val int64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t] returns a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t p] returns [true] with probability [p]. *)
val bool : t -> float -> bool

(** [gaussian t] returns a standard-normal sample (Box–Muller). *)
val gaussian : t -> float

(** [exponential t ~mean] returns an exponentially distributed sample. *)
val exponential : t -> mean:float -> float

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t a] returns a uniformly random element of [a].
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a
