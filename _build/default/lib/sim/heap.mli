(** Array-backed binary min-heap keyed by [(int, int)] pairs compared
    lexicographically.

    The simulator keys events by [(virtual time, insertion sequence)]:
    the second component makes event ordering deterministic and FIFO
    among events scheduled for the same instant. *)

type 'a t

(** [create ()] returns an empty heap. *)
val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h ~key0 ~key1 v] inserts [v] with key [(key0, key1)]. *)
val push : 'a t -> key0:int -> key1:int -> 'a -> unit

(** [pop_min h] removes and returns [(key0, key1, v)] with the smallest
    key, or [None] when the heap is empty. *)
val pop_min : 'a t -> (int * int * 'a) option

(** [peek_key h] returns the smallest key without removing it. *)
val peek_key : 'a t -> (int * int) option

val clear : 'a t -> unit
