(** Structured event tracing.

    Protocol code emits trace records (time, node, kind, detail); tests
    and the Figure-1 reproduction assert on the recorded flow.  Tracing
    is off by default and costs one branch per call when disabled. *)

type record = {
  time : Engine.time;
  node : int;
  kind : string;  (** e.g. ["send:pre-prepare"], ["commit"], ["view-change"] *)
  detail : string;
}

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> time:Engine.time -> node:int -> kind:string -> detail:string -> unit

val records : t -> record list
(** In emission order. *)

val find_all : t -> kind:string -> record list
val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
