module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

  let u32 b v =
    u8 b (v lsr 24);
    u8 b (v lsr 16);
    u8 b (v lsr 8);
    u8 b v

  let u64 b v =
    u32 b (v lsr 32);
    u32 b (v land 0xFFFFFFFF)

  let rec varint b v =
    if v < 0 then invalid_arg "Codec.varint: negative";
    if v < 0x80 then u8 b v
    else begin
      u8 b (0x80 lor (v land 0x7F));
      varint b (v lsr 7)
    end

  let str b s =
    varint b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s

  let list b f xs =
    varint b (List.length xs);
    List.iter f xs

  let contents = Buffer.contents
  let length = Buffer.length
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Truncated

  let of_string data = { data; pos = 0 }

  let u8 r =
    if r.pos >= String.length r.data then raise Truncated;
    let v = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    let a = u8 r in
    let b = u8 r in
    let c = u8 r in
    let d = u8 r in
    (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

  let u64 r =
    let hi = u32 r in
    let lo = u32 r in
    (hi lsl 32) lor lo

  let varint r =
    let rec go shift acc =
      let b = u8 r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let raw r n =
    if r.pos + n > String.length r.data then raise Truncated;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let str r =
    let n = varint r in
    raw r n

  let list r f =
    let n = varint r in
    List.init n (fun _ -> f r)

  let at_end r = r.pos = String.length r.data
end
