lib/wire/codec.ml: Buffer Char List String
