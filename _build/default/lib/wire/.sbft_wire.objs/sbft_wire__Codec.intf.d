lib/wire/codec.mli:
