(** Minimal binary codec: length-prefixed strings, varints, lists.

    Used for (a) hashing protocol messages (the [h = H(s‖v‖r)] digests
    must be computed over a canonical byte encoding), (b) realistic
    message-size accounting in the network model, and (c) snapshot
    serialization for state transfer. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val varint : t -> int -> unit
  val str : t -> string -> unit
  (** Varint length prefix followed by the bytes. *)

  val raw : t -> string -> unit
  (** Bytes with no length prefix. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Varint count followed by each element (caller writes elements
      through the provided function). *)

  val contents : t -> string
  val length : t -> int
end

module Reader : sig
  type t

  exception Truncated

  val of_string : string -> t
  val u8 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val varint : t -> int
  val str : t -> string
  val raw : t -> int -> string
  val list : t -> (t -> 'a) -> 'a list
  val at_end : t -> bool
end
