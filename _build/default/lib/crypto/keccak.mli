(** Keccak-256 as used by Ethereum (original Keccak padding [0x01], not
    the NIST SHA3 padding [0x06]).

    The EVM's [SHA3] opcode, contract addresses and storage layouts all
    use this hash.  Validated against known Ethereum vectors (e.g.
    [keccak256("") = c5d2460186f7...]). *)

val digest : string -> string
(** 32-byte Keccak-256 digest. *)

val digest_bytes : bytes -> off:int -> len:int -> string
