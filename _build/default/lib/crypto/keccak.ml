(* Keccak-f[1600] over 25 Int64 lanes; rate 136 bytes for a 256-bit
   output; multi-rate padding 0x01 .. 0x80 (pre-NIST, Ethereum flavor). *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808AL;
    0x8000000080008000L; 0x000000000000808BL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008AL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000AL;
    0x000000008000808BL; 0x800000000000008BL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800AL; 0x800000008000000AL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

let rotation_offsets =
  [|
    0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f state =
  let c = Array.make 5 0L and d = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10)
                (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <- Int64.logxor state.(x + (5 * y)) d.(x)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        b.(dst) <- rotl64 state.(src) rotation_offsets.(src)
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let i = x + (5 * y) in
        state.(i) <-
          Int64.logxor b.(i)
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate = 136

let digest_bytes data ~off ~len =
  let state = Array.make 25 0L in
  let absorb_block block boff =
    for i = 0 to (rate / 8) - 1 do
      let lane = ref 0L in
      for j = 7 downto 0 do
        lane :=
          Int64.logor
            (Int64.shift_left !lane 8)
            (Int64.of_int (Char.code (Bytes.get block (boff + (8 * i) + j))))
      done;
      state.(i) <- Int64.logxor state.(i) !lane
    done;
    keccak_f state
  in
  let full_blocks = len / rate in
  for b = 0 to full_blocks - 1 do
    absorb_block data (off + (b * rate))
  done;
  (* Final padded block. *)
  let remaining = len - (full_blocks * rate) in
  let last = Bytes.make rate '\x00' in
  Bytes.blit data (off + (full_blocks * rate)) last 0 remaining;
  Bytes.set last remaining '\x01';
  Bytes.set last (rate - 1)
    (Char.chr (Char.code (Bytes.get last (rate - 1)) lor 0x80));
  absorb_block last 0;
  let out = Bytes.create 32 in
  for i = 0 to 3 do
    let lane = state.(i) in
    for j = 0 to 7 do
      Bytes.set out
        ((8 * i) + j)
        (Char.chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical lane (8 * j)) 0xFFL)))
    done
  done;
  Bytes.unsafe_to_string out

let digest s = digest_bytes (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
