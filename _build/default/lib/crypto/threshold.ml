type t = {
  n : int;
  k : int;
  master : Field.t; (* verification key (simulation: equals the secret) *)
  share_vks : Field.t array; (* per-signer verification keys, index signer-1 *)
}

type signing_key = { signer : int; secret_share : Field.t }

type share = { signer : int; value : Field.t }

type signature = Field.t

let setup rng ~n ~k =
  if k < 1 || k > n then invalid_arg "Threshold.setup: need 1 <= k <= n";
  let master = Field.random rng in
  let shares = Shamir.deal rng ~secret:master ~threshold:k ~num_shares:n in
  let share_vks = Array.map (fun (s : Shamir.share) -> s.value) shares in
  let keys =
    Array.map
      (fun (s : Shamir.share) -> { signer = s.index; secret_share = s.value })
      shares
  in
  ({ n; k; master; share_vks }, keys)

let n t = t.n
let threshold t = t.k
let signer_index (sk : signing_key) = sk.signer

let hash_to_field msg = Field.of_digest (Sha256.digest msg)

let share_sign (sk : signing_key) ~msg =
  { signer = sk.signer; value = Field.mul sk.secret_share (hash_to_field msg) }

let share_verify_h t ~h sh =
  sh.signer >= 1 && sh.signer <= t.n
  && Field.equal sh.value (Field.mul t.share_vks.(sh.signer - 1) h)

let share_verify t ~msg sh = share_verify_h t ~h:(hash_to_field msg) sh

let combine t ~msg shares =
  (* Robust combination: drop invalid shares and duplicate signers, then
     interpolate the first k valid ones.  The message hash is computed
     once for the whole batch. *)
  let h = hash_to_field msg in
  let seen = Hashtbl.create 16 in
  let valid =
    List.filter
      (fun sh ->
        share_verify_h t ~h sh
        && not (Hashtbl.mem seen sh.signer)
        &&
        (Hashtbl.add seen sh.signer ();
         true))
      shares
  in
  if List.length valid < t.k then None
  else begin
    let chosen = List.filteri (fun i _ -> i < t.k) valid in
    let points =
      List.map (fun sh -> (Field.of_int sh.signer, sh.value)) chosen
    in
    Some (Polynomial.lagrange_at_zero points)
  end

let combine_exn t ~msg shares =
  match combine t ~msg shares with
  | Some s -> s
  | None -> failwith "Threshold.combine_exn: not enough valid shares"

let verify t ~msg sig_ = Field.equal sig_ (Field.mul t.master (hash_to_field msg))

let forge_invalid_share ~signer = { signer; value = Field.of_int 0xDEADBEEF }

let signature_bytes (s : signature) = Field.to_bytes s

let signature_size = 33
let share_size = 37
