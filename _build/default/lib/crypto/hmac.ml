let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key < block_size then
    key ^ String.make (block_size - String.length key) '\x00'
  else key

let xor_with s c =
  String.map (fun ch -> Char.chr (Char.code ch lxor c)) s

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_list [ xor_with key 0x36; msg ] in
  Sha256.digest_list [ xor_with key 0x5c; inner ]

let verify ~key msg ~tag = String.equal (mac ~key msg) tag
