(** HMAC-SHA256 (RFC 2104), used for authenticated channels and as the
    basis of the simulated public-key signatures in {!Pki}. *)

val mac : key:string -> string -> string
(** 32-byte HMAC-SHA256 tag. *)

val verify : key:string -> string -> tag:string -> bool
