(** SHA-256 (FIPS 180-4), implemented from scratch.

    Digests are returned as 32-byte [string]s.  The implementation is
    validated against the official test vectors in the test suite. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> off:int -> len:int -> unit

val finalize : ctx -> string
(** Returns the 32-byte digest.  The context must not be reused. *)

val digest : string -> string
(** [digest msg] is the 32-byte SHA-256 digest of [msg]. *)

val digest_list : string list -> string
(** Digest of the concatenation of the given chunks. *)

val hex : string -> string
(** Lowercase hexadecimal rendering of a raw digest. *)
