(** Per-party public-key signatures (simulation stand-in for RSA-2048).

    The paper signs client requests and server messages with RSA-2048
    (following "Making BFT systems tolerate Byzantine faults" [31]).
    Here a party's signature is an HMAC under its private key and the
    "public key" is an opaque handle that verifies it; within the
    simulation nobody can produce a signature for a party whose keypair
    they do not hold, which is the property the protocol needs.  Wire
    sizes and CPU costs are charged at RSA-2048 rates via
    {!Cost_model}. *)

type keypair
type public_key
type signature = string

val generate : Sbft_sim.Rng.t -> id:int -> keypair
val public_key : keypair -> public_key
val key_id : public_key -> int

val sign : keypair -> string -> signature
val verify : public_key -> string -> signature -> bool

val signature_size : int
(** 256 bytes (RSA-2048). *)
