(** Arithmetic in GF(p) for the Mersenne prime p = 2^61 − 1.

    This field underlies the simulated threshold-signature schemes: it
    supports the same Shamir sharing and Lagrange
    interpolation-in-the-exponent structure as BLS threshold signatures,
    with branch-light reduction thanks to the Mersenne form.  Elements
    are represented as [int64] in [\[0, p)]. *)

type t = int64

val p : int64
(** 2^61 − 1 = 2305843009213693951. *)

val zero : t
val one : t

val of_int64 : int64 -> t
(** Reduces an arbitrary non-negative int64 into the field. *)

val of_int : int -> t
val to_int64 : t -> int64

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val pow : t -> int64 -> t
val inv : t -> t
(** @raise Division_by_zero on [inv zero]. *)

val equal : t -> t -> bool

val random : Sbft_sim.Rng.t -> t
(** Uniform field element. *)

val of_digest : string -> t
(** Maps a hash digest (≥ 8 bytes) to a {e nonzero} field element; used
    as the "hash-to-group" step of the simulated signature scheme. *)

val to_bytes : t -> string
(** 8-byte big-endian encoding. *)

val of_bytes : string -> t

val pp : Format.formatter -> t -> unit
