(** Shamir secret sharing over {!Field}.

    A dealer splits a secret into [n] shares so that any [k] reconstruct
    it and fewer than [k] reveal nothing.  Share [i] (1-based signer
    index) is the evaluation of a random degree-(k−1) polynomial at
    [x = i]. *)

type share = { index : int; value : Field.t }

val deal :
  Sbft_sim.Rng.t -> secret:Field.t -> threshold:int -> num_shares:int ->
  share array
(** @raise Invalid_argument unless [1 <= threshold <= num_shares]. *)

val reconstruct : share list -> Field.t
(** Interpolates the secret from any [>= threshold] distinct shares; with
    fewer shares the result is garbage (by design).
    @raise Invalid_argument on duplicate share indices. *)
