(** Authenticated key-value map: a persistent binary Merkle trie keyed by
    the SHA-256 of the key (a compact Merkle Patricia analogue).

    This is the data-authentication layer of the paper's key-value store
    (§IV): [root] is the state digest [digest(D)], and {!prove}/{!verify}
    implement the proof that "at the state with digest [d], key [k] has
    value [v]" that lets a client trust a {e single} replica's reply.

    The structure is persistent (insertions share structure), so
    checkpoint snapshots are O(1) to retain. *)

type t

val empty : t
val cardinal : t -> int
val root : t -> string

val get : t -> string -> string option
val set : t -> key:string -> value:string -> t
val remove : t -> string -> t

val fold : (string -> string -> 'a -> 'a) -> t -> 'a -> 'a
(** Iterates all bindings (trie order). *)

type proof

val prove : t -> string -> proof option
(** Inclusion proof for a present key; [None] if absent. *)

val verify : root:string -> key:string -> value:string -> proof -> bool
val proof_size : proof -> int

val encode_proof : proof -> string
val decode_proof : string -> proof option

val implied_root : key:string -> value:string -> proof -> string
(** Root recomputed from the binding along the proof path. *)
