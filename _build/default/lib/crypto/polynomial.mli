(** Polynomials over {!Field}, as needed by Shamir secret sharing:
    random polynomial generation, Horner evaluation, and Lagrange
    interpolation at zero. *)

type t
(** Coefficients, lowest degree first. *)

val of_coeffs : Field.t array -> t
val degree : t -> int

val random : Sbft_sim.Rng.t -> degree:int -> const:Field.t -> t
(** Random polynomial of the given degree with constant term [const]. *)

val eval : t -> Field.t -> Field.t

val lagrange_at_zero : (Field.t * Field.t) list -> Field.t
(** [lagrange_at_zero points] interpolates the unique polynomial through
    [points = (x_i, y_i)] (distinct, nonzero [x_i]) and evaluates it at
    0.  This is the share-combination step of the threshold scheme.
    @raise Invalid_argument on duplicate or zero x-coordinates. *)
