type share = { index : int; value : Field.t }

let deal rng ~secret ~threshold ~num_shares =
  if threshold < 1 || threshold > num_shares then
    invalid_arg "Shamir.deal: need 1 <= threshold <= num_shares";
  let poly = Polynomial.random rng ~degree:(threshold - 1) ~const:secret in
  Array.init num_shares (fun i ->
      let index = i + 1 in
      { index; value = Polynomial.eval poly (Field.of_int index) })

let reconstruct shares =
  let points =
    List.map (fun s -> (Field.of_int s.index, s.value)) shares
  in
  Polynomial.lagrange_at_zero points
