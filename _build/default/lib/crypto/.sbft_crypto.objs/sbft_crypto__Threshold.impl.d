lib/crypto/threshold.ml: Array Field Hashtbl List Polynomial Sha256 Shamir
