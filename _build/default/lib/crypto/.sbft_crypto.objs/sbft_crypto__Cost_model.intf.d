lib/crypto/cost_model.mli: Sbft_sim
