lib/crypto/field.ml: Bytes Char Format Int64 Sbft_sim String
