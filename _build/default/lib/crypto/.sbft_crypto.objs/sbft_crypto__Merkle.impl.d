lib/crypto/merkle.ml: Array Codec List Sbft_wire Sha256 String
