lib/crypto/merkle_map.ml: Char Codec List Option Sbft_wire Sha256 String
