lib/crypto/keccak.mli:
