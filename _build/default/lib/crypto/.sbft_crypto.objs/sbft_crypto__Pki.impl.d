lib/crypto/pki.ml: Bytes Hmac Sbft_sim
