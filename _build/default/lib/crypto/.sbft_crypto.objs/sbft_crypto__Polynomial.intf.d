lib/crypto/polynomial.mli: Field Sbft_sim
