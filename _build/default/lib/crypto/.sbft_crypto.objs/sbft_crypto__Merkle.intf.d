lib/crypto/merkle.mli:
