lib/crypto/group_sig.mli: Field Sbft_sim
