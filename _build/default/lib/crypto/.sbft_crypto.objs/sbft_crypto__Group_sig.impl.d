lib/crypto/group_sig.ml: Array Field List Sha256
