lib/crypto/threshold.mli: Field Sbft_sim
