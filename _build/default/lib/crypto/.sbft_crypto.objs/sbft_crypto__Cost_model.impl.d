lib/crypto/cost_model.ml: Sbft_sim
