lib/crypto/merkle_map.mli:
