lib/crypto/polynomial.ml: Array Field List
