lib/crypto/pki.mli: Sbft_sim
