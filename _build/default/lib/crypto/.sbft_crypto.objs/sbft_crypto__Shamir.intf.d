lib/crypto/shamir.mli: Field Sbft_sim
