lib/crypto/hmac.mli:
