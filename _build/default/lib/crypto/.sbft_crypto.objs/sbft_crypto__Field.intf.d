lib/crypto/field.mli: Format Sbft_sim
