(** Robust k-of-n threshold signatures — the simulation stand-in for
    threshold BLS over BN-P254 (paper §III).

    Structure mirrors BLS threshold signatures exactly: the dealer Shamir-
    shares a master secret [s]; signer [i]'s share on message [m] is
    [s_i · H(m)] (multiplication in {!Field} playing the role of the
    group exponentiation); any [k] valid shares combine by Lagrange
    interpolation at zero into the unique signature [s · H(m)]; invalid
    shares from malicious signers are detected per-signer and filtered
    ("robustness").

    {b Security caveat (documented substitution):} verification uses the
    master secret as the verification key, so a party holding a verifier
    handle could forge.  Inside the simulation the adversary is
    protocol-level and never calls the signing API with keys it does not
    own, so unforgeability is enforced by construction; the scheme's
    {e interface, robustness semantics, sizes and costs} are what the
    protocol logic and benchmarks depend on. *)

type t
(** Public parameters + verification keys for one scheme instance. *)

type signing_key

type share = { signer : int; value : Field.t }
(** A signature share by 1-based signer [signer]. *)

type signature = Field.t

val setup : Sbft_sim.Rng.t -> n:int -> k:int -> t * signing_key array
(** [setup rng ~n ~k] deals keys for signers [1..n] with threshold [k].
    The returned array is indexed by [signer - 1]. *)

val n : t -> int
val threshold : t -> int
val signer_index : signing_key -> int

val share_sign : signing_key -> msg:string -> share
val share_verify : t -> msg:string -> share -> bool

val combine : t -> msg:string -> share list -> signature option
(** Filters invalid shares and combines the first [k] valid ones;
    [None] if fewer than [k] valid shares are present. *)

val combine_exn : t -> msg:string -> share list -> signature

val verify : t -> msg:string -> signature -> bool

val forge_invalid_share : signer:int -> share
(** A deliberately invalid share, used by Byzantine test behaviours to
    exercise robustness. *)

val signature_bytes : signature -> string
(** Wire encoding of a combined signature (8 bytes of field element;
    size accounting uses {!signature_size}). *)

val signature_size : int
(** 33 — the byte size charged on the wire, matching BLS on BN-P254. *)

val share_size : int
(** 33 + signer index overhead. *)
