type keypair = { id : int; secret : string }
type public_key = { pk_id : int; pk_secret : string }
type signature = string

let generate rng ~id =
  let b = Bytes.create 32 in
  for i = 0 to 3 do
    Bytes.set_int64_be b (8 * i) (Sbft_sim.Rng.int64 rng)
  done;
  { id; secret = Bytes.unsafe_to_string b }

let public_key kp = { pk_id = kp.id; pk_secret = kp.secret }
let key_id pk = pk.pk_id

let sign kp msg = Hmac.mac ~key:kp.secret msg
let verify pk msg s = Hmac.verify ~key:pk.pk_secret msg ~tag:s

let signature_size = 256
