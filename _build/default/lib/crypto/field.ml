type t = int64

let p = 0x1FFFFFFFFFFFFFFFL (* 2^61 - 1 *)
let zero = 0L
let one = 1L

(* Reduce x in [0, 2^63) into [0, p): since 2^61 ≡ 1 (mod p), fold the
   high bits down, then one conditional subtraction. *)
let reduce x =
  let x = Int64.add (Int64.logand x p) (Int64.shift_right_logical x 61) in
  if x >= p then Int64.sub x p else x

let of_int64 x =
  let x = Int64.logand x Int64.max_int (* clear sign bit *) in
  reduce (reduce x)

let of_int x = of_int64 (Int64.of_int x)
let to_int64 x = x

let add a b = reduce (Int64.add a b)
let sub a b = reduce (Int64.add a (Int64.sub p b))
let neg a = if a = 0L then 0L else Int64.sub p a

(* Schoolbook 64x64 -> 128-bit multiply split at 32 bits, with all the
   partial products folded modulo 2^61 - 1.  Each intermediate stays
   below 2^62, so signed Int64 arithmetic never overflows except for the
   aL*bL product, which wraps exactly like unsigned multiplication and is
   split with logical shifts. *)
let mul a b =
  let alo = Int64.logand a 0xFFFFFFFFL and ahi = Int64.shift_right_logical a 32 in
  let blo = Int64.logand b 0xFFFFFFFFL and bhi = Int64.shift_right_logical b 32 in
  (* ahi*bhi * 2^64 ≡ ahi*bhi * 8 : ahi,bhi < 2^29 so the product < 2^61. *)
  let hi = reduce (Int64.mul (Int64.mul ahi bhi) 8L) in
  (* mid = (ahi*blo + alo*bhi) * 2^32, split as mh*2^61 + ml. *)
  let m = Int64.add (Int64.mul ahi blo) (Int64.mul alo bhi) in
  let mh = Int64.shift_right_logical m 29 in
  let ml = Int64.shift_left (Int64.logand m 0x1FFFFFFFL) 32 in
  let mid = reduce (Int64.add (reduce mh) ml) in
  (* lo = alo*blo as a full unsigned 64-bit value. *)
  let lo = Int64.mul alo blo in
  let lo_hi = Int64.shift_right_logical lo 61 in
  let lo_lo = Int64.logand lo p in
  let low = reduce (Int64.add lo_hi lo_lo) in
  add (add hi mid) low

let rec pow base e =
  if e = 0L then one
  else begin
    let half = pow base (Int64.shift_right_logical e 1) in
    let sq = mul half half in
    if Int64.logand e 1L = 1L then mul sq base else sq
  end

let inv a =
  if a = 0L then raise Division_by_zero;
  pow a (Int64.sub p 2L)

let equal = Int64.equal

let random rng =
  let rec go () =
    let v = Int64.logand (Sbft_sim.Rng.int64 rng) Int64.max_int in
    if v >= Int64.mul p 4L then go () else reduce (reduce v)
  in
  go ()

let of_digest d =
  if String.length d < 8 then invalid_arg "Field.of_digest: digest too short";
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.[i]))
  done;
  let x = of_int64 !v in
  if x = 0L then one else x

let to_bytes x =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * (7 - i))) 0xFFL)))
  done;
  Bytes.unsafe_to_string b

let of_bytes s =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  of_int64 !v

let pp fmt x = Format.fprintf fmt "%Ld" x
