(* Leaf hash:  H(0x00 || leaf); interior: H(0x01 || left || right).
   Odd nodes at a level are promoted unchanged (Bitcoin-style duplication
   would allow mutation attacks; promotion is proof-friendly and safe
   with domain separation). *)

type tree = { levels : string array array; leaves : int }
(* levels.(0) = leaf hashes; last level = [| root |]. *)

type proof = { leaf_index : int; path : (string * [ `Left | `Right ]) list }

let leaf_hash data = Sha256.digest_list [ "\x00"; data ]
let node_hash l r = Sha256.digest_list [ "\x01"; l; r ]

let empty_root = Sha256.digest "sbft-merkle-empty"

let build leaves =
  match leaves with
  | [] -> { levels = [| [| empty_root |] |]; leaves = 0 }
  | _ ->
      let level0 = Array.of_list (List.map leaf_hash leaves) in
      let rec up acc level =
        if Array.length level <= 1 then List.rev (level :: acc)
        else begin
          let n = Array.length level in
          let parents = Array.make ((n + 1) / 2) "" in
          for i = 0 to (n / 2) - 1 do
            parents.(i) <- node_hash level.(2 * i) level.((2 * i) + 1)
          done;
          if n mod 2 = 1 then parents.(n / 2) <- level.(n - 1);
          up (level :: acc) parents
        end
      in
      { levels = Array.of_list (up [] level0); leaves = List.length leaves }

let root t = t.levels.(Array.length t.levels - 1).(0)
let num_leaves t = t.leaves

let prove t index =
  if index < 0 || index >= t.leaves then invalid_arg "Merkle.prove: index out of bounds";
  let path = ref [] in
  let i = ref index in
  for lvl = 0 to Array.length t.levels - 2 do
    let level = t.levels.(lvl) in
    let n = Array.length level in
    let sibling = if !i mod 2 = 0 then !i + 1 else !i - 1 in
    if sibling < n then begin
      let side = if sibling > !i then `Right else `Left in
      path := (level.(sibling), side) :: !path
    end;
    (* Odd last node is promoted: no sibling recorded at this level. *)
    i := !i / 2
  done;
  { leaf_index = index; path = List.rev !path }

let implied_root ~leaf proof =
  List.fold_left
    (fun h (sib, side) ->
      match side with `Right -> node_hash h sib | `Left -> node_hash sib h)
    (leaf_hash leaf) proof.path

let verify ~root:expected ~leaf proof =
  String.equal (implied_root ~leaf proof) expected

let proof_size p = (32 + 1) * List.length p.path + 8

let encode_proof p =
  let open Sbft_wire in
  let w = Codec.Writer.create () in
  Codec.Writer.u32 w p.leaf_index;
  Codec.Writer.list w
    (fun (h, side) ->
      Codec.Writer.u8 w (match side with `Left -> 0 | `Right -> 1);
      Codec.Writer.raw w h)
    p.path;
  Codec.Writer.contents w

let decode_proof s =
  let open Sbft_wire in
  match
    let r = Codec.Reader.of_string s in
    let leaf_index = Codec.Reader.u32 r in
    let path =
      Codec.Reader.list r (fun r ->
          let side = if Codec.Reader.u8 r = 0 then `Left else `Right in
          let h = Codec.Reader.raw r 32 in
          (h, side))
    in
    { leaf_index; path }
  with
  | p -> Some p
  | exception Codec.Reader.Truncated -> None
