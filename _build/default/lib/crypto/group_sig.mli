(** n-of-n "group signature" fast mode (paper §VIII).

    When no failure has been detected recently, SBFT's collectors use a
    BLS {e group} signature (an n-out-of-n multisignature) instead of a
    k-of-n threshold signature: combination is a plain sum of shares —
    much cheaper than Lagrange interpolation — at the cost of requiring
    every signer.  The implementation mirrors {!Threshold} with additive
    instead of polynomial shares. *)

type t
type signing_key
type share = { signer : int; value : Field.t }
type signature = Field.t

val setup : Sbft_sim.Rng.t -> n:int -> t * signing_key array
val n : t -> int
val share_sign : signing_key -> msg:string -> share
val share_verify : t -> msg:string -> share -> bool

val combine : t -> msg:string -> share list -> signature option
(** Requires a valid share from {e every} one of the [n] signers. *)

val verify : t -> msg:string -> signature -> bool
