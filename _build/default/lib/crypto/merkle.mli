(** Static binary Merkle tree over an ordered list of leaves (paper §IV).

    Used to authenticate the operation list of a decision block: the
    execute-ack sent to a client carries an inclusion proof that its
    operation was executed as the [l]-th operation of block [s] with a
    given result.  Leaf and node hashes are domain-separated to prevent
    second-preimage tricks. *)

type tree

type proof = { leaf_index : int; path : (string * [ `Left | `Right ]) list }
(** Sibling hashes from the leaf up; the tag says on which side the
    sibling sits. *)

val build : string list -> tree
(** [build leaves] hashes each leaf and builds the tree.  An empty list
    yields a well-defined empty-tree root. *)

val root : tree -> string
val num_leaves : tree -> int

val prove : tree -> int -> proof
(** Inclusion proof for the leaf at the given index.
    @raise Invalid_argument if out of bounds. *)

val verify : root:string -> leaf:string -> proof -> bool
(** Checks that [leaf] sits at [proof.leaf_index] under [root]. *)

val proof_size : proof -> int
(** Wire size of the proof in bytes (32 per path element + framing). *)

val encode_proof : proof -> string
(** Canonical wire encoding (paired with {!decode_proof}). *)

val decode_proof : string -> proof option

val implied_root : leaf:string -> proof -> string
(** The root a verifier recomputes from [leaf] along the proof path;
    [verify ~root ~leaf p] iff [implied_root ~leaf p = root]. *)
