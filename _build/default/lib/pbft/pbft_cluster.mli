(** Simulated PBFT deployment, mirroring {!Sbft_core.Cluster}. *)

type t = {
  engine : Sbft_sim.Engine.t;
  network : Sbft_sim.Network.t;
  trace : Sbft_sim.Trace.t;
  keys : Sbft_core.Keys.t;
  config : Sbft_core.Config.t;
  replicas : Pbft_replica.t array;
  clients : Pbft_client.t array;
  latency : Sbft_sim.Stats.Latency.t;
  throughput : Sbft_sim.Stats.Throughput.t;
}

val create :
  ?seed:int64 ->
  ?trace:bool ->
  ?cpu_scale:float ->
  config:Sbft_core.Config.t ->
  num_clients:int ->
  topology:(num_nodes:int -> Sbft_sim.Topology.t) ->
  service:Sbft_core.Cluster.service ->
  unit ->
  t
(** [config.f] determines n = 3f + 1 (the [c] field is ignored). *)

val start_clients :
  t -> requests_per_client:int -> make_op:(client:int -> int -> string) -> unit

val crash_replicas : t -> int list -> unit
val run_for : t -> Sbft_sim.Engine.time -> unit
val total_completed : t -> int
val agreement_ok : t -> bool
