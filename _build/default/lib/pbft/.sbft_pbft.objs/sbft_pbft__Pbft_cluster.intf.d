lib/pbft/pbft_cluster.mli: Pbft_client Pbft_replica Sbft_core Sbft_sim
