lib/pbft/pbft_types.ml: Codec List Sbft_core Sbft_crypto Sbft_wire String
