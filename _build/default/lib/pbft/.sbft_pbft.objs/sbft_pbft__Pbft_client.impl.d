lib/pbft/pbft_client.ml: Cost_model Engine List Pbft_replica Pbft_types Pki Sbft_core Sbft_crypto Sbft_sim String
