lib/pbft/pbft_cluster.ml: Array Engine List Network Pbft_client Pbft_replica Pbft_types Rng Sbft_core Sbft_sim Sbft_store Stats String Trace
