lib/pbft/pbft_replica.mli: Pbft_types Sbft_core Sbft_sim Sbft_store
