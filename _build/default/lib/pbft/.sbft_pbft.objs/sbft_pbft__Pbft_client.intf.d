lib/pbft/pbft_client.mli: Pbft_replica Pbft_types Sbft_crypto Sbft_sim
