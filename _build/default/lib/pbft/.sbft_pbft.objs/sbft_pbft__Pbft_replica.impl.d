lib/pbft/pbft_replica.ml: Cost_model Engine Hashtbl List Option Pbft_types Printf Queue Sbft_core Sbft_crypto Sbft_sim Sbft_store String Trace
