lib/pbft/pbft_types.mli: Sbft_core
