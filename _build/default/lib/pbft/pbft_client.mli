(** PBFT client: sends to the primary, accepts a result once [f + 1]
    replicas reply with the same value; retries to all replicas on
    timeout. *)

type t

val create :
  env:Pbft_replica.env ->
  id:int ->
  keypair:Sbft_crypto.Pki.keypair ->
  on_complete:(timestamp:int -> latency:Sbft_sim.Engine.time -> value:string -> unit) ->
  t

val id : t -> int
val submit : t -> Sbft_sim.Engine.ctx -> op:string -> unit
val on_message : t -> Sbft_sim.Engine.ctx -> src:int -> Pbft_types.msg -> unit

val run_closed_loop :
  t -> num_requests:int -> make_op:(int -> string) -> start_at:Sbft_sim.Engine.time -> unit

val completed : t -> int
