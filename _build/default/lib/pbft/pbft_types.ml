open Sbft_wire

type request = Sbft_core.Types.request

type msg =
  | Request of request
  | Pre_prepare of { seq : int; view : int; reqs : request list }
  | Prepare of { seq : int; view : int; h : string; replica : int }
  | Commit of { seq : int; view : int; h : string; replica : int }
  | Reply of {
      view : int;
      replica : int;
      client : int;
      timestamp : int;
      seq : int;
      value : string;
    }
  | Checkpoint of { seq : int; digest : string; replica : int }
  | View_change of {
      view : int;
      ls : int;
      prepared : (int * int * request list) list;
      replica : int;
    }
  | New_view of { view : int; pre_prepares : (int * request list) list }

let block_hash ~seq ~view ~reqs =
  let w = Codec.Writer.create () in
  Codec.Writer.raw w "pbft-block";
  Codec.Writer.u64 w seq;
  Codec.Writer.u64 w view;
  Codec.Writer.list w
    (fun r -> Codec.Writer.raw w (Sbft_core.Types.request_digest r))
    reqs;
  Sbft_crypto.Sha256.digest (Codec.Writer.contents w)

let header = 24
let rsa = Sbft_crypto.Pki.signature_size

let size = function
  | Request r -> Sbft_core.Types.requests_bytes [ r ]
  | Pre_prepare { reqs; _ } -> header + Sbft_core.Types.requests_bytes reqs + rsa
  | Prepare _ | Commit _ -> header + 32 + rsa
  | Reply { value; _ } -> header + String.length value + rsa
  | Checkpoint _ -> header + 32 + rsa
  | View_change { prepared; _ } ->
      List.fold_left
        (fun acc (_, _, reqs) -> acc + 16 + 32 + Sbft_core.Types.requests_bytes reqs)
        (header + rsa) prepared
  | New_view { pre_prepares; _ } ->
      List.fold_left
        (fun acc (_, reqs) -> acc + 16 + Sbft_core.Types.requests_bytes reqs)
        (header + rsa) pre_prepares

let kind = function
  | Request _ -> "request"
  | Pre_prepare _ -> "pre-prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Reply _ -> "reply"
  | Checkpoint _ -> "checkpoint"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"
