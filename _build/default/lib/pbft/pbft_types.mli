(** Message types of the scale-optimized PBFT baseline (Castro-Liskov
    with public-key signed server messages, the paper's comparison
    system).  Requests are shared with {!Sbft_core.Types}. *)

type request = Sbft_core.Types.request

type msg =
  | Request of request
  | Pre_prepare of { seq : int; view : int; reqs : request list }
  | Prepare of { seq : int; view : int; h : string; replica : int }
  | Commit of { seq : int; view : int; h : string; replica : int }
  | Reply of {
      view : int;
      replica : int;
      client : int;
      timestamp : int;
      seq : int;
      value : string;
    }
  | Checkpoint of { seq : int; digest : string; replica : int }
  | View_change of {
      view : int;  (** view being abandoned *)
      ls : int;
      prepared : (int * int * request list) list;
          (** (seq, view, reqs) with a prepared certificate *)
      replica : int;
    }
  | New_view of { view : int; pre_prepares : (int * request list) list }

val block_hash : seq:int -> view:int -> reqs:request list -> string
val size : msg -> int
val kind : msg -> string
