lib/core/config.ml: Engine Sbft_sim
