lib/core/keys.mli: Config Sbft_crypto Sbft_sim Types
