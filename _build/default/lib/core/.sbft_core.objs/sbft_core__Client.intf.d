lib/core/client.mli: Replica Sbft_crypto Sbft_sim Types
