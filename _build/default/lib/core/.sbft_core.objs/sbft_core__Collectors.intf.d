lib/core/collectors.mli: Config
