lib/core/cluster.mli: Client Config Keys Replica Sbft_sim Sbft_store Types
