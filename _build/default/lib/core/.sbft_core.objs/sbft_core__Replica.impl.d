lib/core/replica.ml: Batching Collectors Config Cost_model Engine Field Float Hashtbl Keys Lazy List Option Printf Queue Rng Sbft_crypto Sbft_sim Sbft_store String Threshold Trace Types View_change
