lib/core/config.mli: Sbft_sim
