lib/core/view_change.ml: Config Field Hashtbl Keys List Option Sbft_crypto Sha256 Threshold Types
