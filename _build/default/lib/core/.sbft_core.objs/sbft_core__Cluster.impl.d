lib/core/cluster.ml: Array Client Config Cost_model Engine Keys List Network Replica Rng Sbft_crypto Sbft_sim Sbft_store Stats String Trace Types
