lib/core/types.ml: Codec Ephemeron Field Hashtbl List Pki Sbft_crypto Sbft_wire Sha256 String Threshold
