lib/core/view_change.mli: Keys Sbft_crypto Types
