lib/core/client.ml: Config Cost_model Engine Hashtbl Keys List Pki Replica Sbft_crypto Sbft_sim Sbft_store String Types
