lib/core/keys.ml: Array Config Ephemeron Group_sig Hashtbl Pki Sbft_crypto Threshold Types
