lib/core/batching.ml: Config
