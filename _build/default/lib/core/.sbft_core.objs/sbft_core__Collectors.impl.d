lib/core/collectors.ml: Array Char Config Hashtbl List Printf Sbft_crypto String
