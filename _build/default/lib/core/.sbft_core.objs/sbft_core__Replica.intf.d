lib/core/replica.mli: Keys Sbft_sim Sbft_store Types
