lib/core/batching.mli: Config
