lib/core/types.mli: Sbft_crypto
