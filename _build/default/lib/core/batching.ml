type t = { config : Config.t; mutable avg_pending : float }

let create config = { config; avg_pending = 0.0 }

let observe_pending t pending =
  (* Exponentially decaying average with factor 1/8 per observation. *)
  t.avg_pending <- (0.875 *. t.avg_pending) +. (0.125 *. float_of_int pending)

(* The paper sets the divisor to half the maximum number of concurrent
   blocks; that number evaluated to 4 in their experiments, i.e. at most
   8 blocks pipeline concurrently. *)
let max_concurrent config = max 1 (min (Config.active_window config) 8)

let batch_size t =
  let divisor = max 1 (max_concurrent t.config / 2) in
  let b = int_of_float (t.avg_pending /. float_of_int divisor) in
  max 1 (min t.config.Config.max_batch b)
