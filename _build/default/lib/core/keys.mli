(** Key material for a deployment: the three threshold schemes (σ, τ, π),
    the optional n-of-n group-signature scheme for the failure-free fast
    path, and per-party PKI keypairs for replicas and clients.

    Created once by the trusted setup (the paper assumes a PKI setup
    between clients and replicas, §III); the per-replica signing keys
    are handed to each replica, verification material is public. *)

type t = {
  config : Config.t;
  sigma : Sbft_crypto.Threshold.t;
  tau : Sbft_crypto.Threshold.t;
  pi : Sbft_crypto.Threshold.t;
  group : Sbft_crypto.Group_sig.t;
  replica_pks : Sbft_crypto.Pki.public_key array;
  client_pks : Sbft_crypto.Pki.public_key array;  (** indexed client-id − n *)
}

type replica_keys = {
  replica_id : int;
  sigma_sk : Sbft_crypto.Threshold.signing_key;
  tau_sk : Sbft_crypto.Threshold.signing_key;
  pi_sk : Sbft_crypto.Threshold.signing_key;
  group_sk : Sbft_crypto.Group_sig.signing_key;
  pki_sk : Sbft_crypto.Pki.keypair;
}

val setup :
  Sbft_sim.Rng.t -> config:Config.t -> num_clients:int ->
  t * replica_keys array * Sbft_crypto.Pki.keypair array
(** [(public, per-replica secrets, per-client PKI keypairs)]. *)

val client_pk : t -> int -> Sbft_crypto.Pki.public_key
(** Public key of the client with {e node id} [cid] (ids start at n). *)

val verify_request : t -> Types.request -> bool
