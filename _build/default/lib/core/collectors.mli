(** Collector selection (§V): for each (view, sequence) pair, [c + 1]
    non-primary replicas act as C-collectors (commit collection) and
    [c + 1] as E-collectors (execution collection), chosen
    pseudo-randomly as a function of the pair so load spreads over all
    replicas.

    The returned lists are ordered by activation rank: collectors after
    the first are redundant and stagger their activation (§V-E).  For
    the Linear-PBFT fallback the primary is always appended as the last
    collector, guaranteeing progress whenever the primary is correct. *)

val primary : config:Config.t -> view:int -> int

val c_collectors : config:Config.t -> view:int -> seq:int -> int list
(** [c + 1] distinct non-primary replicas (fewer only when n is tiny). *)

val e_collectors : config:Config.t -> view:int -> seq:int -> int list

val slow_path_collectors : config:Config.t -> view:int -> seq:int -> int list
(** C-collectors with the primary as the final fallback collector. *)

val is_c_collector : config:Config.t -> view:int -> seq:int -> int -> bool
val is_e_collector : config:Config.t -> view:int -> seq:int -> int -> bool

val rank : int list -> int -> int option
(** Activation rank of a replica within a collector list. *)
