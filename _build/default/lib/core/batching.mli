(** Adaptive batch sizing (§V-C, §VIII): the batch size tracks the
    average number of pending requests divided by half the maximum
    number of concurrently outstanding blocks, clamped to
    [\[1, max_batch\]].  A decaying average smooths bursts. *)

type t

val create : Config.t -> t

val observe_pending : t -> int -> unit
(** Feed the current pending-queue length (call on every arrival or
    proposal tick). *)

val batch_size : t -> int
(** Current target operations per decision block. *)

val max_concurrent : Config.t -> int
(** Number of blocks the primary keeps in flight (the paper's
    [active-window]). *)
