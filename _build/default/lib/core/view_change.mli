(** The dual-mode view-change safe-value computation (§V-G).

    Given a set of [2f + 2c + 1] view-change messages, the new primary
    (and, independently, every replica validating the new-view message)
    computes, for every sequence slot in the new window, either a value
    that can be committed immediately (a full fast or slow commit proof
    was included), a value that {e must} be re-proposed (it may have
    committed at some replica), or a no-op filler.

    The function is pure and deterministic, so all correct replicas
    derive identical decisions from the same message set — this is what
    makes the new-view message self-certifying (§VII: "the primary
    forwards both the decision and the signed messages so all replicas
    can repeat exactly the same computation").

    Safety argument (Lemmas VI.2 / VI.3): a slow-committed value is
    protected by the [f+c+1] honest members of its commit quorum whose
    prepare certificates dominate every fast candidate; a fast-committed
    value is protected by the [2f+c+1] honest members of its σ quorum,
    at least [f+c+1] of which appear in any view-change quorum, making
    it the unique fast value at the maximal view. *)

type decision =
  | Decide_fast of { sigma : Sbft_crypto.Field.t; reqs : Types.request list; view : int }
      (** σ(h) was presented: commit immediately. *)
  | Decide_slow of {
      tau : Sbft_crypto.Field.t;
      tau_tau : Sbft_crypto.Field.t;
      reqs : Types.request list;
      view : int;
    }  (** τ(τ(h)) was presented: commit immediately. *)
  | Adopt of Types.request list
      (** Potentially committed: the new view must re-propose it. *)
  | Fill_null  (** No constraint: fill with a no-op. *)

val null_request : Types.request
(** The no-op operation used to fill unconstrained slots. *)

val validate_message : keys:Keys.t -> Types.view_change -> bool
(** Structural and cryptographic validity of one view-change message:
    the checkpoint proof verifies and every per-slot certificate's
    signature/share verifies for its claimed (seq, view, requests). *)

val select_stable : keys:Keys.t -> Types.view_change list -> int
(** Highest last-stable sequence number backed by a valid checkpoint
    proof (0 when none). *)

val compute :
  keys:Keys.t -> new_view:int -> Types.view_change list ->
  int * (int * decision) list
(** [compute ~keys ~new_view msgs] returns [(ls, decisions)]: the
    starting stable sequence number and, for each slot from [ls + 1] up
    to the highest slot any message mentions, the safe decision.
    Invalid certificates inside otherwise processed messages are ignored
    (robustness against Byzantine view-change senders). *)

val decision_reqs : decision -> Types.request list
(** Requests a decision resolves to ([null_request] for {!Fill_null}). *)
