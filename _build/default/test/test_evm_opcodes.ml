(* Opcode-level EVM interpreter tests, complementing test_evm.ml: signed
   arithmetic and modular ops through bytecode, data-copy instructions,
   introspection opcodes, logs with many topics, in-EVM CREATE and
   STATICCALL, deep stack manipulation and edge cases of jump-destination
   analysis. *)

open Sbft_evm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let u = U256.of_int
let caller_addr = State.address_of_hex "1111111111111111111111111111111111111111"
let self_addr = State.address_of_hex "2222222222222222222222222222222222222222"

let ctx = Interpreter.default_context
let empty = Sbft_crypto.Merkle_map.empty

let run ?(state = empty) ?(value = U256.zero) ?(data = "") ?(gas = 1_000_000) instrs =
  Interpreter.execute_code ~ctx ~state ~caller:caller_addr ~address:self_addr ~value
    ~data ~gas ~code:(Asm.assemble instrs)

let return_top body =
  body @ [ Asm.Push_int 0; Asm.Op MSTORE; Asm.Push_int 32; Asm.Push_int 0; Asm.Op RETURN ]

let word res =
  check "success" true res.Interpreter.success;
  U256.of_bytes_be res.Interpreter.output

let expect_int instrs expected =
  check "expected word" true (U256.equal (word (run (return_top instrs))) (u expected))

let expect_word instrs expected =
  check "expected word" true (U256.equal (word (run (return_top instrs))) expected)

(* ------------------------------------------------------------------ *)

let test_signed_arithmetic () =
  (* SDIV: top = a, next = b -> a/b. -6 / 2 = -3. *)
  let minus x = U256.neg (u x) in
  expect_word [ Push (u 2); Push (minus 6); Op SDIV ] (minus 3);
  expect_word [ Push (minus 2); Push (minus 6); Op SDIV ] (u 3);
  expect_word [ Push (u 2); Push (minus 7); Op SMOD ] (minus 1);
  (* SLT: -1 < 1. *)
  expect_int [ Push (u 1); Push (minus 1); Op SLT ] 1;
  expect_int [ Push (minus 1); Push (u 1); Op SGT ] 1;
  (* SIGNEXTEND byte 0 of 0xFF -> -1. *)
  expect_word [ Push (u 0xFF); Push (u 0); Op SIGNEXTEND ] (minus 1)

let test_modular_ops () =
  (* ADDMOD(a=10, b=10, m=8) = 4: stack [m; b; a]. *)
  expect_int [ Push (u 8); Push (u 10); Push (u 10); Op ADDMOD ] 4;
  expect_int [ Push (u 8); Push (u 10); Push (u 10); Op MULMOD ] 4;
  expect_int [ Push (u 0); Push (u 10); Push (u 10); Op ADDMOD ] 0

let test_byte_and_shifts () =
  (* BYTE 31 of 0x1234 = 0x34. *)
  expect_int [ Push (u 0x1234); Push (u 31); Op BYTE ] 0x34;
  expect_int [ Push (u 0x1234); Push (u 30); Op BYTE ] 0x12;
  expect_int [ Push (u 1); Push (u 4); Op SHL ] 16;
  expect_int [ Push (u 16); Push (u 3); Op SHR ] 2;
  expect_word [ Push (U256.neg (u 16)); Push (u 2); Op SAR ] (U256.neg (u 4))

let test_calldatacopy () =
  let data = "abcdefgh" in
  (* Copy calldata[2..6) to memory offset 3, return first word. *)
  let res =
    run ~data
      (return_top
         [ Asm.Push_int 4; Asm.Push_int 2; Asm.Push_int 3; Asm.Op CALLDATACOPY;
           Asm.Push_int 0; Asm.Op MLOAD ])
  in
  let w = word res in
  let bytes = U256.to_bytes_be w in
  Alcotest.(check string) "copied region" "\x00\x00\x00cdef\x00\x00" (String.sub bytes 0 9)

let test_codecopy_and_codesize () =
  let res = run (return_top [ Asm.Op CODESIZE ]) in
  check "codesize positive" true (U256.to_int_clamped (word res) > 0);
  (* CODECOPY: copy own first 2 bytes; out-of-range pads with zeros. *)
  let res2 =
    run
      (return_top
         [ Asm.Push_int 2; Asm.Push_int 0; Asm.Push_int 0; Asm.Op CODECOPY;
           Asm.Push_int 0; Asm.Op MLOAD ])
  in
  let first = Char.code (U256.to_bytes_be (word res2)).[0] in
  check_int "first code byte is PUSH1" 0x60 first

let test_introspection () =
  expect_int [ Asm.Op MSIZE ] 0;
  (* PC at offset 0 is 0; after a push it is the push-width + 1. *)
  expect_int [ Asm.Op PC ] 0;
  let res = run (return_top [ Asm.Op GAS ]) in
  check "gas remaining positive" true (U256.to_int_clamped (word res) > 0);
  (* MSIZE grows to 2 words after touching offset 33. *)
  expect_int [ Push (u 1); Push (u 33); Op MSTORE8; Op MSIZE ] 64

let test_logs_many_topics () =
  let res =
    run
      [ Asm.Push_int 4; Asm.Push_int 3; Asm.Push_int 2; Asm.Push_int 1;
        Asm.Push_int 0; Asm.Push_int 0; Asm.Op (LOG 4); Asm.Op STOP ]
  in
  check "success" true res.Interpreter.success;
  match res.Interpreter.logs with
  | [ { topics; data; _ } ] ->
      check_int "4 topics" 4 (List.length topics);
      check "topic order" true
        (List.map U256.to_int_clamped topics = [ 1; 2; 3; 4 ]);
      check_int "no data" 0 (String.length data)
  | _ -> Alcotest.fail "expected one log"

let test_create_opcode () =
  (* Init code returning a 1-byte runtime (0x00 = STOP): built in memory.
     Init: PUSH1 0x00 PUSH1 0 MSTORE8; PUSH1 1 PUSH1 0 RETURN  *)
  let init = Asm.assemble
      [ Asm.Push_int 0x00; Asm.Push_int 0; Asm.Op MSTORE8;
        Asm.Push_int 1; Asm.Push_int 0; Asm.Op RETURN ] in
  let n = String.length init in
  (* Parent: store init code into memory via CODECOPY from a Raw blob at
     a label, then CREATE(value=0, offset, len) and return the address. *)
  let parent =
    [ Asm.Push_int n; Asm.Push_label "blob"; Asm.Push_int 0; Asm.Op CODECOPY;
      Asm.Push_int n; Asm.Push_int 0; Asm.Push_int 0; Asm.Op CREATE ]
  in
  let res =
    run ~gas:1_000_000
      (return_top parent @ [ Asm.Mark "blob"; Asm.Raw init ])
  in
  let addr_word = word res in
  check "created nonzero address" false (U256.is_zero addr_word);
  let addr = String.sub (U256.to_bytes_be addr_word) 12 20 in
  Alcotest.(check string) "deployed runtime" "\x00" (State.code res.Interpreter.state addr)

let test_staticcall () =
  (* Callee returns 7; STATICCALL forwards and copies the result. *)
  let callee = Asm.assemble (return_top [ Asm.Push_int 7 ]) in
  let callee_addr = State.address_of_hex "3333333333333333333333333333333333333333" in
  let state = State.set_code empty callee_addr callee in
  let res =
    run ~state
      (return_top
         [ Asm.Push_int 32; Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0;
           Asm.Push (U256.of_bytes_be callee_addr); Asm.Push_int 100000;
           Asm.Op STATICCALL; Asm.Op POP; Asm.Push_int 0; Asm.Op MLOAD ])
  in
  check "result is 7" true (U256.equal (word res) (u 7))

let test_returndata () =
  let callee = Asm.assemble (return_top [ Asm.Push_int 42 ]) in
  let callee_addr = State.address_of_hex "4444444444444444444444444444444444444444" in
  let state = State.set_code empty callee_addr callee in
  let res =
    run ~state
      (return_top
         [ Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0;
           Asm.Push_int 0;
           Asm.Push (U256.of_bytes_be callee_addr); Asm.Push_int 100000;
           Asm.Op CALL; Asm.Op POP;
           (* Copy the 32-byte return data explicitly. *)
           Asm.Push_int 32; Asm.Push_int 0; Asm.Push_int 0; Asm.Op RETURNDATACOPY;
           Asm.Push_int 0; Asm.Op MLOAD ])
  in
  check "returndatacopy" true (U256.equal (word res) (u 42));
  (* RETURNDATASIZE before any call is 0. *)
  expect_int [ Asm.Op RETURNDATASIZE ] 0;
  (* Out-of-range RETURNDATACOPY is a hard failure. *)
  let bad =
    run ~state
      [ Asm.Push_int 64; Asm.Push_int 0; Asm.Push_int 0; Asm.Op RETURNDATACOPY;
        Asm.Op STOP ]
  in
  check "oob returndatacopy fails" false bad.Interpreter.success

let test_extcode_ops () =
  let callee = Asm.assemble [ Asm.Op STOP ] in
  let callee_addr = State.address_of_hex "5555555555555555555555555555555555555555" in
  let state = State.set_code empty callee_addr callee in
  let push_addr = Asm.Push (U256.of_bytes_be callee_addr) in
  (* EXTCODESIZE *)
  let res = run ~state (return_top [ push_addr; Asm.Op EXTCODESIZE ]) in
  check "extcodesize" true (U256.equal (word res) (u (String.length callee)));
  (* Unknown account: size 0. *)
  let res0 = run ~state (return_top [ Asm.Push_int 0x1234; Asm.Op EXTCODESIZE ]) in
  check "extcodesize absent" true (U256.is_zero (word res0));
  (* EXTCODEHASH = keccak(code) for existing accounts, 0 for absent. *)
  let resh = run ~state (return_top [ push_addr; Asm.Op EXTCODEHASH ]) in
  check "extcodehash" true
    (U256.equal (word resh) (U256.of_bytes_be (Sbft_crypto.Keccak.digest callee)));
  let resh0 = run ~state (return_top [ Asm.Push_int 0x9999; Asm.Op EXTCODEHASH ]) in
  check "extcodehash absent" true (U256.is_zero (word resh0));
  (* EXTCODECOPY the single byte. *)
  let resc =
    run ~state
      (return_top
         [ Asm.Push_int 1; Asm.Push_int 0; Asm.Push_int 0; push_addr;
           Asm.Op EXTCODECOPY; Asm.Push_int 0; Asm.Op MLOAD ])
  in
  check "extcodecopy" true (U256.is_zero (word resc)) (* STOP = 0x00 *)

let test_delegatecall () =
  (* Library contract: writes CALLER into its slot 1 and returns
     CALLVALUE; under DELEGATECALL the write must land in the CALLER's
     storage and CALLER/CALLVALUE must be preserved from the parent. *)
  let lib =
    Asm.assemble
      (return_top
         [ Asm.Op CALLER; Asm.Push_int 1; Asm.Op SSTORE; Asm.Op CALLVALUE ])
  in
  let lib_addr = State.address_of_hex "6666666666666666666666666666666666666666" in
  let state = State.set_code empty lib_addr lib in
  let state = State.set_balance state caller_addr (u 1000) in
  let parent =
    return_top
      [ Asm.Push_int 32; Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0;
        Asm.Push (U256.of_bytes_be lib_addr); Asm.Push_int 200_000;
        Asm.Op DELEGATECALL; Asm.Op POP; Asm.Push_int 0; Asm.Op MLOAD ]
  in
  let res =
    Interpreter.execute_code ~ctx ~state ~caller:caller_addr ~address:self_addr
      ~value:(u 77) ~data:"" ~gas:1_000_000 ~code:(Asm.assemble parent)
  in
  check "success" true res.Interpreter.success;
  (* CALLVALUE preserved through the delegate call. *)
  check "callvalue preserved" true
    (U256.equal (U256.of_bytes_be res.Interpreter.output) (u 77));
  (* The SSTORE landed in the PARENT's storage, recording the PARENT's
     caller. *)
  check "storage in parent context" true
    (U256.equal
       (State.sload res.Interpreter.state ~addr:self_addr ~slot:(u 1))
       (U256.of_bytes_be caller_addr));
  check "library storage untouched" true
    (U256.is_zero (State.sload res.Interpreter.state ~addr:lib_addr ~slot:(u 1)))

let test_deep_stack_ops () =
  (* Push 1..16, DUP16 duplicates the deepest (1). *)
  let pushes = List.init 16 (fun i -> Asm.Push_int (i + 1)) in
  expect_int (pushes @ [ Asm.Op (DUP 16) ]) 1;
  (* SWAP16: top (17) swaps with the 17th (value 1). *)
  let pushes17 = List.init 17 (fun i -> Asm.Push_int (i + 1)) in
  expect_int (pushes17 @ [ Asm.Op (SWAP 16) ]) 1

let test_balance_selfbalance () =
  let state = State.set_balance empty self_addr (u 900) in
  let res = run ~state (return_top [ Asm.Op SELFBALANCE ]) in
  check "selfbalance" true (U256.equal (word res) (u 900));
  let res2 =
    run ~state (return_top [ Asm.Push (U256.of_bytes_be self_addr); Asm.Op BALANCE ])
  in
  check "balance" true (U256.equal (word res2) (u 900))

let test_memory_gas_quadratic () =
  (* Touching a far offset must cost much more than a near one. *)
  let cost offset =
    (run [ Asm.Push_int 1; Asm.Push_int offset; Asm.Op MSTORE8; Asm.Op STOP ])
      .Interpreter.gas_used
  in
  let near = cost 0 and far = cost 100_000 in
  check "quadratic memory cost" true (far > 50 * near);
  (* And a truly absurd offset out-of-gases. *)
  let res = run ~gas:100_000 [ Asm.Push_int 1; Asm.Push (U256.shift_left U256.one 40); Asm.Op MSTORE8 ] in
  check "oog on huge offset" false res.Interpreter.success

let test_sstore_gas () =
  (* Fresh store = 20000, overwrite = 5000. *)
  let fresh =
    (run [ Asm.Push_int 1; Asm.Push_int 5; Asm.Op SSTORE; Asm.Op STOP ]).Interpreter.gas_used
  in
  let state = State.sstore empty ~addr:self_addr ~slot:(u 5) (u 9) in
  let overwrite =
    (run ~state [ Asm.Push_int 1; Asm.Push_int 5; Asm.Op SSTORE; Asm.Op STOP ])
      .Interpreter.gas_used
  in
  check "fresh sstore costs more" true (fresh > overwrite);
  check "fresh ~20000" true (fresh >= 20_000 && fresh < 20_100);
  check "overwrite ~5000" true (overwrite >= 5_000 && overwrite < 5_100)

let test_push_at_code_end () =
  (* PUSH32 with truncated data reads zeros past the end of code. *)
  let code = "\x7f\x01" (* PUSH32 followed by only one byte *) in
  let res =
    Interpreter.execute_code ~ctx ~state:empty ~caller:caller_addr ~address:self_addr
      ~value:U256.zero ~data:"" ~gas:100_000 ~code
  in
  (* Implicit STOP at code end; push value = 0x01 << 248. *)
  check "succeeds" true res.Interpreter.success

let test_stack_underflow_fails () =
  let res = run [ Asm.Op ADD ] in
  check "underflow fails" false res.Interpreter.success;
  check "consumes gas" true (res.Interpreter.gas_used > 0)

let () =
  Alcotest.run "sbft_evm_opcodes"
    [
      ( "opcodes",
        [
          Alcotest.test_case "signed arithmetic" `Quick test_signed_arithmetic;
          Alcotest.test_case "modular" `Quick test_modular_ops;
          Alcotest.test_case "byte/shifts" `Quick test_byte_and_shifts;
          Alcotest.test_case "calldatacopy" `Quick test_calldatacopy;
          Alcotest.test_case "codecopy/codesize" `Quick test_codecopy_and_codesize;
          Alcotest.test_case "introspection" `Quick test_introspection;
          Alcotest.test_case "logs 4 topics" `Quick test_logs_many_topics;
          Alcotest.test_case "create opcode" `Quick test_create_opcode;
          Alcotest.test_case "staticcall" `Quick test_staticcall;
          Alcotest.test_case "returndata" `Quick test_returndata;
          Alcotest.test_case "extcode ops" `Quick test_extcode_ops;
          Alcotest.test_case "delegatecall" `Quick test_delegatecall;
          Alcotest.test_case "deep stack" `Quick test_deep_stack_ops;
          Alcotest.test_case "balance" `Quick test_balance_selfbalance;
          Alcotest.test_case "memory gas" `Quick test_memory_gas_quadratic;
          Alcotest.test_case "sstore gas" `Quick test_sstore_gas;
          Alcotest.test_case "push at end" `Quick test_push_at_code_end;
          Alcotest.test_case "stack underflow" `Quick test_stack_underflow_fails;
        ] );
    ]
