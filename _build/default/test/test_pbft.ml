(* Tests for the scale-optimized PBFT baseline: happy path, batching,
   crash tolerance, primary fail-over, checkpoint GC, agreement, and
   determinism. *)

open Sbft_sim
module Config = Sbft_core.Config
open Sbft_pbft

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let put ~client i =
  Sbft_store.Kv_service.put ~key:(Printf.sprintf "k%d-%d" client i) ~value:(string_of_int i)

let make ?(seed = 1L) ?(f = 1) ?(num_clients = 2) ?(win = 256) () =
  let config = { (Config.sbft ~f ~c:0) with Config.win } in
  Pbft_cluster.create ~seed ~config ~num_clients
    ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
    ~service:Sbft_core.Cluster.kv_service ()

let drive ?(reqs = 20) ?(secs = 60) cluster =
  Pbft_cluster.start_clients cluster ~requests_per_client:reqs ~make_op:put;
  Pbft_cluster.run_for cluster (Engine.sec secs);
  cluster

let test_happy_path () =
  let cluster = drive (make ()) in
  check_int "all done" 40 (Pbft_cluster.total_completed cluster);
  check "agreement" true (Pbft_cluster.agreement_ok cluster);
  Array.iter
    (fun r -> check_int "no view change" 0 (Pbft_replica.view_changes_completed r))
    cluster.Pbft_cluster.replicas

let test_f2 () =
  let cluster = drive (make ~f:2 ~num_clients:3 ()) in
  check_int "all done" 60 (Pbft_cluster.total_completed cluster);
  check "agreement" true (Pbft_cluster.agreement_ok cluster)

let test_crash_backup () =
  let cluster = make () in
  Pbft_cluster.crash_replicas cluster [ 3 ];
  ignore (drive cluster);
  check_int "all done with f crashed" 40 (Pbft_cluster.total_completed cluster);
  check "agreement" true (Pbft_cluster.agreement_ok cluster)

let test_crash_primary () =
  let cluster = make () in
  Pbft_cluster.crash_replicas cluster [ 0 ];
  ignore (drive ~secs:90 cluster);
  check_int "all done after fail-over" 40 (Pbft_cluster.total_completed cluster);
  check "agreement" true (Pbft_cluster.agreement_ok cluster);
  check "view advanced" true (Pbft_replica.view cluster.Pbft_cluster.replicas.(1) >= 1)

let test_primary_crash_mid_run () =
  let cluster = make ~num_clients:4 () in
  Pbft_cluster.start_clients cluster ~requests_per_client:30 ~make_op:put;
  Engine.schedule cluster.Pbft_cluster.engine ~at:(Engine.ms 200) (fun () ->
      Engine.crash cluster.Pbft_cluster.engine 0);
  Pbft_cluster.run_for cluster (Engine.sec 90);
  check_int "all done" 120 (Pbft_cluster.total_completed cluster);
  check "agreement" true (Pbft_cluster.agreement_ok cluster)

let test_checkpoint_gc () =
  let cluster = make ~win:8 ~num_clients:4 () in
  ignore (drive ~reqs:50 cluster);
  check_int "all done" 200 (Pbft_cluster.total_completed cluster);
  check "agreement" true (Pbft_cluster.agreement_ok cluster)

let test_quadratic_message_complexity () =
  (* The defining property of the baseline: per committed block, message
     count grows quadratically with n.  Compare n=4 and n=7 under an
     identical serial workload. *)
  let run f =
    let cluster = make ~f ~num_clients:1 () in
    ignore (drive ~reqs:10 cluster);
    check_int "done" 10 (Pbft_cluster.total_completed cluster);
    let blocks =
      Pbft_replica.last_executed cluster.Pbft_cluster.replicas.(1)
    in
    float_of_int (Network.messages_sent cluster.Pbft_cluster.network)
    /. float_of_int blocks
  in
  let m4 = run 1 and m7 = run 2 in
  (* (7/4)^2 ≈ 3.06: expect at least a 2x growth in messages per block. *)
  check "quadratic growth" true (m7 /. m4 > 2.0)

let test_determinism () =
  let run () =
    let cluster = drive (make ~seed:9L ()) in
    ( Pbft_cluster.total_completed cluster,
      Stats.Latency.mean_ms cluster.Pbft_cluster.latency )
  in
  check "deterministic" true (run () = run ())

let () =
  Alcotest.run "sbft_pbft"
    [
      ( "pbft",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path;
          Alcotest.test_case "f=2" `Quick test_f2;
          Alcotest.test_case "crash backup" `Quick test_crash_backup;
          Alcotest.test_case "crash primary" `Quick test_crash_primary;
          Alcotest.test_case "primary crash mid-run" `Quick test_primary_crash_mid_run;
          Alcotest.test_case "checkpoint gc" `Quick test_checkpoint_gc;
          Alcotest.test_case "quadratic messages" `Quick test_quadratic_message_complexity;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
