(* Randomized safety testing: Theorem VI.1 states that no two non-faulty
   replicas ever commit different blocks at the same sequence number, in
   the fully asynchronous model with up to f Byzantine replicas.  These
   property tests run small clusters through randomized fault schedules
   — crashes, recoveries, partitions, message drops, Byzantine replicas
   (equivocation, corrupt shares, stale view-change info) — and assert
   agreement after every run.  Liveness is deliberately not asserted
   here: the schedules are adversarial. *)

open Sbft_sim
open Sbft_core

let put ~client i =
  Sbft_store.Kv_service.put ~key:(Printf.sprintf "k%d-%d" client i) ~value:(string_of_int i)

let qtest name count gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* One randomized execution: returns (agreement, completed). *)
let run_random_schedule seed =
  let rng = Rng.create (Int64.of_int (0x5EED + seed)) in
  let f = 1 + Rng.int rng 2 in
  let c = Rng.int rng 2 in
  let config = Config.sbft ~f ~c in
  let n = Config.n config in
  let cluster =
    Cluster.create
      ~seed:(Int64.of_int (seed * 31))
      ~config ~num_clients:2
      ~topology:(fun ~num_nodes ->
        if Rng.bool rng 0.5 then Topology.lan ~num_nodes
        else Topology.continent ~num_nodes)
      ~service:Cluster.kv_service ()
  in
  let engine = cluster.Cluster.engine in
  (* Up to f Byzantine replicas with random behaviours. *)
  let behaviours =
    [| Replica.Equivocating_primary; Replica.Silent; Replica.Corrupt_shares;
       Replica.Wrong_exec_digest; Replica.Stale_view_change |]
  in
  let byz_count = Rng.int rng (f + 1) in
  let byz = Array.init byz_count (fun i -> i * 2 mod n) in
  Array.iter
    (fun r -> Replica.set_byzantine cluster.Cluster.replicas.(r) (Rng.pick rng behaviours))
    byz;
  (* Random drop probability. *)
  if Rng.bool rng 0.4 then
    Network.set_drop_prob cluster.Cluster.network (0.01 *. Rng.float rng);
  (* Random crash / recover / partition events over the first 20 s;
     crashes are capped so Byzantine + crashed never exceed f. *)
  let crashable = max 0 (f - byz_count) in
  let crashed = ref [] in
  for ev = 1 to 6 do
    let at = Engine.ms (200 + Rng.int rng 20_000) in
    match Rng.int rng 4 with
    | 0 when List.length !crashed < crashable ->
        let victim = Rng.int rng n in
        if not (Array.mem victim byz) && not (List.mem victim !crashed) then begin
          crashed := victim :: !crashed;
          Engine.schedule engine ~at (fun () -> Engine.crash engine victim)
        end
    | 1 -> (
        match !crashed with
        | v :: rest ->
            crashed := rest;
            Engine.schedule engine ~at (fun () -> Engine.recover engine v)
        | [] -> ())
    | 2 ->
        (* Transient partition cutting off a random minority. *)
        let cut = Rng.int rng (max 1 f) + 1 in
        let groups = Array.init (n + 2) (fun i -> if i < cut then 1 else 0) in
        Engine.schedule engine ~at (fun () ->
            Network.set_partition cluster.Cluster.network ~groups:(Some groups));
        Engine.schedule engine ~at:(at + Engine.sec 3) (fun () ->
            Network.set_partition cluster.Cluster.network ~groups:None)
    | _ -> ignore ev
  done;
  Cluster.start_clients cluster ~requests_per_client:15 ~make_op:put;
  Cluster.run_for cluster (Engine.sec 45);
  (Cluster.agreement_ok cluster, Cluster.total_completed cluster)

let prop_safety =
  qtest "agreement holds under random fault schedules" 12
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let agreement, _ = run_random_schedule seed in
      agreement)

let prop_crash_only_liveness =
  (* With crash faults only (no Byzantine, no drops), runs must also make
     progress, not merely stay safe. *)
  qtest "liveness under crash-only schedules" 8
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int (7 * seed)) in
      let config = Config.sbft ~f:1 ~c:0 in
      let cluster =
        Cluster.create
          ~seed:(Int64.of_int seed)
          ~config ~num_clients:2
          ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
          ~service:Cluster.kv_service ()
      in
      let victim = Rng.int rng (Config.n config) in
      Engine.schedule cluster.Cluster.engine
        ~at:(Engine.ms (100 + Rng.int rng 2000))
        (fun () -> Engine.crash cluster.Cluster.engine victim);
      Cluster.start_clients cluster ~requests_per_client:10 ~make_op:put;
      Cluster.run_for cluster (Engine.sec 120);
      Cluster.agreement_ok cluster && Cluster.total_completed cluster = 20)

let () =
  Alcotest.run "sbft_safety_properties"
    [ ("random-schedules", [ prop_safety; prop_crash_only_liveness ]) ]
