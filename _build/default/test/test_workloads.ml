(* Tests for the workload generators (KV micro-benchmark, synthetic
   Ethereum trace) and the benchmark harness (scenario runner, report
   rendering). *)

open Sbft_sim
open Sbft_workload
open Sbft_harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* KV workload *)

let test_kv_single_op () =
  let op = Kv_workload.single_op ~client:3 7 in
  match Sbft_store.Kv_op.decode op with
  | Some (Sbft_store.Kv_op.Put _) -> ()
  | _ -> Alcotest.fail "expected a put"

let test_kv_batch_op () =
  let op = Kv_workload.batch_op ~client:3 7 in
  match Sbft_store.Kv_op.decode op with
  | Some (Sbft_store.Kv_op.Batch ops) ->
      check_int "64 ops" 64 (List.length ops);
      check_int "count" 64 (Sbft_store.Kv_op.count (Sbft_store.Kv_op.Batch ops))
  | _ -> Alcotest.fail "expected a batch"

let test_kv_deterministic () =
  Alcotest.(check string)
    "same coordinates, same op"
    (Kv_workload.batch_op ~client:1 2)
    (Kv_workload.batch_op ~client:1 2);
  check "different clients differ" true
    (Kv_workload.batch_op ~client:1 2 <> Kv_workload.batch_op ~client:2 2)

let test_kv_exec_cost_scales () =
  let req op = { Sbft_core.Types.client = 0; timestamp = 1; op; signature = "" } in
  let single = Kv_workload.exec_cost [ req (Kv_workload.single_op ~client:0 0) ] in
  let batch = Kv_workload.exec_cost [ req (Kv_workload.batch_op ~client:0 0) ] in
  check "batch costs more" true (batch > 4 * single)

(* ------------------------------------------------------------------ *)
(* Ethereum workload *)

let test_eth_genesis_deterministic () =
  let d store = Sbft_crypto.Sha256.hex (Sbft_store.Auth_store.digest store) in
  let s1 = Eth_workload.service.Sbft_core.Cluster.make_store () in
  let s2 = Eth_workload.service.Sbft_core.Cluster.make_store () in
  Alcotest.(check string) "genesis digests equal" (d s1) (d s2)

let test_eth_genesis_contracts_live () =
  let store = Eth_workload.service.Sbft_core.Cluster.make_store () in
  let state = Sbft_store.Auth_store.state store in
  for i = 0 to Eth_workload.num_tokens - 1 do
    check
      (Printf.sprintf "token %d deployed" i)
      true
      (String.length (Sbft_evm.State.code state (Eth_workload.token_address i)) > 0)
  done;
  check "escrow deployed" true
    (String.length (Sbft_evm.State.code state Eth_workload.escrow_address) > 0);
  (* Every account holds a token balance after genesis distribution. *)
  let bal =
    Sbft_evm.State.sload state
      ~addr:(Eth_workload.token_address 0)
      ~slot:(Sbft_evm.U256.of_bytes_be (Eth_workload.account 5))
  in
  check "account 5 funded" true (not (Sbft_evm.U256.is_zero bal))

let test_eth_chunks () =
  let chunk = Eth_workload.make_chunk ~client:2 9 in
  check_int "tx count" Eth_workload.txs_per_chunk (Eth_workload.chunk_tx_count chunk);
  (* Roughly the paper's 12 KB framing: each tx ~100-250 bytes. *)
  let size = String.length chunk in
  check "chunk size plausible" true (size > 4_000 && size < 20_000);
  (* Executing a chunk against genesis succeeds for most transactions. *)
  let store = Eth_workload.service.Sbft_core.Cluster.make_store () in
  match Sbft_store.Auth_store.execute_block store ~seq:1 ~ops:[ chunk ] with
  | [ receipt ] -> (
      match Sbft_evm.Tx.decode_receipt receipt with
      | Some rc ->
          let ok_count = int_of_string rc.Sbft_evm.Tx.output in
          check "most txs applied" true (ok_count > Eth_workload.txs_per_chunk / 2)
      | None -> Alcotest.fail "bad receipt")
  | _ -> Alcotest.fail "expected one receipt"

let test_eth_cluster_end_to_end () =
  let cluster =
    Sbft_core.Cluster.create ~config:(Sbft_core.Config.sbft ~f:1 ~c:0) ~num_clients:2
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Eth_workload.service ()
  in
  Sbft_core.Cluster.start_clients cluster ~requests_per_client:3
    ~make_op:(fun ~client i -> Eth_workload.make_chunk ~client i);
  Sbft_core.Cluster.run_for cluster (Engine.sec 30);
  check_int "all chunks committed" 6 (Sbft_core.Cluster.total_completed cluster);
  check "agreement on EVM state" true (Sbft_core.Cluster.agreement_ok cluster)

(* ------------------------------------------------------------------ *)
(* Harness *)

let quick ?(protocol = Scenario.SBFT 0) ?(workload = Scenario.Kv { batching = true })
    ?(failures = 0) () =
  Scenario.default ~topology:`Lan ~warmup:(Engine.ms 200) ~duration:(Engine.sec 1)
    ~failures ~protocol ~f:1 ~workload ~num_clients:4 ()

let test_scenario_sbft () =
  let p = Scenario.run (quick ()) in
  check "throughput positive" true (p.Scenario.throughput_ops > 0.0);
  check "latency positive" true (p.Scenario.median_latency_ms > 0.0);
  check "agreement" true p.Scenario.agreement;
  check "fast path dominant" true (p.Scenario.fast_fraction > 0.9)

let test_scenario_pbft () =
  let p = Scenario.run (quick ~protocol:Scenario.PBFT ()) in
  check "throughput positive" true (p.Scenario.throughput_ops > 0.0);
  check "agreement" true p.Scenario.agreement

let test_scenario_failures_force_slow_path () =
  let p = Scenario.run (quick ~failures:1 ()) in
  check "agreement" true p.Scenario.agreement;
  check "slow path" true (p.Scenario.fast_fraction < 0.1)

let test_scenario_deterministic () =
  let p1 = Scenario.run (quick ()) and p2 = Scenario.run (quick ()) in
  check "same throughput" true (p1.Scenario.throughput_ops = p2.Scenario.throughput_ops);
  check "same latency" true (p1.Scenario.median_latency_ms = p2.Scenario.median_latency_ms)

let test_ops_accounting () =
  (* Throughput is measured in operations: batch mode multiplies by 64. *)
  check_int "batch ops" 64 (Scenario.ops_per_request (Scenario.Kv { batching = true }));
  check_int "single op" 1 (Scenario.ops_per_request (Scenario.Kv { batching = false }));
  check_int "eth ops" Eth_workload.txs_per_chunk (Scenario.ops_per_request Scenario.Eth)

let test_csv () =
  let p = Scenario.run (quick ()) in
  let csv = Report.csv_of_points [ p; p ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  check "header fields" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 8 = "protocol")

let () =
  Alcotest.run "sbft_workloads"
    [
      ( "kv",
        [
          Alcotest.test_case "single op" `Quick test_kv_single_op;
          Alcotest.test_case "batch op" `Quick test_kv_batch_op;
          Alcotest.test_case "deterministic" `Quick test_kv_deterministic;
          Alcotest.test_case "exec cost" `Quick test_kv_exec_cost_scales;
        ] );
      ( "eth",
        [
          Alcotest.test_case "genesis deterministic" `Quick test_eth_genesis_deterministic;
          Alcotest.test_case "genesis contracts" `Quick test_eth_genesis_contracts_live;
          Alcotest.test_case "chunks" `Quick test_eth_chunks;
          Alcotest.test_case "cluster end-to-end" `Quick test_eth_cluster_end_to_end;
        ] );
      ( "harness",
        [
          Alcotest.test_case "sbft scenario" `Quick test_scenario_sbft;
          Alcotest.test_case "pbft scenario" `Quick test_scenario_pbft;
          Alcotest.test_case "failures -> slow path" `Quick test_scenario_failures_force_slow_path;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "ops accounting" `Quick test_ops_accounting;
          Alcotest.test_case "csv" `Quick test_csv;
        ] );
    ]
