(* Tests for the EVM substrate: 256-bit arithmetic (including qcheck
   cross-checks against native ints), machine components, world state,
   the assembler, the interpreter opcode-by-opcode, the hand-assembled
   contracts, and the transaction-level service. *)

open Sbft_evm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen prop)

let u = U256.of_int
let addr_a = State.address_of_hex "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
let addr_b = State.address_of_hex "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
let addr_c = State.address_of_hex "cccccccccccccccccccccccccccccccccccccccc"

(* ------------------------------------------------------------------ *)
(* U256 *)

let test_u256_basic () =
  check "zero" true (U256.is_zero U256.zero);
  check "one" true (U256.equal U256.one (u 1));
  check "add" true (U256.equal (U256.add (u 2) (u 3)) (u 5));
  check "sub" true (U256.equal (U256.sub (u 7) (u 3)) (u 4));
  check "mul" true (U256.equal (U256.mul (u 6) (u 7)) (u 42));
  check "div" true (U256.equal (U256.div (u 42) (u 5)) (u 8));
  check "rem" true (U256.equal (U256.rem (u 42) (u 5)) (u 2));
  check "div by zero" true (U256.is_zero (U256.div (u 42) U256.zero));
  check "rem by zero" true (U256.is_zero (U256.rem (u 42) U256.zero))

let test_u256_wraparound () =
  check "max + 1 = 0" true (U256.is_zero (U256.add U256.max_value U256.one));
  check "0 - 1 = max" true (U256.equal (U256.sub U256.zero U256.one) U256.max_value);
  check "neg 1 = max" true (U256.equal (U256.neg U256.one) U256.max_value);
  (* (2^255) * 2 = 0 mod 2^256 *)
  let two255 = U256.shift_left U256.one 255 in
  check "2^255 * 2 wraps" true (U256.is_zero (U256.mul two255 (u 2)))

let test_u256_big_values () =
  (* (2^128 - 1)^2 = 2^256 - 2^129 + 1 *)
  let m128 = U256.sub (U256.shift_left U256.one 128) U256.one in
  let sq = U256.mul m128 m128 in
  let expected = U256.add (U256.sub U256.zero (U256.shift_left U256.one 129)) U256.one in
  check "(2^128-1)^2" true (U256.equal sq expected);
  (* Division recovers the factor. *)
  check "sq / m128 = m128" true (U256.equal (U256.div sq m128) m128);
  check "sq mod m128 = 0" true (U256.is_zero (U256.rem sq m128))

let test_u256_div_large_divisor () =
  (* Divisor above 2^255 exercises the shift-overflow path. *)
  let big = U256.logor (U256.shift_left U256.one 255) (u 12345) in
  check "max / big = 1" true (U256.equal (U256.div U256.max_value big) U256.one);
  check "rem consistent" true
    (U256.equal U256.max_value (U256.add (U256.mul big U256.one) (U256.rem U256.max_value big)))

let test_u256_signed () =
  let minus_one = U256.neg U256.one in
  let minus_six = U256.neg (u 6) in
  check "sdiv -6 / 2 = -3" true (U256.equal (U256.sdiv minus_six (u 2)) (U256.neg (u 3)));
  check "sdiv -6 / -2 = 3" true (U256.equal (U256.sdiv minus_six (U256.neg (u 2))) (u 3));
  check "srem -7 mod 2 = -1" true (U256.equal (U256.srem (U256.neg (u 7)) (u 2)) minus_one);
  check "slt -1 < 1" true (U256.slt minus_one U256.one);
  check "sgt 1 > -1" true (U256.sgt U256.one minus_one);
  check "not (lt) unsigned" false (U256.lt minus_one U256.one);
  check "is_negative" true (U256.is_negative minus_one);
  check "not negative" false (U256.is_negative (u 5))

let test_u256_shifts () =
  check "shl" true (U256.equal (U256.shift_left U256.one 8) (u 256));
  check "shr" true (U256.equal (U256.shift_right (u 256) 8) U256.one);
  check "shl 256 = 0" true (U256.is_zero (U256.shift_left U256.max_value 256));
  check "shr cross limb" true
    (U256.equal (U256.shift_right (U256.shift_left U256.one 100) 36) (U256.shift_left U256.one 64));
  let minus_one = U256.neg U256.one in
  check "sar of -1 = -1" true (U256.equal (U256.shift_right_arith minus_one 17) minus_one);
  check "sar positive = shr" true
    (U256.equal (U256.shift_right_arith (u 1024) 3) (U256.shift_right (u 1024) 3))

let test_u256_bytes_hex () =
  let v = U256.of_hex "0xdeadbeef" in
  check "of_hex" true (U256.equal v (u 0xdeadbeef));
  check_str "to_hex" "0xdeadbeef" (U256.to_hex v);
  check_str "to_hex zero" "0x0" (U256.to_hex U256.zero);
  check_int "bytes len" 32 (String.length (U256.to_bytes_be v));
  check "roundtrip" true (U256.equal v (U256.of_bytes_be (U256.to_bytes_be v)));
  check "short bytes pad left" true (U256.equal (U256.of_bytes_be "\x01\x00") (u 256))

let test_u256_byte_signextend () =
  let v = U256.of_hex "0x1122334455" in
  check "byte 31 = 0x55" true (U256.equal (U256.byte 31 v) (u 0x55));
  check "byte 27 = 0x11" true (U256.equal (U256.byte 27 v) (u 0x11));
  check "byte 0 = 0" true (U256.is_zero (U256.byte 0 v));
  check "byte 32 = 0" true (U256.is_zero (U256.byte 32 v));
  (* sign_extend from byte 0 of 0xFF = -1 *)
  check "signextend 0xff" true
    (U256.equal (U256.sign_extend 0 (u 0xFF)) (U256.neg U256.one));
  check "signextend positive" true (U256.equal (U256.sign_extend 0 (u 0x7F)) (u 0x7F));
  check "signextend clears high" true
    (U256.equal (U256.sign_extend 0 (u 0x17F)) (u 0x7F))

let test_u256_modular () =
  check "addmod" true (U256.equal (U256.addmod (u 10) (u 10) (u 8)) (u 4));
  check "mulmod" true (U256.equal (U256.mulmod (u 10) (u 10) (u 8)) (u 4));
  check "addmod zero mod" true (U256.is_zero (U256.addmod (u 1) (u 2) U256.zero));
  (* addmod over 2^256: max + 2 mod 10; max = 2^256-1, 2^256+1 mod 10: 2^256 mod 10 = 6 -> 7 *)
  check "addmod wraps correctly" true
    (U256.equal (U256.addmod U256.max_value (u 2) (u 10)) (u 7));
  (* mulmod with values that overflow 256 bits *)
  let m128 = U256.sub (U256.shift_left U256.one 128) U256.one in
  check "mulmod big" true
    (U256.equal (U256.mulmod m128 m128 (u 97)) (U256.rem (U256.mul (U256.rem m128 (u 97)) (U256.rem m128 (u 97))) (u 97)));
  (* mulmod with modulus above 2^255 *)
  let bigm = U256.logor (U256.shift_left U256.one 255) U256.one in
  let r = U256.mulmod m128 m128 bigm in
  check "mulmod big modulus in range" true (U256.lt r bigm)

let test_u256_exp () =
  check "2^10" true (U256.equal (U256.exp (u 2) (u 10)) (u 1024));
  check "x^0 = 1" true (U256.equal (U256.exp (u 12345) U256.zero) U256.one);
  check "0^0 = 1" true (U256.equal (U256.exp U256.zero U256.zero) U256.one);
  check "3^5" true (U256.equal (U256.exp (u 3) (u 5)) (u 243));
  (* wrap: 2^256 = 0 *)
  check "2^256 wraps to 0" true (U256.is_zero (U256.exp (u 2) (u 256)))

let test_u256_conversions_edges () =
  check "to_int_opt small" true (U256.to_int_opt (u 42) = Some 42);
  check "to_int_opt max_int" true (U256.to_int_opt (u max_int) = Some max_int);
  check "to_int_opt overflow" true (U256.to_int_opt U256.max_value = None);
  check "to_int_opt high limb" true
    (U256.to_int_opt (U256.shift_left U256.one 64) = None);
  check_int "clamped overflow" max_int (U256.to_int_clamped U256.max_value);
  (* of_hex odd length and prefix handling *)
  check "of_hex odd" true (U256.equal (U256.of_hex "f") (u 15));
  check "of_hex prefix" true (U256.equal (U256.of_hex "0x0") U256.zero);
  check "of_hex 64 digits" true
    (U256.equal (U256.of_hex (String.make 64 'f')) U256.max_value);
  check "of_hex too long rejected" true
    (try
       ignore (U256.of_hex (String.make 66 '1'));
       false
     with Invalid_argument _ -> true);
  (* bits *)
  check_int "bits zero" 0 (U256.bits U256.zero);
  check_int "bits one" 1 (U256.bits U256.one);
  check_int "bits 255" 8 (U256.bits (u 255));
  check_int "bits max" 256 (U256.bits U256.max_value);
  check_int "bits 2^128" 129 (U256.bits (U256.shift_left U256.one 128))

let small_pair = QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 1_000_000))

let u256_props =
  [
    qtest "add matches int" small_pair (fun (a, b) ->
        U256.equal (U256.add (u a) (u b)) (u (a + b)));
    qtest "mul matches int" small_pair (fun (a, b) ->
        U256.equal (U256.mul (u a) (u b)) (u (a * b)));
    qtest "divrem matches int" small_pair (fun (a, b) ->
        U256.equal (U256.div (u a) (u b)) (u (a / b))
        && U256.equal (U256.rem (u a) (u b)) (u (a mod b)));
    qtest "sub then add roundtrip" small_pair (fun (a, b) ->
        U256.equal (U256.add (U256.sub (u a) (u b)) (u b)) (u a));
    qtest "bytes roundtrip" QCheck2.Gen.(int_range 0 max_int) (fun a ->
        U256.equal (u a) (U256.of_bytes_be (U256.to_bytes_be (u a))));
    qtest "div mul rem identity (random words)"
      QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 1000))
      (fun (s1, s2) ->
        (* Pseudo-random 256-bit values from hashes. *)
        let a = U256.of_bytes_be (Sbft_crypto.Sha256.digest (string_of_int s1)) in
        let b = U256.of_bytes_be (Sbft_crypto.Sha256.digest (string_of_int (s2 + 7777))) in
        if U256.is_zero b then true
        else begin
          let q = U256.div a b and r = U256.rem a b in
          U256.lt r b && U256.equal a (U256.add (U256.mul q b) r)
        end);
  ]

(* ------------------------------------------------------------------ *)
(* Machine *)

let test_stack () =
  let s = Machine.Stack.create () in
  Machine.Stack.push s (u 1);
  Machine.Stack.push s (u 2);
  Machine.Stack.push s (u 3);
  check_int "depth" 3 (Machine.Stack.depth s);
  check "peek" true (U256.equal (Machine.Stack.peek s 0) (u 3));
  Machine.Stack.dup s 3;
  check "dup3" true (U256.equal (Machine.Stack.pop s) (u 1));
  Machine.Stack.swap s 2;
  check "swap2 top" true (U256.equal (Machine.Stack.pop s) (u 1));
  check "swap2 bottom" true (U256.equal (Machine.Stack.peek s 1) (u 3));
  check "underflow" true
    (try
       let s2 = Machine.Stack.create () in
       ignore (Machine.Stack.pop s2);
       false
     with Machine.Stack_underflow_evm -> true);
  check "overflow" true
    (try
       let s2 = Machine.Stack.create () in
       for _ = 1 to 1025 do
         Machine.Stack.push s2 U256.zero
       done;
       false
     with Machine.Stack_overflow_evm -> true)

let test_memory () =
  let m = Machine.Memory.create () in
  check_int "initial words" 0 (Machine.Memory.size_words m);
  Machine.Memory.store_word m 0 (u 0xABCD);
  check "load word" true (U256.equal (Machine.Memory.load_word m 0) (u 0xABCD));
  check_int "one word" 1 (Machine.Memory.size_words m);
  Machine.Memory.store_byte m 100 0xFF;
  check_int "expanded" 4 (Machine.Memory.size_words m);
  check_str "slice" "\xff" (Machine.Memory.load_slice m ~offset:100 ~len:1);
  Machine.Memory.store_slice m ~offset:5 "hello";
  check_str "slice roundtrip" "hello" (Machine.Memory.load_slice m ~offset:5 ~len:5);
  (* Unaligned word read straddling stored data. *)
  let w = Machine.Memory.load_word m 5 in
  check "word starts with hello" true
    (String.sub (U256.to_bytes_be w) 0 5 = "hello")

(* ------------------------------------------------------------------ *)
(* State *)

let test_state () =
  let s = Sbft_crypto.Merkle_map.empty in
  check "zero balance" true (U256.is_zero (State.balance s addr_a));
  let s = State.set_balance s addr_a (u 100) in
  check "balance set" true (U256.equal (State.balance s addr_a) (u 100));
  (match State.transfer s ~from_:addr_a ~to_:addr_b (u 30) with
  | None -> Alcotest.fail "transfer failed"
  | Some s ->
      check "from debited" true (U256.equal (State.balance s addr_a) (u 70));
      check "to credited" true (U256.equal (State.balance s addr_b) (u 30)));
  check "insufficient" true (State.transfer s ~from_:addr_a ~to_:addr_b (u 1000) = None);
  check "transfer zero always ok" true (State.transfer s ~from_:addr_c ~to_:addr_b U256.zero <> None);
  let s = State.incr_nonce s addr_a in
  let s = State.incr_nonce s addr_a in
  check_int "nonce" 2 (State.nonce s addr_a);
  let s = State.set_code s addr_c "\x60\x00" in
  check_str "code" "\x60\x00" (State.code s addr_c);
  let s = State.sstore s ~addr:addr_c ~slot:(u 5) (u 42) in
  check "sload" true (U256.equal (State.sload s ~addr:addr_c ~slot:(u 5)) (u 42));
  check "sload other slot" true (U256.is_zero (State.sload s ~addr:addr_c ~slot:(u 6)));
  let s = State.sstore s ~addr:addr_c ~slot:(u 5) U256.zero in
  check "sstore zero deletes" true (U256.is_zero (State.sload s ~addr:addr_c ~slot:(u 5)));
  check "exists" true (State.account_exists s addr_c);
  check "not exists" false (State.account_exists s (State.address_of_hex "1111111111111111111111111111111111111111"))

let test_contract_address_deterministic () =
  let a1 = State.contract_address ~sender:addr_a ~nonce:0 in
  let a2 = State.contract_address ~sender:addr_a ~nonce:0 in
  let a3 = State.contract_address ~sender:addr_a ~nonce:1 in
  let a4 = State.contract_address ~sender:addr_b ~nonce:0 in
  check_str "deterministic" a1 a2;
  check "nonce matters" false (a1 = a3);
  check "sender matters" false (a1 = a4);
  check_int "20 bytes" 20 (String.length a1)

(* ------------------------------------------------------------------ *)
(* Asm *)

let test_asm_push_widths () =
  let code = Asm.assemble [ Push (u 0); Push (u 0xFF); Push (u 0x1FF); Push (u 0xFFFFFF) ] in
  (* PUSH1 00, PUSH1 FF, PUSH2 01FF, PUSH3 FFFFFF *)
  check_str "encoding" "\x60\x00\x60\xff\x61\x01\xff\x62\xff\xff\xff" code

let test_asm_labels () =
  let code =
    Asm.assemble [ Push_label "end"; Op JUMP; Op STOP; Label "end"; Push_int 1 ]
  in
  (* PUSH2 0005 JUMP STOP JUMPDEST PUSH1 01 *)
  check_str "label encoding" "\x61\x00\x05\x56\x00\x5b\x60\x01" code;
  check "undefined label" true
    (try
       ignore (Asm.assemble [ Push_label "nope" ]);
       false
     with Invalid_argument _ -> true);
  check "duplicate label" true
    (try
       ignore (Asm.assemble [ Label "x"; Label "x" ]);
       false
     with Invalid_argument _ -> true)

let test_asm_disassemble () =
  let d = Asm.disassemble (Asm.assemble [ Push_int 5; Op ADD; Op STOP ]) in
  check "mentions PUSH1" true
    (try
       ignore (Str.search_forward (Str.regexp_string "PUSH1") d 0);
       true
     with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let ctx = Interpreter.default_context
let empty = Sbft_crypto.Merkle_map.empty

let run_code ?(state = empty) ?(value = U256.zero) ?(data = "") ?(gas = 1_000_000) code =
  Interpreter.execute_code ~ctx ~state ~caller:addr_a ~address:addr_b ~value ~data ~gas
    ~code

(* Program returning the top of stack as a 32-byte word. *)
let return_top_program body =
  Asm.assemble
    (body @ [ Asm.Push_int 0; Asm.Op MSTORE; Asm.Push_int 32; Asm.Push_int 0; Asm.Op RETURN ])

let expect_word res expected =
  check "success" true res.Interpreter.success;
  check "word result" true (U256.equal (U256.of_bytes_be res.Interpreter.output) expected)

let test_interp_arithmetic () =
  expect_word (run_code (return_top_program [ Push_int 3; Push_int 2; Op ADD ])) (u 5);
  (* SUB pops a then b, computes a-b: push b first. *)
  expect_word (run_code (return_top_program [ Push_int 3; Push_int 10; Op SUB ])) (u 7);
  expect_word (run_code (return_top_program [ Push_int 4; Push_int 20; Op DIV ])) (u 5);
  expect_word
    (run_code (return_top_program [ Push_int 10; Push_int 2; Op EXP ]))
    (u 1024)

let test_interp_comparison_logic () =
  expect_word (run_code (return_top_program [ Push_int 5; Push_int 3; Op LT ])) U256.one;
  expect_word (run_code (return_top_program [ Push_int 3; Push_int 5; Op LT ])) U256.zero;
  expect_word (run_code (return_top_program [ Push_int 0; Op ISZERO ])) U256.one;
  expect_word
    (run_code (return_top_program [ Push_int 0b1100; Push_int 0b1010; Op AND ]))
    (u 0b1000);
  expect_word
    (run_code (return_top_program [ Push_int 0b1100; Push_int 0b1010; Op XOR ]))
    (u 0b0110)

let test_interp_jumps () =
  (* if 1 then 42 else 13 *)
  let code =
    return_top_program
      [
        Push_int 1; Push_label "then"; Op JUMPI; Push_int 13;
        Push_label "done"; Op JUMP;
        Label "then"; Push_int 42;
        Label "done";
      ]
  in
  expect_word (run_code code) (u 42);
  (* Jump to a non-JUMPDEST fails. *)
  let bad = Asm.assemble [ Asm.Push_int 0; Asm.Op JUMP ] in
  let res = run_code bad in
  check "bad jump fails" false res.Interpreter.success;
  (* Jump into push data fails. *)
  let into_push = Asm.assemble [ Asm.Push_int 2; Asm.Op JUMP; Asm.Push (u 0x5b) ] in
  check "jump into push data fails" false (run_code into_push).Interpreter.success

let test_interp_storage () =
  let code =
    return_top_program
      [ Push_int 99; Push_int 7; Op SSTORE; Push_int 7; Op SLOAD ]
  in
  let res = run_code code in
  expect_word res (u 99);
  (* State change visible in result. *)
  check "sstore persisted" true
    (U256.equal (State.sload res.Interpreter.state ~addr:addr_b ~slot:(u 7)) (u 99))

let test_interp_calldata_env () =
  let data = U256.to_bytes_be (u 777) in
  let res =
    run_code ~data (return_top_program [ Push_int 0; Op CALLDATALOAD ])
  in
  expect_word res (u 777);
  expect_word (run_code ~data (return_top_program [ Op CALLDATASIZE ])) (u 32);
  expect_word
    (run_code ~value:(u 55) (return_top_program [ Op CALLVALUE ]))
    (u 55);
  expect_word
    (run_code (return_top_program [ Op CALLER ]))
    (U256.of_bytes_be addr_a);
  expect_word
    (run_code (return_top_program [ Op ADDRESS ]))
    (U256.of_bytes_be addr_b)

let test_interp_sha3 () =
  (* keccak256 of 32 zero bytes. *)
  let res = run_code (return_top_program [ Push_int 32; Push_int 0; Op SHA3 ]) in
  expect_word res (U256.of_bytes_be (Sbft_crypto.Keccak.digest (String.make 32 '\x00')))

let test_interp_revert_and_oog () =
  let rev =
    run_code
      (Asm.assemble
         [ Asm.Push_int 42; Asm.Push_int 0; Asm.Op MSTORE;
           Asm.Push_int 32; Asm.Push_int 0; Asm.Op REVERT ])
  in
  check "revert not success" false rev.Interpreter.success;
  check "revert flagged" true rev.Interpreter.reverted;
  check "revert output" true (U256.equal (U256.of_bytes_be rev.Interpreter.output) (u 42));
  let oog = run_code ~gas:3 (Asm.assemble [ Asm.Push_int 1; Asm.Push_int 1; Asm.Op ADD ]) in
  check "oog fails" false oog.Interpreter.success;
  check "oog consumes gas" true (oog.Interpreter.gas_used >= 3);
  let inv = run_code "\xfe" in
  check "invalid opcode fails" false inv.Interpreter.success

let test_interp_logs () =
  let code =
    Asm.assemble
      [
        Asm.Push_int 0xAB; Asm.Push_int 0; Asm.Op MSTORE;
        Asm.Push_int 123 (* topic *);
        Asm.Push_int 32 (* len *); Asm.Push_int 0 (* offset *);
        Asm.Op (LOG 1); Asm.Op STOP;
      ]
  in
  let res = run_code code in
  check "success" true res.Interpreter.success;
  match res.Interpreter.logs with
  | [ { topics = [ t ]; data; address } ] ->
      check "topic" true (U256.equal t (u 123));
      check "data" true (U256.equal (U256.of_bytes_be data) (u 0xAB));
      check_str "address" addr_b address
  | _ -> Alcotest.fail "expected one log with one topic"

let test_interp_gas_accounting () =
  (* PUSH1(3) + PUSH1(3) + ADD(3) + implicit stop: 9 gas, plus nothing else. *)
  let res = run_code (Asm.assemble [ Asm.Push_int 1; Asm.Push_int 2; Asm.Op ADD ]) in
  check_int "gas exact" 9 res.Interpreter.gas_used;
  (* Memory expansion charges: MSTORE at offset 0 = 1 word -> 3 gas. *)
  let res2 =
    run_code (Asm.assemble [ Asm.Push_int 1; Asm.Push_int 0; Asm.Op MSTORE ])
  in
  check_int "gas with memory" (3 + 3 + 3 + 3) res2.Interpreter.gas_used

let test_interp_call () =
  (* Callee: returns CALLVALUE. *)
  let callee = return_top_program [ Asm.Op CALLVALUE ] in
  let state = State.set_code empty addr_c callee in
  let state = State.set_balance state addr_b (u 1000) in
  (* Caller: CALL(gas=50000, to=addr_c, value=77, in=0/0, out=0/32), then
     return the output word. *)
  let caller_code =
    Asm.assemble
      [
        Asm.Push_int 32 (* outLen *); Asm.Push_int 0 (* outOff *);
        Asm.Push_int 0 (* inLen *); Asm.Push_int 0 (* inOff *);
        Asm.Push_int 77 (* value *);
        Asm.Push (U256.of_bytes_be addr_c) (* to *);
        Asm.Push_int 50000 (* gas *);
        Asm.Op CALL;
        Asm.Op POP;
        Asm.Push_int 32; Asm.Push_int 0; Asm.Op RETURN;
      ]
  in
  let res = run_code ~state caller_code in
  check "call success" true res.Interpreter.success;
  check "output is value" true (U256.equal (U256.of_bytes_be res.Interpreter.output) (u 77));
  check "value transferred" true
    (U256.equal (State.balance res.Interpreter.state addr_c) (u 77));
  check "caller debited" true
    (U256.equal (State.balance res.Interpreter.state addr_b) (u 923))

let test_interp_create_and_call () =
  let state = State.set_balance empty addr_a (u 10) in
  let res, created =
    Interpreter.create ~ctx ~state ~caller:addr_a ~value:U256.zero
      ~init_code:Contracts.counter_init ~gas:1_000_000
  in
  check "create success" true res.Interpreter.success;
  check_str "deployed code" Contracts.counter_runtime
    (State.code res.Interpreter.state created);
  (* Call increment twice then get. *)
  let s = ref res.Interpreter.state in
  let call data =
    let r =
      Interpreter.call ~ctx ~state:!s ~caller:addr_a ~address:created ~value:U256.zero
        ~data ~gas:100_000
    in
    check "call ok" true r.Interpreter.success;
    s := r.Interpreter.state;
    r.Interpreter.output
  in
  ignore (call Contracts.counter_increment);
  ignore (call Contracts.counter_increment);
  let out = call Contracts.counter_get in
  check "counter = 2" true (U256.equal (U256.of_bytes_be out) (u 2))

let test_interp_call_depth_and_63_64 () =
  (* A contract that calls itself forever; must terminate via gas/depth. *)
  let self_addr = addr_c in
  let code =
    Asm.assemble
      [
        Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0; Asm.Push_int 0;
        Asm.Push_int 0;
        Asm.Push (U256.of_bytes_be self_addr);
        Asm.Push_int 10_000_000; Asm.Op CALL;
        Asm.Op STOP;
      ]
  in
  let state = State.set_code empty self_addr code in
  let res =
    Interpreter.call ~ctx ~state ~caller:addr_a ~address:self_addr ~value:U256.zero
      ~data:"" ~gas:200_000
  in
  (* Outer call succeeds (inner failures just push 0). *)
  check "terminates" true res.Interpreter.success

(* ------------------------------------------------------------------ *)
(* Contracts via the service layer *)

let apply_tx store tx =
  match Sbft_store.Auth_store.execute_block store
          ~seq:(Sbft_store.Auth_store.last_executed store + 1)
          ~ops:[ Tx.encode tx ] with
  | [ receipt ] -> Option.get (Tx.decode_receipt receipt)
  | _ -> Alcotest.fail "expected one receipt"

let test_token_end_to_end () =
  let store = Evm_service.create () in
  let rc = apply_tx store (Faucet { account = addr_a; amount = u 1_000_000 }) in
  check "faucet ok" true rc.Tx.ok;
  let rc =
    apply_tx store
      (Create { sender = addr_a; value = U256.zero;
                init_code = Contracts.token_init ~supply:(u 1000); gas = 5_000_000 })
  in
  check "deploy ok" true rc.Tx.ok;
  let token = rc.Tx.output in
  check_int "address size" 20 (String.length token);
  (* Transfer 250 to b. *)
  let rc =
    apply_tx store
      (Call { sender = addr_a; to_ = token; value = U256.zero;
              data = Contracts.token_transfer ~to_:addr_b ~amount:(u 250); gas = 500_000 })
  in
  check "transfer ok" true rc.Tx.ok;
  (* Balances. *)
  let balance_of who =
    let rc =
      apply_tx store
        (Call { sender = addr_a; to_ = token; value = U256.zero;
                data = Contracts.token_balance_of ~addr:who; gas = 500_000 })
    in
    check "balance query ok" true rc.Tx.ok;
    U256.of_bytes_be rc.Tx.output
  in
  check "a has 750" true (U256.equal (balance_of addr_a) (u 750));
  check "b has 250" true (U256.equal (balance_of addr_b) (u 250));
  (* Overdraft reverts and leaves balances intact. *)
  let rc =
    apply_tx store
      (Call { sender = addr_b; to_ = token; value = U256.zero;
              data = Contracts.token_transfer ~to_:addr_a ~amount:(u 9999); gas = 500_000 })
  in
  check "overdraft rejected" false rc.Tx.ok;
  check "b still 250" true (U256.equal (balance_of addr_b) (u 250))

let test_escrow_end_to_end () =
  let store = Evm_service.create () in
  ignore (apply_tx store (Faucet { account = addr_a; amount = u 1000 }));
  ignore (apply_tx store (Faucet { account = addr_b; amount = u 1000 }));
  let rc =
    apply_tx store
      (Create { sender = addr_a; value = U256.zero; init_code = Contracts.escrow_init;
                gas = 5_000_000 })
  in
  check "deploy ok" true rc.Tx.ok;
  let escrow = rc.Tx.output in
  let contribute sender amount =
    apply_tx store
      (Call { sender; to_ = escrow; value = u amount;
              data = Contracts.escrow_contribute; gas = 500_000 })
  in
  check "contribute a" true (contribute addr_a 100).Tx.ok;
  check "contribute b" true (contribute addr_b 300).Tx.ok;
  check "contribute a again" true (contribute addr_a 50).Tx.ok;
  let query data =
    let rc =
      apply_tx store
        (Call { sender = addr_c; to_ = escrow; value = U256.zero; data; gas = 500_000 })
    in
    check "query ok" true rc.Tx.ok;
    U256.of_bytes_be rc.Tx.output
  in
  check "total 450" true (U256.equal (query Contracts.escrow_total) (u 450));
  check "a contributed 150" true
    (U256.equal (query (Contracts.escrow_contribution_of ~addr:addr_a)) (u 150));
  check "b contributed 300" true
    (U256.equal (query (Contracts.escrow_contribution_of ~addr:addr_b)) (u 300));
  (* Escrow account balance equals total contributions. *)
  check "escrow balance" true
    (U256.equal
       (State.balance (Sbft_store.Auth_store.state store) escrow)
       (u 450))

let test_evm_service_determinism () =
  (* Two replicas applying the same transaction blocks reach identical
     state digests — the property the BFT execution layer relies on. *)
  let run () =
    let store = Evm_service.create () in
    ignore (apply_tx store (Faucet { account = addr_a; amount = u 5000 }));
    let rc =
      apply_tx store
        (Create { sender = addr_a; value = U256.zero;
                  init_code = Contracts.token_init ~supply:(u 100); gas = 5_000_000 })
    in
    let token = rc.Tx.output in
    for i = 1 to 5 do
      ignore
        (apply_tx store
           (Call { sender = addr_a; to_ = token; value = U256.zero;
                   data = Contracts.token_transfer ~to_:addr_b ~amount:(u i);
                   gas = 500_000 }))
    done;
    Sbft_crypto.Sha256.hex (Sbft_store.Auth_store.digest store)
  in
  check_str "digests agree" (run ()) (run ())

let test_evm_service_bad_tx () =
  let store = Evm_service.create () in
  let outs =
    Sbft_store.Auth_store.execute_block store ~seq:1 ~ops:[ "garbage-not-a-tx" ]
  in
  match outs with
  | [ receipt ] -> (
      match Tx.decode_receipt receipt with
      | Some rc -> check "bad tx rejected but consumed" false rc.Tx.ok
      | None -> Alcotest.fail "receipt undecodable")
  | _ -> Alcotest.fail "expected one output"

let test_tx_roundtrip () =
  let cases =
    [
      Tx.Create { sender = addr_a; value = u 5; init_code = "\x60\x00"; gas = 21000 };
      Tx.Call { sender = addr_a; to_ = addr_b; value = U256.zero; data = "abc"; gas = 50000 };
      Tx.Faucet { account = addr_c; amount = u 123 };
    ]
  in
  List.iter
    (fun tx ->
      match Tx.decode (Tx.encode tx) with
      | Some tx' -> check "roundtrip" true (tx = tx')
      | None -> Alcotest.fail "decode failed")
    cases;
  check "garbage" true (Tx.decode "\x09nope" = None)

let () =
  Alcotest.run "sbft_evm"
    [
      ( "u256",
        [
          Alcotest.test_case "basic" `Quick test_u256_basic;
          Alcotest.test_case "wraparound" `Quick test_u256_wraparound;
          Alcotest.test_case "big values" `Quick test_u256_big_values;
          Alcotest.test_case "large divisor" `Quick test_u256_div_large_divisor;
          Alcotest.test_case "signed" `Quick test_u256_signed;
          Alcotest.test_case "shifts" `Quick test_u256_shifts;
          Alcotest.test_case "bytes/hex" `Quick test_u256_bytes_hex;
          Alcotest.test_case "byte/signextend" `Quick test_u256_byte_signextend;
          Alcotest.test_case "modular" `Quick test_u256_modular;
          Alcotest.test_case "exp" `Quick test_u256_exp;
          Alcotest.test_case "conversion edges" `Quick test_u256_conversions_edges;
        ]
        @ u256_props );
      ( "machine",
        [
          Alcotest.test_case "stack" `Quick test_stack;
          Alcotest.test_case "memory" `Quick test_memory;
        ] );
      ( "state",
        [
          Alcotest.test_case "accounts" `Quick test_state;
          Alcotest.test_case "contract address" `Quick test_contract_address_deterministic;
        ] );
      ( "asm",
        [
          Alcotest.test_case "push widths" `Quick test_asm_push_widths;
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "disassemble" `Quick test_asm_disassemble;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arithmetic;
          Alcotest.test_case "comparison/logic" `Quick test_interp_comparison_logic;
          Alcotest.test_case "jumps" `Quick test_interp_jumps;
          Alcotest.test_case "storage" `Quick test_interp_storage;
          Alcotest.test_case "calldata/env" `Quick test_interp_calldata_env;
          Alcotest.test_case "sha3" `Quick test_interp_sha3;
          Alcotest.test_case "revert/oog" `Quick test_interp_revert_and_oog;
          Alcotest.test_case "logs" `Quick test_interp_logs;
          Alcotest.test_case "gas accounting" `Quick test_interp_gas_accounting;
          Alcotest.test_case "call" `Quick test_interp_call;
          Alcotest.test_case "create + counter" `Quick test_interp_create_and_call;
          Alcotest.test_case "recursion bounded" `Quick test_interp_call_depth_and_63_64;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "token end-to-end" `Quick test_token_end_to_end;
          Alcotest.test_case "escrow end-to-end" `Quick test_escrow_end_to_end;
        ] );
      ( "service",
        [
          Alcotest.test_case "determinism" `Quick test_evm_service_determinism;
          Alcotest.test_case "bad tx" `Quick test_evm_service_bad_tx;
          Alcotest.test_case "tx roundtrip" `Quick test_tx_roundtrip;
        ] );
    ]
