(* Unit tests for the smaller core-protocol components: configuration
   arithmetic, collector selection, adaptive batching, message hashing
   and size accounting, and request authentication. *)

open Sbft_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_arithmetic () =
  let c = Config.sbft ~f:64 ~c:8 in
  check_int "n" 209 (Config.n c);
  check_int "sigma" 201 (Config.sigma_threshold c);
  check_int "tau" 137 (Config.tau_threshold c);
  check_int "pi" 65 (Config.pi_threshold c);
  check_int "vc quorum" 145 (Config.quorum_vc c);
  let c0 = Config.sbft ~f:64 ~c:0 in
  check_int "n c=0" 193 (Config.n c0);
  check_int "sigma = n when c=0" (Config.n c0) (Config.sigma_threshold c0)

let test_config_presets () =
  let lp = Config.linear_pbft ~f:2 in
  check "no fast path" false lp.Config.fast_path;
  check "no exec acks" false lp.Config.execution_acks;
  let lpf = Config.linear_pbft_fast ~f:2 in
  check "fast path" true lpf.Config.fast_path;
  check "still no exec acks" false lpf.Config.execution_acks;
  let s = Config.sbft ~f:2 ~c:1 in
  check "full sbft" true (s.Config.fast_path && s.Config.execution_acks)

let test_config_validate () =
  check "valid" true (Config.validate (Config.sbft ~f:1 ~c:0) = Ok ());
  check "negative f" true (Config.validate { (Config.sbft ~f:1 ~c:0) with Config.f = -1 } <> Ok ());
  check "tiny win" true (Config.validate { (Config.sbft ~f:1 ~c:0) with Config.win = 2 } <> Ok ());
  check "zero batch" true
    (Config.validate { (Config.sbft ~f:1 ~c:0) with Config.max_batch = 0 } <> Ok ())

(* ------------------------------------------------------------------ *)
(* Collectors *)

let config = Config.sbft ~f:4 ~c:2 (* n = 17 *)

let test_primary_rotation () =
  check_int "view 0" 0 (Collectors.primary ~config ~view:0);
  check_int "view 5" 5 (Collectors.primary ~config ~view:5);
  check_int "wraps" 1 (Collectors.primary ~config ~view:(Config.n config + 1))

let test_collectors_basic () =
  let cs = Collectors.c_collectors ~config ~view:3 ~seq:42 in
  check_int "c+1 collectors" 3 (List.length cs);
  check "no primary" false (List.mem (Collectors.primary ~config ~view:3) cs);
  check "distinct" true (List.sort_uniq compare cs = List.sort compare cs);
  check "in range" true (List.for_all (fun r -> r >= 0 && r < Config.n config) cs);
  (* Deterministic. *)
  check "deterministic" true (cs = Collectors.c_collectors ~config ~view:3 ~seq:42)

let test_collectors_rotate_with_seq () =
  let distinct =
    List.sort_uniq compare
      (List.concat_map
         (fun seq -> Collectors.c_collectors ~config ~view:0 ~seq)
         (List.init 50 (fun i -> i)))
  in
  (* Load spreads over many replicas (paper: round-robin revolving). *)
  check "spreads load" true (List.length distinct > 10)

let test_collectors_differ_from_e_collectors () =
  (* Different salts: C- and E-collector groups are chosen independently. *)
  let all_same =
    List.for_all
      (fun seq ->
        Collectors.c_collectors ~config ~view:0 ~seq
        = Collectors.e_collectors ~config ~view:0 ~seq)
      (List.init 20 (fun i -> i + 1))
  in
  check "independent groups" false all_same

let test_slow_path_primary_last () =
  let sc = Collectors.slow_path_collectors ~config ~view:7 ~seq:9 in
  check_int "primary is last" (Collectors.primary ~config ~view:7)
    (List.nth sc (List.length sc - 1))

let test_rank () =
  check "rank found" true (Collectors.rank [ 5; 9; 2 ] 9 = Some 1);
  check "rank missing" true (Collectors.rank [ 5; 9; 2 ] 7 = None)

(* ------------------------------------------------------------------ *)
(* Batching *)

let test_batching_adapts () =
  let b = Batching.create (Config.sbft ~f:1 ~c:0) in
  check_int "starts at 1" 1 (Batching.batch_size b);
  for _ = 1 to 50 do
    Batching.observe_pending b 200
  done;
  check "grows under load" true (Batching.batch_size b > 10);
  check "clamped at max" true (Batching.batch_size b <= 64);
  for _ = 1 to 100 do
    Batching.observe_pending b 0
  done;
  check_int "decays back" 1 (Batching.batch_size b)

(* ------------------------------------------------------------------ *)
(* Types: hashing and sizes *)

let req op : Types.request = { client = 10; timestamp = 1; op; signature = String.make 256 's' }

let test_block_hash_sensitivity () =
  let reqs = [ req "a"; req "b" ] in
  let h = Types.block_hash ~seq:1 ~view:0 ~reqs in
  check_int "32 bytes" 32 (String.length h);
  check "seq matters" false (h = Types.block_hash ~seq:2 ~view:0 ~reqs);
  check "view matters" false (h = Types.block_hash ~seq:1 ~view:1 ~reqs);
  check "reqs matter" false (h = Types.block_hash ~seq:1 ~view:0 ~reqs:[ req "a" ]);
  check "order matters" false
    (h = Types.block_hash ~seq:1 ~view:0 ~reqs:[ req "b"; req "a" ]);
  check "deterministic" true (h = Types.block_hash ~seq:1 ~view:0 ~reqs)

let test_message_sizes () =
  let reqs = [ req (String.make 100 'x') ] in
  let sizes =
    [
      Types.size (Types.Request (req "op"));
      Types.size (Types.Pre_prepare { seq = 1; view = 0; reqs });
      Types.size (Types.Full_commit_proof { seq = 1; view = 0; sigma = Sbft_crypto.Field.one });
      Types.size (Types.Get_block { seq = 1; replica = 0 });
    ]
  in
  check "all positive" true (List.for_all (fun s -> s > 0) sizes);
  (* A pre-prepare with a big batch dwarfs a commit proof. *)
  let big = Types.Pre_prepare { seq = 1; view = 0; reqs = List.init 64 (fun _ -> req (String.make 2000 'x')) } in
  check "batch dominates" true
    (Types.size big > 50 * Types.size (Types.Full_commit_proof { seq = 1; view = 0; sigma = Sbft_crypto.Field.one }));
  (* Requests are dominated by the RSA signature for small ops. *)
  check "request >= signature size" true
    (Types.size (Types.Request (req "x")) >= Sbft_crypto.Pki.signature_size)

let test_kind_strings () =
  check "pre-prepare" true (Types.kind (Types.Pre_prepare { seq = 1; view = 0; reqs = [] }) = "pre-prepare");
  check "request" true (Types.kind (Types.Request (req "x")) = "request")

(* ------------------------------------------------------------------ *)
(* Keys / request authentication *)

let test_request_authentication () =
  let config = Config.sbft ~f:1 ~c:0 in
  let rng = Sbft_sim.Rng.create 11L in
  let keys, _replicas, clients = Keys.setup rng ~config ~num_clients:2 in
  let n = Config.n config in
  let make_req kp client op =
    let r = { Types.client; timestamp = 5; op; signature = "" } in
    { r with Types.signature = Sbft_crypto.Pki.sign kp (Types.request_digest r) }
  in
  let good = make_req clients.(0) n "op" in
  check "valid request" true (Keys.verify_request keys good);
  check "tampered op" false
    (Keys.verify_request keys { good with Types.op = "evil" });
  check "tampered timestamp" false
    (Keys.verify_request keys { good with Types.timestamp = 6 });
  (* Signed with the wrong client's key. *)
  let wrong_key = make_req clients.(1) n "op" in
  check "wrong key" false (Keys.verify_request keys wrong_key);
  (* Client id out of range. *)
  check "bad client id" false
    (Keys.verify_request keys { good with Types.client = n + 99 });
  check "replica id as client" false
    (Keys.verify_request keys { good with Types.client = 0 })

let () =
  Alcotest.run "sbft_core_units"
    [
      ( "config",
        [
          Alcotest.test_case "arithmetic" `Quick test_config_arithmetic;
          Alcotest.test_case "presets" `Quick test_config_presets;
          Alcotest.test_case "validate" `Quick test_config_validate;
        ] );
      ( "collectors",
        [
          Alcotest.test_case "primary rotation" `Quick test_primary_rotation;
          Alcotest.test_case "basic" `Quick test_collectors_basic;
          Alcotest.test_case "rotation over seq" `Quick test_collectors_rotate_with_seq;
          Alcotest.test_case "c vs e groups" `Quick test_collectors_differ_from_e_collectors;
          Alcotest.test_case "primary last on slow path" `Quick test_slow_path_primary_last;
          Alcotest.test_case "rank" `Quick test_rank;
        ] );
      ("batching", [ Alcotest.test_case "adapts" `Quick test_batching_adapts ]);
      ( "types",
        [
          Alcotest.test_case "block hash" `Quick test_block_hash_sensitivity;
          Alcotest.test_case "sizes" `Quick test_message_sizes;
          Alcotest.test_case "kinds" `Quick test_kind_strings;
        ] );
      ("keys", [ Alcotest.test_case "request auth" `Quick test_request_authentication ]);
    ]
