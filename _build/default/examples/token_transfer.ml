(* Smart contracts on SBFT: an ERC20-style token deployed and exercised
   through the replicated EVM ledger (the paper's §IV layering: SBFT
   replication -> authenticated key-value store -> EVM).

     dune exec examples/token_transfer.exe

   A "bank" client deploys the token and moves funds to two users; every
   transaction is a consensus decision.  Final balances are then read
   from a single replica's authenticated state, and all replicas' state
   digests compared. *)

open Sbft_sim
open Sbft_core
open Sbft_evm

let alice = State.address_of_hex "00000000000000000000000000000000000a11ce"
let bob = State.address_of_hex "0000000000000000000000000000000000000b0b"
let bank = State.address_of_hex "000000000000000000000000000000000000ba9c"

(* The bank's first created contract lives at nonce 0. *)
let token = State.contract_address ~sender:bank ~nonce:0

let transfer ~sender ~to_ amount =
  Tx.Call
    { sender; to_ = token; value = U256.zero;
      data = Contracts.token_transfer ~to_ ~amount:(U256.of_int amount);
      gas = 300_000 }

let script =
  [|
    Tx.Faucet { account = bank; amount = U256.of_int 1_000_000 };
    Tx.Create
      { sender = bank; value = U256.zero;
        init_code = Contracts.token_init ~supply:(U256.of_int 1000); gas = 5_000_000 };
    transfer ~sender:bank ~to_:alice 400;
    transfer ~sender:bank ~to_:bob 150;
    transfer ~sender:alice ~to_:bob 25;
    (* Overdraft: must revert and change nothing. *)
    transfer ~sender:bob ~to_:alice 99_999;
  |]

let () =
  Printf.printf "=== Token on the SBFT blockchain (n=6: f=1, c=1, continent WAN) ===\n\n";
  let evm_service =
    {
      Cluster.make_store = (fun () -> Evm_service.create ());
      exec_cost = (fun reqs -> List.length reqs * Sbft_crypto.Cost_model.evm_execute_tx);
    }
  in
  let cluster =
    Cluster.create ~config:(Config.sbft ~f:1 ~c:1) ~num_clients:1
      ~topology:(fun ~num_nodes -> Topology.continent ~num_nodes)
      ~service:evm_service ()
  in
  Cluster.start_clients cluster ~requests_per_client:(Array.length script)
    ~make_op:(fun ~client:_ i -> Tx.encode script.(i));
  Cluster.run_for cluster (Engine.sec 30);
  Printf.printf "transactions committed  : %d / %d\n" (Cluster.total_completed cluster)
    (Array.length script);
  Printf.printf "mean commit latency     : %.1f ms\n\n"
    (Stats.Latency.mean_ms cluster.Cluster.latency);

  (* Read final balances from ONE replica's authenticated EVM state —
     exactly what a light client does with a query proof. *)
  let state = Sbft_store.Auth_store.state (Replica.store cluster.Cluster.replicas.(2)) in
  let balance who =
    U256.to_int_clamped (State.sload state ~addr:token ~slot:(U256.of_bytes_be who))
  in
  Printf.printf "final balances (read from replica 2):\n";
  Printf.printf "  alice : %4d   (expected 375 = 400 - 25)\n" (balance alice);
  Printf.printf "  bob   : %4d   (expected 175 = 150 + 25)\n" (balance bob);
  Printf.printf "  bank  : %4d   (expected 450 = 1000 - 400 - 150)\n\n" (balance bank);
  Printf.printf "(the 99,999 overdraft reverted: its receipt carries ok=false)\n\n";

  Printf.printf "replica state digests (all equal => replicated EVM agreed):\n";
  Array.iter
    (fun r ->
      Printf.printf "  replica %d: %s…\n" (Replica.id r)
        (String.sub (Sbft_crypto.Sha256.hex (Replica.state_digest r)) 0 24))
    cluster.Cluster.replicas
