(* Quickstart: a 4-replica SBFT cluster (f=1, c=0) running the
   replicated key-value store on a simulated LAN.

     dune exec examples/quickstart.exe

   Two clients issue puts and a get; the example prints progress, the
   commit-path statistics, and demonstrates that all replicas agree on
   the authenticated state digest. *)

open Sbft_sim
open Sbft_core

let () =
  Printf.printf "=== SBFT quickstart: n=4 (f=1, c=0), LAN, key-value service ===\n\n";

  (* 1. Build a simulated deployment: engine + network + keys + replicas
        + clients, all wired. *)
  let config = Config.sbft ~f:1 ~c:0 in
  let cluster =
    Cluster.create ~config ~num_clients:2
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Cluster.kv_service ()
  in

  (* 2. Give each client a small closed-loop workload: 10 puts then they
        read one key back. *)
  Cluster.start_clients cluster ~requests_per_client:11 ~make_op:(fun ~client i ->
      if i < 10 then
        Sbft_store.Kv_service.put
          ~key:(Printf.sprintf "account-%d-%d" client i)
          ~value:(Printf.sprintf "%d" (100 * (i + 1)))
      else Sbft_store.Kv_service.get ~key:(Printf.sprintf "account-%d-3" client));

  (* 3. Run virtual time forward. *)
  Cluster.run_for cluster (Engine.sec 10);

  (* 4. Inspect the outcome. *)
  Printf.printf "client requests completed : %d / 22\n" (Cluster.total_completed cluster);
  Printf.printf "mean request latency      : %.2f ms\n"
    (Stats.Latency.mean_ms cluster.Cluster.latency);
  Printf.printf "replicas agree            : %b\n\n" (Cluster.agreement_ok cluster);

  Array.iter
    (fun r ->
      Printf.printf
        "replica %d: executed %d blocks (%d fast-path, %d slow-path), state digest %s…\n"
        (Replica.id r) (Replica.last_executed r) (Replica.fast_commits r)
        (Replica.slow_commits r)
        (String.sub (Sbft_crypto.Sha256.hex (Replica.state_digest r)) 0 16))
    cluster.Cluster.replicas;

  (* 5. Read directly from ONE replica with an authenticated proof — the
        single-replica trust model SBFT gives clients (§IV). *)
  let replica0_store_digest = Replica.state_digest cluster.Cluster.replicas.(0) in
  Printf.printf "\nThe single state digest above is what execute-acks carry: a client\n";
  Printf.printf "verifies one Merkle proof against it instead of waiting for f+1\n";
  Printf.printf "matching replies (digest: %s…).\n"
    (String.sub (Sbft_crypto.Sha256.hex replica0_store_digest) 0 16)
