(* The dual-mode view change in action:

     dune exec examples/view_change_demo.exe

   The primary crashes mid-stream; replicas time out, exchange
   view-change messages carrying their fast- and slow-path certificates,
   the new primary reconciles them with the safe-value computation
   (§V-G), and service resumes without losing or duplicating any client
   operation.  The protocol trace is printed. *)

open Sbft_sim
open Sbft_core

let () =
  Printf.printf "=== View change demo: primary crash at t=100ms (n=4) ===\n\n";
  let cluster =
    Cluster.create ~trace:true ~config:(Config.sbft ~f:1 ~c:0) ~num_clients:2
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Cluster.kv_service ()
  in
  Cluster.start_clients cluster ~requests_per_client:200 ~make_op:(fun ~client i ->
      Sbft_store.Kv_service.put
        ~key:(Printf.sprintf "k-%d-%d" client i)
        ~value:(string_of_int i));
  Engine.schedule cluster.Cluster.engine ~at:(Engine.ms 100) (fun () ->
      Engine.crash cluster.Cluster.engine 0);
  Cluster.run_for cluster (Engine.sec 30);

  Printf.printf "completed: %d / 400, agreement: %b\n\n"
    (Cluster.total_completed cluster) (Cluster.agreement_ok cluster);
  Array.iter
    (fun r ->
      if not (Engine.is_crashed cluster.Cluster.engine (Replica.id r)) then
        Printf.printf "replica %d: view=%d executed=%d (fast %d / slow %d)\n"
          (Replica.id r) (Replica.view r) (Replica.last_executed r)
          (Replica.fast_commits r) (Replica.slow_commits r))
    cluster.Cluster.replicas;

  Printf.printf "\n--- protocol trace around the view change ---\n";
  let interesting = [ "view-change"; "new-view"; "send:new-view"; "state-transfer" ] in
  List.iter
    (fun rec_ ->
      if List.mem rec_.Trace.kind interesting then
        Format.printf "%a@." Trace.pp_record rec_)
    (Trace.records cluster.Cluster.trace);
  Printf.printf "\n(first commits of the new view follow as normal fast-path traffic)\n"
