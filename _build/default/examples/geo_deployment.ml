(* World-scale geo-replicated deployment (the paper's headline setting,
   scaled to f=4 so the example runs in seconds):

     dune exec examples/geo_deployment.exe

   Replicas are spread over 15 regions on all continents; the run
   crashes c replicas mid-flight to show the fast path tolerating them
   (ingredient 4), then crashes more to force the linear-PBFT fallback. *)

open Sbft_sim
open Sbft_core
open Sbft_workload

let () =
  let f = 4 and c = 1 in
  let config = Config.sbft ~f ~c in
  let n = Config.n config in
  Printf.printf "=== World-scale WAN: n=%d replicas (f=%d, c=%d), 15 regions ===\n\n" n f c;
  let cluster =
    Cluster.create ~config ~num_clients:8
      ~topology:(fun ~num_nodes -> Topology.world ~num_nodes)
      ~service:Kv_workload.service ()
  in
  Cluster.start_clients cluster ~requests_per_client:max_int
    ~make_op:(Kv_workload.make_op ~batching:true);

  (* Phase 1: failure-free. *)
  Cluster.run_for cluster (Engine.sec 5);
  let phase1 = Cluster.total_completed cluster in
  let r = cluster.Cluster.replicas.(1) in
  Printf.printf "phase 1 (no failures):    %4d requests, paths: %d fast / %d slow\n"
    phase1 (Replica.fast_commits r) (Replica.slow_commits r);

  (* Phase 2: crash c replicas — the fast path must survive. *)
  let fast1 = Replica.fast_commits r and slow1 = Replica.slow_commits r in
  Cluster.crash_replicas cluster [ n - 1 ];
  Cluster.run_for cluster (Engine.sec 5);
  let phase2 = Cluster.total_completed cluster - phase1 in
  Printf.printf "phase 2 (%d crashed = c):  %4d requests, paths: %d fast / %d slow\n" 1
    phase2
    (Replica.fast_commits r - fast1)
    (Replica.slow_commits r - slow1);

  (* Phase 3: crash one more — beyond c, the slow path takes over. *)
  let fast2 = Replica.fast_commits r and slow2 = Replica.slow_commits r in
  Cluster.crash_replicas cluster [ n - 2 ];
  Cluster.run_for cluster (Engine.sec 5);
  let phase3 = Cluster.total_completed cluster - phase1 - phase2 in
  Printf.printf "phase 3 (%d crashed > c):  %4d requests, paths: %d fast / %d slow\n" 2
    phase3
    (Replica.fast_commits r - fast2)
    (Replica.slow_commits r - slow2);

  Printf.printf "\nmedian latency over the whole run: %.0f ms (world-scale RTTs)\n"
    (Stats.Latency.median_ms cluster.Cluster.latency);
  Printf.printf "replicas agree: %b\n" (Cluster.agreement_ok cluster)
