(* Light-client reads: trusting ONE replica via Merkle proofs.

     dune exec examples/light_client.exe

   SBFT's execution collectors give clients a π-threshold-signed state
   digest (§IV, §V-D).  Against that digest, a light client can read any
   key from a single (possibly malicious) replica and verify the value
   with a Merkle query proof — no f+1 agreement needed, exactly like SPV
   clients in public blockchains.  This example commits state through
   the cluster, then plays auditor: fetch value + proof from one
   replica, verify offline, and show that tampered values or proofs are
   rejected. *)

open Sbft_sim
open Sbft_core
open Sbft_store

let () =
  Printf.printf "=== Light client: authenticated single-replica reads ===\n\n";
  let cluster =
    Cluster.create ~config:(Config.sbft ~f:1 ~c:0) ~num_clients:1
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Cluster.kv_service ()
  in
  let entries =
    [ ("asset/gold", "152 bars"); ("asset/silver", "980 bars"); ("owner", "acme-corp") ]
  in
  Cluster.start_clients cluster ~requests_per_client:(List.length entries)
    ~make_op:(fun ~client:_ i ->
      let key, value = List.nth entries i in
      Kv_service.put ~key ~value);
  Cluster.run_for cluster (Engine.sec 10);
  Printf.printf "committed %d entries through consensus\n\n"
    (Cluster.total_completed cluster);

  (* The trusted anchor: the state digest covered by the π threshold
     signature in every execute-ack / full-execute-proof. *)
  let replica = cluster.Cluster.replicas.(3) in
  let store = Replica.store replica in
  let digest = Auth_store.digest store in
  let seq = Auth_store.last_executed store in
  Printf.printf "trusted digest (π-signed): %s… at height %d\n\n"
    (String.sub (Sbft_crypto.Sha256.hex digest) 0 24)
    seq;

  (* Ask ONE replica for a value + proof and verify offline. *)
  List.iter
    (fun (key, expected) ->
      match Auth_store.prove_query store ~key with
      | None -> Printf.printf "  %-14s -> MISSING\n" key
      | Some (value, proof) ->
          let ok = Auth_store.verify_query_proof ~digest ~seq ~key ~value ~proof in
          Printf.printf "  %-14s = %-12s proof: %4d bytes, verifies: %b (expected %s)\n"
            key value (String.length proof) ok expected)
    entries;

  (* The same read over the network: Client.query fetches from a single
     replica and verifies proof + π signature before accepting. *)
  let client = cluster.Cluster.clients.(0) in
  Engine.dispatch cluster.Cluster.engine ~dst:(Client.id client)
    ~at:(Engine.now cluster.Cluster.engine) (fun ctx ->
      Client.query client ctx ~key:"asset/gold" ~callback:(function
        | Some (value, height) ->
            Printf.printf "\nnetworked query: asset/gold = %S (verified at height %d)\n"
              value height
        | None -> Printf.printf "\nnetworked query failed\n"));
  Cluster.run_for cluster (Engine.sec 5);

  (* Tampering attempts must fail verification. *)
  let key = "asset/gold" in
  let value, proof = Option.get (Auth_store.prove_query store ~key) in
  Printf.printf "\ntamper checks (all must be false):\n";
  Printf.printf "  forged value     : %b\n"
    (Auth_store.verify_query_proof ~digest ~seq ~key ~value:"9999 bars" ~proof);
  Printf.printf "  wrong key        : %b\n"
    (Auth_store.verify_query_proof ~digest ~seq ~key:"asset/silver" ~value ~proof);
  Printf.printf "  truncated proof  : %b\n"
    (Auth_store.verify_query_proof ~digest ~seq ~key ~value
       ~proof:(String.sub proof 0 (String.length proof / 2)));
  Printf.printf "  stale digest     : %b\n"
    (Auth_store.verify_query_proof ~digest:(String.make 32 '\x00') ~seq ~key ~value ~proof)
