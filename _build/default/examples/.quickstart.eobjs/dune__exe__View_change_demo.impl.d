examples/view_change_demo.ml: Array Cluster Config Engine Format List Printf Replica Sbft_core Sbft_sim Sbft_store Topology Trace
