examples/quickstart.ml: Array Cluster Config Engine Printf Replica Sbft_core Sbft_crypto Sbft_sim Sbft_store Stats String Topology
