examples/quickstart.mli:
