examples/geo_deployment.mli:
