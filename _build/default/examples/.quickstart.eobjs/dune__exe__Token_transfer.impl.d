examples/token_transfer.ml: Array Cluster Config Contracts Engine Evm_service List Printf Replica Sbft_core Sbft_crypto Sbft_evm Sbft_sim Sbft_store State Stats String Topology Tx U256
