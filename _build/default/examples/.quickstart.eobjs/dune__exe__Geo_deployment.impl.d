examples/geo_deployment.ml: Array Cluster Config Engine Kv_workload Printf Replica Sbft_core Sbft_sim Sbft_workload Stats Topology
