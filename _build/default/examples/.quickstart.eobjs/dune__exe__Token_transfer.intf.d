examples/token_transfer.mli:
