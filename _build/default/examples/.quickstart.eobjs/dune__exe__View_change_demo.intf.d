examples/view_change_demo.mli:
