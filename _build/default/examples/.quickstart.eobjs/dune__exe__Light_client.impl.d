examples/light_client.ml: Array Auth_store Client Cluster Config Engine Kv_service List Option Printf Replica Sbft_core Sbft_crypto Sbft_sim Sbft_store String Topology
