(* Command-line benchmark driver: run a single custom scenario.

     dune exec bin/sbft_bench.exe -- --protocol sbft -f 8 --clients 64 \
       --topology world --failures 2 --duration 3 --csv out.csv

   The predefined paper experiments live in bench/main.exe; this tool is
   for exploring arbitrary points in the configuration space. *)

open Cmdliner
open Sbft_harness

let protocol_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "pbft" -> Ok Scenario.PBFT
    | "linear-pbft" | "linear" -> Ok Scenario.Linear_PBFT
    | "linear-pbft-fast" | "fast" -> Ok Scenario.Linear_PBFT_fast
    | "sbft" -> Ok (Scenario.SBFT 0)
    | s when String.length s > 5 && String.sub s 0 5 = "sbft-" -> (
        match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
        | Some c when c >= 0 -> Ok (Scenario.SBFT c)
        | _ -> Error (`Msg "bad c in sbft-<c>"))
    | _ -> Error (`Msg "expected pbft | linear-pbft | linear-pbft-fast | sbft | sbft-<c>")
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Scenario.protocol_name p))

let topology_conv =
  let parse = function
    | "lan" -> Ok `Lan
    | "continent" -> Ok `Continent
    | "world" -> Ok `World
    | _ -> Error (`Msg "expected lan | continent | world")
  in
  Arg.conv
    ( parse,
      fun fmt t ->
        Format.pp_print_string fmt
          (match t with `Lan -> "lan" | `Continent -> "continent" | `World -> "world") )

let workload_conv =
  let parse = function
    | "kv-batch" -> Ok (Scenario.Kv { batching = true })
    | "kv-nobatch" -> Ok (Scenario.Kv { batching = false })
    | "eth" -> Ok Scenario.Eth
    | _ -> Error (`Msg "expected kv-batch | kv-nobatch | eth")
  in
  Arg.conv
    ( parse,
      fun fmt w ->
        Format.pp_print_string fmt
          (match w with
          | Scenario.Kv { batching = true } -> "kv-batch"
          | Scenario.Kv { batching = false } -> "kv-nobatch"
          | Scenario.Eth -> "eth") )

let run protocol f workload num_clients failures topology duration warmup seed csv =
  let scenario =
    Scenario.default ~failures ~topology
      ~warmup:(Sbft_sim.Engine.sec_f warmup)
      ~duration:(Sbft_sim.Engine.sec_f duration)
      ~seed:(Int64.of_int seed) ~protocol ~f ~workload ~num_clients ()
  in
  Printf.printf "running %s, f=%d, %d clients, %d failures...\n%!"
    (Scenario.protocol_name protocol) f num_clients failures;
  let point = Scenario.run scenario in
  Report.print_points ~title:"result" [ point ];
  (match csv with Some path -> Report.write_csv ~path [ point ] | None -> ());
  if not point.Scenario.agreement then exit 2

let cmd =
  let protocol =
    Arg.(value & opt protocol_conv (Scenario.SBFT 0)
         & info [ "protocol"; "p" ] ~doc:"Protocol variant.")
  in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Byzantine fault threshold.") in
  let workload =
    Arg.(value & opt workload_conv (Scenario.Kv { batching = true })
         & info [ "workload"; "w" ] ~doc:"Workload.")
  in
  let clients = Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Client count.") in
  let failures = Arg.(value & opt int 0 & info [ "failures" ] ~doc:"Crashed backups.") in
  let topology =
    Arg.(value & opt topology_conv `Continent & info [ "topology" ] ~doc:"WAN model.")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Measured seconds (virtual).")
  in
  let warmup = Arg.(value & opt float 1.0 & info [ "warmup" ] ~doc:"Warmup seconds.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Append result as CSV.")
  in
  Cmd.v
    (Cmd.info "sbft_bench" ~doc:"Run one SBFT/PBFT simulation scenario")
    Term.(
      const run $ protocol $ f $ workload $ clients $ failures $ topology $ duration
      $ warmup $ seed $ csv)

let () = exit (Cmd.eval cmd)
