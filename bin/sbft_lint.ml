(* Driver for the sbft lint pass: walks the given source trees, runs
   every AST rule over each .ml file, applies the allowlist, prints the
   surviving findings, and exits non-zero when any remain.  Wired into
   the build as [dune build @lint] (and into [dune runtest]). *)

module Lint = Sbft_analysis.Lint

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Skip hidden and build directories (.objs, _build, ...). *)
let skip_entry name =
  String.length name = 0 || Char.equal name.[0] '.' || Char.equal name.[0] '_'

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if skip_entry entry then acc else walk acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let usage () =
  prerr_endline
    "usage: sbft_lint [--root DIR] [--allow FILE] [DIR ...]\n\
     Lints every .ml under the given directories (default: lib bin).";
  exit 2

let () =
  let root = ref "." in
  let allow_file = ref "lint.allow" in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := dir;
        parse_args rest
    | "--allow" :: file :: rest ->
        allow_file := file;
        parse_args rest
    | ("--help" | "-h" | "--root" | "--allow") :: _ -> usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  Sys.chdir !root;
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
  let allow =
    if Sys.file_exists !allow_file then Lint.Allow.parse (read_file !allow_file)
    else Lint.Allow.empty
  in
  let files =
    List.fold_left walk [] (List.filter Sys.file_exists dirs)
    |> List.sort String.compare
  in
  let findings =
    List.concat_map
      (fun path ->
        let ast = Lint.lint_source ~path (read_file path) in
        let mli_exists = Sys.file_exists (path ^ "i") in
        match Lint.missing_mli ~path ~mli_exists with
        | Some f -> f :: ast
        | None -> ast)
      files
  in
  let kept, allowed = Lint.filter allow findings in
  List.iter (fun f -> print_endline (Lint.pp_finding f)) kept;
  List.iter
    (fun entry ->
      Printf.printf "warning: stale lint.allow entry never matched: %s\n" entry)
    (Lint.Allow.unused allow findings);
  Printf.printf "sbft-lint: %d file(s), %d finding(s), %d allowlisted\n"
    (List.length files) (List.length kept) (List.length allowed);
  exit (Lint.exit_code kept)
