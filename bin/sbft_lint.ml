(* Driver for the sbft lint pass: walks the given source trees, runs
   every AST rule (R1-R7 per-function, R9-R11 protocol discipline,
   R12-R15 quorum soundness) over each .ml file, applies the
   allowlist, prints the surviving findings, and exits non-zero when
   any remain.  Stale allowlist entries are hard errors unless
   --stale-allow-warn is given.  --json FILE also emits a
   machine-readable report; --obligations FILE writes the R12 quorum
   obligation report CI uploads; under GITHUB_ACTIONS findings are
   echoed as workflow annotations.  Wired into the build as
   [dune build @lint] (and into [dune runtest]). *)

module Lint = Sbft_analysis.Lint
module Discipline = Sbft_analysis.Discipline
module Quorum = Sbft_analysis.Quorum
module Msgflow = Sbft_analysis.Msgflow
module Json = Sbft_harness.Report.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Skip hidden and build directories (.objs, _build, ...) and the lint
   self-test corpus (linted by test_lint against its own golden file,
   where the deliberate positives belong). *)
let skip_entry name =
  String.length name = 0
  || Char.equal name.[0] '.'
  || Char.equal name.[0] '_'
  || String.equal name "lint_fixtures"

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if skip_entry entry then acc else walk acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let usage () =
  prerr_endline
    "usage: sbft_lint [--root DIR] [--allow FILE] [--json FILE]\n\
    \                 [--obligations FILE] [--stale-allow-warn] [DIR ...]\n\
     Lints every .ml under the given directories\n\
     (default: lib bin bench test examples).";
  exit 2

let severity_str = function Lint.Error -> "error" | Lint.Warning -> "warning"

let json_report ~files ~kept ~allowed ~stale =
  Json.Obj
    [
      ("schema", Json.Str "sbft-lint-v2");
      ("files", Json.Num (float_of_int files));
      ( "findings",
        Json.Arr
          (List.map
             (fun (f : Lint.finding) ->
               Json.Obj
                 [
                   ("rule", Json.Str f.Lint.rule);
                   ("severity", Json.Str (severity_str f.Lint.severity));
                   ("file", Json.Str f.Lint.file);
                   ("line", Json.Num (float_of_int f.Lint.line));
                   ("message", Json.Str f.Lint.message);
                 ])
             kept) );
      ("allowlisted", Json.Num (float_of_int allowed));
      ("stale_allow", Json.Arr (List.map (fun s -> Json.Str s) stale));
    ]

(* GitHub workflow annotations: one per finding, so the diff view in a
   PR points at the exact site.  Newlines in messages would break the
   single-line command format, but pp messages are single-line. *)
let annotate (f : Lint.finding) =
  Printf.printf "::%s file=%s,line=%d::[%s] %s\n"
    (severity_str f.Lint.severity)
    f.Lint.file f.Lint.line f.Lint.rule f.Lint.message

let () =
  let root = ref "." in
  let allow_file = ref "lint.allow" in
  let json_file = ref None in
  let obligations_file = ref None in
  let stale_warn = ref false in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := dir;
        parse_args rest
    | "--allow" :: file :: rest ->
        allow_file := file;
        parse_args rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse_args rest
    | "--obligations" :: file :: rest ->
        obligations_file := Some file;
        parse_args rest
    | "--stale-allow-warn" :: rest ->
        stale_warn := true;
        parse_args rest
    | ("--help" | "-h" | "--root" | "--allow" | "--json" | "--obligations") :: _
      ->
        usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  Sys.chdir !root;
  let dirs =
    match List.rev !dirs with
    | [] -> [ "lib"; "bin"; "bench"; "test"; "examples" ]
    | ds -> ds
  in
  let allow =
    if Sys.file_exists !allow_file then Lint.Allow.parse (read_file !allow_file)
    else Lint.Allow.empty
  in
  let files =
    List.fold_left walk [] (List.filter Sys.file_exists dirs)
    |> List.sort String.compare
  in
  (* Pre-pass for the quorum rules: extract the threshold definitions
     from the tree's config.ml so comparison sites in every other file
     resolve against what is actually defined. *)
  let defs =
    let config_path = "lib/core/config.ml" in
    if List.exists (String.equal config_path) files then
      match Msgflow.parse ~path:config_path (read_file config_path) with
      | Some structure -> (
          match Quorum.extract_defs ~path:config_path structure with
          | Some defs -> defs
          | None -> Quorum.default_defs)
      | None -> Quorum.default_defs
    else Quorum.default_defs
  in
  let findings =
    List.concat_map
      (fun path ->
        let source = read_file path in
        let ast = Lint.lint_source ~path source in
        let disc =
          Discipline.lint_source ~path source
          @ Quorum.lint_source ~defs ~path source
        in
        let mli_exists = Sys.file_exists (path ^ "i") in
        let r5 =
          match Lint.missing_mli ~path ~mli_exists with
          | Some f -> [ f ]
          | None -> []
        in
        List.sort
          (fun (a : Lint.finding) b ->
            match Int.compare a.Lint.line b.Lint.line with
            | 0 -> String.compare a.Lint.rule b.Lint.rule
            | n -> n)
          (r5 @ ast @ disc))
      files
  in
  let kept, allowed = Lint.filter allow findings in
  let stale = Lint.Allow.unused allow findings in
  List.iter (fun f -> print_endline (Lint.pp_finding f)) kept;
  List.iter
    (fun entry ->
      Printf.printf "%s: stale lint.allow entry never matched: %s\n"
        (if !stale_warn then "warning" else "error")
        entry)
    stale;
  (match Sys.getenv_opt "GITHUB_ACTIONS" with
  | Some _ -> List.iter annotate kept
  | None -> ());
  (match !json_file with
  | Some file ->
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Json.to_string
               (json_report ~files:(List.length files) ~kept
                  ~allowed:(List.length allowed) ~stale)))
  | None -> ());
  (match !obligations_file with
  | Some file ->
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Quorum.obligation_report defs))
  | None -> ());
  Printf.printf "sbft-lint: %d file(s), %d finding(s), %d allowlisted, %d stale allow\n"
    (List.length files) (List.length kept) (List.length allowed)
    (List.length stale);
  let stale_fail =
    (not !stale_warn) && match stale with [] -> false | _ -> true
  in
  exit (max (Lint.exit_code kept) (if stale_fail then 1 else 0))
