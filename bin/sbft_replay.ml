(* Replay-divergence checker driver: runs every example scenario twice
   from the same seed and fails if any trace stream diverges (rule R8).
   Wired into the build as [dune build @replay]. *)

let () = exit (if Sbft_harness.Experiments.replay () then 0 else 1)
