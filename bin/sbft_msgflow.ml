(* Emits the static message-flow graph for the two protocol sections
   (lib/core against Types.msg, lib/pbft against Pbft_types.msg) on
   stdout.  Wired into the build as [dune build @msgflow], which diffs
   the output against analysis/msgflow.expected. *)

module Msgflow = Sbft_analysis.Msgflow

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ml_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.map (fun f -> dir ^ "/" ^ f)

let section (name, types_file) =
  let universe =
    match Msgflow.parse ~path:types_file (read_file types_file) with
    | Some structure -> Msgflow.msg_constructors structure
    | None -> []
  in
  let files =
    List.filter_map
      (fun path ->
        match Msgflow.parse ~path (read_file path) with
        | Some structure -> Some (Msgflow.summarize ~path structure)
        | None -> None)
      (ml_files name)
  in
  { Msgflow.sec_name = name; sec_universe = universe; sec_files = files }

let () =
  let root = ref "." in
  (match Array.to_list Sys.argv with
  | _ :: "--root" :: dir :: _ -> root := dir
  | _ -> ());
  Sys.chdir !root;
  let sections =
    [
      ("lib/core", "lib/core/types.ml");
      ("lib/pbft", "lib/pbft/pbft_types.ml");
    ]
  in
  print_string (Msgflow.render (List.map section sections))
