(** Authenticated service state: the paper's §IV data-authentication
    interface, generic over the service's operation semantics.

    An {!t} executes decision blocks sequentially against a
    {!Sbft_crypto.Merkle_map} state.  After executing block [s] it can
    produce the digest [d = digest(D_s)] and two kinds of proofs:

    - {b operation proofs} — [proof(o, l, s, D, val)]: [o] was executed
      as the [l]-th operation of block [s] and returned [val], relative
      to the state whose digest is [d].  These back the single-message
      execute-acks SBFT sends to clients.
    - {b query proofs} — [proof(q, s, D, val)]: at state [D_s], key [k]
      holds value [v].  These let a client read from a single replica.

    The digest binds the state root, the block's operation-tree root and
    the sequence number: [d_s = H(tag ‖ s ‖ state_root ‖ ops_root_s)].
    Proof verification ({!verify_op_proof}, {!verify_query_proof}) is a
    pure function of the digest, so clients need no state. *)

type apply = Sbft_crypto.Merkle_map.t -> string -> Sbft_crypto.Merkle_map.t * string
(** Service semantics: [apply state op] returns the new state and the
    operation's output value.  Must be deterministic. *)

type t

val create : apply:apply -> unit -> t

(** {2 Shared execution cache}

    In a simulated deployment every honest replica executes the same
    deterministic block sequence.  A cluster-wide cache memoizes
    [execute_block] results keyed by (sequence, pre-state root,
    operations digest), so the host computes each block once and all
    replicas share the resulting persistent state structurally.  This is
    a pure simulation optimization: per-replica {e virtual} CPU time is
    still charged by the protocol layer, and a replica whose state
    diverges (different pre-state root) misses the cache and executes
    for real. *)

type cache

val new_cache : unit -> cache

val set_cache : t -> cache -> unit
(** Install a shared cache (call before executing any block). *)

val last_executed : t -> int
(** Sequence number of the last executed block; 0 before any. *)

val clone : t -> t
(** Independent copy sharing the (persistent) state structurally; used
    to stamp out per-replica stores from one bootstrapped genesis. *)

val bootstrap : t -> ops:string list -> unit
(** Applies genesis operations directly to the state without recording
    a decision block.  Deterministic setup (accounts, contract
    deployments) so replicas start from identical non-empty states.
    @raise Invalid_argument after any block has been executed. *)

val state : t -> Sbft_crypto.Merkle_map.t

val execute_block : t -> seq:int -> ops:string list -> string list
(** Executes the block's operations in order; returns their outputs.
    @raise Invalid_argument unless [seq = last_executed + 1]. *)

val digest : t -> string
(** Digest of the state after the last executed block. *)

val digest_at : t -> seq:int -> string option
(** Digest after block [seq], if still retained (see {!gc_below}). *)

val output_at : t -> seq:int -> index:int -> string option
val ops_at : t -> seq:int -> string list option

val prove_op : t -> seq:int -> index:int -> string option
(** Serialized operation proof, or [None] if [seq] was garbage-collected
    or [index] out of range. *)

val prove_query : t -> key:string -> (string * string) option
(** [(value, proof)] for a present key at the current state. *)

val verify_op_proof :
  digest:string -> seq:int -> index:int -> op:string -> value:string ->
  proof:string -> bool
(** Pure client-side verification (the [verify(d, o, val, s, l, P)] of
    §IV). *)

val verify_query_proof :
  digest:string -> seq:int -> key:string -> value:string -> proof:string -> bool

val gc_below : t -> seq:int -> unit
(** Drop retained per-block proof material for blocks [< seq]. *)

val snapshot : t -> string
(** Serialized current state + sequence number, for state transfer.
    Digest-stable: restoring yields the same state digest. *)

val delayed_snapshot : t -> string Lazy.t
(** Captures the current state immediately but serializes only when
    forced (checkpoints are retained often, served rarely). *)

val load_snapshot : t -> string -> (unit, string) result
(** Replaces the store's state with the snapshot's. *)

val load_snapshot_checked :
  t -> string -> expect:string -> (unit, string) result
(** Stages the snapshot in scratch storage, computes its state digest,
    and installs it {e only} if the digest equals [expect] — the store
    is untouched on any error, so an unverified snapshot can never
    clobber live state.  This is the entry point state transfer must
    use: the caller supplies the π-certified digest as [expect]. *)

val snapshot_digest_info : string -> (int * string) option
(** [(seq, ops_root)] carried by a snapshot, without loading it. *)
