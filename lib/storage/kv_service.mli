(** The replicated key-value service: {!Kv_op} semantics as an
    {!Auth_store.apply} function, plus convenience constructors. *)

val apply : Auth_store.apply
(** [Put] stores and returns ["ok"]; [Get] returns the value or [""];
    [Add] increments a decimal counter and returns its new value;
    [Noop] and undecodable operations return [""] without touching the
    state (undecodable operations cannot abort the state machine — all
    replicas must stay in lock step). *)

val create : unit -> Auth_store.t
(** Fresh authenticated store running the KV service. *)

val put : key:string -> value:string -> string
(** Encoded [Put] operation. *)

val get : key:string -> string

val add : key:string -> delta:int -> string
(** Encoded [Add] operation. *)

val noop : string

val read : Sbft_crypto.Merkle_map.t -> key:string -> string option
(** Direct (unproven) read of a key from a service state, for test
    oracles inspecting replica stores post-run. *)
