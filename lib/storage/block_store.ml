type certificate = Fast of string | Slow of { tau : string; tau_tau : string }

type op = { client : int; timestamp : int; op : string }

type entry = { seq : int; view : int; ops : op list; cert : certificate }

type client_entry = {
  ce_client : int;
  ce_timestamp : int;
  ce_value : string;
  ce_seq : int;
  ce_index : int;
}

type checkpoint = {
  cp_seq : int;
  cp_snapshot : string Lazy.t;
  cp_table : client_entry list;
}

type t = {
  blocks : (int, entry) Hashtbl.t;
  mutable highest : int;
  mutable checkpoint : checkpoint option;
}

let create () = { blocks = Hashtbl.create 256; highest = 0; checkpoint = None }

let add t e =
  if not (Hashtbl.mem t.blocks e.seq) then begin
    Hashtbl.replace t.blocks e.seq e;
    if e.seq > t.highest then t.highest <- e.seq
  end

let find t seq = Hashtbl.find_opt t.blocks seq
let mem t seq = Hashtbl.mem t.blocks seq
let highest t = t.highest

let sorted_seqs t =
  Hashtbl.fold (fun s _ acc -> s :: acc) t.blocks [] |> List.sort Int.compare

let prune_below t seq =
  let stale =
    Hashtbl.fold (fun s _ acc -> if s < seq then s :: acc else acc) t.blocks []
    |> List.sort Int.compare
  in
  List.iter (Hashtbl.remove t.blocks) stale

(* Rollback-attack counterpart of {!Wal.rollback_to_checkpoint}: erase
   every block above [above] and any newer checkpoint, as a stale disk
   restore would. *)
let rollback t ~above =
  let doomed =
    Hashtbl.fold (fun s _ acc -> if s > above then s :: acc else acc) t.blocks []
    |> List.sort Int.compare
  in
  List.iter (Hashtbl.remove t.blocks) doomed;
  t.highest <- Hashtbl.fold (fun s _ acc -> max s acc) t.blocks 0;
  match t.checkpoint with
  | Some { cp_seq; _ } when cp_seq > above -> t.checkpoint <- None
  | _ -> ()

let set_checkpoint t ~seq ~snapshot ~table =
  match t.checkpoint with
  | Some { cp_seq; _ } when cp_seq >= seq -> ()
  | _ -> t.checkpoint <- Some { cp_seq = seq; cp_snapshot = snapshot; cp_table = table }

let checkpoint t = t.checkpoint

let entry_size e =
  let cert_size =
    match e.cert with
    | Fast s -> String.length s
    | Slow { tau; tau_tau } -> String.length tau + String.length tau_tau
  in
  List.fold_left
    (fun acc o -> acc + String.length o.op + 20)
    (16 + cert_size) e.ops
