open Sbft_crypto
open Sbft_wire

type apply = Merkle_map.t -> string -> Merkle_map.t * string

type block_record = {
  ops : string list;
  outputs : string array;
  ops_tree : Merkle.tree;
  state_root : string; (* after executing this block *)
  block_digest : string;
}

type cache_value = {
  c_map : Merkle_map.t;
  c_record : block_record;
  c_ops_root : string;
}

type cache = (int * string * string, cache_value) Hashtbl.t

let new_cache () : cache = Hashtbl.create 1024

type t = {
  apply : apply;
  mutable map : Merkle_map.t;
  mutable last_executed : int;
  mutable last_ops_root : string;
  blocks : (int, block_record) Hashtbl.t;
  mutable cache : cache option;
}

let digest_tag = "sbft-state-digest-v1"

let compute_digest ~seq ~state_root ~ops_root =
  let w = Codec.Writer.create () in
  Codec.Writer.raw w digest_tag;
  Codec.Writer.u64 w seq;
  Codec.Writer.raw w state_root;
  Codec.Writer.raw w ops_root;
  Sha256.digest (Codec.Writer.contents w)

let genesis_ops_root = Sha256.digest "sbft-genesis-ops"

let create ~apply () =
  {
    apply;
    map = Merkle_map.empty;
    last_executed = 0;
    last_ops_root = genesis_ops_root;
    blocks = Hashtbl.create 64;
    cache = None;
  }

let set_cache t cache = t.cache <- Some cache

let clone t =
  {
    apply = t.apply;
    map = t.map;
    last_executed = t.last_executed;
    last_ops_root = t.last_ops_root;
    blocks = Hashtbl.copy t.blocks;
    cache = t.cache;
  }

let last_executed t = t.last_executed
let state t = t.map

let bootstrap t ~ops =
  if t.last_executed <> 0 then
    invalid_arg "Auth_store.bootstrap: blocks already executed";
  List.iter
    (fun op ->
      let map', _ = t.apply t.map op in
      t.map <- map')
    ops

(* Leaf committed into the per-block operation tree: binds the position,
   the operation and its output. *)
let op_leaf ~index ~op ~value =
  let w = Codec.Writer.create () in
  Codec.Writer.u32 w index;
  Codec.Writer.raw w (Sha256.digest op);
  Codec.Writer.raw w (Sha256.digest value);
  Codec.Writer.contents w

let execute_uncached t ~seq ~ops =
  let outputs =
    List.map
      (fun op ->
        let map', out = t.apply t.map op in
        t.map <- map';
        out)
      ops
  in
  let leaves = List.mapi (fun index (op, value) -> op_leaf ~index ~op ~value)
      (List.combine ops outputs)
  in
  let ops_tree = Merkle.build leaves in
  let state_root = Merkle_map.root t.map in
  let ops_root = Merkle.root ops_tree in
  let block_digest = compute_digest ~seq ~state_root ~ops_root in
  let record =
    { ops; outputs = Array.of_list outputs; ops_tree; state_root; block_digest }
  in
  Hashtbl.replace t.blocks seq record;
  t.last_executed <- seq;
  t.last_ops_root <- ops_root;
  record

(* Length-prefixed: plain concatenation would let ["x"] and ["x"; ""]
   collide, and duplicate requests degraded to no-ops ("") make such
   pairs reachable — a collision hands back a cached outputs array of
   the wrong length.  Found by the schedule fuzzer (see
   test/corpus/weak-sigma-agreement.schedule). *)
let ops_digest ops =
  let w = Codec.Writer.create () in
  Codec.Writer.str w "sbft-ops";
  Codec.Writer.u32 w (List.length ops);
  List.iter (fun op -> Codec.Writer.str w op) ops;
  Sha256.digest (Codec.Writer.contents w)

let execute_block t ~seq ~ops =
  if seq <> t.last_executed + 1 then
    invalid_arg
      (Printf.sprintf "Auth_store.execute_block: seq %d but last executed %d" seq
         t.last_executed);
  match t.cache with
  | None -> Array.to_list (execute_uncached t ~seq ~ops).outputs
  | Some cache -> (
      let key = (seq, Merkle_map.root t.map, ops_digest ops) in
      match Hashtbl.find_opt cache key with
      | Some v ->
          t.map <- v.c_map;
          Hashtbl.replace t.blocks seq v.c_record;
          t.last_executed <- seq;
          t.last_ops_root <- v.c_ops_root;
          Array.to_list v.c_record.outputs
      | None ->
          let record = execute_uncached t ~seq ~ops in
          Hashtbl.replace cache key
            { c_map = t.map; c_record = record; c_ops_root = t.last_ops_root };
          Array.to_list record.outputs)

let digest t =
  compute_digest ~seq:t.last_executed ~state_root:(Merkle_map.root t.map)
    ~ops_root:t.last_ops_root

let digest_at t ~seq =
  if seq = t.last_executed then Some (digest t)
  else
    Option.map (fun b -> b.block_digest) (Hashtbl.find_opt t.blocks seq)

let output_at t ~seq ~index =
  match Hashtbl.find_opt t.blocks seq with
  | Some b when index >= 0 && index < Array.length b.outputs -> Some b.outputs.(index)
  | _ -> None

let ops_at t ~seq = Option.map (fun b -> b.ops) (Hashtbl.find_opt t.blocks seq)

let prove_op t ~seq ~index =
  match Hashtbl.find_opt t.blocks seq with
  | Some b when index >= 0 && index < Array.length b.outputs ->
      let mproof = Merkle.prove b.ops_tree index in
      let w = Codec.Writer.create () in
      Codec.Writer.u8 w 1;
      Codec.Writer.raw w b.state_root;
      Codec.Writer.str w (Merkle.encode_proof mproof);
      Some (Codec.Writer.contents w)
  | _ -> None

let prove_query t ~key =
  match Merkle_map.get t.map key with
  | None -> None
  | Some value -> (
      match Merkle_map.prove t.map key with
      | None -> None
      | Some mp ->
          let w = Codec.Writer.create () in
          Codec.Writer.u8 w 2;
          Codec.Writer.raw w t.last_ops_root;
          Codec.Writer.str w (Merkle_map.encode_proof mp);
          Some (value, Codec.Writer.contents w))

let verify_op_proof ~digest ~seq ~index ~op ~value ~proof =
  match
    let r = Codec.Reader.of_string proof in
    if Codec.Reader.u8 r <> 1 then None
    else begin
      let state_root = Codec.Reader.raw r 32 in
      match Merkle.decode_proof (Codec.Reader.str r) with
      | None -> None
      | Some mp -> Some (state_root, mp)
    end
  with
  | exception Codec.Reader.Truncated -> false
  | None -> false
  | Some (state_root, mp) ->
      (* The leaf binds (index, op, value); recomputing the digest from
         the ops root implied by the proof path pins all of them to the
         signed digest. *)
      let leaf = op_leaf ~index ~op ~value in
      let implied_ops_root = Merkle.implied_root ~leaf mp in
      String.equal digest (compute_digest ~seq ~state_root ~ops_root:implied_ops_root)

let verify_query_proof ~digest ~seq ~key ~value ~proof =
  match
    let r = Codec.Reader.of_string proof in
    if Codec.Reader.u8 r <> 2 then None
    else begin
      let ops_root = Codec.Reader.raw r 32 in
      match Merkle_map.decode_proof (Codec.Reader.str r) with
      | None -> None
      | Some mp -> Some (ops_root, mp)
    end
  with
  | exception Codec.Reader.Truncated -> false
  | None -> false
  | Some (ops_root, mp) ->
      let implied_state_root = Merkle_map.implied_root ~key ~value mp in
      String.equal digest
        (compute_digest ~seq ~state_root:implied_state_root ~ops_root)

let gc_below t ~seq =
  let stale =
    Hashtbl.fold (fun s _ acc -> if s < seq then s :: acc else acc) t.blocks []
    |> List.sort Int.compare
  in
  List.iter (Hashtbl.remove t.blocks) stale

let snapshot_of ~last_executed ~last_ops_root map =
  let w = Codec.Writer.create () in
  Codec.Writer.raw w "SNAP";
  Codec.Writer.u64 w last_executed;
  Codec.Writer.raw w last_ops_root;
  Codec.Writer.u32 w (Merkle_map.cardinal map);
  Merkle_map.fold
    (fun key value () ->
      Codec.Writer.str w key;
      Codec.Writer.str w value)
    map ();
  Codec.Writer.contents w

let snapshot t =
  snapshot_of ~last_executed:t.last_executed ~last_ops_root:t.last_ops_root t.map

let delayed_snapshot t =
  let last_executed = t.last_executed
  and last_ops_root = t.last_ops_root
  and map = t.map in
  lazy (snapshot_of ~last_executed ~last_ops_root map)

(* Parse a snapshot into scratch values without touching [t]. *)
let parse_snapshot s =
  match
    let r = Codec.Reader.of_string s in
    if Codec.Reader.raw r 4 <> "SNAP" then Error "bad magic"
    else begin
      let seq = Codec.Reader.u64 r in
      let ops_root = Codec.Reader.raw r 32 in
      let n = Codec.Reader.u32 r in
      let map = ref Merkle_map.empty in
      for _ = 1 to n do
        let key = Codec.Reader.str r in
        let value = Codec.Reader.str r in
        map := Merkle_map.set !map ~key ~value
      done;
      Ok (seq, ops_root, !map)
    end
  with
  | exception Codec.Reader.Truncated -> Error "truncated snapshot"
  | v -> v

let install t (seq, ops_root, map) =
  t.map <- map;
  t.last_executed <- seq;
  t.last_ops_root <- ops_root;
  Hashtbl.reset t.blocks

let load_snapshot t s =
  Result.map (install t) (parse_snapshot s)

let load_snapshot_checked t s ~expect =
  match parse_snapshot s with
  | Error _ as e -> e
  | Ok ((seq, ops_root, map) as staged) ->
      let d =
        compute_digest ~seq ~state_root:(Merkle_map.root map) ~ops_root
      in
      if String.equal d expect then Ok (install t staged)
      else Error "snapshot digest mismatch"

let snapshot_digest_info s =
  match
    let r = Codec.Reader.of_string s in
    if Codec.Reader.raw r 4 <> "SNAP" then None
    else begin
      let seq = Codec.Reader.u64 r in
      let ops_root = Codec.Reader.raw r 32 in
      Some (seq, ops_root)
    end
  with
  | exception Codec.Reader.Truncated -> None
  | v -> v
