(** Ledger of committed decision blocks with commit certificates.

    Each replica persists committed blocks (the paper writes them to
    RocksDB); the block store also serves state transfer: a lagging
    replica fetches a checkpoint snapshot plus the blocks after it.
    Retention is bounded by the checkpoint protocol via {!prune_below}. *)

type certificate =
  | Fast of string  (** σ(h) combined signature bytes *)
  | Slow of { tau : string; tau_tau : string }
      (** τ(h) and τ(τ(h)) combined signature bytes.  Both are kept so a
          served block is independently verifiable: τ(τ(h)) alone cannot
          be checked without the τ(h) it signs. *)

type op = {
  client : int;  (** issuing client's node id, [-1] for null fillers *)
  timestamp : int;  (** client request timestamp *)
  op : string;  (** encoded service operation as proposed (pre-dedup) *)
}
(** Persisted operations keep the issuing client's identity so a replica
    replaying a transferred block suffix can apply the same
    exactly-once degradation the original executors did (a bare op
    string cannot be deduplicated against the client table). *)

type entry = {
  seq : int;
  view : int;
  ops : op list;
  cert : certificate;
}

type client_entry = {
  ce_client : int;
  ce_timestamp : int;
  ce_value : string;
  ce_seq : int;
  ce_index : int;
}
(** One client-table row: last executed (timestamp, value, seq, index)
    for a client, as of the checkpoint. *)

type checkpoint = {
  cp_seq : int;
  cp_snapshot : string Lazy.t;
      (** Serialized only when first served. *)
  cp_table : client_entry list;
      (** Client table at the checkpoint, sorted by client id.  State
          transfer ships it with the snapshot so the receiver resumes
          request deduplication where the sender's state left off. *)
}

type t

val create : unit -> t

val add : t -> entry -> unit
(** Idempotent per sequence number (first write wins). *)

val find : t -> int -> entry option
val mem : t -> int -> bool
val highest : t -> int
(** Highest stored sequence number; 0 when empty. *)

val sorted_seqs : t -> int list
(** All stored sequence numbers in ascending order (recovery replay and
    blocks-only state-transfer answers walk the ledger with this). *)

val prune_below : t -> int -> unit

val rollback : t -> above:int -> unit
(** Rollback-attack counterpart of {!Wal.rollback_to_checkpoint}: erase
    every block with seq > [above] and any checkpoint newer than
    [above], as restoring the disk from a stale backup would. *)

val set_checkpoint :
  t -> seq:int -> snapshot:string Lazy.t -> table:client_entry list -> unit
(** Retains the latest stable checkpoint (snapshot + client table). *)

val checkpoint : t -> checkpoint option

val entry_size : entry -> int
(** Approximate persisted size in bytes (for disk-cost accounting). *)
