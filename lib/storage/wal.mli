(** Simulated write-ahead log for crash-amnesia recovery.

    Appends land in a pending buffer; [sync] group-commits them to the
    durable buffer.  A crash-amnesia restart keeps only the durable
    prefix ([drop_pending] models the lost tail), and [replay] tolerates
    a torn/corrupt tail by stopping at the first bad frame.

    Pure storage — no simulator dependency.  Callers charge
    [Cost_model.wal_append] per appended byte count and
    [Cost_model.wal_fsync] per effective [sync]. *)

type record =
  | View_entered of int
  | View_change_started of int
  | Accepted_pre_prepare of {
      seq : int;
      view : int;
      ops : (int * int * string) list;  (** client, timestamp, op *)
    }
  | Accepted_prepare of { seq : int; view : int; tau : string }
      (** [tau] is the serialized prepare certificate, so recovery can
          restore the replica's highest-prepare report for view changes. *)
  | Commit_cert of { seq : int; view : int; fast : bool }
  | Stable_checkpoint of { seq : int; digest : string; pi : string }
  | Client_row of {
      client : int;
      timestamp : int;
      value : string;
      seq : int;
      index : int;
    }

type t

val create : unit -> t

val append : t -> record -> int
(** Buffer a record; returns the framed byte count (for cost charging).
    Not durable until [sync]. *)

val dirty : t -> bool
(** [true] when appends are pending a sync. *)

val sync : t -> bool
(** Group-commit pending appends.  Returns [true] when a sync actually
    happened (caller charges one fsync), [false] when clean. *)

val drop_pending : t -> unit
(** Crash: the unsynced tail is gone. *)

val replay : t -> record list
(** Decode the durable prefix in append order, stopping at the first
    truncated or checksum-failing frame.  Records below the
    [truncate_below] horizon are filtered out (view records and the
    latest stable checkpoint at or below the horizon survive, the
    checkpoint hoisted to the front), so the replayed history does not
    depend on whether physical compaction has run yet. *)

val truncate_below : t -> seq:int -> unit
(** Checkpoint-time compaction: logically drop records whose sequence
    number is below [seq], keeping view records and the latest stable
    checkpoint at or below [seq].  The horizon bump is O(1); the
    physical rewrite is deferred until the durable buffer outgrows a
    doubling watermark, so callers may truncate on every
    stable-checkpoint advance without quadratic rewriting. *)

val durable_bytes : t -> int
(** Physical durable size; may include logically-dead frames not yet
    compacted away. *)


val pending_bytes : t -> int
val appends : t -> int
val syncs : t -> int

val reset : t -> unit
(** Wipe everything (models losing the disk; used when durability is
    disabled). *)

val rollback_to_checkpoint : t -> before:int -> int
(** Rollback-attack helper for the schedule fuzzer: discard the pending
    buffer and truncate the durable log to the prefix ending at the
    newest [Stable_checkpoint] whose seq is ≤ [before] — the disk image
    an attacker restores from an old backup.  Later view records and
    accepted pre-prepare/prepare promises vanish, so a recovery from
    this log resurrects pre-view-change state and forgets promises the
    network already saw.  Returns the checkpoint seq kept, or [0] when
    no checkpoint qualifies (the log becomes empty). *)

val corrupt_tail : t -> bytes:int -> unit
(** Test helper: overwrite the last [bytes] durable bytes with garbage
    to simulate a torn write. *)
