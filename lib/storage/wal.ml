(* Simulated write-ahead log.

   Replicas append protocol-critical transitions (view entries, accepted
   pre-prepares/prepares, commit certificates, stable checkpoints,
   client-table rows) and group-commit them with [sync]: appends land in
   a pending buffer and only become durable once synced, so a
   crash-amnesia restart loses exactly the unsynced tail — the same
   window a real fsync-based log exposes.  The store is byte-faithful:
   records are framed (varint length + FNV-1a checksum + payload) into a
   single buffer so that replay can tolerate a torn tail, and tests can
   corrupt trailing bytes to exercise that path.

   This module is pure storage: it never touches the simulator clock.
   Callers charge [Cost_model.wal_append]/[wal_fsync] for the bytes and
   syncs it reports. *)

open Sbft_wire

type record =
  | View_entered of int
  | View_change_started of int
  | Accepted_pre_prepare of {
      seq : int;
      view : int;
      ops : (int * int * string) list;  (* client, timestamp, op *)
    }
  | Accepted_prepare of { seq : int; view : int; tau : string }
  | Commit_cert of { seq : int; view : int; fast : bool }
  | Stable_checkpoint of { seq : int; digest : string; pi : string }
  | Client_row of {
      client : int;
      timestamp : int;
      value : string;
      seq : int;
      index : int;
    }

type t = {
  durable : Buffer.t;  (** synced frames; survives crash-amnesia *)
  pending : Buffer.t;  (** appended but not yet synced; lost on crash *)
  mutable appends : int;
  mutable syncs : int;
  mutable trunc_seq : int;
      (** logical truncation horizon: frames below it are dead and
          filtered out of {!replay}, whether or not they have been
          physically dropped yet *)
  mutable compact_watermark : int;
      (** durable size (bytes) at which the next {!truncate_below}
          physically rewrites the log; doubling it after each rewrite
          keeps compaction O(1) amortized per appended byte even when
          the horizon advances every slot *)
}

let initial_watermark = 1 lsl 16

let create () =
  {
    durable = Buffer.create 1024;
    pending = Buffer.create 256;
    appends = 0;
    syncs = 0;
    trunc_seq = 0;
    compact_watermark = initial_watermark;
  }

(* Signed ints (client ids can be -1 for null-request fillers) go
   through a zigzag varint so the codec only ever sees naturals. *)
let zig w v = Codec.Writer.varint w (if v >= 0 then 2 * v else (-2 * v) - 1)

let zag r =
  let v = Codec.Reader.varint r in
  if v land 1 = 0 then v / 2 else -((v + 1) / 2)

let payload record =
  let w = Codec.Writer.create () in
  (match record with
  | View_entered v ->
      Codec.Writer.u8 w 1;
      zig w v
  | View_change_started v ->
      Codec.Writer.u8 w 2;
      zig w v
  | Accepted_pre_prepare { seq; view; ops } ->
      Codec.Writer.u8 w 3;
      zig w seq;
      zig w view;
      Codec.Writer.list w
        (fun (client, timestamp, op) ->
          zig w client;
          zig w timestamp;
          Codec.Writer.str w op)
        ops
  | Accepted_prepare { seq; view; tau } ->
      Codec.Writer.u8 w 4;
      zig w seq;
      zig w view;
      Codec.Writer.str w tau
  | Commit_cert { seq; view; fast } ->
      Codec.Writer.u8 w 5;
      zig w seq;
      zig w view;
      Codec.Writer.u8 w (if fast then 1 else 0)
  | Stable_checkpoint { seq; digest; pi } ->
      Codec.Writer.u8 w 6;
      zig w seq;
      Codec.Writer.str w digest;
      Codec.Writer.str w pi
  | Client_row { client; timestamp; value; seq; index } ->
      Codec.Writer.u8 w 7;
      zig w client;
      zig w timestamp;
      Codec.Writer.str w value;
      zig w seq;
      zig w index);
  Codec.Writer.contents w

let parse_payload r =
  match Codec.Reader.u8 r with
  | 1 -> Some (View_entered (zag r))
  | 2 -> Some (View_change_started (zag r))
  | 3 ->
      let seq = zag r in
      let view = zag r in
      let ops =
        Codec.Reader.list r (fun r ->
            let client = zag r in
            let timestamp = zag r in
            let op = Codec.Reader.str r in
            (client, timestamp, op))
      in
      Some (Accepted_pre_prepare { seq; view; ops })
  | 4 ->
      let seq = zag r in
      let view = zag r in
      let tau = Codec.Reader.str r in
      Some (Accepted_prepare { seq; view; tau })
  | 5 ->
      let seq = zag r in
      let view = zag r in
      let fast = Codec.Reader.u8 r = 1 in
      Some (Commit_cert { seq; view; fast })
  | 6 ->
      let seq = zag r in
      let digest = Codec.Reader.str r in
      let pi = Codec.Reader.str r in
      Some (Stable_checkpoint { seq; digest; pi })
  | 7 ->
      let client = zag r in
      let timestamp = zag r in
      let value = Codec.Reader.str r in
      let seq = zag r in
      let index = zag r in
      Some (Client_row { client; timestamp; value; seq; index })
  | _ -> None

(* FNV-1a over the payload, folded to 32 bits. *)
let checksum s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let frame record =
  let p = payload record in
  let w = Codec.Writer.create () in
  Codec.Writer.varint w (String.length p);
  Codec.Writer.u32 w (checksum p);
  Codec.Writer.raw w p;
  Codec.Writer.contents w

let append t record =
  let f = frame record in
  Buffer.add_string t.pending f;
  t.appends <- t.appends + 1;
  String.length f

let dirty t = Buffer.length t.pending > 0

let sync t =
  if dirty t then begin
    Buffer.add_buffer t.durable t.pending;
    Buffer.clear t.pending;
    t.syncs <- t.syncs + 1;
    true
  end
  else false

let drop_pending t = Buffer.clear t.pending

let replay_string bytes =
  let r = Codec.Reader.of_string bytes in
  let out = ref [] in
  (try
     let stop = ref false in
     while (not !stop) && not (Codec.Reader.at_end r) do
       let len = Codec.Reader.varint r in
       let sum = Codec.Reader.u32 r in
       let p = Codec.Reader.raw r len in
       if sum <> checksum p then stop := true
       else
         match parse_payload (Codec.Reader.of_string p) with
         | Some record -> out := record :: !out
         | None -> stop := true
     done
   with Codec.Reader.Truncated -> ());
  List.rev !out

let record_seq = function
  | View_entered _ | View_change_started _ -> None
  | Accepted_pre_prepare { seq; _ }
  | Accepted_prepare { seq; _ }
  | Commit_cert { seq; _ }
  | Stable_checkpoint { seq; _ }
  | Client_row { seq; _ } ->
      Some seq

(* Checkpoint compaction filter: everything below [seq] is captured by
   the stable checkpoint, except view records (always retained, latest
   wins at replay) and the latest [Stable_checkpoint] at or below [seq],
   which moves to the front.  Shared by [replay] and the physical
   rewrite so the replayed history is identical whether or not the dead
   prefix has been dropped from the buffer yet. *)
let compact_records ~seq records =
  if seq <= 0 then records
  else begin
    let latest_cp =
      List.fold_left
        (fun acc r ->
          match r with
          | Stable_checkpoint { seq = s; _ } when s <= seq -> (
              match acc with
              | Some (Stable_checkpoint { seq = best; _ }) when best >= s -> acc
              | _ -> Some r)
          | _ -> acc)
        None records
    in
    let keep r =
      match record_seq r with
      | None -> true
      | Some s -> s >= seq
    in
    (* The retained checkpoint is hoisted to the front; skip it (by
       physical identity) in the keep pass so a checkpoint whose seq
       equals the truncation seq is not listed twice. *)
    let is_retained_cp r =
      match latest_cp with Some cp -> r == cp | None -> false
    in
    let kept = List.filter (fun r -> keep r && not (is_retained_cp r)) records in
    match latest_cp with Some cp -> cp :: kept | None -> kept
  end

(* Only the synced prefix exists after a crash, so only it replays. *)
let replay t =
  compact_records ~seq:t.trunc_seq (replay_string (Buffer.contents t.durable))

(* Logical truncation is just a horizon bump; the O(log-size) physical
   rewrite runs only once the durable buffer outgrows its watermark.
   Callers may therefore truncate on every stable-checkpoint advance
   without turning the log into an O(n^2) hot spot (it did: at paper
   scale every certified slot rewrote every replica's full log). *)
let truncate_below t ~seq =
  if seq > t.trunc_seq then t.trunc_seq <- seq;
  if Buffer.length t.durable >= t.compact_watermark then begin
    let records = replay t in
    Buffer.clear t.durable;
    List.iter (fun r -> Buffer.add_string t.durable (frame r)) records;
    t.compact_watermark <- max initial_watermark (2 * Buffer.length t.durable)
  end

let durable_bytes t = Buffer.length t.durable
let pending_bytes t = Buffer.length t.pending
let appends t = t.appends
let syncs t = t.syncs

let reset t =
  Buffer.clear t.durable;
  Buffer.clear t.pending;
  t.appends <- 0;
  t.syncs <- 0;
  t.trunc_seq <- 0;
  t.compact_watermark <- initial_watermark

(* Rollback-attack helper (schedule fuzzer): restore the stale durable
   prefix ending at the newest Stable_checkpoint whose seq is at most
   [before] — the state an attacker gets by re-imaging a replica's disk
   from an old backup.  Every later frame disappears, including view
   records and Accepted_* promises logged after the checkpoint, so the
   restarted replica resurrects pre-view-change state and forgets
   prepare promises the network already acted on.  The kept prefix is
   internally consistent (it is exactly what the log held when that
   checkpoint was synced).  Returns the checkpoint seq kept, or 0 when
   no checkpoint qualifies (the log rolls back to empty — a factory
   restore). *)
let rollback_to_checkpoint t ~before =
  Buffer.clear t.pending;
  let records = replay_string (Buffer.contents t.durable) in
  let cut = ref (-1) in
  let cp = ref 0 in
  List.iteri
    (fun i r ->
      match r with
      | Stable_checkpoint { seq; _ } when seq <= before && seq >= !cp ->
          cut := i;
          cp := seq
      | _ -> ())
    records;
  let kept =
    if !cut < 0 then []
    else List.filteri (fun i _ -> i <= !cut) records
  in
  Buffer.clear t.durable;
  List.iter (fun r -> Buffer.add_string t.durable (frame r)) kept;
  t.trunc_seq <- 0;
  t.compact_watermark <- max initial_watermark (2 * Buffer.length t.durable);
  !cp

(* Test helper: simulate a torn write by overwriting the last [bytes]
   durable bytes with garbage. *)
let corrupt_tail t ~bytes =
  let s = Buffer.contents t.durable in
  let n = String.length s in
  let k = min bytes n in
  Buffer.clear t.durable;
  Buffer.add_string t.durable (String.sub s 0 (n - k));
  Buffer.add_string t.durable (String.make k '\xFF')
