open Sbft_wire

type t =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Add of { key : string; delta : int }
  | Batch of t list
  | Noop

let rec write w op =
  match op with
  | Put { key; value } ->
      Codec.Writer.u8 w 1;
      Codec.Writer.str w key;
      Codec.Writer.str w value
  | Get { key } ->
      Codec.Writer.u8 w 2;
      Codec.Writer.str w key
  | Add { key; delta } ->
      Codec.Writer.u8 w 4;
      Codec.Writer.str w key;
      Codec.Writer.u64 w delta
  | Batch ops ->
      Codec.Writer.u8 w 3;
      Codec.Writer.list w (write w) ops
  | Noop -> Codec.Writer.u8 w 0

let encode op =
  let w = Codec.Writer.create () in
  write w op;
  Codec.Writer.contents w

let rec read r =
  match Codec.Reader.u8 r with
  | 1 ->
      let key = Codec.Reader.str r in
      let value = Codec.Reader.str r in
      Some (Put { key; value })
  | 2 -> Some (Get { key = Codec.Reader.str r })
  | 4 ->
      let key = Codec.Reader.str r in
      let delta = Codec.Reader.u64 r in
      Some (Add { key; delta })
  | 3 ->
      let ops = Codec.Reader.list r read in
      if List.exists Option.is_none ops then None
      else Some (Batch (List.filter_map Fun.id ops))
  | 0 -> Some Noop
  | _ -> None

let decode s =
  match read (Codec.Reader.of_string s) with
  | v -> v
  | exception Codec.Reader.Truncated -> None

let rec count = function
  | Put _ | Get _ | Add _ | Noop -> 1
  | Batch ops -> List.fold_left (fun acc op -> acc + count op) 0 ops

let rec pp fmt = function
  | Put { key; value } -> Format.fprintf fmt "put(%s=%s)" key value
  | Get { key } -> Format.fprintf fmt "get(%s)" key
  | Add { key; delta } -> Format.fprintf fmt "add(%s+=%d)" key delta
  | Batch ops ->
      Format.fprintf fmt "batch[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp)
        ops
  | Noop -> Format.fprintf fmt "noop"

let encoded_size op = String.length (encode op)
