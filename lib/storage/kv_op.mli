(** Operations of the replicated key-value service and their canonical
    wire encoding.

    Replication treats operations as opaque byte strings; this module is
    the concrete KV "service language" used by the paper's
    micro-benchmarks (random [Put]s, optionally batched 64 to a
    request). *)

type t =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Add of { key : string; delta : int }
      (** Read-modify-write counter increment, returning the new value.
          Unlike [Put], a duplicated execution is {e observable} (the
          counter overshoots), which is what the fuzzer's at-most-once
          oracle keys on. *)
  | Batch of t list
      (** Several operations submitted as one request — the paper's
          batching mode packs 64 puts per client request. *)
  | Noop  (** The "null" operation a view change fills empty slots with. *)

val count : t -> int
(** Number of primitive operations (a batch counts its elements). *)

val encode : t -> string
val decode : string -> t option

val pp : Format.formatter -> t -> unit

val encoded_size : t -> int
