let rec apply_op map (op : Kv_op.t) =
  match op with
  | Put { key; value } -> (Sbft_crypto.Merkle_map.set map ~key ~value, "ok")
  | Get { key } -> (map, Option.value ~default:"" (Sbft_crypto.Merkle_map.get map key))
  | Add { key; delta } ->
      let current =
        match Sbft_crypto.Merkle_map.get map key with
        | Some v -> Option.value ~default:0 (int_of_string_opt v)
        | None -> 0
      in
      let value = string_of_int (current + delta) in
      (Sbft_crypto.Merkle_map.set map ~key ~value, value)
  | Batch ops ->
      let map =
        List.fold_left (fun map op -> fst (apply_op map op)) map ops
      in
      (map, "ok")
  | Noop -> (map, "")

let apply map op =
  match Kv_op.decode op with
  | Some op -> apply_op map op
  | None -> (map, "")

let create () = Auth_store.create ~apply ()

let put ~key ~value = Kv_op.encode (Put { key; value })
let get ~key = Kv_op.encode (Get { key })
let add ~key ~delta = Kv_op.encode (Add { key; delta })
let noop = Kv_op.encode Noop

let read map ~key = Sbft_crypto.Merkle_map.get map key
