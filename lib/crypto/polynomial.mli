(** Polynomials over {!Field}, as needed by Shamir secret sharing:
    random polynomial generation, Horner evaluation, and Lagrange
    interpolation at zero. *)

type t
(** Coefficients, lowest degree first. *)

val of_coeffs : Field.t array -> t
val degree : t -> int

val random : Sbft_sim.Rng.t -> degree:int -> const:Field.t -> t
(** Random polynomial of the given degree with constant term [const]. *)

val eval : t -> Field.t -> Field.t

val lagrange_at_zero : (Field.t * Field.t) list -> Field.t
(** [lagrange_at_zero points] interpolates the unique polynomial through
    [points = (x_i, y_i)] (distinct, nonzero [x_i]) and evaluates it at
    0.  This is the share-combination step of the threshold scheme.
    @raise Invalid_argument on duplicate or zero x-coordinates. *)

val lagrange_coeffs_at_zero : Field.t array -> Field.t array
(** [lagrange_coeffs_at_zero xs] is the vector [c] of Lagrange basis
    coefficients at zero for abscissae [xs]: the interpolated value at 0
    of any polynomial sampled at [xs] is [sum_i c_i * y_i].  The
    coefficients depend only on the signer set, so combiners that see
    the same set repeatedly can memoize them ({!interpolate_at_zero}
    applies a memoized vector).
    @raise Invalid_argument on duplicate or zero x-coordinates. *)

val interpolate_at_zero : coeffs:Field.t array -> Field.t array -> Field.t
(** [interpolate_at_zero ~coeffs ys] evaluates [sum_i coeffs_i * ys_i]
    — the cheap half of {!lagrange_at_zero} once the coefficients are
    known.
    @raise Invalid_argument on a length mismatch. *)
