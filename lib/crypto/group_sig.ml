type t = { n : int; master : Field.t; share_vks : Field.t array }
type signing_key = { signer : int; secret_share : Field.t }
type share = { signer : int; value : Field.t }
type signature = Field.t

let setup rng ~n =
  if n < 1 then invalid_arg "Group_sig.setup: n >= 1";
  let secrets = Array.init n (fun _ -> Field.random rng) in
  let master = Array.fold_left Field.add Field.zero secrets in
  let keys = Array.mapi (fun i s -> { signer = i + 1; secret_share = s }) secrets in
  ({ n; master; share_vks = secrets }, keys)

let n t = t.n

let hash_to_field msg = Field.of_digest (Sha256.digest msg)

let share_sign (sk : signing_key) ~msg =
  { signer = sk.signer; value = Field.mul sk.secret_share (hash_to_field msg) }

let share_verify t ~msg sh =
  sh.signer >= 1 && sh.signer <= t.n
  && Field.equal sh.value (Field.mul t.share_vks.(sh.signer - 1) (hash_to_field msg))

let combine t ~msg shares =
  let by_signer = Array.make t.n None in
  List.iter
    (fun sh ->
      if share_verify t ~msg sh && by_signer.(sh.signer - 1) = None then
        by_signer.(sh.signer - 1) <- Some sh.value)
    shares;
  if Array.exists (fun o -> o = None) by_signer then None
  else
    Some
      (Array.fold_left
         (fun acc o -> match o with Some v -> Field.add acc v | None -> acc)
         Field.zero by_signer)

let verify t ~msg sig_ = Field.equal sig_ (Field.mul t.master (hash_to_field msg))

type outcome = {
  signature : signature option;
  fallback : bool;
  bad_signers : int list;
}

let combine_verified t ~msg shares =
  let by_signer = Array.make t.n None in
  List.iter
    (fun sh ->
      if sh.signer >= 1 && sh.signer <= t.n && by_signer.(sh.signer - 1) = None
      then by_signer.(sh.signer - 1) <- Some sh.value)
    shares;
  if Array.exists (fun o -> o = None) by_signer then
    { signature = None; fallback = false; bad_signers = [] }
  else begin
    (* Optimistic: sum all n shares unchecked, verify the sum once. *)
    let sum =
      Array.fold_left
        (fun acc o -> match o with Some v -> Field.add acc v | None -> acc)
        Field.zero by_signer
    in
    if verify t ~msg sum then
      { signature = Some sum; fallback = false; bad_signers = [] }
    else begin
      (* n-of-n admits no recombination after excluding a bad signer;
         identification only names the culprits so the caller can fall
         back to the threshold scheme without them. *)
      let h = hash_to_field msg in
      let bad = ref [] in
      Array.iteri
        (fun i o ->
          match o with
          | Some v when not (Field.equal v (Field.mul t.share_vks.(i) h)) ->
              bad := (i + 1) :: !bad
          | _ -> ())
        by_signer;
      { signature = None; fallback = true; bad_signers = List.rev !bad }
    end
  end
