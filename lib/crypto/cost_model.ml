type time = Sbft_sim.Engine.time

let us_f x = int_of_float (x *. 1_000.0)

(* BN-P254 / RELIC ballpark on 2.3 GHz Broadwell: G1 exp ~0.2 ms,
   pairing ~0.5 ms. *)
let bls_share_sign = us_f 200.
let bls_share_verify = us_f 1000.

(* Batch verification of k shares: one base check plus ~60 us per share
   (Boldyreva [22]; paper batches share verification in collectors). *)
let bls_batch_verify k = us_f 1000. + (k * us_f 60.)

(* Interpolation in the exponent: one G1 exp per share, spread over the
   collector's worker threads (the paper parallelizes this; we model an
   effective 4x speedup) plus fixed setup. *)
let bls_combine k = us_f 80. + (k * us_f 50.)

(* Interpolation with the Lagrange coefficient vector served from the
   signer-set memo: the field-inversion batch and coefficient products
   are skipped, leaving the per-share exponentiations plus a smaller
   fixed setup. *)
let bls_combine_cached k = us_f 20. + (k * us_f 40.)

(* Robust fallback identification after a failed combined-signature
   check: one full verification per share that was not already in the
   verification cache (a batch cannot name the culprits). *)
let bls_identify fresh = fresh * bls_share_verify

(* n-of-n group combination is field additions only. *)
let group_combine k = us_f 10. + (k * us_f 1.)

let bls_verify = us_f 1000.

(* Crypto++ official benchmarks: RSA-2048 sign 0.67 ms / verify 0.048 ms
   on a 2.7 GHz Skylake; scaled slightly up for the paper's 2.3 GHz
   Broadwell VMs. *)
let rsa_sign = us_f 800.
let rsa_verify = us_f 50.

let sha256 len = us_f 0.5 + (3 * len) (* ~3 ns/byte *)
let hmac len = (2 * us_f 0.5) + sha256 len

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let merkle_build n = us_f 1. + (n * us_f 1.)
let merkle_prove n = us_f 1. + (log2_ceil (max 2 n) * us_f 0.5)
let merkle_verify depth = us_f 1. + (depth * us_f 0.5)

let kv_execute_op = us_f 4.
let persist_block bytes = us_f 50. + (bytes * 25 / 1000)

(* Sequential WAL append into the OS page cache: ~1 GB/s effective plus
   a small fixed cost per record. *)
let wal_append bytes = us_f 0.5 + bytes

(* Group-commit flush of the WAL tail (NVMe-class fsync).  Charged once
   per handler that dirtied the log, not per record. *)
let wal_fsync = us_f 120.

(* Gray-failure knob: a degraded disk stretches the flush latency by a
   per-node factor (firmware GC stalls, throttled cloud volumes).  The
   scale multiplies the nominal fsync only — appends hit the page cache
   and stay cheap, which is exactly the fail-slow asymmetry reported in
   gray-failure studies. *)
let wal_fsync_scaled ~scale =
  if scale <= 1.0 then wal_fsync
  else int_of_float (float_of_int wal_fsync *. scale)

(* Calibrated to the paper's unreplicated baseline of ~840 contract
   transactions per second on one machine (execution + RocksDB commit). *)
let evm_execute_tx = us_f 1190.

let message_auth_check = us_f 2.

(* ------------------------------------------------------------------ *)
(* Per-operation accounting for the benchmark regression harness.

   [Tally.note label t] records [t] virtual nanoseconds against [label]
   and returns [t], so charge sites wrap in place:

     Engine.charge ctx (Cost_model.Tally.note "combine" (bls_combine k))

   The table is host-global diagnostic state: it is written during runs
   and read only by the harness between runs, never by protocol code,
   so it cannot influence simulated behaviour (same argument as the
   scenario logger's host_seconds). *)

module Tally = struct
  let table : (string, int) Hashtbl.t = Hashtbl.create 32

  let enabled = ref false

  let reset () =
    Hashtbl.reset table;
    enabled := true

  let note label t =
    if !enabled then begin
      let prev = Option.value (Hashtbl.find_opt table label) ~default:0 in
      Hashtbl.replace table label (prev + t)
    end;
    t

  let snapshot () =
    Hashtbl.fold (fun label total acc -> (label, total) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
