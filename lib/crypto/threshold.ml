type t = {
  n : int;
  k : int;
  master : Field.t; (* verification key (simulation: equals the secret) *)
  share_vks : Field.t array; (* per-signer verification keys, index signer-1 *)
  (* Lagrange coefficients at zero, memoized per (sorted) signer set.
     Collectors see the same k signers slot after slot on the steady
     path, so the batch-inversion in Polynomial.lagrange_coeffs_at_zero
     runs once per signer set, not once per slot. *)
  coeff_memo : (string, Field.t array) Hashtbl.t;
  (* Per-(signer, message, value) share-verification verdicts: a share
     re-delivered by the network (retransmission, multiple collectors on
     one node, view-change re-validation) is never verified twice. *)
  verify_memo : (string, bool) Hashtbl.t;
}

type signing_key = { signer : int; secret_share : Field.t }

type share = { signer : int; value : Field.t }

type signature = Field.t

(* Memo tables are caches of pure-function results keyed by their full
   inputs, so lookups can never disagree with recomputation; bounding
   them only bounds memory on very long runs. *)
let memo_cap = 1 lsl 16

let setup rng ~n ~k =
  if k < 1 || k > n then invalid_arg "Threshold.setup: need 1 <= k <= n";
  let master = Field.random rng in
  let shares = Shamir.deal rng ~secret:master ~threshold:k ~num_shares:n in
  let share_vks = Array.map (fun (s : Shamir.share) -> s.value) shares in
  let keys =
    Array.map
      (fun (s : Shamir.share) -> { signer = s.index; secret_share = s.value })
      shares
  in
  ( { n; k; master; share_vks;
      coeff_memo = Hashtbl.create 64;
      verify_memo = Hashtbl.create 1024 },
    keys )

let n t = t.n
let threshold t = t.k
let signer_index (sk : signing_key) = sk.signer

let hash_to_field msg = Field.of_digest (Sha256.digest msg)

let share_sign (sk : signing_key) ~msg =
  { signer = sk.signer; value = Field.mul sk.secret_share (hash_to_field msg) }

let share_verify_h t ~h sh =
  sh.signer >= 1 && sh.signer <= t.n
  && Field.equal sh.value (Field.mul t.share_vks.(sh.signer - 1) h)

let share_verify t ~msg sh = share_verify_h t ~h:(hash_to_field msg) sh

(* ------------------------------------------------------------------ *)
(* Verification cache *)

let memo_guard tbl = if Hashtbl.length tbl > memo_cap then Hashtbl.reset tbl

(* The cache key binds the digest, the signer and the claimed value: a
   Byzantine signer re-sending a *different* share for the same message
   misses the cache and is verified afresh. *)
let verify_key ~digest sh =
  Printf.sprintf "%s|%d|%Ld" digest sh.signer (Field.to_int64 sh.value)

(* [fresh] counts verifications actually performed (cache misses) so
   callers can charge simulated CPU for exactly the work done. *)
let share_verify_memo t ~digest ~h ~fresh sh =
  let key = verify_key ~digest sh in
  match Hashtbl.find_opt t.verify_memo key with
  | Some ok -> ok
  | None ->
      memo_guard t.verify_memo;
      incr fresh;
      let ok = share_verify_h t ~h sh in
      Hashtbl.replace t.verify_memo key ok;
      ok

let share_verify_cached t ~msg sh =
  let fresh = ref 0 in
  share_verify_memo t ~digest:(Sha256.digest msg) ~h:(hash_to_field msg) ~fresh sh

(* ------------------------------------------------------------------ *)
(* Robust (per-share-verifying) combination — the pessimistic baseline *)

let combine t ~msg shares =
  (* Robust combination: drop invalid shares and duplicate signers, then
     interpolate the first k valid ones.  The message hash is computed
     once for the whole batch. *)
  let h = hash_to_field msg in
  let seen = Hashtbl.create 16 in
  let valid =
    List.filter
      (fun sh ->
        share_verify_h t ~h sh
        && not (Hashtbl.mem seen sh.signer)
        &&
        (Hashtbl.add seen sh.signer ();
         true))
      shares
  in
  if List.length valid < t.k then None
  else begin
    let chosen = List.filteri (fun i _ -> i < t.k) valid in
    let points =
      List.map (fun sh -> (Field.of_int sh.signer, sh.value)) chosen
    in
    Some (Polynomial.lagrange_at_zero points)
  end

let combine_exn t ~msg shares =
  match combine t ~msg shares with
  | Some s -> s
  | None -> failwith "Threshold.combine_exn: not enough valid shares"

let verify t ~msg sig_ = Field.equal sig_ (Field.mul t.master (hash_to_field msg))

(* ------------------------------------------------------------------ *)
(* Optimistic combine-then-verify (paper §IV linearity argument) *)

type outcome = {
  signature : signature option;
  fallback : bool;
  bad_signers : int list;
  coeffs_cached : bool;
  recombine_cached : bool;
  fresh_checks : int;
}

let signer_set_key signers =
  String.concat "," (List.map string_of_int signers)

let coeffs_for t signers =
  let key = signer_set_key signers in
  match Hashtbl.find_opt t.coeff_memo key with
  | Some coeffs -> (coeffs, true)
  | None ->
      memo_guard t.coeff_memo;
      let xs = Array.of_list (List.map Field.of_int signers) in
      let coeffs = Polynomial.lagrange_coeffs_at_zero xs in
      Hashtbl.replace t.coeff_memo key coeffs;
      (coeffs, false)

(* Deduplicate by signer (first occurrence wins, matching [combine]) and
   sort ascending: a canonical order makes the coefficient memo hit for
   any arrival order of the same signer set. *)
let dedup_sorted t shares =
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun sh ->
        sh.signer >= 1 && sh.signer <= t.n
        && (not (Hashtbl.mem seen sh.signer))
        &&
        (Hashtbl.add seen sh.signer ();
         true))
      shares
  in
  List.sort (fun a b -> Int.compare a.signer b.signer) distinct

let interpolate_prefix t shares =
  let chosen = List.filteri (fun i _ -> i < t.k) shares in
  let signers = List.map (fun sh -> sh.signer) chosen in
  let coeffs, cached = coeffs_for t signers in
  let ys = Array.of_list (List.map (fun sh -> sh.value) chosen) in
  (Polynomial.interpolate_at_zero ~coeffs ys, cached)

let combine_verified t ~msg shares =
  let h = hash_to_field msg in
  let candidates = dedup_sorted t shares in
  if List.length candidates < t.k then
    { signature = None; fallback = false; bad_signers = [];
      coeffs_cached = false; recombine_cached = false; fresh_checks = 0 }
  else begin
    (* Optimistic path: combine k shares with zero per-share checks and
       verify the single combined signature. *)
    let sig_opt, coeffs_cached = interpolate_prefix t candidates in
    if Field.equal sig_opt (Field.mul t.master h) then
      { signature = Some sig_opt; fallback = false; bad_signers = [];
        coeffs_cached; recombine_cached = false; fresh_checks = 0 }
    else begin
      (* Robust fallback: identify invalid shares per signer (through
         the verification cache, so re-delivered shares cost nothing),
         exclude exactly the bad signers, and recombine from the valid
         remainder.  The recombined signature needs no combined check:
         every constituent share was just verified individually. *)
      let digest = Sha256.digest msg in
      let fresh = ref 0 in
      let valid, bad =
        List.partition (share_verify_memo t ~digest ~h ~fresh) candidates
      in
      let bad_signers = List.map (fun sh -> sh.signer) bad in
      if List.length valid < t.k then
        { signature = None; fallback = true; bad_signers;
          coeffs_cached; recombine_cached = false; fresh_checks = !fresh }
      else begin
        let sig_, recombine_cached = interpolate_prefix t valid in
        { signature = Some sig_; fallback = true; bad_signers;
          coeffs_cached; recombine_cached; fresh_checks = !fresh }
      end
    end
  end

let forge_invalid_share ~signer = { signer; value = Field.of_int 0xDEADBEEF }

let signature_bytes (s : signature) = Field.to_bytes s

let signature_size = 33
let share_size = 37
