(** CPU cost model for cryptographic and storage operations.

    The simulator charges these times on a node's CPU whenever protocol
    code performs the corresponding operation, reproducing the
    computational bottlenecks of the paper's testbed (32-VCPU Intel
    Broadwell E5-2686v4 @ 2.3 GHz).  Constants follow published
    measurements for the primitives the paper uses:

    - BLS on BN-P254 via RELIC (Beuchat et al. 2010; paper §VIII): a G1
      exponentiation ≈ 0.2 ms, a pairing ≈ 0.5 ms, so share signing (1
      exp) ≈ 0.2 ms, share/signature verification (2 pairings) ≈ 1.0 ms.
      Shares support batch verification "at nearly the cost of one" [22],
      modelled as one base verification plus a small per-share increment.
      Combination interpolates in the exponent: one exponentiation per
      share, parallelized in SBFT's collector threads (§VIII); we charge
      a per-share cost reflecting that parallelism.
    - RSA-2048 (Crypto++ official benchmarks, scaled to 2.3 GHz):
      sign ≈ 0.8 ms, verify ≈ 0.05 ms.
    - SHA-256 ≈ 3 ns/byte plus fixed overhead; HMAC two hashes.
    - Key-value execution ≈ 4 µs/op; block persistence (RocksDB write
      batch) ≈ 50 µs + 25 ns/byte.
    - EVM smart-contract execution ≈ 1.1 ms/tx including persistence —
      calibrated so an unreplicated executor measures ≈ 840 tx/s, the
      paper's single-machine baseline.

    All values are virtual nanoseconds ({!Sbft_sim.Engine.time}). *)

type time = Sbft_sim.Engine.time

(** {2 Threshold BLS (simulated)} *)

val bls_share_sign : time
val bls_share_verify : time
val bls_batch_verify : int -> time
(** [bls_batch_verify k]: verifying [k] shares as a batch. *)

val bls_combine : int -> time
(** [bls_combine k]: Lagrange interpolation in the exponent over [k]
    shares (collector-side, parallelized). *)

val bls_combine_cached : int -> time
(** [bls_combine_cached k]: interpolation when the Lagrange coefficient
    vector for the signer set is already memoized — the inversion batch
    and coefficient products are skipped ({!Threshold.combine_verified}
    reports the memo hit). *)

val bls_identify : int -> time
(** [bls_identify fresh]: robust per-share identification after a failed
    combined-signature check — one full share verification per cache
    miss (a batch check cannot name the culprits). *)

val group_combine : int -> time
(** n-of-n group-signature combination (additions only — cheap). *)

val bls_verify : time
(** Verifying a combined signature (2 pairings). *)

(** {2 Public-key and symmetric crypto} *)

val rsa_sign : time
val rsa_verify : time
val sha256 : int -> time
(** [sha256 len]: hashing [len] bytes. *)

val hmac : int -> time

(** {2 Merkle} *)

val merkle_build : int -> time
(** Building a tree over [n] operation leaves. *)

val merkle_prove : int -> time
val merkle_verify : int -> time
(** Parameter: path length. *)

(** {2 Execution and storage} *)

val kv_execute_op : time
val persist_block : int -> time
(** [persist_block bytes]: write-batch a decision block to disk. *)

val wal_append : int -> time
(** [wal_append bytes]: sequential append of a framed WAL record into
    the OS page cache (~1 ns/byte plus fixed overhead). *)

val wal_fsync : time
(** Group-commit flush of the WAL tail — charged once per handler that
    dirtied the log (NVMe-class flush latency). *)

val wal_fsync_scaled : scale:float -> time
(** {!wal_fsync} stretched by a per-node degradation factor — the
    gray-failure "fail-slow disk" knob (firmware GC stalls, throttled
    cloud volumes).  Scales the flush only; appends still hit the page
    cache at full speed.  [scale <= 1.0] is the healthy baseline. *)

val evm_execute_tx : time
(** Average smart-contract transaction: EVM interpretation + state
    update + persistence (calibrated to the 840 tx/s baseline). *)

val message_auth_check : time
(** Point-to-point channel authentication check per message (TLS record
    MAC), charged by the network receive path indirectly. *)

(** Per-operation accounting of charged virtual CPU, for the benchmark
    regression harness's per-crypto-op breakdown.  Host-side diagnostic
    state only: written as charges happen, read by the harness between
    runs, never consulted by protocol code (so replay determinism is
    unaffected).  Disabled until the first {!Tally.reset}, so ordinary
    runs pay no accounting cost. *)
module Tally : sig
  val reset : unit -> unit
  (** Clear all counters and enable collection. *)

  val note : string -> time -> time
  (** [note label t] records [t] against [label] (when enabled) and
      returns [t], so charge sites wrap in place. *)

  val snapshot : unit -> (string * time) list
  (** Accumulated virtual nanoseconds per label, sorted by label. *)
end
