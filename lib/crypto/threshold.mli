(** Robust k-of-n threshold signatures — the simulation stand-in for
    threshold BLS over BN-P254 (paper §III).

    Structure mirrors BLS threshold signatures exactly: the dealer Shamir-
    shares a master secret [s]; signer [i]'s share on message [m] is
    [s_i · H(m)] (multiplication in {!Field} playing the role of the
    group exponentiation); any [k] valid shares combine by Lagrange
    interpolation at zero into the unique signature [s · H(m)]; invalid
    shares from malicious signers are detected per-signer and filtered
    ("robustness").

    {b Security caveat (documented substitution):} verification uses the
    master secret as the verification key, so a party holding a verifier
    handle could forge.  Inside the simulation the adversary is
    protocol-level and never calls the signing API with keys it does not
    own, so unforgeability is enforced by construction; the scheme's
    {e interface, robustness semantics, sizes and costs} are what the
    protocol logic and benchmarks depend on. *)

type t
(** Public parameters + verification keys for one scheme instance. *)

type signing_key

type share = { signer : int; value : Field.t }
(** A signature share by 1-based signer [signer]. *)

type signature = Field.t

val setup : Sbft_sim.Rng.t -> n:int -> k:int -> t * signing_key array
(** [setup rng ~n ~k] deals keys for signers [1..n] with threshold [k].
    The returned array is indexed by [signer - 1]. *)

val n : t -> int
val threshold : t -> int
val signer_index : signing_key -> int

val share_sign : signing_key -> msg:string -> share
val share_verify : t -> msg:string -> share -> bool

val share_verify_cached : t -> msg:string -> share -> bool
(** {!share_verify} through the scheme's per-(signer, message, value)
    verdict cache: a share the scheme instance has already checked
    (re-delivery, a second collector on the same node, view-change
    re-validation) is answered from the cache without recomputation.
    The cache key includes the claimed share value, so a Byzantine
    signer re-sending a different share always verifies afresh. *)

val combine : t -> msg:string -> share list -> signature option
(** Pessimistic robust combination: verifies every share, drops invalid
    ones and duplicate signers, and combines the first [k] valid ones;
    [None] if fewer than [k] valid shares are present.  Costs O(k)
    per-share verifications even when all signers are honest — prefer
    {!combine_verified} on hot paths. *)

val combine_exn : t -> msg:string -> share list -> signature

(** Result of an optimistic {!combine_verified} call.  The counters let
    the caller charge simulated CPU for exactly the work performed. *)
type outcome = {
  signature : signature option;
      (** The combined signature, or [None] when fewer than [k] valid
          shares were available. *)
  fallback : bool;
      (** The optimistic combined-signature check failed (an invalid
          share was present) and per-share identification ran. *)
  bad_signers : int list;
      (** Signers whose shares failed verification during fallback
          identification (ascending; empty on the optimistic path).
          Callers should evict these from their stashes. *)
  coeffs_cached : bool;
      (** The Lagrange coefficient vector for the first combination was
          served from the signer-set memo. *)
  recombine_cached : bool;
      (** Same, for the post-fallback recombination (meaningful only
          when [fallback] and [signature] is [Some _]). *)
  fresh_checks : int;
      (** Per-share verifications actually computed during fallback —
          cache hits from re-delivered shares are excluded. *)
}

val combine_verified : t -> msg:string -> share list -> outcome
(** Optimistic combine-then-verify (the collector linearity argument of
    paper §IV): combine [k] shares {e without} verifying any of them,
    check the single combined signature, and only if that check fails
    fall back to robust per-share identification — excluding exactly
    the bad signers and recombining from the valid remainder.  With
    honest signers this costs one interpolation plus one signature
    verification instead of [k] share verifications; Byzantine shares
    cost one extra identification pass, and the per-(signer, message)
    cache makes re-delivered shares free.  The recombined fallback
    signature is built solely from individually verified shares, so it
    needs no second combined check. *)

val verify : t -> msg:string -> signature -> bool

val forge_invalid_share : signer:int -> share
(** A deliberately invalid share, used by Byzantine test behaviours to
    exercise robustness. *)

val signature_bytes : signature -> string
(** Wire encoding of a combined signature (8 bytes of field element;
    size accounting uses {!signature_size}). *)

val signature_size : int
(** 33 — the byte size charged on the wire, matching BLS on BN-P254. *)

val share_size : int
(** 33 + signer index overhead. *)
