(* SHA-256 over native ints: all 32-bit words are kept in the low 32 bits
   of an OCaml int (63-bit), masked after every arithmetic step.

   This function dominates host time at paper scale — request digests,
   merkle-map updates and block digests hash ~500 bytes per simulated
   event — so the compression loop is written for ocamlopt: rotations
   are inlined by hand, array and byte accesses are unsafe (indices are
   statically in range), and [digest] / [digest_list] reuse one scratch
   context instead of allocating the schedule and buffer per call (the
   simulator is single-domain and the functions never re-enter). *)

let mask = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes fed *)
  w : int array; (* message schedule scratch *)
}

let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

let init () =
  {
    h = Array.copy iv;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block j) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (j + 3)))
  done;
  for i = 16 to 63 do
    let x15 = Array.unsafe_get w (i - 15) in
    let s0 =
      (((x15 lsr 7) lor (x15 lsl 25)) land mask)
      lxor (((x15 lsr 18) lor (x15 lsl 14)) land mask)
      lxor (x15 lsr 3)
    in
    let x2 = Array.unsafe_get w (i - 2) in
    let s1 =
      (((x2 lsr 17) lor (x2 lsl 15)) land mask)
      lxor (((x2 lsr 19) lor (x2 lsl 13)) land mask)
      lxor (x2 lsr 10)
    in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let ev = !e in
    let s1 =
      (((ev lsr 6) lor (ev lsl 26)) land mask)
      lxor (((ev lsr 11) lor (ev lsl 21)) land mask)
      lxor (((ev lsr 25) lor (ev lsl 7)) land mask)
    in
    let ch = (ev land !f) lxor (lnot ev land !g) in
    let temp1 =
      (!hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask
    in
    let av = !a in
    let s0 =
      (((av lsr 2) lor (av lsl 30)) land mask)
      lxor (((av lsr 13) lor (av lsl 19)) land mask)
      lxor (((av lsr 22) lor (av lsl 10)) land mask)
    in
    let maj = (av land !b) lxor (av land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := ev;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := av;
    a := (temp1 + temp2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let feed_bytes ctx data ~off ~len =
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Fill a partial buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit data !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx data !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit data !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let bit_len = ctx.total * 8 in
  (* Padding in place: 0x80, zeros to fill the block (spilling into a
     second block when fewer than 8 trailing bytes remain for the
     length), then the 8-byte big-endian bit length.  buf_len < 64
     always holds here, so the buffer never overflows. *)
  let buf = ctx.buf in
  Bytes.set buf ctx.buf_len '\x80';
  ctx.buf_len <- ctx.buf_len + 1;
  if ctx.buf_len > 56 then begin
    Bytes.fill buf ctx.buf_len (64 - ctx.buf_len) '\x00';
    compress ctx buf 0;
    ctx.buf_len <- 0
  end;
  Bytes.fill buf ctx.buf_len (56 - ctx.buf_len) '\x00';
  for i = 0 to 7 do
    Bytes.set buf (56 + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xFF))
  done;
  compress ctx buf 0;
  ctx.buf_len <- 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF))
  done;
  Bytes.unsafe_to_string out

(* One-shot digests run on a reused scratch context, trading the
   per-call schedule/buffer allocation for a cheap reset. *)
let scratch = init ()

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0

let digest msg =
  reset scratch;
  feed scratch msg;
  finalize scratch

let digest_list chunks =
  reset scratch;
  List.iter (feed scratch) chunks;
  finalize scratch

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b
