(* Nodes cache their Merkle hash; smart constructors keep it consistent.
   A leaf stores the full key (not only its hash) so [fold] can recover
   bindings.  Leaves live at the shallowest depth where their key-hash
   prefix is unique, like a compressed Patricia trie. *)

type node =
  | Empty
  | Leaf of { khash : string; key : string; value : string; h : string }
  | Branch of { left : node; right : node; h : string }

type t = { node : node; cardinal : int }

let empty_hash = Sha256.digest "sbft-merkle-map-empty"

let hash_of = function
  | Empty -> empty_hash
  | Leaf l -> l.h
  | Branch b -> b.h

let leaf ~khash ~key ~value =
  Leaf { khash; key; value; h = Sha256.digest_list [ "\x02"; khash; Sha256.digest value ] }

let branch left right =
  Branch { left; right; h = Sha256.digest_list [ "\x03"; hash_of left; hash_of right ] }

let bit khash i =
  let byte = Char.code khash.[i lsr 3] in
  (byte lsr (7 - (i land 7))) land 1

let empty = { node = Empty; cardinal = 0 }
let cardinal t = t.cardinal
let root t = hash_of t.node

let khash_of_key key = Sha256.digest key

let get t key =
  let kh = khash_of_key key in
  let rec go node depth =
    match node with
    | Empty -> None
    | Leaf l -> if String.equal l.khash kh then Some l.value else None
    | Branch b -> if bit kh depth = 0 then go b.left (depth + 1) else go b.right (depth + 1)
  in
  go t.node 0

(* Split two leaves with distinct key hashes into branches from [depth]
   down to their first diverging bit. *)
let rec split_leaves depth (l1 : node) kh1 (l2 : node) kh2 =
  let b1 = bit kh1 depth and b2 = bit kh2 depth in
  if Int.equal b1 b2 then begin
    let sub = split_leaves (depth + 1) l1 kh1 l2 kh2 in
    if b1 = 0 then branch sub Empty else branch Empty sub
  end
  else if b1 = 0 then branch l1 l2
  else branch l2 l1

let set t ~key ~value =
  let kh = khash_of_key key in
  let added = ref false in
  let rec go node depth =
    match node with
    | Empty ->
        added := true;
        leaf ~khash:kh ~key ~value
    | Leaf l ->
        if String.equal l.khash kh then leaf ~khash:kh ~key ~value
        else begin
          added := true;
          split_leaves depth node l.khash (leaf ~khash:kh ~key ~value) kh
        end
    | Branch b ->
        if bit kh depth = 0 then branch (go b.left (depth + 1)) b.right
        else branch b.left (go b.right (depth + 1))
  in
  let node = go t.node 0 in
  { node; cardinal = (if !added then t.cardinal + 1 else t.cardinal) }

let remove t key =
  let kh = khash_of_key key in
  let removed = ref false in
  (* Collapse single-leaf branches on the way up to restore the
     shallowest-unique-prefix invariant. *)
  let collapse left right =
    match (left, right) with
    | Empty, Empty -> Empty
    | (Leaf _ as l), Empty | Empty, (Leaf _ as l) -> l
    | _ -> branch left right
  in
  let rec go node depth =
    match node with
    | Empty -> Empty
    | Leaf l ->
        if String.equal l.khash kh then begin
          removed := true;
          Empty
        end
        else node
    | Branch b ->
        if bit kh depth = 0 then collapse (go b.left (depth + 1)) b.right
        else collapse b.left (go b.right (depth + 1))
  in
  let node = go t.node 0 in
  if !removed then { node; cardinal = t.cardinal - 1 } else t

let fold f t acc =
  let rec go node acc =
    match node with
    | Empty -> acc
    | Leaf l -> f l.key l.value acc
    | Branch b -> go b.right (go b.left acc)
  in
  go t.node acc

type proof = { siblings : (string * [ `Left | `Right ]) list }
(* Sibling hashes from the leaf's parent up to the root, with the side
   the sibling sits on. *)

let prove t key =
  let kh = khash_of_key key in
  let rec go node depth acc =
    match node with
    | Empty -> None
    | Leaf l -> if String.equal l.khash kh then Some acc else None
    | Branch b ->
        if bit kh depth = 0 then go b.left (depth + 1) ((hash_of b.right, `Right) :: acc)
        else go b.right (depth + 1) ((hash_of b.left, `Left) :: acc)
  in
  (* Prepending while descending leaves the deepest sibling at the head,
     i.e. [siblings] is already in leaf-to-root order. *)
  Option.map (fun acc -> { siblings = acc }) (go t.node 0 [])

let implied_root ~key ~value proof =
  let kh = khash_of_key key in
  let leaf_h = Sha256.digest_list [ "\x02"; kh; Sha256.digest value ] in
  List.fold_left
    (fun h (sib, side) ->
      match side with
      | `Right -> Sha256.digest_list [ "\x03"; h; sib ]
      | `Left -> Sha256.digest_list [ "\x03"; sib; h ])
    leaf_h proof.siblings

let verify ~root:expected ~key ~value proof =
  String.equal (implied_root ~key ~value proof) expected

let proof_size p = (33 * List.length p.siblings) + 8

let encode_proof p =
  let open Sbft_wire in
  let w = Codec.Writer.create () in
  Codec.Writer.list w
    (fun (h, side) ->
      Codec.Writer.u8 w (match side with `Left -> 0 | `Right -> 1);
      Codec.Writer.raw w h)
    p.siblings;
  Codec.Writer.contents w

let decode_proof s =
  let open Sbft_wire in
  match
    let r = Codec.Reader.of_string s in
    let siblings =
      Codec.Reader.list r (fun r ->
          let side = if Codec.Reader.u8 r = 0 then `Left else `Right in
          let h = Codec.Reader.raw r 32 in
          (h, side))
    in
    { siblings }
  with
  | p -> Some p
  | exception Codec.Reader.Truncated -> None
