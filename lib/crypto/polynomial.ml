type t = Field.t array

let of_coeffs c = Array.copy c
let degree t = Array.length t - 1

let random rng ~degree ~const =
  Array.init (degree + 1) (fun i -> if i = 0 then const else Field.random rng)

let eval t x =
  let acc = ref Field.zero in
  for i = Array.length t - 1 downto 0 do
    acc := Field.add (Field.mul !acc x) t.(i)
  done;
  !acc

let lagrange_at_zero points =
  let xs = List.map fst points in
  if List.exists (Field.equal Field.zero) xs then
    invalid_arg "lagrange_at_zero: zero x-coordinate";
  let rec check_distinct = function
    | [] -> ()
    | x :: rest ->
        if List.exists (Field.equal x) rest then
          invalid_arg "lagrange_at_zero: duplicate x-coordinate";
        check_distinct rest
  in
  check_distinct xs;
  (* value = sum_i y_i * prod_{j<>i} x_j / (x_j - x_i).
     With N = prod_j x_j the i-th coefficient is N / (x_i * prod_{j<>i}
     (x_j - x_i)); all k denominators are inverted together with
     Montgomery's batch-inversion trick (3k multiplications + one field
     inversion instead of O(k^2) inversions — this function dominates
     collector cost at n ~ 200). *)
  let pts = Array.of_list points in
  let k = Array.length pts in
  let numerator = Array.fold_left (fun acc (x, _) -> Field.mul acc x) Field.one pts in
  let denoms =
    Array.init k (fun i ->
        let xi, _ = pts.(i) in
        let p = ref xi in
        for j = 0 to k - 1 do
          if not (Int.equal j i) then begin
            let xj, _ = pts.(j) in
            p := Field.mul !p (Field.sub xj xi)
          end
        done;
        !p)
  in
  (* Batch inversion: prefix products, one inversion, then unwind. *)
  let prefix = Array.make (k + 1) Field.one in
  for i = 0 to k - 1 do
    prefix.(i + 1) <- Field.mul prefix.(i) denoms.(i)
  done;
  let inv_all = ref (Field.inv prefix.(k)) in
  let inv_denoms = Array.make k Field.one in
  for i = k - 1 downto 0 do
    inv_denoms.(i) <- Field.mul !inv_all prefix.(i);
    inv_all := Field.mul !inv_all denoms.(i)
  done;
  let acc = ref Field.zero in
  for i = 0 to k - 1 do
    let _, yi = pts.(i) in
    acc := Field.add !acc (Field.mul yi (Field.mul numerator inv_denoms.(i)))
  done;
  !acc
