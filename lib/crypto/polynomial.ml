type t = Field.t array

let of_coeffs c = Array.copy c
let degree t = Array.length t - 1

let random rng ~degree ~const =
  Array.init (degree + 1) (fun i -> if i = 0 then const else Field.random rng)

let eval t x =
  let acc = ref Field.zero in
  for i = Array.length t - 1 downto 0 do
    acc := Field.add (Field.mul !acc x) t.(i)
  done;
  !acc

let lagrange_coeffs_at_zero xs =
  if Array.exists (Field.equal Field.zero) xs then
    invalid_arg "lagrange_coeffs_at_zero: zero x-coordinate";
  Array.iteri
    (fun i xi ->
      for j = i + 1 to Array.length xs - 1 do
        if Field.equal xi xs.(j) then
          invalid_arg "lagrange_coeffs_at_zero: duplicate x-coordinate"
      done)
    xs;
  (* value = sum_i y_i * prod_{j<>i} x_j / (x_j - x_i).
     With N = prod_j x_j the i-th coefficient is N / (x_i * prod_{j<>i}
     (x_j - x_i)); all k denominators are inverted together with
     Montgomery's batch-inversion trick (3k multiplications + one field
     inversion instead of O(k^2) inversions — this function dominates
     collector cost at n ~ 200, which is why {!Sbft_crypto.Threshold}
     memoizes its result per signer set). *)
  let k = Array.length xs in
  let numerator = Array.fold_left Field.mul Field.one xs in
  let denoms =
    Array.init k (fun i ->
        let xi = xs.(i) in
        let p = ref xi in
        for j = 0 to k - 1 do
          if not (Int.equal j i) then p := Field.mul !p (Field.sub xs.(j) xi)
        done;
        !p)
  in
  (* Batch inversion: prefix products, one inversion, then unwind. *)
  let prefix = Array.make (k + 1) Field.one in
  for i = 0 to k - 1 do
    prefix.(i + 1) <- Field.mul prefix.(i) denoms.(i)
  done;
  let inv_all = ref (Field.inv prefix.(k)) in
  let coeffs = Array.make k Field.one in
  for i = k - 1 downto 0 do
    coeffs.(i) <- Field.mul numerator (Field.mul !inv_all prefix.(i));
    inv_all := Field.mul !inv_all denoms.(i)
  done;
  coeffs

let interpolate_at_zero ~coeffs ys =
  if not (Int.equal (Array.length coeffs) (Array.length ys)) then
    invalid_arg "interpolate_at_zero: coefficient/value length mismatch";
  let acc = ref Field.zero in
  Array.iteri (fun i c -> acc := Field.add !acc (Field.mul c ys.(i))) coeffs;
  !acc

let lagrange_at_zero points =
  let pts = Array.of_list points in
  let coeffs = lagrange_coeffs_at_zero (Array.map fst pts) in
  interpolate_at_zero ~coeffs (Array.map snd pts)
