(** n-of-n "group signature" fast mode (paper §VIII).

    When no failure has been detected recently, SBFT's collectors use a
    BLS {e group} signature (an n-out-of-n multisignature) instead of a
    k-of-n threshold signature: combination is a plain sum of shares —
    much cheaper than Lagrange interpolation — at the cost of requiring
    every signer.  The implementation mirrors {!Threshold} with additive
    instead of polynomial shares. *)

type t
type signing_key
type share = { signer : int; value : Field.t }
type signature = Field.t

val setup : Sbft_sim.Rng.t -> n:int -> t * signing_key array
val n : t -> int
val share_sign : signing_key -> msg:string -> share
val share_verify : t -> msg:string -> share -> bool

val combine : t -> msg:string -> share list -> signature option
(** Requires a valid share from {e every} one of the [n] signers, each
    verified individually before summation. *)

val verify : t -> msg:string -> signature -> bool

(** Result of an optimistic {!combine_verified} call. *)
type outcome = {
  signature : signature option;
      (** [None] when a signer is missing or (after fallback) a share
          was invalid — n-of-n combination admits no exclusion. *)
  fallback : bool;  (** the combined check failed; identification ran *)
  bad_signers : int list;  (** invalid signers, ascending *)
}

val combine_verified : t -> msg:string -> share list -> outcome
(** Optimistic combine-then-verify: sums all [n] shares without
    per-share checks and verifies the single combined signature.  On
    failure, identifies the bad signers so the caller can switch to the
    threshold scheme without them (the paper's group-signature fast
    mode falls back to threshold signatures on the first failure). *)
