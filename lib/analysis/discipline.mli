(** Protocol-discipline rules (R9-R11) over {!Msgflow} summaries.

    - {b R9} — WAL-before-send: every send of a promise-bearing message
      must be preceded, on its source path through local helper calls,
      by a [wal_log] of the matching record type and the [wal_sync]
      that flushed it.  The record<->message correspondence is
      {!promise_table}.  Only files that use the WAL are checked (the
      PBFT baseline has no WAL by design).
    - {b R10} — cost-accounting completeness: every priced
      crypto/storage call reachable from an [on_*] handler (or from the
      WAL wrappers) must have a covering [Engine.charge] of the same
      cost klass in the same function.
    - {b R11} — send-amplification: inside a handler, a send in an
      iteration over a handler-parameter collection, or an unguarded
      send of an amplifying message ({!amplifying}), must be gated on
      recognizable pacing state (a guard mentioning
      allow/rate/resent/paced/served, or an [Hashtbl.mem] dedup).

    Scope: [lib/core/] and [lib/pbft/].  Findings use {!Lint.finding}
    so they share the allowlist, report, and exit-code machinery. *)

val promise_table : (string * string list) list
(** Message constructor -> WAL record types, any one of which must be
    logged and synced before the send (the R9 correspondence table). *)

val amplifying : string list
(** Message constructors whose retransmission amplifies (full state
    transfers, new-view certificates): R11 requires a guard even
    outside iteration. *)

val lint_source : path:string -> string -> Lint.finding list
(** Run R9-R11 on the given source (attributed to root-relative
    [path]).  Out-of-scope paths and unparseable sources yield [] —
    {!Lint.lint_source} already reports parse failures.  Findings are
    sorted by line then rule. *)
