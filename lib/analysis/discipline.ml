(* Protocol-discipline rules over Msgflow summaries.

   R9  WAL-before-send: a send of a promise-bearing message must be
       dominated (in source order, following local calls) by a
       [wal_log] of the matching record type and a [wal_sync] that
       flushed it.  The record<->message correspondence lives in
       [promise_table] — one place, quoted in DESIGN.md.
   R10 cost-accounting completeness: every priced crypto/storage call
       reachable from a handler must have a covering [Engine.charge]
       of the same cost klass in the same function.
   R11 send-amplification: a send inside iteration over a
       handler-parameter collection, or an unguarded send of an
       amplifying message (full state / new-view retransmissions),
       needs a recognizable rate-limit guard.

   All three are syntactic and deliberately strict on the shapes the
   protocol uses; vetted exceptions go through lint.allow like any
   other rule. *)

(* Local copies of path helpers (Lint keeps its own private). *)
let normalize path = String.map (fun c -> if Char.equal c '\\' then '/' else c) path

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let in_scope path =
  has_prefix ~prefix:"lib/core/" path || has_prefix ~prefix:"lib/pbft/" path

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let mem x xs = List.exists (String.equal x) xs

let finding ~rule ~file ~line message =
  { Lint.rule; severity = Lint.Error; file; line; message }

(* ------------------------------------------------------------------ *)
(* R9: the record <-> message correspondence table.

   A message is promise-bearing when a restarted replica that forgot
   sending it could equivocate; the required records are the WAL
   entries whose replay re-establishes the promise (any one of the
   alternatives suffices).  Aggregate proof messages
   (Full_commit_proof, Full_commit_proof_slow, New_view) carry
   threshold certificates built from *others'* promises and are
   self-certifying, so they are deliberately absent; Sign_state shares
   an execution digest that the Client_row records already pin. *)

let promise_table =
  [
    ("Sign_share", [ "Accepted_pre_prepare" ]);
    ("Commit", [ "Accepted_prepare" ]);
    ("Full_execute_proof", [ "Stable_checkpoint" ]);
    ("Execute_ack", [ "Client_row"; "Stable_checkpoint" ]);
    ("View_change", [ "View_change_started" ]);
  ]

let uses_wal (fl : Msgflow.file) =
  List.exists
    (fun (f : Msgflow.func) ->
      List.exists
        (fun (e : Msgflow.einfo) ->
          match e.Msgflow.ev with
          | Msgflow.Log _ | Msgflow.Sync -> true
          | _ -> false)
        f.Msgflow.fn_events)
    fl.Msgflow.funcs

(* Linear simulation threading (logged, synced) record sets through the
   event stream of each handler, inlining local calls (cycles cut by
   the call stack).  Source order approximates domination: a branch
   cannot un-log a record, so the only miss is a send textually after a
   sync that runtime control flow could skip — acceptable for a
   checker whose job is catching *removed* log/sync pairs. *)
let r9 (fl : Msgflow.file) =
  if not (uses_wal fl) then []
  else begin
    let findings = ref [] in
    let rec sim stack state (events : Msgflow.einfo list) =
      List.fold_left
        (fun (logged, synced) (e : Msgflow.einfo) ->
          match e.Msgflow.ev with
          | Msgflow.Log r -> (r :: logged, synced)
          | Msgflow.Sync -> ([], logged @ synced)
          | Msgflow.Send { ctor = Some c; _ } ->
              (match List.assoc_opt c promise_table with
              | Some required when not (List.exists (fun r -> mem r synced) required) ->
                  findings :=
                    finding ~rule:"R9" ~file:fl.Msgflow.path ~line:e.Msgflow.line
                      (Printf.sprintf
                         "promise-bearing send of %s without a synced %s WAL \
                          record on this path (wal_log + wal_sync must come \
                          first)"
                         c
                         (String.concat "/" required))
                    :: !findings
              | _ -> ());
              (logged, synced)
          | Msgflow.Call n when not (mem n stack) -> (
              match Msgflow.find_func fl.Msgflow.funcs n with
              | Some f -> sim (n :: stack) (logged, synced) f.Msgflow.fn_events
              | None -> (logged, synced))
          | _ -> (logged, synced))
        state events
    in
    List.iter
      (fun (f : Msgflow.func) ->
        if Msgflow.is_handler f.Msgflow.fn_name then
          ignore (sim [ f.Msgflow.fn_name ] ([], []) f.Msgflow.fn_events))
      fl.Msgflow.funcs;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* R10: cost-accounting completeness.

   Tally labels / Cost_model constants -> cost klass.  A charge covers
   a crypto call of the same klass in the same function when the charge
   sits in an enclosing-or-equal region, or — for calls inside a guard
   condition — when the charge sits in a region the condition
   dominates (the [wal_sync] shape: the charge lives in the then-arm
   the successful call enables). *)

let label_klass =
  [
    ("share_sign", "share_sign");
    ("proof_verify", "verify");
    ("combined_verify", "verify");
    ("combine", "combine");
    ("share_identify", "share_verify");
    ("share_batch_verify", "share_verify");
    ("hash", "hash");
    ("merkle", "merkle");
    ("wal_append", "wal_append");
    ("wal_fsync", "wal_fsync");
    ("rsa_verify", "rsa_verify");
    ("rsa_sign", "rsa_sign");
  ]

let const_klass =
  [
    ("bls_share_sign", "share_sign");
    ("bls_verify", "verify");
    ("bls_batch_verify", "share_verify");
    ("bls_share_verify", "share_verify");
    ("bls_identify", "share_verify");
    ("bls_combine", "combine");
    ("bls_combine_cached", "combine");
    ("group_combine", "combine");
    ("sha256", "hash");
    ("merkle_build", "merkle");
    ("merkle_prove", "merkle");
    ("merkle_verify", "merkle");
    ("wal_append", "wal_append");
    ("wal_fsync", "wal_fsync");
    ("rsa_sign", "rsa_sign");
    ("rsa_verify", "rsa_verify");
  ]

let charge_klasses labels consts =
  List.filter_map (fun l -> List.assoc_opt l label_klass) labels
  @ List.filter_map (fun c -> List.assoc_opt c const_klass) consts

let rec is_region_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: a', y :: b' -> Int.equal x y && is_region_prefix a' b'
  | _ :: _, [] -> false

(* Entry points: handlers plus the WAL wrappers themselves (their
   Wal.append/Wal.sync must stay priced even though handlers reach them
   only by call). *)
let r10_entry (f : Msgflow.func) =
  Msgflow.is_handler f.Msgflow.fn_name
  || mem f.Msgflow.fn_name [ "wal_log"; "wal_sync" ]

let reachable_funcs (fl : Msgflow.file) =
  let entry_names =
    List.filter_map
      (fun (f : Msgflow.func) -> if r10_entry f then Some f.Msgflow.fn_name else None)
      fl.Msgflow.funcs
  in
  let rec go visited = function
    | [] -> visited
    | n :: rest ->
        if mem n visited then go visited rest
        else (
          match Msgflow.find_func fl.Msgflow.funcs n with
          | None -> go visited rest
          | Some f ->
              let calls =
                List.filter_map
                  (fun (e : Msgflow.einfo) ->
                    match e.Msgflow.ev with Msgflow.Call c -> Some c | _ -> None)
                  f.Msgflow.fn_events
              in
              go (n :: visited) (calls @ rest))
  in
  let names = go [] entry_names in
  List.filter (fun (f : Msgflow.func) -> mem f.Msgflow.fn_name names) fl.Msgflow.funcs

let r10 (fl : Msgflow.file) =
  List.concat_map
    (fun (f : Msgflow.func) ->
      List.filter_map
        (fun (e : Msgflow.einfo) ->
          match e.Msgflow.ev with
          | Msgflow.Crypto { klass; callee } ->
              let covered =
                List.exists
                  (fun (ch : Msgflow.einfo) ->
                    match ch.Msgflow.ev with
                    | Msgflow.Charge { labels; consts } ->
                        mem klass (charge_klasses labels consts)
                        && (is_region_prefix ch.Msgflow.region e.Msgflow.region
                           || (e.Msgflow.in_guard
                              && is_region_prefix e.Msgflow.region
                                   ch.Msgflow.region))
                    | _ -> false)
                  f.Msgflow.fn_events
              in
              if covered then None
              else
                Some
                  (finding ~rule:"R10" ~file:fl.Msgflow.path ~line:e.Msgflow.line
                     (Printf.sprintf
                        "crypto call %s reachable from a handler has no \
                         covering Engine.charge of klass %s in %s"
                        callee klass f.Msgflow.fn_name))
          | _ -> None)
        f.Msgflow.fn_events)
    (reachable_funcs fl)

(* ------------------------------------------------------------------ *)
(* R11: send amplification.

   Checked lexically per handler (helper-internal fan-out like
   [broadcast_replicas] is the protocol's own bounded all-replica
   multicast).  A guard is recognized by name: pacing state the code
   consults before sending. *)

let amplifying = [ "New_view"; "State_resp" ]

let guard_tokens = [ "allow"; "rate"; "resent"; "paced"; "served" ]

let is_guarded (e : Msgflow.einfo) =
  List.exists
    (fun g ->
      String.equal g "mem" (* Hashtbl.mem dedup: at-most-once per key *)
      || List.exists (fun tok -> contains_sub g tok) guard_tokens)
    e.Msgflow.guard_names

let r11 (fl : Msgflow.file) =
  let implicit = Lint.Taint.default.Lint.Taint.implicit_params in
  List.concat_map
    (fun (f : Msgflow.func) ->
      if not (Msgflow.is_handler f.Msgflow.fn_name) then []
      else
        List.filter_map
          (fun (e : Msgflow.einfo) ->
            match e.Msgflow.ev with
            | Msgflow.Send { ctor; _ } when not (is_guarded e) -> (
                let tainted =
                  List.filter
                    (fun v ->
                      mem v f.Msgflow.fn_params && not (mem v implicit))
                    e.Msgflow.iter_vars
                in
                match (tainted, ctor) with
                | v :: _, _ ->
                    Some
                      (finding ~rule:"R11" ~file:fl.Msgflow.path
                         ~line:e.Msgflow.line
                         (Printf.sprintf
                            "send inside iteration over peer-controlled '%s' \
                             in %s without a rate-limit guard"
                            v f.Msgflow.fn_name))
                | [], Some c when mem c amplifying ->
                    Some
                      (finding ~rule:"R11" ~file:fl.Msgflow.path
                         ~line:e.Msgflow.line
                         (Printf.sprintf
                            "unguarded send of amplifying message %s in %s; \
                             gate it on pacing state"
                            c f.Msgflow.fn_name))
                | _ -> None)
            | _ -> None)
          f.Msgflow.fn_events)
    fl.Msgflow.funcs

(* ------------------------------------------------------------------ *)

let dedup_sorted findings =
  let sorted =
    List.sort
      (fun (a : Lint.finding) (b : Lint.finding) ->
        match Int.compare a.Lint.line b.Lint.line with
        | 0 -> (
            match String.compare a.Lint.rule b.Lint.rule with
            | 0 -> String.compare a.Lint.message b.Lint.message
            | n -> n)
        | n -> n)
      findings
  in
  let rec uniq = function
    | a :: (b :: _ as rest) ->
        if
          Int.equal a.Lint.line b.Lint.line
          && String.equal a.Lint.rule b.Lint.rule
          && String.equal a.Lint.message b.Lint.message
        then uniq rest
        else a :: uniq rest
    | l -> l
  in
  uniq sorted

let lint_structure ~path structure =
  let fl = Msgflow.summarize ~path structure in
  dedup_sorted (r9 fl @ r10 fl @ r11 fl)

let lint_source ~path source =
  let path = normalize path in
  if not (in_scope path) then []
  else
    match Msgflow.parse ~path source with
    | None -> [] (* Lint reports parse failures *)
    | Some structure -> lint_structure ~path structure
