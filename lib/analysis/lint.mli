(** Repo-specific static analysis over the OCaml AST (compiler-libs).

    The pass parses each [.ml] file under [lib/] and [bin/] and checks
    protocol-hygiene rules that the type system does not enforce:

    - {b R1} — no polymorphic [=] / [<>] / [compare] / [Hashtbl.hash] in
      protocol code ([lib/core], [lib/pbft], [lib/crypto]).  Comparisons
      where one operand is a constant (integer/char literal, [None],
      [true], a nullary constructor, ...) are tag-only and exempt;
      everything else must use an explicit equality ([Int.equal],
      [String.equal], a derived equality on the message type, ...).
    - {b R2} — no partial stdlib functions ([List.hd], [List.nth],
      [List.assoc], [Option.get], [Hashtbl.find]) in protocol code;
      use the [_opt] variants or restructure the match.
    - {b R3} — no catch-all [try ... with _ ->] handlers, anywhere.
    - {b R4} — no quorum-literal arithmetic ([3 * f], [2 * c], ...)
      outside [lib/core/config.ml]: quorum sizes must flow from
      {!module:Config} so the [n = 3f + 2c + 1] relations live in one
      place.
    - {b R5} — every module under [lib/] must have a [.mli].

    Findings carry [file:line] locations and a severity; vetted
    exceptions live in a [lint.allow] file at the repo root. *)

type severity = Error | Warning

type finding = {
  rule : string;  (** "R1" .. "R5", or "parse" for unparseable input *)
  severity : severity;
  file : string;  (** root-relative path, forward slashes *)
  line : int;
  message : string;
}

val pp_finding : finding -> string
(** ["file:line: [rule] message"] — one line, no trailing newline. *)

val lint_source : path:string -> source:string -> finding list
(** Parse [source] (attributed to root-relative [path]) and run every
    AST rule whose scope includes [path].  Findings are sorted by line.
    A file that does not parse yields a single ["parse"] error. *)

val missing_mli : path:string -> mli_exists:bool -> finding option
(** R5: [Some finding] when [path] is a [lib/] module without a
    matching interface file. *)

(** Vetted exceptions.  One entry per line:

    {v
    <rule> <path>[:<line>]   # justification
    v}

    A [*] rule matches every rule; an entry without [:<line>] matches
    the whole file.  Blank lines and [#]-only lines are ignored. *)
module Allow : sig
  type t

  val empty : t

  val parse : string -> t
  (** Parse the contents of a [lint.allow] file.  Malformed lines are
      ignored (they simply allow nothing). *)

  val is_allowed : t -> finding -> bool

  val unused : t -> finding list -> string list
  (** Entries (rendered back to ["rule path[:line]"]) that matched none
      of [findings] — stale allowlist lines worth cleaning up. *)
end

val filter : Allow.t -> finding list -> finding list * finding list
(** [filter allow findings] is [(kept, allowed)]. *)

val exit_code : finding list -> int
(** 1 when any kept finding is an [Error], 0 otherwise. *)
