(** Repo-specific static analysis over the OCaml AST (compiler-libs).

    The pass parses each [.ml] file under [lib/] and [bin/] and checks
    protocol-hygiene rules that the type system does not enforce:

    - {b R1} — no polymorphic [=] / [<>] / [compare] / [Hashtbl.hash] in
      protocol code ([lib/core], [lib/pbft], [lib/crypto]).  Comparisons
      where one operand is a constant (integer/char literal, [None],
      [true], a nullary constructor, ...) are tag-only and exempt;
      everything else must use an explicit equality ([Int.equal],
      [String.equal], a derived equality on the message type, ...).
    - {b R2} — no partial stdlib functions ([List.hd], [List.nth],
      [List.assoc], [Option.get], [Hashtbl.find]) in protocol code;
      use the [_opt] variants or restructure the match.
    - {b R3} — no catch-all [try ... with _ ->] handlers, anywhere.
    - {b R4} — no quorum-literal arithmetic ([3 * f], [2 * c], ...)
      outside [lib/core/config.ml]: quorum sizes must flow from
      {!module:Config} so the [n = 3f + 2c + 1] relations live in one
      place.
    - {b R5} — every module under [lib/] must have a [.mli].
    - {b R6} — authenticate-before-use (a per-function taint dataflow
      over [lib/core] and [lib/pbft]): parameters of network-receive
      handlers (top-level functions named [on_*]) are tainted, taint is
      cleared only by a call into the configured sanitizer set
      (Crypto/Keys/Pki verify functions), and a tainted value reaching a
      state-mutating call (table writes, [:=], field assignment,
      [send_*]/[broadcast_*] emission, [check_*]) is an error carrying
      the taint chain.  See {!module:Taint} for the knobs.
    - {b R7} — determinism: no [Random.*] outside [lib/sim/rng.ml], no
      [Unix.*] or [Sys.time] anywhere under [lib/], no physical equality
      ([==] / [!=]) on protocol values, and no unordered [Hashtbl.iter]
      / [Hashtbl.fold] / [Hashtbl.to_seq*] traversal under [lib/] —
      unless the fold feeds directly into [List.sort] (any of
      [sort cmp (fold ...)], [fold ... |> sort cmp], [sort cmp @@ fold
      ...]) or the file is [lib/sim/det.ml], the blessed sorted-view
      wrapper.

    (R8, the replay-divergence checker, is the runtime twin of R7 and
    lives in [lib/sim/replay.ml], not here.)

    Findings carry [file:line] locations and a severity; vetted
    exceptions live in a [lint.allow] file at the repo root. *)

type severity = Error | Warning

type finding = {
  rule : string;  (** "R1" .. "R7", or "parse" for unparseable input *)
  severity : severity;
  file : string;  (** root-relative path, forward slashes *)
  line : int;
  message : string;
}

val pp_finding : finding -> string
(** ["file:line: [rule] message"] — one line, no trailing newline. *)

(** Configuration of the R6 taint analysis. *)
module Taint : sig
  type t = {
    source_prefixes : string list;
        (** Top-level functions whose name starts with one of these are
            network-receive entry points; their parameters are tainted. *)
    source_call_prefixes : string list;
        (** Functions whose name (last path component) starts with one
            of these return attacker-visible data: their results are
            tainted wherever the call appears, in any function.  Default
            [obs_] — the adversary observation surface
            ({!Sbft_core.Replica}'s [obs_*] accessors). *)
    implicit_params : string list;
        (** Parameter/binding names exempt from tainting: the handler's
            own state and scalar routing fields covered by the link-layer
            MAC checked on receipt. *)
    sanitizers : string list;
        (** Function names (matched on the last path component, e.g.
            [verify] matches [Crypto.Threshold.verify]) whose call clears
            taint from their arguments. *)
    sink_names : string list;  (** Exact names of state-mutating calls. *)
    sink_prefixes : string list;
        (** Name prefixes of state-mutating calls ([send], [broadcast],
            [check_], ...). *)
  }

  val default : t
end

val lint_source : ?taint:Taint.t -> path:string -> string -> finding list
(** Parse the given source text (attributed to root-relative [path]) and run every
    AST rule whose scope includes [path].  Findings are sorted by line.
    A file that does not parse yields a single ["parse"] error.
    [taint] configures R6 (default {!Taint.default}). *)

val missing_mli : path:string -> mli_exists:bool -> finding option
(** R5: [Some finding] when [path] is a [lib/] module without a
    matching interface file. *)

(** Vetted exceptions.  One entry per line:

    {v
    <rule> <path>[:<line>]   # justification
    v}

    A [*] rule matches every rule; an entry without [:<line>] matches
    the whole file.  Blank lines and [#]-only lines are ignored. *)
module Allow : sig
  type t

  val empty : t

  val parse : string -> t
  (** Parse the contents of a [lint.allow] file.  Malformed lines are
      ignored (they simply allow nothing). *)

  val is_allowed : t -> finding -> bool

  val unused : t -> finding list -> string list
  (** Entries (rendered back to ["rule path[:line]"]) that matched none
      of [findings] — stale allowlist lines worth cleaning up. *)
end

val filter : Allow.t -> finding list -> finding list * finding list
(** [filter allow findings] is [(kept, allowed)]. *)

val exit_code : finding list -> int
(** 1 when any kept finding is an [Error], 0 otherwise. *)
