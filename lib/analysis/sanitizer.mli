(** Runtime twin of the static lint: assert-style protocol invariants
    checked at replica state transitions.

    The sanitizer re-derives every quorum threshold from [f] and [c]
    alone ([n = 3f + 2c + 1], σ [= 3f + c + 1], τ [= 2f + c + 1],
    π [= f + 1], view-change [= 2f + 2c + 1], PBFT majority [= 2f + 1])
    so a drifting [Config] or a hard-coded literal anywhere in the
    protocol shows up as a {!Violation} the first time the code claims
    a quorum.  It also tracks per-replica commit/execute history:

    - a slot never commits two different request batches;
    - execution is gapless and monotonic (seq [= last + 1]);
    - no block executes before its commit proof was recorded;
    - views only move forward.

    Checks are on by default ([Config.sanitize]); a disabled sanitizer
    is a no-op so the hot path pays one branch. *)

type t

exception Violation of string
(** Raised by every check on an invariant breach.  The message names
    the invariant and the offending values. *)

type quorum = Quorum_props.kind =
  | Sigma  (** fast-path commit, [3f + c + 1] *)
  | Tau  (** linear-PBFT commit, [2f + c + 1] *)
  | Pi  (** execution / checkpoint, [f + 1] *)
  | Vc  (** view change, [2f + 2c + 1] *)
  | Majority  (** classic PBFT quorum, [2f + 1] *)

val create : ?enabled:bool -> f:int -> c:int -> unit -> t
(** [enabled] defaults to [true]. *)

val enabled : t -> bool

val checks_run : t -> int
(** Number of invariant checks performed so far (0 when disabled) —
    lets tests assert the sanitizer was actually exercised. *)

val threshold : t -> quorum -> int

val check_config : t -> n:int -> unit
(** Verify the replica-count relation [n = 3f + 2c + 1] and every
    {!Quorum_props.obligations} entry (intersection, ordering and
    liveness) against the sanitizer's own arithmetic. *)

val check_quorum : t -> quorum -> count:int -> unit
(** Called where the protocol claims a quorum of [count] distinct
    shares/messages: violates when [count] is below the threshold or
    exceeds [n]. *)

val record_commit : t -> seq:int -> view:int -> digest:string -> unit
(** Record a locally committed block.  Violates on [seq < 1] or when
    [seq] was already committed with a different block digest. *)

val record_execute : t -> seq:int -> unit
(** Violates when execution is out of order ([seq <> last + 1]) or when
    no commit was recorded for [seq] (execution before commit proof). *)

val record_view_entry : t -> view:int -> unit
(** Violates when the view moves backwards or repeats. *)

val record_state_transfer : t -> seq:int -> unit
(** A π-certified snapshot legitimately advances the execution frontier
    past a gap; violates only when it would move the frontier back. *)

val prune_below : t -> seq:int -> unit
(** Drop commit records below the garbage-collection horizon. *)
