(** Quorum-soundness rules (R12–R15) over {!Msgflow} summaries and
    [Config]'s threshold definitions.

    R12 extracts every threshold definition and comparison as a
    symbolic linear form over (f, c) with [n = 3f + 2c + 1] and
    discharges the shared {!Quorum_props.obligations} (intersection,
    ordering, liveness) by exact enumeration over the admissible grid
    plus a finite-difference monotonicity check that extends the
    verdict to all admissible (f, c); hand-adjusted comparisons must
    carry a checked [[@quorum.adjust k]] annotation, and every
    declared [Config.mutation] must provably violate an obligation.
    R13 requires every raw [set_timer] arm site to guard its callback
    with an assigned cancel flag (or route through a guarded local
    [set_replica_timer] wrapper).  R14 requires every
    threshold-crossing decision, in files that use the runtime
    sanitizer, to pair with a [Sanitizer.check_quorum] of the matching
    kind in the same function.  R15 rejects wildcard cases in the
    wire-size/kind tables of msg-defining files and in the
    [Cost_model] price tables. *)

(** Threshold definitions extracted from a [Config]-like file: the
    real linear form per quorum kind, plus each declared mutation
    constructor's weakened form. *)
type defs

val extract_defs : path:string -> Parsetree.structure -> defs option
(** [None] when the structure defines no threshold functions (an
    ordinary protocol file). *)

val default_defs : defs
(** The canonical formulas from {!Quorum_props} — used when the
    tree's [config.ml] is not among the linted files. *)

val lint_defs : defs -> Lint.finding list
(** The definitional half of R12 alone (exposed for unit tests). *)

val lint_source : defs:defs -> path:string -> string -> Lint.finding list
(** All four rules over one source file.  Files that themselves define
    thresholds get the definitional R12 checks; other in-scope files
    get the comparison-site, timer, sanitizer-coverage and table
    rules.  Out-of-scope paths return []. *)

val obligation_report : defs -> string
(** The deterministic R12 obligation report CI uploads: symbolic
    definitions, per-obligation PASS/FAIL with witness points, and the
    obligation each declared mutation violates. *)
