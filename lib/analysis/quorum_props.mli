(** The quorum property list shared between the runtime sanitizer and
    the static quorum-soundness analyzer (R12), so the two can't drift
    apart.  All formulas follow the paper's §4: n = 3f + 2c + 1,
    sigma = 3f + c + 1, tau = 2f + c + 1, pi = f + 1,
    vc = 2f + 2c + 1, majority = 2f + 1. *)

type kind = Sigma | Tau | Pi | Vc | Majority

val kind_name : kind -> string

(** Canonical linear form [base + fk*f + ck*c] of a threshold. *)
type linear = { base : int; fk : int; ck : int }

val canonical : kind -> linear
val n_linear : linear
val eval : linear -> f:int -> c:int -> int
val pp_linear : linear -> string

(** Concrete threshold values at one (f, c) point.  Build with
    [derive] for the canonical formulas, or directly from extracted
    symbolic expressions (the analyzer does) to test a candidate
    threshold assignment against the obligations. *)
type thresholds = {
  f : int;
  c : int;
  n : int;
  sigma : int;
  tau : int;
  pi : int;
  vc : int;
  majority : int;
}

val derive : f:int -> c:int -> thresholds
val threshold_of : thresholds -> kind -> int

(** A named proof obligation.  [applies] gates it (the majority
    obligations are c = 0 only); it holds at a point when every margin
    is [>= 0].  Margins are affine in (f, c) whenever the thresholds
    are linear forms (equalities contribute one margin per direction),
    which is what lets the analyzer extend grid enumeration to all
    admissible (f, c) via finite differences. *)
type obligation = {
  name : string;
  law : string;
  applies : thresholds -> bool;
  margins : thresholds -> int list;
}

val obligations : obligation list
val holds : obligation -> thresholds -> bool

(** Obligations that apply but do not hold at the given point. *)
val failures : thresholds -> obligation list

(** f, c >= 0 and n = 3f + 2c + 1 >= 4 (Config.validate's floor). *)
val admissible : f:int -> c:int -> bool

val grid_bound : int

(** All admissible (f, c) with both components <= [grid_bound], in
    lexicographic order. *)
val grid : unit -> (int * int) list
