(** Interprocedural per-function summaries of protocol sources, and the
    [@msgflow] graph artifact rendered from them.

    Each top-level function of a file is summarized as a linear,
    source-ordered stream of protocol events (WAL log/sync, send,
    charge, priced crypto call, local call), tagged with syntactic
    context: a nesting region path, whether the event sits inside a
    guard condition, the identifiers of enclosing iteration
    collections, and the identifiers of enclosing guard conditions.
    The {!Discipline} rules consume these summaries; {!render} turns
    them into the deterministic message-flow artifact diffed against
    [analysis/msgflow.expected]. *)

(** The threshold side of a quorum comparison: a call to a
    threshold-looking function ([*_threshold], [quorum*]) with any
    trailing [+ k] / [- k] folded into [adjust], or inline linear
    arithmetic over the config's [f] / [c]. *)
type tside =
  | T_call of { callee : string; adjust : int }
  | T_linear of Quorum_props.linear

type event =
  | Log of string  (** [wal_log _ _ (Ctor ...)]: the record constructor *)
  | Sync  (** [wal_sync _ _] *)
  | Send of { ctor : string option; bcast : bool }
      (** call to [send] or [broadcast*]; [ctor] is the outermost
          message constructor among the arguments when visible *)
  | Charge of { labels : string list; consts : string list }
      (** [Engine.charge]: Tally label strings and [Cost_model.*]
          constant names appearing in the arguments *)
  | Crypto of { klass : string; callee : string }
      (** call to a priced crypto/storage primitive; [klass] groups
          primitives priced together by the cost model *)
  | Call of string  (** call to another top-level function of the file *)
  | Threshold_cmp of { op : string; thresh : tside; annot : int option }
      (** comparison of a count against a quorum threshold, normalized
          to read [count op thresh]; [annot] is a [[@quorum.adjust k]]
          attribute value ([Some min_int] when malformed) *)
  | San_check of string
      (** [Sanitizer.check_quorum _ Kind ~count:_]: the kind
          constructor name, or ["<unknown>"] *)
  | Timer_arm of { callee : string; cb_guards : string list }
      (** a [set_timer] / [set_replica_timer] arm site; [cb_guards]
          are identifier and field names in guard conditions inside
          the callback lambdas *)

type einfo = {
  ev : event;
  line : int;
  region : int list;
      (** nesting path: region [a] encloses region [b] iff [a] is a
          prefix of [b] *)
  in_guard : bool;
  iter_vars : string list;
  guard_names : string list;
}

type func = {
  fn_name : string;
  fn_line : int;
  fn_params : string list;
  fn_events : einfo list;  (** in source order *)
}

type file = {
  path : string;
  funcs : func list;
  handled : string list;
      (** constructor names matched by the file's [on_message] *)
}

type section = {
  sec_name : string;
  sec_universe : string list;
  sec_files : file list;
}

val parse : path:string -> string -> Parsetree.structure option
(** [None] on a syntax or lexer error (Lint reports those). *)

val linear_of_expr : Parsetree.expression -> Quorum_props.linear option
(** Symbolic linear form of an expression over the parameters [f] and
    [c] (bare identifiers or record fields); [None] when the
    expression is not linear in that vocabulary.  The quorum analyzer
    uses this on [Config]'s threshold definitions. *)

val tside_of_expr : Parsetree.expression -> tside option

val summarize : path:string -> Parsetree.structure -> file

val msg_constructors : Parsetree.structure -> string list
(** Constructors of every [type msg] variant in the structure, sorted. *)

val find_func : func list -> string -> func option

val reachable_events : func list -> string -> einfo list
(** Events of the named function plus those of every local function
    transitively reachable through [Call] events (cycles cut). *)

val is_handler : string -> bool
(** Does the function name start with [on_]? *)

val render : section list -> string
(** The deterministic [@msgflow] artifact. *)
