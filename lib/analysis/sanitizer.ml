type quorum = Sigma | Tau | Pi | Vc | Majority

exception Violation of string

type t = {
  enabled : bool;
  f : int;
  c : int;
  commits : (int, int * string) Hashtbl.t;  (* seq -> (view, block digest) *)
  mutable last_executed : int;
  mutable view : int;
  mutable checks : int;
}

let create ?(enabled = true) ~f ~c () =
  {
    enabled;
    f;
    c;
    commits = Hashtbl.create (if enabled then 256 else 1);
    last_executed = 0;
    view = 0;
    checks = 0;
  }

let enabled t = t.enabled
let checks_run t = t.checks

let violate fmt = Printf.ksprintf (fun msg -> raise (Violation msg)) fmt

(* Independent re-derivation of the paper's quorum arithmetic (§4):
   deliberately not computed via Config so the two implementations
   cross-check each other. *)
let n_of t = (3 * t.f) + (2 * t.c) + 1

let threshold t = function
  | Sigma -> (3 * t.f) + t.c + 1
  | Tau -> (2 * t.f) + t.c + 1
  | Pi -> t.f + 1
  | Vc -> (2 * t.f) + (2 * t.c) + 1
  | Majority -> (2 * t.f) + 1

let quorum_name = function
  | Sigma -> "sigma"
  | Tau -> "tau"
  | Pi -> "pi"
  | Vc -> "view-change"
  | Majority -> "majority"

let check_config t ~n =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if t.f < 0 then violate "config: f = %d is negative" t.f;
    if t.c < 0 then violate "config: c = %d is negative" t.c;
    if not (Int.equal n (n_of t)) then
      violate "config: n = %d but 3f + 2c + 1 = %d (f=%d c=%d)" n (n_of t) t.f
        t.c;
    let sigma = threshold t Sigma
    and tau = threshold t Tau
    and pi = threshold t Pi
    and vc = threshold t Vc in
    if sigma > n then violate "config: sigma threshold %d exceeds n = %d" sigma n;
    if tau > sigma then
      violate "config: tau threshold %d exceeds sigma threshold %d" tau sigma;
    if pi > tau then
      violate "config: pi threshold %d exceeds tau threshold %d" pi tau;
    if vc > n then
      violate "config: view-change quorum %d exceeds n = %d" vc n;
    (* Any two tau quorums intersect in at least one honest replica. *)
    if (2 * tau) - n < t.f + 1 then
      violate "config: tau quorums intersect in %d < f + 1 replicas"
        ((2 * tau) - n)
  end

let check_quorum t q ~count =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    let k = threshold t q in
    if count < k then
      violate "%s quorum claimed with %d shares, threshold is %d"
        (quorum_name q) count k;
    if count > n_of t then
      violate "%s quorum of %d exceeds the replica count %d" (quorum_name q)
        count (n_of t)
  end

let record_commit t ~seq ~view ~digest =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if seq < 1 then violate "commit of non-positive sequence number %d" seq;
    if view < 0 then violate "commit of seq %d in negative view %d" seq view;
    match Hashtbl.find_opt t.commits seq with
    | Some (_, digest') when not (String.equal digest digest') ->
        violate "conflicting commit for seq %d: two distinct blocks" seq
    | _ -> Hashtbl.replace t.commits seq (view, digest)
  end

let record_execute t ~seq =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if not (Int.equal seq (t.last_executed + 1)) then
      violate "out-of-order execution: seq %d after last executed %d" seq
        t.last_executed;
    if not (Hashtbl.mem t.commits seq) then
      violate "execution of seq %d before its commit proof was verified" seq;
    t.last_executed <- seq
  end

let record_view_entry t ~view =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if view <= t.view then
      violate "view moved backwards: entering %d from %d" view t.view;
    t.view <- view
  end

let record_state_transfer t ~seq =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if seq < t.last_executed then
      violate "state transfer moved the execution frontier back: %d < %d" seq
        t.last_executed;
    t.last_executed <- seq
  end

let prune_below t ~seq =
  if t.enabled then begin
    let stale =
      Hashtbl.fold (fun s _ acc -> if s < seq then s :: acc else acc) t.commits []
      |> List.sort Int.compare
    in
    List.iter (Hashtbl.remove t.commits) stale
  end
