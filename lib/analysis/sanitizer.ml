type quorum = Quorum_props.kind = Sigma | Tau | Pi | Vc | Majority

exception Violation of string

type t = {
  enabled : bool;
  f : int;
  c : int;
  commits : (int, int * string) Hashtbl.t;  (* seq -> (view, block digest) *)
  mutable last_executed : int;
  mutable view : int;
  mutable checks : int;
}

let create ?(enabled = true) ~f ~c () =
  {
    enabled;
    f;
    c;
    commits = Hashtbl.create (if enabled then 256 else 1);
    last_executed = 0;
    view = 0;
    checks = 0;
  }

let enabled t = t.enabled
let checks_run t = t.checks

let violate fmt = Printf.ksprintf (fun msg -> raise (Violation msg)) fmt

(* Thresholds re-derived from (f, c) via the shared property module —
   deliberately not computed via Config, so the protocol's quorum
   arithmetic and the sanitizer's cross-check each other.  The
   obligation list itself lives in Quorum_props, shared with the
   static analyzer's R12 rule. *)
let derived t = Quorum_props.derive ~f:t.f ~c:t.c
let n_of t = (derived t).Quorum_props.n
let threshold t q = Quorum_props.threshold_of (derived t) q
let quorum_name = Quorum_props.kind_name

let check_config t ~n =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if t.f < 0 then violate "config: f = %d is negative" t.f;
    if t.c < 0 then violate "config: c = %d is negative" t.c;
    if not (Int.equal n (n_of t)) then
      violate "config: n = %d but 3f + 2c + 1 = %d (f=%d c=%d)" n (n_of t) t.f
        t.c;
    match Quorum_props.failures (derived t) with
    | [] -> ()
    | o :: _ ->
        violate "config: quorum obligation %s violated (%s) at f=%d c=%d"
          o.Quorum_props.name o.Quorum_props.law t.f t.c
  end

let check_quorum t q ~count =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    let k = threshold t q in
    if count < k then
      violate "%s quorum claimed with %d shares, threshold is %d"
        (quorum_name q) count k;
    if count > n_of t then
      violate "%s quorum of %d exceeds the replica count %d" (quorum_name q)
        count (n_of t)
  end

let record_commit t ~seq ~view ~digest =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if seq < 1 then violate "commit of non-positive sequence number %d" seq;
    if view < 0 then violate "commit of seq %d in negative view %d" seq view;
    match Hashtbl.find_opt t.commits seq with
    | Some (_, digest') when not (String.equal digest digest') ->
        violate "conflicting commit for seq %d: two distinct blocks" seq
    | _ -> Hashtbl.replace t.commits seq (view, digest)
  end

let record_execute t ~seq =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if not (Int.equal seq (t.last_executed + 1)) then
      violate "out-of-order execution: seq %d after last executed %d" seq
        t.last_executed;
    if not (Hashtbl.mem t.commits seq) then
      violate "execution of seq %d before its commit proof was verified" seq;
    t.last_executed <- seq
  end

let record_view_entry t ~view =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if view <= t.view then
      violate "view moved backwards: entering %d from %d" view t.view;
    t.view <- view
  end

let record_state_transfer t ~seq =
  if t.enabled then begin
    t.checks <- t.checks + 1;
    if seq < t.last_executed then
      violate "state transfer moved the execution frontier back: %d < %d" seq
        t.last_executed;
    t.last_executed <- seq
  end

let prune_below t ~seq =
  if t.enabled then begin
    let stale =
      Hashtbl.fold (fun s _ acc -> if s < seq then s :: acc else acc) t.commits []
      |> List.sort Int.compare
    in
    List.iter (Hashtbl.remove t.commits) stale
  end
