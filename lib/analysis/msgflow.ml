(* Interprocedural per-function summaries of protocol sources.

   For every top-level function in a file this module extracts a linear
   stream of protocol-relevant events — WAL appends/syncs, message
   sends/broadcasts, cost charges, priced crypto calls, and calls to
   other local functions — each tagged with enough syntactic context
   (nesting region, guard names, iteration variables) for the
   discipline rules (R9-R11, see Discipline) to reason about ordering,
   coverage, and rate-limiting.  The same summaries drive the
   [@msgflow] graph artifact: which `on_*` handler can emit which
   message constructor and log which WAL record, resolved through local
   helper calls.

   The extraction is deliberately syntactic: events are recorded in
   source order, lambda bodies are inlined where they appear, and no
   data flow is tracked.  The discipline rules document the resulting
   imprecision; the goal is a checker that is strict on the shapes the
   protocol actually uses, not a general verifier. *)

(* The threshold side of a quorum comparison, as the quorum analyzer
   (R12/R14) needs it: either a call to a threshold-looking function
   with a trailing [+ k] / [- k] adjustment folded in, or inline
   linear arithmetic over the config's [.f] / [.c]. *)
type tside =
  | T_call of { callee : string; adjust : int }
  | T_linear of Quorum_props.linear

type event =
  | Log of string  (** [wal_log _ _ (Ctor ...)] — WAL record constructor *)
  | Sync  (** [wal_sync _ _] *)
  | Send of { ctor : string option; bcast : bool }
      (** [send]/[broadcast*] call; [ctor] is the outermost message
          constructor among the arguments when syntactically visible *)
  | Charge of { labels : string list; consts : string list }
      (** [Engine.charge]: Tally labels and [Cost_model.*] constants *)
  | Crypto of { klass : string; callee : string }
      (** call into a priced crypto/storage primitive *)
  | Call of string  (** call to another top-level function of the file *)
  | Threshold_cmp of { op : string; thresh : tside; annot : int option }
      (** comparison of a count against a quorum threshold, normalized
          so the count reads [count op thresh]; [annot] is the value of
          a [[@quorum.adjust k]] attribute on the comparison
          ([Some min_int] when the payload is malformed) *)
  | San_check of string
      (** [Sanitizer.check_quorum _ Kind ~count:_] — the quorum kind
          constructor name, or ["<unknown>"] *)
  | Timer_arm of { callee : string; cb_guards : string list }
      (** [set_timer]/[set_replica_timer] arm site; [cb_guards] are the
          identifier and field names in guard conditions inside the
          callback lambdas *)

type einfo = {
  ev : event;
  line : int;
  region : int list;
      (** nesting path: a region is an ancestor of another iff its path
          is a prefix of the other's *)
  in_guard : bool;  (** the event sits inside an [if]/[when] condition *)
  iter_vars : string list;
      (** collection expressions' identifiers for enclosing iteration
          combinators ([List.iter] & co.) *)
  guard_names : string list;
      (** identifiers appearing in enclosing [if]/[when] conditions *)
}

type func = {
  fn_name : string;
  fn_line : int;
  fn_params : string list;
  fn_events : einfo list;
}

type file = {
  path : string;
  funcs : func list;
  handled : string list;
      (** constructor names matched by this file's [on_message] *)
}

type section = {
  sec_name : string;
  sec_universe : string list;  (** the [msg] variant's constructors *)
  sec_files : file list;
}

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Some structure
  | exception Syntaxerr.Error _ -> None
  | exception Lexer.Error (_, _) -> None

(* ------------------------------------------------------------------ *)
(* Longident / expression helpers *)

let rec last_component (lid : Longident.t) =
  match lid with
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> last_component l

(* Last module component (if any) and final name: [Engine.charge] ->
   (Some "Engine", "charge"); [Sbft_store.Wal.append] -> (Some "Wal",
   "append"); a bare ident or field access -> (None, name). *)
let last2 (lid : Longident.t) =
  match lid with
  | Longident.Lident f -> (None, f)
  | Longident.Ldot (prefix, f) -> (Some (last_component prefix), f)
  | Longident.Lapply (_, l) -> (None, last_component l)

let rec head_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (last2 txt)
  | Pexp_field (_, { txt; _ }) -> Some (None, last_component txt)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> head_name e
  | _ -> None

let rec construct_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> Some (last_component txt)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> construct_name e
  | _ -> None

let first_construct args =
  List.fold_left
    (fun acc (_, a) ->
      match acc with Some _ -> acc | None -> construct_name a)
    None args

let rec is_lambda (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) -> is_lambda e
  | _ -> false

(* All unqualified identifiers under [e] (collection expressions of
   iteration combinators: which variables feed the loop). *)
let expr_idents e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_ident { txt = Longident.Lident s; _ } -> acc := s :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e;
  List.sort_uniq String.compare !acc

(* Last components of every identifier under a condition, qualified or
   not — so [Hashtbl.mem seen r] contributes "mem", "seen", "r". *)
let cond_names e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ } -> acc := last_component txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e;
  List.sort_uniq String.compare !acc

let rec pat_var_names (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pat_var_names p
  | Ppat_constraint (p, _) -> pat_var_names p
  | Ppat_tuple ps -> List.concat_map pat_var_names ps
  | _ -> []

(* String literals (Tally labels) and [Cost_model.*] constants inside
   the arguments of an [Engine.charge] call. *)
let charge_info args =
  let labels = ref [] and consts = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) -> labels := s :: !labels
          | Pexp_ident { txt; _ } -> (
              match last2 txt with
              | Some "Cost_model", f -> consts := f :: !consts
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  List.iter (fun (_, a) -> it.expr it a) args;
  (List.sort_uniq String.compare !labels, List.sort_uniq String.compare !consts)

(* ------------------------------------------------------------------ *)
(* Quorum-threshold extraction (R12/R13/R14 raw material) *)

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.equal (String.sub s i ls) sub || go (i + 1)) in
  go 0

(* A callee that plausibly computes a quorum threshold: the Config
   accessors (sigma_threshold, quorum_vc, ...) and local aliases like
   pbft's [let quorum t = ...].  The analyzer resolves the name against
   the definitions it extracted; an unresolvable name is an R12
   finding, not a silent pass. *)
let is_threshold_name f = contains ~sub:"threshold" f || contains ~sub:"quorum" f

let int_const (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> int_of_string_opt s
  | _ -> None

(* Symbolic linear form of an expression over the parameters f and c,
   appearing as bare identifiers or as record fields ([t.f],
   [config.Config.c]).  [None] when the expression is not linear in
   that vocabulary. *)
let rec linear_of_expr (e : Parsetree.expression) : Quorum_props.linear option =
  let open Quorum_props in
  let var name =
    match name with
    | "f" -> Some { base = 0; fk = 1; ck = 0 }
    | "c" -> Some { base = 0; fk = 0; ck = 1 }
    | _ -> None
  in
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) ->
      Option.map (fun base -> { base; fk = 0; ck = 0 }) (int_of_string_opt s)
  | Pexp_ident { txt; _ } -> var (last_component txt)
  | Pexp_field (_, { txt; _ }) -> var (last_component txt)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> linear_of_expr e
  | Pexp_apply (h, [ (_, a); (_, b) ]) -> (
      match head_name h with
      | Some (None, "+") -> lift2 (fun x y ->
            { base = x.base + y.base; fk = x.fk + y.fk; ck = x.ck + y.ck })
            (linear_of_expr a) (linear_of_expr b)
      | Some (None, "-") -> lift2 (fun x y ->
            { base = x.base - y.base; fk = x.fk - y.fk; ck = x.ck - y.ck })
            (linear_of_expr a) (linear_of_expr b)
      | Some (None, "*") -> (
          match (int_const a, int_const b) with
          | Some k, _ -> Option.map (fun l ->
                { base = k * l.base; fk = k * l.fk; ck = k * l.ck })
                (linear_of_expr b)
          | _, Some k -> Option.map (fun l ->
                { base = k * l.base; fk = k * l.fk; ck = k * l.ck })
                (linear_of_expr a)
          | None, None -> None)
      | _ -> None)
  | _ -> None

and lift2 f a b =
  match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

(* The threshold side of a comparison: a threshold-function call with
   any trailing [+/- k] folded into [adjust], else an inline linear
   form that actually mentions f or c. *)
let rec tside_of_expr (e : Parsetree.expression) : tside option =
  let as_linear () =
    match linear_of_expr e with
    | Some l when not (Int.equal l.Quorum_props.fk 0 && Int.equal l.Quorum_props.ck 0) ->
        Some (T_linear l)
    | _ -> None
  in
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> tside_of_expr e
  | Pexp_apply (h, [ (_, a); (_, b) ]) -> (
      match head_name h with
      | Some (None, (("+" | "-") as op)) -> (
          let sign = if String.equal op "+" then 1 else -1 in
          match (tside_of_expr a, int_const b) with
          | Some (T_call t), Some k ->
              Some (T_call { t with adjust = t.adjust + (sign * k) })
          | _ -> as_linear ())
      | Some (_, f) when is_threshold_name f ->
          Some (T_call { callee = f; adjust = 0 })
      | _ -> as_linear ())
  | Pexp_apply (h, _) -> (
      match head_name h with
      | Some (_, f) when is_threshold_name f ->
          Some (T_call { callee = f; adjust = 0 })
      | _ -> as_linear ())
  | _ -> as_linear ()

let cmp_ops = [ "<"; ">"; "<="; ">=" ]

let flip_op = function
  | "<" -> ">"
  | ">" -> "<"
  | "<=" -> ">="
  | ">=" -> "<="
  | op -> op

let adjust_annot (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt "quorum.adjust" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_integer (s, None)); _ }, _);
                _;
              };
            ] ->
            Some (Option.value (int_of_string_opt s) ~default:min_int)
        | _ -> Some min_int
      else None)
    attrs

let san_kinds = [ "Sigma"; "Tau"; "Pi"; "Vc"; "Majority" ]

let san_kind_of_args args =
  List.fold_left
    (fun acc (_, a) ->
      match acc with
      | Some _ -> acc
      | None -> (
          match construct_name a with
          | Some c when List.exists (String.equal c) san_kinds -> Some c
          | _ -> None))
    None args

(* Identifier and field names appearing in guard conditions ([if] /
   [while] / [when]) inside the lambda arguments of a timer-arm call:
   the cancel tokens R13 looks for ([retired], [done_], ...). *)
let lambda_guard_names args =
  let acc = ref [] in
  let cond_tokens e =
    let toks = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it ex ->
            (match ex.Parsetree.pexp_desc with
            | Pexp_ident { txt; _ } -> toks := last_component txt :: !toks
            | Pexp_field (_, { txt; _ }) -> toks := last_component txt :: !toks
            | _ -> ());
            Ast_iterator.default_iterator.expr it ex);
      }
    in
    it.expr it e;
    !toks
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_ifthenelse (cond, _, _) | Pexp_while (cond, _) ->
              acc := cond_tokens cond @ !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
      case =
        (fun it (cs : Parsetree.case) ->
          (match cs.pc_guard with
          | Some g -> acc := cond_tokens g @ !acc
          | None -> ());
          Ast_iterator.default_iterator.case it cs);
    }
  in
  List.iter (fun (_, a) -> if is_lambda a then it.expr it a) args;
  List.sort_uniq String.compare !acc

(* ------------------------------------------------------------------ *)
(* Priced crypto/storage primitives.

   Module is matched by its *last* component so both [Threshold.verify]
   and [Sbft_crypto.Threshold.verify] resolve.  The klass groups
   primitives the cost model prices together, so a single charge can
   cover any callee of its klass (see Discipline R10). *)

let priced =
  [
    (("Threshold", "share_sign"), "share_sign");
    (("Threshold", "verify"), "verify");
    (("Threshold", "share_verify"), "share_verify");
    (("Threshold", "share_verify_cached"), "share_verify");
    (("Threshold", "combine"), "combine");
    (("Threshold", "combine_verified"), "combine");
    (("Group_sig", "combine"), "combine");
    (("Group_sig", "verify"), "verify");
    (("Sha256", "digest"), "hash");
    (("Merkle", "build"), "merkle");
    (("Merkle", "prove"), "merkle");
    (("Merkle", "verify"), "merkle");
    (("Wal", "append"), "wal_append");
    (("Wal", "sync"), "wal_fsync");
    (("Pki", "sign"), "rsa_sign");
    (("Pki", "verify"), "rsa_verify");
    (("Keys", "verify_request"), "rsa_verify");
    (("View_change", "validate_message"), "verify");
    (("Auth_store", "verify_op_proof"), "merkle");
    (("Auth_store", "verify_query_proof"), "merkle");
  ]

let iter_modules = [ "List"; "Array"; "Seq"; "Hashtbl"; "Det" ]

let iter_names =
  [
    "iter"; "iteri"; "map"; "mapi"; "fold_left"; "fold"; "filter";
    "filter_map"; "concat_map"; "for_all"; "exists"; "iter_sorted";
  ]

let is_iter_combinator m f =
  List.exists (String.equal m) iter_modules
  && List.exists (String.equal f) iter_names

let has_pfx ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* ------------------------------------------------------------------ *)
(* The walker *)

type wctx = {
  region : int list;
  in_guard : bool;
  iter_vars : string list;
  guard_names : string list;
}

type wstate = {
  events : einfo list ref;  (* reversed; List.rev at the end *)
  fresh : int ref;
  locals : (string, unit) Hashtbl.t;
}

let child st c =
  incr st.fresh;
  { c with region = c.region @ [ !(st.fresh) ] }

let emit st (c : wctx) ev line =
  st.events :=
    {
      ev;
      line;
      region = c.region;
      in_guard = c.in_guard;
      iter_vars = c.iter_vars;
      guard_names = c.guard_names;
    }
    :: !(st.events)

let rec walk st (c : wctx) (e : Parsetree.expression) =
  let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
  match e.pexp_desc with
  | Pexp_apply (head, args) -> apply st c line e.pexp_attributes head args
  | Pexp_ifthenelse (cond, e_then, e_else) ->
      walk st { c with in_guard = true } cond;
      let g = c.guard_names @ cond_names cond in
      walk st { (child st c) with guard_names = g } e_then;
      (match e_else with
      | Some e2 -> walk st { (child st c) with guard_names = g } e2
      | None -> ())
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk st c scrut;
      walk_cases st c cases
  | Pexp_function cases -> walk_cases st c cases
  | Pexp_fun (_, default, _, body) ->
      (match default with Some d -> walk st c d | None -> ());
      walk st (child st c) body
  | Pexp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Parsetree.value_binding) -> walk st c vb.pvb_expr)
        vbs;
      walk st c body
  | Pexp_sequence (e1, e2) ->
      walk st c e1;
      walk st c e2
  | Pexp_for (_, e1, e2, _, body) ->
      walk st c e1;
      walk st c e2;
      walk st c body
  | Pexp_while (cond, body) ->
      walk st { c with in_guard = true } cond;
      walk st { (child st c) with guard_names = c.guard_names @ cond_names cond } body
  | _ -> walk_children st c e

and walk_cases st c cases =
  List.iter
    (fun (case : Parsetree.case) ->
      let g =
        match case.pc_guard with
        | Some ge ->
            walk st { c with in_guard = true } ge;
            c.guard_names @ cond_names ge
        | None -> c.guard_names
      in
      walk st { (child st c) with guard_names = g } case.pc_rhs)
    cases

and walk_children st c e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ ce -> walk st c ce);
    }
  in
  Ast_iterator.default_iterator.expr it e

and walk_args st c args = List.iter (fun (_, a) -> walk st c a) args

and apply st c line attrs head args =
  match head_name head with
  | Some (None, op) when List.exists (String.equal op) cmp_ops -> (
      (match args with
      | [ (_, lhs); (_, rhs) ] -> (
          (* Normalize to [count op thresh]: the threshold side is
             whichever operand extracts (right preferred — the
             protocol writes [Hashtbl.length x >= threshold]). *)
          match tside_of_expr rhs with
          | Some thresh ->
              emit st c
                (Threshold_cmp { op; thresh; annot = adjust_annot attrs })
                line
          | None -> (
              match tside_of_expr lhs with
              | Some thresh ->
                  emit st c
                    (Threshold_cmp
                       { op = flip_op op; thresh; annot = adjust_annot attrs })
                    line
              | None -> ()))
      | _ -> ());
      walk_args st c args)
  | Some (_, "check_quorum") ->
      emit st c
        (San_check (Option.value (san_kind_of_args args) ~default:"<unknown>"))
        line;
      walk_args st c args
  | Some (_, (("set_timer" | "set_replica_timer") as callee)) ->
      emit st c
        (Timer_arm { callee; cb_guards = lambda_guard_names args })
        line;
      walk_args st c args
  | Some (_, "wal_log") ->
      let ctor = Option.value (first_construct args) ~default:"<unknown>" in
      emit st c (Log ctor) line;
      walk_args st c args
  | Some (_, "wal_sync") ->
      emit st c Sync line;
      walk_args st c args
  | Some (_, f) when String.equal f "send" || has_pfx ~prefix:"broadcast" f ->
      emit st c
        (Send
           {
             ctor = first_construct args;
             bcast = has_pfx ~prefix:"broadcast" f;
           })
        line;
      walk_args st c args
  | Some (_, "charge") ->
      let labels, consts = charge_info args in
      emit st c (Charge { labels; consts }) line
  | Some (Some m, f) when List.mem_assoc (m, f) priced ->
      emit st c
        (Crypto { klass = List.assoc (m, f) priced; callee = m ^ "." ^ f })
        line;
      walk_args st c args
  | Some (Some m, f) when is_iter_combinator m f ->
      let lambdas, rest = List.partition (fun (_, a) -> is_lambda a) args in
      let extra = List.concat_map (fun (_, a) -> expr_idents a) rest in
      let c_lam =
        {
          c with
          iter_vars = List.sort_uniq String.compare (c.iter_vars @ extra);
        }
      in
      List.iter (fun (_, a) -> walk st c_lam a) lambdas;
      List.iter (fun (_, a) -> walk st c a) rest
  | Some (None, f) when Hashtbl.mem st.locals f ->
      emit st c (Call f) line;
      walk_args st c args
  | _ ->
      walk st c head;
      walk_args st c args

(* ------------------------------------------------------------------ *)
(* File summaries *)

let rec peel_params acc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> peel_params (acc @ pat_var_names pat) body
  | Pexp_newtype (_, body) -> peel_params acc body
  | Pexp_constraint (e, _) -> peel_params acc e
  | _ -> (acc, e)

let structure_bindings structure =
  List.concat_map
    (fun (si : Parsetree.structure_item) ->
      match si.pstr_desc with Pstr_value (_, vbs) -> vbs | _ -> [])
    structure

(* Constructor names matched anywhere inside [on_message]'s patterns;
   intersected with the message universe by the renderer, so binder
   patterns like [Some]/[None] wash out. *)
let handled_ctors structure =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) ->
              acc := last_component txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  List.iter
    (fun (vb : Parsetree.value_binding) ->
      match pat_var_names vb.pvb_pat with
      | [ "on_message" ] -> it.value_binding it vb
      | _ -> ())
    (structure_bindings structure);
  List.sort_uniq String.compare !acc

let summarize ~path structure =
  let bindings = structure_bindings structure in
  let locals = Hashtbl.create 64 in
  List.iter
    (fun (vb : Parsetree.value_binding) ->
      List.iter
        (fun n -> Hashtbl.replace locals n ())
        (pat_var_names vb.pvb_pat))
    bindings;
  let fresh = ref 0 in
  let funcs =
    List.filter_map
      (fun (vb : Parsetree.value_binding) ->
        match pat_var_names vb.pvb_pat with
        | [ name ] ->
            let params, body = peel_params [] vb.pvb_expr in
            let st = { events = ref []; fresh; locals } in
            walk st
              { region = []; in_guard = false; iter_vars = []; guard_names = [] }
              body;
            Some
              {
                fn_name = name;
                fn_line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
                fn_params = params;
                fn_events = List.rev !(st.events);
              }
        | _ -> None)
      bindings
  in
  { path; funcs; handled = handled_ctors structure }

let msg_constructors structure =
  List.concat_map
    (fun (si : Parsetree.structure_item) ->
      match si.pstr_desc with
      | Pstr_type (_, decls) ->
          List.concat_map
            (fun (d : Parsetree.type_declaration) ->
              if String.equal d.ptype_name.txt "msg" then
                match d.ptype_kind with
                | Ptype_variant ctors ->
                    List.map
                      (fun (c : Parsetree.constructor_declaration) ->
                        c.pcd_name.txt)
                      ctors
                | _ -> []
              else [])
            decls
      | _ -> [])
    structure
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Call-graph closure (within one file) *)

let find_func funcs name =
  List.find_opt (fun f -> String.equal f.fn_name name) funcs

(* Events of [start] and of every local function transitively reachable
   through [Call] events.  Calls to unknown names are ignored (they are
   either stdlib or cross-module; cross-module helpers are summarized
   where they live). *)
let reachable_events funcs start =
  let rec go visited acc = function
    | [] -> List.concat (List.rev acc)
    | name :: rest ->
        if List.exists (String.equal name) visited then go visited acc rest
        else (
          match find_func funcs name with
          | None -> go (name :: visited) acc rest
          | Some f ->
              let calls =
                List.filter_map
                  (fun e -> match e.ev with Call n -> Some n | _ -> None)
                  f.fn_events
              in
              go (name :: visited) (f.fn_events :: acc) (calls @ rest))
  in
  go [] [] [ start ]

let is_handler name = has_pfx ~prefix:"on_" name

(* ------------------------------------------------------------------ *)
(* Rendering the @msgflow artifact *)

let field buf name vals =
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n" name
       (match vals with [] -> "-" | vs -> String.concat " " vs))

let render sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# SBFT message-flow graph: for each protocol section, which message\n\
     # constructors are handled and sent, and per handler (resolved through\n\
     # local helper calls) which messages it can emit and which WAL records\n\
     # it logs.  Regenerated by `dune build @msgflow`; after a vetted\n\
     # protocol change, update the committed spec with `dune promote`.\n";
  List.iter
    (fun sec ->
      Buffer.add_string buf
        (Printf.sprintf "\n== %s (%d messages) ==\n" sec.sec_name
           (List.length sec.sec_universe));
      let mem x xs = List.exists (String.equal x) xs in
      let handled_all =
        List.sort_uniq String.compare
          (List.concat_map (fun fl -> fl.handled) sec.sec_files)
      in
      let handled = List.filter (fun c -> mem c handled_all) sec.sec_universe in
      let unhandled =
        List.filter (fun c -> not (mem c handled)) sec.sec_universe
      in
      let sent_all =
        List.concat_map
          (fun fl ->
            List.concat_map
              (fun f ->
                List.filter_map
                  (fun e ->
                    match e.ev with
                    | Send { ctor = Some ctor; _ } -> Some ctor
                    | _ -> None)
                  f.fn_events)
              fl.funcs)
          sec.sec_files
        |> List.sort_uniq String.compare
      in
      let sent = List.filter (fun c -> mem c sent_all) sec.sec_universe in
      let never = List.filter (fun c -> not (mem c sent)) sec.sec_universe in
      field buf "handled:" handled;
      field buf "unhandled:" unhandled;
      field buf "sent:" sent;
      field buf "never-sent:" never;
      List.iter
        (fun fl ->
          let handlers =
            List.filter (fun f -> is_handler f.fn_name) fl.funcs
            |> List.sort (fun a b -> String.compare a.fn_name b.fn_name)
          in
          match handlers with
          | [] -> ()
          | _ ->
              Buffer.add_string buf (Printf.sprintf "\n-- %s --\n" fl.path);
              List.iter
                (fun h ->
                  let evs = reachable_events fl.funcs h.fn_name in
                  let sends =
                    List.filter_map
                      (fun e ->
                        match e.ev with
                        | Send { ctor = Some ctor; _ } -> Some ctor
                        | Send { ctor = None; _ } -> Some "<unresolved>"
                        | _ -> None)
                      evs
                    |> List.sort_uniq String.compare
                  in
                  let logs =
                    List.filter_map
                      (fun e -> match e.ev with Log r -> Some r | _ -> None)
                      evs
                    |> List.sort_uniq String.compare
                  in
                  Buffer.add_string buf (Printf.sprintf "%s:\n" h.fn_name);
                  field buf "  sends" sends;
                  field buf "  logs " logs)
                handlers)
        (List.sort
           (fun a b -> String.compare a.path b.path)
           sec.sec_files))
    sections;
  Buffer.contents buf
