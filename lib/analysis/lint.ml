type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
}

let pp_finding f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message

(* ------------------------------------------------------------------ *)
(* Path scoping *)

let normalize path =
  let path =
    if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun ch -> if Char.equal ch '\\' then '/' else ch) path

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let protocol_scope path =
  List.exists
    (fun prefix -> has_prefix ~prefix path)
    [ "lib/core/"; "lib/pbft/"; "lib/crypto/" ]

let config_file path = String.equal path "lib/core/config.ml"
let lib_scope path = has_prefix ~prefix:"lib/" path

(* Files blessed to use the constructs the determinism rules ban:
   [lib/sim/rng.ml] is the one home for randomness, [lib/sim/det.ml]
   wraps hash tables in sorted views. *)
let rng_file path = String.equal path "lib/sim/rng.ml"
let det_file path = String.equal path "lib/sim/det.ml"

(* R6 runs over the message-handler layers only: the modules that turn
   network input into protocol state. *)
let handler_scope path =
  List.exists
    (fun prefix -> has_prefix ~prefix path)
    [ "lib/core/"; "lib/pbft/" ]

(* ------------------------------------------------------------------ *)
(* AST predicates *)

open Parsetree

let eq_operator : Longident.t -> bool = function
  | Lident ("=" | "<>") -> true
  | Ldot (Lident "Stdlib", ("=" | "<>")) -> true
  | _ -> false

let polymorphic_compare : Longident.t -> bool = function
  | Lident "compare" -> true
  | Ldot (Lident "Stdlib", "compare") -> true
  | _ -> false

let hashtbl_hash : Longident.t -> bool = function
  | Ldot (Lident "Hashtbl", ("hash" | "seeded_hash")) -> true
  | Ldot (Ldot (Lident "Stdlib", "Hashtbl"), ("hash" | "seeded_hash")) -> true
  | _ -> false

(* Partial stdlib functions and their total replacements (R2). *)
let partial_functions =
  [
    ("List", "hd", "List.nth_opt xs 0 / match");
    ("List", "nth", "List.nth_opt");
    ("List", "assoc", "List.assoc_opt");
    ("List", "find", "List.find_opt");
    ("Option", "get", "pattern matching / Option.value");
    ("Hashtbl", "find", "Hashtbl.find_opt");
  ]

let partial_function : Longident.t -> (string * string * string) option = function
  | Ldot (Lident m, f) | Ldot (Ldot (Lident "Stdlib", m), f) ->
      List.find_opt
        (fun (m', f', _) -> String.equal m m' && String.equal f f')
        partial_functions
  | _ -> None

(* Operands whose polymorphic comparison is a tag-only check: constant
   literals and nullary constructors ([None], [true], [[]], variant
   tags...).  Comparing anything else structurally is what R1 bans. *)
let constant_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct (_, None) -> true
  | Pexp_variant (_, None) -> true
  | _ -> false

let int_literal e =
  match e.pexp_desc with Pexp_constant (Pconst_integer _) -> true | _ -> false

(* An [f]- or [c]-valued expression for the quorum-literal rule: a bare
   identifier or a record field named [f] or [c]. *)
let fault_parameter e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident ("f" | "c"); _ } -> true
  | Pexp_field (_, { txt = Lident ("f" | "c") | Ldot (_, ("f" | "c")); _ }) -> true
  | _ -> false

let catch_all_case (case : case) =
  match (case.pc_lhs.ppat_desc, case.pc_guard) with
  | Ppat_any, None -> true
  | Ppat_exception { ppat_desc = Ppat_any; _ }, None -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* R7: determinism predicates *)

let last_component : Longident.t -> string = function
  | Lident f -> f
  | Ldot (_, f) -> f
  | Lapply _ -> ""

let random_ident : Longident.t -> bool = function
  | Ldot (Lident "Random", _)
  | Ldot (Ldot (Lident "Stdlib", "Random"), _) -> true
  | _ -> false

let unix_ident : Longident.t -> bool = function
  | Lident "Unix" | Ldot (Lident "Unix", _) -> true
  | _ -> false

let host_clock_ident : Longident.t -> bool = function
  | Ldot (Lident "Sys", "time")
  | Ldot (Ldot (Lident "Stdlib", "Sys"), "time") -> true
  | _ -> false

let physical_eq : Longident.t -> bool = function
  | Lident ("==" | "!=") -> true
  | Ldot (Lident "Stdlib", ("==" | "!=")) -> true
  | _ -> false

(* Unordered consumers of a hash table: iteration order is unspecified,
   so results must pass through an explicit sort (or live in det.ml). *)
let hashtbl_order_ident : Longident.t -> bool = function
  | Ldot (Lident "Hashtbl", ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values"))
  | Ldot
      ( Ldot (Lident "Stdlib", "Hashtbl"),
        ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ) ->
      true
  | _ -> false

let hashtbl_fold_ident : Longident.t -> bool = function
  | Ldot (Lident "Hashtbl", "fold")
  | Ldot (Ldot (Lident "Stdlib", "Hashtbl"), "fold") -> true
  | _ -> false

let list_sort_ident : Longident.t -> bool = function
  | Ldot (Lident "List", ("sort" | "sort_uniq" | "stable_sort" | "fast_sort")) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* R6: authenticate-before-use taint analysis *)

module Taint = struct
  type t = {
    source_prefixes : string list;
    source_call_prefixes : string list;
    implicit_params : string list;
    sanitizers : string list;
    sink_names : string list;
    sink_prefixes : string list;
  }

  let default =
    {
      source_prefixes = [ "on_" ];
      (* Adversary observation accessors: the schedule fuzzer's adaptive
         attacker reads protocol state through the obs_* surface
         (Replica.obs_view, obs_frontier, ...), so anything derived from
         an obs_* call is attacker-visible by construction.  Letting it
         reach a state-mutating sink would mean protocol behavior
         depends on the attacker's window into it — taint the results
         wherever they appear, not only inside on_* handlers. *)
      source_call_prefixes = [ "obs_" ];
      (* Scalar routing / ordering fields and the handler's own state.
         These are covered by the link-layer MAC every replica checks on
         receipt (Cost_model.message_auth_check / rsa_verify charged in
         on_message): the sender's *own* claims need no further crypto,
         only content asserted on behalf of third parties does. *)
      implicit_params =
        [ "t"; "ctx"; "self"; "env"; "src"; "seq"; "view"; "replica";
          "client"; "timestamp"; "index"; "qid"; "upto"; "ls" ];
      sanitizers =
        [ "verify"; "verify_request"; "share_verify"; "share_verify_cached";
          "validate_message"; "verify_op_proof"; "verify_query_proof";
          (* Optimistic combine-then-verify and the staged snapshot
             loader authenticate their inputs internally: the former
             checks the combined signature (falling back to per-share
             identification), the latter installs only a
             digest-matching snapshot. *)
          "combine_verified"; "load_snapshot_checked" ];
      sink_names =
        [ "replace"; "add"; "push"; "remove"; "reset"; ":="; "execute_block";
          "load_snapshot"; "set_checkpoint" ];
      sink_prefixes = [ "send"; "broadcast"; "check_"; "record_" ];
    }

  let is_sanitizer cfg lid =
    List.exists (String.equal (last_component lid)) cfg.sanitizers

  let sink_kind cfg lid =
    let name = last_component lid in
    if List.exists (String.equal name) cfg.sink_names then Some name
    else if List.exists (fun p -> has_prefix ~prefix:p name) cfg.sink_prefixes
    then Some name
    else None

  let implicit cfg name = List.exists (String.equal name) cfg.implicit_params

  (* A taint chain, most recent binding first: how the value flowed from
     a handler parameter to the point of use. *)
  type chain = (string * int) list

  type env = {
    tainted : (string * chain) list;
    (* Variables bound to the boolean result of a sanitizer call, mapped
       to the variables that call covered: [let ok = verify x in if ok
       then ...] clears [x]. *)
    witnesses : (string * string list) list;
  }

  let empty_env = { tainted = []; witnesses = [] }

  let pp_chain chain =
    String.concat " <- "
      (List.map (fun (v, line) -> Printf.sprintf "%s(line %d)" v line) chain)
end

(* All value identifiers occurring in an expression. *)
let expr_vars e =
  let acc = ref [] in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Lident x; _ } -> acc := x :: !acc
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  iter.expr iter e;
  !acc

let contains_sanitizer cfg e =
  let found = ref false in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when Taint.is_sanitizer cfg txt -> found := true
          | _ -> ());
          if not !found then default_iterator.expr self e);
    }
  in
  iter.expr iter e;
  !found

(* First application of a source-call function (obs_* observation
   accessor) inside an expression, with its line: the returned value is
   a taint source in any context. *)
let source_call cfg e =
  let found = ref None in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
            when Option.is_none !found
                 && List.exists
                      (fun p -> has_prefix ~prefix:p (last_component txt))
                      cfg.Taint.source_call_prefixes ->
              found := Some (last_component txt, loc.loc_start.pos_lnum)
          | _ -> ());
          if Option.is_none !found then default_iterator.expr self e);
    }
  in
  iter.expr iter e;
  !found

(* Variables a guard expression authenticates.  Two shapes clear taint:
   a direct sanitizer application ([verify k ~msg x] covers every
   variable in its arguments) and a combinator whose function argument
   contains a sanitizer ([List.for_all (fun r -> verify r) reqs] covers
   [reqs]).  Boolean connectives are split so the sanitized side of
   [a && b] does not bleed into the other. *)
let rec sanitized_vars cfg e =
  match e.pexp_desc with
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Lident ("&&" | "||" | "not"); _ }; _ }, args)
    ->
      List.concat_map (fun (_, a) -> sanitized_vars cfg a) args
  | Pexp_apply (f, args) ->
      if contains_sanitizer cfg f || List.exists (fun (_, a) -> contains_sanitizer cfg a) args
      then List.concat_map (fun (_, a) -> expr_vars a) args
      else List.concat_map (fun (_, a) -> sanitized_vars cfg a) args
  | Pexp_ifthenelse (c, e1, e2) ->
      sanitized_vars cfg c @ sanitized_vars cfg e1
      @ (match e2 with Some e2 -> sanitized_vars cfg e2 | None -> [])
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> sanitized_vars cfg e
  | _ -> []

(* Variables of a pattern, with the binding line. *)
let pat_vars p =
  let acc = ref [] in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; loc } -> acc := (txt, loc.loc_start.pos_lnum) :: !acc
          | Ppat_alias (_, { txt; loc }) ->
              acc := (txt, loc.loc_start.pos_lnum) :: !acc
          | _ -> ());
          default_iterator.pat self p);
    }
  in
  iter.pat iter p;
  !acc

let taint_analysis ~cfg ~report structure =
  let open Taint in
  (* Taint of an expression: the chain of the first tainted variable it
     mentions, unless a sanitizer appears anywhere inside (a verified
     expression is trusted wholesale — a deliberate imprecision). *)
  let taint_of env e =
    if contains_sanitizer cfg e then None
    else
      match List.find_map (fun v -> List.assoc_opt v env.tainted) (expr_vars e) with
      | Some chain -> Some chain
      | None -> (
          match source_call cfg e with
          | Some (name, line) -> Some [ (name, line) ]
          | None -> None)
  in
  let shadow env names =
    {
      tainted = List.filter (fun (v, _) -> not (List.mem v names)) env.tainted;
      witnesses = List.filter (fun (v, _) -> not (List.mem v names)) env.witnesses;
    }
  in
  (* Clearing [names] also clears their lineage: any variable derived
     from (or an ancestor of) a cleared variable.  Verifying
     [real_reqs = List.filter p reqs] is taken to authenticate [reqs]
     and everything hashed from it. *)
  let clear env names =
    if names = [] then env
    else begin
      let family =
        List.concat_map
          (fun v ->
            match List.assoc_opt v env.tainted with
            | Some chain -> v :: List.map fst chain
            | None -> [ v ])
          names
      in
      let cleared (v, chain) =
        List.mem v family || List.exists (fun (c, _) -> List.mem c family) chain
      in
      { env with tainted = List.filter (fun b -> not (cleared b)) env.tainted }
    end
  in
  (* Variables authenticated by a guard: direct sanitizer coverage plus
     the coverage recorded for any witness variable the guard tests. *)
  let guard_cleared env g =
    let direct = sanitized_vars cfg g in
    let via_witness =
      List.concat_map
        (fun v ->
          match List.assoc_opt v env.witnesses with
          | Some covered -> covered
          | None -> [])
        (expr_vars g)
    in
    direct @ via_witness
  in
  let bind env pat rhs_taint ~sanitizing ~covered =
    let vars = pat_vars pat in
    let names = List.map fst vars in
    let env = shadow env names in
    let env =
      match rhs_taint with
      | None -> env
      | Some chain ->
          {
            env with
            tainted =
              List.filter_map
                (fun (v, line) ->
                  if implicit cfg v then None
                  else Some (v, (v, line) :: chain))
                vars
              @ env.tainted;
          }
    in
    if sanitizing then
      { env with witnesses = List.map (fun (v, _) -> (v, covered)) vars @ env.witnesses }
    else env
  in
  let report_sink ~loc ~sink chain =
    report ~rule:"R6" ~loc
      (Printf.sprintf
         "unauthenticated network input reaches state-mutating call '%s' \
          (taint: %s); verify it first or vet the flow in lint.allow"
         sink (pp_chain chain))
  in
  let rec analyze env e =
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
        let env' =
          List.fold_left
            (fun acc vb ->
              analyze env vb.pvb_expr;
              let sanitizing = contains_sanitizer cfg vb.pvb_expr in
              bind acc vb.pvb_pat (taint_of env vb.pvb_expr) ~sanitizing
                ~covered:(if sanitizing then sanitized_vars cfg vb.pvb_expr else []))
            env vbs
        in
        analyze env' body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (analyze env) default;
        analyze (shadow env (List.map fst (pat_vars pat))) body
    | Pexp_function cases -> analyze_cases env None cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        analyze env scrut;
        analyze_cases env (taint_of env scrut) cases
    | Pexp_ifthenelse (cond, e1, e2) ->
        analyze env cond;
        analyze (clear env (guard_cleared env cond)) e1;
        Option.iter (analyze env) e2
    | Pexp_sequence (a, b) ->
        analyze env a;
        analyze env b
    | Pexp_setfield (obj, _, v) ->
        (match taint_of env v with
        | Some chain -> report_sink ~loc:e.pexp_loc ~sink:"<- (field write)" chain
        | None -> ());
        analyze env obj;
        analyze env v
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        (match Taint.sink_kind cfg txt with
        | Some sink when not (Taint.is_sanitizer cfg txt) -> (
            match List.find_map (fun (_, a) -> taint_of env a) args with
            | Some chain -> report_sink ~loc:e.pexp_loc ~sink chain
            | None -> ())
        | _ -> ());
        List.iter (fun (_, a) -> analyze env a) args)
    | Pexp_apply ({ pexp_desc = Pexp_field (obj, { txt; _ }); _ }, args) -> (
        (* t.env.send-style sinks: dispatch through a record field. *)
        (match Taint.sink_kind cfg txt with
        | Some sink -> (
            match List.find_map (fun (_, a) -> taint_of env a) args with
            | Some chain -> report_sink ~loc:e.pexp_loc ~sink chain
            | None -> ())
        | None -> ());
        analyze env obj;
        List.iter (fun (_, a) -> analyze env a) args)
    | _ -> analyze_children env e
  and analyze_cases env scrut_taint cases =
    List.iter
      (fun (case : case) ->
        let env' =
          bind env case.pc_lhs scrut_taint ~sanitizing:false ~covered:[]
        in
        let env' =
          match case.pc_guard with
          | Some g ->
              analyze env' g;
              clear env' (guard_cleared env' g)
          | None -> env'
        in
        analyze env' case.pc_rhs)
      cases
  and analyze_children env e =
    let open Ast_iterator in
    let it = { default_iterator with expr = (fun _ c -> analyze env c) } in
    default_iterator.expr it e
  in
  (* Entry points: top-level functions whose name matches a source
     prefix.  Their parameters (minus the implicit, link-authenticated
     ones) are the taint sources. *)
  let analyze_handler name vb =
    let rec split_params env e =
      match e.pexp_desc with
      | Pexp_fun (_, default, pat, body) ->
          Option.iter (analyze empty_env) default;
          let env =
            List.fold_left
              (fun acc (v, line) ->
                if implicit cfg v then acc
                else
                  {
                    acc with
                    tainted =
                      (v, [ (v, line) ]) :: acc.tainted;
                  })
              env (pat_vars pat)
          in
          split_params env body
      | Pexp_newtype (_, body) -> split_params env body
      | Pexp_constraint (body, _) -> split_params env body
      | _ -> analyze env e
    in
    ignore name;
    split_params empty_env vb.pvb_expr
  in
  let handle_binding vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ }
      when List.exists (fun p -> has_prefix ~prefix:p name) cfg.source_prefixes ->
        analyze_handler name vb
    | Ppat_var _ ->
        (* Source calls — the obs_ accessors — taint values in any
           function, so every top-level binding gets the flow analysis,
           just without the handler-parameter taint. *)
        analyze empty_env vb.pvb_expr
    | _ -> ()
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter handle_binding vbs
      | _ -> ())
    structure

(* ------------------------------------------------------------------ *)
(* The pass *)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let lint_structure ?(taint = Taint.default) ~path structure =
  let findings = ref [] in
  let report ~rule ~loc message =
    findings :=
      { rule; severity = Error; file = path; line = line_of loc; message }
      :: !findings
  in
  let r1 = protocol_scope path in
  let r2 = protocol_scope path in
  let r4 = not (config_file path) in
  let r7_lib = lib_scope path in
  (* Locations of [Hashtbl.fold] identifiers whose result flows straight
     into an explicit sort.  The iterator visits parents before children,
     so the set is populated before the ident itself is reached. *)
  let sort_wrapped = Hashtbl.create 8 in
  let loc_key (loc : Location.t) = (line_of loc, loc.loc_start.pos_cnum) in
  let fold_ident_loc e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } when hashtbl_fold_ident txt -> Some e.pexp_loc
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), _)
      when hashtbl_fold_ident txt ->
        Some f.pexp_loc
    | _ -> None
  in
  let head_is_sort e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> list_sort_ident txt
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        list_sort_ident txt
    | _ -> false
  in
  let mark_exempt e =
    match fold_ident_loc e with
    | Some loc -> Hashtbl.replace sort_wrapped (loc_key loc) ()
    | None -> ()
  in
  let exempt loc = Hashtbl.mem sort_wrapped (loc_key loc) in
  let open Ast_iterator in
  let iter_expr self e =
    (match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, [ (_, a); (_, b) ])
      when eq_operator txt ->
        if r1 && (not (constant_operand a)) && not (constant_operand b) then
          report ~rule:"R1" ~loc:pexp_loc
            "polymorphic comparison on non-constant operands; use Int.equal, \
             String.equal, or an explicit equality for the type";
        (* Visit the operands but not the operator identifier itself,
           which would double-report. *)
        self.expr self a;
        self.expr self b
    | Pexp_ident { txt; _ } when r1 && eq_operator txt ->
        report ~rule:"R1" ~loc:e.pexp_loc
          "polymorphic comparison passed as a function; use an explicit \
           equality for the type"
    | Pexp_ident { txt; _ } when r1 && polymorphic_compare txt ->
        report ~rule:"R1" ~loc:e.pexp_loc
          "polymorphic compare; use Int.compare, String.compare, or a \
           dedicated comparison function"
    | Pexp_ident { txt; _ } when r1 && hashtbl_hash txt ->
        report ~rule:"R1" ~loc:e.pexp_loc
          "Hashtbl.hash on protocol values; define an explicit hash over \
           the identifying fields"
    (* R7 exemption: a fold consumed by an explicit sort is ordered.
       Three spellings: [List.sort cmp (fold ...)], [fold ... |> List.sort
       cmp], and [List.sort cmp @@ fold ...]. *)
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ },
         [ (_, lhs); (_, rhs) ])
      when head_is_sort rhs ->
        mark_exempt lhs
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ },
         [ (_, lhs); (_, rhs) ])
      when head_is_sort lhs ->
        mark_exempt rhs
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when list_sort_ident txt ->
        List.iter (fun (_, a) -> mark_exempt a) args
    | Pexp_ident { txt; _ } when random_ident txt && not (rng_file path) ->
        report ~rule:"R7" ~loc:e.pexp_loc
          "Random.* outside lib/sim/rng.ml breaks replayability; thread an \
           Rng.t derived from the scenario seed"
    | Pexp_ident { txt; _ } when r7_lib && unix_ident txt ->
        report ~rule:"R7" ~loc:e.pexp_loc
          "Unix.* in lib/ reads host state; the simulator must be the only \
           source of time and I/O"
    | Pexp_ident { txt; _ } when r7_lib && host_clock_ident txt ->
        report ~rule:"R7" ~loc:e.pexp_loc
          "Sys.time reads the host clock; use the engine's virtual time"
    | Pexp_ident { txt; _ } when r1 && physical_eq txt ->
        report ~rule:"R7" ~loc:e.pexp_loc
          "physical equality on protocol values is representation-dependent; \
           use a structural equality for the type"
    | Pexp_ident { txt; _ }
      when r7_lib && (not (det_file path)) && hashtbl_order_ident txt
           && not (exempt e.pexp_loc) ->
        report ~rule:"R7" ~loc:e.pexp_loc
          "unordered Hashtbl traversal; materialize and List.sort by a \
           protocol key (or use Det.sorted_bindings)"
    | Pexp_ident { txt; _ } when r2 ->
        (match partial_function txt with
        | Some (m, f, instead) ->
            report ~rule:"R2" ~loc:e.pexp_loc
              (Printf.sprintf "partial function %s.%s in protocol code; use %s"
                 m f instead)
        | None -> ())
    | Pexp_try (_, cases) ->
        List.iter
          (fun case ->
            if catch_all_case case then
              report ~rule:"R3" ~loc:case.pc_lhs.ppat_loc
                "catch-all exception handler swallows every failure; match \
                 the specific exceptions instead")
          cases
    | Pexp_match (_, cases) ->
        List.iter
          (fun (case : case) ->
            match case.pc_lhs.ppat_desc with
            | Ppat_exception { ppat_desc = Ppat_any; _ } when Option.is_none case.pc_guard ->
                report ~rule:"R3" ~loc:case.pc_lhs.ppat_loc
                  "catch-all exception case swallows every failure; match \
                   the specific exceptions instead"
            | _ -> ())
          cases
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident "*"; _ }; pexp_loc; _ },
         [ (_, a); (_, b) ])
      when r4 && ((int_literal a && fault_parameter b)
                 || (fault_parameter a && int_literal b)) ->
        report ~rule:"R4" ~loc:pexp_loc
          "quorum arithmetic over f/c outside Config; quorum sizes must \
           flow from Config.n / Config.*_threshold"
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ _; _ ])
      when eq_operator txt ->
        () (* operands already visited above *)
    | _ -> default_iterator.expr self e
  in
  let iterator = { default_iterator with expr = iter_expr } in
  iterator.structure iterator structure;
  if handler_scope path then taint_analysis ~cfg:taint ~report structure;
  List.sort
    (fun a b ->
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | n -> n)
    !findings

let parse_implementation ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let lint_source ?taint ~path source =
  let path = normalize path in
  match parse_implementation ~path source with
  | structure -> lint_structure ?taint ~path structure
  | exception Syntaxerr.Error _ ->
      [ { rule = "parse"; severity = Error; file = path; line = 1;
          message = "file does not parse" } ]
  | exception Lexer.Error (_, loc) ->
      [ { rule = "parse"; severity = Error; file = path; line = line_of loc;
          message = "file does not lex" } ]

let missing_mli ~path ~mli_exists =
  let path = normalize path in
  if mli_exists || not (has_prefix ~prefix:"lib/" path) then None
  else
    Some
      {
        rule = "R5";
        severity = Error;
        file = path;
        line = 1;
        message =
          "module has no .mli; every lib/ module must declare its interface";
      }

(* ------------------------------------------------------------------ *)
(* Allowlist *)

module Allow = struct
  type entry = { a_rule : string; a_file : string; a_line : int option }
  type t = entry list

  let empty = []

  let parse_line line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> not (String.equal s ""))
    with
    | [ rule; target ] ->
        let a_file, a_line =
          match String.rindex_opt target ':' with
          | Some i -> (
              let file = String.sub target 0 i in
              let ln = String.sub target (i + 1) (String.length target - i - 1) in
              match int_of_string_opt ln with
              | Some n -> (file, Some n)
              | None -> (target, None))
          | None -> (target, None)
        in
        Some { a_rule = rule; a_file = normalize a_file; a_line }
    | _ -> None

  let parse contents =
    String.split_on_char '\n' contents |> List.filter_map parse_line

  let entry_matches e (f : finding) =
    (String.equal e.a_rule "*" || String.equal e.a_rule f.rule)
    && String.equal e.a_file f.file
    && match e.a_line with None -> true | Some l -> Int.equal l f.line

  let is_allowed t f = List.exists (fun e -> entry_matches e f) t

  let render e =
    match e.a_line with
    | None -> Printf.sprintf "%s %s" e.a_rule e.a_file
    | Some l -> Printf.sprintf "%s %s:%d" e.a_rule e.a_file l

  let unused t findings =
    List.filter_map
      (fun e ->
        if List.exists (entry_matches e) findings then None else Some (render e))
      t
end

let filter allow findings =
  List.partition (fun f -> not (Allow.is_allowed allow f)) findings

let exit_code kept =
  if List.exists (fun f -> match f.severity with Error -> true | Warning -> false) kept
  then 1
  else 0
