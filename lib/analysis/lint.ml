type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
}

let pp_finding f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message

(* ------------------------------------------------------------------ *)
(* Path scoping *)

let normalize path =
  let path =
    if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun ch -> if Char.equal ch '\\' then '/' else ch) path

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let protocol_scope path =
  List.exists
    (fun prefix -> has_prefix ~prefix path)
    [ "lib/core/"; "lib/pbft/"; "lib/crypto/" ]

let config_file path = String.equal path "lib/core/config.ml"

(* ------------------------------------------------------------------ *)
(* AST predicates *)

open Parsetree

let eq_operator : Longident.t -> bool = function
  | Lident ("=" | "<>") -> true
  | Ldot (Lident "Stdlib", ("=" | "<>")) -> true
  | _ -> false

let polymorphic_compare : Longident.t -> bool = function
  | Lident "compare" -> true
  | Ldot (Lident "Stdlib", "compare") -> true
  | _ -> false

let hashtbl_hash : Longident.t -> bool = function
  | Ldot (Lident "Hashtbl", ("hash" | "seeded_hash")) -> true
  | Ldot (Ldot (Lident "Stdlib", "Hashtbl"), ("hash" | "seeded_hash")) -> true
  | _ -> false

(* Partial stdlib functions and their total replacements (R2). *)
let partial_functions =
  [
    ("List", "hd", "List.nth_opt xs 0 / match");
    ("List", "nth", "List.nth_opt");
    ("List", "assoc", "List.assoc_opt");
    ("List", "find", "List.find_opt");
    ("Option", "get", "pattern matching / Option.value");
    ("Hashtbl", "find", "Hashtbl.find_opt");
  ]

let partial_function : Longident.t -> (string * string * string) option = function
  | Ldot (Lident m, f) | Ldot (Ldot (Lident "Stdlib", m), f) ->
      List.find_opt
        (fun (m', f', _) -> String.equal m m' && String.equal f f')
        partial_functions
  | _ -> None

(* Operands whose polymorphic comparison is a tag-only check: constant
   literals and nullary constructors ([None], [true], [[]], variant
   tags...).  Comparing anything else structurally is what R1 bans. *)
let constant_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct (_, None) -> true
  | Pexp_variant (_, None) -> true
  | _ -> false

let int_literal e =
  match e.pexp_desc with Pexp_constant (Pconst_integer _) -> true | _ -> false

(* An [f]- or [c]-valued expression for the quorum-literal rule: a bare
   identifier or a record field named [f] or [c]. *)
let fault_parameter e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident ("f" | "c"); _ } -> true
  | Pexp_field (_, { txt = Lident ("f" | "c") | Ldot (_, ("f" | "c")); _ }) -> true
  | _ -> false

let catch_all_case (case : case) =
  match (case.pc_lhs.ppat_desc, case.pc_guard) with
  | Ppat_any, None -> true
  | Ppat_exception { ppat_desc = Ppat_any; _ }, None -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The pass *)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let lint_structure ~path structure =
  let findings = ref [] in
  let report ~rule ~loc message =
    findings :=
      { rule; severity = Error; file = path; line = line_of loc; message }
      :: !findings
  in
  let r1 = protocol_scope path in
  let r2 = protocol_scope path in
  let r4 = not (config_file path) in
  let open Ast_iterator in
  let iter_expr self e =
    (match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, [ (_, a); (_, b) ])
      when eq_operator txt ->
        if r1 && (not (constant_operand a)) && not (constant_operand b) then
          report ~rule:"R1" ~loc:pexp_loc
            "polymorphic comparison on non-constant operands; use Int.equal, \
             String.equal, or an explicit equality for the type";
        (* Visit the operands but not the operator identifier itself,
           which would double-report. *)
        self.expr self a;
        self.expr self b
    | Pexp_ident { txt; _ } when r1 && eq_operator txt ->
        report ~rule:"R1" ~loc:e.pexp_loc
          "polymorphic comparison passed as a function; use an explicit \
           equality for the type"
    | Pexp_ident { txt; _ } when r1 && polymorphic_compare txt ->
        report ~rule:"R1" ~loc:e.pexp_loc
          "polymorphic compare; use Int.compare, String.compare, or a \
           dedicated comparison function"
    | Pexp_ident { txt; _ } when r1 && hashtbl_hash txt ->
        report ~rule:"R1" ~loc:e.pexp_loc
          "Hashtbl.hash on protocol values; define an explicit hash over \
           the identifying fields"
    | Pexp_ident { txt; _ } when r2 ->
        (match partial_function txt with
        | Some (m, f, instead) ->
            report ~rule:"R2" ~loc:e.pexp_loc
              (Printf.sprintf "partial function %s.%s in protocol code; use %s"
                 m f instead)
        | None -> ())
    | Pexp_try (_, cases) ->
        List.iter
          (fun case ->
            if catch_all_case case then
              report ~rule:"R3" ~loc:case.pc_lhs.ppat_loc
                "catch-all exception handler swallows every failure; match \
                 the specific exceptions instead")
          cases
    | Pexp_match (_, cases) ->
        List.iter
          (fun (case : case) ->
            match case.pc_lhs.ppat_desc with
            | Ppat_exception { ppat_desc = Ppat_any; _ } when Option.is_none case.pc_guard ->
                report ~rule:"R3" ~loc:case.pc_lhs.ppat_loc
                  "catch-all exception case swallows every failure; match \
                   the specific exceptions instead"
            | _ -> ())
          cases
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident "*"; _ }; pexp_loc; _ },
         [ (_, a); (_, b) ])
      when r4 && ((int_literal a && fault_parameter b)
                 || (fault_parameter a && int_literal b)) ->
        report ~rule:"R4" ~loc:pexp_loc
          "quorum arithmetic over f/c outside Config; quorum sizes must \
           flow from Config.n / Config.*_threshold"
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ _; _ ])
      when eq_operator txt ->
        () (* operands already visited above *)
    | _ -> default_iterator.expr self e
  in
  let iterator = { default_iterator with expr = iter_expr } in
  iterator.structure iterator structure;
  List.sort
    (fun a b ->
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | n -> n)
    !findings

let parse_implementation ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let lint_source ~path ~source =
  let path = normalize path in
  match parse_implementation ~path source with
  | structure -> lint_structure ~path structure
  | exception Syntaxerr.Error _ ->
      [ { rule = "parse"; severity = Error; file = path; line = 1;
          message = "file does not parse" } ]
  | exception Lexer.Error (_, loc) ->
      [ { rule = "parse"; severity = Error; file = path; line = line_of loc;
          message = "file does not lex" } ]

let missing_mli ~path ~mli_exists =
  let path = normalize path in
  if mli_exists || not (has_prefix ~prefix:"lib/" path) then None
  else
    Some
      {
        rule = "R5";
        severity = Error;
        file = path;
        line = 1;
        message =
          "module has no .mli; every lib/ module must declare its interface";
      }

(* ------------------------------------------------------------------ *)
(* Allowlist *)

module Allow = struct
  type entry = { a_rule : string; a_file : string; a_line : int option }
  type t = entry list

  let empty = []

  let parse_line line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> not (String.equal s ""))
    with
    | [ rule; target ] ->
        let a_file, a_line =
          match String.rindex_opt target ':' with
          | Some i -> (
              let file = String.sub target 0 i in
              let ln = String.sub target (i + 1) (String.length target - i - 1) in
              match int_of_string_opt ln with
              | Some n -> (file, Some n)
              | None -> (target, None))
          | None -> (target, None)
        in
        Some { a_rule = rule; a_file = normalize a_file; a_line }
    | _ -> None

  let parse contents =
    String.split_on_char '\n' contents |> List.filter_map parse_line

  let entry_matches e (f : finding) =
    (String.equal e.a_rule "*" || String.equal e.a_rule f.rule)
    && String.equal e.a_file f.file
    && match e.a_line with None -> true | Some l -> Int.equal l f.line

  let is_allowed t f = List.exists (fun e -> entry_matches e f) t

  let render e =
    match e.a_line with
    | None -> Printf.sprintf "%s %s" e.a_rule e.a_file
    | Some l -> Printf.sprintf "%s %s:%d" e.a_rule e.a_file l

  let unused t findings =
    List.filter_map
      (fun e ->
        if List.exists (entry_matches e) findings then None else Some (render e))
      t
end

let filter allow findings =
  List.partition (fun f -> not (Allow.is_allowed allow f)) findings

let exit_code kept =
  if List.exists (fun f -> match f.severity with Error -> true | Warning -> false) kept
  then 1
  else 0
