(* The quorum property list shared between the runtime sanitizer
   (Sanitizer.check_config) and the static analyzer (R12 in
   lib/analysis/quorum.ml), so the two can't drift apart.

   SBFT's parameters (paper §4): n = 3f + 2c + 1 replicas tolerate f
   byzantine and c crashed/slow replicas.  The thresholds:

     sigma    = 3f + c + 1   fast-path commit quorum
     tau      = 2f + c + 1   slow-path (linear PBFT) quorum
     pi       = f + 1        execution-proof quorum
     vc       = 2f + 2c + 1  view-change quorum
     majority = 2f + 1       PBFT baseline quorum (c = 0 deployments)

   Each obligation below is a linear inequality over (f, c); the
   analyzer discharges them by exact enumeration over the admissible
   grid (see [grid]), the sanitizer evaluates them at the one concrete
   (f, c) a run uses. *)

type kind = Sigma | Tau | Pi | Vc | Majority

let kind_name = function
  | Sigma -> "sigma"
  | Tau -> "tau"
  | Pi -> "pi"
  | Vc -> "view-change"
  | Majority -> "majority"

(* Canonical linear form base + fk*f + ck*c of each threshold.  R12
   compares the expressions it extracts from lib/core/config.ml
   against these, so a silent edit to Config is caught even before the
   obligations are enumerated. *)
type linear = { base : int; fk : int; ck : int }

let canonical = function
  | Sigma -> { base = 1; fk = 3; ck = 1 }
  | Tau -> { base = 1; fk = 2; ck = 1 }
  | Pi -> { base = 1; fk = 1; ck = 0 }
  | Vc -> { base = 1; fk = 2; ck = 2 }
  | Majority -> { base = 1; fk = 2; ck = 0 }

let n_linear = { base = 1; fk = 3; ck = 2 }
let eval l ~f ~c = l.base + (l.fk * f) + (l.ck * c)

let pp_linear l =
  let term coeff var acc =
    if Int.equal coeff 0 then acc
    else
      let t =
        if Int.equal coeff 1 then var else Printf.sprintf "%d%s" coeff var
      in
      if String.equal acc "" then t else acc ^ " + " ^ t
  in
  let s = term l.fk "f" "" in
  let s = term l.ck "c" s in
  let s =
    if Int.equal l.base 0 then s
    else if String.equal s "" then string_of_int l.base
    else Printf.sprintf "%s + %d" s l.base
  in
  if String.equal s "" then "0" else s

type thresholds = {
  f : int;
  c : int;
  n : int;
  sigma : int;
  tau : int;
  pi : int;
  vc : int;
  majority : int;
}

let derive ~f ~c =
  {
    f;
    c;
    n = eval n_linear ~f ~c;
    sigma = eval (canonical Sigma) ~f ~c;
    tau = eval (canonical Tau) ~f ~c;
    pi = eval (canonical Pi) ~f ~c;
    vc = eval (canonical Vc) ~f ~c;
    majority = eval (canonical Majority) ~f ~c;
  }

let threshold_of th = function
  | Sigma -> th.sigma
  | Tau -> th.tau
  | Pi -> th.pi
  | Vc -> th.vc
  | Majority -> th.majority

(* An obligation applies at a grid point when [applies] holds there
   (the majority obligations are c = 0 only: quorum_bft is the PBFT
   baseline quorum and 2(2f+1) - n = f + 1 - 2c fails for c > 0), and
   is discharged when every margin is >= 0.  Margins are affine in
   (f, c) whenever the thresholds are linear forms — that is what lets
   the analyzer's finite-difference check extend grid enumeration to
   all admissible (f, c); equalities contribute two margins (>= in
   both directions). *)
type obligation = {
  name : string;
  law : string;
  applies : thresholds -> bool;
  margins : thresholds -> int list;
}

let always _ = true
let crash_free th = Int.equal th.c 0

(* Safety: two quorums overlap in >= f+1 replicas, so at least one
   non-byzantine replica is in both and equivocation is detected.
   Liveness: a threshold must stay reachable with f replicas silent
   (the fast-path sigma only promises progress with c silent). *)
let obligations =
  [
    {
      name = "sigma-sigma-intersection";
      law = "2*sigma - n >= f + 1";
      applies = always;
      margins = (fun t -> [ (2 * t.sigma) - t.n - (t.f + 1) ]);
    };
    {
      name = "sigma-vc-intersection";
      law = "sigma + vc - n >= f + 1";
      applies = always;
      margins = (fun t -> [ t.sigma + t.vc - t.n - (t.f + 1) ]);
    };
    {
      name = "tau-tau-intersection";
      law = "2*tau - n >= f + 1";
      applies = always;
      margins = (fun t -> [ (2 * t.tau) - t.n - (t.f + 1) ]);
    };
    {
      name = "tau-vc-intersection";
      law = "tau + vc - n >= f + 1";
      applies = always;
      margins = (fun t -> [ t.tau + t.vc - t.n - (t.f + 1) ]);
    };
    {
      name = "vc-vc-intersection";
      law = "2*vc - n >= f + 1";
      applies = always;
      margins = (fun t -> [ (2 * t.vc) - t.n - (t.f + 1) ]);
    };
    {
      (* Equality pins pi against silent +1 drift that no intersection
         or liveness obligation would catch. *)
      name = "pi-def";
      law = "pi = f + 1";
      applies = always;
      margins = (fun t -> [ t.pi - (t.f + 1); t.f + 1 - t.pi ]);
    };
    {
      name = "ordering-tau-sigma";
      law = "tau <= sigma";
      applies = always;
      margins = (fun t -> [ t.sigma - t.tau ]);
    };
    {
      name = "ordering-pi-tau";
      law = "pi <= tau";
      applies = always;
      margins = (fun t -> [ t.tau - t.pi ]);
    };
    {
      name = "sigma-bound";
      law = "sigma <= n";
      applies = always;
      margins = (fun t -> [ t.n - t.sigma ]);
    };
    {
      name = "vc-bound";
      law = "vc <= n";
      applies = always;
      margins = (fun t -> [ t.n - t.vc ]);
    };
    {
      name = "tau-live";
      law = "tau <= n - f";
      applies = always;
      margins = (fun t -> [ t.n - t.f - t.tau ]);
    };
    {
      name = "vc-live";
      law = "vc <= n - f";
      applies = always;
      margins = (fun t -> [ t.n - t.f - t.vc ]);
    };
    {
      name = "pi-live";
      law = "pi <= n - f";
      applies = always;
      margins = (fun t -> [ t.n - t.f - t.pi ]);
    };
    {
      (* sigma = 3f + c + 1 > n - f for f > c: the fast path only
         promises progress when at most c replicas are silent, so its
         liveness bound is n - c, not n - f (it falls back to tau
         otherwise). *)
      name = "sigma-live-c";
      law = "sigma <= n - c";
      applies = always;
      margins = (fun t -> [ t.n - t.c - t.sigma ]);
    };
    {
      name = "majority-intersection";
      law = "2*majority - n >= f + 1 (c = 0)";
      applies = crash_free;
      margins = (fun t -> [ (2 * t.majority) - t.n - (t.f + 1) ]);
    };
    {
      name = "majority-live";
      law = "majority <= n - f (c = 0)";
      applies = crash_free;
      margins = (fun t -> [ t.n - t.f - t.majority ]);
    };
  ]

let holds o th = List.for_all (fun m -> m >= 0) (o.margins th)
let failures th = List.filter (fun o -> o.applies th && not (holds o th)) obligations

(* The admissible parameter space: Config.validate requires
   f, c >= 0 and n = 3f + 2c + 1 >= 4.  Every obligation over linear
   threshold forms is an affine g(f, c) = a*f + b*c + d compared
   against 0, so enumeration over the grid up to [grid_bound] plus a
   finite-difference monotonicity check (a = g(1,0) - g(0,0) >= 0 and
   b = g(0,1) - g(0,0) >= 0, both computed by the prover in quorum.ml)
   decides the obligation for ALL admissible (f, c): if a or b were
   negative g would eventually violate for large f or c, and with both
   nonnegative every admissible point dominates one of the minimal
   admissible points (1,0) / (0,2), which the grid covers (the full
   argument is in DESIGN.md). *)
let grid_bound = 8
let admissible ~f ~c = f >= 0 && c >= 0 && (3 * f) + (2 * c) + 1 >= 4

let grid () =
  let pts = ref [] in
  for f = grid_bound downto 0 do
    for c = grid_bound downto 0 do
      if admissible ~f ~c then pts := (f, c) :: !pts
    done
  done;
  !pts
