(* Quorum-soundness rules over Msgflow summaries and Config's
   threshold definitions.

   R12 symbolic quorum soundness: every threshold *definition* in
       lib/core/config.ml and every threshold *comparison* reachable
       from protocol code is extracted as a linear form over (f, c)
       with n = 3f + 2c + 1, and the shared obligation list
       (Quorum_props: intersection, ordering, liveness) is discharged
       by exact enumeration over the admissible grid plus a
       finite-difference monotonicity check that extends the result to
       all admissible (f, c).  Hand-adjusted comparisons
       ([quorum t - 1]) must carry a checked [[@quorum.adjust k]]
       annotation declaring the k implicit votes, and every declared
       Config.mutation must provably violate at least one obligation
       (a mutation the fuzzer injects but the maths forgives is a dead
       oracle).
   R13 timer discipline: every raw [set_timer] arm site must guard its
       callback with a cancel token ([retired], [done_], ...) that is
       actually assigned somewhere in the file, or route through a
       local [set_replica_timer] wrapper that does — statically
       killing the zombie-timer class PR 5 fixed by hand.
   R14 sanitizer coverage: in files that call the runtime sanitizer, a
       threshold-crossing decision ([count >= threshold]) must be
       paired, in the same function, with a [Sanitizer.check_quorum]
       of the matching quorum kind.
   R15 no-wildcard tables: the wire-size/kind tables of msg-defining
       files and the Cost_model price tables must stay exhaustive —
       a wildcard case lets a new constructor ship unaccounted.

   Like the other discipline rules these are syntactic and strict on
   the shapes the protocol uses; vetted exceptions go through
   lint.allow. *)

let normalize path = String.map (fun c -> if Char.equal c '\\' then '/' else c) path

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let in_scope path =
  has_prefix ~prefix:"lib/core/" path || has_prefix ~prefix:"lib/pbft/" path

let mem x xs = List.exists (String.equal x) xs

let finding ~rule ~file ~line message =
  { Lint.rule; severity = Lint.Error; file; line; message }

let dedup_sorted findings =
  let sorted =
    List.sort
      (fun (a : Lint.finding) b ->
        match Int.compare a.Lint.line b.Lint.line with
        | 0 -> String.compare a.Lint.message b.Lint.message
        | n -> n)
      findings
  in
  let rec go = function
    | a :: (b :: _ as rest) ->
        if Int.equal a.Lint.line b.Lint.line
           && String.equal a.Lint.message b.Lint.message
        then go rest
        else a :: go rest
    | rest -> rest
  in
  go sorted

(* ------------------------------------------------------------------ *)
(* Threshold definitions (R12, definitional half) *)

let kind_table =
  [
    ("sigma_threshold", Quorum_props.Sigma);
    ("tau_threshold", Quorum_props.Tau);
    ("pi_threshold", Quorum_props.Pi);
    ("quorum_vc", Quorum_props.Vc);
    ("quorum_bft", Quorum_props.Majority);
  ]

let kind_ctor = function
  | Quorum_props.Sigma -> "Sigma"
  | Quorum_props.Tau -> "Tau"
  | Quorum_props.Pi -> "Pi"
  | Quorum_props.Vc -> "Vc"
  | Quorum_props.Majority -> "Majority"

let all_kinds = List.map snd kind_table

let name_of_kind k =
  fst (List.find (fun (_, k') -> k' = k) kind_table)

type def = {
  d_line : int;
  d_form : Quorum_props.linear option;  (** the real (non-mutated) branch *)
  d_mutations : (string * Quorum_props.linear option) list;
      (** mutation constructor -> its weakened form *)
}

type defs = {
  defs_path : string;
  n_form : (int * Quorum_props.linear option) option;  (** line, form *)
  by_kind : (Quorum_props.kind * def) list;
  mutation_ctors : string list;  (** declared [type mutation] constructors *)
}

let rec last_component (lid : Longident.t) =
  match lid with
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> last_component l

let rec peel_body (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_body body
  | Pexp_newtype (_, body) -> peel_body body
  | Pexp_constraint (e, _) -> peel_body e
  | _ -> e

let binding_name (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | _ -> None

let structure_bindings structure =
  List.concat_map
    (fun (si : Parsetree.structure_item) ->
      match si.pstr_desc with Pstr_value (_, vbs) -> vbs | _ -> [])
    structure

(* Does this expression scrutinize the config's [mutation] field? *)
let rec is_mutation_scrutinee (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> String.equal (last_component txt) "mutation"
  | Pexp_ident { txt; _ } -> String.equal (last_component txt) "mutation"
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> is_mutation_scrutinee e
  | _ -> false

(* [match t.mutation with Some Ctor -> weakened | None -> real]: the
   None (or catch-all [_]) branch is the definition, each Some branch
   a mutation form. *)
let def_branches (body : Parsetree.expression) =
  match body.pexp_desc with
  | Pexp_match (scrut, cases) when is_mutation_scrutinee scrut ->
      List.fold_left
        (fun (real, muts) (case : Parsetree.case) ->
          match case.pc_lhs.ppat_desc with
          | Ppat_any -> (Msgflow.linear_of_expr case.pc_rhs, muts)
          | Ppat_construct ({ txt; _ }, None)
            when String.equal (last_component txt) "None" ->
              (Msgflow.linear_of_expr case.pc_rhs, muts)
          | Ppat_construct ({ txt; _ }, Some (_, inner))
            when String.equal (last_component txt) "Some" -> (
              match inner.ppat_desc with
              | Ppat_construct ({ txt = ctor; _ }, _) ->
                  ( real,
                    muts
                    @ [ (last_component ctor, Msgflow.linear_of_expr case.pc_rhs) ]
                  )
              | _ -> (real, muts))
          | _ -> (real, muts))
        (None, []) cases
  | _ -> (Msgflow.linear_of_expr body, [])

let mutation_ctors structure =
  List.concat_map
    (fun (si : Parsetree.structure_item) ->
      match si.pstr_desc with
      | Pstr_type (_, decls) ->
          List.concat_map
            (fun (d : Parsetree.type_declaration) ->
              if String.equal d.ptype_name.txt "mutation" then
                match d.ptype_kind with
                | Ptype_variant ctors ->
                    List.map
                      (fun (c : Parsetree.constructor_declaration) ->
                        c.pcd_name.txt)
                      ctors
                | _ -> []
              else [])
            decls
      | _ -> [])
    structure

(* Extract the threshold definitions a structure contains; [None] when
   it defines none (an ordinary protocol file). *)
let extract_defs ~path structure =
  let n_form = ref None and by_kind = ref [] in
  List.iter
    (fun (vb : Parsetree.value_binding) ->
      let line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum in
      match binding_name vb with
      | Some "n" ->
          if Option.is_none !n_form then
            n_form := Some (line, Msgflow.linear_of_expr (peel_body vb.pvb_expr))
      | Some name when List.mem_assoc name kind_table ->
          let kind = List.assoc name kind_table in
          if not (List.mem_assoc kind !by_kind) then begin
            let d_form, d_mutations = def_branches (peel_body vb.pvb_expr) in
            by_kind := !by_kind @ [ (kind, { d_line = line; d_form; d_mutations }) ]
          end
      | _ -> ())
    (structure_bindings structure);
  match !by_kind with
  | [] -> None
  | by_kind ->
      Some
        {
          defs_path = path;
          n_form = !n_form;
          by_kind;
          mutation_ctors = mutation_ctors structure;
        }

(* Canonical definitions, for when the tree's config.ml is not among
   the linted files (fixture runs, unit tests). *)
let default_defs =
  {
    defs_path = "lib/core/config.ml";
    n_form = Some (0, Some Quorum_props.n_linear);
    by_kind =
      List.map
        (fun (_, k) ->
          (k, { d_line = 0; d_form = Some (Quorum_props.canonical k); d_mutations = [] }))
        kind_table;
    mutation_ctors = [];
  }

(* ------------------------------------------------------------------ *)
(* The bounded-enumeration prover.

   Every margin of every obligation is affine in (f, c) once the
   thresholds are linear forms: m(f, c) = m00 + f*df + c*dc with
   df = m(1,0) - m(0,0) and dc = m(0,1) - m(0,0).  The obligation
   holds for ALL admissible (f, c) iff it holds at every admissible
   grid point up to Quorum_props.grid_bound AND df, dc >= 0 along the
   directions where the obligation still applies: a negative
   difference makes the margin negative for large enough f or c, and
   with both nonnegative every admissible point dominates a minimal
   admissible point — (1,0) or (0,2) — that the grid covers. *)

let form_of defs kind =
  match List.assoc_opt kind defs.by_kind with
  | Some { d_form = Some l; _ } -> l
  | _ -> Quorum_props.canonical kind

let thresholds_at ?override defs ~f ~c =
  let form kind =
    match override with
    | Some (k, l) when k = kind -> l
    | _ -> form_of defs kind
  in
  let n_l =
    match defs.n_form with
    | Some (_, Some l) -> l
    | _ -> Quorum_props.n_linear
  in
  {
    Quorum_props.f;
    c;
    n = Quorum_props.eval n_l ~f ~c;
    sigma = Quorum_props.eval (form Quorum_props.Sigma) ~f ~c;
    tau = Quorum_props.eval (form Quorum_props.Tau) ~f ~c;
    pi = Quorum_props.eval (form Quorum_props.Pi) ~f ~c;
    vc = Quorum_props.eval (form Quorum_props.Vc) ~f ~c;
    majority = Quorum_props.eval (form Quorum_props.Majority) ~f ~c;
  }

type verdict =
  | Proved
  | Grid_violation of { f : int; c : int }  (** witness point *)
  | Unbounded_violation of { var : string }
      (** margin decreases without bound along [var] *)

let prove ?override defs (o : Quorum_props.obligation) =
  let at ~f ~c = thresholds_at ?override defs ~f ~c in
  let witness =
    List.find_opt
      (fun (f, c) ->
        let th = at ~f ~c in
        o.Quorum_props.applies th && not (Quorum_props.holds o th))
      (Quorum_props.grid ())
  in
  match witness with
  | Some (f, c) -> Grid_violation { f; c }
  | None ->
      let m00 = o.Quorum_props.margins (at ~f:0 ~c:0) in
      let m10 = o.Quorum_props.margins (at ~f:1 ~c:0) in
      let m01 = o.Quorum_props.margins (at ~f:0 ~c:1) in
      let decreasing probe = List.exists2 (fun a b -> b - a < 0) m00 probe in
      if o.Quorum_props.applies (at ~f:1 ~c:0) && decreasing m10 then
        Unbounded_violation { var = "f" }
      else if o.Quorum_props.applies (at ~f:0 ~c:1) && decreasing m01 then
        Unbounded_violation { var = "c" }
      else Proved

(* First obligation a candidate threshold assignment violates — used
   to prove each declared mutation actually breaks something. *)
let first_violation ?override defs =
  List.find_map
    (fun (o : Quorum_props.obligation) ->
      match prove ?override defs o with
      | Proved -> None
      | Grid_violation { f; c } -> Some (o, Printf.sprintf "(f=%d, c=%d)" f c)
      | Unbounded_violation { var } ->
          Some (o, Printf.sprintf "(unbounded in %s)" var))
    Quorum_props.obligations

(* ------------------------------------------------------------------ *)
(* R12, definitional half: run on any file that defines thresholds. *)

let lint_defs defs =
  let file = defs.defs_path in
  let acc = ref [] in
  let add line msg = acc := finding ~rule:"R12" ~file ~line msg :: !acc in
  (* Every kind defined, as a linear form, matching the shared
     canonical formula the sanitizer derives from. *)
  (match defs.n_form with
  | None -> add 1 "no definition of n found (expected n = 3f + 2c + 1)"
  | Some (line, None) -> add line "n is not a linear form over (f, c)"
  | Some (line, Some l) ->
      if l <> Quorum_props.n_linear then
        add line
          (Printf.sprintf "n = %s diverges from the canonical %s"
             (Quorum_props.pp_linear l)
             (Quorum_props.pp_linear Quorum_props.n_linear)));
  List.iter
    (fun kind ->
      match List.assoc_opt kind defs.by_kind with
      | None ->
          add 1
            (Printf.sprintf "no definition of %s found" (name_of_kind kind))
      | Some { d_line; d_form = None; _ } ->
          add d_line
            (Printf.sprintf "%s is not a linear form over (f, c)"
               (name_of_kind kind))
      | Some { d_line; d_form = Some l; _ } ->
          let canon = Quorum_props.canonical kind in
          if l <> canon then
            add d_line
              (Printf.sprintf
                 "%s = %s diverges from the shared canonical form %s"
                 (name_of_kind kind) (Quorum_props.pp_linear l)
                 (Quorum_props.pp_linear canon)))
    all_kinds;
  (* Discharge every obligation for the definitions as extracted. *)
  List.iter
    (fun (o : Quorum_props.obligation) ->
      let line =
        (* Attach to the first threshold the obligation names. *)
        let prefixes =
          [
            ("sigma", Quorum_props.Sigma);
            ("tau", Quorum_props.Tau);
            ("pi", Quorum_props.Pi);
            ("vc", Quorum_props.Vc);
            ("majority", Quorum_props.Majority);
            ("ordering-tau", Quorum_props.Tau);
            ("ordering-pi", Quorum_props.Pi);
          ]
        in
        match
          List.find_opt
            (fun (p, _) -> has_prefix ~prefix:p o.Quorum_props.name)
            prefixes
        with
        | Some (_, k) -> (
            match List.assoc_opt k defs.by_kind with
            | Some d -> d.d_line
            | None -> 1)
        | None -> 1
      in
      match prove defs o with
      | Proved -> ()
      | Grid_violation { f; c } ->
          add line
            (Printf.sprintf "obligation %s violated (%s) at f=%d c=%d"
               o.Quorum_props.name o.Quorum_props.law f c)
      | Unbounded_violation { var } ->
          add line
            (Printf.sprintf
               "obligation %s violated (%s) for sufficiently large %s"
               o.Quorum_props.name o.Quorum_props.law var))
    Quorum_props.obligations;
  (* Every declared mutation must provably violate an obligation, else
     the fuzzer's weakening is a dead oracle. *)
  let covered = ref [] in
  List.iter
    (fun (kind, d) ->
      List.iter
        (fun (ctor, form) ->
          covered := ctor :: !covered;
          match form with
          | None ->
              add d.d_line
                (Printf.sprintf "mutation %s of %s is not a linear form" ctor
                   (name_of_kind kind))
          | Some l -> (
              match first_violation ~override:(kind, l) defs with
              | Some _ -> ()
              | None ->
                  add d.d_line
                    (Printf.sprintf
                       "mutation %s (%s = %s) violates no obligation on the \
                        admissible grid — a vacuous weakening"
                       ctor (name_of_kind kind) (Quorum_props.pp_linear l))))
        d.d_mutations)
    defs.by_kind;
  List.iter
    (fun ctor ->
      if not (mem ctor !covered) then
        add 1
          (Printf.sprintf
             "mutation constructor %s weakens no threshold definition" ctor))
    defs.mutation_ctors;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Site analysis: R12 comparison half, R13, R14 *)

(* Local aliases like pbft's [let quorum t = Config.quorum_bft (cfg t)]:
   a top-level binding whose body is a bare (unadjusted) call to a
   known threshold function. *)
let alias_map structure =
  List.filter_map
    (fun (vb : Parsetree.value_binding) ->
      match binding_name vb with
      | Some name when not (List.mem_assoc name kind_table) -> (
          match Msgflow.tside_of_expr (peel_body vb.pvb_expr) with
          | Some (Msgflow.T_call { callee; adjust = 0 })
            when List.mem_assoc callee kind_table ->
              Some (name, List.assoc callee kind_table)
          | _ -> None)
      | _ -> None)
    (structure_bindings structure)

let resolve_kind defs aliases (thresh : Msgflow.tside) =
  match thresh with
  | Msgflow.T_call { callee; _ } -> (
      match List.assoc_opt callee kind_table with
      | Some k -> Some k
      | None -> List.assoc_opt callee aliases)
  | Msgflow.T_linear l ->
      List.find_map
        (fun kind -> if form_of defs kind = l then Some kind else None)
        all_kinds

let pp_tside = function
  | Msgflow.T_call { callee; adjust = 0 } -> callee
  | Msgflow.T_call { callee; adjust } -> Printf.sprintf "%s %+d" callee adjust
  | Msgflow.T_linear l -> Quorum_props.pp_linear l

(* R12 per comparison site: the threshold must resolve to a known
   quorum kind, and any hand adjustment must carry a matching
   [@quorum.adjust k] annotation declaring the k implicit votes. *)
let r12_site ~file aliases defs (fl : Msgflow.file) =
  List.concat_map
    (fun (fn : Msgflow.func) ->
      List.filter_map
        (fun (e : Msgflow.einfo) ->
          match e.Msgflow.ev with
          | Msgflow.Threshold_cmp { thresh; annot; _ } -> (
              let fail msg = Some (finding ~rule:"R12" ~file ~line:e.Msgflow.line msg) in
              match resolve_kind defs aliases thresh with
              | None ->
                  fail
                    (Printf.sprintf
                       "comparison against unresolved threshold form %s"
                       (pp_tside thresh))
              | Some _ -> (
                  let adjust =
                    match thresh with
                    | Msgflow.T_call { adjust; _ } -> adjust
                    | Msgflow.T_linear _ -> 0
                  in
                  match annot with
                  | Some k when Int.equal k min_int ->
                      fail "malformed [@quorum.adjust] payload (expected an integer)"
                  | None when not (Int.equal adjust 0) ->
                      fail
                        (Printf.sprintf
                           "hand-adjusted threshold comparison (%s) without a \
                            [@quorum.adjust %d] annotation declaring the \
                            implicit votes"
                           (pp_tside thresh) (-adjust))
                  | Some k when Int.equal adjust 0 ->
                      fail
                        (Printf.sprintf
                           "[@quorum.adjust %d] on an unadjusted comparison" k)
                  | Some k when not (Int.equal k (-adjust)) ->
                      fail
                        (Printf.sprintf
                           "[@quorum.adjust %d] does not match the adjustment \
                            (%s declares %d implicit votes)"
                           k (pp_tside thresh) (-adjust))
                  | _ -> None))
          | _ -> None)
        fn.Msgflow.fn_events)
    fl.Msgflow.funcs

(* ------------------------------------------------------------------ *)
(* R13: timer discipline *)

let cancel_words = [ "retire"; "halt"; "stop"; "cancel"; "done" ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

(* Field/instance-variable names assigned anywhere in the file: a
   cancel guard must test a flag something actually sets. *)
let assigned_fields structure =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_setfield (_, { txt; _ }, _) ->
              acc := last_component txt :: !acc
          | Pexp_setinstvar ({ txt; _ }, _) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  List.iter (fun si -> it.structure_item it si) structure;
  List.sort_uniq String.compare !acc

let r13 ~file structure (fl : Msgflow.file) =
  let fields = assigned_fields structure in
  let local_funcs = List.map (fun (f : Msgflow.func) -> f.Msgflow.fn_name) fl.Msgflow.funcs in
  let guarded cb_guards =
    List.exists
      (fun g ->
        List.exists (fun w -> contains_sub g w) cancel_words && mem g fields)
      cb_guards
  in
  List.concat_map
    (fun (fn : Msgflow.func) ->
      List.filter_map
        (fun (e : Msgflow.einfo) ->
          match e.Msgflow.ev with
          | Msgflow.Timer_arm { callee; cb_guards } ->
              let ok =
                if String.equal callee "set_replica_timer" then
                  (* A call through the wrapper: the wrapper's own raw
                     arm site is checked where it is defined. *)
                  mem "set_replica_timer" local_funcs || guarded cb_guards
                else guarded cb_guards
              in
              if ok then None
              else
                Some
                  (finding ~rule:"R13" ~file ~line:e.Msgflow.line
                     (Printf.sprintf
                        "%s arms a timer whose callback has no cancel/retire \
                         guard (no assigned flag matching %s tested in the \
                         callback)"
                        callee
                        (String.concat "/" cancel_words)))
          | _ -> None)
        fn.Msgflow.fn_events)
    fl.Msgflow.funcs

(* ------------------------------------------------------------------ *)
(* R14: sanitizer coverage *)

let file_has_san_check (fl : Msgflow.file) =
  List.exists
    (fun (f : Msgflow.func) ->
      List.exists
        (fun (e : Msgflow.einfo) ->
          match e.Msgflow.ev with Msgflow.San_check _ -> true | _ -> false)
        f.Msgflow.fn_events)
    fl.Msgflow.funcs

(* A threshold-crossing decision is [count >= thresh] or
   [count > thresh] (slicing loops compare with [<] and claim no
   quorum).  The pairing is per top-level function — closures are
   inlined into their defining function's event stream. *)
let r14 ~file aliases defs (fl : Msgflow.file) =
  if not (file_has_san_check fl) then []
    (* Files that never touch the sanitizer (clients checking f+1
       replies) have nothing to pair against. *)
  else
    List.concat_map
      (fun (fn : Msgflow.func) ->
        let checks =
          List.filter_map
            (fun (e : Msgflow.einfo) ->
              match e.Msgflow.ev with
              | Msgflow.San_check kind -> Some kind
              | _ -> None)
            fn.Msgflow.fn_events
        in
        List.filter_map
          (fun (e : Msgflow.einfo) ->
            match e.Msgflow.ev with
            | Msgflow.Threshold_cmp { op = ">=" | ">"; thresh; _ } -> (
                match resolve_kind defs aliases thresh with
                | None -> None (* already an R12 finding *)
                | Some kind ->
                    if mem (kind_ctor kind) checks then None
                    else
                      Some
                        (finding ~rule:"R14" ~file ~line:e.Msgflow.line
                           (Printf.sprintf
                              "threshold-crossing decision on %s (%s) has no \
                               Sanitizer.check_quorum %s in this function"
                              (Quorum_props.kind_name kind) (pp_tside thresh)
                              (kind_ctor kind))))
            | _ -> None)
          fn.Msgflow.fn_events)
      fl.Msgflow.funcs

(* ------------------------------------------------------------------ *)
(* R15: no-wildcard price/size tables *)

let stdlib_ctors = [ "Some"; "None"; "::"; "[]"; "()"; "true"; "false" ]

let rec pat_head_ctor (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> Some (last_component txt)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_head_ctor p
  | Ppat_or (a, _) -> pat_head_ctor a
  | _ -> None

let rec pat_is_wildcard (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_is_wildcard p
  | _ -> false

(* A variant table: a [function]/[match] whose cases name at least one
   non-stdlib constructor. *)
let table_cases (body : Parsetree.expression) =
  let cases =
    match body.pexp_desc with
    | Pexp_function cases -> cases
    | Pexp_match (_, cases) -> cases
    | _ -> []
  in
  let is_table =
    List.exists
      (fun (c : Parsetree.case) ->
        match pat_head_ctor c.pc_lhs with
        | Some ctor -> not (mem ctor stdlib_ctors)
        | None -> false)
      cases
  in
  if is_table then cases else []

let r15 ~file structure =
  let is_cost_model = String.equal (Filename.basename file) "cost_model.ml" in
  let has_msg = match Msgflow.msg_constructors structure with [] -> false | _ -> true in
  let wire_tables = [ "size"; "kind" ] in
  List.concat_map
    (fun (vb : Parsetree.value_binding) ->
      match binding_name vb with
      | Some name when (has_msg && mem name wire_tables) || is_cost_model ->
          List.filter_map
            (fun (c : Parsetree.case) ->
              if pat_is_wildcard c.pc_lhs then
                Some
                  (finding ~rule:"R15" ~file
                     ~line:c.pc_lhs.ppat_loc.Location.loc_start.Lexing.pos_lnum
                     (Printf.sprintf
                        "wildcard case in %s: a new constructor would ship \
                         unaccounted — match every constructor explicitly"
                        name))
              else None)
            (table_cases (peel_body vb.pvb_expr))
      | _ -> [])
    (structure_bindings structure)

(* ------------------------------------------------------------------ *)
(* Entry points *)

let lint_structure ~defs ~path structure =
  let fl = Msgflow.summarize ~path structure in
  let aliases = alias_map structure in
  let local_defs = extract_defs ~path structure in
  let definitional =
    match local_defs with Some d -> lint_defs { d with defs_path = path } | None -> []
  in
  (* config.ml is the definitions file: its own arithmetic is covered
     by the definitional half, not the site rules. *)
  let sites =
    if Option.is_some local_defs then []
    else
      r12_site ~file:path aliases defs fl
      @ r13 ~file:path structure fl
      @ r14 ~file:path aliases defs fl
  in
  dedup_sorted (definitional @ sites @ r15 ~file:path structure)

let lint_source ~defs ~path source =
  let path = normalize path in
  if not (in_scope path) then []
  else
    match Msgflow.parse ~path source with
    | None -> [] (* Lint reports parse failures *)
    | Some structure -> lint_structure ~defs ~path structure

(* ------------------------------------------------------------------ *)
(* The obligation report (CI artifact) *)

let obligation_report defs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# SBFT quorum obligation report (R12)\n\
     # Symbolic threshold definitions, the paper's safety/liveness\n\
     # obligations discharged over the admissible grid (f, c >= 0,\n\
     # n = 3f + 2c + 1 >= 4, enumerated to f, c <= 8 and extended by\n\
     # finite differences), and the declared config mutations with the\n\
     # obligation each one violates.\n";
  Buffer.add_string buf (Printf.sprintf "\ndefinitions (%s):\n" defs.defs_path);
  let show_def name l =
    let canon_mark c = if l = c then "" else "  << DIVERGES from canonical" in
    Buffer.add_string buf
      (Printf.sprintf "  %-16s = %s%s\n" name (Quorum_props.pp_linear l)
         (canon_mark
            (match List.assoc_opt name (List.map (fun (n, k) -> (n, Quorum_props.canonical k)) kind_table) with
            | Some c -> c
            | None -> Quorum_props.n_linear)))
  in
  (match defs.n_form with
  | Some (_, Some l) -> show_def "n" l
  | _ -> Buffer.add_string buf "  n                = <not extracted>\n");
  List.iter
    (fun (name, kind) ->
      match List.assoc_opt kind defs.by_kind with
      | Some { d_form = Some l; _ } -> show_def name l
      | _ -> Buffer.add_string buf (Printf.sprintf "  %-16s = <not extracted>\n" name))
    kind_table;
  Buffer.add_string buf "\nobligations:\n";
  List.iter
    (fun (o : Quorum_props.obligation) ->
      match prove defs o with
      | Proved ->
          Buffer.add_string buf
            (Printf.sprintf "  PASS %-26s %s\n" o.Quorum_props.name
               o.Quorum_props.law)
      | Grid_violation { f; c } ->
          Buffer.add_string buf
            (Printf.sprintf "  FAIL %-26s %s — violated at f=%d c=%d\n"
               o.Quorum_props.name o.Quorum_props.law f c)
      | Unbounded_violation { var } ->
          Buffer.add_string buf
            (Printf.sprintf
               "  FAIL %-26s %s — violated for sufficiently large %s\n"
               o.Quorum_props.name o.Quorum_props.law var))
    Quorum_props.obligations;
  Buffer.add_string buf "\nmutations:\n";
  let any = ref false in
  List.iter
    (fun (kind, d) ->
      List.iter
        (fun (ctor, form) ->
          any := true;
          match form with
          | None ->
              Buffer.add_string buf
                (Printf.sprintf "  %s (%s): <not a linear form>\n" ctor
                   (name_of_kind kind))
          | Some l -> (
              match first_violation ~override:(kind, l) defs with
              | Some (o, where) ->
                  Buffer.add_string buf
                    (Printf.sprintf "  %s: %s = %s violates %s at %s\n" ctor
                       (name_of_kind kind) (Quorum_props.pp_linear l)
                       o.Quorum_props.name where)
              | None ->
                  Buffer.add_string buf
                    (Printf.sprintf "  %s: %s = %s violates NOTHING (vacuous)\n"
                       ctor (name_of_kind kind) (Quorum_props.pp_linear l))))
        d.d_mutations)
    defs.by_kind;
  if not !any then Buffer.add_string buf "  (none declared)\n";
  Buffer.contents buf
