(** Property oracles evaluated over the final cluster state and the
    per-client completion log after a schedule runs to its horizon.

    The suite: runtime-sanitizer verdict, agreement (Theorem VI.1: no
    two honest replicas commit different blocks at the same sequence
    number; equal executed heights imply equal state digests), validity
    (every executed op traces to a known client's submission),
    checkpoint-digest consistency, at-most-once execution under client
    retries, and liveness after GST (only asserted on
    eventually-synchronous schedules).

    Replicas the schedule ever flips Byzantine are excluded from every
    oracle — state corrupted while Byzantine persists even after a
    post-GST flip back to honest.

    The oracles themselves are pure functions of an {!obs} snapshot:
    {!observe} extracts one from a live cluster, and unit tests
    hand-build minimal counterexample snapshots that must trip each
    oracle — so a check weakened by refactoring fails a synthetic trace
    loudly instead of silently accepting simulator output. *)

type verdict = { name : string; pass : bool; detail : string }

type ctx = {
  cluster : Sbft_core.Cluster.t;
  sched : Schedule.t;
  completions : (int * string) list array;
      (** per client index, (timestamp, accepted value), in completion
          order *)
  ever_byzantine : int list;
  sanitizer_violation : string option;
}

(** Snapshot of one honest replica, as the oracles see it. *)
type replica_obs = {
  rid : int;
  last_executed : int;
  digest : string;  (** state digest at [last_executed] *)
  blocks : (int * (int * int * string) list) list;
      (** committed blocks by sequence number, each request
          canonicalized to (client, timestamp, op) *)
  certified : (int * string) list;
      (** π-certified checkpoint (seq, digest) pairs *)
  counters : int array;  (** per client index: service counter cell *)
  executed_for : int array;
      (** per client index: distinct requests executed *)
}

(** Everything the six oracles inspect, as plain data. *)
type obs = {
  num_replicas : int;
  num_clients : int;
  replicas : replica_obs list;  (** honest replicas only *)
  submitted : int array;
      (** per client: highest timestamp ever submitted *)
  completed_ops : int array;  (** per client: operations completed *)
  accepted : (int * string) list array;
      (** per client: (timestamp, accepted value) in completion order *)
  requests : int;  (** closed-loop requests per client *)
  gst_ms : int option;
  sanitizer_violation : string option;
}

val expected_op : int -> string
(** [expected_op client_index] is the operation every client submits on
    every request: increment its own counter cell. The oracles rely on
    this shape — the counter value equals the number of distinct
    executions, and the reply value equals the request's timestamp. *)

val observe : ctx -> obs
(** Snapshot the final cluster state (honest replicas only) into the
    pure observation record the oracles consume. *)

val evaluate_obs : obs -> verdict list
(** All six verdicts over a snapshot, in a fixed order (sanitizer,
    agreement, validity, checkpoints, at-most-once, liveness). Pure:
    unit tests drive it with hand-built counterexample traces. *)

val evaluate : ctx -> verdict list
(** [evaluate ctx] is [evaluate_obs (observe ctx)]. *)
