(** Property oracles evaluated over the final cluster state and the
    per-client completion log after a schedule runs to its horizon.

    The suite: runtime-sanitizer verdict, agreement (Theorem VI.1: no
    two honest replicas commit different blocks at the same sequence
    number; equal executed heights imply equal state digests), validity
    (every executed op traces to a known client's submission),
    checkpoint-digest consistency, at-most-once execution under client
    retries, and liveness after GST (only asserted on
    eventually-synchronous schedules).

    Replicas the schedule ever flips Byzantine are excluded from every
    oracle — state corrupted while Byzantine persists even after a
    post-GST flip back to honest. *)

type verdict = { name : string; pass : bool; detail : string }

type ctx = {
  cluster : Sbft_core.Cluster.t;
  sched : Schedule.t;
  completions : (int * string) list array;
      (** per client index, (timestamp, accepted value), in completion
          order *)
  ever_byzantine : int list;
  sanitizer_violation : string option;
}

val expected_op : int -> string
(** [expected_op client_index] is the operation every client submits on
    every request: increment its own counter cell. The oracles rely on
    this shape — the counter value equals the number of distinct
    executions, and the reply value equals the request's timestamp. *)

val evaluate : ctx -> verdict list
(** All six verdicts, in a fixed order (sanitizer, agreement, validity,
    checkpoints, at-most-once, liveness). *)
