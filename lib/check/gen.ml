(* Seeded random schedule generation.

   Generated schedules respect the fault model the safety proofs assume
   (at most [f] replicas ever turn Byzantine) so that a failing oracle
   is always a genuine protocol bug, never an over-budget adversary.
   Crashes, partitions, drops, and delays are unbudgeted: they can stall
   progress but must never break safety.

   Eventually-synchronous schedules additionally guarantee the paper's
   liveness precondition: at GST every injected fault is undone (heal,
   drop 0, reconnect, recover, Byzantine replicas fall silent...
   actually flip honest) and a quiet period follows, so the
   liveness-after-GST oracle applies. *)

open Sbft_sim

type profile = {
  quick : bool;  (** smaller clusters, shorter horizons *)
  mutate : bool;  (** generate weak-sigma mutation schedules *)
  adversarial : bool;
      (** attach a random adaptive-adversary header (policy, pool ≤ f,
          budget, observation window) to every schedule *)
}

let default_profile = { quick = false; mutate = false; adversarial = false }

(* Weighted fault-class choice.  Gray failures (slow CPU, flapping
   links, degraded fsync) and rollback attacks are safety-neutral under
   the defenses (WAL + conservative rejoin), so they join the
   unbudgeted classes. *)
type klass =
  | K_crash | K_amnesia | K_recover | K_partition | K_heal | K_drop | K_delay
  | K_isolate | K_reconnect | K_byz | K_slow | K_flap | K_fsync | K_rollback

let classes =
  [|
    (K_crash, 15); (K_amnesia, 8); (K_recover, 10); (K_partition, 12); (K_heal, 8);
    (K_drop, 10); (K_delay, 12); (K_isolate, 10); (K_reconnect, 7); (K_byz, 16);
    (K_slow, 8); (K_flap, 8); (K_fsync, 6); (K_rollback, 7);
  |]

let pick_class rng =
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 classes in
  let r = Rng.int rng total in
  let acc = ref 0 in
  let chosen = ref K_crash in
  (try
     Array.iter
       (fun (k, w) ->
         acc := !acc + w;
         if r < !acc then begin
           chosen := k;
           raise Exit
         end)
       classes
   with Exit -> ());
  !chosen

let random_partition rng ~num_replicas =
  let nodes = Array.init num_replicas (fun i -> i) in
  Rng.shuffle rng nodes;
  let cut = 1 + Rng.int rng (num_replicas - 1) in
  let a = Array.to_list (Array.sub nodes 0 cut) in
  let b = Array.to_list (Array.sub nodes cut (num_replicas - cut)) in
  [ List.sort Int.compare a; List.sort Int.compare b ]

let byz_flavours = [| Schedule.Equivocate; Schedule.Silent; Schedule.Corrupt_shares; Schedule.Wrong_exec_digest; Schedule.Stale_vc |]

(* Build the fault prefix: [count] weighted actions at sorted random
   times within [0, window_ms).  [byz_pool] are the replicas allowed to
   turn Byzantine (|byz_pool| <= f). *)
let fault_steps rng ~num_replicas ~byz_pool ~count ~window_ms =
  let crashed = Hashtbl.create 8 in
  let isolated = Hashtbl.create 8 in
  let steps = ref [] in
  let extra = ref [] in
  for _ = 1 to count do
    let at_ms = 100 + Rng.int rng (max 1 (window_ms - 100)) in
    let replica () = Rng.int rng num_replicas in
    let action =
      match pick_class rng with
      | K_crash ->
          let node = replica () in
          Hashtbl.replace crashed node ();
          Some (Schedule.Crash node)
      | K_amnesia ->
          (* Same crashed-pool as K_crash, so K_recover and the GST heal
             cover amnesia crashes too (Recover routes through the
             rebuild-from-durable path automatically). *)
          let node = replica () in
          Hashtbl.replace crashed node ();
          Some (Schedule.Crash_amnesia node)
      | K_recover -> (
          match Sbft_sim.Det.sorted_keys ~compare:Int.compare crashed with
          | [] -> None
          | nodes ->
              let node = Rng.pick rng (Array.of_list nodes) in
              Hashtbl.remove crashed node;
              Some (Schedule.Recover node))
      | K_partition -> Some (Schedule.Partition (random_partition rng ~num_replicas))
      | K_heal -> Some Schedule.Heal
      | K_drop -> Some (Schedule.Set_drop (float_of_int (1 + Rng.int rng 20) /. 100.))
      | K_delay ->
          let src = replica () and dst = replica () in
          if Int.equal src dst then None
          else Some (Schedule.Delay_link { src; dst; delay_ms = 50 + Rng.int rng 450 })
      | K_isolate ->
          let node = replica () in
          Hashtbl.replace isolated node ();
          Some (Schedule.Isolate node)
      | K_reconnect -> (
          match Sbft_sim.Det.sorted_keys ~compare:Int.compare isolated with
          | [] -> None
          | nodes ->
              let node = Rng.pick rng (Array.of_list nodes) in
              Hashtbl.remove isolated node;
              Some (Schedule.Reconnect node))
      | K_byz -> (
          match byz_pool with
          | [] -> None
          | pool -> Some (Schedule.Byzantine (Rng.pick rng (Array.of_list pool), Rng.pick rng byz_flavours)))
      | K_slow ->
          Some (Schedule.Slow (replica (), float_of_int (2 + Rng.int rng 7)))
      | K_flap ->
          let src = replica () and dst = replica () in
          if Int.equal src dst then None
          else
            let period_ms = 100 + Rng.int rng 400 in
            let up_ms = 20 + Rng.int rng (period_ms - 20) in
            Some (Schedule.Flap { src; dst; period_ms; up_ms })
      | K_fsync ->
          Some (Schedule.Fsync_delay (replica (), float_of_int (5 + Rng.int rng 45)))
      | K_rollback ->
          (* Composite: crash-amnesia now, tamper the disk shortly
             after, rejoin later.  The tamper and recover ride as extra
             steps so the trio survives independent shrinking (a lone
             rollback without amnesia is a no-op, not an error). *)
          let node = replica () in
          Hashtbl.remove crashed node;
          let before = Rng.int rng 16 in
          extra :=
            { Schedule.at_ms = at_ms + 200; action = Schedule.Rollback (node, before) }
            :: { Schedule.at_ms = at_ms + 500 + Rng.int rng 1_000;
                 action = Schedule.Recover node }
            :: !extra;
          Some (Schedule.Crash_amnesia node)
    in
    match action with
    | Some action -> steps := { Schedule.at_ms; action } :: !steps
    | None -> ()
  done;
  List.rev_append !steps (List.rev !extra)

(* Undo every fault at GST so the quiet period is genuinely quiet —
   including the gray failures: slowed CPUs and degraded disks return
   to full speed, flapping links stabilize. *)
let heal_steps ~at_ms ~byz_pool steps =
  let crashed = Hashtbl.create 8 in
  let isolated = Hashtbl.create 8 in
  let slowed = Hashtbl.create 8 in
  let flapped = Hashtbl.create 8 in
  let degraded = Hashtbl.create 8 in
  List.iter
    (fun (s : Schedule.step) ->
      match s.Schedule.action with
      | Schedule.Crash n | Schedule.Crash_amnesia n -> Hashtbl.replace crashed n ()
      | Schedule.Recover n -> Hashtbl.remove crashed n
      | Schedule.Isolate n -> Hashtbl.replace isolated n ()
      | Schedule.Reconnect n -> Hashtbl.remove isolated n
      | Schedule.Slow (n, scale) ->
          if scale > 1.0 then Hashtbl.replace slowed n ()
          else Hashtbl.remove slowed n
      | Schedule.Flap { src; dst; _ } ->
          Hashtbl.replace flapped src ();
          Hashtbl.replace flapped dst ()
      | Schedule.Unflap n -> Hashtbl.remove flapped n
      | Schedule.Fsync_delay (n, scale) ->
          if scale > 1.0 then Hashtbl.replace degraded n ()
          else Hashtbl.remove degraded n
      | _ -> ())
    (List.stable_sort
       (fun (a : Schedule.step) b -> Int.compare a.Schedule.at_ms b.Schedule.at_ms)
       steps);
  let mk action = { Schedule.at_ms; action } in
  let keys tbl = Sbft_sim.Det.sorted_keys ~compare:Int.compare tbl in
  [ mk Schedule.Heal; mk (Schedule.Set_drop 0.0) ]
  @ List.map (fun n -> mk (Schedule.Reconnect n)) (keys isolated)
  @ List.map (fun n -> mk (Schedule.Recover n)) (keys crashed)
  @ List.map (fun n -> mk (Schedule.Slow (n, 1.0))) (keys slowed)
  @ List.map (fun n -> mk (Schedule.Unflap n)) (keys flapped)
  @ List.map (fun n -> mk (Schedule.Fsync_delay (n, 1.0))) (keys degraded)
  @ List.map (fun n -> mk (Schedule.Byzantine (n, Schedule.Honest))) byz_pool

let generate ?(profile = default_profile) ~seed index =
  let rng = Rng.create (Int64.add seed (Int64.of_int (index * 2654435761))) in
  let f, c =
    if profile.quick then (1, 0)
    else Rng.pick rng [| (1, 0); (1, 0); (1, 1); (2, 0) |]
  in
  let num_replicas = Sbft_core.Config.n (Sbft_core.Config.sbft ~f ~c) in
  let clients = 1 + Rng.int rng (if profile.quick then 2 else 3) in
  let requests = 3 + Rng.int rng (if profile.quick then 3 else 6) in
  let eventually_synchronous = Rng.bool rng 0.65 in
  let fault_window = if profile.quick then 8_000 else 15_000 in
  let quiet = 40_000 + Rng.int rng 20_000 in
  let count = 1 + Rng.int rng (if profile.quick then 4 else 7) in
  (* Up to f replicas may misbehave; bias away from the initial primary
     half the time so fault-free views also get explored. *)
  let byz_pool =
    let max_byz = Rng.int rng (f + 1) in
    let candidates = Array.init num_replicas (fun i -> i) in
    Rng.shuffle rng candidates;
    Array.to_list (Array.sub candidates 0 max_byz) |> List.sort Int.compare
  in
  let prefix = fault_steps rng ~num_replicas ~byz_pool ~count ~window_ms:fault_window in
  (* Adaptive adversary rider: colluders come from the byz pool (so the
     ≤ f budget and the GST honest-flip cover them), and the
     observation window closes before GST so Expect_pass schedules
     keep their quiet period. *)
  let adversary =
    if (not profile.adversarial) || byz_pool = [] then None
    else
      let policies =
        [|
          Schedule.Equivocating_collector;
          Schedule.Withhold_until_threshold;
          Schedule.View_change_storm;
          Schedule.Checkpoint_split;
        |]
      in
      let from_ms = 200 + Rng.int rng 800 in
      Some
        {
          Schedule.policy = Rng.pick rng policies;
          pool = byz_pool;
          budget = 2 + Rng.int rng 7;
          every_ms = 150 + Rng.int rng 350;
          from_ms;
          until_ms = max from_ms (fault_window - 500);
        }
  in
  let gst_ms, steps, horizon_ms, expect =
    if eventually_synchronous then
      let gst = fault_window + 1_000 in
      ( Some gst,
        prefix @ heal_steps ~at_ms:gst ~byz_pool prefix,
        gst + quiet,
        Schedule.Expect_pass )
    else (None, prefix, fault_window + (if profile.quick then 10_000 else 20_000), Schedule.Expect_any)
  in
  let mutation, expect =
    if profile.mutate then (Schedule.Weak_sigma, Schedule.Expect_any) else (Schedule.No_mutation, expect)
  in
  {
    Schedule.name = Printf.sprintf "gen-%Ld-%d" seed index;
    seed = Int64.add (Int64.mul seed 1_000_003L) (Int64.of_int index);
    f;
    c;
    clients;
    requests;
    win = (if Rng.bool rng 0.3 then 4 else 8);
    topology = (if Rng.bool rng 0.8 then Schedule.Lan else Schedule.Continent);
    acks = Rng.bool rng 0.75;
    (* Always durable: amnesia crashes without a WAL can legitimately
       lose promises, so a generated Expect_pass schedule would flake.
       Rejoin stays conservative for the same reason — eager rejoin
       after a generated rollback can legitimately violate safety;
       only hand-written Expect_fail twins disable the defense. *)
    wal = true;
    rejoin_conservative = true;
    mutation;
    adversary;
    gst_ms;
    horizon_ms;
    expect;
    steps;
  }

(* The mutation check (§fuzzer design): weak-sigma schedules need an
   equivocating primary and a cluster where sigma drops below the honest
   intersection bound — f=1, c=1 (n=6) gives sigma 2f+c = 3 = n/2, so
   two disjoint halves each reach a certificate. *)
let generate_mutation ~seed index =
  let rng = Rng.create (Int64.add seed (Int64.of_int ((index * 40503) + 7))) in
  let base = generate ~profile:{ default_profile with mutate = true } ~seed index in
  let extra = fault_steps rng ~num_replicas:6 ~byz_pool:[ 0 ] ~count:(Rng.int rng 4) ~window_ms:10_000 in
  {
    base with
    Schedule.name = Printf.sprintf "mut-%Ld-%d" seed index;
    f = 1;
    c = 1;
    clients = 2;
    requests = 4;
    mutation = Schedule.Weak_sigma;
    gst_ms = None;
    horizon_ms = 20_000;
    expect = Schedule.Expect_any;
    steps = { Schedule.at_ms = 200; action = Schedule.Byzantine (0, Schedule.Equivocate) } :: extra;
  }
