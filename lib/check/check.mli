(** CLI driver for the schedule fuzzer (invoked as
    [bench/main.exe check ...]): generate → run → shrink, plus corpus
    replay. All output derives from schedule contents and verdicts only,
    so a fixed seed produces byte-identical output — CI diffs two
    runs. *)

type fuzz_result = {
  ran : int;
  failures : (Schedule.t * Schedule.t) list;  (** (original, shrunk) *)
  expectation_errors : (string * string) list;  (** (name, error) *)
}

val fuzz :
  ?seeds:int ->
  ?quick:bool ->
  ?mutate:bool ->
  ?adversarial:bool ->
  ?seed:int64 ->
  ?out_dir:string ->
  ?budget_s:float ->
  unit ->
  fuzz_result
(** Run [seeds] generated schedules; every failure is ddmin-shrunk and
    the minimal [.schedule] artifact saved under [out_dir] (default
    ["bench_out"]).  [adversarial] attaches a random adaptive-adversary
    header to every schedule ({!Gen.profile}).  [budget_s] caps the
    loop by CPU time: [seeds] becomes an upper bound and the run stops
    at the budget.  Each schedule still derives purely from
    [(seed, index)], so findings replay exactly; only the number of
    schedules visited is host-dependent. *)

val replay_one : string -> bool
(** Load a [.schedule] file, run it, check it against its [expect]
    header. *)

val replay_dir : string -> bool
(** Replay every [.schedule] in a directory; false if any misses its
    expectation (or the directory holds none). *)

val main : string list -> int
(** The [check] subcommand: fuzz flags [--seeds N] [--seed S] [--quick]
    [--mutate] [--adversarial] [--out DIR] [--budget-s SECONDS], or
    [replay FILE...] / [replay-dir DIR].
    Returns the exit code: 0 ok, 1 findings, 2 usage. In [--mutate]
    mode the polarity flips: the run succeeds only if the oracles
    caught the mutation. *)
