open Sbft_core
open Sbft_sim

type outcome = {
  sched : Schedule.t;
  verdicts : Oracle.verdict list;
  failed : Oracle.verdict option;  (** first failing oracle, if any *)
  completed : int;
  events : int;
}

let config_of (s : Schedule.t) =
  let base = Config.sbft ~f:s.Schedule.f ~c:s.Schedule.c in
  {
    base with
    Config.win = s.Schedule.win;
    execution_acks = s.Schedule.acks;
    durable_wal = s.Schedule.wal;
    conservative_rejoin = s.Schedule.rejoin_conservative;
    mutation =
      (match s.Schedule.mutation with
      | Schedule.No_mutation -> None
      | Schedule.Weak_sigma -> Some Config.Weak_sigma_quorum
      | Schedule.Weak_tau -> Some Config.Weak_tau_quorum
      | Schedule.Weak_vc -> Some Config.Weak_vc_quorum);
    (* Weak-sigma violates agreement by design; the sanitizer would
       abort the run before the agreement oracle gets to observe the
       divergence, which is the whole point of that mutation check.
       Weak-tau/weak-vc stay sanitized: the sanitizer re-derives the
       thresholds independently of Config, so tripping it IS the
       expected detection. *)
    sanitize =
      (match s.Schedule.mutation with
      | Schedule.Weak_sigma -> false
      | Schedule.No_mutation | Schedule.Weak_tau | Schedule.Weak_vc -> true);
  }

let topology_of = function
  | Schedule.Lan -> fun ~num_nodes -> Topology.lan ~num_nodes
  | Schedule.Continent -> fun ~num_nodes -> Topology.continent ~num_nodes
  | Schedule.World -> fun ~num_nodes -> Topology.world ~num_nodes

let replica_byz = function
  | Schedule.Equivocate -> Replica.Equivocating_primary
  | Schedule.Silent -> Replica.Silent
  | Schedule.Corrupt_shares -> Replica.Corrupt_shares
  | Schedule.Wrong_exec_digest -> Replica.Wrong_exec_digest
  | Schedule.Stale_vc -> Replica.Stale_view_change
  | Schedule.Honest -> Replica.Honest

(* Replicas the schedule ever flips to a non-honest behaviour.  The
   oracles exclude these even if a later step (the post-GST quiet
   period) flips them back: state corrupted while Byzantine persists.
   An adaptive adversary's pool counts wholesale — its policy may flip
   any member at any tick, so all of them are suspect. *)
let ever_byzantine (s : Schedule.t) =
  let n = Schedule.num_replicas s in
  let static =
    List.filter_map
      (fun (step : Schedule.step) ->
        match step.Schedule.action with
        | Schedule.Byzantine (node, b)
          when node >= 0 && node < n
               && not (match b with Schedule.Honest -> true | _ -> false) ->
            Some node
        | _ -> None)
      s.Schedule.steps
  in
  let pool =
    match s.Schedule.adversary with
    | None -> []
    | Some a -> List.filter (fun p -> p >= 0 && p < n) a.Schedule.pool
  in
  List.sort_uniq Int.compare (static @ pool)

let apply (cluster : Cluster.t) (sched : Schedule.t) action =
  let num_nodes = Schedule.num_nodes sched in
  let n = Schedule.num_replicas sched in
  let valid_node node = node >= 0 && node < num_nodes in
  match action with
  | Schedule.Crash node -> if valid_node node then Engine.crash cluster.Cluster.engine node
  | Schedule.Crash_amnesia node ->
      (* Replicas only: clients have no durable state to lose. *)
      if node >= 0 && node < n then Cluster.crash_amnesia cluster node
  | Schedule.Recover node ->
      if node >= 0 && node < n then Cluster.recover_replica cluster node
      else if valid_node node then Engine.recover cluster.Cluster.engine node
  | Schedule.Partition groups ->
      let g = Array.make num_nodes 0 in
      List.iteri
        (fun i nodes -> List.iter (fun node -> if valid_node node then g.(node) <- i) nodes)
        groups;
      Network.set_partition cluster.Cluster.network ~groups:(Some g)
  | Schedule.Heal -> Network.set_partition cluster.Cluster.network ~groups:None
  | Schedule.Set_drop p -> Network.set_drop_prob cluster.Cluster.network p
  | Schedule.Delay_link { src; dst; delay_ms } ->
      if valid_node src && valid_node dst then
        Network.set_extra_delay cluster.Cluster.network ~src ~dst (Engine.ms delay_ms)
  | Schedule.Isolate node ->
      if valid_node node then Network.isolate_node cluster.Cluster.network ~node ~num_nodes
  | Schedule.Reconnect node ->
      if valid_node node then Network.reconnect_node cluster.Cluster.network ~node ~num_nodes
  | Schedule.Byzantine (node, b) ->
      if node >= 0 && node < n then Replica.set_byzantine cluster.Cluster.replicas.(node) (replica_byz b)
  | Schedule.Slow (node, scale) ->
      if valid_node node then Engine.set_cpu_scale cluster.Cluster.engine node scale
  | Schedule.Flap { src; dst; period_ms; up_ms } ->
      if valid_node src && valid_node dst then
        Network.set_flap cluster.Cluster.network ~src ~dst ~period:(Engine.ms period_ms)
          ~up:(Engine.ms up_ms)
  | Schedule.Unflap node ->
      if valid_node node then Network.clear_flap_node cluster.Cluster.network ~node ~num_nodes
  | Schedule.Fsync_delay (node, scale) ->
      if node >= 0 && node < n then Replica.set_fsync_scale cluster.Cluster.replicas.(node) scale
  | Schedule.Rollback (node, before) ->
      (* Disk tampering requires the victim to be down with volatile
         state gone (crash-amnesia): a live replica shares its WAL
         buffers, and a plain crash keeps memory no disk rewind can
         touch.  Misplaced rollbacks are no-ops, like other
         out-of-range actions. *)
      if node >= 0 && node < n && cluster.Cluster.amnesia.(node) then
        ignore (Cluster.rollback_replica cluster node ~before)

let run (sched : Schedule.t) =
  let config = config_of sched in
  let completions = Array.make sched.Schedule.clients [] in
  let on_complete ~client ~timestamp ~value =
    completions.(client) <- (timestamp, value) :: completions.(client)
  in
  let cluster =
    Cluster.create ~seed:sched.Schedule.seed ~on_complete ~config
      ~num_clients:sched.Schedule.clients
      ~topology:(topology_of sched.Schedule.topology)
      ~service:Cluster.kv_service ()
  in
  Cluster.start_clients cluster ~requests_per_client:sched.Schedule.requests
    ~make_op:(fun ~client _ -> Oracle.expected_op client);
  List.iter
    (fun (step : Schedule.step) ->
      Engine.schedule cluster.Cluster.engine ~at:(Engine.ms step.Schedule.at_ms) (fun () ->
          apply cluster sched step.Schedule.action))
    (Schedule.sorted_steps sched);
  (* Adaptive adversary: a recurring engine event observes the cluster
     through the restricted obs_* surface and reacts via the same fault
     primitives the static steps use.  The tick is an ordinary
     scheduled event, so replays interleave it identically. *)
  (match sched.Schedule.adversary with
  | None -> ()
  | Some spec ->
      let adv = Adversary.create spec in
      let n = Schedule.num_replicas sched in
      let apply_adv = function
        | Adversary.Flip (node, b) ->
            if node >= 0 && node < n then
              Replica.set_byzantine cluster.Cluster.replicas.(node) (replica_byz b)
        | Adversary.Isolate node ->
            if node >= 0 && node < n then
              Network.isolate_node cluster.Cluster.network ~node
                ~num_nodes:(Schedule.num_nodes sched)
        | Adversary.Reconnect node ->
            if node >= 0 && node < n then
              Network.reconnect_node cluster.Cluster.network ~node
                ~num_nodes:(Schedule.num_nodes sched)
      in
      let until = min spec.Schedule.until_ms sched.Schedule.horizon_ms in
      let rec tick at_ms =
        if at_ms > until then
          Engine.schedule cluster.Cluster.engine ~at:(Engine.ms until) (fun () ->
              List.iter apply_adv (Adversary.cleanup adv))
        else
          Engine.schedule cluster.Cluster.engine ~at:(Engine.ms at_ms) (fun () ->
              let v =
                Adversary.view_of cluster ~pool:spec.Schedule.pool ~now_ms:at_ms
              in
              List.iter apply_adv (Adversary.observe adv v);
              tick (at_ms + spec.Schedule.every_ms))
      in
      tick (max 0 spec.Schedule.from_ms));
  let violation = ref None in
  (try Engine.run_until cluster.Cluster.engine (Engine.ms sched.Schedule.horizon_ms)
   with Sanitizer.Violation msg -> violation := Some msg);
  let ctx =
    {
      Oracle.cluster;
      sched;
      completions = Array.map List.rev completions;
      ever_byzantine = ever_byzantine sched;
      sanitizer_violation = !violation;
    }
  in
  let verdicts = Oracle.evaluate ctx in
  {
    sched;
    verdicts;
    failed = List.find_opt (fun (v : Oracle.verdict) -> not v.Oracle.pass) verdicts;
    completed = Cluster.total_completed cluster;
    events = Engine.events_executed cluster.Cluster.engine;
  }

(* ------------------------------------------------------------------ *)
(* Corpus expectations *)

let failure_name outcome =
  Option.map (fun (v : Oracle.verdict) -> v.Oracle.name) outcome.failed

let meets_expectation outcome =
  match (outcome.sched.Schedule.expect, outcome.failed) with
  | Schedule.Expect_any, _ -> Ok ()
  | Schedule.Expect_pass, None -> Ok ()
  | Schedule.Expect_pass, Some v ->
      Error (Printf.sprintf "expected pass, oracle %s failed: %s" v.Oracle.name v.Oracle.detail)
  | Schedule.Expect_fail oracle, Some v when String.equal v.Oracle.name oracle -> Ok ()
  | Schedule.Expect_fail oracle, Some v ->
      Error (Printf.sprintf "expected %s to fail but %s failed first: %s" oracle v.Oracle.name v.Oracle.detail)
  | Schedule.Expect_fail oracle, None ->
      Error (Printf.sprintf "expected oracle %s to fail, but all oracles passed" oracle)

(* [fails_same outcome] is what shrinking preserves: the run fails, on
   the same oracle as the original counterexample. *)
let fails_on (sched : Schedule.t) ~oracle =
  let outcome = run sched in
  match outcome.failed with
  | Some v -> String.equal v.Oracle.name oracle
  | None -> false
