open Sbft_core

type verdict = { name : string; pass : bool; detail : string }

type ctx = {
  cluster : Cluster.t;
  sched : Schedule.t;
  completions : (int * string) list array;
      (* per client index, (timestamp, accepted value), completion order *)
  ever_byzantine : int list;
  sanitizer_violation : string option;
}

let is_byz ctx id = List.exists (Int.equal id) ctx.ever_byzantine

let honest_replicas ctx =
  Array.to_list ctx.cluster.Cluster.replicas
  |> List.filter (fun r -> not (is_byz ctx (Replica.id r)))

let expected_op client_index =
  Sbft_store.Kv_service.add ~key:("ctr:" ^ string_of_int client_index) ~delta:1

let counter_key client_index = "ctr:" ^ string_of_int client_index

(* ------------------------------------------------------------------ *)
(* Individual oracles.  Each returns (pass, detail). *)

let canonical_block reqs =
  List.map (fun (r : Types.request) -> (r.Types.client, r.Types.timestamp, r.Types.op)) reqs

let block_equal a b =
  List.equal
    (fun (c1, t1, o1) (c2, t2, o2) ->
      Int.equal c1 c2 && Int.equal t1 t2 && String.equal o1 o2)
    a b

(* Theorem VI.1: no two non-faulty replicas commit different blocks at
   the same sequence number; and replicas at equal executed heights have
   equal state digests. *)
let agreement ctx =
  let honest = honest_replicas ctx in
  let max_h = List.fold_left (fun acc r -> max acc (Replica.last_executed r)) 0 honest in
  let bad = ref [] in
  for seq = 1 to max_h do
    let blocks =
      List.filter_map
        (fun r ->
          Option.map (fun reqs -> (Replica.id r, canonical_block reqs)) (Replica.committed_block r seq))
        honest
    in
    match blocks with
    | [] | [ _ ] -> ()
    | (id0, first) :: rest ->
        List.iter
          (fun (id, b) ->
            if not (block_equal first b) then
              bad := Printf.sprintf "seq=%d replicas %d/%d committed different blocks" seq id0 id :: !bad)
          rest
  done;
  List.iter
    (fun ri ->
      List.iter
        (fun rj ->
          if
            Replica.id ri < Replica.id rj
            && Int.equal (Replica.last_executed ri) (Replica.last_executed rj)
            && Replica.last_executed ri > 0
            && not (String.equal (Replica.state_digest ri) (Replica.state_digest rj))
          then
            bad :=
              Printf.sprintf "digest divergence at height %d between replicas %d/%d"
                (Replica.last_executed ri) (Replica.id ri) (Replica.id rj)
              :: !bad)
        honest)
    honest;
  match List.rev !bad with
  | [] -> (true, Printf.sprintf "heights<=%d consistent" max_h)
  | d :: _ -> (false, d)

(* Every executed operation traces back to a client request (or is the
   view change's null filler). *)
let validity ctx =
  let n = Cluster.num_replicas ctx.cluster in
  let clients = ctx.cluster.Cluster.clients in
  let bad = ref [] in
  List.iter
    (fun r ->
      for seq = 1 to Replica.last_executed r do
        match Replica.committed_block r seq with
        | None -> ()
        | Some reqs ->
            List.iter
              (fun (req : Types.request) ->
                if req.Types.client < 0 then begin
                  if not (String.equal req.Types.op "") then
                    bad := Printf.sprintf "replica %d seq %d: non-null op without client" (Replica.id r) seq :: !bad
                end
                else begin
                  let idx = req.Types.client - n in
                  if idx < 0 || idx >= Array.length clients then
                    bad := Printf.sprintf "replica %d seq %d: unknown client %d" (Replica.id r) seq req.Types.client :: !bad
                  else begin
                    let submitted = Client.last_timestamp clients.(idx) in
                    if req.Types.timestamp < 1 || req.Types.timestamp > submitted then
                      bad :=
                        Printf.sprintf "replica %d seq %d: client %d never submitted timestamp %d"
                          (Replica.id r) seq req.Types.client req.Types.timestamp
                        :: !bad
                    else if not (String.equal req.Types.op (expected_op idx)) then
                      bad :=
                        Printf.sprintf "replica %d seq %d: op bytes differ from client %d's submission"
                          (Replica.id r) seq req.Types.client
                        :: !bad
                  end
                end)
              reqs
      done)
    (honest_replicas ctx);
  match List.rev !bad with
  | [] -> (true, "all executed ops trace to client requests")
  | d :: _ -> (false, d)

(* π-certified checkpoint digests agree across non-faulty replicas. *)
let checkpoints ctx =
  let honest = honest_replicas ctx in
  let bad = ref [] in
  List.iter
    (fun ri ->
      List.iter
        (fun rj ->
          if Replica.id ri < Replica.id rj then
            List.iter
              (fun (seq, di) ->
                List.iter
                  (fun (seq', dj) ->
                    if Int.equal seq seq' && not (String.equal di dj) then
                      bad :=
                        Printf.sprintf "checkpoint digest mismatch at seq %d between replicas %d/%d"
                          seq (Replica.id ri) (Replica.id rj)
                        :: !bad)
                  (Replica.certified_checkpoints rj))
              (Replica.certified_checkpoints ri))
        honest)
    honest;
  match List.rev !bad with
  | [] -> (true, "certified checkpoint digests consistent")
  | d :: _ -> (false, d)

(* At-most-once execution of retried requests: every client's counter
   equals the number of distinct requests executed for it (server side),
   and the value each client accepted for its k-th request is exactly
   the k-th counter reading (client side). *)
let at_most_once ctx =
  let n = Cluster.num_replicas ctx.cluster in
  let bad = ref [] in
  List.iter
    (fun r ->
      if Replica.last_executed r > 0 then begin
        let state = Sbft_store.Auth_store.state (Replica.store r) in
        Array.iteri
          (fun idx _ ->
            let counter =
              match Sbft_store.Kv_service.read state ~key:(counter_key idx) with
              | Some v -> Option.value ~default:(-1) (int_of_string_opt v)
              | None -> 0
            in
            let executed =
              Option.value ~default:0
                (Replica.client_last_timestamp r ~client:(n + idx))
            in
            if not (Int.equal counter executed) then
              bad :=
                Printf.sprintf
                  "replica %d: client %d counter=%d but %d distinct requests executed"
                  (Replica.id r) (n + idx) counter executed
                :: !bad)
          ctx.cluster.Cluster.clients
      end)
    (honest_replicas ctx);
  Array.iteri
    (fun idx completions ->
      List.iter
        (fun (timestamp, value) ->
          if not (String.equal value (string_of_int timestamp)) then
            bad :=
              Printf.sprintf "client %d accepted value %S for request %d (expected %d)"
                idx value timestamp timestamp
              :: !bad)
        completions)
    ctx.completions;
  match List.rev !bad with
  | [] -> (true, "counters match distinct executions")
  | d :: _ -> (false, d)

(* Liveness after GST: an eventually-synchronous schedule guarantees a
   heal + quiet period, so every submitted operation must complete
   within the horizon. *)
let liveness ctx =
  match ctx.sched.Schedule.gst_ms with
  | None -> (true, "not an eventually-synchronous schedule (skipped)")
  | Some gst ->
      let expected = ctx.sched.Schedule.requests in
      let lagging =
        Array.to_list ctx.cluster.Cluster.clients
        |> List.mapi (fun idx c -> (idx, Client.completed c))
        |> List.filter (fun (_, done_) -> done_ < expected)
      in
      (match lagging with
      | [] -> (true, Printf.sprintf "all %d ops done after gst=%dms" (expected * Array.length ctx.cluster.Cluster.clients) gst)
      | (idx, done_) :: _ ->
          (false, Printf.sprintf "client %d completed %d/%d after gst=%dms" idx done_ expected gst))

let sanitizer ctx =
  match ctx.sanitizer_violation with
  | None -> (true, "no runtime invariant violation")
  | Some msg -> (false, msg)

let evaluate ctx =
  let mk name (pass, detail) = { name; pass; detail } in
  [
    mk "sanitizer" (sanitizer ctx);
    mk "agreement" (agreement ctx);
    mk "validity" (validity ctx);
    mk "checkpoints" (checkpoints ctx);
    mk "at-most-once" (at_most_once ctx);
    mk "liveness" (liveness ctx);
  ]
