open Sbft_core

type verdict = { name : string; pass : bool; detail : string }

type ctx = {
  cluster : Cluster.t;
  sched : Schedule.t;
  completions : (int * string) list array;
      (* per client index, (timestamp, accepted value), completion order *)
  ever_byzantine : int list;
  sanitizer_violation : string option;
}

(* ------------------------------------------------------------------ *)
(* Pure observation layer.

   Every oracle is a function of [obs] only — a plain record snapshot
   of everything the checks inspect.  [observe] extracts it from the
   live cluster; tests hand-build counterexample snapshots directly, so
   an oracle weakened by refactoring fails a synthetic trace loudly
   instead of silently accepting whatever the simulator produces. *)

type replica_obs = {
  rid : int;
  last_executed : int;
  digest : string;  (* state digest at [last_executed] *)
  blocks : (int * (int * int * string) list) list;
      (* committed blocks by sequence number, each request canonicalized
         to (client, timestamp, op) *)
  certified : (int * string) list;  (* π-certified checkpoint digests *)
  counters : int array;  (* per client index: service counter cell *)
  executed_for : int array;
      (* per client index: distinct requests executed (client table) *)
}

type obs = {
  num_replicas : int;
  num_clients : int;
  replicas : replica_obs list;  (* honest replicas only *)
  submitted : int array;  (* per client: highest timestamp submitted *)
  completed_ops : int array;  (* per client: operations completed *)
  accepted : (int * string) list array;
      (* per client: (timestamp, accepted value) in completion order *)
  requests : int;  (* closed-loop requests per client *)
  gst_ms : int option;
  sanitizer_violation : string option;
}

let is_byz ctx id = List.exists (Int.equal id) ctx.ever_byzantine

let honest_replicas ctx =
  Array.to_list ctx.cluster.Cluster.replicas
  |> List.filter (fun r -> not (is_byz ctx (Replica.id r)))

let expected_op client_index =
  Sbft_store.Kv_service.add ~key:("ctr:" ^ string_of_int client_index) ~delta:1

let counter_key client_index = "ctr:" ^ string_of_int client_index

let canonical_block reqs =
  List.map (fun (r : Types.request) -> (r.Types.client, r.Types.timestamp, r.Types.op)) reqs

let observe ctx =
  let n = Cluster.num_replicas ctx.cluster in
  let clients = ctx.cluster.Cluster.clients in
  let honest = honest_replicas ctx in
  let max_h = List.fold_left (fun acc r -> max acc (Replica.last_executed r)) 0 honest in
  let replicas =
    List.map
      (fun r ->
        let blocks = ref [] in
        for seq = max_h downto 1 do
          match Replica.committed_block r seq with
          | None -> ()
          | Some reqs -> blocks := (seq, canonical_block reqs) :: !blocks
        done;
        let state = Sbft_store.Auth_store.state (Replica.store r) in
        {
          rid = Replica.id r;
          last_executed = Replica.last_executed r;
          digest = Replica.state_digest r;
          blocks = !blocks;
          certified = Replica.certified_checkpoints r;
          counters =
            Array.mapi
              (fun idx _ ->
                match Sbft_store.Kv_service.read state ~key:(counter_key idx) with
                | Some v -> Option.value ~default:(-1) (int_of_string_opt v)
                | None -> 0)
              clients;
          executed_for =
            Array.mapi
              (fun idx _ ->
                Option.value ~default:0 (Replica.client_last_timestamp r ~client:(n + idx)))
              clients;
        })
      honest
  in
  {
    num_replicas = n;
    num_clients = Array.length clients;
    replicas;
    submitted = Array.map Client.last_timestamp clients;
    completed_ops = Array.map Client.completed clients;
    accepted = ctx.completions;
    requests = ctx.sched.Schedule.requests;
    gst_ms = ctx.sched.Schedule.gst_ms;
    sanitizer_violation = ctx.sanitizer_violation;
  }

(* ------------------------------------------------------------------ *)
(* Individual oracles.  Each returns (pass, detail). *)

let block_equal a b =
  List.equal
    (fun (c1, t1, o1) (c2, t2, o2) ->
      Int.equal c1 c2 && Int.equal t1 t2 && String.equal o1 o2)
    a b

(* Theorem VI.1: no two non-faulty replicas commit different blocks at
   the same sequence number; and replicas at equal executed heights have
   equal state digests. *)
let agreement obs =
  let max_h = List.fold_left (fun acc r -> max acc r.last_executed) 0 obs.replicas in
  let bad = ref [] in
  for seq = 1 to max_h do
    let blocks =
      List.filter_map (fun r -> Option.map (fun b -> (r.rid, b)) (List.assoc_opt seq r.blocks)) obs.replicas
    in
    match blocks with
    | [] | [ _ ] -> ()
    | (id0, first) :: rest ->
        List.iter
          (fun (id, b) ->
            if not (block_equal first b) then
              bad := Printf.sprintf "seq=%d replicas %d/%d committed different blocks" seq id0 id :: !bad)
          rest
  done;
  List.iter
    (fun ri ->
      List.iter
        (fun rj ->
          if
            ri.rid < rj.rid
            && Int.equal ri.last_executed rj.last_executed
            && ri.last_executed > 0
            && not (String.equal ri.digest rj.digest)
          then
            bad :=
              Printf.sprintf "digest divergence at height %d between replicas %d/%d"
                ri.last_executed ri.rid rj.rid
              :: !bad)
        obs.replicas)
    obs.replicas;
  match List.rev !bad with
  | [] -> (true, Printf.sprintf "heights<=%d consistent" max_h)
  | d :: _ -> (false, d)

(* Every executed operation traces back to a client request (or is the
   view change's null filler). *)
let validity obs =
  let bad = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (seq, block) ->
          if seq >= 1 && seq <= r.last_executed then
            List.iter
              (fun (client, timestamp, op) ->
                if client < 0 then begin
                  if not (String.equal op "") then
                    bad := Printf.sprintf "replica %d seq %d: non-null op without client" r.rid seq :: !bad
                end
                else begin
                  let idx = client - obs.num_replicas in
                  if idx < 0 || idx >= obs.num_clients then
                    bad := Printf.sprintf "replica %d seq %d: unknown client %d" r.rid seq client :: !bad
                  else begin
                    let submitted = obs.submitted.(idx) in
                    if timestamp < 1 || timestamp > submitted then
                      bad :=
                        Printf.sprintf "replica %d seq %d: client %d never submitted timestamp %d"
                          r.rid seq client timestamp
                        :: !bad
                    else if not (String.equal op (expected_op idx)) then
                      bad :=
                        Printf.sprintf "replica %d seq %d: op bytes differ from client %d's submission"
                          r.rid seq client
                        :: !bad
                  end
                end)
              block)
        r.blocks)
    obs.replicas;
  match List.rev !bad with
  | [] -> (true, "all executed ops trace to client requests")
  | d :: _ -> (false, d)

(* π-certified checkpoint digests agree across non-faulty replicas. *)
let checkpoints obs =
  let bad = ref [] in
  List.iter
    (fun ri ->
      List.iter
        (fun rj ->
          if ri.rid < rj.rid then
            List.iter
              (fun (seq, di) ->
                List.iter
                  (fun (seq', dj) ->
                    if Int.equal seq seq' && not (String.equal di dj) then
                      bad :=
                        Printf.sprintf "checkpoint digest mismatch at seq %d between replicas %d/%d"
                          seq ri.rid rj.rid
                        :: !bad)
                  rj.certified)
              ri.certified)
        obs.replicas)
    obs.replicas;
  match List.rev !bad with
  | [] -> (true, "certified checkpoint digests consistent")
  | d :: _ -> (false, d)

(* At-most-once execution of retried requests: every client's counter
   equals the number of distinct requests executed for it (server side),
   and the value each client accepted for its k-th request is exactly
   the k-th counter reading (client side). *)
let at_most_once obs =
  let bad = ref [] in
  List.iter
    (fun r ->
      if r.last_executed > 0 then
        Array.iteri
          (fun idx counter ->
            let executed = r.executed_for.(idx) in
            if not (Int.equal counter executed) then
              bad :=
                Printf.sprintf
                  "replica %d: client %d counter=%d but %d distinct requests executed"
                  r.rid (obs.num_replicas + idx) counter executed
                :: !bad)
          r.counters)
    obs.replicas;
  Array.iteri
    (fun idx accepted ->
      List.iter
        (fun (timestamp, value) ->
          if not (String.equal value (string_of_int timestamp)) then
            bad :=
              Printf.sprintf "client %d accepted value %S for request %d (expected %d)"
                idx value timestamp timestamp
              :: !bad)
        accepted)
    obs.accepted;
  match List.rev !bad with
  | [] -> (true, "counters match distinct executions")
  | d :: _ -> (false, d)

(* Liveness after GST: an eventually-synchronous schedule guarantees a
   heal + quiet period, so every submitted operation must complete
   within the horizon. *)
let liveness obs =
  match obs.gst_ms with
  | None -> (true, "not an eventually-synchronous schedule (skipped)")
  | Some gst ->
      let lagging =
        Array.to_list obs.completed_ops
        |> List.mapi (fun idx done_ -> (idx, done_))
        |> List.filter (fun (_, done_) -> done_ < obs.requests)
      in
      (match lagging with
      | [] -> (true, Printf.sprintf "all %d ops done after gst=%dms" (obs.requests * obs.num_clients) gst)
      | (idx, done_) :: _ ->
          (false, Printf.sprintf "client %d completed %d/%d after gst=%dms" idx done_ obs.requests gst))

let sanitizer obs =
  match obs.sanitizer_violation with
  | None -> (true, "no runtime invariant violation")
  | Some msg -> (false, msg)

let evaluate_obs obs =
  let mk name (pass, detail) = { name; pass; detail } in
  [
    mk "sanitizer" (sanitizer obs);
    mk "agreement" (agreement obs);
    mk "validity" (validity obs);
    mk "checkpoints" (checkpoints obs);
    mk "at-most-once" (at_most_once obs);
    mk "liveness" (liveness obs);
  ]

let evaluate ctx = evaluate_obs (observe ctx)
