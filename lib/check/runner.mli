(** Execute a schedule on the deterministic simulator and evaluate the
    property oracles.

    The cluster is built from the schedule header (f, c, clients,
    window, topology, acks, protocol mutation); each step is applied at
    its virtual time via [Engine.schedule], outside any node's CPU
    accounting. Runs with a protocol mutation disable the runtime
    sanitizer so the oracles — not the in-replica assertions — observe
    the divergence; a [Sanitizer.Violation] on unmutated runs is caught
    and reported as the sanitizer oracle's verdict. *)

type outcome = {
  sched : Schedule.t;
  verdicts : Oracle.verdict list;
  failed : Oracle.verdict option;  (** first failing oracle, if any *)
  completed : int;  (** client requests completed across the cluster *)
  events : int;  (** simulator events executed (determinism witness) *)
}

val run : Schedule.t -> outcome

val meets_expectation : outcome -> (unit, string) result
(** Check the outcome against the schedule's [expect] header: corpus
    replays use this so a committed counterexample must keep failing on
    the recorded oracle, and a healthy schedule must keep passing. *)

val failure_name : outcome -> string option

val fails_on : Schedule.t -> oracle:string -> bool
(** [fails_on sched ~oracle] reruns [sched] and reports whether it still
    fails on [oracle] — the predicate shrinking preserves. *)
