(** Counterexample shrinking: greedy delta-debugging (ddmin) on the
    step list, then workload reduction, preserving "still fails on the
    same oracle" throughout. *)

val ddmin :
  still_fails:(Schedule.step list -> bool) ->
  Schedule.step list ->
  Schedule.step list
(** Zeller & Hildebrandt's ddmin: remove complements at doubling
    granularity. The result is 1-minimal with respect to [still_fails]:
    removing any single remaining step makes the predicate false.
    Exposed with a pure predicate so the algorithm is testable without
    running the simulator. *)

val minimize : oracle:string -> Schedule.t -> Schedule.t
(** [minimize ~oracle sched] assumes [sched] currently fails on
    [oracle] and returns a locally minimal schedule that still does,
    renamed ["-shrunk"] and re-expected to [Expect_fail oracle] so it
    can be committed to the corpus as-is.

    Pass order: workload halving (requests, then clients) runs FIRST so
    every subsequent ddmin probe replays the cheapest workload that
    still reproduces — un-shrunk workloads multiplied across ddmin's
    probe count are what blew the CI budget at n ≥ 20.  The adaptive
    adversary (if any) then shrinks along its own axes — action budget
    halving, observation-horizon halving, and a drop-it-entirely probe
    (a failure that persists without the adversary is a static bug and
    the artifact should say so) — before step-ddmin and a final
    requests pass. *)
