(* Adaptive Byzantine adversary for the schedule fuzzer.

   A static schedule commits to its faults before the run; an adaptive
   policy watches the cluster and reacts — equivocate exactly when a
   split can stick, fall silent one share short of a threshold, amplify
   a view change the moment one starts.  The loop stays deterministic
   and replayable because everything that feeds a decision is fixed by
   the schedule: observation times (the [every_ms] tick), the decision
   rules below, and the restricted observation surface.

   What the attacker may see is deliberately limited to the [obs_*]
   accessors ({!Sbft_core.Replica}): view/progress counters and share
   tallies — state a real network adversary colluding with f replicas
   could learn from traffic and its own members.  No key material, no
   honest replicas' unsent buffers.  The R6 taint lint enforces the
   complement: protocol code may never consume [obs_*] results.

   Policies act only through existing fault primitives (Byzantine
   flavour flips, node isolation), each costing one unit of the
   schedule's [budget].  Shrinking therefore has two extra axes: a
   smaller budget (fewer reactions) and a shorter [from/until] horizon
   (less observation) — see {!Shrink}. *)

open Sbft_core
open Sbft_sim

type protocol_view = {
  now_ms : int;
  n : int;
  primary : int;  (** primary of the highest view any replica occupies *)
  views : int array;
  executed : int array;
  stable : int array;
  frontier : int array;
  in_view_change : bool array;
  crashed : bool array;
  sigma_threshold : int;
  checkpoint_interval : int;
  shares_at : int -> int * int * int;
      (** σ/τ/commit share tallies for a slot, as seen by the pool's
          preferred colluder *)
}

type action =
  | Flip of int * Schedule.byz
  | Isolate of int
  | Reconnect of int

type t = {
  spec : Schedule.adversary;
  mutable budget_left : int;
  flavor : (int, Schedule.byz) Hashtbl.t;  (* current flip per pool id *)
  mutable isolated : int list;
}

let create (spec : Schedule.adversary) =
  {
    spec;
    budget_left = spec.Schedule.budget;
    flavor = Hashtbl.create 4;
    isolated = [];
  }

let budget_left t = t.budget_left

let view_of (cluster : Cluster.t) ~pool ~now_ms =
  let n = Cluster.num_replicas cluster in
  let r i = cluster.Cluster.replicas.(i) in
  let views = Array.init n (fun i -> Replica.obs_view (r i)) in
  let max_view = Array.fold_left max 0 views in
  let config = cluster.Cluster.config in
  let observer = match pool with p :: _ when p < n -> p | _ -> 0 in
  {
    now_ms;
    n;
    primary = max_view mod n;
    views;
    executed = Array.init n (fun i -> Replica.obs_last_executed (r i));
    stable = Array.init n (fun i -> Replica.obs_last_stable (r i));
    frontier = Array.init n (fun i -> Replica.obs_frontier (r i));
    in_view_change = Array.init n (fun i -> Replica.obs_in_view_change (r i));
    crashed = Array.init n (fun i -> Engine.is_crashed cluster.Cluster.engine i);
    sigma_threshold = Config.sigma_threshold config;
    checkpoint_interval = Config.checkpoint_interval config;
    shares_at = (fun seq -> Replica.obs_slot_shares (r observer) seq);
  }

(* One uniform accounting rule: every emitted action costs one budget
   unit, and a flip to a flavour the replica already has is not
   emitted.  Policies below compute their *desired* pool state; [want]
   turns the delta into affordable actions. *)
let want t ~node flavor acc =
  let current =
    Option.value (Hashtbl.find_opt t.flavor node) ~default:Schedule.Honest
  in
  if current = flavor || t.budget_left <= 0 then acc
  else begin
    t.budget_left <- t.budget_left - 1;
    Hashtbl.replace t.flavor node flavor;
    Flip (node, flavor) :: acc
  end

let want_isolate t ~node acc =
  if List.mem node t.isolated || t.budget_left <= 0 then acc
  else begin
    t.budget_left <- t.budget_left - 1;
    t.isolated <- node :: t.isolated;
    Isolate node :: acc
  end

let want_reconnect t ~node acc =
  if not (List.mem node t.isolated) || t.budget_left <= 0 then acc
  else begin
    t.budget_left <- t.budget_left - 1;
    t.isolated <- List.filter (fun x -> x <> node) t.isolated;
    Reconnect node :: acc
  end

let pool_members t v =
  List.filter (fun p -> p >= 0 && p < v.n) t.spec.Schedule.pool

(* Equivocating collector: the colluding replica equivocates exactly
   while it is the primary and client traffic is in flight (an
   equivocation with nothing proposed splits nothing), and returns to
   honest cover otherwise. *)
let equivocating_collector t v =
  List.fold_left
    (fun acc p ->
      let in_flight = v.frontier.(p) > v.executed.(p) in
      if p = v.primary && in_flight && not v.in_view_change.(p) then
        want t ~node:p Schedule.Equivocate acc
      else want t ~node:p Schedule.Honest acc)
    [] (pool_members t v)

(* Withhold until threshold: participate normally (building up trust
   and letting the slot accumulate honest shares) until the pool's own
   shares are the margin that would complete the σ certificate, then
   fall silent — maximal damage per withheld share.  Re-engage when the
   slot commits anyway (the frontier moves past it). *)
let withhold_until_threshold t v =
  let pool = pool_members t v in
  let k = List.length pool in
  let target =
    List.fold_left (fun acc p -> max acc v.frontier.(p)) 0 pool
  in
  let sigma, _tau, _commit = v.shares_at target in
  let executed = List.fold_left (fun acc p -> max acc v.executed.(p)) 0 pool in
  let pivotal = target > executed && sigma + k >= v.sigma_threshold in
  List.fold_left
    (fun acc p ->
      if pivotal then want t ~node:p Schedule.Silent acc
      else want t ~node:p Schedule.Honest acc)
    [] pool

(* View-change storm: the moment any replica starts a view change, the
   pool amplifies it with stale/partial view-change spam, prolonging
   the succession crisis; quiet otherwise. *)
let view_change_storm t v =
  let storming = Array.exists (fun b -> b) v.in_view_change in
  List.fold_left
    (fun acc p ->
      if storming then want t ~node:p Schedule.Stale_vc acc
      else want t ~node:p Schedule.Honest acc)
    [] (pool_members t v)

(* Checkpoint split: as execution approaches a checkpoint boundary,
   isolate the slowest honest replica so its checkpoint certification
   lags the quorum's; reconnect once the quorum's stable point has
   crossed the boundary, and repeat at the next one. *)
let checkpoint_split t v =
  let pool = pool_members t v in
  let is_pool p = List.mem p pool in
  let max_exec = Array.fold_left max 0 v.executed in
  let max_stable = Array.fold_left max 0 v.stable in
  let interval = max 1 v.checkpoint_interval in
  let next_boundary = ((max_stable / interval) + 1) * interval in
  let approaching = max_exec >= next_boundary - 1 in
  let straggler =
    let best = ref None in
    Array.iteri
      (fun i e ->
        if (not (is_pool i)) && not v.crashed.(i) then
          match !best with
          | Some (_, e') when e' <= e -> ()
          | _ -> best := Some (i, e))
      v.executed;
    Option.map fst !best
  in
  match straggler with
  | Some node when approaching -> want_isolate t ~node []
  | _ ->
      (* Boundary crossed (or nothing to split): release everyone. *)
      List.fold_left (fun acc node -> want_reconnect t ~node acc) [] t.isolated

let observe t (v : protocol_view) =
  match t.spec.Schedule.policy with
  | Schedule.Equivocating_collector -> equivocating_collector t v
  | Schedule.Withhold_until_threshold -> withhold_until_threshold t v
  | Schedule.View_change_storm -> view_change_storm t v
  | Schedule.Checkpoint_split -> checkpoint_split t v

(* End of the observation window: undo connectivity damage and return
   the pool to honest cover.  Free of budget — cleanup must happen even
   on an exhausted adversary, or an Expect_pass schedule could be
   failed by leftover isolation rather than by the protocol. *)
let cleanup t =
  let reconnects = List.map (fun node -> Reconnect node) t.isolated in
  let flips =
    Hashtbl.fold
      (fun node flavor acc ->
        if flavor = Schedule.Honest then acc
        else Flip (node, Schedule.Honest) :: acc)
      t.flavor []
    |> List.sort compare
  in
  t.isolated <- [];
  Hashtbl.reset t.flavor;
  reconnects @ flips
