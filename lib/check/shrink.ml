(* Counterexample shrinking: greedy delta-debugging (ddmin) on the step
   list, then workload reduction.  The predicate preserved throughout is
   "the schedule still fails on the same oracle", so a shrunk artifact
   is a locally-minimal reproduction of the original violation: removing
   any single remaining step (or halving the workload again) makes the
   failure disappear. *)

let with_steps sched steps = { sched with Schedule.steps }

(* Remove complements at increasing granularity (Zeller & Hildebrandt's
   ddmin).  When granularity reaches [List.length steps], complements
   are single-step removals, so the result is 1-minimal with respect to
   [still_fails]. *)
let ddmin ~still_fails steps0 =
  let chunk lst n =
    (* n near-equal contiguous chunks *)
    let len = List.length lst in
    let base = len / n and extra = len mod n in
    let rec take k lst acc =
      if Int.equal k 0 then (List.rev acc, lst)
      else
        match lst with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) rest (x :: acc)
    in
    let rec go i lst acc =
      if Int.equal i n then List.rev acc
      else
        let size = base + if i < extra then 1 else 0 in
        let c, rest = take size lst [] in
        go (i + 1) rest (c :: acc)
    in
    go 0 lst []
  in
  let rec loop steps n =
    let len = List.length steps in
    if len <= 1 then steps
    else
      let chunks = chunk steps n in
      let complements = List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> not (Int.equal i j)) chunks)) chunks in
      match List.find_opt still_fails complements with
      | Some smaller ->
          (* restart at coarse granularity on the smaller input *)
          loop smaller (max 2 (n - 1))
      | None -> if n >= len then steps else loop steps (min len (2 * n))
  in
  match steps0 with [] -> [] | steps -> loop steps 2

let ddmin_steps ~oracle sched =
  let still_fails steps = Runner.fails_on (with_steps sched steps) ~oracle in
  with_steps sched (ddmin ~still_fails sched.Schedule.steps)

(* Halve the closed-loop workload while the failure persists. *)
let shrink_requests ~oracle sched =
  let rec loop sched =
    let requests = sched.Schedule.requests / 2 in
    if requests < 1 then sched
    else
      let candidate = { sched with Schedule.requests } in
      if Runner.fails_on candidate ~oracle then loop candidate else sched
  in
  loop sched

let shrink_clients ~oracle sched =
  let rec loop sched =
    let clients = sched.Schedule.clients - 1 in
    if clients < 1 then sched
    else
      let candidate = { sched with Schedule.clients } in
      if Runner.fails_on candidate ~oracle then loop candidate else sched
  in
  loop sched

(* Shrink the adaptive adversary along its two extra axes: the action
   budget (how often the policy may react) and the observation horizon
   (how long it watches).  Halving loops like the workload passes; a
   final probe tries dropping the adversary outright — many failures
   blamed on the policy turn out to be static-schedule bugs, and the
   minimal artifact should say so. *)
let shrink_adversary ~oracle sched =
  match sched.Schedule.adversary with
  | None -> sched
  | Some _ ->
      let try_adv sched a =
        let candidate = { sched with Schedule.adversary = Some a } in
        if Runner.fails_on candidate ~oracle then Some candidate else None
      in
      let rec budget sched =
        match sched.Schedule.adversary with
        | Some a when a.Schedule.budget > 0 -> (
            match try_adv sched { a with Schedule.budget = a.Schedule.budget / 2 } with
            | Some smaller -> budget smaller
            | None -> sched)
        | _ -> sched
      in
      let rec horizon sched =
        match sched.Schedule.adversary with
        | Some a when a.Schedule.until_ms > a.Schedule.from_ms -> (
            let span = a.Schedule.until_ms - a.Schedule.from_ms in
            match
              try_adv sched { a with Schedule.until_ms = a.Schedule.from_ms + (span / 2) }
            with
            | Some smaller -> horizon smaller
            | None -> sched)
        | _ -> sched
      in
      let sched = budget sched in
      let sched = horizon sched in
      let without = { sched with Schedule.adversary = None } in
      if Runner.fails_on without ~oracle then without else sched

(* [minimize ~oracle sched] assumes [sched] currently fails on [oracle]
   and returns a locally minimal schedule that still does, renamed and
   re-expected so it can be committed to the corpus as-is.

   Workload halving runs BEFORE step-ddmin: every ddmin probe replays
   the whole schedule, so at n ≥ 20 replicas an un-shrunk closed-loop
   workload multiplied across ddmin's O(steps²) worst-case probes blows
   the CI fuzz-smoke budget.  Requests/clients shrink in a handful of
   cheap halving runs and every subsequent probe inherits the smaller
   workload; a second requests pass after ddmin catches reductions the
   full step list was blocking. *)
let minimize ~oracle sched =
  let sched = shrink_requests ~oracle sched in
  let sched = shrink_clients ~oracle sched in
  let sched = shrink_adversary ~oracle sched in
  let sched = ddmin_steps ~oracle sched in
  let sched = shrink_requests ~oracle sched in
  {
    sched with
    Schedule.name = sched.Schedule.name ^ "-shrunk";
    expect = Schedule.Expect_fail oracle;
  }
