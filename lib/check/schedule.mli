(** The schedule DSL: a serializable adversarial scenario for the
    deterministic simulator.

    A schedule is a cluster shape (f, c, clients, window, topology,
    feature switches) plus a list of [(virtual_time, action)] fault
    injections — crash/recover, partition/heal, message drop
    probability, per-link delay, node isolation, and Byzantine
    behaviour flips.  The textual encoding is line-based and
    deterministic (emit ∘ parse ∘ emit is byte-identical), so any run —
    in particular a shrunk counterexample — reproduces exactly from a
    committed [.schedule] file:

    {v
    sbft-schedule v1
    name crashed-collector
    seed 7
    f 1
    c 1
    clients 2
    requests 6
    win 8
    topology lan
    acks on
    mutation none
    gst 15000
    horizon 60000
    expect pass
    step 1000 crash 3
    step 15000 heal
    end
    v} *)

type byz =
  | Equivocate
  | Silent
  | Corrupt_shares
  | Wrong_exec_digest
  | Stale_vc
  | Honest  (** flip back (used by the post-GST quiet period) *)

type action =
  | Crash of int
  | Crash_amnesia of int
      (** Crash AND lose volatile state: on the matching [Recover] the
          replica is rebuilt from its WAL + persisted blocks (or from
          genesis when the [wal] switch is off). *)
  | Recover of int
  | Partition of int list list
      (** Groups of node ids; nodes not listed (typically the clients)
          join group 0. *)
  | Heal
  | Set_drop of float
  | Delay_link of { src : int; dst : int; delay_ms : int }
  | Isolate of int  (** all links to/from the node go down *)
  | Reconnect of int
  | Byzantine of int * byz

type step = { at_ms : int; action : action }

type mutation = No_mutation | Weak_sigma | Weak_tau | Weak_vc
(** Map to {!Config.mutation}: [Weak_sigma] to [Weak_sigma_quorum]
    (run with the sanitizer off so the agreement oracle observes the
    divergence), [Weak_tau]/[Weak_vc] to [Weak_tau_quorum] /
    [Weak_vc_quorum] (run with the sanitizer on: the runtime
    cross-check derives thresholds independently of [Config], so the
    sanitizer oracle itself trips on the weakened quorum). *)

type expect = Expect_pass | Expect_fail of string | Expect_any
(** Corpus replay expectation: pass all oracles, fail the named oracle,
    or no expectation (fuzzer-generated schedules). *)

type topology = Lan | Continent | World

type t = {
  name : string;
  seed : int64;
  f : int;
  c : int;
  clients : int;
  requests : int;  (** closed-loop requests per client *)
  win : int;
  topology : topology;
  acks : bool;  (** {!Config.execution_acks} *)
  wal : bool;
      (** {!Config.durable_wal}: switching it off turns every
          crash-amnesia recovery into a from-genesis restart, which is
          how the corpus proves the WAL is load-bearing. *)
  mutation : mutation;
  gst_ms : int option;
      (** Eventual synchrony: after this point the schedule guarantees a
          heal + quiet period, and the liveness oracle applies. *)
  horizon_ms : int;  (** run the simulation until this virtual time *)
  expect : expect;
  steps : step list;
}

val num_replicas : t -> int
val num_nodes : t -> int

val default : name:string -> seed:int64 -> t
(** A small healthy baseline (f=1, c=0, 2 clients, no steps). *)

val sorted_steps : t -> step list
(** Steps in schedule order (stable by time). *)

val to_string : t -> string
val parse : string -> (t, string) result
(** [parse (to_string t)] succeeds, and re-emitting the result is
    byte-identical. *)

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val byz_to_string : byz -> string
val action_to_string : action -> string
