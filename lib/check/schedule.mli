(** The schedule DSL: a serializable adversarial scenario for the
    deterministic simulator.

    A schedule is a cluster shape (f, c, clients, window, topology,
    feature switches) plus a list of [(virtual_time, action)] fault
    injections — crash/recover, partition/heal, message drop
    probability, per-link delay, node isolation, and Byzantine
    behaviour flips.  The textual encoding is line-based and
    deterministic (emit ∘ parse ∘ emit is byte-identical), so any run —
    in particular a shrunk counterexample — reproduces exactly from a
    committed [.schedule] file:

    {v
    sbft-schedule v1
    name crashed-collector
    seed 7
    f 1
    c 1
    clients 2
    requests 6
    win 8
    topology lan
    acks on
    mutation none
    gst 15000
    horizon 60000
    expect pass
    step 1000 crash 3
    step 15000 heal
    end
    v} *)

type byz =
  | Equivocate
  | Silent
  | Corrupt_shares
  | Wrong_exec_digest
  | Stale_vc
  | Honest  (** flip back (used by the post-GST quiet period) *)

type action =
  | Crash of int
  | Crash_amnesia of int
      (** Crash AND lose volatile state: on the matching [Recover] the
          replica is rebuilt from its WAL + persisted blocks (or from
          genesis when the [wal] switch is off). *)
  | Recover of int
  | Partition of int list list
      (** Groups of node ids; nodes not listed (typically the clients)
          join group 0. *)
  | Heal
  | Set_drop of float
  | Delay_link of { src : int; dst : int; delay_ms : int }
  | Isolate of int  (** all links to/from the node go down *)
  | Reconnect of int
  | Byzantine of int * byz
  | Slow of int * float
      (** Gray failure: dilate the node's CPU by this factor (≥ 1.0;
          1.0 heals).  The node stays alive and correct — just slow. *)
  | Flap of { src : int; dst : int; period_ms : int; up_ms : int }
      (** Gray failure: the directed link passes traffic only during the
          first [up_ms] of each [period_ms] window (deterministic, no
          RNG).  Flap one direction only for an asymmetric link. *)
  | Unflap of int  (** clear flapping on every link touching the node *)
  | Fsync_delay of int * float
      (** Gray failure: multiply the node's WAL group-commit flush
          latency by this factor (fail-slow disk; ≥ 1.0, 1.0 heals). *)
  | Rollback of int * int
      (** [Rollback (node, before)]: while [node] is down after a
          [Crash_amnesia], re-image its disk from a stale backup — WAL
          and block ledger roll back to the newest stable checkpoint
          with seq ≤ [before] ({!Sbft_core.Cluster.rollback_replica}).
          The subsequent [Recover] restarts from the outdated prefix. *)

type step = { at_ms : int; action : action }

type mutation = No_mutation | Weak_sigma | Weak_tau | Weak_vc
(** Map to {!Config.mutation}: [Weak_sigma] to [Weak_sigma_quorum]
    (run with the sanitizer off so the agreement oracle observes the
    divergence), [Weak_tau]/[Weak_vc] to [Weak_tau_quorum] /
    [Weak_vc_quorum] (run with the sanitizer on: the runtime
    cross-check derives thresholds independently of [Config], so the
    sanitizer oracle itself trips on the weakened quorum). *)

type expect = Expect_pass | Expect_fail of string | Expect_any
(** Corpus replay expectation: pass all oracles, fail the named oracle,
    or no expectation (fuzzer-generated schedules). *)

type topology = Lan | Continent | World

(** Adaptive-adversary policies ({!Adversary} interprets them).  Each
    policy observes the cluster through the restricted [obs_*] surface
    every tick and reacts — unlike the static [step] list, its actions
    depend on protocol state, but the whole loop stays deterministic
    and replayable because observation times and the decision rule are
    fixed by the schedule. *)
type policy =
  | Equivocating_collector
      (** the colluding primary equivocates exactly when enough slots
          are in flight for the split to stick, then goes quiet *)
  | Withhold_until_threshold
      (** pool replicas participate normally until a slot is one share
          short of its commit threshold, then fall silent — maximal
          damage per withheld share *)
  | View_change_storm
      (** pool replicas watch for any view-change activity and amplify
          it with spam votes for higher views *)
  | Checkpoint_split
      (** pool replicas wait for a checkpoint boundary, then isolate the
          slowest honest replica so its checkpoint diverges from the
          quorum's *)

type adversary = {
  policy : policy;
  pool : int list;  (** colluding replica ids (generator keeps ≤ f) *)
  budget : int;  (** max actions the policy may take over the run *)
  every_ms : int;  (** observation tick period *)
  from_ms : int;  (** first observation tick *)
  until_ms : int;  (** last tick; connectivity damage is undone here *)
}
(** Header-level adaptive attacker.  Shrinkable along [budget] (fewer
    actions) and the [from_ms .. until_ms] horizon (shorter observation
    window) — see {!Shrink}. *)

type t = {
  name : string;
  seed : int64;
  f : int;
  c : int;
  clients : int;
  requests : int;  (** closed-loop requests per client *)
  win : int;
  topology : topology;
  acks : bool;  (** {!Config.execution_acks} *)
  wal : bool;
      (** {!Config.durable_wal}: switching it off turns every
          crash-amnesia recovery into a from-genesis restart, which is
          how the corpus proves the WAL is load-bearing. *)
  rejoin_conservative : bool;
      (** {!Config.conservative_rejoin}: [eager] disables the
          state-transfer + view-discovery probes after recovery — the
          defenseless baseline the rollback-attack twins must fail. *)
  mutation : mutation;
  adversary : adversary option;
  gst_ms : int option;
      (** Eventual synchrony: after this point the schedule guarantees a
          heal + quiet period, and the liveness oracle applies. *)
  horizon_ms : int;  (** run the simulation until this virtual time *)
  expect : expect;
  steps : step list;
}

val num_replicas : t -> int
val num_nodes : t -> int

val default : name:string -> seed:int64 -> t
(** A small healthy baseline (f=1, c=0, 2 clients, no steps). *)

val sorted_steps : t -> step list
(** Steps in schedule order (stable by time). *)

val to_string : t -> string
val parse : string -> (t, string) result
(** [parse (to_string t)] succeeds, and re-emitting the result is
    byte-identical. *)

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val byz_to_string : byz -> string
val action_to_string : action -> string
val policy_to_string : policy -> string
val policy_of_string : string -> policy option
