(** Adaptive Byzantine adversary for the schedule fuzzer.

    Where a static schedule commits to its faults up front, an adaptive
    policy inspects the cluster each tick and reacts: equivocate exactly
    when a split can stick, withhold shares one short of a threshold,
    amplify a view change as it starts, cut off a straggler at a
    checkpoint boundary.  The loop is deterministic and replayable: the
    schedule fixes the tick times, the decision rules are pure functions
    of the observation, and the observation surface is restricted to the
    [obs_*] accessors ({!Sbft_core.Replica}) — counters and share
    tallies a real network adversary colluding with f replicas could
    learn, never key material or honest replicas' internal buffers.
    The R6 taint lint enforces the complement: protocol handlers cannot
    consume [obs_*] results.

    Policies act only through existing fault primitives — Byzantine
    flavour flips and node isolation — each costing one unit of the
    schedule's budget, which gives {!Shrink} two extra minimization
    axes (budget and observation horizon). *)

type protocol_view = {
  now_ms : int;
  n : int;
  primary : int;  (** primary of the highest view any replica occupies *)
  views : int array;
  executed : int array;
  stable : int array;
  frontier : int array;
  in_view_change : bool array;
  crashed : bool array;
  sigma_threshold : int;
  checkpoint_interval : int;
  shares_at : int -> int * int * int;
      (** σ/τ/commit share tallies for a slot, as seen by the pool's
          preferred colluder *)
}
(** Everything a policy may condition on.  Built from a cluster by
    {!view_of}; built by hand in unit tests. *)

type action =
  | Flip of int * Schedule.byz  (** set a pool replica's flavour *)
  | Isolate of int
  | Reconnect of int

type t

val create : Schedule.adversary -> t

val view_of :
  Sbft_core.Cluster.t -> pool:int list -> now_ms:int -> protocol_view
(** Snapshot the attacker-visible state of a live cluster. *)

val observe : t -> protocol_view -> action list
(** One observation tick: the policy's reaction to the view, already
    budget-accounted (an exhausted adversary emits nothing) and
    deduplicated (re-flipping a replica to its current flavour is not
    an action).  The runner applies the actions in order. *)

val cleanup : t -> action list
(** End of the observation window: reconnect every node the policy
    isolated and return flipped replicas to honest.  Budget-free —
    leftover isolation must never outlive the adversary, or an
    [Expect_pass] schedule could fail on residue rather than protocol. *)

val budget_left : t -> int
