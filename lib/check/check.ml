(* CLI driver for the schedule fuzzer: generate → run → shrink, plus
   corpus replay.  All output is derived from schedule contents and
   verdicts only (no wall-clock, no paths that vary run to run), so a
   fixed seed produces byte-identical output — the determinism gate in
   CI diffs two runs. *)

let verdict_string (outcome : Runner.outcome) =
  match outcome.Runner.failed with
  | None -> "pass"
  | Some v -> Printf.sprintf "fail:%s" v.Oracle.name

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let report outcome =
  Printf.printf "check %-24s seed=%Ld steps=%d verdict=%s completed=%d events=%d\n%!"
    outcome.Runner.sched.Schedule.name outcome.Runner.sched.Schedule.seed
    (List.length outcome.Runner.sched.Schedule.steps)
    (verdict_string outcome) outcome.Runner.completed outcome.Runner.events;
  (match outcome.Runner.failed with
  | Some v -> Printf.printf "  %s: %s\n%!" v.Oracle.name v.Oracle.detail
  | None -> ())

(* Shrink a failing schedule and persist the minimal artifact. *)
let shrink_and_save ~out_dir outcome =
  match outcome.Runner.failed with
  | None -> None
  | Some v ->
      let oracle = v.Oracle.name in
      let minimal = Shrink.minimize ~oracle outcome.Runner.sched in
      ensure_dir out_dir;
      let path = Filename.concat out_dir (minimal.Schedule.name ^ ".schedule") in
      Schedule.save ~path minimal;
      Printf.printf "  shrunk to %d steps, %d clients x %d reqs -> %s\n%!"
        (List.length minimal.Schedule.steps) minimal.Schedule.clients minimal.Schedule.requests path;
      Some (minimal, path)

type fuzz_result = {
  ran : int;
  failures : (Schedule.t * Schedule.t) list;  (** (original, shrunk) *)
  expectation_errors : (string * string) list;  (** (name, error) *)
}

let fuzz ?(seeds = 50) ?(quick = false) ?(mutate = false) ?(adversarial = false)
    ?(seed = 1L) ?(out_dir = "bench_out") ?budget_s () =
  let profile = { Gen.quick; mutate; adversarial } in
  let failures = ref [] in
  let expectation_errors = ref [] in
  let ran = ref 0 in
  let started = Sys.time () in
  (* With a budget, `seeds` becomes an upper bound and the loop stops
     once the CPU-time budget is spent.  Each individual schedule is
     still derived purely from (seed, index), so any finding replays
     exactly; only the number of schedules visited is host-dependent,
     which is why the CI determinism gate never passes a budget. *)
  let within_budget () =
    match budget_s with None -> true | Some b -> Sys.time () -. started < b
  in
  let index = ref 0 in
  while !index < seeds && within_budget () do
    let sched =
      if mutate then Gen.generate_mutation ~seed !index
      else Gen.generate ~profile ~seed !index
    in
    let outcome = Runner.run sched in
    report outcome;
    (match Runner.meets_expectation outcome with
    | Ok () -> ()
    | Error e ->
        Printf.printf "  EXPECTATION VIOLATED: %s\n%!" e;
        expectation_errors := (sched.Schedule.name, e) :: !expectation_errors);
    (match shrink_and_save ~out_dir outcome with
    | Some (minimal, _) -> failures := (sched, minimal) :: !failures
    | None -> ());
    incr ran;
    incr index
  done;
  { ran = !ran; failures = List.rev !failures; expectation_errors = List.rev !expectation_errors }

let replay_one path =
  match Schedule.load ~path with
  | Error e ->
      Printf.printf "replay %-40s PARSE ERROR: %s\n%!" (Filename.basename path) e;
      false
  | Ok sched -> (
      let outcome = Runner.run sched in
      match Runner.meets_expectation outcome with
      | Ok () ->
          Printf.printf "replay %-40s ok (%s)\n%!" (Filename.basename path) (verdict_string outcome);
          true
      | Error e ->
          Printf.printf "replay %-40s FAILED: %s\n%!" (Filename.basename path) e;
          false)

let replay_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".schedule")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  if List.length files = 0 then begin
    Printf.printf "no .schedule files in %s\n%!" dir;
    false
  end
  else List.for_all (fun ok -> ok) (List.map replay_one files)

(* ------------------------------------------------------------------ *)
(* Entry point (invoked as `bench/main.exe check ...`) *)

let usage () =
  print_string
    "usage: check [--seeds N] [--seed S] [--quick] [--mutate] [--adversarial] [--out DIR]\n\
    \             [--budget-s SECONDS]\n\
    \       check replay FILE.schedule...\n\
    \       check replay-dir DIR\n"

let main args =
  match args with
  | "replay" :: files ->
      if List.length files = 0 then (usage (); 2)
      else if List.for_all (fun ok -> ok) (List.map replay_one files) then 0
      else 1
  | [ "replay-dir"; dir ] -> if replay_dir dir then 0 else 1
  | _ ->
      let seeds = ref 50 in
      let seed = ref 1L in
      let quick = ref false in
      let mutate = ref false in
      let adversarial = ref false in
      let out_dir = ref "bench_out" in
      let budget_s = ref None in
      let bad = ref false in
      let rec parse = function
        | [] -> ()
        | "--seeds" :: n :: rest ->
            (match int_of_string_opt n with
            | Some n when n > 0 -> seeds := n
            | _ -> bad := true);
            parse rest
        | "--seed" :: s :: rest ->
            (match Int64.of_string_opt s with Some s -> seed := s | None -> bad := true);
            parse rest
        | "--quick" :: rest ->
            quick := true;
            parse rest
        | "--mutate" :: rest ->
            mutate := true;
            parse rest
        | "--adversarial" :: rest ->
            adversarial := true;
            parse rest
        | "--out" :: dir :: rest ->
            out_dir := dir;
            parse rest
        | "--budget-s" :: s :: rest ->
            (match float_of_string_opt s with
            | Some s when s > 0. -> budget_s := Some s
            | _ -> bad := true);
            parse rest
        | _ ->
            bad := true
      in
      parse args;
      if !bad then (usage (); 2)
      else begin
        let r =
          fuzz ~seeds:!seeds ~quick:!quick ~mutate:!mutate ~adversarial:!adversarial
            ~seed:!seed ~out_dir:!out_dir ?budget_s:!budget_s ()
        in
        Printf.printf "fuzz: %d schedules, %d failures, %d expectation errors\n%!" r.ran
          (List.length r.failures)
          (List.length r.expectation_errors);
        (* Mutated runs are *supposed* to fail (that is the mutation
           check); an unmutated failure or any expectation error is a
           finding. *)
        if !mutate then if List.length r.failures > 0 then 0 else 1
        else if List.length r.failures > 0 || List.length r.expectation_errors > 0 then 1
        else 0
      end
