type byz =
  | Equivocate
  | Silent
  | Corrupt_shares
  | Wrong_exec_digest
  | Stale_vc
  | Honest

type action =
  | Crash of int
  | Crash_amnesia of int
  | Recover of int
  | Partition of int list list
  | Heal
  | Set_drop of float
  | Delay_link of { src : int; dst : int; delay_ms : int }
  | Isolate of int
  | Reconnect of int
  | Byzantine of int * byz
  | Slow of int * float
  | Flap of { src : int; dst : int; period_ms : int; up_ms : int }
  | Unflap of int
  | Fsync_delay of int * float
  | Rollback of int * int

type step = { at_ms : int; action : action }

type mutation = No_mutation | Weak_sigma | Weak_tau | Weak_vc

type expect = Expect_pass | Expect_fail of string | Expect_any

type topology = Lan | Continent | World

type policy =
  | Equivocating_collector
  | Withhold_until_threshold
  | View_change_storm
  | Checkpoint_split

type adversary = {
  policy : policy;
  pool : int list;
  budget : int;
  every_ms : int;
  from_ms : int;
  until_ms : int;
}

type t = {
  name : string;
  seed : int64;
  f : int;
  c : int;
  clients : int;
  requests : int;
  win : int;
  topology : topology;
  acks : bool;
  wal : bool;
  rejoin_conservative : bool;
  mutation : mutation;
  adversary : adversary option;
  gst_ms : int option;
  horizon_ms : int;
  expect : expect;
  steps : step list;
}

let num_replicas t = Sbft_core.Config.n (Sbft_core.Config.sbft ~f:t.f ~c:t.c)
let num_nodes t = num_replicas t + t.clients

let byz_to_string = function
  | Equivocate -> "equivocate"
  | Silent -> "silent"
  | Corrupt_shares -> "corrupt-shares"
  | Wrong_exec_digest -> "wrong-exec-digest"
  | Stale_vc -> "stale-vc"
  | Honest -> "honest"

let byz_of_string = function
  | "equivocate" -> Some Equivocate
  | "silent" -> Some Silent
  | "corrupt-shares" -> Some Corrupt_shares
  | "wrong-exec-digest" -> Some Wrong_exec_digest
  | "stale-vc" -> Some Stale_vc
  | "honest" -> Some Honest
  | _ -> None

let policy_to_string = function
  | Equivocating_collector -> "equivocating-collector"
  | Withhold_until_threshold -> "withhold-until-threshold"
  | View_change_storm -> "vc-storm"
  | Checkpoint_split -> "checkpoint-split"

let policy_of_string = function
  | "equivocating-collector" -> Some Equivocating_collector
  | "withhold-until-threshold" -> Some Withhold_until_threshold
  | "vc-storm" -> Some View_change_storm
  | "checkpoint-split" -> Some Checkpoint_split
  | _ -> None

let groups_to_string groups =
  String.concat "|"
    (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups)

let action_to_string = function
  | Crash n -> Printf.sprintf "crash %d" n
  | Crash_amnesia n -> Printf.sprintf "crash-amnesia %d" n
  | Recover n -> Printf.sprintf "recover %d" n
  | Partition groups -> Printf.sprintf "partition %s" (groups_to_string groups)
  | Heal -> "heal"
  | Set_drop p -> Printf.sprintf "drop %g" p
  | Delay_link { src; dst; delay_ms } -> Printf.sprintf "delay %d %d %d" src dst delay_ms
  | Isolate n -> Printf.sprintf "isolate %d" n
  | Reconnect n -> Printf.sprintf "reconnect %d" n
  | Byzantine (n, b) -> Printf.sprintf "byz %d %s" n (byz_to_string b)
  | Slow (n, scale) -> Printf.sprintf "slow %d %g" n scale
  | Flap { src; dst; period_ms; up_ms } ->
      Printf.sprintf "flap %d %d %d %d" src dst period_ms up_ms
  | Unflap n -> Printf.sprintf "unflap %d" n
  | Fsync_delay (n, scale) -> Printf.sprintf "fsync-delay %d %g" n scale
  | Rollback (n, before) -> Printf.sprintf "rollback %d %d" n before

let topology_to_string = function
  | Lan -> "lan"
  | Continent -> "continent"
  | World -> "world"

(* ------------------------------------------------------------------ *)
(* Emitter.  Line-based, fixed field order, steps sorted by time:
   emitting then parsing then emitting again is byte-identical, which is
   what makes `.schedule` artifacts diff-friendly regression inputs. *)

let sorted_steps t =
  List.stable_sort (fun a b -> Int.compare a.at_ms b.at_ms) t.steps

let to_string t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "sbft-schedule v1";
  line "name %s" t.name;
  line "seed %Ld" t.seed;
  line "f %d" t.f;
  line "c %d" t.c;
  line "clients %d" t.clients;
  line "requests %d" t.requests;
  line "win %d" t.win;
  line "topology %s" (topology_to_string t.topology);
  line "acks %s" (if t.acks then "on" else "off");
  line "wal %s" (if t.wal then "on" else "off");
  line "rejoin %s" (if t.rejoin_conservative then "conservative" else "eager");
  line "mutation %s"
    (match t.mutation with
    | No_mutation -> "none"
    | Weak_sigma -> "weak-sigma"
    | Weak_tau -> "weak-tau"
    | Weak_vc -> "weak-vc");
  (match t.adversary with
  | None -> ()
  | Some a ->
      line "adversary %s pool %s budget %d every %d from %d until %d"
        (policy_to_string a.policy)
        (String.concat "," (List.map string_of_int a.pool))
        a.budget a.every_ms a.from_ms a.until_ms);
  (match t.gst_ms with None -> line "gst none" | Some g -> line "gst %d" g);
  line "horizon %d" t.horizon_ms;
  (match t.expect with
  | Expect_any -> ()
  | Expect_pass -> line "expect pass"
  | Expect_fail oracle -> line "expect fail %s" oracle);
  List.iter (fun s -> line "step %d %s" s.at_ms (action_to_string s.action)) (sorted_steps t);
  line "end";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_groups s =
  let parse_group g =
    let parts = String.split_on_char ',' g in
    List.fold_left
      (fun acc p ->
        match (acc, int_of_string_opt p) with
        | Ok nodes, Some n -> Ok (n :: nodes)
        | Ok _, None -> Error (Printf.sprintf "bad partition node %S" p)
        | (Error _ as e), _ -> e)
      (Ok []) parts
    |> Result.map List.rev
  in
  let groups = String.split_on_char '|' s in
  List.fold_left
    (fun acc g ->
      match (acc, parse_group g) with
      | Ok gs, Ok nodes -> Ok (nodes :: gs)
      | Ok _, (Error _ as e) -> e
      | (Error _ as e), _ -> e)
    (Ok []) groups
  |> Result.map List.rev

let parse_action words =
  match words with
  | [ "crash"; n ] -> Result.map (fun n -> Crash n) (parse_int "node" n)
  | [ "crash-amnesia"; n ] -> Result.map (fun n -> Crash_amnesia n) (parse_int "node" n)
  | [ "recover"; n ] -> Result.map (fun n -> Recover n) (parse_int "node" n)
  | [ "partition"; spec ] -> Result.map (fun g -> Partition g) (parse_groups spec)
  | [ "heal" ] -> Ok Heal
  | [ "drop"; p ] -> (
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Set_drop p)
      | _ -> Error (Printf.sprintf "bad drop probability %S" p))
  | [ "delay"; src; dst; ms ] ->
      Result.bind (parse_int "src" src) (fun src ->
          Result.bind (parse_int "dst" dst) (fun dst ->
              Result.map
                (fun delay_ms -> Delay_link { src; dst; delay_ms })
                (parse_int "delay" ms)))
  | [ "isolate"; n ] -> Result.map (fun n -> Isolate n) (parse_int "node" n)
  | [ "reconnect"; n ] -> Result.map (fun n -> Reconnect n) (parse_int "node" n)
  | [ "byz"; n; b ] ->
      Result.bind (parse_int "node" n) (fun n ->
          match byz_of_string b with
          | Some b -> Ok (Byzantine (n, b))
          | None -> Error (Printf.sprintf "unknown byzantine behaviour %S" b))
  | [ "slow"; n; s ] ->
      Result.bind (parse_int "node" n) (fun n ->
          match float_of_string_opt s with
          | Some scale when scale >= 1.0 -> Ok (Slow (n, scale))
          | _ -> Error (Printf.sprintf "bad slow scale %S" s))
  | [ "flap"; src; dst; period; up ] ->
      Result.bind (parse_int "src" src) (fun src ->
          Result.bind (parse_int "dst" dst) (fun dst ->
              Result.bind (parse_int "flap period" period) (fun period_ms ->
                  Result.bind (parse_int "flap up" up) (fun up_ms ->
                      if period_ms < 1 || up_ms < 0 then
                        Error "flap period must be positive and up non-negative"
                      else Ok (Flap { src; dst; period_ms; up_ms })))))
  | [ "unflap"; n ] -> Result.map (fun n -> Unflap n) (parse_int "node" n)
  | [ "fsync-delay"; n; s ] ->
      Result.bind (parse_int "node" n) (fun n ->
          match float_of_string_opt s with
          | Some scale when scale >= 1.0 -> Ok (Fsync_delay (n, scale))
          | _ -> Error (Printf.sprintf "bad fsync-delay scale %S" s))
  | [ "rollback"; n; before ] ->
      Result.bind (parse_int "node" n) (fun n ->
          Result.map (fun before -> Rollback (n, before)) (parse_int "rollback seq" before))
  | _ -> Error (Printf.sprintf "unknown action %S" (String.concat " " words))

let parse_pool s =
  List.fold_left
    (fun acc p ->
      match (acc, int_of_string_opt p) with
      | Ok nodes, Some n when n >= 0 -> Ok (n :: nodes)
      | Ok _, _ -> Error (Printf.sprintf "bad adversary pool node %S" p)
      | (Error _ as e), _ -> e)
    (Ok [])
    (String.split_on_char ',' s)
  |> Result.map List.rev

let parse_adversary words =
  match words with
  | [ p; "pool"; pool; "budget"; b; "every"; e; "from"; fr; "until"; u ] -> (
      match policy_of_string p with
      | None -> Error (Printf.sprintf "unknown adversary policy %S" p)
      | Some policy ->
          Result.bind (parse_pool pool) (fun pool ->
              Result.bind (parse_int "budget" b) (fun budget ->
                  Result.bind (parse_int "every" e) (fun every_ms ->
                      Result.bind (parse_int "from" fr) (fun from_ms ->
                          Result.bind (parse_int "until" u) (fun until_ms ->
                              if pool = [] then Error "adversary pool is empty"
                              else if budget < 0 then Error "negative adversary budget"
                              else if every_ms < 1 then Error "adversary tick must be positive"
                              else if until_ms < from_ms then Error "adversary until before from"
                              else
                                Ok { policy; pool; budget; every_ms; from_ms; until_ms }))))))
  | _ -> Error (Printf.sprintf "bad adversary line %S" (String.concat " " words))

let default ~name ~seed =
  {
    name;
    seed;
    f = 1;
    c = 0;
    clients = 2;
    requests = 4;
    win = 8;
    topology = Lan;
    acks = true;
    wal = true;
    rejoin_conservative = true;
    mutation = No_mutation;
    adversary = None;
    gst_ms = None;
    horizon_ms = 30_000;
    expect = Expect_any;
    steps = [];
  }

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l -> String.trim l)
    |> List.filter (fun l -> String.length l > 0 && not (Char.equal l.[0] '#'))
  in
  let words l =
    String.split_on_char ' ' l |> List.filter (fun w -> String.length w > 0)
  in
  match lines with
  | header :: rest when String.equal header "sbft-schedule v1" ->
      let t = ref (default ~name:"unnamed" ~seed:1L) in
      let steps = ref [] in
      let err = ref None in
      let ended = ref false in
      let fail msg = if Option.is_none !err then err := Some msg in
      let set_field f = match f with Ok v -> v | Error e -> fail e; !t in
      List.iter
        (fun l ->
          if Option.is_none !err && not !ended then
            match words l with
            | [ "name"; n ] -> t := { !t with name = n }
            | "name" :: parts -> t := { !t with name = String.concat " " parts }
            | [ "seed"; s ] -> (
                match Int64.of_string_opt s with
                | Some seed -> t := { !t with seed }
                | None -> fail (Printf.sprintf "bad seed %S" s))
            | [ "f"; v ] -> t := set_field (Result.map (fun f -> { !t with f }) (parse_int "f" v))
            | [ "c"; v ] -> t := set_field (Result.map (fun c -> { !t with c }) (parse_int "c" v))
            | [ "clients"; v ] ->
                t := set_field (Result.map (fun clients -> { !t with clients }) (parse_int "clients" v))
            | [ "requests"; v ] ->
                t := set_field (Result.map (fun requests -> { !t with requests }) (parse_int "requests" v))
            | [ "win"; v ] -> t := set_field (Result.map (fun win -> { !t with win }) (parse_int "win" v))
            | [ "topology"; "lan" ] -> t := { !t with topology = Lan }
            | [ "topology"; "continent" ] -> t := { !t with topology = Continent }
            | [ "topology"; "world" ] -> t := { !t with topology = World }
            | [ "topology"; other ] -> fail (Printf.sprintf "unknown topology %S" other)
            | [ "acks"; "on" ] -> t := { !t with acks = true }
            | [ "acks"; "off" ] -> t := { !t with acks = false }
            | [ "wal"; "on" ] -> t := { !t with wal = true }
            | [ "wal"; "off" ] -> t := { !t with wal = false }
            | [ "rejoin"; "conservative" ] -> t := { !t with rejoin_conservative = true }
            | [ "rejoin"; "eager" ] -> t := { !t with rejoin_conservative = false }
            | [ "rejoin"; other ] -> fail (Printf.sprintf "unknown rejoin mode %S" other)
            | [ "mutation"; "none" ] -> t := { !t with mutation = No_mutation }
            | [ "mutation"; "weak-sigma" ] -> t := { !t with mutation = Weak_sigma }
            | [ "mutation"; "weak-tau" ] -> t := { !t with mutation = Weak_tau }
            | [ "mutation"; "weak-vc" ] -> t := { !t with mutation = Weak_vc }
            | [ "mutation"; other ] -> fail (Printf.sprintf "unknown mutation %S" other)
            | "adversary" :: adv_words -> (
                match parse_adversary adv_words with
                | Ok a -> t := { !t with adversary = Some a }
                | Error e -> fail e)
            | [ "gst"; "none" ] -> t := { !t with gst_ms = None }
            | [ "gst"; v ] ->
                t := set_field (Result.map (fun g -> { !t with gst_ms = Some g }) (parse_int "gst" v))
            | [ "horizon"; v ] ->
                t := set_field (Result.map (fun horizon_ms -> { !t with horizon_ms }) (parse_int "horizon" v))
            | [ "expect"; "pass" ] -> t := { !t with expect = Expect_pass }
            | [ "expect"; "any" ] -> t := { !t with expect = Expect_any }
            | [ "expect"; "fail"; oracle ] -> t := { !t with expect = Expect_fail oracle }
            | "step" :: at :: action_words -> (
                match parse_int "step time" at with
                | Error e -> fail e
                | Ok at_ms -> (
                    match parse_action action_words with
                    | Ok action -> steps := { at_ms; action } :: !steps
                    | Error e -> fail e))
            | [ "end" ] -> ended := true
            | _ -> fail (Printf.sprintf "unparseable line %S" l))
        rest;
      (match !err with
      | Some e -> Error e
      | None ->
          if not !ended then Error "missing end line"
          else
            let t = { !t with steps = List.rev !steps } in
            if t.f < 0 || t.c < 0 then Error "negative f or c"
            else if t.clients < 1 then Error "need at least one client"
            else if t.requests < 1 then Error "need at least one request"
            else if t.horizon_ms < 1 then Error "horizon must be positive"
            else
              let bad_pool =
                match t.adversary with
                | None -> false
                | Some a -> List.exists (fun n -> n >= num_replicas t) a.pool
              in
              if bad_pool then Error "adversary pool names a non-replica node"
              else Ok { t with steps = sorted_steps t })
  | _ -> Error "not an sbft-schedule v1 file"

(* ------------------------------------------------------------------ *)
(* Files *)

let save ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e
