(** Seeded random schedule generation.

    Generated schedules respect the fault model the safety proofs
    assume — at most [f] replicas ever turn Byzantine — so a failing
    safety oracle is always a genuine protocol bug, never an over-budget
    adversary. Crashes, partitions, drops, and delays are unbudgeted:
    they may stall progress but must never break safety.

    About 65% of schedules are eventually synchronous: at a generated
    GST every injected fault is undone (heal, drop 0, reconnect,
    recover, Byzantine replicas flip honest) and a quiet period follows,
    so they are marked [Expect_pass] and the liveness-after-GST oracle
    applies. The rest stay asynchronous ([Expect_any]: safety only). *)

type profile = {
  quick : bool;  (** smaller clusters, shorter horizons *)
  mutate : bool;  (** generate weak-sigma mutation schedules *)
  adversarial : bool;
      (** attach a random adaptive-adversary header to every schedule:
          a policy over the Byzantine pool (≤ f colluders), a small
          action budget, and an observation window that closes before
          GST so [Expect_pass] schedules keep their quiet period *)
}

val default_profile : profile
(** [{ quick = false; mutate = false; adversarial = false }] *)

val generate : ?profile:profile -> seed:int64 -> int -> Schedule.t
(** [generate ~seed index] is the [index]-th schedule of the seeded
    stream — deterministic in [(seed, index, profile)]. *)

val generate_mutation : seed:int64 -> int -> Schedule.t
(** A schedule for the oracle self-check: f=1, c=1 under the weak-sigma
    quorum mutation with an equivocating primary, which lets two
    conflicting commit certificates form — the agreement oracle must
    catch the resulting divergence. *)
