(** Deterministic views over hash tables.

    [Hashtbl] iteration order is unspecified and can differ between runs
    with identical inputs, which would silently break the simulator's
    same-seed-same-trace contract (lint rule R7, replay checker R8).
    These helpers materialize a table and sort by an explicit protocol
    key before handing the elements to the caller. *)

val sorted_bindings : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key.  With duplicate keys (from
    [Hashtbl.add] shadowing) the relative order of equal keys is
    unspecified; SBFT tables use [Hashtbl.replace] throughout, so keys
    are unique. *)

val sorted_keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys, sorted. *)

val iter_sorted :
  compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted ~compare f tbl] applies [f] to every binding in
    ascending key order. *)

val compare_pair :
  ('a -> 'a -> int) -> ('b -> 'b -> int) -> 'a * 'b -> 'a * 'b -> int
(** Lexicographic pair comparison, for [(client, timestamp)]-style keys. *)
