(** Replay-divergence checker (rule R8, the runtime twin of the R7
    determinism lint rules).

    The simulator's contract is that a scenario is a pure function of
    its seed: running it twice must produce bit-identical event traces.
    This module runs a trace-producing thunk twice, compares the streams
    event-by-event, and reports either the per-run digests or the first
    divergent event.  Wired into the build as [dune build @replay]. *)

type digest = int64
(** FNV-1a 64 over the rendered records.  Not cryptographic — collisions
    don't matter because outcomes come from the event-by-event
    comparison; digests are only a compact fingerprint to report. *)

val pp_digest : digest -> string
(** 16 hex digits. *)

val digest_records : Trace.record list -> digest

val node_digests : Trace.record list -> (int * digest) list
(** Digest of each node's event sub-stream, ascending node id. *)

type summary = {
  events : int;
  digest : digest;  (** over the whole interleaved stream *)
  nodes : (int * digest) list;  (** per-node digests, ascending node id *)
}

type divergence = {
  index : int;  (** position in the interleaved stream *)
  first : Trace.record option;  (** [None] = run 1 ended early *)
  second : Trace.record option;  (** [None] = run 2 ended early *)
}

type outcome = Identical of summary | Diverged of divergence

val compare_runs : Trace.record list -> Trace.record list -> outcome

val run_twice : run:(unit -> Trace.record list) -> outcome
(** [run_twice ~run] invokes [run] twice and compares; [run] must
    rebuild its whole world (engine, rng, cluster) on each call so both
    runs start from the same seed. *)

val pp_outcome : outcome -> string
(** One line when identical; a three-line report naming the first
    divergent event otherwise. *)
