type t = {
  region_of : int array;
  one_way_ns : int array array;
  num_regions : int;
  jitter : float;
}

let make ~region_of ~one_way_ms ~jitter =
  let num_regions = Array.length one_way_ms in
  let one_way_ns =
    Array.map (Array.map (fun ms -> Engine.ms_f ms)) one_way_ms
  in
  { region_of; one_way_ns; num_regions; jitter }

(* One-way latency between two points on the globe: great-circle distance
   at ~200,000 km/s in fibre, times a 1.4 routing inflation factor, plus a
   fixed 1.5 ms of access/queueing overhead.  This reproduces familiar
   real-world numbers (us-east <-> eu-west ~ 40 ms one-way, us <->
   ap-southeast ~ 100+ ms). *)
let great_circle_ms (lat1, lon1) (lat2, lon2) =
  let rad d = d *. Float.pi /. 180.0 in
  let phi1 = rad lat1 and phi2 = rad lat2 in
  let dphi = rad (lat2 -. lat1) and dlambda = rad (lon2 -. lon1) in
  let a =
    (sin (dphi /. 2.0) ** 2.0)
    +. (cos phi1 *. cos phi2 *. (sin (dlambda /. 2.0) ** 2.0))
  in
  let km = 6371.0 *. 2.0 *. atan2 (sqrt a) (sqrt (1.0 -. a)) in
  (km *. 1.4 /. 200_000.0 *. 1000.0) +. 1.5

let matrix_of_coords coords ~same_region_ms =
  let n = Array.length coords in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then same_region_ms else great_circle_ms coords.(i) coords.(j)))

let round_robin_regions ~num_nodes ~num_regions =
  Array.init num_nodes (fun i -> i mod num_regions)

let lan ~num_nodes =
  make
    ~region_of:(Array.make num_nodes 0)
    ~one_way_ms:[| [| 0.15 |] |]
    ~jitter:0.05

(* Five regions of one continent (modeled on US regions), two availability
   zones each.  Zones of the same region are 0.6 ms apart; a node talks to
   its own zone in 0.15 ms. *)
let continent ~num_nodes =
  let regions =
    [|
      (38.9, -77.0) (* east-1 *);
      (40.0, -83.0) (* east-2 *);
      (45.8, -119.7) (* west-2 *);
      (37.4, -122.0) (* west-1 *);
      (45.5, -73.6) (* north-1 *);
    |]
  in
  let num_zones = 2 * Array.length regions in
  let zone_coords = Array.init num_zones (fun z -> regions.(z / 2)) in
  let base = matrix_of_coords zone_coords ~same_region_ms:0.15 in
  (* Distinguish same-region cross-zone pairs from same-zone. *)
  let one_way_ms =
    Array.init num_zones (fun i ->
        Array.init num_zones (fun j ->
            if i = j then 0.15 else if i / 2 = j / 2 then 0.6 else base.(i).(j)))
  in
  make
    ~region_of:(round_robin_regions ~num_nodes ~num_regions:num_zones)
    ~one_way_ms ~jitter:0.10

(* Fifteen regions spread over all continents (AWS-like locations). *)
let world ~num_nodes =
  let regions =
    [|
      (38.9, -77.0) (* N. Virginia *);
      (40.0, -83.0) (* Ohio *);
      (45.8, -119.7) (* Oregon *);
      (37.4, -122.0) (* N. California *);
      (45.5, -73.6) (* Montreal *);
      (-23.5, -46.6) (* Sao Paulo *);
      (53.3, -6.2) (* Ireland *);
      (51.5, -0.1) (* London *);
      (50.1, 8.7) (* Frankfurt *);
      (59.3, 18.1) (* Stockholm *);
      (19.1, 72.9) (* Mumbai *);
      (1.3, 103.8) (* Singapore *);
      (35.7, 139.7) (* Tokyo *);
      (37.6, 126.9) (* Seoul *);
      (-33.9, 151.2) (* Sydney *);
    |]
  in
  let one_way_ms = matrix_of_coords regions ~same_region_ms:0.15 in
  make
    ~region_of:(round_robin_regions ~num_nodes ~num_regions:(Array.length regions))
    ~one_way_ms ~jitter:0.10

let num_nodes t = Array.length t.region_of
let num_regions t = t.num_regions
let region_of t i = t.region_of.(i)
let jitter t = t.jitter

let base_latency t ~src ~dst = t.one_way_ns.(t.region_of.(src)).(t.region_of.(dst))

let sample_latency t rng ~src ~dst =
  let base = float_of_int (base_latency t ~src ~dst) in
  (* Multiplicative, strictly positive jitter: |1 + jitter * N(0,1)|. *)
  let factor = Float.abs (1.0 +. (t.jitter *. Rng.gaussian rng)) in
  int_of_float (base *. factor)
