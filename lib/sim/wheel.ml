(* Hierarchical timer wheel keyed by (time, seq), the drop-in
   replacement for the binary heap at the heart of the event loop.

   Design: a classic 8-level wheel (256 slots per level, slot width
   256^l nanoseconds at level l, so the eight levels cover the full
   non-negative int range) fronted by a small binary heap.  The heap
   ("front") holds every entry with time <= cur, the wheel's current
   time floor; slots hold strictly-future entries, placed at the level
   of the highest byte in which their time differs from [cur].  Pops
   come from the front; when it drains, [advance] walks per-level
   occupancy bitmaps to the next populated slot, cascading higher-level
   slots downward until the earliest entries land in the front.

   Ordering is exact, not approximate: the front heap compares full
   (time, seq) keys and a level-0 slot holds entries of a single
   nanosecond, so pops reproduce the binary heap's lexicographic
   (time, seq) order bit-for-bit — the replay digests (R8) must not
   move.  The win over the heap is the common case: O(1) insert, O(1)
   amortized cascading (each entry moves down at most 7 times), and no
   sift-down touching log n cache lines per pop.

   Cancellation support is a predicate, not a handle: [compact] drops
   every entry the caller considers dead in one O(n) sweep.  The engine
   calls it when the cancelled fraction of pending timers crosses a
   threshold, so retry/backoff timer storms stop accumulating dead
   events (see Engine.cancel_timer). *)

type 'a entry = { k0 : int; k1 : int; v : 'a }

(* Growable entry vector — one per occupied slot. *)
type 'a vec = { mutable a : 'a entry array; mutable n : int }

let vec_push vc e =
  let cap = Array.length vc.a in
  if vc.n = cap then begin
    let ncap = if cap = 0 then 4 else cap * 2 in
    let na = Array.make ncap e in
    Array.blit vc.a 0 na 0 vc.n;
    vc.a <- na
  end;
  vc.a.(vc.n) <- e;
  vc.n <- vc.n + 1

let slot_bits = 8
let slots_per_level = 1 lsl slot_bits (* 256 *)
let num_levels = 8 (* 8 * 8 = 64 bits: covers every non-negative int *)

(* Occupancy bitmap: 8 x 32-bit words per level (OCaml ints are 63-bit,
   so 64-bit words don't fit; 32-bit words keep the scan branch-free). *)
let occ_words = slots_per_level / 32

type 'a t = {
  (* front: array-backed binary min-heap ordered by (k0, k1) *)
  mutable front : 'a entry array;
  mutable front_len : int;
  (* wheel *)
  slots : 'a vec array array; (* slots.(level).(slot) *)
  occ : int array array; (* occ.(level).(word) *)
  mutable cur : int; (* time floor: slot entries all have k0 > cur *)
  mutable wheel_count : int;
}

let create () =
  {
    front = [||];
    front_len = 0;
    slots =
      Array.init num_levels (fun _ ->
          Array.init slots_per_level (fun _ -> { a = [||]; n = 0 }));
    occ = Array.init num_levels (fun _ -> Array.make occ_words 0);
    cur = 0;
    wheel_count = 0;
  }

let size t = t.front_len + t.wheel_count
let is_empty t = size t = 0

(* ---------------------------------------------------------------- *)
(* Front heap (same ordering as Heap) *)

let less a b = a.k0 < b.k0 || (a.k0 = b.k0 && a.k1 < b.k1)

let front_push t e =
  let cap = Array.length t.front in
  if t.front_len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let na = Array.make ncap e in
    Array.blit t.front 0 na 0 t.front_len;
    t.front <- na
  end;
  t.front.(t.front_len) <- e;
  t.front_len <- t.front_len + 1;
  let i = ref (t.front_len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less t.front.(!i) t.front.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.front.(!i) in
    t.front.(!i) <- t.front.(p);
    t.front.(p) <- tmp;
    i := p
  done

let front_pop t =
  let root = t.front.(0) in
  t.front_len <- t.front_len - 1;
  if t.front_len > 0 then begin
    t.front.(0) <- t.front.(t.front_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.front_len && less t.front.(l) t.front.(!smallest) then smallest := l;
      if r < t.front_len && less t.front.(r) t.front.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.front.(!i) in
        t.front.(!i) <- t.front.(!smallest);
        t.front.(!smallest) <- tmp;
        i := !smallest
      end
    done
  end;
  root

(* ---------------------------------------------------------------- *)
(* Wheel insert *)

let set_occ t level slot =
  t.occ.(level).(slot lsr 5) <- t.occ.(level).(slot lsr 5) lor (1 lsl (slot land 31))

let clear_occ t level slot =
  t.occ.(level).(slot lsr 5) <-
    t.occ.(level).(slot lsr 5) land lnot (1 lsl (slot land 31))

(* Level of the highest byte in which [k0] differs from [cur].
   Precondition: k0 > cur (so the xor is non-zero). *)
let level_of ~cur k0 =
  let x = k0 lxor cur in
  let rec go l x = if x < slots_per_level then l else go (l + 1) (x lsr slot_bits) in
  go 0 x

let wheel_insert t e =
  let l = level_of ~cur:t.cur e.k0 in
  let slot = (e.k0 lsr (slot_bits * l)) land (slots_per_level - 1) in
  vec_push t.slots.(l).(slot) e;
  set_occ t l slot;
  t.wheel_count <- t.wheel_count + 1

let push_entry t e = if e.k0 <= t.cur then front_push t e else wheel_insert t e

let push t ~key0 ~key1 v = push_entry t { k0 = key0; k1 = key1; v }

(* ---------------------------------------------------------------- *)
(* Advance: move the earliest populated slot's entries frontward *)

(* Smallest occupied slot index >= [from] at [level], or -1. *)
let next_occupied t level from =
  if from >= slots_per_level then -1
  else begin
    let result = ref (-1) in
    let w = ref (from lsr 5) in
    (* mask off bits below [from] in the first word *)
    let bits = ref (t.occ.(level).(!w) land lnot ((1 lsl (from land 31)) - 1)) in
    while !result < 0 && !w < occ_words do
      if !bits <> 0 then begin
        (* lowest set bit *)
        let b = !bits land - !bits in
        let rec ntz i x = if x land 1 = 1 then i else ntz (i + 1) (x lsr 1) in
        result := (!w lsl 5) + ntz 0 b
      end
      else begin
        incr w;
        if !w < occ_words then bits := t.occ.(level).(!w)
      end
    done;
    !result
  end

(* Precondition: front empty, wheel_count > 0.  Advances [cur] to the
   next populated slot; level-0 slots move straight into the front
   (they hold a single nanosecond, so the heap resolves seq ties),
   higher-level slots cascade downward one level at a time. *)
let advance t =
  let rec go level =
    if level >= num_levels then
      (* wheel_count > 0 guarantees some slot is occupied above cur *)
      assert false
    else begin
      let idx = (t.cur lsr (slot_bits * level)) land (slots_per_level - 1) in
      match next_occupied t level (idx + 1) with
      | -1 -> go (level + 1)
      | s ->
          let vc = t.slots.(level).(s) in
          let n = vc.n in
          t.wheel_count <- t.wheel_count - n;
          clear_occ t level s;
          (* Advance cur to the base time of the found slot: keep the
             bytes above [level], substitute [s] at [level], zero below.
             Every remaining wheel entry is at or after this time. *)
          let width_mask = (1 lsl (slot_bits * (level + 1))) - 1 in
          t.cur <- (t.cur land lnot width_mask) lor (s lsl (slot_bits * level));
          (* Re-insert: k0 <= cur (exact for level 0) joins the front;
             deeper entries redistribute to lower levels. *)
          let a = vc.a in
          vc.a <- [||];
          vc.n <- 0;
          for i = 0 to n - 1 do
            push_entry t a.(i)
          done
    end
  in
  go 0

let rec refill_front t =
  if t.front_len = 0 && t.wheel_count > 0 then begin
    advance t;
    refill_front t
  end

let pop_min t =
  refill_front t;
  if t.front_len = 0 then None
  else
    let e = front_pop t in
    if e.k0 > t.cur then t.cur <- e.k0;
    Some (e.k0, e.k1, e.v)

let peek_key t =
  refill_front t;
  if t.front_len = 0 then None else Some (t.front.(0).k0, t.front.(0).k1)

let clear t =
  t.front <- [||];
  t.front_len <- 0;
  Array.iter
    (Array.iter (fun vc ->
         vc.a <- [||];
         vc.n <- 0))
    t.slots;
  Array.iter (fun w -> Array.fill w 0 occ_words 0) t.occ;
  t.cur <- 0;
  t.wheel_count <- 0

(* ---------------------------------------------------------------- *)
(* Lazy purge *)

let compact t ~dead =
  let live = ref [] in
  for i = 0 to t.front_len - 1 do
    let e = t.front.(i) in
    if not (dead e.v) then live := e :: !live
  done;
  Array.iter
    (Array.iter (fun vc ->
         for i = 0 to vc.n - 1 do
           let e = vc.a.(i) in
           if not (dead e.v) then live := e :: !live
         done))
    t.slots;
  let cur = t.cur in
  clear t;
  t.cur <- cur;
  (* Re-insertion order is irrelevant: output order is decided by the
     (k0, k1) keys alone (front heap + single-ns level-0 slots). *)
  List.iter (fun e -> push_entry t e) !live
