(** Message transport over a {!Topology}: latency + jitter, per-node NIC
    bandwidth (serialization delay for large messages and broadcast
    fan-out), probabilistic drops, link/partition failures, and a hook
    for adversarial per-link delays.

    The network does not know about message {i types}; protocol layers
    pass a closure to run at the destination together with the message's
    wire size.  A per-message receive overhead (kernel + TLS record
    processing) is charged on the destination CPU before the handler
    runs. *)

type t

val create :
  ?bandwidth_gbps:float ->
  ?drop_prob:float ->
  ?per_msg_overhead_bytes:int ->
  ?recv_overhead:Engine.time ->
  topology:Topology.t ->
  unit ->
  t
(** Defaults: 10 Gbit/s NICs, no drops, 80 bytes framing overhead
    (TCP/IP + TLS record), 30 µs receive overhead per message (kernel
    TCP + TLS record processing of a 2018 software stack — the cost that
    makes quadratic message complexity hurt at n ≈ 200). *)

val topology : t -> Topology.t

(** [send t eng ~src ~dst ~size ~at f] transmits a [size]-byte message,
    departing node [src] at time [at] (its NIC may delay departure),
    and runs [f] on [dst]'s CPU at arrival.  Messages between a node and
    itself are delivered after a minimal loopback delay. *)
val send :
  t -> Engine.t -> src:int -> dst:int -> size:int -> at:Engine.time ->
  (Engine.ctx -> unit) -> unit

(** {2 Fault injection} *)

val set_partition : t -> groups:int array option -> unit
(** [set_partition t ~groups:(Some g)] drops every message between nodes
    in different groups ([g.(node)] is the node's group); [None] heals. *)

val set_link : t -> src:int -> dst:int -> up:bool -> unit
(** Take a directed link down (messages silently dropped) or back up. *)

val set_extra_delay : t -> src:int -> dst:int -> Engine.time -> unit
(** Adversarial fixed extra delay on a directed link (0 clears it). *)

val set_flap : t -> src:int -> dst:int -> period:Engine.time -> up:Engine.time -> unit
(** Gray failure: make a directed link flap.  The link passes traffic
    only during the first [up] ns of each [period] (phase anchored at
    virtual time 0) — messages departing in the off-window are silently
    dropped.  Connectivity is a pure function of departure time, so
    flapping is deterministic and replayable (no RNG draws).
    [period <= 0] or [up >= period] clears the flap.  Directed: flap
    only one direction for an asymmetric gray link. *)

val clear_flap_node : t -> node:int -> num_nodes:int -> unit
(** Clear flapping on every link touching [node] (both directions) —
    the heal counterpart of {!set_flap} for GST schedules. *)

val set_drop_prob : t -> float -> unit

val isolate_node : t -> node:int -> num_nodes:int -> unit
(** Take down every link to and from [node] (the node stays alive: its
    timers run, but nothing it sends leaves and nothing reaches it).
    Used by the schedule fuzzer to isolate a specific collector. *)

val reconnect_node : t -> node:int -> num_nodes:int -> unit
(** Undo {!isolate_node} (restores every link touching [node], including
    any taken down individually via {!set_link}). *)

(** {2 Accounting} *)

val messages_sent : t -> int
val bytes_sent : t -> int
val messages_dropped : t -> int
val reset_counters : t -> unit
