(** Measurement accumulators used by the benchmark harness.

    {!Latency} collects individual samples (request latencies) and
    reports mean/median/percentiles.  {!Throughput} counts completions
    stamped with virtual time and reports a rate over a measurement
    window, excluding warm-up. *)

module Latency : sig
  type t

  val create : unit -> t
  val add : t -> Engine.time -> unit
  val count : t -> int
  val mean_ms : t -> float
  val percentile_ms : t -> float -> float
  (** [percentile_ms t 0.5] is the median, in milliseconds. 0 samples
      yield [nan]. *)

  val median_ms : t -> float
  val max_ms : t -> float
  val clear : t -> unit
end

module Throughput : sig
  type t

  val create : unit -> t

  val add : t -> at:Engine.time -> int -> unit
  (** [add t ~at k] records [k] completed operations at time [at]. *)

  val total : t -> int

  val last_at : t -> Engine.time option
  (** Virtual time of the most recent completion, if any — the
      effective end of a finite-request run that drains before its
      horizon. *)

  val rate : t -> from_:Engine.time -> until:Engine.time -> float
  (** Operations per second of virtual time inside the window. *)

  val clear : t -> unit
end
