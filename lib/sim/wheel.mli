(** Hierarchical timer wheel with exact [(key0, key1)] lexicographic
    pop order — a drop-in replacement for {!Heap} on the event-loop hot
    path.  Eight levels of 256 byte-sliced slots hold future entries;
    a small front heap resolves ordering among due entries, so the pop
    sequence is bit-identical to the binary heap's. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> key0:int -> key1:int -> 'a -> unit
(** O(1). [key0] must be >= the key0 of every entry popped so far
    (event times are monotone in the engine; pushing into the past is
    still safe — the entry joins the front heap and pops next). *)

val pop_min : 'a t -> (int * int * 'a) option
(** Remove and return the entry with the smallest [(key0, key1)].
    Amortized O(log front + cascades); each entry cascades at most
    7 times over its lifetime. *)

val peek_key : 'a t -> (int * int) option
(** Key of the entry [pop_min] would return, without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val compact : 'a t -> dead:('a -> bool) -> unit
(** Drop every entry whose value satisfies [dead], in one O(size)
    sweep.  Pop order of survivors is unchanged (ordering depends only
    on keys, never on slot insertion order). *)
