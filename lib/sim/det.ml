(* Deterministic views over hash tables.  Hashtbl iteration order is
   unspecified and may differ between runs (it depends on insertion
   history and resizing), so protocol code must never consume it
   directly; these wrappers materialize and sort by a caller-supplied
   protocol key.  This file is the one place allowed to traverse a
   Hashtbl unordered (lint rule R7). *)

let sorted_bindings ~compare tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sorted_keys ~compare tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let iter_sorted ~compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~compare tbl)

let compare_pair cmp_a cmp_b (a1, b1) (a2, b2) =
  match cmp_a a1 a2 with 0 -> cmp_b b1 b2 | n -> n
