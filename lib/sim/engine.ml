type time = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let ms_f x = int_of_float (x *. 1_000_000.)
let sec x = x * 1_000_000_000
let sec_f x = int_of_float (x *. 1_000_000_000.)

let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

type node = {
  id : int;
  mutable cpu_free_at : time;
  mutable crashed : bool;
  mutable cpu_scale : float;
  pending : pending_work Queue.t;
  mutable drain_at : time; (* time of the scheduled drain event, or -1 *)
}

and pending_work = Work : (ctx_ -> unit) -> pending_work

and ctx_ = { eng : t_; cnode : node; mutable cpu_now : time }

(* Events are a variant, not a closure: the common cases (message
   arrival, timer firing) carry their target directly, so scheduling a
   dispatch allocates one small block instead of a closure capturing
   the engine, and cancelled timers can be recognized in the queue
   (see [maybe_purge]). *)
and event =
  | Thunk of (unit -> unit)
  | Arrive of node * (ctx_ -> unit)
  | Timer_ev of timer * node * (ctx_ -> unit)

and timer = { mutable cancelled : bool; mutable fired : bool; owner : t_ }

and t_ = {
  mutable now : time;
  mutable seq : int;
  events : event Wheel.t;
  nodes : node array;
  (* One reusable ctx per node: handlers never run nested (all
     cross-node work goes through scheduled events), so a single
     mutable record per node replaces a per-work-item allocation. *)
  mutable ctxs : ctx_ array;
  rng : Rng.t;
  mutable executed : int;
  (* live = queued and not cancelled; cancelled entries linger until
     popped or purged *)
  mutable cancelled_pending : int;
  (* profile counters *)
  mutable n_thunks : int;
  mutable n_arrivals : int;
  mutable n_timers_fired : int;
  mutable n_timers_skipped : int;
  mutable n_timers_purged : int;
  mutable max_pending : int;
}

type t = t_
type ctx = ctx_

type profile = {
  p_executed : int;
  p_thunks : int;
  p_arrivals : int;
  p_timers_fired : int;
  p_timers_skipped : int;
  p_timers_purged : int;
  p_max_pending : int;
}

let create ~num_nodes ~seed () =
  let t =
    {
      now = 0;
      seq = 0;
      events = Wheel.create ();
      nodes =
        Array.init num_nodes (fun id ->
            {
              id;
              cpu_free_at = 0;
              crashed = false;
              cpu_scale = 1.0;
              pending = Queue.create ();
              drain_at = -1;
            });
      ctxs = [||];
      rng = Rng.create seed;
      executed = 0;
      cancelled_pending = 0;
      n_thunks = 0;
      n_arrivals = 0;
      n_timers_fired = 0;
      n_timers_skipped = 0;
      n_timers_purged = 0;
      max_pending = 0;
    }
  in
  t.ctxs <- Array.map (fun nd -> { eng = t; cnode = nd; cpu_now = 0 }) t.nodes;
  t

let num_nodes t = Array.length t.nodes
let now t = t.now
let rng t = t.rng

let node t i = t.nodes.(i)

let crash t i = (node t i).crashed <- true

let recover t i =
  let nd = node t i in
  nd.crashed <- false;
  nd.cpu_free_at <- t.now;
  Queue.clear nd.pending;
  nd.drain_at <- -1

let is_crashed t i = (node t i).crashed
let set_cpu_scale t i s = (node t i).cpu_scale <- s

let push_event t ~at ev =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Wheel.push t.events ~key0:at ~key1:t.seq ev;
  let sz = Wheel.size t.events in
  if sz > t.max_pending then t.max_pending <- sz

let schedule t ~at f = push_event t ~at (Thunk f)

(* Per-node FIFO CPU queue: each arriving work item enqueues; a single
   "drain" event per node runs items back-to-back as the CPU frees up,
   so a busy CPU costs O(1) events per handler instead of a requeue
   storm. *)
let rec drain t nd () =
  nd.drain_at <- -1;
  if not nd.crashed then begin
    let c = t.ctxs.(nd.id) in
    while (not (Queue.is_empty nd.pending)) && nd.cpu_free_at <= t.now do
      let (Work f) = Queue.pop nd.pending in
      c.cpu_now <- (if nd.cpu_free_at > t.now then nd.cpu_free_at else t.now);
      f c;
      if c.cpu_now > nd.cpu_free_at then nd.cpu_free_at <- c.cpu_now
    done;
    if not (Queue.is_empty nd.pending) then begin
      nd.drain_at <- nd.cpu_free_at;
      schedule t ~at:nd.cpu_free_at (drain t nd)
    end
  end
  else Queue.clear nd.pending

let arrive t nd f =
  if not nd.crashed then begin
    Queue.push (Work f) nd.pending;
    if nd.drain_at < 0 then begin
      let at = if nd.cpu_free_at > t.now then nd.cpu_free_at else t.now in
      nd.drain_at <- at;
      if at <= t.now then drain t nd () else schedule t ~at (drain t nd)
    end
  end

let dispatch t ~dst ~at f = push_event t ~at (Arrive (node t dst, f))

let set_timer t ~node:i ~after f =
  let tm = { cancelled = false; fired = false; owner = t } in
  push_event t ~at:(t.now + after) (Timer_ev (tm, node t i, f));
  tm

(* Lazy purge: cancelled timers stay queued until popped, which under a
   retry/backoff cancel storm lets dead events dominate the queue.  Once
   they outnumber live events (and are numerous enough that a sweep is
   worth its O(size) cost) we compact.  Purging is count-triggered and
   therefore deterministic; dropping a cancelled timer early is
   observationally silent — it would have fired as a skip, emitting no
   trace record and charging no CPU. *)
let maybe_purge t =
  if t.cancelled_pending > 64 && t.cancelled_pending * 2 > Wheel.size t.events
  then begin
    Wheel.compact t.events ~dead:(function
      | Timer_ev (tm, _, _) -> tm.cancelled
      | _ -> false);
    t.n_timers_purged <- t.n_timers_purged + t.cancelled_pending;
    t.cancelled_pending <- 0
  end

let cancel_timer tm =
  if not (tm.cancelled || tm.fired) then begin
    tm.cancelled <- true;
    let t = tm.owner in
    t.cancelled_pending <- t.cancelled_pending + 1;
    maybe_purge t
  end

let self c = c.cnode.id
let ctx_now c = c.cpu_now

let charge c dt =
  let scaled =
    if c.cnode.cpu_scale = 1.0 then dt
    else int_of_float (float_of_int dt *. c.cnode.cpu_scale)
  in
  c.cpu_now <- c.cpu_now + scaled

let engine c = c.eng

(* Run one popped event.  Returns [true] if it counted as executed
   ([false] for a cancelled timer, which is skipped without touching
   the clock's event budget — it would have been a no-op drain). *)
let fire t at ev =
  match ev with
  | Timer_ev (tm, _, _) when tm.cancelled ->
      t.cancelled_pending <- t.cancelled_pending - 1;
      t.n_timers_skipped <- t.n_timers_skipped + 1;
      false
  | _ ->
      t.now <- (if at > t.now then at else t.now);
      t.executed <- t.executed + 1;
      (match ev with
      | Thunk f ->
          t.n_thunks <- t.n_thunks + 1;
          f ()
      | Arrive (nd, f) ->
          t.n_arrivals <- t.n_arrivals + 1;
          arrive t nd f
      | Timer_ev (tm, nd, f) ->
          tm.fired <- true;
          t.n_timers_fired <- t.n_timers_fired + 1;
          arrive t nd f);
      true

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match Wheel.peek_key t.events with
    | Some (at, _) when at <= deadline -> (
        match Wheel.pop_min t.events with
        | Some (at, _, ev) -> ignore (fire t at ev : bool)
        | None -> continue := false)
    | _ -> continue := false
  done;
  if deadline > t.now then t.now <- deadline

let run_all ?(max_events = max_int) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Wheel.pop_min t.events with
    | Some (at, _, ev) -> if fire t at ev then decr budget
    | None -> continue := false
  done

let events_executed t = t.executed

(* Live events only: cancelled-but-unpurged timers are dead weight, not
   pending work. *)
let pending_events t = Wheel.size t.events - t.cancelled_pending

let profile t =
  {
    p_executed = t.executed;
    p_thunks = t.n_thunks;
    p_arrivals = t.n_arrivals;
    p_timers_fired = t.n_timers_fired;
    p_timers_skipped = t.n_timers_skipped;
    p_timers_purged = t.n_timers_purged;
    p_max_pending = t.max_pending;
  }
