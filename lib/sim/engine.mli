(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock (nanoseconds), an event queue, and a
    registry of nodes.  Each node models a single-core machine: handlers
    for messages and timers run sequentially on the node's CPU, and a
    handler accounts for the CPU time it consumes by calling {!charge}.
    A handler that arrives while the CPU is busy waits for it, which is
    what makes signature-verification load a real throughput bottleneck
    in the benchmarks, exactly as on the paper's testbed.

    All randomness used by the engine (and by the network layered on top
    of it) comes from the seed passed to {!create}: two runs with equal
    seeds produce identical traces. *)

type time = int
(** Virtual time in nanoseconds since simulation start. *)

type t

type ctx
(** Execution context passed to every handler: identifies the running
    node and tracks the CPU time consumed so far by the handler. *)

type timer
(** Cancellable handle for a scheduled timer. *)

val ns : int -> time
val us : int -> time
val ms : int -> time
val ms_f : float -> time
val sec : int -> time
val sec_f : float -> time

val to_ms : time -> float
val to_sec : time -> float

(** [create ~num_nodes ~seed ()] builds an engine with nodes
    [0 .. num_nodes-1], all alive, with idle CPUs. *)
val create : num_nodes:int -> seed:int64 -> unit -> t

val num_nodes : t -> int

(** [now t] is the current virtual time (time of the event being
    processed, or of the last processed event). *)
val now : t -> time

(** [rng t] is the engine's deterministic random stream. *)
val rng : t -> Rng.t

(** {2 Node lifecycle} *)

val crash : t -> int -> unit
(** [crash t node] stops [node]: all subsequently firing messages and
    timers addressed to it are silently dropped until {!recover}. *)

val recover : t -> int -> unit
val is_crashed : t -> int -> bool

val set_cpu_scale : t -> int -> float -> unit
(** [set_cpu_scale t node s] makes [node]'s CPU run [s] times slower
    than nominal ([s > 1.] models a straggler). *)

(** {2 Scheduling} *)

val schedule : t -> at:time -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] at virtual time [at] outside any node
    CPU (use for workload generators and observers, not protocol code). *)

val dispatch : t -> dst:int -> at:time -> (ctx -> unit) -> unit
(** [dispatch t ~dst ~at f] runs [f] on node [dst]'s CPU no earlier than
    [at]; if the CPU is busy at [at], [f] waits its turn.  Dropped if
    [dst] is crashed when it would start. *)

val set_timer : t -> node:int -> after:time -> (ctx -> unit) -> timer
(** [set_timer t ~node ~after f] arranges for [f] to run on [node]'s CPU
    [after] nanoseconds from now unless cancelled. *)

val cancel_timer : timer -> unit
(** Cancelled timers are skipped when they come due; when cancelled
    entries outnumber live ones the queue is compacted eagerly, so a
    cancel storm cannot grow {!pending_events} (see the engine's
    [maybe_purge]). *)

(** {2 Handler context} *)

val self : ctx -> int
val ctx_now : ctx -> time
(** [ctx_now c] is the handler's local clock: the event's start time
    plus all CPU time charged so far. Sends from a handler depart at
    the local clock. *)

val charge : ctx -> time -> unit
(** [charge c dt] accounts [dt] nanoseconds of CPU work (scaled by the
    node's CPU scale). *)

val engine : ctx -> t

(** {2 Running} *)

val run_until : t -> time -> unit
(** [run_until t deadline] processes events with firing time [<= deadline],
    then sets the clock to [deadline]. *)

val run_all : ?max_events:int -> t -> unit
(** [run_all t] processes events until the queue drains (or [max_events]
    is hit). *)

val events_executed : t -> int

val pending_events : t -> int
(** Live (non-cancelled) events still queued. *)

(** {2 Profiling}

    Cheap counters maintained on the event hot path, surfaced through
    the harness as per-phase event counts and events/sec. *)

type profile = {
  p_executed : int;  (** events popped and run *)
  p_thunks : int;  (** bare {!schedule} thunks (workload/observer code) *)
  p_arrivals : int;  (** message deliveries via {!dispatch} *)
  p_timers_fired : int;  (** timers that came due and ran *)
  p_timers_skipped : int;  (** cancelled timers skipped at pop *)
  p_timers_purged : int;  (** cancelled timers removed by compaction *)
  p_max_pending : int;  (** high-water mark of the event queue *)
}

val profile : t -> profile
