type t = {
  topology : Topology.t;
  bytes_per_ns : float;
  mutable drop_prob : float;
  per_msg_overhead_bytes : int;
  recv_overhead : Engine.time;
  mutable partition : int array option;
  down_links : (int * int, unit) Hashtbl.t;
  extra_delay : (int * int, Engine.time) Hashtbl.t;
  nic_free_at : (int, Engine.time) Hashtbl.t;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

let create ?(bandwidth_gbps = 10.0) ?(drop_prob = 0.0)
    ?(per_msg_overhead_bytes = 80) ?(recv_overhead = Engine.us 30) ~topology () =
  {
    topology;
    bytes_per_ns = bandwidth_gbps *. 1e9 /. 8.0 /. 1e9;
    drop_prob;
    per_msg_overhead_bytes;
    recv_overhead;
    partition = None;
    down_links = Hashtbl.create 16;
    extra_delay = Hashtbl.create 16;
    nic_free_at = Hashtbl.create 64;
    messages_sent = 0;
    bytes_sent = 0;
    messages_dropped = 0;
  }

let topology t = t.topology

let blocked t ~src ~dst =
  Hashtbl.mem t.down_links (src, dst)
  ||
  match t.partition with
  | None -> false
  | Some groups -> groups.(src) <> groups.(dst)

let send t eng ~src ~dst ~size ~at f =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  let dropped =
    blocked t ~src ~dst
    || (t.drop_prob > 0.0 && src <> dst && Rng.bool (Engine.rng eng) t.drop_prob)
  in
  if dropped then t.messages_dropped <- t.messages_dropped + 1
  else begin
    let wire_bytes = size + t.per_msg_overhead_bytes in
    let serialize = int_of_float (float_of_int wire_bytes /. t.bytes_per_ns) in
    (* Sender NIC is a FIFO: departures are serialized by bandwidth. *)
    let nic_free = try Hashtbl.find t.nic_free_at src with Not_found -> 0 in
    let start = if at > nic_free then at else nic_free in
    let departure = start + serialize in
    Hashtbl.replace t.nic_free_at src departure;
    let latency =
      if src = dst then Engine.us 5
      else Topology.sample_latency t.topology (Engine.rng eng) ~src ~dst
    in
    let extra = try Hashtbl.find t.extra_delay (src, dst) with Not_found -> 0 in
    let arrival = departure + latency + extra in
    let recv_overhead = t.recv_overhead in
    Engine.dispatch eng ~dst ~at:arrival (fun c ->
        Engine.charge c recv_overhead;
        f c)
  end

let set_partition t ~groups = t.partition <- groups

let set_link t ~src ~dst ~up =
  if up then Hashtbl.remove t.down_links (src, dst)
  else Hashtbl.replace t.down_links (src, dst) ()

let set_extra_delay t ~src ~dst d =
  if d = 0 then Hashtbl.remove t.extra_delay (src, dst)
  else Hashtbl.replace t.extra_delay (src, dst) d

let set_drop_prob t p = t.drop_prob <- p

let isolate_node t ~node ~num_nodes =
  for other = 0 to num_nodes - 1 do
    if other <> node then begin
      set_link t ~src:node ~dst:other ~up:false;
      set_link t ~src:other ~dst:node ~up:false
    end
  done

let reconnect_node t ~node ~num_nodes =
  for other = 0 to num_nodes - 1 do
    if other <> node then begin
      set_link t ~src:node ~dst:other ~up:true;
      set_link t ~src:other ~dst:node ~up:true
    end
  done

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.messages_dropped

let reset_counters t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  t.messages_dropped <- 0
