(* Link and NIC state is flat int-indexed arrays, not hashtables: the
   per-send path at n ≈ 200 does three lookups per message, and at
   ~100k+ sends per run the hashing and bucket chasing showed up in
   profiles.  The n×n matrices are row-major ([src * n + dst]) and tiny
   even at paper scale (201² bools + ints ≈ 360 KB). *)
type t = {
  topology : Topology.t;
  num_nodes : int;
  bytes_per_ns : float;
  mutable drop_prob : float;
  per_msg_overhead_bytes : int;
  recv_overhead : Engine.time;
  mutable partition : int array option;
  down : bool array; (* down.(src * n + dst): directed link is cut *)
  extra : Engine.time array; (* extra.(src * n + dst): adversarial delay *)
  (* Gray failure: flapping links.  A directed link with a non-zero
     flap period passes traffic only during the first [flap_up] ns of
     each period (phase anchored at virtual time 0), so connectivity is
     a pure function of departure time — deterministic and replayable,
     unlike drop_prob which burns RNG draws. *)
  flap_period : Engine.time array; (* 0 = link does not flap *)
  flap_up : Engine.time array; (* up-window length within each period *)
  nic_free_at : Engine.time array; (* per-node sender-NIC FIFO horizon *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

let create ?(bandwidth_gbps = 10.0) ?(drop_prob = 0.0)
    ?(per_msg_overhead_bytes = 80) ?(recv_overhead = Engine.us 30) ~topology () =
  let n = Topology.num_nodes topology in
  {
    topology;
    num_nodes = n;
    bytes_per_ns = bandwidth_gbps *. 1e9 /. 8.0 /. 1e9;
    drop_prob;
    per_msg_overhead_bytes;
    recv_overhead;
    partition = None;
    down = Array.make (n * n) false;
    extra = Array.make (n * n) 0;
    flap_period = Array.make (n * n) 0;
    flap_up = Array.make (n * n) 0;
    nic_free_at = Array.make n 0;
    messages_sent = 0;
    bytes_sent = 0;
    messages_dropped = 0;
  }

let topology t = t.topology

let flapped_off t ~src ~dst ~at =
  let p = t.flap_period.((src * t.num_nodes) + dst) in
  p > 0 && at mod p >= t.flap_up.((src * t.num_nodes) + dst)

let blocked t ~src ~dst ~at =
  t.down.((src * t.num_nodes) + dst)
  || flapped_off t ~src ~dst ~at
  ||
  match t.partition with
  | None -> false
  | Some groups -> groups.(src) <> groups.(dst)

let send t eng ~src ~dst ~size ~at f =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  let dropped =
    blocked t ~src ~dst ~at
    || (t.drop_prob > 0.0 && src <> dst && Rng.bool (Engine.rng eng) t.drop_prob)
  in
  if dropped then t.messages_dropped <- t.messages_dropped + 1
  else begin
    let wire_bytes = size + t.per_msg_overhead_bytes in
    let serialize = int_of_float (float_of_int wire_bytes /. t.bytes_per_ns) in
    (* Sender NIC is a FIFO: departures are serialized by bandwidth. *)
    let nic_free = t.nic_free_at.(src) in
    let start = if at > nic_free then at else nic_free in
    let departure = start + serialize in
    t.nic_free_at.(src) <- departure;
    let latency =
      if src = dst then Engine.us 5
      else Topology.sample_latency t.topology (Engine.rng eng) ~src ~dst
    in
    let extra = t.extra.((src * t.num_nodes) + dst) in
    let arrival = departure + latency + extra in
    let recv_overhead = t.recv_overhead in
    Engine.dispatch eng ~dst ~at:arrival (fun c ->
        Engine.charge c recv_overhead;
        f c)
  end

let set_partition t ~groups = t.partition <- groups
let set_link t ~src ~dst ~up = t.down.((src * t.num_nodes) + dst) <- not up
let set_extra_delay t ~src ~dst d = t.extra.((src * t.num_nodes) + dst) <- d

let set_flap t ~src ~dst ~period ~up =
  let i = (src * t.num_nodes) + dst in
  if period <= 0 || up >= period then begin
    t.flap_period.(i) <- 0;
    t.flap_up.(i) <- 0
  end
  else begin
    t.flap_period.(i) <- period;
    t.flap_up.(i) <- max 0 up
  end

let clear_flap_node t ~node ~num_nodes =
  for other = 0 to num_nodes - 1 do
    set_flap t ~src:node ~dst:other ~period:0 ~up:0;
    set_flap t ~src:other ~dst:node ~period:0 ~up:0
  done

let set_drop_prob t p = t.drop_prob <- p

let isolate_node t ~node ~num_nodes =
  for other = 0 to num_nodes - 1 do
    if other <> node then begin
      set_link t ~src:node ~dst:other ~up:false;
      set_link t ~src:other ~dst:node ~up:false
    end
  done

let reconnect_node t ~node ~num_nodes =
  for other = 0 to num_nodes - 1 do
    if other <> node then begin
      set_link t ~src:node ~dst:other ~up:true;
      set_link t ~src:other ~dst:node ~up:true
    end
  done

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.messages_dropped

let reset_counters t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  t.messages_dropped <- 0
