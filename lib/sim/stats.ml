module Latency = struct
  type t = { mutable samples : int array; mutable len : int; mutable sorted : bool }

  let create () = { samples = [||]; len = 0; sorted = false }

  let add t x =
    let cap = Array.length t.samples in
    if t.len = cap then begin
      let ncap = if cap = 0 then 256 else cap * 2 in
      let ns = Array.make ncap 0 in
      Array.blit t.samples 0 ns 0 t.len;
      t.samples <- ns
    end;
    t.samples.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.len in
      Array.sort compare live;
      Array.blit live 0 t.samples 0 t.len;
      t.sorted <- true
    end

  let mean_ms t =
    if t.len = 0 then nan
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.len - 1 do
        sum := !sum +. float_of_int t.samples.(i)
      done;
      !sum /. float_of_int t.len /. 1e6
    end

  let percentile_ms t p =
    if t.len = 0 then nan
    else begin
      ensure_sorted t;
      let idx = int_of_float (p *. float_of_int (t.len - 1)) in
      let idx = if idx < 0 then 0 else if idx >= t.len then t.len - 1 else idx in
      float_of_int t.samples.(idx) /. 1e6
    end

  let median_ms t = percentile_ms t 0.5

  let max_ms t =
    if t.len = 0 then nan
    else begin
      ensure_sorted t;
      float_of_int t.samples.(t.len - 1) /. 1e6
    end

  let clear t =
    t.len <- 0;
    t.sorted <- false
end

module Throughput = struct
  type t = {
    mutable times : int array;
    mutable counts : int array;
    mutable len : int;
    mutable total : int;
  }

  let create () = { times = [||]; counts = [||]; len = 0; total = 0 }

  let add t ~at k =
    let cap = Array.length t.times in
    if t.len = cap then begin
      let ncap = if cap = 0 then 256 else cap * 2 in
      let nt = Array.make ncap 0 and nc = Array.make ncap 0 in
      Array.blit t.times 0 nt 0 t.len;
      Array.blit t.counts 0 nc 0 t.len;
      t.times <- nt;
      t.counts <- nc
    end;
    t.times.(t.len) <- at;
    t.counts.(t.len) <- k;
    t.len <- t.len + 1;
    t.total <- t.total + k

  let total t = t.total

  (* Samples arrive in virtual-time order, so the last one recorded is
     the latest. *)
  let last_at t = if t.len = 0 then None else Some t.times.(t.len - 1)

  let rate t ~from_ ~until =
    if until <= from_ then nan
    else begin
      let ops = ref 0 in
      for i = 0 to t.len - 1 do
        if t.times.(i) >= from_ && t.times.(i) < until then ops := !ops + t.counts.(i)
      done;
      float_of_int !ops /. Engine.to_sec (until - from_)
    end

  let clear t =
    t.len <- 0;
    t.total <- 0
end
