(* R8, the runtime twin of the determinism lint rules: run a scenario
   twice from the same seed and require bit-identical trace streams.
   The digest is FNV-1a 64 over the rendered records — cheap, has no
   crypto dependency (Sha256 lives above this library), and any
   collision would still be caught by the event-by-event comparison. *)

type digest = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let feed d s =
  let d = ref d in
  String.iter
    (fun ch ->
      d := Int64.mul (Int64.logxor !d (Int64.of_int (Char.code ch))) fnv_prime)
    s;
  !d

let pp_digest = Printf.sprintf "%016Lx"

let record_line (r : Trace.record) =
  Printf.sprintf "%d|%d|%s|%s" r.Trace.time r.Trace.node r.Trace.kind
    r.Trace.detail

let digest_records records =
  List.fold_left (fun d r -> feed (feed d (record_line r)) "\n") fnv_offset
    records

let node_digests records =
  let nodes =
    List.sort_uniq Int.compare
      (List.map (fun (r : Trace.record) -> r.Trace.node) records)
  in
  List.map
    (fun node ->
      ( node,
        digest_records
          (List.filter (fun (r : Trace.record) -> r.Trace.node = node) records)
      ))
    nodes

type summary = {
  events : int;
  digest : digest;  (** over the whole interleaved stream *)
  nodes : (int * digest) list;  (** per-node digests, ascending node id *)
}

type divergence = {
  index : int;
  first : Trace.record option;
  second : Trace.record option;
}

type outcome = Identical of summary | Diverged of divergence

let compare_runs a b =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: xs', y :: ys' ->
        if String.equal (record_line x) (record_line y) then go (i + 1) xs' ys'
        else Some { index = i; first = Some x; second = Some y }
    | x :: _, [] -> Some { index = i; first = Some x; second = None }
    | [], y :: _ -> Some { index = i; first = None; second = Some y }
  in
  match go 0 a b with
  | Some d -> Diverged d
  | None ->
      Identical
        { events = List.length a; digest = digest_records a; nodes = node_digests a }

(* Sequence the two runs explicitly: argument evaluation order would
   otherwise swap which invocation is reported as "run 1". *)
let run_twice ~run =
  let first = run () in
  let second = run () in
  compare_runs first second

let pp_record_opt = function
  | Some r -> record_line r
  | None -> "<stream ended>"

let pp_outcome = function
  | Identical s ->
      Printf.sprintf "identical: %d events, digest %s (%d node streams)"
        s.events (pp_digest s.digest) (List.length s.nodes)
  | Diverged d ->
      Printf.sprintf
        "DIVERGED at event %d:\n  run 1: %s\n  run 2: %s" d.index
        (pp_record_opt d.first) (pp_record_opt d.second)
