(** Geographic placement of nodes and inter-region latency.

    The paper evaluates three settings: a single data-center LAN, a
    continent-scale WAN (5 regions, 2 availability zones each), and a
    world-scale WAN (15 regions across all continents).  A topology maps
    every node to a region and gives a one-way base latency between any
    two regions; the network layer adds jitter on top. *)

type t

(** [make ~region_of ~one_way_ms ~jitter] builds a custom topology.
    [region_of.(node)] is the node's region; [one_way_ms.(a).(b)] the
    base one-way latency in milliseconds between regions [a] and [b];
    [jitter] the relative standard deviation of the lognormal-ish jitter
    applied per message (e.g. [0.1]). *)
val make : region_of:int array -> one_way_ms:float array array -> jitter:float -> t

(** [lan ~num_nodes] : all nodes in one region, 0.15 ms one-way. *)
val lan : num_nodes:int -> t

(** [continent ~num_nodes] : 10 zones in 5 regions of one continent
    (intra-zone 0.15 ms, cross-zone 0.6 ms, cross-region 8–35 ms one-way),
    nodes assigned round-robin — mirrors the paper's 5-region/2-AZ setup. *)
val continent : num_nodes:int -> t

(** [world ~num_nodes] : 15 regions spread over all continents with
    one-way latencies from 0.15 ms (same region) up to ~150 ms. *)
val world : num_nodes:int -> t

val num_nodes : t -> int
(** Number of nodes the topology was built for. *)

val num_regions : t -> int
val region_of : t -> int -> int
val jitter : t -> float

(** [base_latency t ~src ~dst] is the base one-way latency in
    nanoseconds between two {i nodes}. *)
val base_latency : t -> src:int -> dst:int -> int

(** [sample_latency t rng ~src ~dst] adds multiplicative jitter. *)
val sample_latency : t -> Rng.t -> src:int -> dst:int -> int
