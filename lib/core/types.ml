open Sbft_crypto
open Sbft_wire

type request = {
  client : int;
  timestamp : int;
  op : string;
  signature : Pki.signature;
}

let request_bytes r =
  let w = Codec.Writer.create () in
  Codec.Writer.u64 w r.client;
  Codec.Writer.u64 w r.timestamp;
  Codec.Writer.str w r.op;
  Codec.Writer.contents w

(* Request values are shared physically between all simulated nodes, so
   digests (and signature checks, see {!Keys}) are memoized by physical
   identity: the host hashes each request once instead of once per
   replica.  Weak keys let completed requests be collected. *)
module Req_memo = Ephemeron.K1.Make (struct
  type t = request

  let equal = ( == )
  let hash r = (r.client * 1_000_003) lxor r.timestamp
end)

let digest_memo : string Req_memo.t = Req_memo.create 4096

let request_digest r =
  match Req_memo.find_opt digest_memo r with
  | Some d -> d
  | None ->
      let d = Sha256.digest (request_bytes r) in
      Req_memo.replace digest_memo r d;
      d

type slow_cert =
  | Slow_committed of { tau : Field.t; tau_tau : Field.t; view : int; reqs : request list }
  | Slow_prepared of { tau : Field.t; view : int; reqs : request list }
  | No_commit

type fast_cert =
  | Fast_committed of { sigma : Field.t; view : int; reqs : request list }
  | Fast_preprepared of { share : Threshold.share; view : int; reqs : request list }
  | No_preprepare

type vc_slot = { slot_seq : int; slow : slow_cert; fast : fast_cert }

(* Commit certificate accompanying a state-transferred block: the
   receiver re-verifies it before adopting, so uncertified blocks from a
   Byzantine peer can never be executed. *)
type block_cert =
  | Cert_fast of Field.t  (** σ(h) *)
  | Cert_slow of Field.t * Field.t  (** τ(h), τ(τ(h)) *)

type view_change = {
  vc_replica : int;
  vc_view : int;
  vc_ls : int;
  vc_checkpoint : (Field.t * string) option;
  vc_slots : vc_slot list;
}

type msg =
  | Request of request
  | Pre_prepare of { seq : int; view : int; reqs : request list }
  | Sign_share of {
      seq : int;
      view : int;
      sigma_share : Threshold.share;
      tau_share : Threshold.share;
      replica : int;
    }
  | Full_commit_proof of { seq : int; view : int; sigma : Field.t }
  | Prepare of { seq : int; view : int; tau : Field.t }
  | Commit of { seq : int; view : int; share : Threshold.share }
  | Full_commit_proof_slow of { seq : int; view : int; tau : Field.t; tau_tau : Field.t }
  | Sign_state of { seq : int; digest : string; share : Threshold.share }
  | Full_execute_proof of { seq : int; digest : string; pi : Field.t }
  | Execute_ack of {
      view : int;  (** sender's view, lets clients track the primary *)
      seq : int;
      index : int;
      client : int;
      timestamp : int;
      value : string;
      state_digest : string;
      pi : Field.t;
      proof : string;
    }
  | Reply of {
      view : int;
      replica : int;
      client : int;
      timestamp : int;
      seq : int;
      value : string;
      signature : Pki.signature;
    }
  | View_change of view_change
  | New_view of { view : int; proofs : view_change list }
  | Get_block of { seq : int; replica : int }
  | Block_resp of { seq : int; view : int; reqs : request list }
  | Query of { client : int; qid : int; query : string }
      (** Read-only query (§IV): answered by one replica against its
          latest π-certified state, no consensus round. *)
  | Query_resp of {
      client : int;
      qid : int;
      seq : int;  (** height of the certified state *)
      digest : string;
      pi : Field.t;
      value : string;
      proof : string;
    }
  | Get_state of { upto : int; replica : int }
  | State_resp of {
      snapshot : string;
      snap_seq : int;
      pi : Field.t;
      digest : string;
      blocks : (int * int * request list * block_cert) list;
      table : Sbft_store.Block_store.client_entry list;
          (** Sender's client table as of [snap_seq]: lets the receiver
              resume exactly-once request deduplication (without it, a
              state-transferred replica re-executes retried requests its
              snapshot already covers). *)
    }

module Block_memo = Ephemeron.K1.Make (struct
  type t = request list

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let block_memo : (int * int * string) list ref Block_memo.t = Block_memo.create 4096

let compute_block_hash ~seq ~view ~reqs =
  let w = Codec.Writer.create () in
  Codec.Writer.raw w "sbft-block";
  Codec.Writer.u64 w seq;
  Codec.Writer.u64 w view;
  Codec.Writer.list w (fun r -> Codec.Writer.raw w (request_digest r)) reqs;
  Sha256.digest (Codec.Writer.contents w)

let block_hash ~seq ~view ~reqs =
  match reqs with
  | [] -> compute_block_hash ~seq ~view ~reqs
  | _ -> (
      let cell =
        match Block_memo.find_opt block_memo reqs with
        | Some c -> c
        | None ->
            let c = ref [] in
            Block_memo.replace block_memo reqs c;
            c
      in
      match
        List.find_opt (fun (s, v, _) -> Int.equal s seq && Int.equal v view) !cell
      with
      | Some (_, _, h) -> h
      | None ->
          let h = compute_block_hash ~seq ~view ~reqs in
          cell := (seq, view, h) :: !cell;
          h)

let tau2_message tau = "sbft-tau2" ^ Threshold.signature_bytes tau

let pi_message ~seq ~digest =
  let w = Codec.Writer.create () in
  Codec.Writer.raw w "sbft-pi";
  Codec.Writer.u64 w seq;
  Codec.Writer.raw w digest;
  Codec.Writer.contents w

let request_size r = 16 + String.length r.op + Pki.signature_size + 4

let requests_bytes reqs = List.fold_left (fun acc r -> acc + request_size r) 0 reqs

let header = 24 (* type tag, seq, view, sender *)
let sig_size = Threshold.signature_size
let share_size = Threshold.share_size

let cert_reqs_size reqs = requests_bytes reqs

let slow_cert_size = function
  | Slow_committed { reqs; _ } -> sig_size + 8 + cert_reqs_size reqs
  | Slow_prepared { reqs; _ } -> sig_size + 8 + cert_reqs_size reqs
  | No_commit -> 1

let fast_cert_size = function
  | Fast_committed { reqs; _ } -> sig_size + 8 + cert_reqs_size reqs
  | Fast_preprepared { reqs; _ } -> share_size + 8 + cert_reqs_size reqs
  | No_preprepare -> 1

let vc_size vc =
  List.fold_left
    (fun acc s -> acc + 8 + slow_cert_size s.slow + fast_cert_size s.fast)
    (header + 16 + sig_size + 32)
    vc.vc_slots

let size = function
  | Request r -> request_size r
  | Pre_prepare { reqs; _ } -> header + requests_bytes reqs
  | Sign_share _ -> header + (2 * share_size)
  | Full_commit_proof _ -> header + sig_size
  | Prepare _ -> header + sig_size
  | Commit _ -> header + share_size
  | Full_commit_proof_slow _ -> header + (2 * sig_size)
  | Sign_state _ -> header + share_size + 32
  | Full_execute_proof _ -> header + sig_size + 32
  | Execute_ack { value; proof; _ } ->
      header + sig_size + 32 + String.length value + String.length proof
  | Reply { value; _ } -> header + String.length value + Pki.signature_size
  | View_change vc -> vc_size vc
  | New_view { proofs; _ } ->
      List.fold_left (fun acc vc -> acc + vc_size vc) header proofs
  | Get_block _ -> header
  | Block_resp { reqs; _ } -> header + requests_bytes reqs
  | Query { query; _ } -> header + String.length query + Pki.signature_size
  | Query_resp { value; proof; _ } ->
      header + sig_size + 32 + String.length value + String.length proof
  | Get_state _ -> header
  | State_resp { snapshot; blocks; table; _ } ->
      List.fold_left
        (fun acc (_, _, reqs, cert) ->
          let cert_size =
            match cert with
            | Cert_fast _ -> sig_size
            | Cert_slow _ -> 2 * sig_size
          in
          acc + 16 + cert_size + requests_bytes reqs)
        (header + String.length snapshot + sig_size + 32)
        blocks
      + List.fold_left
          (fun acc (ce : Sbft_store.Block_store.client_entry) ->
            acc + 32 + String.length ce.ce_value)
          0 table

let kind = function
  | Request _ -> "request"
  | Pre_prepare _ -> "pre-prepare"
  | Sign_share _ -> "sign-share"
  | Full_commit_proof _ -> "full-commit-proof"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Full_commit_proof_slow _ -> "full-commit-proof-slow"
  | Sign_state _ -> "sign-state"
  | Full_execute_proof _ -> "full-execute-proof"
  | Execute_ack _ -> "execute-ack"
  | Reply _ -> "reply"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"
  | Get_block _ -> "get-block"
  | Block_resp _ -> "block-resp"
  | Query _ -> "query"
  | Query_resp _ -> "query-resp"
  | Get_state _ -> "get-state"
  | State_resp _ -> "state-resp"
