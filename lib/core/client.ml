open Sbft_sim
open Sbft_crypto

type pending = {
  timestamp : int;
  op : string;
  request : Types.request;
  sent_at : Engine.time;
  mutable replies : (int * string) list; (* replica -> value, f+1 path *)
  mutable done_ : bool;
}

type query_pending = {
  q_key : string;
  mutable q_done : bool;
  q_callback : (string * int) option -> unit;
}

type t = {
  env : Replica.env;
  id : int;
  keypair : Pki.keypair;
  on_complete : timestamp:int -> latency:Engine.time -> value:string -> unit;
  mutable timestamp : int;
  mutable current : pending option;
  mutable believed_primary : int;
  mutable completed : int;
  mutable retries : int;
  mutable queue : (int -> string) option; (* closed-loop generator *)
  mutable remaining : int;
  mutable issued : int;
  mutable next_qid : int;
  queries : (int, query_pending) Hashtbl.t;
}

let create ~env ~id ~keypair ~on_complete =
  {
    env;
    id;
    keypair;
    on_complete;
    timestamp = 0;
    current = None;
    believed_primary = 0;
    completed = 0;
    retries = 0;
    queue = None;
    remaining = 0;
    issued = 0;
    next_qid = 0;
    queries = Hashtbl.create 8;
  }

let id t = t.id
let completed t = t.completed
let retries t = t.retries
let last_timestamp t = t.timestamp

let config t = t.env.Replica.keys.Keys.config
let num_replicas t = Config.n (config t)

let send t ctx ~dst msg = t.env.Replica.send ctx ~src:t.id ~dst msg

let rec arm_retry t (p : pending) =
  ignore
    (Engine.set_timer t.env.Replica.engine ~node:t.id
       ~after:(config t).Config.client_retry_timeout (fun ctx ->
         if not p.done_ then begin
           (* Resend to all replicas and ask for the f+1 path (§V-A). *)
           t.retries <- t.retries + 1;
           for r = 0 to num_replicas t - 1 do
             send t ctx ~dst:r (Types.Request p.request)
           done;
           arm_retry t p
         end))

let submit t ctx ~op =
  match t.current with
  | Some p when not p.done_ -> invalid_arg "Client.submit: operation already in flight"
  | _ ->
      t.timestamp <- t.timestamp + 1;
      let request =
        { Types.client = t.id; timestamp = t.timestamp; op; signature = "" }
      in
      Engine.charge ctx Cost_model.rsa_sign;
      let request =
        { request with Types.signature = Pki.sign t.keypair (Types.request_digest request) }
      in
      let p =
        {
          timestamp = t.timestamp;
          op;
          request;
          sent_at = Engine.ctx_now ctx;
          replies = [];
          done_ = false;
        }
      in
      t.current <- Some p;
      send t ctx ~dst:t.believed_primary (Types.Request request);
      arm_retry t p

let next_op t ctx =
  match t.queue with
  | Some make_op when t.remaining > 0 ->
      t.remaining <- t.remaining - 1;
      let op = make_op t.issued in
      t.issued <- t.issued + 1;
      submit t ctx ~op
  | _ -> ()

let complete t ctx (p : pending) value =
  if not p.done_ then begin
    p.done_ <- true;
    t.completed <- t.completed + 1;
    t.current <- None;
    t.on_complete ~timestamp:p.timestamp
      ~latency:(Engine.ctx_now ctx - p.sent_at)
      ~value;
    next_op t ctx
  end

let note_view t view = t.believed_primary <- view mod num_replicas t

let query t ctx ~key ~callback =
  t.next_qid <- t.next_qid + 1;
  let qid = t.next_qid in
  let pending = { q_key = key; q_done = false; q_callback = callback } in
  Hashtbl.replace t.queries qid pending;
  (* Read from a single replica, chosen round-robin; retry another on
     timeout, give up after one cycle. *)
  let n = num_replicas t in
  let rec attempt tries =
    if not pending.q_done then begin
      if tries >= n then begin
        pending.q_done <- true;
        Hashtbl.remove t.queries qid;
        callback None
      end
      else begin
        let replica = (qid + tries) mod n in
        send t ctx ~dst:replica (Types.Query { client = t.id; qid; query = key });
        ignore
          (Engine.set_timer t.env.Replica.engine ~node:t.id
             ~after:((config t).Config.client_retry_timeout / 4)
             (fun ctx -> if not pending.q_done then attempt_ctx ctx (tries + 1)))
      end
    end
  and attempt_ctx _ctx tries = attempt tries in
  attempt 0

let on_message t ctx ~src msg =
  match msg with
  | Types.Execute_ack { view; seq; index; timestamp; value; state_digest; pi; proof; _ } -> (
      note_view t view;
      match t.current with
      | Some p when Int.equal p.timestamp timestamp && not p.done_ ->
          Engine.charge ctx Cost_model.bls_verify;
          Engine.charge ctx (Cost_model.merkle_verify 10);
          if
            Sbft_crypto.Threshold.verify t.env.Replica.keys.Keys.pi
              ~msg:(Types.pi_message ~seq ~digest:state_digest)
              pi
            && Sbft_store.Auth_store.verify_op_proof ~digest:state_digest ~seq ~index
                 ~op:p.op ~value ~proof
          then complete t ctx p value
      | _ -> ())
  | Types.Reply { view; replica; timestamp; value; _ } -> (
      note_view t view;
      match t.current with
      | Some p when Int.equal p.timestamp timestamp && not p.done_ ->
          Engine.charge ctx Cost_model.rsa_verify;
          if not (List.mem_assoc replica p.replies) then begin
            p.replies <- (replica, value) :: p.replies;
            (* Track the responsive primary for future requests. *)
            ignore src;
            let matching =
              List.length (List.filter (fun (_, v) -> String.equal v value) p.replies)
            in
            if matching >= (config t).Config.f + 1 then complete t ctx p value
          end
      | _ -> ())
  | Types.Query_resp { qid; seq; digest; pi; value; proof; _ } -> (
      match Hashtbl.find_opt t.queries qid with
      | Some q when not q.q_done ->
          Engine.charge ctx Cost_model.bls_verify;
          Engine.charge ctx (Cost_model.merkle_verify 16);
          if
            Sbft_crypto.Threshold.verify t.env.Replica.keys.Keys.pi
              ~msg:(Types.pi_message ~seq ~digest)
              pi
            && Sbft_store.Auth_store.verify_query_proof ~digest ~seq ~key:q.q_key
                 ~value ~proof
          then begin
            q.q_done <- true;
            Hashtbl.remove t.queries qid;
            q.q_callback (Some (value, seq))
          end
      | _ -> ())
  | _ -> ()

let run_closed_loop t ~num_requests ~make_op ~start_at =
  t.queue <- Some make_op;
  t.remaining <- num_requests;
  Engine.dispatch t.env.Replica.engine ~dst:t.id ~at:start_at (fun ctx -> next_op t ctx)
