(** Protocol configuration: fault thresholds, window sizes, timers, and
    the feature switches that produce the paper's evaluation variants.

    SBFT runs [n = 3f + 2c + 1] replicas; the three threshold-signature
    schemes have thresholds [3f + c + 1] (σ, fast commit),
    [2f + c + 1] (τ, linear-PBFT commit), and [f + 1] (π, execution). *)

type mutation = Weak_sigma_quorum | Weak_tau_quorum | Weak_vc_quorum
      (** Test-only protocol weakenings.  [Weak_sigma_quorum] drops the
          σ fast-commit threshold to [2f + c] (below the [2f + c + 1]
          honest-intersection bound), so an equivocating primary can
          drive two conflicting σ certificates — proving the fuzzer's
          agreement oracle detects real safety violations.
          [Weak_tau_quorum] drops τ to [2f + c] (breaking τ-τ
          intersection), [Weak_vc_quorum] drops the view-change quorum
          to [2f + 2c] (breaking τ-vc intersection): both are caught at
          runtime by the {!Sanitizer}'s independent threshold
          derivation, and statically by the R12 quorum prover.
          Mutation-testing the checkers, never for deployment. *)

type t = {
  f : int;  (** tolerated Byzantine replicas *)
  c : int;  (** additional crashed/slow replicas the fast path tolerates *)
  win : int;  (** max outstanding decision blocks (paper: 256) *)
  max_batch : int;  (** operations per decision block cap *)
  batch_timeout : Sbft_sim.Engine.time;
      (** primary proposes a partial batch after this delay *)
  fast_path : bool;  (** ingredient 2: optimistic σ path *)
  execution_acks : bool;
      (** ingredient 3: E-collectors + single-message client acks; when
          off, every replica replies to the client directly (f+1) *)
  fast_path_timeout : Sbft_sim.Engine.time;
      (** upper bound on the C-collector's wait before falling back to
          the τ path; the replica adapts the actual wait from profiled
          fast-path completion times (§V-E) *)
  collector_stagger : Sbft_sim.Engine.time;
      (** extra delay before the k-th redundant collector activates *)
  view_change_timeout : Sbft_sim.Engine.time;
      (** base client-progress timer before a replica votes to change
          view (doubles per consecutive view change) *)
  client_retry_timeout : Sbft_sim.Engine.time;
  use_group_sig : bool;
      (** §VIII: n-of-n group signatures on the fast path while no
          failure has been observed, with automatic fallback *)
  optimistic_combine : bool;
      (** collectors combine threshold shares {e without} per-share
          verification and check the single combined signature, falling
          back to robust per-share identification only on failure
          ({!Sbft_crypto.Threshold.combine_verified}); off = the
          pessimistic verify-every-share baseline, kept as a benchmark
          reference point *)
  sanitize : bool;
      (** run the {!Sanitizer} protocol-invariant checks at replica
          state transitions (on by default; cheap assert-style checks) *)
  durable_wal : bool;
      (** replicas write protocol-critical transitions to a write-ahead
          log ({!Sbft_store.Wal}) with group-commit fsyncs, so a
          crash-amnesia restart recovers from the durable prefix; off =
          restarts lose everything (benchmark reference point and the
          fuzzer's proof that the fault class has teeth) *)
  conservative_rejoin : bool;
      (** after a crash-amnesia recovery the rebuilt replica probes the
          cluster before acting: a state-transfer probe fetches
          checkpoints/blocks it missed and a view-discovery probe (a
          stale view-change vote answered with stored new-view
          evidence) re-synchronizes its view — the software substitute
          for the trusted monotonic counters FastBFT-style protocols
          need against rollback attacks; off = "eager rejoin", the
          replica trusts whatever durable state it restarted from and
          participates immediately (the fuzzer's rollback-attack twins
          prove this switch is load-bearing) *)
  state_transfer_retry : Sbft_sim.Engine.time;
      (** base retry timer for an unanswered [Get_state] (doubles per
          attempt, capped; each retry rotates to the next peer) *)
  mutation : mutation option;
      (** [None] in every real configuration; see {!mutation}. *)
}

val n : t -> int
(** [3f + 2c + 1]. *)

val sigma_threshold : t -> int
val tau_threshold : t -> int
val pi_threshold : t -> int

val quorum_vc : t -> int
(** View-change quorum [2f + 2c + 1]. *)

val quorum_bft : t -> int
(** Classic PBFT majority quorum [2f + 1] (baseline protocol). *)

val active_window : t -> int
(** Fast-path participation window [win/4] (§V-F). *)

val checkpoint_interval : t -> int
(** [win/2]. *)

val default : f:int -> c:int -> t
(** Full SBFT with all four ingredients. *)

val linear_pbft : f:int -> t
(** Ingredient 1 only: collectors and threshold signatures, no fast
    path, direct f+1 client replies, c = 0. *)

val linear_pbft_fast : f:int -> t
(** Ingredients 1 + 2. *)

val sbft : f:int -> c:int -> t
(** Ingredients 1 + 2 + 3 (+ 4 when [c > 0]). *)

val validate : t -> (unit, string) result
