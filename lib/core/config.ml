open Sbft_sim

type mutation = Weak_sigma_quorum | Weak_tau_quorum | Weak_vc_quorum

type t = {
  f : int;
  c : int;
  win : int;
  max_batch : int;
  batch_timeout : Engine.time;
  fast_path : bool;
  execution_acks : bool;
  fast_path_timeout : Engine.time;
  collector_stagger : Engine.time;
  view_change_timeout : Engine.time;
  client_retry_timeout : Engine.time;
  use_group_sig : bool;
  optimistic_combine : bool;
  sanitize : bool;
  durable_wal : bool;
  conservative_rejoin : bool;
  state_transfer_retry : Engine.time;
  mutation : mutation option;
}

let n t = (3 * t.f) + (2 * t.c) + 1

let sigma_threshold t =
  match t.mutation with
  | Some Weak_sigma_quorum -> (2 * t.f) + t.c
  | _ -> (3 * t.f) + t.c + 1

let tau_threshold t =
  match t.mutation with
  | Some Weak_tau_quorum -> (2 * t.f) + t.c
  | _ -> (2 * t.f) + t.c + 1

let pi_threshold t = t.f + 1

let quorum_vc t =
  match t.mutation with
  | Some Weak_vc_quorum -> (2 * t.f) + (2 * t.c)
  | _ -> (2 * t.f) + (2 * t.c) + 1
let quorum_bft t = (2 * t.f) + 1
let active_window t = max 1 (t.win / 4)
let checkpoint_interval t = max 1 (t.win / 2)

let default ~f ~c =
  {
    f;
    c;
    win = 256;
    max_batch = 64;
    batch_timeout = Engine.ms 5;
    fast_path = true;
    execution_acks = true;
    fast_path_timeout = Engine.ms 150;
    collector_stagger = Engine.ms 50;
    view_change_timeout = Engine.sec 2;
    client_retry_timeout = Engine.sec 4;
    use_group_sig = false;
    optimistic_combine = true;
    sanitize = true;
    durable_wal = true;
    conservative_rejoin = true;
    state_transfer_retry = Engine.ms 300;
    mutation = None;
  }

let linear_pbft ~f = { (default ~f ~c:0) with fast_path = false; execution_acks = false }
let linear_pbft_fast ~f = { (default ~f ~c:0) with execution_acks = false }
let sbft ~f ~c = default ~f ~c

let validate t =
  if t.f < 0 then Error "f must be non-negative"
  else if t.c < 0 then Error "c must be non-negative"
  else if t.win < 4 then Error "win must be at least 4"
  else if t.max_batch < 1 then Error "max_batch must be positive"
  else if n t < 4 then Error "need at least 4 replicas"
  else Ok ()
