open Sbft_crypto

type decision =
  | Decide_fast of { sigma : Field.t; reqs : Types.request list; view : int }
  | Decide_slow of {
      tau : Field.t;
      tau_tau : Field.t;
      reqs : Types.request list;
      view : int;
    }
  | Adopt of Types.request list
  | Fill_null

let null_request : Types.request =
  { client = -1; timestamp = 0; op = ""; signature = "" }

(* ------------------------------------------------------------------ *)
(* Certificate validation *)

let valid_slow_cert keys ~seq (cert : Types.slow_cert) =
  match cert with
  | No_commit -> true
  | Slow_prepared { tau; view; reqs } ->
      let h = Types.block_hash ~seq ~view ~reqs in
      Threshold.verify keys.Keys.tau ~msg:h tau
  | Slow_committed { tau; tau_tau; view; reqs } ->
      let h = Types.block_hash ~seq ~view ~reqs in
      Threshold.verify keys.Keys.tau ~msg:h tau
      && Threshold.verify keys.Keys.tau ~msg:(Types.tau2_message tau) tau_tau

let valid_fast_cert keys ~seq ~sender (cert : Types.fast_cert) =
  match cert with
  | No_preprepare -> true
  | Fast_preprepared { share; view; reqs } ->
      let h = Types.block_hash ~seq ~view ~reqs in
      Int.equal share.Threshold.signer (sender + 1)
      (* A replica re-validating retransmitted view-change messages hits
         the per-(signer, msg, value) verdict cache instead of redoing
         the pairing check. *)
      && Threshold.share_verify_cached keys.Keys.sigma ~msg:h share
  | Fast_committed { sigma; view; reqs } ->
      let h = Types.block_hash ~seq ~view ~reqs in
      Threshold.verify keys.Keys.sigma ~msg:h sigma

let valid_checkpoint keys ~ls = function
  | None -> ls = 0
  | Some (pi, digest) ->
      Threshold.verify keys.Keys.pi ~msg:(Types.pi_message ~seq:ls ~digest) pi

let validate_message ~keys (vc : Types.view_change) =
  valid_checkpoint keys ~ls:vc.vc_ls vc.vc_checkpoint
  && List.for_all
       (fun (s : Types.vc_slot) ->
         s.slot_seq > vc.vc_ls
         && s.slot_seq <= vc.vc_ls + keys.Keys.config.Config.win
         && valid_slow_cert keys ~seq:s.slot_seq s.slow
         && valid_fast_cert keys ~seq:s.slot_seq ~sender:vc.vc_replica s.fast)
       vc.vc_slots

let select_stable ~keys msgs =
  List.fold_left
    (fun acc (vc : Types.view_change) ->
      if vc.vc_ls > acc && valid_checkpoint keys ~ls:vc.vc_ls vc.vc_checkpoint then
        vc.vc_ls
      else acc)
    0 msgs

(* ------------------------------------------------------------------ *)
(* Per-slot safe value *)

let reqs_key reqs =
  Sha256.hex (Sha256.digest_list (List.map Types.request_digest reqs))

(* Decision for one slot from the (already individually validated)
   certificates contributed by the quorum.  [entries] pairs each sender
   with its (slow, fast) certificates for this slot. *)
let compute_slot keys ~seq entries =
  let fcplus1 = keys.Keys.config.Config.f + keys.Keys.config.Config.c + 1 in
  (* 1. A full proof decides outright (prefer slow per the paper's
        tie-breaking: the view change prefers the slow-path proof). *)
  let decided =
    List.find_map
      (fun (_, (slow : Types.slow_cert), (fast : Types.fast_cert)) ->
        match (slow, fast) with
        | Slow_committed { tau; tau_tau; view; reqs }, _
          when valid_slow_cert keys ~seq slow ->
            Some (Decide_slow { tau; tau_tau; reqs; view })
        | _, Fast_committed { sigma; view; reqs }
          when valid_fast_cert keys ~seq ~sender:(-1) fast ->
            ignore view;
            Some (Decide_fast { sigma; reqs; view })
        | _ -> None)
      entries
  in
  match decided with
  | Some d -> d
  | None ->
      (* 2. v* : highest view with a valid prepare certificate. *)
      let v_star, req_star =
        List.fold_left
          (fun ((bv, _) as best) (_, slow, _) ->
            match (slow : Types.slow_cert) with
            | Slow_prepared { view; reqs; _ }
              when view > bv && valid_slow_cert keys ~seq slow ->
                (view, Some reqs)
            | _ -> best)
          (-1, None) entries
      in
      (* 3. v̂ : highest view for which some unique value is "fast" —
         has f+c+1 pre-prepare shares at views >= it. *)
      let by_req = Hashtbl.create 8 in
      List.iter
        (fun (sender, _, fast) ->
          match (fast : Types.fast_cert) with
          | Fast_preprepared { view; reqs; _ }
            when valid_fast_cert keys ~seq ~sender fast ->
              let key = reqs_key reqs in
              let views, _ =
                Option.value (Hashtbl.find_opt by_req key) ~default:([], reqs)
              in
              Hashtbl.replace by_req key (view :: views, reqs)
          | _ -> ())
        entries;
      (* Fold candidate values in digest order; the uniqueness verdict
         is order-independent but the surviving [reqs] witness for a
         tied view is whichever was folded last. *)
      let v_hat, req_hat, unique =
        List.fold_left
          (fun (bv, breqs, uniq) (_, (views, reqs)) ->
            let sorted = List.sort (fun a b -> Int.compare b a) views in
            (* The highest v such that f+c+1 shares have view >= v is
               the (f+c+1)-th largest view among this value's shares
               (when fewer than f+c+1 shares exist, no view qualifies). *)
            match List.nth_opt sorted (fcplus1 - 1) with
            | None -> (bv, breqs, uniq)
            | Some v ->
                if v > bv then (v, Some reqs, true)
                else if Int.equal v bv && bv >= 0 then (bv, breqs, false)
                else (bv, breqs, uniq))
          (-1, None, true)
          (Sbft_sim.Det.sorted_bindings ~compare:String.compare by_req)
      in
      let v_hat, req_hat = if unique then (v_hat, req_hat) else (-1, None) in
      (* [req_star]/[req_hat] are [Some _] whenever their view is > -1. *)
      match (req_star, req_hat) with
      | Some reqs, _ when v_star >= v_hat && v_star > -1 -> Adopt reqs
      | _, Some reqs when v_hat > v_star -> Adopt reqs
      | _ -> Fill_null

(* A Byzantine sender may appear several times in a relayed message set
   (the per-view receive table dedups, but [compute] must stay safe on
   raw lists: quorum intersection counts {e distinct} replicas).  Keep
   the first message per sender. *)
let dedup_senders msgs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (vc : Types.view_change) ->
      if Hashtbl.mem seen vc.vc_replica then false
      else begin
        Hashtbl.replace seen vc.vc_replica ();
        true
      end)
    msgs

let compute ~keys ~new_view msgs =
  ignore new_view;
  let msgs = dedup_senders msgs in
  let ls = select_stable ~keys msgs in
  (* Gather per-slot entries; senders without info for a slot implicitly
     contribute (No_commit, No_preprepare), which never changes the
     outcome, so they are simply omitted. *)
  let per_slot : (int, (int * Types.slow_cert * Types.fast_cert) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let max_seq = ref ls in
  List.iter
    (fun (vc : Types.view_change) ->
      List.iter
        (fun (s : Types.vc_slot) ->
          if s.slot_seq > ls then begin
            let cell =
              match Hashtbl.find_opt per_slot s.slot_seq with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.replace per_slot s.slot_seq c;
                  c
            in
            cell := (vc.vc_replica, s.slow, s.fast) :: !cell;
            if s.slot_seq > !max_seq then max_seq := s.slot_seq
          end)
        vc.vc_slots)
    msgs;
  let decisions =
    List.init (!max_seq - ls) (fun i ->
        let seq = ls + 1 + i in
        let entries =
          match Hashtbl.find_opt per_slot seq with Some c -> !c | None -> []
        in
        (seq, compute_slot keys ~seq entries))
  in
  (ls, decisions)

let decision_reqs = function
  | Decide_fast { reqs; _ } | Decide_slow { reqs; _ } | Adopt reqs -> reqs
  | Fill_null -> [ null_request ]
