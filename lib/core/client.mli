(** SBFT client (§V-A).

    A client sends each operation to the primary and, in the common
    case, accepts it on a {e single} execute-ack message: it checks the
    π(d) threshold signature on the state digest and the Merkle proof
    that its operation was executed at the claimed position with the
    claimed result.  If its retry timer expires it resends to all
    replicas and falls back to collecting [f + 1] matching direct
    replies (the PBFT-style path, also used for retransmissions of
    already-executed operations). *)

type t

val create :
  env:Replica.env ->
  id:int ->
  keypair:Sbft_crypto.Pki.keypair ->
  on_complete:(timestamp:int -> latency:Sbft_sim.Engine.time -> value:string -> unit) ->
  t
(** [id] is the client's node id (replica ids precede client ids). *)

val id : t -> int

val submit : t -> Sbft_sim.Engine.ctx -> op:string -> unit
(** Sign and send the next operation.  One operation may be in flight
    per client (the paper's clients are closed-loop). *)

val on_message : t -> Sbft_sim.Engine.ctx -> src:int -> Types.msg -> unit

val query :
  t -> Sbft_sim.Engine.ctx -> key:string ->
  callback:((string * int) option -> unit) -> unit
(** Read-only query (§IV): fetches [key]'s value from a {e single}
    replica and verifies the Merkle proof against the π-threshold-signed
    state digest; retries other replicas on timeout, calls
    [callback None] after a full unsuccessful cycle.  The result pairs
    the value with the certified height it was read at. *)

val run_closed_loop :
  t -> num_requests:int -> make_op:(int -> string) -> start_at:Sbft_sim.Engine.time -> unit
(** Schedule a closed loop of [num_requests] operations: request [i]
    uses [make_op i] and is submitted as soon as request [i-1]
    completes. *)

val completed : t -> int
val retries : t -> int

val last_timestamp : t -> int
(** Timestamp of the most recently submitted request (0 before any).
    Timestamps are assigned densely from 1, so this is also the number
    of distinct requests the client has issued — the validity and
    at-most-once oracles bound executed requests against it. *)
