(** The SBFT replica state machine (§V).

    One value of type {!t} is the full protocol state of one replica:
    fast path (pre-prepare → sign-share → full-commit-proof), the
    Linear-PBFT fallback (prepare → commit → full-commit-proof-slow),
    in-order execution with the sign-state / full-execute-proof /
    execute-ack pipeline, checkpointing and garbage collection, state
    transfer, and the dual-mode view change.

    Replicas are driven entirely by {!on_message} and timers they set
    themselves; wiring to the simulated network is provided by the
    {!Env} record (see {!Cluster} for standard construction). *)

type env = {
  engine : Sbft_sim.Engine.t;
  trace : Sbft_sim.Trace.t;
  keys : Keys.t;
  send : Sbft_sim.Engine.ctx -> src:int -> dst:int -> Types.msg -> unit;
      (** Transport: delivers [msg] to node [dst] (replica or client)
          with size/latency accounting. *)
  exec_cost : Types.request list -> Sbft_sim.Engine.time;
      (** Virtual CPU cost of executing a block of this service's
          operations (KV ≈ µs/op, EVM ≈ ms/tx). *)
}

type durable = { wal : Sbft_store.Wal.t; blocks : Sbft_store.Block_store.t }
(** The replica state that survives a crash-amnesia restart: the
    write-ahead log and the persisted decision-block ledger (which also
    holds the latest stable checkpoint snapshot).  Owned by the caller
    ({!Cluster}) so it can be handed to a rebuilt replica. *)

type t

val create :
  env:env ->
  my:Keys.replica_keys ->
  store:Sbft_store.Auth_store.t ->
  durable:durable ->
  t

val recover : t -> Sbft_sim.Engine.ctx -> unit
(** Crash-amnesia recovery on a freshly created replica whose [durable]
    state survived: reload the latest checkpoint, replay the WAL and the
    ledger (re-entering the highest logged view, restoring open-slot
    promises), then rejoin conservatively via state transfer and resume
    the liveness ticker.  Call instead of {!start}. *)

val retire : t -> unit
(** Permanently deactivate this replica object's timers.  Called on the
    old instance when an amnesia restart replaces it, so stale closures
    (liveness ticker, batch loop, retry timers) can no longer act. *)

val id : t -> int
val view : t -> int
val is_primary : t -> bool
val last_executed : t -> int
val last_stable : t -> int
val state_digest : t -> string

val store : t -> Sbft_store.Auth_store.t
(** The replica's service state (inspection/examples). *)

val on_message : t -> Sbft_sim.Engine.ctx -> src:int -> Types.msg -> unit

val start : t -> Sbft_sim.Engine.ctx -> unit
(** Arm initial timers (primary batch loop). Call once at time 0. *)

(** {2 Introspection for tests and benchmarks} *)

val committed_block : t -> int -> Types.request list option
(** Requests committed at a sequence number, if any. *)

val sanitizer : t -> Sanitizer.t
(** The replica's protocol-invariant sanitizer (see {!Config.sanitize}). *)

val blocks_committed : t -> int
val blocks_executed : t -> int
val view_changes_completed : t -> int
val fast_commits : t -> int
val slow_commits : t -> int

val certified_checkpoints : t -> (int * string) list
(** π-certified (sequence, state digest) pairs this replica currently
    holds, sorted by sequence — the fuzzer's checkpoint-consistency
    oracle compares them across non-faulty replicas. *)

val client_last_timestamp : t -> client:int -> int option
(** Highest client-request timestamp this replica has executed for
    [client] (its client-table row), if any. *)

val wal : t -> Sbft_store.Wal.t
(** The replica's write-ahead log (tests inspect append/sync counts). *)

val set_fsync_scale : t -> float -> unit
(** Gray-failure knob: multiply the WAL group-commit flush charge by
    this factor (fail-slow disk).  Clamped to ≥ 1.0; 1.0 = healthy.
    Deterministic — affects virtual time only. *)

(** {2 Adversary observation surface}

    The [obs_*] accessors are what an adaptive schedule-fuzzer attacker
    ({!Sbft_check.Adversary}) may inspect when choosing its next move:
    view/progress counters and per-slot share tallies — state a network
    adversary colluding with f replicas could learn from traffic and
    its own members.  Key material, honest replicas' unsent buffers and
    pending queues are deliberately not exposed.  The R6 taint lint
    treats [obs_*] results as attacker-controlled, so protocol handlers
    cannot grow a dependence on them. *)

val obs_view : t -> int
val obs_last_executed : t -> int
val obs_last_stable : t -> int
val obs_next_seq : t -> int
val obs_in_view_change : t -> bool

val obs_slot_shares : t -> int -> int * int * int
(** [(sigma, tau, commit)] share counts collected at this replica for a
    slot — what a colluding collector sees arriving; [(0,0,0)] for
    unknown slots. *)

val obs_frontier : t -> int
(** Highest slot with any protocol activity at this replica. *)

(** {2 Byzantine behaviours (tests only)} *)

type byzantine =
  | Honest
  | Equivocating_primary
      (** Sends different blocks to different replicas for the same
          sequence number. *)
  | Silent  (** Participates in nothing (crash-like, but still up). *)
  | Corrupt_shares  (** Sends invalid signature shares. *)
  | Wrong_exec_digest
      (** Signs and announces a bogus state digest in sign-state (attacks
          the execution collectors). *)
  | Stale_view_change
      (** Sends view-change messages with stale/partial information. *)

val set_byzantine : t -> byzantine -> unit

val byzantine : t -> byzantine
(** Current behaviour (property oracles exclude non-honest replicas). *)
