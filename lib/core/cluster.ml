open Sbft_sim
open Sbft_crypto

type service = {
  make_store : unit -> Sbft_store.Auth_store.t;
  exec_cost : Types.request list -> Engine.time;
}

let kv_service =
  {
    make_store = (fun () -> Sbft_store.Kv_service.create ());
    exec_cost =
      (fun reqs ->
        (* Charge per primitive operation (batched requests carry many)
           plus the block's persistence. *)
        List.fold_left
          (fun acc (r : Types.request) ->
            match Sbft_store.Kv_op.decode r.op with
            | Some op -> acc + (Sbft_store.Kv_op.count op * Cost_model.kv_execute_op)
            | None -> acc)
          (Cost_model.persist_block (Types.requests_bytes reqs))
          reqs);
  }

type t = {
  engine : Engine.t;
  network : Network.t;
  trace : Trace.t;
  keys : Keys.t;
  config : Config.t;
  replicas : Replica.t array;
  clients : Client.t array;
  latency : Stats.Latency.t;
  throughput : Stats.Throughput.t;
  (* rebuild machinery for crash-amnesia recovery *)
  service : service;
  env : Replica.env;
  replica_keys : Keys.replica_keys array;
  exec_cache : Sbft_store.Auth_store.cache;
  durables : Replica.durable array;
  amnesia : bool array;  (* crashed with volatile state wiped *)
}

(* CPU cost of pushing one message out (syscall + TLS record). *)
let send_overhead = Engine.us 20

let create ?(seed = 1L) ?(trace = false) ?(cpu_scale = 1.0)
    ?(on_complete = fun ~client:_ ~timestamp:_ ~value:_ -> ()) ~config
    ~num_clients ~topology ~service () =
  (match Config.validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Cluster.create: " ^ e));
  let n = Config.n config in
  let num_nodes = n + num_clients in
  let engine = Engine.create ~num_nodes ~seed () in
  for node = 0 to num_nodes - 1 do
    Engine.set_cpu_scale engine node cpu_scale
  done;
  let network = Network.create ~topology:(topology ~num_nodes) () in
  let tr = Trace.create ~enabled:trace () in
  let rng = Rng.split (Engine.rng engine) in
  let keys, replica_keys, client_kps = Keys.setup rng ~config ~num_clients in
  let deliver = ref (fun _ctx ~src:_ ~dst:_ _msg -> ()) in
  let send ctx ~src ~dst msg =
    Engine.charge ctx send_overhead;
    Network.send network engine ~src ~dst ~size:(Types.size msg)
      ~at:(Engine.ctx_now ctx) (fun ctx -> !deliver ctx ~src ~dst msg)
  in
  let env = { Replica.engine; trace = tr; keys; send; exec_cost = service.exec_cost } in
  (* All honest replicas execute identical blocks: share the execution
     work and the resulting persistent state across them. *)
  let exec_cache = Sbft_store.Auth_store.new_cache () in
  let durables =
    Array.init n (fun _ ->
        { Replica.wal = Sbft_store.Wal.create (); blocks = Sbft_store.Block_store.create () })
  in
  let replicas =
    Array.init n (fun i ->
        let store = service.make_store () in
        Sbft_store.Auth_store.set_cache store exec_cache;
        Replica.create ~env ~my:replica_keys.(i) ~store ~durable:durables.(i))
  in
  let latency = Stats.Latency.create () in
  let throughput = Stats.Throughput.create () in
  let clients =
    Array.init num_clients (fun i ->
        let cid = n + i in
        Client.create ~env ~id:cid ~keypair:client_kps.(i)
          ~on_complete:(fun ~timestamp ~latency:l ~value ->
            Stats.Latency.add latency l;
            Stats.Throughput.add throughput ~at:(Engine.now engine) 1;
            on_complete ~client:i ~timestamp ~value))
  in
  deliver :=
    (fun ctx ~src ~dst msg ->
      if dst < n then Replica.on_message replicas.(dst) ctx ~src msg
      else if dst < num_nodes then Client.on_message clients.(dst - n) ctx ~src msg);
  Array.iter
    (fun r -> Engine.dispatch engine ~dst:(Replica.id r) ~at:0 (fun ctx -> Replica.start r ctx))
    replicas;
  {
    engine;
    network;
    trace = tr;
    keys;
    config;
    replicas;
    clients;
    latency;
    throughput;
    service;
    env;
    replica_keys;
    exec_cache;
    durables;
    amnesia = Array.make n false;
  }

let num_replicas t = Array.length t.replicas
let client_id t i = num_replicas t + i

let start_clients t ~requests_per_client ~make_op =
  Array.iteri
    (fun i c ->
      Client.run_closed_loop c ~num_requests:requests_per_client
        ~make_op:(fun k -> make_op ~client:i k)
        ~start_at:0)
    t.clients

let crash_replicas t ids = List.iter (Engine.crash t.engine) ids

(* Crash-amnesia: the node stops AND its volatile state (protocol
   state, service store, client table) is gone.  Only the durable WAL +
   block store survive — and the WAL loses its unsynced tail, exactly
   like a real fsync-based log.  The actual wipe happens at recovery
   (the dead replica object can't act meanwhile). *)
let crash_amnesia t id =
  Engine.crash t.engine id;
  Sbft_store.Wal.drop_pending t.durables.(id).Replica.wal;
  t.amnesia.(id) <- true

(* Rollback attack: while the node is down, re-image its disk from a
   stale backup — the WAL rolls back to the newest stable checkpoint at
   or below [before] and the block ledger follows, so recovery restarts
   from an internally consistent but outdated prefix that has forgotten
   every later promise (the software analogue of the rollback attacks
   trusted monotonic counters exist to stop).  Only meaningful after
   [crash_amnesia]; a plain crash keeps volatile memory, which no disk
   tampering can rewind. *)
let rollback_replica t id ~before =
  let d = t.durables.(id) in
  let cp = Sbft_store.Wal.rollback_to_checkpoint d.Replica.wal ~before in
  Sbft_store.Block_store.rollback d.Replica.blocks ~above:cp;
  cp

(* Recover a crashed node.  A plain crash resumes with full memory (the
   legacy pause semantics); an amnesia crash rebuilds the replica from
   scratch around its durable state and runs the recovery protocol. *)
let recover_replica t id =
  if t.amnesia.(id) then begin
    t.amnesia.(id) <- false;
    (* The old object is dead: its timers must not fire into the rebuilt
       replica's world. *)
    Replica.retire t.replicas.(id);
    let durable =
      if t.config.Config.durable_wal then t.durables.(id)
      else begin
        (* Durability disabled: model the restart as losing the disk
           too, so the fuzzer can prove the WAL is load-bearing. *)
        let d =
          { Replica.wal = Sbft_store.Wal.create (); blocks = Sbft_store.Block_store.create () }
        in
        t.durables.(id) <- d;
        d
      end
    in
    let store = t.service.make_store () in
    Sbft_store.Auth_store.set_cache store t.exec_cache;
    let r = Replica.create ~env:t.env ~my:t.replica_keys.(id) ~store ~durable in
    t.replicas.(id) <- r;
    Engine.recover t.engine id;
    Engine.dispatch t.engine ~dst:id ~at:(Engine.now t.engine) (fun ctx ->
        Replica.recover r ctx)
  end
  else Engine.recover t.engine id

let run_for t duration = Engine.run_until t.engine (Engine.now t.engine + duration)

let total_completed t =
  Array.fold_left (fun acc c -> acc + Client.completed c) 0 t.clients

let agreement_ok t =
  (* Compare committed blocks across replicas at every height any
     replica committed, and state digests at equal executed heights. *)
  let ok = ref true in
  let n = num_replicas t in
  let max_committed =
    Array.fold_left (fun acc r -> max acc (Replica.last_executed r)) 0 t.replicas
  in
  for seq = 1 to max_committed do
    let blocks =
      Array.to_list t.replicas
      |> List.filter_map (fun r -> Replica.committed_block r seq)
      |> List.map (fun reqs ->
             List.map (fun (r : Types.request) -> r.Types.op) reqs)
    in
    match blocks with
    | [] -> ()
    | first :: rest ->
        if not (List.for_all (List.equal String.equal first) rest) then ok := false
  done;
  (* Digest agreement at matching executed heights. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = t.replicas.(i) and rj = t.replicas.(j) in
      if
        Int.equal (Replica.last_executed ri) (Replica.last_executed rj)
        && Replica.last_executed ri > 0
        && not (String.equal (Replica.state_digest ri) (Replica.state_digest rj))
      then ok := false
    done
  done;
  !ok
