open Sbft_crypto

type t = {
  config : Config.t;
  sigma : Threshold.t;
  tau : Threshold.t;
  pi : Threshold.t;
  group : Group_sig.t;
  replica_pks : Pki.public_key array;
  client_pks : Pki.public_key array;
}

type replica_keys = {
  replica_id : int;
  sigma_sk : Threshold.signing_key;
  tau_sk : Threshold.signing_key;
  pi_sk : Threshold.signing_key;
  group_sk : Group_sig.signing_key;
  pki_sk : Pki.keypair;
}

let setup rng ~config ~num_clients =
  let n = Config.n config in
  let sigma, sigma_keys = Threshold.setup rng ~n ~k:(Config.sigma_threshold config) in
  let tau, tau_keys = Threshold.setup rng ~n ~k:(Config.tau_threshold config) in
  let pi, pi_keys = Threshold.setup rng ~n ~k:(Config.pi_threshold config) in
  let group, group_keys = Group_sig.setup rng ~n in
  let replica_kps = Array.init n (fun id -> Pki.generate rng ~id) in
  let client_kps = Array.init num_clients (fun i -> Pki.generate rng ~id:(n + i)) in
  let public =
    {
      config;
      sigma;
      tau;
      pi;
      group;
      replica_pks = Array.map Pki.public_key replica_kps;
      client_pks = Array.map Pki.public_key client_kps;
    }
  in
  let replica_keys =
    Array.init n (fun i ->
        {
          replica_id = i;
          sigma_sk = sigma_keys.(i);
          tau_sk = tau_keys.(i);
          pi_sk = pi_keys.(i);
          group_sk = group_keys.(i);
          pki_sk = replica_kps.(i);
        })
  in
  (public, replica_keys, client_kps)

let client_pk t cid = t.client_pks.(cid - Config.n t.config)

(* Every replica authenticates every request; the request objects are
   physically shared across the simulated nodes, so the (deterministic)
   verification outcome is memoized by physical identity. *)
module Req_memo = Ephemeron.K1.Make (struct
  type t = Types.request

  let equal = ( == )
  let hash (r : Types.request) = (r.client * 1_000_003) lxor r.timestamp
end)

let verify_memo : bool Req_memo.t = Req_memo.create 4096

let verify_request t (r : Types.request) =
  match Req_memo.find_opt verify_memo r with
  | Some ok -> ok
  | None ->
      let cid = r.client in
      let n = Config.n t.config in
      let ok =
        cid >= n
        && cid < n + Array.length t.client_pks
        && Pki.verify (client_pk t cid) (Types.request_digest r) r.signature
      in
      Req_memo.replace verify_memo r ok;
      ok
