let primary ~config ~view = view mod Config.n config

(* Deterministic pseudo-random choice of [count] distinct non-primary
   replicas for (view, seq, salt): hash-seeded selection so every
   replica computes the same groups without communication. *)
let memo : (int * int * int * int * int, int list) Hashtbl.t = Hashtbl.create 4096

let pick ~config ~view ~seq ~salt ~count =
  let n = Config.n config in
  let p = primary ~config ~view in
  let count = min count (n - 1) in
  match Hashtbl.find_opt memo (n, view, seq, salt, count) with
  | Some cached -> cached
  | None ->
  let chosen = ref [] in
      let taken = Array.make n false in
      taken.(p) <- true;
      let attempt = ref 0 in
      let found = ref 0 in
      while !found < count do
        let d =
          Sbft_crypto.Sha256.digest
            (Printf.sprintf "collector-%d-%d-%d-%d" salt view seq !attempt)
        in
        let idx = Char.code d.[0] lor (Char.code d.[1] lsl 8) in
        let r = idx mod n in
        if not taken.(r) then begin
          taken.(r) <- true;
          chosen := r :: !chosen;
          incr found
        end;
        incr attempt
      done;
      let result = List.rev !chosen in
      Hashtbl.replace memo (n, view, seq, salt, count) result;
      result

let c_collectors ~config ~view ~seq = pick ~config ~view ~seq ~salt:1 ~count:(config.Config.c + 1)

let e_collectors ~config ~view ~seq = pick ~config ~view ~seq ~salt:2 ~count:(config.Config.c + 1)

let slow_path_collectors ~config ~view ~seq =
  c_collectors ~config ~view ~seq @ [ primary ~config ~view ]

let is_c_collector ~config ~view ~seq r = List.mem r (c_collectors ~config ~view ~seq)
let is_e_collector ~config ~view ~seq r = List.mem r (e_collectors ~config ~view ~seq)

let rank lst r =
  let rec go i = function
    | [] -> None
    | x :: rest -> if Int.equal x r then Some i else go (i + 1) rest
  in
  go 0 lst
