(** One-call construction of a simulated SBFT deployment: engine,
    network, key setup, [n] replicas and [m] clients, fully wired.

    Node ids: replicas are [0 .. n-1], clients [n .. n+m-1]. *)

type service = {
  make_store : unit -> Sbft_store.Auth_store.t;
      (** Fresh service state per replica. *)
  exec_cost : Types.request list -> Sbft_sim.Engine.time;
      (** Virtual CPU cost of executing one block of requests. *)
}

val kv_service : service
(** The replicated key-value store with per-op/persistence costs. *)

type t = {
  engine : Sbft_sim.Engine.t;
  network : Sbft_sim.Network.t;
  trace : Sbft_sim.Trace.t;
  keys : Keys.t;
  config : Config.t;
  replicas : Replica.t array;
  clients : Client.t array;
  latency : Sbft_sim.Stats.Latency.t;
  throughput : Sbft_sim.Stats.Throughput.t;
  service : service;
  env : Replica.env;
  replica_keys : Keys.replica_keys array;
  exec_cache : Sbft_store.Auth_store.cache;
  durables : Replica.durable array;
  amnesia : bool array;
      (** Per-replica flag: crashed with volatile state wiped; the next
          {!recover_replica} rebuilds from durable state. *)
}

val create :
  ?seed:int64 ->
  ?trace:bool ->
  ?cpu_scale:float ->
  ?on_complete:(client:int -> timestamp:int -> value:string -> unit) ->
  config:Config.t ->
  num_clients:int ->
  topology:(num_nodes:int -> Sbft_sim.Topology.t) ->
  service:service ->
  unit ->
  t
(** [cpu_scale] scales every node's CPU speed (0.5 = twice as fast;
    used to model the multicore replicas of the paper's testbed).
    [on_complete] observes every request completion ([client] is the
    client index, not its node id) — the schedule fuzzer's oracles
    record accepted values through it. *)

val num_replicas : t -> int
val client_id : t -> int -> int
(** Node id of the i-th client. *)

val start_clients :
  t -> requests_per_client:int -> make_op:(client:int -> int -> string) -> unit
(** Launch every client's closed loop at time 0; completions feed the
    cluster's latency/throughput accumulators. *)

val crash_replicas : t -> int list -> unit

val crash_amnesia : t -> int -> unit
(** Crash a replica AND mark its volatile state (protocol state, service
    store, client table) as lost.  The unsynced WAL tail is dropped, so
    only group-committed records survive — recovery must rebuild from
    the WAL plus the persisted block store. *)

val rollback_replica : t -> int -> before:int -> int
(** Rollback attack (schedule fuzzer): while replica [id] is down after
    {!crash_amnesia}, re-image its disk from a stale backup — the WAL is
    truncated to the newest stable checkpoint at or below [before]
    ({!Sbft_store.Wal.rollback_to_checkpoint}) and the block ledger
    follows.  Recovery then restarts from an internally consistent but
    outdated prefix that has forgotten every later prepare promise.
    Returns the checkpoint seq the disk rolled back to (0 = genesis). *)

val recover_replica : t -> int -> unit
(** Bring a crashed replica back.  After a plain crash it resumes with
    full memory; after {!crash_amnesia} a fresh replica is built around
    the durable state and runs {!Replica.recover} (when
    [Config.durable_wal] is off, the disk is lost too — the rebuilt
    replica starts from genesis). *)

val run_for : t -> Sbft_sim.Engine.time -> unit

val total_completed : t -> int
val agreement_ok : t -> bool
(** All replicas that executed a given sequence number executed the same
    block, and state digests agree at equal heights (the paper's safety
    property, checked post-hoc). *)
