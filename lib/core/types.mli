(** Protocol message types, canonical hash inputs, and wire-size
    accounting.

    The simulator delivers messages as typed values (no byte shuffling),
    but two byte-level concerns stay real: the digest
    [h = H(seq ‖ view ‖ requests)] that every signature covers is
    computed over a canonical encoding, and every message has a
    realistic {!size} charged to the network model. *)

type request = {
  client : int;  (** client node id *)
  timestamp : int;  (** client-monotone timestamp (§V-A) *)
  op : string;  (** opaque service operation *)
  signature : Sbft_crypto.Pki.signature;
}

val request_digest : request -> string

(** {2 View-change payloads (§V-G)} *)

type slow_cert =
  | Slow_committed of {
      tau : Sbft_crypto.Field.t;  (** τ(h), needed to check τ(τ(h)) *)
      tau_tau : Sbft_crypto.Field.t;
      view : int;
      reqs : request list;
    }
      (** full-commit-proof-slow was accepted *)
  | Slow_prepared of { tau : Sbft_crypto.Field.t; view : int; reqs : request list }
      (** highest view with an accepted prepare τ(h) *)
  | No_commit

type fast_cert =
  | Fast_committed of { sigma : Sbft_crypto.Field.t; view : int; reqs : request list }
      (** full-commit-proof was accepted *)
  | Fast_preprepared of {
      share : Sbft_crypto.Threshold.share;  (** σ_i(h) by the sender *)
      view : int;
      reqs : request list;
    }  (** highest view with an accepted pre-prepare *)
  | No_preprepare

type vc_slot = { slot_seq : int; slow : slow_cert; fast : fast_cert }

type block_cert =
  | Cert_fast of Sbft_crypto.Field.t  (** σ(h) *)
  | Cert_slow of Sbft_crypto.Field.t * Sbft_crypto.Field.t
      (** τ(h), τ(τ(h)) *)
(** Commit certificate shipped alongside a state-transferred block.  The
    receiver re-verifies it against the block hash before adopting, so a
    Byzantine peer cannot make an honest replica execute uncertified
    operations via state transfer. *)

type view_change = {
  vc_replica : int;
  vc_view : int;  (** the view being abandoned *)
  vc_ls : int;  (** last stable sequence number *)
  vc_checkpoint : (Sbft_crypto.Field.t * string) option;
      (** π(d_ls) and d_ls; [None] only when ls = 0 *)
  vc_slots : vc_slot list;  (** slots (ls, ls+win] with information *)
}

(** {2 Messages} *)

type msg =
  | Request of request
  | Pre_prepare of { seq : int; view : int; reqs : request list }
  | Sign_share of {
      seq : int;
      view : int;
      sigma_share : Sbft_crypto.Threshold.share;
      tau_share : Sbft_crypto.Threshold.share;
      replica : int;
    }
  | Full_commit_proof of { seq : int; view : int; sigma : Sbft_crypto.Field.t }
  | Prepare of { seq : int; view : int; tau : Sbft_crypto.Field.t }
  | Commit of { seq : int; view : int; share : Sbft_crypto.Threshold.share }
      (** τ_i(τ(h)) *)
  | Full_commit_proof_slow of {
      seq : int;
      view : int;
      tau : Sbft_crypto.Field.t;
      tau_tau : Sbft_crypto.Field.t;
    }
  | Sign_state of { seq : int; digest : string; share : Sbft_crypto.Threshold.share }
      (** π_i(d) *)
  | Full_execute_proof of { seq : int; digest : string; pi : Sbft_crypto.Field.t }
  | Execute_ack of {
      view : int;  (** sender's view, lets clients track the primary *)
      seq : int;
      index : int;  (** position of the client's op in the block *)
      client : int;
      timestamp : int;
      value : string;
      state_digest : string;
      pi : Sbft_crypto.Field.t;
      proof : string;  (** serialized {!Sbft_store.Auth_store} op proof *)
    }
  | Reply of {
      view : int;
      replica : int;
      client : int;
      timestamp : int;
      seq : int;
      value : string;
      signature : Sbft_crypto.Pki.signature;
    }  (** direct f+1 acknowledgement path *)
  | View_change of view_change
  | New_view of { view : int; proofs : view_change list }
  | Get_block of { seq : int; replica : int }
  | Block_resp of { seq : int; view : int; reqs : request list }
  | Query of { client : int; qid : int; query : string }
      (** Read-only query (§IV): answered by one replica against its
          latest π-certified state, no consensus round. *)
  | Query_resp of {
      client : int;
      qid : int;
      seq : int;  (** height of the certified state *)
      digest : string;
      pi : Sbft_crypto.Field.t;
      value : string;
      proof : string;
    }
  | Get_state of { upto : int; replica : int }
  | State_resp of {
      snapshot : string;
      snap_seq : int;
      pi : Sbft_crypto.Field.t;  (** π(d) over the snapshot's digest *)
      digest : string;
      blocks : (int * int * request list * block_cert) list;
          (** (seq, view, reqs, cert) after snap; the receiver verifies
              each [cert] before adopting the block *)
      table : Sbft_store.Block_store.client_entry list;
          (** Sender's client table as of [snap_seq], so the receiver
              resumes exactly-once request deduplication. *)
    }

val block_hash : seq:int -> view:int -> reqs:request list -> string
(** The [h = H(s ‖ v ‖ r)] every commit signature covers (canonical
    encoding; SHA-256). *)

val tau2_message : Sbft_crypto.Field.t -> string
(** Message covered by the second-level commit signature τ(τ(h)): the
    byte encoding of τ(h). *)

val pi_message : seq:int -> digest:string -> string
(** Message covered by execution signatures π_i: binds the sequence
    number and the state digest. *)

val requests_bytes : request list -> int

val size : msg -> int
(** Wire size in bytes for network-cost accounting: payload plus
    signature material (33-byte combined threshold signatures, 37-byte
    shares, 256-byte RSA signatures, 32-byte digests). *)

val kind : msg -> string
(** Short tag for tracing, e.g. ["pre-prepare"]. *)
