open Sbft_sim
open Sbft_crypto

type env = {
  engine : Engine.t;
  trace : Trace.t;
  keys : Keys.t;
  send : Engine.ctx -> src:int -> dst:int -> Types.msg -> unit;
  exec_cost : Types.request list -> Engine.time;
}

type byzantine =
  | Honest
  | Equivocating_primary
  | Silent
  | Corrupt_shares
  | Wrong_exec_digest
  | Stale_view_change

type durable = { wal : Sbft_store.Wal.t; blocks : Sbft_store.Block_store.t }

(* State-transfer retry state: one outstanding Get_state at a time,
   re-sent with exponential backoff and peer rotation until the replica
   catches up or learns the response shows nothing newer. *)
type st_pending = {
  mutable st_target : int;
  st_base : int;  (* random initial peer offset *)
  mutable st_attempt : int;
  mutable st_timer : Engine.timer option;
}

(* A share stash: the assoc list handed to [combine_shares] plus an
   O(1) membership byte-set and running count.  Collectors at paper
   scale accept k = 3f+c+1 = 129 shares per slot; the previous
   [List.mem_assoc] / [List.length] on every arrival made share
   acceptance O(k²) per slot.  [seen] is grown on demand, so slots on
   small clusters stay small. *)
type stash = {
  mutable items : (int * Threshold.share) list;
  mutable count : int;
  mutable seen : Bytes.t; (* seen.[key] <> '\000' iff key is in items *)
}

let stash_make () = { items = []; count = 0; seen = Bytes.empty }

let stash_mem st key =
  key < Bytes.length st.seen && Bytes.get st.seen key <> '\000'

let stash_mark st key =
  if key >= Bytes.length st.seen then begin
    let len = max (key + 1) (max 8 (2 * Bytes.length st.seen)) in
    let b = Bytes.make len '\000' in
    Bytes.blit st.seen 0 b 0 (Bytes.length st.seen);
    st.seen <- b
  end;
  Bytes.set st.seen key '\001'

let stash_add st key sh =
  stash_mark st key;
  st.items <- (key, sh) :: st.items;
  st.count <- st.count + 1

let stash_reset st =
  st.items <- [];
  st.count <- 0;
  Bytes.fill st.seen 0 (Bytes.length st.seen) '\000'

(* Replace the contents with a filtered assoc list, preserving its
   order (rare path: share eviction after a failed combine). *)
let stash_set st its =
  Bytes.fill st.seen 0 (Bytes.length st.seen) '\000';
  st.items <- its;
  st.count <- List.length its;
  List.iter (fun (k, _) -> stash_mark st k) its

type slot = {
  seq : int;
  (* accepted pre-prepare for the current view: (view, reqs, h) *)
  mutable pp : (int * Types.request list * string) option;
  (* collector-side share collection *)
  sigma_shares : stash;
  tau_shares : stash;
  commit_shares : stash;
  mutable fast_sent : bool; (* this collector already formed/combined σ *)
  mutable prepare_sent : bool;
  mutable slow_sent : bool;
  mutable fast_timer : Engine.timer option;
  (* replica-side commit state *)
  mutable sent_sign_share : bool;
  mutable sent_commit : bool;
  mutable prepare_tau : Field.t option;
  mutable committed : Types.request list option;
  mutable executed : bool;
  (* pending proofs waiting for the block content *)
  mutable pp_at : Engine.time; (* when the pre-prepare was accepted *)
  mutable pending_fast : (int * Field.t) option; (* view, σ *)
  mutable pending_slow : (int * Field.t * Field.t) option; (* view, τ, ττ *)
  (* execution collector state: shares bucketed by claimed digest so a
     Byzantine replica announcing a bogus digest first cannot block the
     honest bucket from reaching its threshold *)
  pi_shares : (string, stash) Hashtbl.t;
  mutable exec_proof_sent : bool;
  mutable acks_sent : bool;
  (* view-change bookkeeping *)
  mutable highest_prepare : (int * Field.t * Types.request list) option;
  mutable highest_preprepare : (int * Threshold.share * Types.request list) option;
  mutable fast_cert : (Field.t * int * Types.request list) option;
  mutable slow_cert : (Field.t * Field.t * int * Types.request list) option;
}

let new_slot seq =
  {
    seq;
    pp = None;
    sigma_shares = stash_make ();
    tau_shares = stash_make ();
    commit_shares = stash_make ();
    fast_sent = false;
    prepare_sent = false;
    slow_sent = false;
    fast_timer = None;
    sent_sign_share = false;
    sent_commit = false;
    prepare_tau = None;
    committed = None;
    executed = false;
    pp_at = 0;
    pending_fast = None;
    pending_slow = None;
    pi_shares = Hashtbl.create 2;
    exec_proof_sent = false;
    acks_sent = false;
    highest_prepare = None;
    highest_preprepare = None;
    fast_cert = None;
    slow_cert = None;
  }

type t = {
  env : env;
  my : Keys.replica_keys;
  id : int;
  san : Sanitizer.t;
  store : Sbft_store.Auth_store.t;
  blocks : Sbft_store.Block_store.t;
  mutable view : int;
  mutable next_seq : int; (* primary: next sequence to assign *)
  mutable ls : int; (* windowing bound (includes the fast-path rule) *)
  mutable stable : int; (* highest π-certified checkpoint *)
  slots : (int, slot) Hashtbl.t;
  pending : Types.request Queue.t;
  pending_keys : (int * int, unit) Hashtbl.t;
  client_table : (int, int * string * int * int) Hashtbl.t;
      (* client -> (timestamp, value, seq, index) of last executed op *)
  batching : Batching.t;
  mutable batch_timer_armed : bool;
  (* liveness *)
  outstanding : (int * int, Types.request) Hashtbl.t; (* awaiting execution *)
  mutable last_progress : Engine.time;
  mutable vc_backoff : int;
  mutable in_view_change : bool;
  mutable sent_vc_for : int; (* highest view we issued a view-change for *)
  vc_msgs : (int, (int, Types.view_change) Hashtbl.t) Hashtbl.t;
  checkpoint_pis : (int, Field.t * string) Hashtbl.t;
  mutable last_new_view : (int * Types.view_change list) option;
      (* latest validated new-view proofs, retransmitted to stale
         complainers so a rejoining replica can learn the current view *)
  nv_resent : (int, int * Engine.time) Hashtbl.t;
      (* complainer -> (view, time) of the last new-view retransmission:
         rate-limits the (large) proof-set resend to once per view per
         peer, or once per retry interval, so repeated stale view-change
         messages cannot be used as a cheap amplification vector *)
  st_served : (int, Engine.time) Hashtbl.t;
      (* requester -> time of the last State_resp we served it: a full
         snapshot plus block suffix is the largest message in the
         protocol, so Get_state floods must not translate 1:1 into
         State_resp floods *)
  mutable st : st_pending option;
  wal : Sbft_store.Wal.t;
  mutable retired : bool;
      (* set when a crash-amnesia rebuild replaces this object: pending
         timer callbacks on the old incarnation must become no-ops *)
  mutable failures_observed : bool;
  mutable fast_eta : float;
      (* EWMA of observed pre-prepare -> full-commit-proof time (ns): the
         paper's "adaptive protocol based on past network profiling" for
         the fast-path fallback timer (§V-E) *)
  mutable byz : byzantine;
  mutable fsync_scale : float;
      (* gray-failure knob: degraded-disk multiplier applied to the WAL
         group-commit flush charge (1.0 = healthy) *)
  (* metrics *)
  mutable n_committed : int;
  mutable n_executed_blocks : int;
  mutable n_fast : int;
  mutable n_slow : int;
  mutable n_view_changes : int;
}

let cfg t = t.env.keys.Keys.config
let num_replicas t = Config.n (cfg t)
let keys t = t.env.keys

let create ~env ~my ~store ~(durable : durable) =
  let config = env.keys.Keys.config in
  let san =
    Sanitizer.create ~enabled:config.Config.sanitize ~f:config.Config.f
      ~c:config.Config.c ()
  in
  Sanitizer.check_config san ~n:(Config.n config);
  {
    env;
    my;
    id = my.Keys.replica_id;
    san;
    store;
    blocks = durable.blocks;
    view = 0;
    next_seq = 1;
    ls = 0;
    stable = 0;
    slots = Hashtbl.create 128;
    pending = Queue.create ();
    pending_keys = Hashtbl.create 64;
    client_table = Hashtbl.create 64;
    batching = Batching.create env.keys.Keys.config;
    batch_timer_armed = false;
    outstanding = Hashtbl.create 64;
    last_progress = 0;
    vc_backoff = 0;
    in_view_change = false;
    sent_vc_for = 0;
    vc_msgs = Hashtbl.create 4;
    checkpoint_pis = Hashtbl.create 8;
    last_new_view = None;
    nv_resent = Hashtbl.create 4;
    st_served = Hashtbl.create 4;
    st = None;
    wal = durable.wal;
    retired = false;
    failures_observed = false;
    fast_eta = float_of_int (env.keys.Keys.config.Config.fast_path_timeout / 2);
    byz = Honest;
    fsync_scale = 1.0;
    n_committed = 0;
    n_executed_blocks = 0;
    n_fast = 0;
    n_slow = 0;
    n_view_changes = 0;
  }

let id t = t.id
let sanitizer t = t.san
let view t = t.view
let primary_of t v = Collectors.primary ~config:(cfg t) ~view:v
let is_primary t = Int.equal (primary_of t t.view) t.id
let last_executed t = Sbft_store.Auth_store.last_executed t.store
let last_stable t = t.stable
let state_digest t = Sbft_store.Auth_store.digest t.store
let store t = t.store
let blocks_committed t = t.n_committed
let blocks_executed t = t.n_executed_blocks
let view_changes_completed t = t.n_view_changes
let fast_commits t = t.n_fast
let slow_commits t = t.n_slow
let set_byzantine t b = t.byz <- b
let byzantine t = t.byz
let wal t = t.wal
let set_fsync_scale t s = t.fsync_scale <- Float.max 1.0 s

(* ------------------------------------------------------------------ *)
(* Adversary observation surface (obs_* namespace).

   Everything an adaptive schedule-fuzzer attacker may inspect when
   choosing its next move.  Deliberately restricted to state a real
   network adversary colluding with f replicas could learn from traffic
   and its own members: view/progress counters and per-slot share
   tallies — never key material, never honest replicas' unsent buffers.
   The R6 taint lint treats obs_* results as attacker-tainted, so
   protocol handlers cannot grow a dependence on them. *)

let obs_view t = t.view
let obs_last_executed t = last_executed t
let obs_last_stable t = t.stable
let obs_next_seq t = t.next_seq
let obs_in_view_change t = t.in_view_change

(* Share counts an adversary's colluding collector would see arriving
   for slot [seq]: (sigma, tau, commit) tallies, 0s for unknown slots. *)
let obs_slot_shares t seq =
  match Hashtbl.find_opt t.slots seq with
  | None -> (0, 0, 0)
  | Some s -> (s.sigma_shares.count, s.tau_shares.count, s.commit_shares.count)

(* Highest slot with any protocol activity — where the frontier is. *)
let obs_frontier t =
  Hashtbl.fold (fun seq _ acc -> max seq acc) t.slots 0

let certified_checkpoints t =
  List.map
    (fun (seq, (_, digest)) -> (seq, digest))
    (Det.sorted_bindings ~compare:Int.compare t.checkpoint_pis)

let client_last_timestamp t ~client =
  Option.map (fun (ts, _, _, _) -> ts) (Hashtbl.find_opt t.client_table client)

let committed_block t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s.committed
  | None -> (
      match Sbft_store.Block_store.find t.blocks seq with
      | Some e ->
          (* Reconstructed from the persisted ledger after GC. *)
          Some
            (List.map
               (fun (o : Sbft_store.Block_store.op) ->
                 { Types.client = o.client; timestamp = o.timestamp; op = o.op; signature = "" })
               e.Sbft_store.Block_store.ops)
      | None -> None)

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s = new_slot seq in
      Hashtbl.replace t.slots seq s;
      s

let trace t ctx kind detail =
  Trace.emit t.env.trace ~time:(Engine.ctx_now ctx) ~node:t.id ~kind ~detail

(* Every replica timer goes through this wrapper so that retiring the
   object (crash-amnesia rebuild) silences callbacks still in flight on
   the old incarnation. *)
let set_replica_timer t ~after f =
  Engine.set_timer t.env.engine ~node:t.id ~after (fun ctx ->
      if not t.retired then f ctx)

let retire t = t.retired <- true

let send t ctx ~dst msg = t.env.send ctx ~src:t.id ~dst msg

(* Client table as sorted rows (checkpoint capture / state transfer). *)
let client_table_rows t =
  List.map
    (fun (client, (ts, value, seq, index)) ->
      {
        Sbft_store.Block_store.ce_client = client;
        ce_timestamp = ts;
        ce_value = value;
        ce_seq = seq;
        ce_index = index;
      })
    (Det.sorted_bindings ~compare:Int.compare t.client_table)

let broadcast_replicas t ctx msg =
  for r = 0 to num_replicas t - 1 do
    send t ctx ~dst:r msg
  done

(* ------------------------------------------------------------------ *)
(* Write-ahead logging (crash-amnesia durability).

   [wal_log] buffers a record and charges the append; [wal_sync]
   group-commits whatever the current handler buffered and charges one
   fsync.  Handlers call [wal_sync] immediately before sending a message
   that promises the logged state (sign shares, commit shares,
   view-change votes), so a restart never forgets a promise the network
   already saw — the unsynced tail is exactly what a crash may lose. *)

let wal_log t ctx record =
  if (cfg t).Config.durable_wal then
    let bytes = Sbft_store.Wal.append t.wal record in
    Engine.charge ctx (Cost_model.Tally.note "wal_append" (Cost_model.wal_append bytes))

let wal_sync t ctx =
  if (cfg t).Config.durable_wal && Sbft_store.Wal.sync t.wal then
    Engine.charge ctx
      (Cost_model.Tally.note "wal_fsync"
         (Cost_model.wal_fsync_scaled ~scale:t.fsync_scale))

let wal_ops reqs =
  List.map (fun (r : Types.request) -> (r.Types.client, r.Types.timestamp, r.Types.op)) reqs

(* ------------------------------------------------------------------ *)
(* Progress tracking for the view-change trigger *)

let note_progress t ctx = t.last_progress <- Engine.ctx_now ctx

let mark_outstanding t (r : Types.request) =
  if r.client >= 0 then Hashtbl.replace t.outstanding (r.client, r.timestamp) r

let clear_outstanding t (r : Types.request) =
  Hashtbl.remove t.outstanding (r.client, r.timestamp)

(* ------------------------------------------------------------------ *)
(* Collector-side share combination (§IV linearity).

   [combine_shares] is the single entry point every collector site
   (σ/τ/ττ/π) goes through.  With [Config.optimistic_combine] it runs
   the combine-then-verify fast path: interpolate the k shares without
   any per-share check, verify the one combined signature, and only on
   failure fall back to robust per-share identification
   ({!Threshold.combine_verified}).  The simulated CPU charged tracks
   exactly which of those steps ran, so the cheaper optimistic path
   shows up in measured throughput.  With the knob off it charges the
   pessimistic batch-verify-every-share baseline.

   Returns the combined signature (if any) and the signers identified
   as invalid — the caller must evict those from its share stash so the
   next attempt combines a clean set. *)

let combine_shares t ctx ~scheme ~k ~group ~msg shares =
  let tally = Cost_model.Tally.note in
  let combine_cost cached =
    if group then Cost_model.group_combine k
    else if cached then Cost_model.bls_combine_cached k
    else Cost_model.bls_combine k
  in
  if (cfg t).Config.optimistic_combine then begin
    let o = Threshold.combine_verified scheme ~msg shares in
    Engine.charge ctx (tally "combine" (combine_cost o.Threshold.coeffs_cached));
    Engine.charge ctx (tally "combined_verify" Cost_model.bls_verify);
    if o.Threshold.fallback then begin
      t.failures_observed <- true;
      Engine.charge ctx
        (tally "share_identify" (Cost_model.bls_identify o.Threshold.fresh_checks));
      (* The recombination over the surviving shares, when one was
         possible (its constituents are all individually verified, so
         no second combined check is needed). *)
      match o.Threshold.signature with
      | Some _ -> Engine.charge ctx (tally "combine" (combine_cost o.Threshold.recombine_cached))
      | None -> ()
    end;
    (o.Threshold.signature, o.Threshold.bad_signers)
  end
  else begin
    Engine.charge ctx (tally "share_batch_verify" (Cost_model.bls_batch_verify k));
    Engine.charge ctx (tally "combine" (combine_cost false));
    (Threshold.combine scheme ~msg shares, [])
  end

(* Drop shares from the signers [combine_shares] identified as bad. *)
let evict_bad bad stash =
  match bad with
  | [] -> stash
  | _ ->
      List.filter
        (fun (_, sh) -> not (List.exists (Int.equal sh.Threshold.signer) bad))
        stash

(* ------------------------------------------------------------------ *)
(* Forward declarations via mutual recursion: the handler graph is
   cyclic (commit -> execute -> collector -> ...), so the whole protocol
   lives in one recursive binding group below. *)

let rec on_message t ctx ~src msg =
  match t.byz with
  | Silent -> ()
  | _ -> (
      Engine.charge ctx (Cost_model.Tally.note "mac" Cost_model.message_auth_check);
      match msg with
      | Types.Request r -> on_request t ctx r
      | Types.Pre_prepare { seq; view; reqs } -> on_pre_prepare t ctx ~seq ~view ~reqs
      | Types.Sign_share { seq; view; sigma_share; tau_share; replica } ->
          on_sign_share t ctx ~seq ~view ~sigma_share ~tau_share ~replica
      | Types.Full_commit_proof { seq; view; sigma } ->
          on_full_commit_proof t ctx ~seq ~view ~sigma
      | Types.Prepare { seq; view; tau } -> on_prepare t ctx ~seq ~view ~tau
      | Types.Commit { seq; view; share } -> on_commit t ctx ~seq ~view ~share
      | Types.Full_commit_proof_slow { seq; view; tau; tau_tau } ->
          on_full_commit_proof_slow t ctx ~seq ~view ~tau ~tau_tau
      | Types.Sign_state { seq; digest; share } -> on_sign_state t ctx ~seq ~digest ~share
      | Types.Full_execute_proof { seq; digest; pi } ->
          on_full_execute_proof t ctx ~seq ~digest ~pi ~src
      | Types.Execute_ack _ | Types.Reply _ -> () (* client-only messages *)
      | Types.View_change vc -> on_view_change t ctx vc
      | Types.New_view { view; proofs } -> on_new_view t ctx ~view ~proofs
      | Types.Query { client; qid; query } -> on_query t ctx ~client ~qid ~query
      | Types.Query_resp _ -> () (* client-only *)
      | Types.Get_block { seq; replica } -> on_get_block t ctx ~seq ~replica
      | Types.Block_resp { seq; view; reqs } -> on_block_resp t ctx ~seq ~view ~reqs
      | Types.Get_state { upto; replica } -> on_get_state t ctx ~upto ~replica
      | Types.State_resp { snapshot; snap_seq; pi; digest; blocks; table } ->
          on_state_resp t ctx ~snapshot ~snap_seq ~pi ~digest ~blocks ~table)

(* ------------------------------------------------------------------ *)
(* Request intake and proposing (primary) *)

and on_request t ctx (r : Types.request) =
  (* Answer retransmissions of already-executed operations directly. *)
  match Hashtbl.find_opt t.client_table r.client with
  | Some (ts, value, seq, _) when ts >= r.timestamp ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_sign" Cost_model.rsa_sign);
      send t ctx ~dst:r.client
        (Types.Reply
           {
             view = t.view;
             replica = t.id;
             client = r.client;
             timestamp = ts;
             seq;
             value;
             signature = "";
           })
  | _ ->
      if is_primary t then begin
        if not (Hashtbl.mem t.pending_keys (r.client, r.timestamp)) then begin
          (* Static authentication and access-control check (§V-C). *)
          Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
          if Keys.verify_request (keys t) r then begin
            Hashtbl.replace t.pending_keys (r.client, r.timestamp) ();
            Queue.push r t.pending;
            Batching.observe_pending t.batching (Queue.length t.pending);
            mark_outstanding t r;
            try_propose t ctx
          end
        end
      end
      else begin
        (* Forward to the primary and watch for progress. *)
        if not (Hashtbl.mem t.outstanding (r.client, r.timestamp)) then begin
          mark_outstanding t r;
          send t ctx ~dst:(primary_of t t.view) (Types.Request r)
        end
      end

and inflight t =
  (* Blocks proposed but not yet known committed by us (primary view). *)
  let le = last_executed t in
  let count = ref 0 in
  for s = le + 1 to t.next_seq - 1 do
    match Hashtbl.find_opt t.slots s with
    | Some sl when sl.committed = None -> incr count
    | None -> incr count
    | Some _ -> ()
  done;
  !count

and try_propose t ctx =
  if is_primary t && not t.in_view_change then begin
    let config = cfg t in
    let target = Batching.batch_size t.batching in
    let can_propose () =
      (not (Queue.is_empty t.pending))
      && inflight t < Batching.max_concurrent config
      && t.next_seq <= t.ls + config.Config.win
      && t.next_seq <= last_executed t + Config.active_window config
    in
    let full_batch () = Queue.length t.pending >= target in
    while can_propose () && full_batch () do
      propose_block t ctx target
    done;
    (* A partial batch is flushed after the batching timeout. *)
    if can_propose () && (not (Queue.is_empty t.pending)) && not t.batch_timer_armed
    then begin
      t.batch_timer_armed <- true;
      ignore
        (set_replica_timer t ~after:config.Config.batch_timeout
           (fun ctx ->
             t.batch_timer_armed <- false;
             if is_primary t && not t.in_view_change then begin
               let batch = min (Queue.length t.pending) (Batching.batch_size t.batching) in
               if
                 batch > 0
                 && inflight t < Batching.max_concurrent config
                 && t.next_seq <= t.ls + config.Config.win
               then propose_block t ctx batch;
               try_propose t ctx
             end))
    end
  end

and propose_block t ctx batch =
  let batch = min batch (Queue.length t.pending) in
  let reqs = List.init batch (fun _ -> Queue.pop t.pending) in
  List.iter (fun (r : Types.request) -> Hashtbl.remove t.pending_keys (r.client, r.timestamp)) reqs;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Engine.charge ctx (Cost_model.Tally.note "hash" (Cost_model.sha256 (Types.requests_bytes reqs)));
  trace t ctx "send:pre-prepare" (Printf.sprintf "seq=%d view=%d batch=%d" seq t.view batch);
  (match t.byz with
  | Equivocating_primary ->
      (* Send block A to the first half and block B to the second; pad
         with a null request so the blocks differ even for batch = 1. *)
      let reqs_b = List.rev reqs @ [ View_change.null_request ] in
      let n = num_replicas t in
      for r = 0 to n - 1 do
        let payload = if r < n / 2 then reqs else reqs_b in
        send t ctx ~dst:r (Types.Pre_prepare { seq; view = t.view; reqs = payload })
      done
  | _ -> broadcast_replicas t ctx (Types.Pre_prepare { seq; view = t.view; reqs }))

(* ------------------------------------------------------------------ *)
(* Fast path: pre-prepare -> sign-share -> full-commit-proof *)

and on_pre_prepare t ctx ~seq ~view ~reqs =
  let config = cfg t in
  let sl = slot t seq in
  if
    Int.equal view t.view
    && (not t.in_view_change)
    && (match sl.pp with Some (v, _, _) -> not (Int.equal v view) | None -> true)
    && seq > t.ls
    && seq <= t.ls + config.Config.win
  then begin
    (* Authenticate the client operations (null/view-change fillers are
       locally constructed and carry no signature). *)
    let real_reqs = List.filter (fun (r : Types.request) -> r.client >= 0) reqs in
    Engine.charge ctx (Cost_model.Tally.note "rsa_verify" (List.length real_reqs * Cost_model.rsa_verify));
    if List.for_all (fun r -> Keys.verify_request (keys t) r) real_reqs then begin
      Engine.charge ctx (Cost_model.Tally.note "hash" (Cost_model.sha256 (Types.requests_bytes reqs)));
      let h = Types.block_hash ~seq ~view ~reqs in
      sl.pp <- Some (view, reqs, h);
      sl.pp_at <- Engine.ctx_now ctx;
      List.iter (mark_outstanding t) real_reqs;
      if not sl.sent_sign_share then begin
        sl.sent_sign_share <- true;
        Engine.charge ctx (Cost_model.Tally.note "share_sign" (2 * Cost_model.bls_share_sign));
        let sigma_share = Threshold.share_sign t.my.Keys.sigma_sk ~msg:h in
        let tau_share = Threshold.share_sign t.my.Keys.tau_sk ~msg:h in
        let sigma_share, tau_share =
          match t.byz with
          | Corrupt_shares ->
              ( Threshold.forge_invalid_share ~signer:(t.id + 1),
                Threshold.forge_invalid_share ~signer:(t.id + 1) )
          | _ -> (sigma_share, tau_share)
        in
        sl.highest_preprepare <- Some (view, sigma_share, reqs);
        (* The sign share is a promise: persist the accepted block
           before the network can observe it. *)
        wal_log t ctx
          (Sbft_store.Wal.Accepted_pre_prepare { seq; view; ops = wal_ops reqs });
        wal_sync t ctx;
        List.iter
          (fun c ->
            send t ctx ~dst:c
              (Types.Sign_share { seq; view; sigma_share; tau_share; replica = t.id }))
          (Collectors.slow_path_collectors ~config ~view ~seq)
      end;
      (* A commit proof may have arrived before the block. *)
      try_pending_proofs t ctx sl
    end
  end
  else if seq > t.ls + config.Config.win then maybe_state_transfer t ctx seq

and on_sign_share t ctx ~seq ~view ~sigma_share ~tau_share ~replica =
  let config = cfg t in
  if Int.equal view t.view && seq > t.ls && seq <= t.ls + config.Config.win then begin
    let sl = slot t seq in
    if not (stash_mem sl.sigma_shares replica) then begin
      stash_add sl.sigma_shares replica sigma_share;
      stash_add sl.tau_shares replica tau_share;
      collector_check t ctx sl ~view
    end
  end

and collector_check t ctx sl ~view =
  let config = cfg t in
  let seq = sl.seq in
  let fast_collectors = Collectors.c_collectors ~config ~view ~seq in
  let slow_collectors = Collectors.slow_path_collectors ~config ~view ~seq in
  (* Fast path: combine σ when 3f+c+1 shares arrived. *)
  (match Collectors.rank fast_collectors t.id with
  | Some rank when config.Config.fast_path -> (
      if
        sl.sigma_shares.count >= Config.sigma_threshold config
        && (not sl.fast_sent)
        && sl.committed = None
      then
        match sl.pp with
        | None -> () (* wait for the block to know h *)
        | Some (v, _, h) when Int.equal v view ->
            sl.fast_sent <- true;
            let act ctx =
              (* The view guard kills zombie firings: a view change
                 resets the slot's share stashes in place, so a
                 staggered callback armed in the old view would
                 otherwise combine an empty (or refilling) stash. *)
              if sl.committed = None && sl.pending_fast = None && Int.equal t.view view
              then begin
                Sanitizer.check_quorum t.san Sanitizer.Sigma
                  ~count:sl.sigma_shares.count;
                let k = Config.sigma_threshold config in
                let group = config.Config.use_group_sig && not t.failures_observed in
                let sigma_opt, bad =
                  combine_shares t ctx ~scheme:(keys t).Keys.sigma ~k ~group ~msg:h
                    (List.map snd sl.sigma_shares.items)
                in
                stash_set sl.sigma_shares (evict_bad bad sl.sigma_shares.items);
                match sigma_opt with
                | Some sigma ->
                    trace t ctx "send:full-commit-proof" (Printf.sprintf "seq=%d" seq);
                    broadcast_replicas t ctx
                      (Types.Full_commit_proof { seq; view; sigma })
                | None ->
                    (* Invalid shares present: retry when more arrive. *)
                    t.failures_observed <- true;
                    sl.fast_sent <- false
              end
            in
            let stagger = rank * config.Config.collector_stagger in
            if stagger = 0 then act ctx
            else ignore (set_replica_timer t ~after:stagger act)
        | Some _ -> ())
  | _ -> ());
  (* Slow path trigger: 2f+c+1 τ shares, after the fast-path timeout
     (immediately when the fast path is disabled).  The primary is the
     last-ranked fallback collector (§V-E). *)
  match Collectors.rank slow_collectors t.id with
  | None -> ()
  | Some rank -> (
      if
        sl.tau_shares.count >= Config.tau_threshold config
        && (not sl.prepare_sent)
        && sl.committed = None
      then begin
        match sl.pp with
        | None -> ()
        | Some (v, _, h) when Int.equal v view ->
            sl.prepare_sent <- true;
            (* Adaptive fallback timer: wait about twice the recently
               observed fast-path completion time, clamped to the
               configured maximum. *)
            let adaptive =
              min config.Config.fast_path_timeout
                (max (Engine.ms 5) (int_of_float (2.0 *. t.fast_eta)))
            in
            let wait =
              (if config.Config.fast_path then adaptive else 0)
              + (rank * config.Config.collector_stagger)
            in
            let act ctx =
              (* Give up on the fast path only if no proof emerged.
                 The view guard matches the σ collector above: entering
                 a new view stash-resets this slot, so a fallback timer
                 armed in the old view must not fire into it. *)
              if sl.committed = None && sl.pending_fast = None && Int.equal t.view view
              then begin
                if config.Config.fast_path then t.failures_observed <- true;
                Sanitizer.check_quorum t.san Sanitizer.Tau
                  ~count:sl.tau_shares.count;
                let k = Config.tau_threshold config in
                let tau_opt, bad =
                  combine_shares t ctx ~scheme:(keys t).Keys.tau ~k ~group:false
                    ~msg:h
                    (List.map snd sl.tau_shares.items)
                in
                stash_set sl.tau_shares (evict_bad bad sl.tau_shares.items);
                match tau_opt with
                | Some tau ->
                    trace t ctx "send:prepare" (Printf.sprintf "seq=%d" seq);
                    broadcast_replicas t ctx (Types.Prepare { seq; view; tau })
                | None -> sl.prepare_sent <- false
              end
            in
            if wait = 0 then act ctx
            else sl.fast_timer <- Some (set_replica_timer t ~after:wait act)
        | Some _ -> ()
      end)

and on_full_commit_proof t ctx ~seq ~view ~sigma =
  let sl = slot t seq in
  if sl.committed = None then begin
    match sl.pp with
    | Some (v, reqs, h) when Int.equal v view ->
        Engine.charge ctx (Cost_model.Tally.note "proof_verify" Cost_model.bls_verify);
        if Threshold.verify (keys t).Keys.sigma ~msg:h sigma then begin
          sl.fast_cert <- Some (sigma, view, reqs);
          commit t ctx sl ~reqs ~view ~fast:true
            ~cert:(Sbft_store.Block_store.Fast (Threshold.signature_bytes sigma))
        end
    | _ ->
        (* Proof before block: stash it and fetch the block. *)
        sl.pending_fast <- Some (view, sigma);
        request_block t ctx seq
  end

(* ------------------------------------------------------------------ *)
(* Linear-PBFT path: prepare -> commit -> full-commit-proof-slow *)

and on_prepare t ctx ~seq ~view ~tau =
  let config = cfg t in
  if Int.equal view t.view && seq > t.ls && seq <= t.ls + config.Config.win then begin
    let sl = slot t seq in
    if not sl.sent_commit then begin
      match sl.pp with
      | Some (v, reqs, h) when Int.equal v view ->
          Engine.charge ctx (Cost_model.Tally.note "proof_verify" Cost_model.bls_verify);
          if Threshold.verify (keys t).Keys.tau ~msg:h tau then begin
            sl.sent_commit <- true;
            sl.prepare_tau <- Some tau;
            sl.highest_prepare <- Some (view, tau, reqs);
            wal_log t ctx
              (Sbft_store.Wal.Accepted_prepare
                 { seq; view; tau = Threshold.signature_bytes tau });
            wal_sync t ctx;
            Engine.charge ctx (Cost_model.Tally.note "share_sign" Cost_model.bls_share_sign);
            let share =
              match t.byz with
              | Corrupt_shares -> Threshold.forge_invalid_share ~signer:(t.id + 1)
              | _ ->
                  Threshold.share_sign t.my.Keys.tau_sk ~msg:(Types.tau2_message tau)
            in
            let collectors = Collectors.slow_path_collectors ~config ~view ~seq in
            List.iter
              (fun c -> send t ctx ~dst:c (Types.Commit { seq; view; share }))
              collectors
          end
      | _ -> request_block t ctx seq
    end
  end

and on_commit t ctx ~seq ~view ~share =
  let config = cfg t in
  if Int.equal view t.view && seq > t.ls && seq <= t.ls + config.Config.win then begin
    let sl = slot t seq in
    if
      (not (stash_mem sl.commit_shares share.Threshold.signer))
      && not sl.slow_sent
    then begin
      stash_add sl.commit_shares share.Threshold.signer share;
      if sl.commit_shares.count >= Config.tau_threshold config then begin
        match sl.prepare_tau with
        | Some tau when not sl.slow_sent ->
            sl.slow_sent <- true;
            Sanitizer.check_quorum t.san Sanitizer.Tau
              ~count:sl.commit_shares.count;
            let k = Config.tau_threshold config in
            let tau_tau_opt, bad =
              combine_shares t ctx ~scheme:(keys t).Keys.tau ~k ~group:false
                ~msg:(Types.tau2_message tau)
                (List.map snd sl.commit_shares.items)
            in
            stash_set sl.commit_shares (evict_bad bad sl.commit_shares.items);
            (match tau_tau_opt with
            | Some tau_tau ->
                trace t ctx "send:full-commit-proof-slow" (Printf.sprintf "seq=%d" seq);
                broadcast_replicas t ctx
                  (Types.Full_commit_proof_slow { seq; view; tau; tau_tau })
            | None -> sl.slow_sent <- false)
        | _ -> ()
      end
    end
  end

and on_full_commit_proof_slow t ctx ~seq ~view ~tau ~tau_tau =
  let sl = slot t seq in
  if sl.committed = None then begin
    match sl.pp with
    | Some (v, reqs, h) when Int.equal v view ->
        Engine.charge ctx (Cost_model.Tally.note "proof_verify" (2 * Cost_model.bls_verify));
        if
          Threshold.verify (keys t).Keys.tau ~msg:h tau
          && Threshold.verify (keys t).Keys.tau ~msg:(Types.tau2_message tau) tau_tau
        then begin
          sl.slow_cert <- Some (tau, tau_tau, view, reqs);
          commit t ctx sl ~reqs ~view ~fast:false
            ~cert:
              (Sbft_store.Block_store.Slow
                 {
                   tau = Threshold.signature_bytes tau;
                   tau_tau = Threshold.signature_bytes tau_tau;
                 })
        end
    | _ ->
        sl.pending_slow <- Some (view, tau, tau_tau);
        request_block t ctx seq
  end

and try_pending_proofs t ctx sl =
  (match sl.pending_fast with
  | Some (view, sigma) when sl.committed = None ->
      sl.pending_fast <- None;
      on_full_commit_proof t ctx ~seq:sl.seq ~view ~sigma
  | _ -> ());
  match sl.pending_slow with
  | Some (view, tau, tau_tau) when sl.committed = None ->
      sl.pending_slow <- None;
      on_full_commit_proof_slow t ctx ~seq:sl.seq ~view ~tau ~tau_tau
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Commit and in-order execution *)

and commit t ctx sl ~reqs ~view ~fast ~cert =
  if sl.committed = None then begin
    Sanitizer.record_commit t.san ~seq:sl.seq ~view
      ~digest:(Types.block_hash ~seq:sl.seq ~view ~reqs);
    sl.committed <- Some reqs;
    (match sl.fast_timer with Some tm -> Engine.cancel_timer tm | None -> ());
    t.n_committed <- t.n_committed + 1;
    if fast then t.n_fast <- t.n_fast + 1 else t.n_slow <- t.n_slow + 1;
    (* Network profiling for the adaptive fallback timer. *)
    (if fast && sl.pp_at > 0 then begin
       let sample = float_of_int (Engine.ctx_now ctx - sl.pp_at) in
       t.fast_eta <- (0.9 *. t.fast_eta) +. (0.1 *. sample)
     end
     else if not fast then
       t.fast_eta <-
         Float.min
           (float_of_int (cfg t).Config.fast_path_timeout)
           (t.fast_eta *. 1.25));
    note_progress t ctx;
    trace t ctx "commit"
      (Printf.sprintf "seq=%d view=%d path=%s" sl.seq view (if fast then "fast" else "slow"));
    let entry =
      {
        Sbft_store.Block_store.seq = sl.seq;
        view;
        ops =
          List.map
            (fun (r : Types.request) ->
              { Sbft_store.Block_store.client = r.client; timestamp = r.timestamp; op = r.op })
            reqs;
        cert;
      }
    in
    Engine.charge ctx (Cost_model.Tally.note "persist" (Cost_model.persist_block (Sbft_store.Block_store.entry_size entry)));
    Sbft_store.Block_store.add t.blocks entry;
    wal_log t ctx (Sbft_store.Wal.Commit_cert { seq = sl.seq; view; fast });
    (* Fast-path checkpointing rule (§V-F). *)
    if fast then begin
      let candidate = sl.seq - Config.active_window (cfg t) in
      if candidate > t.ls then t.ls <- candidate
    end;
    try_execute t ctx;
    if is_primary t then try_propose t ctx
  end

and try_execute t ctx =
  let config = cfg t in
  let continue = ref true in
  while !continue do
    let next = last_executed t + 1 in
    match Hashtbl.find_opt t.slots next with
    | Some ({ committed = Some reqs; executed = false; _ } as sl) -> begin
        Sanitizer.record_execute t.san ~seq:next;
        sl.executed <- true;
        Engine.charge ctx (Cost_model.Tally.note "exec" (t.env.exec_cost reqs));
        (* Exactly-once execution: a request re-proposed across a view
           change may appear in two committed blocks; the second
           occurrence deterministically degrades to a no-op (every
           replica shares the same client table state). *)
        let is_duplicate (r : Types.request) =
          r.client >= 0
          &&
          match Hashtbl.find_opt t.client_table r.client with
          | Some (ts, _, _, _) -> ts >= r.timestamp
          | None -> false
        in
        let ops =
          List.map
            (fun (r : Types.request) -> if is_duplicate r then "" else r.op)
            reqs
        in
        let outputs = Sbft_store.Auth_store.execute_block t.store ~seq:next ~ops in
        let digest = Sbft_store.Auth_store.digest t.store in
        t.n_executed_blocks <- t.n_executed_blocks + 1;
        note_progress t ctx;
        (* Record replies for retransmission handling. *)
        List.iteri
          (fun index ((r : Types.request), value) ->
            clear_outstanding t r;
            if r.client >= 0 then begin
              match Hashtbl.find_opt t.client_table r.client with
              | Some (ts, _, _, _) when ts >= r.timestamp -> ()
              | _ ->
                  Hashtbl.replace t.client_table r.client (r.timestamp, value, next, index);
                  wal_log t ctx
                    (Sbft_store.Wal.Client_row
                       {
                         client = r.client;
                         timestamp = r.timestamp;
                         value;
                         seq = next;
                         index;
                       })
            end)
          (List.combine reqs outputs);
        (* Periodic checkpoint snapshot for state transfer.  The client
           table rides along: resuming dedup is part of resuming state. *)
        if next mod Config.checkpoint_interval config = 0 then
          Sbft_store.Block_store.set_checkpoint t.blocks ~seq:next
            ~snapshot:(Sbft_store.Auth_store.delayed_snapshot t.store)
            ~table:(client_table_rows t);
        (* Group commit: one fsync covers the block's rows and any
           commit certificates buffered earlier in this handler, before
           the execution results go on the wire. *)
        wal_sync t ctx;
        (* sign-state: every block when execution acks are on, otherwise
           only at checkpoint boundaries. *)
        if config.Config.execution_acks || next mod Config.checkpoint_interval config = 0
        then begin
          Engine.charge ctx (Cost_model.Tally.note "share_sign" Cost_model.bls_share_sign);
          (* A Byzantine replica may announce a bogus digest — its share
             is then a valid signature on the wrong message and lands in
             a separate bucket at the collector. *)
          let digest =
            match t.byz with
            | Wrong_exec_digest -> Sbft_crypto.Sha256.digest "bogus-state"
            | _ -> digest
          in
          let share =
            match t.byz with
            | Corrupt_shares -> Threshold.forge_invalid_share ~signer:(t.id + 1)
            | _ ->
                Threshold.share_sign t.my.Keys.pi_sk
                  ~msg:(Types.pi_message ~seq:next ~digest)
          in
          List.iter
            (fun e ->
              send t ctx ~dst:e (Types.Sign_state { seq = next; digest; share }))
            (Collectors.e_collectors ~config ~view:0 ~seq:next
            @ [ primary_of t t.view ])
        end;
        (* Direct f+1 replies when execution acks are off. *)
        if not config.Config.execution_acks then
          List.iteri
            (fun _index ((r : Types.request), value) ->
              if r.client >= 0 then begin
                (* A re-proposed duplicate degrades to a no-op above, so
                   [value] would be [""] here; answer from the client
                   table (the original execution's result) instead, so
                   every replica replies with the same bytes and the
                   client's f+1 match cannot mix "" with real values. *)
                let value =
                  match Hashtbl.find_opt t.client_table r.client with
                  | Some (ts, v, _, _) when Int.equal ts r.timestamp -> v
                  | _ -> value
                in
                (* Direct replies are signed server messages ([31]);
                   this per-request signing cost is exactly what
                   ingredient 3 removes. *)
                Engine.charge ctx (Cost_model.Tally.note "rsa_sign" Cost_model.rsa_sign);
                send t ctx ~dst:r.client
                  (Types.Reply
                     {
                       view = t.view;
                       replica = t.id;
                       client = r.client;
                       timestamp = r.timestamp;
                       seq = next;
                       value;
                       signature = "";
                     })
              end)
            (List.combine reqs outputs);
        (* The E-collector may have combined π before executing. *)
        maybe_send_acks t ctx sl
      end
    | _ -> continue := false
  done;
  if is_primary t then try_propose t ctx

(* ------------------------------------------------------------------ *)
(* Execution collection: sign-state -> full-execute-proof -> execute-ack *)

and on_sign_state t ctx ~seq ~digest ~share =
  let config = cfg t in
  let sl = slot t seq in
  if not sl.exec_proof_sent then begin
    let bucket =
      match Hashtbl.find_opt sl.pi_shares digest with
      | Some b -> b
      | None ->
          let b = stash_make () in
          Hashtbl.replace sl.pi_shares digest b;
          b
    in
    if not (stash_mem bucket share.Threshold.signer) then begin
      stash_add bucket share.Threshold.signer share;
      if bucket.count >= Config.pi_threshold config then begin
        let e_list =
          Collectors.e_collectors ~config ~view:0 ~seq @ [ primary_of t t.view ]
        in
        let rank = Option.value (Collectors.rank e_list t.id) ~default:0 in
        let act ctx =
          if (not sl.exec_proof_sent) && not (Hashtbl.mem t.checkpoint_pis seq) then begin
            Sanitizer.check_quorum t.san Sanitizer.Pi ~count:bucket.count;
            let k = Config.pi_threshold config in
            let pi_opt, bad =
              combine_shares t ctx ~scheme:(keys t).Keys.pi ~k ~group:false
                ~msg:(Types.pi_message ~seq ~digest)
                (List.map snd bucket.items)
            in
            stash_set bucket (evict_bad bad bucket.items);
            match pi_opt with
            | Some pi ->
                sl.exec_proof_sent <- true;
                Hashtbl.replace t.checkpoint_pis seq (pi, digest);
                wal_log t ctx
                  (Sbft_store.Wal.Stable_checkpoint
                     { seq; digest; pi = Threshold.signature_bytes pi });
                wal_sync t ctx;
                trace t ctx "send:full-execute-proof" (Printf.sprintf "seq=%d" seq);
                broadcast_replicas t ctx (Types.Full_execute_proof { seq; digest; pi });
                maybe_send_acks t ctx sl
            | None -> ()
          end
        in
        let stagger = rank * config.Config.collector_stagger in
        if stagger = 0 then act ctx
        else ignore (set_replica_timer t ~after:stagger act)
      end
    end
  end

and maybe_send_acks t ctx sl =
  (* E-collector sends per-client acknowledgements once it both holds
     π(d) and has executed the block itself (proofs come from its own
     authenticated store). *)
  let config = cfg t in
  if
    config.Config.execution_acks && sl.exec_proof_sent && sl.executed
    && not sl.acks_sent
  then begin
    match (Hashtbl.find_opt t.checkpoint_pis sl.seq, sl.committed) with
    | Some (pi, digest), Some reqs ->
        sl.acks_sent <- true;
        List.iteri
          (fun index (r : Types.request) ->
            if r.client >= 0 then begin
              match
                ( Sbft_store.Auth_store.prove_op t.store ~seq:sl.seq ~index,
                  Sbft_store.Auth_store.output_at t.store ~seq:sl.seq ~index )
              with
              | Some proof, Some value ->
                  Engine.charge ctx (Cost_model.Tally.note "merkle" (Cost_model.merkle_prove (List.length reqs)));
                  send t ctx ~dst:r.client
                    (Types.Execute_ack
                       {
                         view = t.view;
                         seq = sl.seq;
                         index;
                         client = r.client;
                         timestamp = r.timestamp;
                         value;
                         state_digest = digest;
                         pi;
                         proof;
                       })
              | _ -> ()
            end)
          reqs
    | _ -> ()
  end

and on_full_execute_proof t ctx ~seq ~digest ~pi ~src =
  Engine.charge ctx (Cost_model.Tally.note "proof_verify" Cost_model.bls_verify);
  if Threshold.verify (keys t).Keys.pi ~msg:(Types.pi_message ~seq ~digest) pi then begin
    Hashtbl.replace t.checkpoint_pis seq (pi, digest);
    wal_log t ctx
      (Sbft_store.Wal.Stable_checkpoint
         { seq; digest; pi = Threshold.signature_bytes pi });
    if seq > t.stable then begin
      t.stable <- seq;
      let candidate = seq - Config.active_window (cfg t) in
      if candidate > t.ls then t.ls <- candidate;
      garbage_collect t
    end;
    note_progress t ctx;
    (* Fell too far behind the certified execution frontier?  [src]
       certified the state, so probe it first; retries rotate. *)
    if seq > last_executed t + (cfg t).Config.win then
      start_state_transfer t ctx ~target:seq ~first_peer:(Some src)
  end

and garbage_collect t =
  let horizon = t.stable - (cfg t).Config.win in
  if horizon > 0 then begin
    let stale =
      List.filter (fun s -> s < horizon)
        (Det.sorted_keys ~compare:Int.compare t.slots)
    in
    List.iter (Hashtbl.remove t.slots) stale;
    let stale_pis =
      List.filter (fun s -> s < horizon)
        (Det.sorted_keys ~compare:Int.compare t.checkpoint_pis)
    in
    List.iter (Hashtbl.remove t.checkpoint_pis) stale_pis;
    Sanitizer.prune_below t.san ~seq:horizon;
    Sbft_store.Block_store.prune_below t.blocks horizon;
    Sbft_store.Auth_store.gc_below t.store ~seq:horizon;
    if (cfg t).Config.durable_wal then
      Sbft_store.Wal.truncate_below t.wal ~seq:horizon
  end

(* Read-only queries (§IV): answered by one replica against its latest
   π-certified state; the client verifies a Merkle proof against the
   threshold-signed digest, so no f+1 agreement is needed. *)
and on_query t ctx ~client ~qid ~query =
  let seq = last_executed t in
  match Hashtbl.find_opt t.checkpoint_pis seq with
  | Some (pi, digest) when String.equal digest (Sbft_store.Auth_store.digest t.store)
    -> (
      match Sbft_store.Auth_store.prove_query t.store ~key:query with
      | Some (value, proof) ->
          Engine.charge ctx (Cost_model.Tally.note "merkle" (Cost_model.merkle_prove 16));
          send t ctx ~dst:client
            (Types.Query_resp { client; qid; seq; digest; pi; value; proof })
      | None -> ())
  | _ -> () (* no certified state to answer from; the client retries *)

(* ------------------------------------------------------------------ *)
(* Block fetch and state transfer *)

and request_block t ctx seq =
  send t ctx ~dst:(primary_of t t.view) (Types.Get_block { seq; replica = t.id })

and on_get_block t ctx ~seq ~replica =
  match Hashtbl.find_opt t.slots seq with
  | Some { pp = Some (view, reqs, _); _ } ->
      send t ctx ~dst:replica (Types.Block_resp { seq; view; reqs })
  | _ -> ()

and on_block_resp t ctx ~seq ~view ~reqs =
  let sl = slot t seq in
  if sl.pp = None then begin
    Engine.charge ctx (Cost_model.Tally.note "hash" (Cost_model.sha256 (Types.requests_bytes reqs)));
    let h = Types.block_hash ~seq ~view ~reqs in
    sl.pp <- Some (view, reqs, h);
    try_pending_proofs t ctx sl
  end

(* One Get_state in flight at a time.  Each (re)send goes to the next
   peer in a rotation that starts at a random offset, and arms a retry
   timer with exponential backoff; the pending record is cleared when a
   response shows we caught up (or that nobody is ahead), and a failed
   response rotates to the next peer immediately. *)
and send_get_state t ctx st =
  let n = num_replicas t in
  let peer = (t.id + 1 + ((st.st_base + st.st_attempt) mod (n - 1))) mod n in
  send t ctx ~dst:peer (Types.Get_state { upto = st.st_target; replica = t.id });
  let config = cfg t in
  let backoff =
    config.Config.state_transfer_retry * (1 lsl min 6 st.st_attempt)
  in
  (match st.st_timer with Some tm -> Engine.cancel_timer tm | None -> ());
  st.st_timer <-
    Some
      (set_replica_timer t ~after:backoff (fun ctx ->
           match t.st with
           | Some st' when st' == st ->
               if st.st_target > last_executed t then begin
                 st.st_attempt <- st.st_attempt + 1;
                 send_get_state t ctx st
               end
               else clear_state_transfer t
           | _ -> ()))

and clear_state_transfer t =
  match t.st with
  | Some st ->
      (match st.st_timer with Some tm -> Engine.cancel_timer tm | None -> ());
      t.st <- None
  | None -> ()

and start_state_transfer t ctx ~target ~first_peer =
  match t.st with
  | Some st -> if target > st.st_target then st.st_target <- target
  | None ->
      let n = num_replicas t in
      let st =
        {
          st_target = target;
          st_base =
            (match first_peer with
            | Some p -> (p - t.id - 1 + n) mod n mod (n - 1)
            | None -> Rng.int (Engine.rng t.env.engine) (n - 1));
          st_attempt = 0;
          st_timer = None;
        }
      in
      t.st <- Some st;
      send_get_state t ctx st

(* A state-transfer response that failed validation: rotate to the next
   peer and retry immediately instead of giving up forever. *)
and state_transfer_failed t ctx =
  t.failures_observed <- true;
  match t.st with
  | Some st ->
      st.st_attempt <- st.st_attempt + 1;
      send_get_state t ctx st
  | None -> ()

and maybe_state_transfer t ctx seq =
  if seq > last_executed t + (cfg t).Config.win then
    start_state_transfer t ctx ~target:seq ~first_peer:None

and on_get_state t ctx ~upto ~replica =
  (* A State_resp carries a full snapshot plus a block suffix — the
     largest message in the protocol — so serving one is paced per
     requester: a quarter of the requester's own retry interval, which
     honest retries (rotation + backoff) never beat but a Get_state
     flood does.  A dropped response heals through the ordinary retry
     timer on the requesting side. *)
  let now = Engine.ctx_now ctx in
  let allow =
    match Hashtbl.find_opt t.st_served replica with
    | Some at -> now - at >= (cfg t).Config.state_transfer_retry / 4
    | None -> true
  in
  if allow then begin
    Hashtbl.replace t.st_served replica now;
    (* Serve blocks after [from_seq] straight from the persisted ledger
       (contiguous run only: the receiver executes in order anyway).
       Every served block carries its commit certificate so the receiver
       can verify it before adopting. *)
    let suffix_blocks ~from_seq =
      let blocks = ref [] in
      let stop = ref false in
      for s = from_seq + 1 to last_executed t do
        if not !stop then
          match Sbft_store.Block_store.find t.blocks s with
          | Some e ->
              let reqs =
                List.map
                  (fun (o : Sbft_store.Block_store.op) ->
                    { Types.client = o.client; timestamp = o.timestamp; op = o.op; signature = "" })
                  e.Sbft_store.Block_store.ops
              in
              let cert =
                match e.Sbft_store.Block_store.cert with
                | Sbft_store.Block_store.Fast sigma ->
                    Types.Cert_fast (Field.of_bytes sigma)
                | Sbft_store.Block_store.Slow { tau; tau_tau } ->
                    Types.Cert_slow (Field.of_bytes tau, Field.of_bytes tau_tau)
              in
              blocks := (s, e.Sbft_store.Block_store.view, reqs, cert) :: !blocks
          | None -> stop := true
      done;
      List.rev !blocks
    in
    let certified_checkpoint =
      match Sbft_store.Block_store.checkpoint t.blocks with
      | Some { Sbft_store.Block_store.cp_seq = snap_seq; cp_snapshot; cp_table } -> (
          match Hashtbl.find_opt t.checkpoint_pis snap_seq with
          | Some (pi, digest) -> Some (snap_seq, cp_snapshot, cp_table, pi, digest)
          | None -> None)
      | None -> None
    in
    match certified_checkpoint with
    | Some (snap_seq, cp_snapshot, cp_table, pi, digest) ->
        send t ctx ~dst:replica
          (Types.State_resp
             {
               snapshot = Lazy.force cp_snapshot;
               snap_seq;
               pi;
               digest;
               blocks = suffix_blocks ~from_seq:snap_seq;
               table = cp_table;
             })
    | None ->
        (* No certified checkpoint (early in a run, or the π for the
           latest snapshot never arrived): answer blocks-only so a lagging
           replica still catches up.  snap_seq = 0 marks the degraded
           form; each block is individually re-checked by the receiver's
           ordinary commit path semantics (executed strictly in order). *)
        let blocks = suffix_blocks ~from_seq:0 in
        if blocks <> [] then
          send t ctx ~dst:replica
            (Types.State_resp
               {
                 snapshot = "";
                 snap_seq = 0;
                 pi = Field.zero;
                 digest = "";
                 blocks = List.filter (fun (s, _, _, _) -> s <= upto) blocks;
                 table = [];
               })
  end

(* Adopt a state-transferred block suffix.  Every block must carry a
   commit certificate that verifies against its hash — a block that
   fails the check aborts adoption and returns [false] so the caller can
   rotate to another peer.  Verified blocks go through the ordinary
   [commit] path, so they are persisted to this replica's own ledger and
   WAL exactly like locally agreed blocks. *)
and adopt_block_suffix t ctx blocks =
  let ok = ref true in
  List.iter
    (fun (s, view, reqs, cert) ->
      if !ok && Int.equal s (last_executed t + 1) then begin
        let sl = slot t s in
        if sl.committed = None then begin
          let h = Types.block_hash ~seq:s ~view ~reqs in
          match cert with
          | Types.Cert_fast sigma ->
              Engine.charge ctx
                (Cost_model.Tally.note "proof_verify" Cost_model.bls_verify);
              if Threshold.verify (keys t).Keys.sigma ~msg:h sigma then begin
                sl.fast_cert <- Some (sigma, view, reqs);
                commit t ctx sl ~reqs ~view ~fast:true
                  ~cert:
                    (Sbft_store.Block_store.Fast (Threshold.signature_bytes sigma))
              end
              else ok := false
          | Types.Cert_slow (tau, tau_tau) ->
              Engine.charge ctx
                (Cost_model.Tally.note "proof_verify" (2 * Cost_model.bls_verify));
              if
                Threshold.verify (keys t).Keys.tau ~msg:h tau
                && Threshold.verify (keys t).Keys.tau
                     ~msg:(Types.tau2_message tau) tau_tau
              then begin
                sl.slow_cert <- Some (tau, tau_tau, view, reqs);
                commit t ctx sl ~reqs ~view ~fast:false
                  ~cert:
                    (Sbft_store.Block_store.Slow
                       {
                         tau = Threshold.signature_bytes tau;
                         tau_tau = Threshold.signature_bytes tau_tau;
                       })
              end
              else ok := false
        end
        else try_execute t ctx
      end)
    blocks;
  !ok

(* Settle an in-flight state transfer after processing a response.
   [ok = false] means the peer provably misbehaved (bad certificate or
   digest): rotate to the next peer immediately.  A valid but
   insufficient answer neither completes nor cancels the transfer — the
   retry timer armed by the last [send_get_state] rotates and re-probes
   with backoff, so a lagging (or Byzantine) peer cannot cancel the
   probe by answering short. *)
and state_transfer_settle t ctx ~ok =
  if not ok then state_transfer_failed t ctx
  else
    match t.st with
    | Some st when st.st_target <= last_executed t -> clear_state_transfer t
    | Some _ | None -> ()

and on_state_resp t ctx ~snapshot ~snap_seq ~pi ~digest ~blocks ~table =
  if snap_seq = 0 then begin
    (* Blocks-only answer from a peer with no certified checkpoint.
       Only accepted while a state transfer is outstanding (an
       unsolicited one is dropped), and every block is verified against
       its commit certificate before adoption. *)
    if t.st <> None then
      let ok = adopt_block_suffix t ctx blocks in
      state_transfer_settle t ctx ~ok
  end
  else if snap_seq > last_executed t then begin
    Engine.charge ctx (Cost_model.Tally.note "proof_verify" Cost_model.bls_verify);
    if Threshold.verify (keys t).Keys.pi ~msg:(Types.pi_message ~seq:snap_seq ~digest) pi
    then begin
      Engine.charge ctx (Cost_model.Tally.note "hash" (Cost_model.sha256 (String.length snapshot)));
      (* Stage-then-swap: the snapshot is parsed and digest-checked in
         scratch storage and installed only when it matches the
         π-certified digest, so a corrupt payload can never clobber the
         live store (it previously loaded first and checked after). *)
      match Sbft_store.Auth_store.load_snapshot_checked t.store snapshot ~expect:digest with
      | Error _ -> state_transfer_failed t ctx
      | Ok () ->
          trace t ctx "state-transfer" (Printf.sprintf "to=%d" snap_seq);
          Sanitizer.record_state_transfer t.san ~seq:snap_seq;
          if snap_seq > t.stable then t.stable <- snap_seq;
          if snap_seq > t.ls then t.ls <- snap_seq;
          Hashtbl.replace t.checkpoint_pis snap_seq (pi, digest);
          (* Adopt the sender's client table as of the snapshot: the
             snapshot's state already reflects those executions, and
             without the rows this replica would re-execute retried
             requests (at-most-once violation) once it resumes. *)
          Hashtbl.reset t.client_table;
          List.iter
            (fun (ce : Sbft_store.Block_store.client_entry) ->
              Hashtbl.replace t.client_table ce.ce_client
                (ce.ce_timestamp, ce.ce_value, ce.ce_seq, ce.ce_index))
            table;
          (* Persist the transferred state: the snapshot becomes this
             replica's own durable checkpoint (blocks before it are not
             in our ledger, so recovery must restart from here), and the
             WAL records the certificate + rows. *)
          Sbft_store.Block_store.set_checkpoint t.blocks ~seq:snap_seq
            ~snapshot:(lazy snapshot) ~table;
          Engine.charge ctx
            (Cost_model.Tally.note "persist"
               (Cost_model.persist_block (String.length snapshot)));
          wal_log t ctx
            (Sbft_store.Wal.Stable_checkpoint
               { seq = snap_seq; digest; pi = Threshold.signature_bytes pi });
          List.iter
            (fun (ce : Sbft_store.Block_store.client_entry) ->
              wal_log t ctx
                (Sbft_store.Wal.Client_row
                   {
                     client = ce.ce_client;
                     timestamp = ce.ce_timestamp;
                     value = ce.ce_value;
                     seq = ce.ce_seq;
                     index = ce.ce_index;
                   }))
            table;
          wal_sync t ctx;
          (* Adopt and replay the suffix, verifying each block's commit
             certificate; then settle (complete, keep retrying, or
             rotate on a bad certificate). *)
          let ok = adopt_block_suffix t ctx blocks in
          state_transfer_settle t ctx ~ok
    end
    else state_transfer_failed t ctx
  end
  else
    (* The peer is no further ahead than we are.  If a transfer is still
       outstanding, leave its retry timer to rotate to the next peer —
       clearing here would let a single lagging (or Byzantine) response
       cancel the probe and strand this replica behind. *)
    state_transfer_settle t ctx ~ok:true

(* ------------------------------------------------------------------ *)
(* View change *)

and build_view_change t =
  let config = cfg t in
  if t.byz = Stale_view_change then
    { Types.vc_replica = t.id; vc_view = t.view; vc_ls = 0; vc_checkpoint = None; vc_slots = [] }
  else begin
    let checkpoint =
      if t.stable = 0 then None
      else
        Option.map (fun (pi, d) -> (pi, d)) (Hashtbl.find_opt t.checkpoint_pis t.stable)
    in
    let base = if checkpoint = None then 0 else t.stable in
    let slots = ref [] in
    for s = base + 1 to base + config.Config.win do
      match Hashtbl.find_opt t.slots s with
      | None -> ()
      | Some sl ->
          let slow =
            match sl.slow_cert with
            | Some (tau, tau_tau, view, reqs) ->
                Types.Slow_committed { tau; tau_tau; view; reqs }
            | None -> (
                match sl.highest_prepare with
                | Some (view, tau, reqs) -> Types.Slow_prepared { tau; view; reqs }
                | None -> Types.No_commit)
          in
          let fast =
            match sl.fast_cert with
            | Some (sigma, view, reqs) -> Types.Fast_committed { sigma; view; reqs }
            | None -> (
                match sl.highest_preprepare with
                | Some (view, share, reqs) -> Types.Fast_preprepared { share; view; reqs }
                | None -> Types.No_preprepare)
          in
          if slow <> Types.No_commit || fast <> Types.No_preprepare then
            slots := { Types.slot_seq = s; slow; fast } :: !slots
    done;
    {
      Types.vc_replica = t.id;
      vc_view = t.view;
      vc_ls = base;
      vc_checkpoint = checkpoint;
      vc_slots = List.rev !slots;
    }
  end

and start_view_change t ctx ~target_view =
  if target_view > t.sent_vc_for then begin
    t.sent_vc_for <- target_view;
    t.in_view_change <- true;
    t.failures_observed <- true;
    trace t ctx "view-change" (Printf.sprintf "to=%d" target_view);
    let vc = { (build_view_change t) with Types.vc_view = target_view - 1 } in
    Engine.charge ctx (Cost_model.Tally.note "rsa_sign" Cost_model.rsa_sign);
    (* The vote is a promise not to help the old view: persist it
       before anyone can count it. *)
    wal_log t ctx (Sbft_store.Wal.View_change_started target_view);
    wal_sync t ctx;
    (* Broadcast so that other replicas can join after f+1 complaints. *)
    broadcast_replicas t ctx (Types.View_change vc)
  end

and on_view_change t ctx (vc : Types.view_change) =
  let config = cfg t in
  let target = vc.Types.vc_view + 1 in
  if target <= t.view then begin
    (* Stale complaint — typically a replica that rejoined after losing
       the view change (crash-amnesia or a long partition).  Retransmit
       the self-certifying new-view evidence for our current view so it
       can catch up instead of complaining forever. *)
    match t.last_new_view with
    | Some (v, proofs) when v >= target && not (Int.equal vc.Types.vc_replica t.id) ->
        (* The proof set is 2f+1 view-change messages — without pacing,
           each stale complaint would trigger a large response, a cheap
           amplification vector.  Resend at most once per view per
           complainer, or after a retry interval (so a rejoiner whose
           first copy was lost on a lossy link still recovers). *)
        let now = Engine.ctx_now ctx in
        let allow =
          match Hashtbl.find_opt t.nv_resent vc.Types.vc_replica with
          | Some (v', at) ->
              v > v' || now - at >= (cfg t).Config.state_transfer_retry
          | None -> true
        in
        if allow then begin
          Hashtbl.replace t.nv_resent vc.Types.vc_replica (v, now);
          send t ctx ~dst:vc.Types.vc_replica (Types.New_view { view = v; proofs })
        end
    | _ -> ()
  end
  else begin
    Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
    let tbl =
      match Hashtbl.find_opt t.vc_msgs target with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 16 in
          Hashtbl.replace t.vc_msgs target tbl;
          tbl
    in
    if not (Hashtbl.mem tbl vc.Types.vc_replica) then begin
      Hashtbl.replace tbl vc.Types.vc_replica vc;
      (* Join a view change supported by pi = f+1 distinct replicas:
         at least one is honest, so the complaint is genuine. *)
      let support = Hashtbl.length tbl in
      if support >= Config.pi_threshold config && t.sent_vc_for < target then begin
        Sanitizer.check_quorum t.san Sanitizer.Pi ~count:support;
        start_view_change t ctx ~target_view:target
      end;
      (* The new primary forms the new view at 2f+2c+1 messages. *)
      if
        Int.equal (primary_of t target) t.id
        && support >= Config.quorum_vc config
        && t.view < target
      then begin
        (* Sorted by sender id: which quorum of valid messages the new
           primary keeps must not depend on Hashtbl iteration order. *)
        let msgs = List.map snd (Det.sorted_bindings ~compare:Int.compare tbl) in
        (* Validate, keep a quorum of valid messages. *)
        Engine.charge ctx (Cost_model.Tally.note "proof_verify" (List.length msgs * Cost_model.bls_verify));
        let valid = List.filter (View_change.validate_message ~keys:(keys t)) msgs in
        if List.length valid >= Config.quorum_vc config then begin
          let quorum = List.filteri (fun i _ -> i < Config.quorum_vc config) valid in
          Sanitizer.check_quorum t.san Sanitizer.Vc ~count:(List.length quorum);
          trace t ctx "send:new-view" (Printf.sprintf "view=%d" target);
          broadcast_replicas t ctx (Types.New_view { view = target; proofs = quorum });
          (* Apply our own new-view synchronously.  Entering [target]
             here (rather than waiting for the self-addressed copy to
             drain through the network) latches [t.view], so every
             later view-change arrival for this view takes the cheap
             stale-complaint path above instead of re-validating and
             re-broadcasting the whole proof set — at n = 193 that
             re-formation is O(n^2) signature checks and delays the
             primary's own view entry past the next view-change
             timeout, wedging the cluster in cascading view changes. *)
          on_new_view t ctx ~view:target ~proofs:quorum
        end
      end
    end
  end

and on_new_view t ctx ~view ~proofs =
  let config = cfg t in
  if view > t.view then begin
    (* Every replica validates the proofs and recomputes the safe values
       for itself; the new-view message is self-certifying. *)
    Engine.charge ctx (Cost_model.Tally.note "proof_verify" (List.length proofs * (2 * Cost_model.bls_verify)));
    let valid = List.filter (View_change.validate_message ~keys:(keys t)) proofs in
    if List.length valid >= Config.quorum_vc config then begin
      Sanitizer.check_quorum t.san Sanitizer.Vc ~count:(List.length valid);
      let ls, decisions = View_change.compute ~keys:(keys t) ~new_view:view valid in
      (* Keep the evidence for retransmission to stale complainers. *)
      t.last_new_view <- Some (view, valid);
      enter_view t ctx ~view;
      if ls > last_executed t then maybe_state_transfer t ctx (ls + config.Config.win + 1);
      List.iter
        (fun (seq, decision) ->
          if seq > t.ls then begin
            let sl = slot t seq in
            match decision with
            | View_change.Decide_fast { sigma; reqs; view = pview } ->
                let h = Types.block_hash ~seq ~view:pview ~reqs in
                sl.pp <- Some (pview, reqs, h);
                sl.fast_cert <- Some (sigma, pview, reqs);
                commit t ctx sl ~reqs ~view:pview ~fast:true
                  ~cert:(Sbft_store.Block_store.Fast (Threshold.signature_bytes sigma))
            | View_change.Decide_slow { tau; tau_tau; reqs; view = pview } ->
                let h = Types.block_hash ~seq ~view:pview ~reqs in
                sl.pp <- Some (pview, reqs, h);
                sl.slow_cert <- Some (tau, tau_tau, pview, reqs);
                commit t ctx sl ~reqs ~view:pview ~fast:false
                  ~cert:
                    (Sbft_store.Block_store.Slow
                       {
                         tau = Threshold.signature_bytes tau;
                         tau_tau = Threshold.signature_bytes tau_tau;
                       })
            | (View_change.Adopt _ | View_change.Fill_null)
              when sl.committed = None ->
                (* Adopt as a pre-prepare of the new view. *)
                adopt_pre_prepare t ctx ~seq ~view
                  ~reqs:(View_change.decision_reqs decision)
            | View_change.Adopt _ | View_change.Fill_null -> ()
          end)
        decisions;
      (* The new primary resumes proposing above the reconciled window. *)
      if Int.equal (primary_of t view) t.id then begin
        let top =
          List.fold_left (fun acc (s, _) -> max acc s) ls decisions
        in
        t.next_seq <- max t.next_seq (top + 1);
        try_propose t ctx
      end
    end
  end

and adopt_pre_prepare t ctx ~seq ~view ~reqs =
  let sl = slot t seq in
  let h = Types.block_hash ~seq ~view ~reqs in
  sl.pp <- Some (view, reqs, h);
  sl.sent_sign_share <- true;
  Engine.charge ctx (Cost_model.Tally.note "share_sign" (2 * Cost_model.bls_share_sign));
  let sigma_share = Threshold.share_sign t.my.Keys.sigma_sk ~msg:h in
  let tau_share = Threshold.share_sign t.my.Keys.tau_sk ~msg:h in
  sl.highest_preprepare <- Some (view, sigma_share, reqs);
  wal_log t ctx
    (Sbft_store.Wal.Accepted_pre_prepare { seq; view; ops = wal_ops reqs });
  wal_sync t ctx;
  let config = cfg t in
  List.iter
    (fun c ->
      send t ctx ~dst:c
        (Types.Sign_share { seq; view; sigma_share; tau_share; replica = t.id }))
    (Collectors.slow_path_collectors ~config ~view ~seq)

and enter_view t ctx ~view =
  if view > t.view then begin
    Sanitizer.record_view_entry t.san ~view;
    t.view <- view;
    t.in_view_change <- false;
    t.n_view_changes <- t.n_view_changes + 1;
    t.vc_backoff <- 0;
    wal_log t ctx (Sbft_store.Wal.View_entered view);
    wal_sync t ctx;
    note_progress t ctx;
    Hashtbl.remove t.vc_msgs view;
    (* Fresh view: per-view collection state of open slots resets. *)
    Det.iter_sorted ~compare:Int.compare
      (fun _ sl ->
        if sl.committed = None then begin
          stash_reset sl.sigma_shares;
          stash_reset sl.tau_shares;
          stash_reset sl.commit_shares;
          sl.fast_sent <- false;
          sl.prepare_sent <- false;
          sl.slow_sent <- false;
          sl.sent_sign_share <- false;
          sl.sent_commit <- false;
          sl.prepare_tau <- None
        end)
      t.slots;
    trace t ctx "new-view" (Printf.sprintf "view=%d primary=%d" view (primary_of t view));
    (* Re-drive requests that were in flight when the old view died,
       in (client, timestamp) order: both the primary's pending queue
       and the resend sequence are replay-visible. *)
    let stale =
      List.map snd
        (Det.sorted_bindings
           ~compare:(Det.compare_pair Int.compare Int.compare)
           t.outstanding)
    in
    if is_primary t then
      List.iter
        (fun (r : Types.request) ->
          if not (Hashtbl.mem t.pending_keys (r.Types.client, r.Types.timestamp)) then begin
            Hashtbl.replace t.pending_keys (r.Types.client, r.Types.timestamp) ();
            Queue.push r t.pending
          end)
        stale
    else
      List.iter
        (fun r -> send t ctx ~dst:(primary_of t t.view) (Types.Request r))
        stale;
    if is_primary t then try_propose t ctx
  end

(* ------------------------------------------------------------------ *)
(* Liveness ticker *)

and liveness_tick t ctx =
  let config = cfg t in
  let waiting = Hashtbl.length t.outstanding > 0 || not (Queue.is_empty t.pending) in
  if waiting && not (Engine.is_crashed t.env.engine t.id) then begin
    let timeout = config.Config.view_change_timeout * (1 lsl min 6 t.vc_backoff) in
    if Engine.ctx_now ctx - t.last_progress > timeout then begin
      t.vc_backoff <- t.vc_backoff + 1;
      start_view_change t ctx ~target_view:(max (t.view + 1) (t.sent_vc_for + 1))
    end
  end

let rec arm_liveness t =
  ignore
    (set_replica_timer t
       ~after:((cfg t).Config.view_change_timeout / 2)
       (fun ctx ->
         liveness_tick t ctx;
         arm_liveness t))

let start t ctx =
  note_progress t ctx;
  arm_liveness t

(* ------------------------------------------------------------------ *)
(* Crash-amnesia recovery.

   Called (by {!Cluster}) on a freshly created replica whose durable
   state — WAL + block store — survived a crash that wiped everything
   else.  Reconstruction order matters:

   1. reload the latest durable checkpoint (service state + client
      table as of the snapshot);
   2. WAL pass one: re-enter the highest logged view, restore
      view-change votes and π-certified checkpoints;
   3. replay the persisted ledger above the checkpoint — the client
      table evolves exactly as it did originally, so duplicate
      suppression replays deterministically and the state digest
      matches what the cluster agreed on;
   4. WAL pass two: restore open-slot promises (re-send the identical
      sign share for an accepted pre-prepare; never re-sign after an
      accepted prepare) and any client rows whose blocks were pruned;
   5. rejoin conservatively: probe a peer for missed view changes and
      checkpoints via state transfer, and resume the liveness ticker. *)

let recover t ctx =
  let config = cfg t in
  trace t ctx "recover" "replaying durable state";
  (* A restart is an observed failure: no group-signature optimism. *)
  t.failures_observed <- true;
  (* 1. Durable checkpoint. *)
  (match Sbft_store.Block_store.checkpoint t.blocks with
  | Some { Sbft_store.Block_store.cp_seq; cp_snapshot; cp_table } when cp_seq > 0
    -> (
      let snapshot = Lazy.force cp_snapshot in
      Engine.charge ctx
        (Cost_model.Tally.note "hash" (Cost_model.sha256 (String.length snapshot)));
      match Sbft_store.Auth_store.load_snapshot t.store snapshot with
      | Ok () ->
          Sanitizer.record_state_transfer t.san ~seq:cp_seq;
          if cp_seq > t.ls then t.ls <- cp_seq;
          List.iter
            (fun (ce : Sbft_store.Block_store.client_entry) ->
              Hashtbl.replace t.client_table ce.ce_client
                (ce.ce_timestamp, ce.ce_value, ce.ce_seq, ce.ce_index))
            cp_table
      | Error _ -> () (* corrupt local checkpoint: state transfer heals *))
  | _ -> ());
  (* 2. WAL pass one: views and certified checkpoints. *)
  let records =
    if config.Config.durable_wal then Sbft_store.Wal.replay t.wal else []
  in
  let restored_view = ref 0 in
  List.iter
    (fun (r : Sbft_store.Wal.record) ->
      match r with
      | Sbft_store.Wal.View_entered v ->
          if v > !restored_view then restored_view := v
      | Sbft_store.Wal.View_change_started v ->
          if v > t.sent_vc_for then t.sent_vc_for <- v
      | Sbft_store.Wal.Stable_checkpoint { seq; digest; pi } ->
          Hashtbl.replace t.checkpoint_pis seq (Field.of_bytes pi, digest);
          if seq > t.stable then t.stable <- seq;
          if seq > t.ls then t.ls <- seq
      | _ -> ())
    records;
  if !restored_view > 0 then begin
    Sanitizer.record_view_entry t.san ~view:!restored_view;
    t.view <- !restored_view
  end;
  (* 3. Ledger replay: quiet re-commit + re-execution of the contiguous
     run above the checkpoint (no network sends, no new WAL records). *)
  let replaying = ref true in
  while !replaying do
    let next = last_executed t + 1 in
    match Sbft_store.Block_store.find t.blocks next with
    | Some e ->
        let reqs =
          List.map
            (fun (o : Sbft_store.Block_store.op) ->
              { Types.client = o.client; timestamp = o.timestamp; op = o.op; signature = "" })
            e.Sbft_store.Block_store.ops
        in
        let view = e.Sbft_store.Block_store.view in
        let h = Types.block_hash ~seq:next ~view ~reqs in
        Sanitizer.record_commit t.san ~seq:next ~view ~digest:h;
        Sanitizer.record_execute t.san ~seq:next;
        let sl = slot t next in
        sl.pp <- Some (view, reqs, h);
        sl.committed <- Some reqs;
        sl.executed <- true;
        Engine.charge ctx (Cost_model.Tally.note "exec" (t.env.exec_cost reqs));
        let is_duplicate (r : Types.request) =
          r.client >= 0
          &&
          match Hashtbl.find_opt t.client_table r.client with
          | Some (ts, _, _, _) -> ts >= r.timestamp
          | None -> false
        in
        let ops =
          List.map
            (fun (r : Types.request) -> if is_duplicate r then "" else r.op)
            reqs
        in
        let outputs = Sbft_store.Auth_store.execute_block t.store ~seq:next ~ops in
        List.iteri
          (fun index ((r : Types.request), value) ->
            if r.client >= 0 then
              match Hashtbl.find_opt t.client_table r.client with
              | Some (ts, _, _, _) when ts >= r.timestamp -> ()
              | _ ->
                  Hashtbl.replace t.client_table r.client
                    (r.timestamp, value, next, index))
          (List.combine reqs outputs)
    | None -> replaying := false
  done;
  (* Blocks beyond a gap (committed while we were down, fetched before
     the crash): mark committed so execution resumes once state
     transfer fills the gap. *)
  List.iter
    (fun s ->
      if s > last_executed t then
        match Sbft_store.Block_store.find t.blocks s with
        | Some e ->
            let reqs =
              List.map
                (fun (o : Sbft_store.Block_store.op) ->
                  { Types.client = o.client; timestamp = o.timestamp; op = o.op; signature = "" })
                e.Sbft_store.Block_store.ops
            in
            let view = e.Sbft_store.Block_store.view in
            let h = Types.block_hash ~seq:s ~view ~reqs in
            let sl = slot t s in
            if sl.committed = None then begin
              Sanitizer.record_commit t.san ~seq:s ~view ~digest:h;
              sl.pp <- Some (view, reqs, h);
              sl.committed <- Some reqs
            end
        | None -> ())
    (Sbft_store.Block_store.sorted_seqs t.blocks);
  (* 4. WAL pass two: open-slot promises and pruned-block client rows. *)
  let promised_seq = ref 0 in
  List.iter
    (fun (r : Sbft_store.Wal.record) ->
      match r with
      | Sbft_store.Wal.Client_row { client; timestamp; value; seq; index } -> (
          match Hashtbl.find_opt t.client_table client with
          | Some (ts, _, _, _) when ts >= timestamp -> ()
          | _ -> Hashtbl.replace t.client_table client (timestamp, value, seq, index))
      | Sbft_store.Wal.Accepted_pre_prepare { seq; view; ops } ->
          if seq > !promised_seq then promised_seq := seq;
          if Int.equal view t.view && seq > last_executed t then begin
            let sl = slot t seq in
            if sl.pp = None && sl.committed = None then begin
              let reqs =
                List.map
                  (fun (client, timestamp, op) ->
                    { Types.client; timestamp; op; signature = "" })
                  ops
              in
              let h = Types.block_hash ~seq ~view ~reqs in
              sl.pp <- Some (view, reqs, h);
              (* Honour the logged promise by re-issuing the identical
                 (deterministic) sign share — safe, and keeps the slot
                 live rather than silently abstaining. *)
              sl.sent_sign_share <- true;
              Engine.charge ctx
                (Cost_model.Tally.note "share_sign" (2 * Cost_model.bls_share_sign));
              let sigma_share = Threshold.share_sign t.my.Keys.sigma_sk ~msg:h in
              let tau_share = Threshold.share_sign t.my.Keys.tau_sk ~msg:h in
              sl.highest_preprepare <- Some (view, sigma_share, reqs);
              List.iter
                (fun c ->
                  send t ctx ~dst:c
                    (Types.Sign_share { seq; view; sigma_share; tau_share; replica = t.id }))
                (Collectors.slow_path_collectors ~config ~view ~seq)
            end
          end
      | Sbft_store.Wal.Accepted_prepare { seq; view; tau } ->
          if Int.equal view t.view && seq > last_executed t then begin
            let sl = slot t seq in
            (* We promised a commit share: restore the prepare report
               for view changes and never sign a conflicting block, but
               do not re-sign (the exact share already went out, or was
               lost with the unsynced send — either is safe). *)
            sl.sent_commit <- true;
            let tau = Field.of_bytes tau in
            sl.prepare_tau <- Some tau;
            match sl.pp with
            | Some (v, reqs, _) when Int.equal v view ->
                sl.highest_prepare <- Some (view, tau, reqs)
            | _ -> ()
          end
      | _ -> ())
    records;
  (* 5. Conservative rejoin. *)
  t.next_seq <-
    max t.next_seq (max (Sbft_store.Block_store.highest t.blocks) !promised_seq + 1);
  note_progress t ctx;
  arm_liveness t;
  if config.Config.conservative_rejoin then begin
    (* Probe for whatever we missed while down (newer checkpoints, view
       changes); peers answer blocks-only when they have no checkpoint,
       and stale view-change complaints trigger new-view retransmission.
       This probing is the software stand-in for the trusted monotonic
       counters hardware-assisted BFT uses against rollback attacks: a
       replica restarted from a stale durable prefix re-certifies where
       the cluster actually is before its forgotten promises can be
       leveraged.  [conservative_rejoin = false] is the eager-rejoin
       baseline the rollback corpus twins must defeat. *)
    start_state_transfer t ctx
      ~target:(last_executed t + config.Config.win + 1)
      ~first_peer:None;
    (* View-discovery probe: a view-change vote for the view we are
       already in.  Peers at our view or ahead see it as stale and answer
       with their stored new-view evidence (the on_view_change stale
       branch); peers behind us count it as a legitimate vote toward the
       view we genuinely occupy.  Either way it casts no ballot toward
       any NEWER view, so a healthy cluster cannot be destabilised by a
       rejoining replica.  Without this, a replica that slept through a
       view change and returns to an idle cluster would wait in its old
       view forever (state transfer moves data, not views). *)
    Engine.charge ctx (Cost_model.Tally.note "rsa_sign" Cost_model.rsa_sign);
    let probe = { (build_view_change t) with Types.vc_view = t.view - 1 } in
    broadcast_replicas t ctx (Types.View_change probe)
  end;
  trace t ctx "recovered"
    (Printf.sprintf "view=%d le=%d stable=%d" t.view (last_executed t) t.stable)
