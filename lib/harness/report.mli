(** Table, CSV, and JSON rendering of benchmark points. *)

(** Minimal dependency-free JSON used by the benchmark regression
    reports ({!Regress}): a deterministic pretty-printing emitter and a
    parser that reads back what the emitter writes. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Pretty-printed (2-space indent, trailing newline), deterministic:
      field order is preserved, so committed baselines diff cleanly. *)

  val parse : string -> (t, string) result

  val member : string -> t -> t option
  val to_float : t -> float option
  val to_str : t -> string option
end

val print_throughput_table :
  title:string -> clients:int list -> rows:(string * Scenario.point list) list -> unit
(** One row per protocol, one column per client count; cells show
    ops/second. *)

val print_latency_table :
  title:string -> clients:int list -> rows:(string * Scenario.point list) list -> unit
(** Same layout; cells show "latency_ms @ throughput" pairs (the axes of
    the paper's Figure 3). *)

val print_points : title:string -> Scenario.point list -> unit
(** Generic long-format dump, one line per point. *)

val csv_of_points : Scenario.point list -> string

val write_csv : path:string -> Scenario.point list -> unit

val json_of_profile : Sbft_sim.Engine.profile -> Json.t
(** Engine per-phase event counters as a JSON object — the shape the
    paper-scale profile artifact uploads from CI. *)
