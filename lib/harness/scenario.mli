(** Benchmark scenario runner: one call = one data point of the paper's
    evaluation (a protocol variant × workload × client count × failure
    count × topology), measured over a warmed-up window of virtual
    time. *)

type protocol =
  | PBFT  (** scale-optimized PBFT baseline, n = 3f+1 *)
  | Linear_PBFT  (** ingredient 1 *)
  | Linear_PBFT_fast  (** ingredients 1+2 *)
  | SBFT of int  (** ingredients 1–3 (+4): the argument is c *)

val protocol_name : protocol -> string

type workload =
  | Kv of { batching : bool }
  | Eth

type t = {
  protocol : protocol;
  f : int;
  workload : workload;
  num_clients : int;
  failures : int;  (** backup replicas crashed from the start *)
  topology : [ `Lan | `Continent | `World ];
  warmup : Sbft_sim.Engine.time;
  duration : Sbft_sim.Engine.time;  (** measured window after warmup *)
  seed : int64;
  cpu_scale : float;
      (** CPU speed factor; 0.5 models the ≈2 cores/replica of the
          paper's testbed packing. *)
  requests_per_client : int;
      (** Finite closed-loop request budget per client ([max_int] =
          run until the horizon).  Paper-scale rows use a finite budget
          so a run's cost is bounded by work, not wall time. *)
  crash_primary_at : Sbft_sim.Engine.time option;
      (** Crash the initial primary (node 0) at this virtual time — the
          view-change variant of the paper-scale family. *)
  tweak : Sbft_core.Config.t -> Sbft_core.Config.t;
      (** Final configuration hook, used by ablations (group signatures,
          collector staggering, fixed batching, ...). *)
}

val default :
  ?failures:int ->
  ?topology:[ `Lan | `Continent | `World ] ->
  ?warmup:Sbft_sim.Engine.time ->
  ?duration:Sbft_sim.Engine.time ->
  ?seed:int64 ->
  ?cpu_scale:float ->
  ?requests_per_client:int ->
  ?crash_primary_at:Sbft_sim.Engine.time ->
  ?tweak:(Sbft_core.Config.t -> Sbft_core.Config.t) ->
  protocol:protocol ->
  f:int ->
  workload:workload ->
  num_clients:int ->
  unit ->
  t

type point = {
  scenario : t;
  throughput_ops : float;  (** operations (not requests) per second *)
  median_latency_ms : float;
  mean_latency_ms : float;
  p90_latency_ms : float;
  p99_latency_ms : float;
  completed_requests : int;
  messages : int;
  bytes : int;
  fast_fraction : float;  (** fraction of blocks committed on the fast path *)
  view_changes : int;
  agreement : bool;
  host_seconds : float;
  events : int;  (** simulator events executed *)
  events_per_sec : float;  (** events per host second (host-dependent) *)
  minor_words : float;  (** minor-heap words allocated (deterministic) *)
  profile : Sbft_sim.Engine.profile;  (** per-phase event counts *)
}

val run : t -> point

val run_traced : t -> Sbft_sim.Trace.record list
(** Run the scenario once with event tracing enabled and return the raw
    trace stream (no measurement point, no logging).  Each call rebuilds
    the whole cluster from [t.seed], so two calls with the same [t] must
    produce identical streams — the property {!Sbft_sim.Replay} checks. *)

val ops_per_request : workload -> int
