open Sbft_sim
open Sbft_core

type scale = [ `Quick | `Full ]

let f_of_scale = function `Quick -> 8 | `Full -> 64
let clients_of_scale = function
  | `Quick -> [ 4; 16; 64 ]
  | `Full -> [ 4; 32; 64; 128; 192; 256 ]

let failures_of_scale = function `Quick -> [ 0; 1; 8 ] | `Full -> [ 0; 8; 64 ]

let c_of_scale = function `Quick -> 1 | `Full -> 8
(* The paper's heuristic: c ≈ f/8. *)

let protocols scale =
  [
    Scenario.PBFT;
    Scenario.Linear_PBFT;
    Scenario.Linear_PBFT_fast;
    Scenario.SBFT 0;
    Scenario.SBFT (c_of_scale scale);
  ]

(* ------------------------------------------------------------------ *)

let fig1 () =
  Printf.printf "%!\n=== Figure 1: fast-path message flow (n=4, f=1, c=0) ===\n";
  let cluster =
    Cluster.create ~trace:true ~config:(Config.sbft ~f:1 ~c:0) ~num_clients:1
      ~topology:(fun ~num_nodes -> Topology.lan ~num_nodes)
      ~service:Sbft_workload.Kv_workload.service ()
  in
  Cluster.start_clients cluster ~requests_per_client:1
    ~make_op:(Sbft_workload.Kv_workload.make_op ~batching:false);
  Cluster.run_for cluster (Engine.sec 5);
  List.iter
    (fun r -> Format.printf "%a@." Trace.pp_record r)
    (Trace.records cluster.Cluster.trace);
  Printf.printf "client requests completed: %d\n%!" (Cluster.total_completed cluster)

(* ------------------------------------------------------------------ *)

let run_grid scale ~batching ~failures =
  let f = f_of_scale scale in
  let clients = clients_of_scale scale in
  List.map
    (fun protocol ->
      let points =
        List.map
          (fun num_clients ->
            Scenario.run
              (Scenario.default ~failures ~protocol ~f
                 ~workload:(Scenario.Kv { batching }) ~num_clients ()))
          clients
      in
      (Scenario.protocol_name protocol, points))
    (protocols scale)

let fig2_fig3 ?csv scale =
  let clients = clients_of_scale scale in
  let all_points = ref [] in
  List.iter
    (fun batching ->
      List.iter
        (fun failures ->
          let grid = run_grid scale ~batching ~failures in
          List.iter (fun (_, ps) -> all_points := ps @ !all_points) grid;
          let tag =
            Printf.sprintf "%s, %d failures"
              (if batching then "batch=64" else "no batch")
              failures
          in
          Report.print_throughput_table
            ~title:(Printf.sprintf "Figure 2 [%s]: throughput vs clients" tag)
            ~clients ~rows:grid;
          Report.print_latency_table
            ~title:(Printf.sprintf "Figure 3 [%s]: latency vs throughput" tag)
            ~clients ~rows:grid)
        (failures_of_scale scale))
    [ true; false ];
  match csv with
  | Some path -> Report.write_csv ~path (List.rev !all_points)
  | None -> ()

(* ------------------------------------------------------------------ *)

let contract_bench scale region =
  let f = f_of_scale scale in
  let topology = (region :> [ `Lan | `Continent | `World ]) in
  (* The paper's contract runs are latency-bound: ~2 chunks in flight
     (378 tx/s x 254 ms / 50 tx).  Four closed-loop clients match that
     operating point. *)
  let clients = 4 in
  let duration = Engine.sec 4 in
  Printf.printf "%!\n=== Smart-contract benchmark (%s-scale WAN, f=%d) ===\n"
    (match region with `Continent -> "continent" | `World -> "world")
    f;
  let points =
    List.map
      (fun protocol ->
        Scenario.run
          (Scenario.default ~topology ~duration ~protocol ~f ~workload:Scenario.Eth
             ~num_clients:clients ()))
      [ Scenario.SBFT (c_of_scale scale); Scenario.PBFT ]
  in
  Report.print_points ~title:"transactions/second and latency" points;
  match points with
  | [ sbft; pbft ] ->
      Printf.printf
        "SBFT/PBFT: %.2fx throughput, %.2fx latency (paper: ~2x thr, ~1.5-2x lat)\n"
        (sbft.Scenario.throughput_ops /. pbft.Scenario.throughput_ops)
        (pbft.Scenario.median_latency_ms /. sbft.Scenario.median_latency_ms);
      flush stdout
  | _ -> ()

let contract_baseline () =
  Printf.printf "%!\n=== Unreplicated smart-contract execution baseline ===\n";
  (* Execute the trace against a single store, charging the virtual
     per-transaction cost the cost model assigns (calibrated to the
     paper's measured 840 tx/s on one machine). *)
  let store = Sbft_workload.Eth_workload.service.Cluster.make_store () in
  let chunks = 40 in
  let txs = ref 0 in
  let virtual_ns = ref 0 in
  for i = 1 to chunks do
    let op = Sbft_workload.Eth_workload.make_chunk ~client:0 i in
    let reqs = [ { Types.client = 0; timestamp = i; op; signature = "" } ] in
    ignore (Sbft_store.Auth_store.execute_block store ~seq:i ~ops:[ op ]);
    txs := !txs + Sbft_workload.Eth_workload.chunk_tx_count op;
    virtual_ns := !virtual_ns + Sbft_workload.Eth_workload.exec_cost reqs
  done;
  Printf.printf
    "executed %d transactions in %.2f virtual seconds: %.0f tx/s (paper: ~840 tx/s)\n"
    !txs
    (Engine.to_sec !virtual_ns)
    (float_of_int !txs /. Engine.to_sec !virtual_ns);
  flush stdout

(* ------------------------------------------------------------------ *)

let ablation_c scale =
  let f = f_of_scale scale in
  let clients = match scale with `Quick -> 16 | `Full -> 128 in
  Printf.printf "%!\n=== Ablation: redundant collectors (c sweep, f=%d) ===\n" f;
  let cs = match scale with `Quick -> [ 0; 1; 2 ] | `Full -> [ 0; 1; 2; 8 ] in
  let points =
    List.concat_map
      (fun failures ->
        List.map
          (fun c ->
            Scenario.run
              (Scenario.default ~failures ~protocol:(Scenario.SBFT c) ~f
                 ~workload:(Scenario.Kv { batching = true }) ~num_clients:clients ()))
          cs)
      [ 0; c_of_scale scale ]
  in
  Report.print_points ~title:"SBFT with c = 0,1,2,... under 0 and c failures" points

let ablation_fast_mode scale =
  let f = f_of_scale scale in
  let clients = match scale with `Quick -> 16 | `Full -> 128 in
  Printf.printf "%!\n=== Ablation: group signatures vs threshold signatures (§VIII) ===\n";
  let run name tweak =
    let p =
      Scenario.run
        (Scenario.default ~protocol:(Scenario.SBFT 0) ~f ~tweak
           ~workload:(Scenario.Kv { batching = true }) ~num_clients:clients ())
    in
    Printf.printf "%-24s %8.0f ops/s  median %6.1f ms\n" name p.Scenario.throughput_ops
      p.Scenario.median_latency_ms
  in
  run "threshold signatures" Fun.id;
  run "group signatures" (fun c -> { c with Config.use_group_sig = true });
  flush stdout

let ablation_stagger scale =
  let f = f_of_scale scale in
  let clients = match scale with `Quick -> 16 | `Full -> 128 in
  Printf.printf "%!\n=== Ablation: collector staggering (redundant collector cost) ===\n";
  let run name tweak =
    let p =
      Scenario.run
        (Scenario.default ~protocol:(Scenario.SBFT (c_of_scale scale)) ~f ~tweak
           ~workload:(Scenario.Kv { batching = true }) ~num_clients:clients ())
    in
    Printf.printf "%-24s %8.0f ops/s  median %6.1f ms  msgs %d\n" name
      p.Scenario.throughput_ops p.Scenario.median_latency_ms p.Scenario.messages
  in
  run "staggered (default)" Fun.id;
  run "all collectors active" (fun c -> { c with Config.collector_stagger = 0 });
  flush stdout

(* ------------------------------------------------------------------ *)

(* R8: the replay-divergence check.  One representative scenario per
   protocol family plus a failure run and the Ethereum workload; each is
   run twice from its seed and the trace streams must be identical. *)
let replay_scenarios () =
  let quick ?(failures = 0) protocol workload =
    Scenario.default ~failures ~warmup:(Engine.ms 200) ~duration:(Engine.ms 400)
      ~protocol ~f:1 ~workload ~num_clients:2 ()
  in
  [
    ("sbft-kv-batch", quick (Scenario.SBFT 0) (Scenario.Kv { batching = true }));
    ("sbft-c1-failure", quick ~failures:1 (Scenario.SBFT 1) (Scenario.Kv { batching = false }));
    ("linear-pbft-fast", quick Scenario.Linear_PBFT_fast (Scenario.Kv { batching = true }));
    ("pbft-kv", quick Scenario.PBFT (Scenario.Kv { batching = true }));
    ("sbft-eth", quick (Scenario.SBFT 0) Scenario.Eth);
  ]

let replay () =
  Printf.printf "%!\n=== Replay-divergence check (R8): two same-seed runs per scenario ===\n";
  let ok =
    List.fold_left
      (fun ok (name, sc) ->
        let outcome =
          Replay.run_twice ~run:(fun () -> Scenario.run_traced sc)
        in
        Printf.printf "  %-18s %s\n%!" name (Replay.pp_outcome outcome);
        match outcome with Replay.Identical _ -> ok | Replay.Diverged _ -> false)
      true (replay_scenarios ())
  in
  Printf.printf "replay: %s\n%!" (if ok then "all scenarios deterministic" else "DIVERGENCE DETECTED");
  ok
