open Sbft_sim

(* Benchmark regression harness (CI gate).

   Runs a fixed grid of quick-scale scenarios, captures throughput,
   latency percentiles, and the per-crypto-op simulated-CPU breakdown
   (Cost_model.Tally), and emits BENCH_<n>.json.  A committed baseline
   (bench/baseline.json) plus tolerance bands turns any later
   performance change — protocol or cost-model — into a CI failure.

   Everything measured is *virtual* time from the deterministic
   simulator, so the numbers are bit-identical across hosts and reruns:
   the tolerance bands exist to absorb legitimate protocol evolution
   (reviewed via baseline updates), not host noise. *)

type entry = {
  name : string;
  protocol : string;
  n : int;
  f : int;
  c : int;
  clients : int;
  throughput_ops : float;
  p50_ms : float;
  p99_ms : float;
  fast_fraction : float;
  crypto_us : (string * float) list;
  (* v2: host-side cost of producing the virtual numbers.  [events] and
     [minor_words] are deterministic (same code, same counts);
     [wall_ms] and [events_per_sec] depend on the machine and are
     advisory on PRs (gated only by the paper-scale smoke budget). *)
  wall_ms : float;
  events : int;
  events_per_sec : float;
  minor_words : float;
}

type report = { schema : string; entries : entry list }

let schema_id = "sbft-bench-v2"

(* Zero the fields that depend on the host or on process history
   (allocation drifts a little between in-process reruns as caches
   warm), leaving only fully deterministic ones — what byte-identity
   checks and the determinism test compare. *)
let strip_host r =
  {
    r with
    entries =
      List.map
        (fun e -> { e with wall_ms = 0.; events_per_sec = 0.; minor_words = 0. })
        r.entries;
  }

(* ------------------------------------------------------------------ *)
(* The scenario grid *)

let grid_scenario ~scale ~name ?(failures = 0) ?(tweak = Fun.id) ~protocol () =
  let duration =
    match scale with `Quick -> Engine.ms 600 | `Full -> Engine.sec 2
  in
  ( name,
    Scenario.default ~topology:`Lan ~warmup:(Engine.ms 200) ~duration ~seed:11L
      ~failures ~tweak ~protocol ~f:1
      ~workload:(Scenario.Kv { batching = true })
      ~num_clients:4 () )

(* The two sbft-fast-* rows are the headline comparison: identical
   scenario, optimistic combine-then-verify on vs. the pessimistic
   verify-every-share baseline. *)
let grid (scale : Experiments.scale) =
  let s = grid_scenario ~scale in
  [
    s ~name:"sbft-fast-optimistic" ~protocol:(Scenario.SBFT 0) ();
    s ~name:"sbft-fast-pershare" ~protocol:(Scenario.SBFT 0)
      ~tweak:(fun c -> { c with Sbft_core.Config.optimistic_combine = false })
      ();
    (* Durability-overhead pair: the same scenario with the write-ahead
       log (group-committed fsyncs on the protocol's critical path)
       switched off.  The gap is the price of crash-amnesia recovery. *)
    s ~name:"sbft-no-wal" ~protocol:(Scenario.SBFT 0)
      ~tweak:(fun c -> { c with Sbft_core.Config.durable_wal = false })
      ();
    s ~name:"sbft-c1" ~protocol:(Scenario.SBFT 1) ();
    s ~name:"sbft-slowpath" ~protocol:(Scenario.SBFT 0) ~failures:1 ();
    s ~name:"linear-pbft" ~protocol:Scenario.Linear_PBFT ();
    s ~name:"pbft" ~protocol:Scenario.PBFT ();
  ]

let c_of_protocol = function Scenario.SBFT c -> c | _ -> 0

let entry_of_point ~name (p : Scenario.point) ~crypto =
  let s = p.Scenario.scenario in
  let c = c_of_protocol s.Scenario.protocol in
  (* n flows from Config (R4), through the same constructor the
     scenario itself uses. *)
  let n =
    match s.Scenario.protocol with
    | Scenario.SBFT c -> Sbft_core.Config.n (Sbft_core.Config.sbft ~f:s.Scenario.f ~c)
    | _ -> Sbft_core.Config.n (Sbft_core.Config.linear_pbft ~f:s.Scenario.f)
  in
  {
    name;
    protocol = Scenario.protocol_name s.Scenario.protocol;
    n;
    f = s.Scenario.f;
    c;
    clients = s.Scenario.num_clients;
    throughput_ops = p.Scenario.throughput_ops;
    p50_ms = p.Scenario.median_latency_ms;
    p99_ms = p.Scenario.p99_latency_ms;
    fast_fraction = p.Scenario.fast_fraction;
    crypto_us =
      List.map
        (fun (label, ns) -> (label, float_of_int ns /. 1_000.))
        crypto;
    wall_ms = p.Scenario.host_seconds *. 1000.;
    events = p.Scenario.events;
    events_per_sec = p.Scenario.events_per_sec;
    minor_words = p.Scenario.minor_words;
  }

let measure_row (name, sc) =
  Sbft_crypto.Cost_model.Tally.reset ();
  let p = Scenario.run sc in
  let crypto = Sbft_crypto.Cost_model.Tally.snapshot () in
  (entry_of_point ~name p ~crypto, p)

let measure scale =
  { schema = schema_id; entries = List.map (fun row -> fst (measure_row row)) (grid scale) }

(* ------------------------------------------------------------------ *)
(* JSON round-trip *)

open Report.Json

let json_of_entry e =
  Obj
    [
      ("name", Str e.name);
      ("protocol", Str e.protocol);
      ("n", Num (float_of_int e.n));
      ("f", Num (float_of_int e.f));
      ("c", Num (float_of_int e.c));
      ("clients", Num (float_of_int e.clients));
      ("throughput_ops", Num e.throughput_ops);
      ("p50_ms", Num e.p50_ms);
      ("p99_ms", Num e.p99_ms);
      ("fast_fraction", Num e.fast_fraction);
      ("crypto_us", Obj (List.map (fun (l, v) -> (l, Num v)) e.crypto_us));
      ("wall_ms", Num e.wall_ms);
      ("events", Num (float_of_int e.events));
      ("events_per_sec", Num e.events_per_sec);
      ("minor_words", Num e.minor_words);
    ]

let to_json r =
  to_string
    (Obj
       [
         ("schema", Str r.schema);
         ("entries", Arr (List.map json_of_entry r.entries));
       ])

let entry_of_json j =
  let str key =
    match Option.bind (member key j) to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" key)
  in
  let num key =
    match Option.bind (member key j) to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing numeric field %S" key)
  in
  let ( let* ) = Result.bind in
  let* name = str "name" in
  let* protocol = str "protocol" in
  let* n = num "n" in
  let* f = num "f" in
  let* c = num "c" in
  let* clients = num "clients" in
  let* throughput_ops = num "throughput_ops" in
  let* p50_ms = num "p50_ms" in
  let* p99_ms = num "p99_ms" in
  let* fast_fraction = num "fast_fraction" in
  let* crypto_us =
    match member "crypto_us" j with
    | Some (Obj fields) ->
        List.fold_left
          (fun acc (label, v) ->
            let* acc = acc in
            match to_float v with
            | Some x -> Ok ((label, x) :: acc)
            | None -> Error (Printf.sprintf "bad crypto_us entry %S" label))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "missing crypto_us object"
  in
  let* wall_ms = num "wall_ms" in
  let* events = num "events" in
  let* events_per_sec = num "events_per_sec" in
  let* minor_words = num "minor_words" in
  Ok
    {
      name;
      protocol;
      n = int_of_float n;
      f = int_of_float f;
      c = int_of_float c;
      clients = int_of_float clients;
      throughput_ops;
      p50_ms;
      p99_ms;
      fast_fraction;
      crypto_us;
      wall_ms;
      events = int_of_float events;
      events_per_sec;
      minor_words;
    }

let of_json s =
  let ( let* ) = Result.bind in
  let* j = parse s in
  let* schema =
    match Option.bind (member "schema" j) to_str with
    | Some s -> Ok s
    | None -> Error "missing schema field"
  in
  let* () =
    if String.equal schema schema_id then Ok ()
    else Error (Printf.sprintf "unknown schema %S (want %S)" schema schema_id)
  in
  let* entries =
    match member "entries" j with
    | Some (Arr items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* e = entry_of_json item in
            Ok (e :: acc))
          (Ok []) items
        |> Result.map List.rev
    | _ -> Error "missing entries array"
  in
  Ok { schema; entries }

let write ~path r =
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_json s

(* ------------------------------------------------------------------ *)
(* Tolerance-band comparison *)

type tolerance = {
  rel_throughput : float;
  rel_latency : float;
  abs_latency_floor_ms : float;
  abs_fast_fraction : float;
  rel_crypto : float;
  abs_crypto_floor_us : float;
  rel_events : float;
  rel_minor_words : float;
  rel_wall : float;  (* wall-clock band: advisory on PRs, see below *)
}

(* The simulation is deterministic, so identical code reproduces the
   baseline bit-for-bit; the bands only absorb incidental drift from
   unrelated changes (batch timing, message sizes, ...).  Anything
   larger is a deliberate performance change and must ship with a
   baseline update. *)
let default_tolerance =
  {
    rel_throughput = 0.10;
    rel_latency = 0.10;
    abs_latency_floor_ms = 0.5;
    abs_fast_fraction = 0.05;
    rel_crypto = 0.15;
    abs_crypto_floor_us = 100.;
    (* Event counts and allocation are deterministic; the bands absorb
       legitimate code evolution, reviewed via baseline updates. *)
    rel_events = 0.15;
    rel_minor_words = 0.30;
    (* Wall clock is host noise on shared CI runners: the band is wide
       and, on push/PR runs, only advisory. *)
    rel_wall = 0.75;
  }

let rel_delta ~base ~cur =
  if Float.equal base 0.0 then if Float.equal cur 0.0 then 0.0 else infinity
  else Float.abs (cur -. base) /. Float.abs base

let find_entry name entries =
  List.find_opt (fun e -> String.equal e.name name) entries

let compare_entry ~tol (base : entry) (cur : entry) =
  let v = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> v := Printf.sprintf "%s: %s" base.name s :: !v) fmt
  in
  if
    not
      (String.equal base.protocol cur.protocol
      && Int.equal base.n cur.n && Int.equal base.f cur.f
      && Int.equal base.c cur.c
      && Int.equal base.clients cur.clients)
  then
    violation "scenario shape changed (protocol/n/f/c/clients); update the baseline";
  let d = rel_delta ~base:base.throughput_ops ~cur:cur.throughput_ops in
  if d > tol.rel_throughput then
    violation "throughput %.0f ops/s vs baseline %.0f (%+.1f%%, band ±%.0f%%)"
      cur.throughput_ops base.throughput_ops
      (100. *. (cur.throughput_ops -. base.throughput_ops) /. base.throughput_ops)
      (100. *. tol.rel_throughput);
  let latency label base_ms cur_ms =
    if
      Float.abs (cur_ms -. base_ms) > tol.abs_latency_floor_ms
      && rel_delta ~base:base_ms ~cur:cur_ms > tol.rel_latency
    then
      violation "%s %.2f ms vs baseline %.2f (band ±%.0f%% or %.1f ms)" label
        cur_ms base_ms (100. *. tol.rel_latency) tol.abs_latency_floor_ms
  in
  latency "p50" base.p50_ms cur.p50_ms;
  latency "p99" base.p99_ms cur.p99_ms;
  if Float.abs (cur.fast_fraction -. base.fast_fraction) > tol.abs_fast_fraction
  then
    violation "fast_fraction %.3f vs baseline %.3f (band ±%.2f)"
      cur.fast_fraction base.fast_fraction tol.abs_fast_fraction;
  let de =
    rel_delta ~base:(float_of_int base.events) ~cur:(float_of_int cur.events)
  in
  if de > tol.rel_events then
    violation "events %d vs baseline %d (%+.1f%%, band ±%.0f%%)" cur.events
      base.events
      (100. *. float_of_int (cur.events - base.events) /. float_of_int base.events)
      (100. *. tol.rel_events);
  let dm = rel_delta ~base:base.minor_words ~cur:cur.minor_words in
  if dm > tol.rel_minor_words then
    violation "minor_words %.0f vs baseline %.0f (%+.1f%%, band ±%.0f%%)"
      cur.minor_words base.minor_words
      (100. *. (cur.minor_words -. base.minor_words) /. base.minor_words)
      (100. *. tol.rel_minor_words);
  let labels =
    List.sort_uniq String.compare
      (List.map fst base.crypto_us @ List.map fst cur.crypto_us)
  in
  List.iter
    (fun label ->
      let get e = Option.value (List.assoc_opt label e.crypto_us) ~default:0.0 in
      let b = get base and c = get cur in
      if
        Float.abs (c -. b) > tol.abs_crypto_floor_us
        && rel_delta ~base:b ~cur:c > tol.rel_crypto
      then
        violation "crypto[%s] %.0f us vs baseline %.0f (band ±%.0f%% or %.0f us)"
          label c b (100. *. tol.rel_crypto) tol.abs_crypto_floor_us)
    labels;
  List.rev !v

let compare_reports ?(tol = default_tolerance) ~baseline ~current () =
  let violations = ref [] in
  List.iter
    (fun (base : entry) ->
      match find_entry base.name current.entries with
      | None ->
          violations :=
            Printf.sprintf "%s: present in baseline but not measured" base.name
            :: !violations
      | Some cur -> violations := List.rev_append (compare_entry ~tol base cur) !violations)
    baseline.entries;
  List.iter
    (fun (cur : entry) ->
      if find_entry cur.name baseline.entries = None then
        violations :=
          Printf.sprintf "%s: measured but absent from the baseline (update it)"
            cur.name
          :: !violations)
    current.entries;
  List.rev !violations

(* Wall-clock drift vs the committed baseline.  Separate from
   {!compare_reports} because it never gates push/PR runs (baselines
   are recorded on a different machine); the paper-scale smoke job is
   the only wall gate, via an explicit absolute budget. *)
let wall_advisories ?(tol = default_tolerance) ~baseline ~current () =
  List.filter_map
    (fun (base : entry) ->
      match find_entry base.name current.entries with
      | Some cur
        when base.wall_ms > 0.
             && rel_delta ~base:base.wall_ms ~cur:cur.wall_ms > tol.rel_wall ->
          Some
            (Printf.sprintf
               "%s: wall %.0f ms vs baseline %.0f (%+.0f%%, band ±%.0f%%)"
               base.name cur.wall_ms base.wall_ms
               (100. *. (cur.wall_ms -. base.wall_ms) /. base.wall_ms)
               (100. *. tol.rel_wall))
      | _ -> None)
    baseline.entries

(* Headline number: optimistic combine-then-verify vs. per-share
   verification on the same scenario. *)
let optimistic_speedup r =
  match
    ( find_entry "sbft-fast-optimistic" r.entries,
      find_entry "sbft-fast-pershare" r.entries )
  with
  | Some opt, Some pess when pess.throughput_ops > 0.0 ->
      Some (opt.throughput_ops /. pess.throughput_ops)
  | _ -> None

(* Headline number: the throughput cost of WAL durability (group-
   committed fsyncs on the critical path) on the same scenario. *)
let durability_overhead r =
  match
    (find_entry "sbft-fast-optimistic" r.entries, find_entry "sbft-no-wal" r.entries)
  with
  | Some wal, Some nowal when wal.throughput_ops > 0.0 ->
      Some ((nowal.throughput_ops /. wal.throughput_ops -. 1.0) *. 100.)
  | _ -> None

let print r =
  Printf.printf "\nBenchmark regression grid (%s)\n%s\n" r.schema
    (String.make 110 '-');
  Printf.printf "%-22s %-18s %3s %7s %10s %8s %8s %6s %8s %8s\n" "scenario"
    "protocol" "n" "clients" "ops/s" "p50 ms" "p99 ms" "fast%" "wall ms"
    "kev/s";
  List.iter
    (fun e ->
      Printf.printf "%-22s %-18s %3d %7d %10.0f %8.1f %8.1f %5.0f%% %8.0f %8.1f\n"
        e.name e.protocol e.n e.clients e.throughput_ops e.p50_ms e.p99_ms
        (100. *. e.fast_fraction)
        e.wall_ms
        (e.events_per_sec /. 1000.))
    r.entries;
  Printf.printf "%s\n" (String.make 110 '-');
  (match optimistic_speedup r with
  | Some s ->
      Printf.printf
        "optimistic combine-then-verify speedup vs per-share verification: %.2fx\n"
        s
  | None -> ());
  (match durability_overhead r with
  | Some pct ->
      Printf.printf
        "throughput without the WAL vs with it (durability overhead): %+.1f%%\n"
        pct
  | None -> ());
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Paper-scale family *)

(* n = 3f + 2c + 1 at f = 64: the paper's system sizes (193 and 209).
   Each row carries a finite request budget — 64 clients × 25 batched
   requests × 64 ops/batch ≈ 102k operations — so its cost is bounded
   by work done, not by a horizon: the CI wall budget then measures
   simulator speed directly.  The view-change row crashes the initial
   primary mid-run and must still finish the full budget. *)
let paper_clients = 64
let paper_requests_per_client = 25

let paper_scenario ~name ?(c = 0) ?crash_primary_at () =
  ( name,
    Scenario.default ~topology:`Lan ~warmup:(Engine.ms 200)
      ~duration:(Engine.sec 12) ~seed:11L
      ~requests_per_client:paper_requests_per_client ?crash_primary_at
      ~protocol:(Scenario.SBFT c) ~f:64
      ~workload:(Scenario.Kv { batching = true })
      ~num_clients:paper_clients () )

let paper_grid () =
  [
    paper_scenario ~name:"paper-fast-n193" ();
    paper_scenario ~name:"paper-c8-n209" ~c:8 ();
    paper_scenario ~name:"paper-viewchange-n193"
      ~crash_primary_at:(Engine.ms 600) ();
  ]

type paper_row = { entry : entry; point : Scenario.point }

let filter_grid ?only grid =
  match only with
  | None -> grid
  | Some name -> List.filter (fun (n, _) -> String.equal n name) grid

let measure_paper ?only () =
  List.map
    (fun row ->
      let entry, point = measure_row row in
      { entry; point })
    (filter_grid ?only (paper_grid ()))

let json_of_paper_row { entry; point } =
  match json_of_entry entry with
  | Obj fields ->
      Obj
        (fields
        @ [
            ("completed_requests", Num (float_of_int point.Scenario.completed_requests));
            ("view_changes", Num (float_of_int point.Scenario.view_changes));
            ("agreement", Bool point.Scenario.agreement);
            ("profile", Report.json_of_profile point.Scenario.profile);
          ])
  | j -> j

let paper_report_json rows =
  to_string
    (Obj
       [
         ("schema", Str "sbft-paper-v1");
         ("entries", Arr (List.map json_of_paper_row rows));
       ])

(* ------------------------------------------------------------------ *)
(* Seeded sweep: mean ± 95% confidence interval over S seeds *)

type stat = { mean : float; ci95 : float }

(* Two-sided Student-t 0.975 quantile; the asymptotic 1.96 past the
   table.  Indexed by degrees of freedom (S - 1). *)
let t975 df =
  let table =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
      2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
      2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]
  in
  if df < 1 then infinity
  else if df <= Array.length table then table.(df - 1)
  else 1.96

let summarize xs =
  let n = List.length xs in
  if n = 0 then { mean = nan; ci95 = nan }
  else begin
    let nf = float_of_int n in
    let mean = List.fold_left ( +. ) 0. xs /. nf in
    if n = 1 then { mean; ci95 = infinity }
    else begin
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (nf -. 1.)
      in
      { mean; ci95 = t975 (n - 1) *. sqrt var /. sqrt nf }
    end
  end

type sweep_row = {
  sweep_name : string;
  seeds : int;
  throughput : stat;
  p50_lat : stat;
  fast_frac : stat;
  wall_s : stat;
  ev_per_sec : stat;
}

let sweep ?only ~seeds () =
  List.map
    (fun (name, sc) ->
      let points =
        List.init seeds (fun i ->
            Scenario.run
              { sc with Scenario.seed = Int64.add sc.Scenario.seed (Int64.of_int i) })
      in
      let stat f = summarize (List.map f points) in
      {
        sweep_name = name;
        seeds;
        throughput = stat (fun p -> p.Scenario.throughput_ops);
        p50_lat = stat (fun p -> p.Scenario.median_latency_ms);
        fast_frac = stat (fun p -> p.Scenario.fast_fraction);
        wall_s = stat (fun p -> p.Scenario.host_seconds);
        ev_per_sec = stat (fun p -> p.Scenario.events_per_sec);
      })
    (filter_grid ?only (paper_grid ()))

let json_of_stat s = Obj [ ("mean", Num s.mean); ("ci95", Num s.ci95) ]

let sweep_report_json rows =
  to_string
    (Obj
       [
         ("schema", Str "sbft-sweep-v1");
         ( "entries",
           Arr
             (List.map
                (fun r ->
                  Obj
                    [
                      ("name", Str r.sweep_name);
                      ("seeds", Num (float_of_int r.seeds));
                      ("throughput_ops", json_of_stat r.throughput);
                      ("p50_ms", json_of_stat r.p50_lat);
                      ("fast_fraction", json_of_stat r.fast_frac);
                      ("wall_s", json_of_stat r.wall_s);
                      ("events_per_sec", json_of_stat r.ev_per_sec);
                    ])
                rows) );
       ])

let print_sweep rows =
  Printf.printf "\nSeeded sweep (mean ± 95%% CI over %d seeds)\n%s\n"
    (match rows with r :: _ -> r.seeds | [] -> 0)
    (String.make 100 '-');
  Printf.printf "%-24s %22s %16s %12s %14s\n" "scenario" "ops/s" "p50 ms"
    "fast%" "host s";
  List.iter
    (fun r ->
      Printf.printf "%-24s %12.0f ± %7.0f %8.2f ± %5.2f %5.1f ± %3.1f %8.1f ± %4.1f\n"
        r.sweep_name r.throughput.mean r.throughput.ci95 r.p50_lat.mean
        r.p50_lat.ci95
        (100. *. r.fast_frac.mean)
        (100. *. r.fast_frac.ci95)
        r.wall_s.mean r.wall_s.ci95)
    rows;
  Printf.printf "%s\n%!" (String.make 100 '-')
