(** The paper's evaluation, experiment by experiment (see DESIGN.md's
    per-experiment index).  Each function prints its tables to stdout
    and optionally writes a CSV next to the working directory.

    [scale] trades fidelity for runtime: [`Full] is the paper's setting
    (f = 64, n = 193–209, clients 4..256); [`Quick] shrinks to f = 8 and
    fewer client points so the whole suite runs in minutes. *)

type scale = [ `Quick | `Full ]

val f_of_scale : scale -> int
val clients_of_scale : scale -> int list
val failures_of_scale : scale -> int list

val fig1 : unit -> unit
(** Reproduces Figure 1: runs n=4, f=1, c=0 on one request with tracing
    and prints the fast-path message flow. *)

val fig2_fig3 : ?csv:string -> scale -> unit
(** The Figure 2 (throughput vs clients) and Figure 3 (latency vs
    throughput) grids: {batch, no-batch} × {0, c, f failures} × five
    protocols. *)

val contract_bench : scale -> [ `Continent | `World ] -> unit
(** The smart-contract benchmark (§IX): SBFT vs PBFT running the
    Ethereum-like trace, reporting tx/s and median latency. *)

val contract_baseline : unit -> unit
(** The unreplicated single-machine execution baseline (≈840 tx/s). *)

val ablation_c : scale -> unit
(** Ingredient 4: sweep c ∈ {0,1,2,f/8} under 0 and c failures. *)

val ablation_fast_mode : scale -> unit
(** §VIII group signatures vs threshold signatures on the fast path. *)

val ablation_stagger : scale -> unit
(** Collector staggering on/off: redundant collector duplication cost. *)

val replay : unit -> bool
(** R8: run each example scenario twice from the same seed and compare
    the trace streams event-by-event ({!Sbft_sim.Replay}).  Prints one
    line per scenario (stream digest, or the first divergent event) and
    returns [false] on any divergence.  Exposed as [dune build @replay]
    via [bin/sbft_replay.exe]. *)
