let hr = String.make 96 '-'

(* ------------------------------------------------------------------ *)
(* Minimal JSON: just enough for the benchmark regression reports
   (BENCH_*.json / bench/baseline.json).  Hand-rolled so the harness
   stays dependency-free; the emitter produces deterministic,
   diff-friendly output and the parser reads back exactly what the
   emitter writes (plus ordinary interchange JSON). *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 32 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let number_to_string x =
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
    else
      (* Shortest representation that still round-trips exactly. *)
      let s = Printf.sprintf "%.12g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x

  let to_string v =
    let b = Buffer.create 4096 in
    let pad n = Buffer.add_string b (String.make n ' ') in
    let rec go indent v =
      match v with
      | Null -> Buffer.add_string b "null"
      | Bool v -> Buffer.add_string b (if v then "true" else "false")
      | Num x -> Buffer.add_string b (number_to_string x)
      | Str s ->
          Buffer.add_char b '"';
          escape b s;
          Buffer.add_char b '"'
      | Arr [] -> Buffer.add_string b "[]"
      | Arr items ->
          Buffer.add_string b "[\n";
          List.iteri
            (fun i item ->
              if i > 0 then Buffer.add_string b ",\n";
              pad (indent + 2);
              go (indent + 2) item)
            items;
          Buffer.add_char b '\n';
          pad indent;
          Buffer.add_char b ']'
      | Obj [] -> Buffer.add_string b "{}"
      | Obj fields ->
          Buffer.add_string b "{\n";
          List.iteri
            (fun i (k, item) ->
              if i > 0 then Buffer.add_string b ",\n";
              pad (indent + 2);
              Buffer.add_char b '"';
              escape b k;
              Buffer.add_string b "\": ";
              go (indent + 2) item)
            fields;
          Buffer.add_char b '\n';
          pad indent;
          Buffer.add_char b '}'
    in
    go 0 v;
    Buffer.add_char b '\n';
    Buffer.contents b

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when Char.equal c c' -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents b
          | '\\' -> (
              if !pos >= n then fail "unterminated escape"
              else
                let e = s.[!pos] in
                advance ();
                match e with
                | '"' | '\\' | '/' -> Buffer.add_char b e; go ()
                | 'n' -> Buffer.add_char b '\n'; go ()
                | 'r' -> Buffer.add_char b '\r'; go ()
                | 't' -> Buffer.add_char b '\t'; go ()
                | 'b' -> Buffer.add_char b '\b'; go ()
                | 'f' -> Buffer.add_char b '\012'; go ()
                | 'u' ->
                    if !pos + 4 > n then fail "truncated \\u escape"
                    else begin
                      let code =
                        match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                        | Some code -> code
                        | None -> fail "bad \\u escape"
                      in
                      pos := !pos + 4;
                      (* ASCII only — all this harness ever emits. *)
                      if code < 128 then Buffer.add_char b (Char.chr code)
                      else Buffer.add_char b '?';
                      go ()
                    end
                | _ -> fail "bad escape")
          | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      let rec go () =
        match peek () with
        | Some c when num_char c ->
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if !pos = start then fail "expected number"
      else
        match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some x -> x
        | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec fields_loop () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields_loop ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or }"
            in
            fields_loop ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let items = ref [] in
            let rec items_loop () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items_loop ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ]"
            in
            items_loop ();
            Arr (List.rev !items)
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> fail "unexpected end of input"
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos < n then fail "trailing garbage" else v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  (* Accessors used by the regression comparator. *)
  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_float = function Num x -> Some x | _ -> None
  let to_str = function Str s -> Some s | _ -> None
end

(* Per-phase event counts from the engine hot path, in the shape the
   paper-scale profile artifact uploads. *)
let json_of_profile (p : Sbft_sim.Engine.profile) =
  Json.Obj
    [
      ("executed", Json.Num (float_of_int p.Sbft_sim.Engine.p_executed));
      ("thunks", Json.Num (float_of_int p.Sbft_sim.Engine.p_thunks));
      ("arrivals", Json.Num (float_of_int p.Sbft_sim.Engine.p_arrivals));
      ("timers_fired", Json.Num (float_of_int p.Sbft_sim.Engine.p_timers_fired));
      ("timers_skipped", Json.Num (float_of_int p.Sbft_sim.Engine.p_timers_skipped));
      ("timers_purged", Json.Num (float_of_int p.Sbft_sim.Engine.p_timers_purged));
      ("max_pending", Json.Num (float_of_int p.Sbft_sim.Engine.p_max_pending));
    ]

let print_throughput_table ~title ~clients ~rows =
  Printf.printf "\n%s\n%s\n" title hr;
  Printf.printf "%-22s" "protocol";
  List.iter (fun c -> Printf.printf "%12s" (Printf.sprintf "%d cl" c)) clients;
  print_newline ();
  List.iter
    (fun (name, points) ->
      Printf.printf "%-22s" name;
      List.iter
        (fun (p : Scenario.point) -> Printf.printf "%12.0f" p.Scenario.throughput_ops)
        points;
      print_newline ())
    rows;
  Printf.printf "%s\n(cells: operations/second)\n%!" hr

let print_latency_table ~title ~clients ~rows =
  Printf.printf "\n%s\n%s\n" title hr;
  Printf.printf "%-22s" "protocol";
  List.iter (fun c -> Printf.printf "%18s" (Printf.sprintf "%d cl" c)) clients;
  print_newline ();
  List.iter
    (fun (name, points) ->
      Printf.printf "%-22s" name;
      List.iter
        (fun (p : Scenario.point) ->
          Printf.printf "%18s"
            (Printf.sprintf "%.0fms@%.0f" p.Scenario.median_latency_ms
               p.Scenario.throughput_ops))
        points;
      print_newline ())
    rows;
  Printf.printf "%s\n(cells: median latency @ throughput)\n%!" hr

let print_points ~title points =
  Printf.printf "\n%s\n%s\n" title hr;
  Printf.printf "%-22s %8s %6s %9s %9s %9s %7s %5s %6s\n" "protocol" "clients" "fail"
    "ops/s" "med ms" "mean ms" "fast%" "vc" "agree";
  List.iter
    (fun (p : Scenario.point) ->
      let s = p.Scenario.scenario in
      Printf.printf "%-22s %8d %6d %9.0f %9.1f %9.1f %6.0f%% %5d %6b\n"
        (Scenario.protocol_name s.Scenario.protocol)
        s.Scenario.num_clients s.Scenario.failures p.Scenario.throughput_ops
        p.Scenario.median_latency_ms p.Scenario.mean_latency_ms
        (100.0 *. p.Scenario.fast_fraction)
        p.Scenario.view_changes p.Scenario.agreement)
    points;
  Printf.printf "%s\n%!" hr

let csv_of_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "protocol,f,workload,clients,failures,topology,ops_per_sec,median_ms,mean_ms,p90_ms,p99_ms,completed,messages,bytes,fast_fraction,view_changes,agreement\n";
  List.iter
    (fun (p : Scenario.point) ->
      let s = p.Scenario.scenario in
      let workload =
        match s.Scenario.workload with
        | Scenario.Kv { batching } -> if batching then "kv-batch" else "kv-nobatch"
        | Scenario.Eth -> "eth"
      in
      let topo =
        match s.Scenario.topology with
        | `Lan -> "lan"
        | `Continent -> "continent"
        | `World -> "world"
      in
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%s,%d,%d,%s,%.1f,%.2f,%.2f,%.2f,%.2f,%d,%d,%d,%.3f,%d,%b\n"
           (Scenario.protocol_name s.Scenario.protocol)
           s.Scenario.f workload s.Scenario.num_clients s.Scenario.failures topo
           p.Scenario.throughput_ops p.Scenario.median_latency_ms
           p.Scenario.mean_latency_ms p.Scenario.p90_latency_ms
           p.Scenario.p99_latency_ms
           p.Scenario.completed_requests p.Scenario.messages p.Scenario.bytes
           p.Scenario.fast_fraction p.Scenario.view_changes p.Scenario.agreement))
    points;
  Buffer.contents b

let write_csv ~path points =
  let oc = open_out path in
  output_string oc (csv_of_points points);
  close_out oc
