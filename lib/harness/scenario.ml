open Sbft_sim
open Sbft_core
open Sbft_workload

type protocol = PBFT | Linear_PBFT | Linear_PBFT_fast | SBFT of int

let protocol_name = function
  | PBFT -> "PBFT"
  | Linear_PBFT -> "Linear-PBFT"
  | Linear_PBFT_fast -> "Linear-PBFT+Fast"
  | SBFT c -> Printf.sprintf "SBFT (c=%d)" c

type workload = Kv of { batching : bool } | Eth

type t = {
  protocol : protocol;
  f : int;
  workload : workload;
  num_clients : int;
  failures : int;
  topology : [ `Lan | `Continent | `World ];
  warmup : Engine.time;
  duration : Engine.time;
  seed : int64;
  cpu_scale : float;
  requests_per_client : int;
  crash_primary_at : Engine.time option;
  tweak : Config.t -> Config.t;
}

let default ?(failures = 0) ?(topology = `Continent) ?(warmup = Engine.ms 750)
    ?(duration = Engine.ms 1500) ?(seed = 1L) ?(cpu_scale = 0.5)
    ?(requests_per_client = max_int) ?crash_primary_at ?(tweak = Fun.id)
    ~protocol ~f ~workload ~num_clients () =
  { protocol; f; workload; num_clients; failures; topology; warmup; duration; seed;
    cpu_scale; requests_per_client; crash_primary_at; tweak }

type point = {
  scenario : t;
  throughput_ops : float;
  median_latency_ms : float;
  mean_latency_ms : float;
  p90_latency_ms : float;
  p99_latency_ms : float;
  completed_requests : int;
  messages : int;
  bytes : int;
  fast_fraction : float;
  view_changes : int;
  agreement : bool;
  host_seconds : float;
  events : int;
  events_per_sec : float;  (* simulator events per host second *)
  minor_words : float;  (* minor-heap words allocated during the run *)
  profile : Engine.profile;
}

let ops_per_request = function
  | Kv { batching } -> Kv_workload.ops_per_request ~batching
  | Eth -> Eth_workload.txs_per_chunk

let config_of t =
  let base =
    match t.protocol with
    | PBFT | SBFT _ ->
        let c = match t.protocol with SBFT c -> c | _ -> 0 in
        Config.sbft ~f:t.f ~c
    | Linear_PBFT -> Config.linear_pbft ~f:t.f
    | Linear_PBFT_fast -> Config.linear_pbft_fast ~f:t.f
  in
  (* The paper adapts the fast-path fallback timer from network
     profiling; here it scales with the topology's latency spread. *)
  let fast_path_timeout =
    match t.topology with
    | `Lan -> Engine.ms 20
    | `Continent -> Engine.ms 150
    | `World -> Engine.ms 450
  in
  let stagger = fast_path_timeout / 3 in
  t.tweak
    { base with Config.fast_path_timeout; collector_stagger = stagger }

let topology_of = function
  | `Lan -> fun ~num_nodes -> Topology.lan ~num_nodes
  | `Continent -> fun ~num_nodes -> Topology.continent ~num_nodes
  | `World -> fun ~num_nodes -> Topology.world ~num_nodes

let service_of = function
  | Kv _ -> Kv_workload.service
  | Eth -> Eth_workload.service

let make_op_of workload ~client i =
  match workload with
  | Kv { batching } -> Kv_workload.make_op ~batching ~client i
  | Eth -> Eth_workload.make_chunk ~client i

(* Crash the highest-numbered backups (never the initial primary, so
   failure experiments measure fault {e tolerance}, not fail-over; the
   paper's failure runs behave the same way). *)
let crash_set ~n ~failures = List.init failures (fun i -> n - 1 - i)

let log_point t (p : point) =
  Printf.eprintf
    "[scenario] %-18s f=%d cl=%-3d fail=%-2d %-10s -> %8.0f ops/s %6.1f ms (host %.0fs, %.0fk ev/s, heap %dMB)\n%!"
    (protocol_name t.protocol) t.f t.num_clients t.failures
    (match t.workload with
    | Kv { batching = true } -> "kv-batch"
    | Kv { batching = false } -> "kv-nobatch"
    | Eth -> "eth")
    p.throughput_ops p.median_latency_ms p.host_seconds
    (p.events_per_sec /. 1000.)
    (Gc.((quick_stat ()).heap_words) * 8 / 1_048_576)

(* Crash the initial primary (node 0) mid-run: the view-change variant
   of the paper-scale family.  Scheduled as a bare engine thunk so it
   needs no cluster plumbing. *)
let arm_primary_crash engine = function
  | None -> ()
  | Some at -> Engine.schedule engine ~at (fun () -> Engine.crash engine 0)

(* One run with tracing on, returning the raw event stream instead of a
   measurement point — the input to the R8 replay-divergence checker. *)
let run_traced t =
  let config = config_of t in
  let topology = topology_of t.topology in
  let service = service_of t.workload in
  let horizon = t.warmup + t.duration in
  match t.protocol with
  | PBFT ->
      let open Sbft_pbft in
      let cluster =
        Pbft_cluster.create ~trace:true ~seed:t.seed ~cpu_scale:t.cpu_scale
          ~config ~num_clients:t.num_clients ~topology ~service ()
      in
      Pbft_cluster.crash_replicas cluster
        (crash_set ~n:(Config.n cluster.Pbft_cluster.config) ~failures:t.failures);
      arm_primary_crash cluster.Pbft_cluster.engine t.crash_primary_at;
      Pbft_cluster.start_clients cluster ~requests_per_client:t.requests_per_client
        ~make_op:(make_op_of t.workload);
      Pbft_cluster.run_for cluster horizon;
      Trace.records cluster.Pbft_cluster.trace
  | _ ->
      let cluster =
        Cluster.create ~trace:true ~seed:t.seed ~cpu_scale:t.cpu_scale ~config
          ~num_clients:t.num_clients ~topology ~service ()
      in
      Cluster.crash_replicas cluster
        (crash_set ~n:(Config.n config) ~failures:t.failures);
      arm_primary_crash cluster.Cluster.engine t.crash_primary_at;
      Cluster.start_clients cluster ~requests_per_client:t.requests_per_client
        ~make_op:(make_op_of t.workload);
      Cluster.run_for cluster horizon;
      Trace.records cluster.Cluster.trace

let run t =
  let host0 = Sys.time () in
  let minor0 = Gc.minor_words () in
  let config = config_of t in
  let topology = topology_of t.topology in
  let service = service_of t.workload in
  let horizon = t.warmup + t.duration in
  let point ~engine ~throughput ~latency ~completed ~messages ~bytes
      ~fast_fraction ~view_changes ~agreement =
    (* A finite-request run drains before the horizon; its measurement
       window ends at the last completion, not at the idle tail. *)
    let until =
      if t.requests_per_client = max_int then horizon
      else
        match Stats.Throughput.last_at throughput with
        | Some at when at > t.warmup -> at
        | _ -> horizon
    in
    let reqs_per_sec =
      Stats.Throughput.rate throughput ~from_:t.warmup ~until
    in
    let host_seconds = Sys.time () -. host0 in
    let events = Engine.events_executed engine in
    {
      scenario = t;
      throughput_ops = reqs_per_sec *. float_of_int (ops_per_request t.workload);
      median_latency_ms = Stats.Latency.median_ms latency;
      mean_latency_ms = Stats.Latency.mean_ms latency;
      p90_latency_ms = Stats.Latency.percentile_ms latency 0.9;
      p99_latency_ms = Stats.Latency.percentile_ms latency 0.99;
      completed_requests = completed;
      messages;
      bytes;
      fast_fraction;
      view_changes;
      agreement;
      host_seconds;
      events;
      events_per_sec =
        (if host_seconds > 0. then float_of_int events /. host_seconds else 0.);
      minor_words = Gc.minor_words () -. minor0;
      profile = Engine.profile engine;
    }
  in
  match t.protocol with
  | PBFT ->
      let open Sbft_pbft in
      let cluster =
        Pbft_cluster.create ~seed:t.seed ~cpu_scale:t.cpu_scale ~config
          ~num_clients:t.num_clients ~topology ~service ()
      in
      Pbft_cluster.crash_replicas cluster
        (crash_set ~n:(Config.n cluster.Pbft_cluster.config) ~failures:t.failures);
      arm_primary_crash cluster.Pbft_cluster.engine t.crash_primary_at;
      Pbft_cluster.start_clients cluster ~requests_per_client:t.requests_per_client
        ~make_op:(make_op_of t.workload);
      Pbft_cluster.run_for cluster horizon;
      point ~engine:cluster.Pbft_cluster.engine
        ~throughput:cluster.Pbft_cluster.throughput
        ~latency:cluster.Pbft_cluster.latency
        ~completed:(Pbft_cluster.total_completed cluster)
        ~messages:(Network.messages_sent cluster.Pbft_cluster.network)
        ~bytes:(Network.bytes_sent cluster.Pbft_cluster.network)
        ~fast_fraction:0.0
        ~view_changes:
          (Array.fold_left
             (fun acc r -> max acc (Pbft_replica.view_changes_completed r))
             0 cluster.Pbft_cluster.replicas)
        ~agreement:(Pbft_cluster.agreement_ok cluster)
      |> fun p ->
      log_point t p;
      Gc.compact ();
      p
  | _ ->
      let cluster =
        Cluster.create ~seed:t.seed ~cpu_scale:t.cpu_scale ~config
          ~num_clients:t.num_clients ~topology ~service ()
      in
      Cluster.crash_replicas cluster
        (crash_set ~n:(Config.n config) ~failures:t.failures);
      arm_primary_crash cluster.Cluster.engine t.crash_primary_at;
      Cluster.start_clients cluster ~requests_per_client:t.requests_per_client
        ~make_op:(make_op_of t.workload);
      Cluster.run_for cluster horizon;
      let fast, slow =
        Array.fold_left
          (fun (f_, s) r ->
            if Engine.is_crashed cluster.Cluster.engine (Replica.id r) then (f_, s)
            else (f_ + Replica.fast_commits r, s + Replica.slow_commits r))
          (0, 0) cluster.Cluster.replicas
      in
      point ~engine:cluster.Cluster.engine
        ~throughput:cluster.Cluster.throughput ~latency:cluster.Cluster.latency
        ~completed:(Cluster.total_completed cluster)
        ~messages:(Network.messages_sent cluster.Cluster.network)
        ~bytes:(Network.bytes_sent cluster.Cluster.network)
        ~fast_fraction:
          (if fast + slow = 0 then 0.0
           else float_of_int fast /. float_of_int (fast + slow))
        ~view_changes:
          (Array.fold_left
             (fun acc r -> max acc (Replica.view_changes_completed r))
             0 cluster.Cluster.replicas)
        ~agreement:(Cluster.agreement_ok cluster)
      |> fun p ->
      log_point t p;
      Gc.compact ();
      p
