(** Benchmark regression harness: a fixed quick-scale scenario grid, a
    machine-readable JSON report ([BENCH_<n>.json]), and a
    tolerance-band comparator against a committed baseline
    ([bench/baseline.json]) — the CI gate that turns simulated
    performance changes into build failures.

    All measurements are virtual time from the deterministic simulator,
    so reports are bit-identical across hosts; the tolerance bands
    absorb legitimate protocol drift (reviewed via baseline updates),
    not noise. *)

type entry = {
  name : string;  (** grid row id, e.g. ["sbft-fast-optimistic"] *)
  protocol : string;
  n : int;
  f : int;
  c : int;
  clients : int;
  throughput_ops : float;
  p50_ms : float;
  p99_ms : float;
  fast_fraction : float;
  crypto_us : (string * float) list;
      (** per-label simulated CPU (virtual microseconds) charged during
          the run, from {!Sbft_crypto.Cost_model.Tally} — sorted by
          label *)
}

type report = { schema : string; entries : entry list }

val schema_id : string
(** ["sbft-bench-v1"]. *)

val measure : Experiments.scale -> report
(** Run the grid.  The two [sbft-fast-*] rows are the same scenario
    with optimistic combining on vs. the per-share-verification
    baseline ([Config.optimistic_combine = false]). *)

val to_json : report -> string

val of_json : string -> (report, string) result
(** Rejects schemas other than {!schema_id}. *)

val write : path:string -> report -> unit
val load : path:string -> (report, string) result

(** Per-metric tolerance bands; a relative band paired with an absolute
    floor ignores noise on near-zero values. *)
type tolerance = {
  rel_throughput : float;
  rel_latency : float;
  abs_latency_floor_ms : float;
  abs_fast_fraction : float;
  rel_crypto : float;
  abs_crypto_floor_us : float;
}

val default_tolerance : tolerance

val compare_reports :
  ?tol:tolerance -> baseline:report -> current:report -> unit -> string list
(** One human-readable violation per out-of-band metric, in baseline
    order; empty means the gate passes.  Scenario set or shape changes
    are violations too — they require a reviewed baseline update. *)

val optimistic_speedup : report -> float option
(** Throughput ratio [sbft-fast-optimistic / sbft-fast-pershare]. *)

val durability_overhead : report -> float option
(** Throughput delta (percent) of [sbft-no-wal] over
    [sbft-fast-optimistic]: what disabling the write-ahead log buys,
    i.e. the price of crash-amnesia durability. *)

val print : report -> unit
(** Table + headline speedup to stdout. *)
