(** Benchmark regression harness: a fixed quick-scale scenario grid, a
    machine-readable JSON report ([BENCH_<n>.json]), and a
    tolerance-band comparator against a committed baseline
    ([bench/baseline.json]) — the CI gate that turns simulated
    performance changes into build failures.

    All measurements are virtual time from the deterministic simulator,
    so reports are bit-identical across hosts; the tolerance bands
    absorb legitimate protocol drift (reviewed via baseline updates),
    not noise. *)

type entry = {
  name : string;  (** grid row id, e.g. ["sbft-fast-optimistic"] *)
  protocol : string;
  n : int;
  f : int;
  c : int;
  clients : int;
  throughput_ops : float;
  p50_ms : float;
  p99_ms : float;
  fast_fraction : float;
  crypto_us : (string * float) list;
      (** per-label simulated CPU (virtual microseconds) charged during
          the run, from {!Sbft_crypto.Cost_model.Tally} — sorted by
          label *)
  wall_ms : float;  (** host wall clock for the row (host-dependent) *)
  events : int;  (** simulator events executed (deterministic) *)
  events_per_sec : float;  (** events per host second (host-dependent) *)
  minor_words : float;  (** minor-heap words allocated during the row *)
}

type report = { schema : string; entries : entry list }

val schema_id : string
(** ["sbft-bench-v2"]. *)

val strip_host : report -> report
(** Zero the host- or process-history-dependent fields ([wall_ms],
    [events_per_sec], [minor_words]); what remains is bit-identical
    across hosts and reruns. *)

val measure : Experiments.scale -> report
(** Run the grid.  The two [sbft-fast-*] rows are the same scenario
    with optimistic combining on vs. the per-share-verification
    baseline ([Config.optimistic_combine = false]). *)

val to_json : report -> string

val of_json : string -> (report, string) result
(** Rejects schemas other than {!schema_id}. *)

val write : path:string -> report -> unit
val load : path:string -> (report, string) result

(** Per-metric tolerance bands; a relative band paired with an absolute
    floor ignores noise on near-zero values. *)
type tolerance = {
  rel_throughput : float;
  rel_latency : float;
  abs_latency_floor_ms : float;
  abs_fast_fraction : float;
  rel_crypto : float;
  abs_crypto_floor_us : float;
  rel_events : float;
  rel_minor_words : float;
  rel_wall : float;
}

val default_tolerance : tolerance

val compare_reports :
  ?tol:tolerance -> baseline:report -> current:report -> unit -> string list
(** One human-readable violation per out-of-band metric, in baseline
    order; empty means the gate passes.  Scenario set or shape changes
    are violations too — they require a reviewed baseline update.
    Gates deterministic fields only (including [events] and
    [minor_words]); wall clock is {!wall_advisories}. *)

val wall_advisories :
  ?tol:tolerance -> baseline:report -> current:report -> unit -> string list
(** Wall-clock drift beyond [tol.rel_wall], one line per row.  Advisory
    on push/PR runs (baselines are recorded on different machines); the
    paper-scale smoke job gates wall time with an absolute budget
    instead. *)

val optimistic_speedup : report -> float option
(** Throughput ratio [sbft-fast-optimistic / sbft-fast-pershare]. *)

val durability_overhead : report -> float option
(** Throughput delta (percent) of [sbft-no-wal] over
    [sbft-fast-optimistic]: what disabling the write-ahead log buys,
    i.e. the price of crash-amnesia durability. *)

val print : report -> unit
(** Table + headline speedup to stdout. *)

(** {2 Paper-scale family}

    The n = 193/209 scenarios of the paper's evaluation (f = 64), each
    with a finite ≈102k-operation budget so the CI wall budget measures
    simulator speed, not a fixed horizon. *)

val paper_clients : int
val paper_requests_per_client : int

val paper_grid : unit -> (string * Scenario.t) list
(** [paper-fast-n193] (f=64, c=0), [paper-c8-n209] (f=64, c=8), and
    [paper-viewchange-n193] (initial primary crashed at 600 ms). *)

type paper_row = { entry : entry; point : Scenario.point }

val measure_paper : ?only:string -> unit -> paper_row list
(** Run the paper grid (or the one named row). *)

val paper_report_json : paper_row list -> string
(** Schema [sbft-paper-v1]: the v2 entry fields plus completion,
    view-change, agreement, and per-phase profile data — the smoke-job
    artifact. *)

(** {2 Seeded sweep} *)

type stat = { mean : float; ci95 : float }
(** Sample mean ± half-width of the two-sided 95% Student-t interval. *)

type sweep_row = {
  sweep_name : string;
  seeds : int;
  throughput : stat;
  p50_lat : stat;
  fast_frac : stat;
  wall_s : stat;
  ev_per_sec : stat;
}

val sweep : ?only:string -> seeds:int -> unit -> sweep_row list
(** Run each paper-grid row under [seeds] consecutive seeds. *)

val sweep_report_json : sweep_row list -> string
(** Schema [sbft-sweep-v1]. *)

val print_sweep : sweep_row list -> unit
