open Sbft_sim
open Sbft_crypto
module Types = Sbft_core.Types
module Config = Sbft_core.Config
module Keys = Sbft_core.Keys

type pending = {
  timestamp : int;
  request : Types.request;
  sent_at : Engine.time;
  mutable replies : (int * string) list;
  mutable done_ : bool;
}

type t = {
  env : Pbft_replica.env;
  id : int;
  keypair : Pki.keypair;
  on_complete : timestamp:int -> latency:Engine.time -> value:string -> unit;
  mutable timestamp : int;
  mutable current : pending option;
  mutable believed_primary : int;
  mutable completed : int;
  mutable queue : (int -> string) option;
  mutable remaining : int;
  mutable issued : int;
}

let create ~env ~id ~keypair ~on_complete =
  {
    env;
    id;
    keypair;
    on_complete;
    timestamp = 0;
    current = None;
    believed_primary = 0;
    completed = 0;
    queue = None;
    remaining = 0;
    issued = 0;
  }

let id t = t.id
let completed t = t.completed
let config t = t.env.Pbft_replica.keys.Keys.config
let n_replicas t = Config.n (config t)

let send t ctx ~dst msg = t.env.Pbft_replica.send ctx ~src:t.id ~dst msg

let rec arm_retry t (p : pending) =
  ignore
    (Engine.set_timer t.env.Pbft_replica.engine ~node:t.id
       ~after:(config t).Config.client_retry_timeout (fun ctx ->
         if not p.done_ then begin
           for r = 0 to n_replicas t - 1 do
             send t ctx ~dst:r (Pbft_types.Request p.request)
           done;
           arm_retry t p
         end))

let submit t ctx ~op =
  t.timestamp <- t.timestamp + 1;
  let request = { Types.client = t.id; timestamp = t.timestamp; op; signature = "" } in
  Engine.charge ctx Cost_model.rsa_sign;
  let request =
    { request with Types.signature = Pki.sign t.keypair (Types.request_digest request) }
  in
  let p =
    {
      timestamp = t.timestamp;
      request;
      sent_at = Engine.ctx_now ctx;
      replies = [];
      done_ = false;
    }
  in
  t.current <- Some p;
  send t ctx ~dst:t.believed_primary (Pbft_types.Request request);
  arm_retry t p

let next_op t ctx =
  match t.queue with
  | Some make_op when t.remaining > 0 ->
      t.remaining <- t.remaining - 1;
      let op = make_op t.issued in
      t.issued <- t.issued + 1;
      submit t ctx ~op
  | _ -> ()

let on_message t ctx ~src msg =
  ignore src;
  match msg with
  | Pbft_types.Reply { view; replica; timestamp; value; _ } -> (
      t.believed_primary <- view mod n_replicas t;
      match t.current with
      | Some p when Int.equal p.timestamp timestamp && not p.done_ ->
          Engine.charge ctx Cost_model.rsa_verify;
          if not (List.mem_assoc replica p.replies) then begin
            p.replies <- (replica, value) :: p.replies;
            let matching =
              List.length (List.filter (fun (_, v) -> String.equal v value) p.replies)
            in
            if matching >= (config t).Config.f + 1 then begin
              p.done_ <- true;
              t.completed <- t.completed + 1;
              t.current <- None;
              t.on_complete ~timestamp:p.timestamp
                ~latency:(Engine.ctx_now ctx - p.sent_at)
                ~value;
              next_op t ctx
            end
          end
      | _ -> ())
  | _ -> ()

let run_closed_loop t ~num_requests ~make_op ~start_at =
  t.queue <- Some make_op;
  t.remaining <- num_requests;
  Engine.dispatch t.env.Pbft_replica.engine ~dst:t.id ~at:start_at (fun ctx ->
      next_op t ctx)
