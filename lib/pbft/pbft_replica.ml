open Sbft_sim
open Sbft_crypto
module Types = Sbft_core.Types
module Config = Sbft_core.Config
module Keys = Sbft_core.Keys
module Batching = Sbft_core.Batching

type env = {
  engine : Engine.t;
  trace : Trace.t;
  keys : Keys.t;
  send : Engine.ctx -> src:int -> dst:int -> Pbft_types.msg -> unit;
  exec_cost : Pbft_types.request list -> Engine.time;
}

type slot = {
  seq : int;
  mutable pp : (int * Types.request list * string) option;
  prepares : (int, unit) Hashtbl.t;
  commits : (int, unit) Hashtbl.t;
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable prepared : bool;
  mutable committed : Types.request list option;
  mutable executed : bool;
}

let new_slot seq =
  {
    seq;
    pp = None;
    prepares = Hashtbl.create 8;
    commits = Hashtbl.create 8;
    sent_prepare = false;
    sent_commit = false;
    prepared = false;
    committed = None;
    executed = false;
  }

type t = {
  env : env;
  id : int;
  san : Sanitizer.t;
  store : Sbft_store.Auth_store.t;
  mutable view : int;
  mutable next_seq : int;
  mutable ls : int;
  slots : (int, slot) Hashtbl.t;
  pending : Types.request Queue.t;
  pending_keys : (int * int, unit) Hashtbl.t;
  client_table : (int, int * string * int) Hashtbl.t;
  checkpoints : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* seq -> voters *)
  batching : Batching.t;
  mutable batch_timer_armed : bool;
  outstanding : (int * int, Types.request) Hashtbl.t;
  mutable last_progress : Engine.time;
  mutable vc_backoff : int;
  mutable sent_vc_for : int;
  vc_msgs : (int, (int, (int * int * Types.request list) list) Hashtbl.t) Hashtbl.t;
  mutable n_committed : int;
  mutable n_view_changes : int;
  mutable retired : bool;
}

let cfg t = t.env.keys.Keys.config
let n_replicas t = Config.n (cfg t)
let quorum t = Config.quorum_bft (cfg t)

let create ~env ~id ~store =
  let config = env.keys.Keys.config in
  let san =
    Sanitizer.create ~enabled:config.Config.sanitize ~f:config.Config.f
      ~c:config.Config.c ()
  in
  Sanitizer.check_config san ~n:(Config.n config);
  {
    env;
    id;
    san;
    store;
    view = 0;
    next_seq = 1;
    ls = 0;
    slots = Hashtbl.create 128;
    pending = Queue.create ();
    pending_keys = Hashtbl.create 64;
    client_table = Hashtbl.create 64;
    checkpoints = Hashtbl.create 8;
    batching = Batching.create env.keys.Keys.config;
    batch_timer_armed = false;
    outstanding = Hashtbl.create 64;
    last_progress = 0;
    vc_backoff = 0;
    sent_vc_for = 0;
    vc_msgs = Hashtbl.create 4;
    n_committed = 0;
    n_view_changes = 0;
    retired = false;
  }

let id t = t.id
let view t = t.view
let primary_of t v = v mod n_replicas t
let is_primary t = Int.equal (primary_of t t.view) t.id
let last_executed t = Sbft_store.Auth_store.last_executed t.store
let state_digest t = Sbft_store.Auth_store.digest t.store
let blocks_committed t = t.n_committed
let view_changes_completed t = t.n_view_changes

(* Adversary observation surface — same restricted namespace as the
   SBFT replica so the schedule fuzzer's attacker sees both systems
   through one lens (see Replica's obs_* block for the rationale). *)
let obs_view t = t.view
let obs_last_executed t = last_executed t
let obs_next_seq t = t.next_seq
let obs_frontier t = Hashtbl.fold (fun seq _ acc -> max seq acc) t.slots 0

let committed_block t seq =
  match Hashtbl.find_opt t.slots seq with Some s -> s.committed | None -> None

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s = new_slot seq in
      Hashtbl.replace t.slots seq s;
      s

let send t ctx ~dst msg = t.env.send ctx ~src:t.id ~dst msg

(* Every replica timer goes through this wrapper so that retiring the
   object (cluster teardown / crash) silences callbacks still in
   flight — the batch timer and the self-rescheduling liveness timer
   would otherwise tick on as zombies. *)
let set_replica_timer t ~after f =
  Engine.set_timer t.env.engine ~node:t.id ~after (fun ctx ->
      if not t.retired then f ctx)

let retire t = t.retired <- true

(* All-to-all broadcast with one RSA signature by the sender; every
   receiver pays one verification (charged on receipt). *)
let broadcast t ctx msg =
  Engine.charge ctx (Cost_model.Tally.note "rsa_sign" Cost_model.rsa_sign);
  for r = 0 to n_replicas t - 1 do
    send t ctx ~dst:r msg
  done

let note_progress t ctx = t.last_progress <- Engine.ctx_now ctx

let mark_outstanding t (r : Types.request) =
  if r.Types.client >= 0 then Hashtbl.replace t.outstanding (r.Types.client, r.Types.timestamp) r

let trace t ctx kind detail =
  Trace.emit t.env.trace ~time:(Engine.ctx_now ctx) ~node:t.id ~kind ~detail

let rec on_message t ctx ~src msg =
  ignore src;
  match msg with
  | Pbft_types.Request r -> on_request t ctx r
  | Pbft_types.Pre_prepare { seq; view; reqs } ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
      on_pre_prepare t ctx ~seq ~view ~reqs
  | Pbft_types.Prepare { seq; view; h; replica } ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
      on_prepare t ctx ~seq ~view ~h ~replica
  | Pbft_types.Commit { seq; view; h; replica } ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
      on_commit t ctx ~seq ~view ~h ~replica
  | Pbft_types.Checkpoint { seq; digest; replica } ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
      on_checkpoint t ctx ~seq ~digest ~replica
  | Pbft_types.View_change { view; ls; prepared; replica } ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
      on_view_change t ctx ~view ~ls ~prepared ~replica
  | Pbft_types.New_view { view; pre_prepares } ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
      on_new_view t ctx ~view ~pre_prepares
  | Pbft_types.Reply _ -> ()

and on_request t ctx (r : Types.request) =
  match Hashtbl.find_opt t.client_table r.Types.client with
  | Some (ts, value, seq) when ts >= r.Types.timestamp ->
      Engine.charge ctx (Cost_model.Tally.note "rsa_sign" Cost_model.rsa_sign);
      send t ctx ~dst:r.Types.client
        (Pbft_types.Reply
           { view = t.view; replica = t.id; client = r.Types.client; timestamp = ts; seq; value })
  | _ ->
      if is_primary t then begin
        if not (Hashtbl.mem t.pending_keys (r.Types.client, r.Types.timestamp)) then begin
          Engine.charge ctx (Cost_model.Tally.note "rsa_verify" Cost_model.rsa_verify);
          if Keys.verify_request t.env.keys r then begin
            Hashtbl.replace t.pending_keys (r.Types.client, r.Types.timestamp) ();
            Queue.push r t.pending;
            Batching.observe_pending t.batching (Queue.length t.pending);
            mark_outstanding t r;
            try_propose t ctx
          end
        end
      end
      else if not (Hashtbl.mem t.outstanding (r.Types.client, r.Types.timestamp)) then begin
        mark_outstanding t r;
        send t ctx ~dst:(primary_of t t.view) (Pbft_types.Request r)
      end

and inflight t =
  let le = last_executed t in
  let count = ref 0 in
  for s = le + 1 to t.next_seq - 1 do
    match Hashtbl.find_opt t.slots s with
    | Some sl when sl.committed <> None -> ()
    | _ -> incr count
  done;
  !count

and try_propose t ctx =
  if is_primary t then begin
    let config = cfg t in
    let target = Batching.batch_size t.batching in
    let can () =
      (not (Queue.is_empty t.pending))
      && t.next_seq <= t.ls + config.Config.win
      && inflight t < Batching.max_concurrent config
    in
    while can () && Queue.length t.pending >= target do
      propose t ctx target
    done;
    if can () && not t.batch_timer_armed then begin
      t.batch_timer_armed <- true;
      ignore
        (set_replica_timer t ~after:config.Config.batch_timeout
           (fun ctx ->
             t.batch_timer_armed <- false;
             if is_primary t && not (Queue.is_empty t.pending)
                && t.next_seq <= t.ls + config.Config.win
                && inflight t < Batching.max_concurrent config
             then begin
               propose t ctx (Queue.length t.pending);
               try_propose t ctx
             end))
    end
  end

and propose t ctx batch =
  let batch = min batch (min (Queue.length t.pending) (cfg t).Config.max_batch) in
  if batch > 0 then begin
    let reqs = List.init batch (fun _ -> Queue.pop t.pending) in
    List.iter
      (fun (r : Types.request) -> Hashtbl.remove t.pending_keys (r.Types.client, r.Types.timestamp))
      reqs;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Engine.charge ctx (Cost_model.Tally.note "hash" (Cost_model.sha256 (Types.requests_bytes reqs)));
    trace t ctx "send:pre-prepare" (Printf.sprintf "seq=%d batch=%d" seq batch);
    broadcast t ctx (Pbft_types.Pre_prepare { seq; view = t.view; reqs })
  end

and on_pre_prepare t ctx ~seq ~view ~reqs =
  let config = cfg t in
  let sl = slot t seq in
  if
    Int.equal view t.view && sl.pp = None && seq > t.ls
    && seq <= t.ls + config.Config.win
  then begin
    let real = List.filter (fun (r : Types.request) -> r.Types.client >= 0) reqs in
    Engine.charge ctx (Cost_model.Tally.note "rsa_verify" (List.length real * Cost_model.rsa_verify));
    if List.for_all (fun r -> Keys.verify_request t.env.keys r) real then begin
      Engine.charge ctx (Cost_model.Tally.note "hash" (Cost_model.sha256 (Types.requests_bytes reqs)));
      let h = Pbft_types.block_hash ~seq ~view ~reqs in
      sl.pp <- Some (view, reqs, h);
      List.iter (mark_outstanding t) real;
      if not sl.sent_prepare then begin
        sl.sent_prepare <- true;
        broadcast t ctx (Pbft_types.Prepare { seq; view; h; replica = t.id })
      end;
      check_prepared t ctx sl
    end
  end

and check_prepared t ctx sl =
  match sl.pp with
  | Some (view, _, _) when Int.equal view t.view ->
      if
        (not sl.prepared)
        && ((Hashtbl.length sl.prepares >= quorum t - 1) [@quorum.adjust 1])
        (* pre-prepare counts as one vote: the [- 1] is declared and
           checked by R12, and the sanitizer count below re-adds it *)
      then begin
        Sanitizer.check_quorum t.san Sanitizer.Majority
          ~count:(Hashtbl.length sl.prepares + 1);
        sl.prepared <- true;
        if not sl.sent_commit then begin
          sl.sent_commit <- true;
          match sl.pp with
          | Some (_, _, h) ->
              broadcast t ctx (Pbft_types.Commit { seq = sl.seq; view; h; replica = t.id })
          | None -> ()
        end
      end;
      check_committed t ctx sl
  | _ -> ()

and on_prepare t ctx ~seq ~view ~h ~replica =
  if Int.equal view t.view && seq > t.ls && seq <= t.ls + (cfg t).Config.win then begin
    let sl = slot t seq in
    let matches = match sl.pp with Some (_, _, h') -> String.equal h h' | None -> true in
    if matches && not (Hashtbl.mem sl.prepares replica) then begin
      Hashtbl.replace sl.prepares replica ();
      check_prepared t ctx sl
    end
  end

and on_commit t ctx ~seq ~view ~h ~replica =
  if Int.equal view t.view && seq > t.ls && seq <= t.ls + (cfg t).Config.win then begin
    let sl = slot t seq in
    let matches = match sl.pp with Some (_, _, h') -> String.equal h h' | None -> true in
    if matches && not (Hashtbl.mem sl.commits replica) then begin
      Hashtbl.replace sl.commits replica ();
      check_committed t ctx sl
    end
  end

and check_committed t ctx sl =
  match sl.pp with
  | Some (view, reqs, digest)
    when sl.committed = None && sl.prepared && Hashtbl.length sl.commits >= quorum t ->
      Sanitizer.check_quorum t.san Sanitizer.Majority
        ~count:(Hashtbl.length sl.commits);
      Sanitizer.record_commit t.san ~seq:sl.seq ~view ~digest;
      sl.committed <- Some reqs;
      t.n_committed <- t.n_committed + 1;
      note_progress t ctx;
      Engine.charge ctx (Cost_model.Tally.note "persist" (Cost_model.persist_block (Types.requests_bytes reqs)));
      trace t ctx "commit" (Printf.sprintf "seq=%d" sl.seq);
      try_execute t ctx;
      if is_primary t then try_propose t ctx
  | _ -> ()

and try_execute t ctx =
  let config = cfg t in
  let continue = ref true in
  while !continue do
    let next = last_executed t + 1 in
    match Hashtbl.find_opt t.slots next with
    | Some ({ committed = Some reqs; executed = false; _ } as sl) ->
        Sanitizer.record_execute t.san ~seq:next;
        sl.executed <- true;
        Engine.charge ctx (Cost_model.Tally.note "exec" (t.env.exec_cost reqs));
        let is_dup (r : Types.request) =
          r.Types.client >= 0
          &&
          match Hashtbl.find_opt t.client_table r.Types.client with
          | Some (ts, _, _) -> ts >= r.Types.timestamp
          | None -> false
        in
        let ops = List.map (fun (r : Types.request) -> if is_dup r then "" else r.Types.op) reqs in
        let outputs = Sbft_store.Auth_store.execute_block t.store ~seq:next ~ops in
        note_progress t ctx;
        List.iter
          (fun ((r : Types.request), value) ->
            Hashtbl.remove t.outstanding (r.Types.client, r.Types.timestamp);
            if r.Types.client >= 0 then begin
              (match Hashtbl.find_opt t.client_table r.Types.client with
              | Some (ts, _, _) when ts >= r.Types.timestamp -> ()
              | _ -> Hashtbl.replace t.client_table r.Types.client (r.Types.timestamp, value, next));
              Engine.charge ctx (Cost_model.Tally.note "rsa_sign" Cost_model.rsa_sign);
              send t ctx ~dst:r.Types.client
                (Pbft_types.Reply
                   {
                     view = t.view;
                     replica = t.id;
                     client = r.Types.client;
                     timestamp = r.Types.timestamp;
                     seq = next;
                     value;
                   })
            end)
          (List.combine reqs outputs);
        (* Periodic checkpoint: all-to-all digest votes (the quadratic
           protocol SBFT's ingredient 3 replaces). *)
        if next mod Config.checkpoint_interval config = 0 then begin
          Engine.charge ctx (Cost_model.Tally.note "hash" (Cost_model.sha256 64));
          broadcast t ctx
            (Pbft_types.Checkpoint
               { seq = next; digest = state_digest t; replica = t.id })
        end
    | _ -> continue := false
  done;
  if is_primary t then try_propose t ctx

and on_checkpoint t ctx ~seq ~digest ~replica =
  ignore digest;
  let voters =
    match Hashtbl.find_opt t.checkpoints seq with
    | Some v -> v
    | None ->
        let v = Hashtbl.create 8 in
        Hashtbl.replace t.checkpoints seq v;
        v
  in
  if not (Hashtbl.mem voters replica) then begin
    Hashtbl.replace voters replica ();
    if Hashtbl.length voters >= quorum t && seq > t.ls then begin
      Sanitizer.check_quorum t.san Sanitizer.Majority
        ~count:(Hashtbl.length voters);
      t.ls <- seq;
      note_progress t ctx;
      (* GC everything below the stable checkpoint. *)
      let stale =
        List.filter (fun s -> s <= seq)
          (Det.sorted_keys ~compare:Int.compare t.slots)
      in
      List.iter (Hashtbl.remove t.slots) stale;
      Sanitizer.prune_below t.san ~seq;
      Sbft_store.Auth_store.gc_below t.store ~seq
    end
  end

(* --------------------------- view change --------------------------- *)

and start_view_change t ctx ~target_view =
  if target_view > t.sent_vc_for then begin
    t.sent_vc_for <- target_view;
    trace t ctx "view-change" (Printf.sprintf "to=%d" target_view);
    (* Certificate list in ascending seq order: the VC message payload
       is replay-visible, so its layout must not depend on Hashtbl
       iteration order. *)
    let prepared =
      List.filter_map
        (fun (seq, sl) ->
          if sl.prepared && seq > t.ls then
            match sl.pp with Some (v, reqs, _) -> Some (seq, v, reqs) | None -> None
          else None)
        (Det.sorted_bindings ~compare:Int.compare t.slots)
    in
    broadcast t ctx
      (Pbft_types.View_change { view = target_view - 1; ls = t.ls; prepared; replica = t.id })
  end

and on_view_change t ctx ~view ~ls ~prepared ~replica =
  ignore ls;
  let target = view + 1 in
  if target > t.view then begin
    let tbl =
      match Hashtbl.find_opt t.vc_msgs target with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace t.vc_msgs target tbl;
          tbl
    in
    if not (Hashtbl.mem tbl replica) then begin
      Hashtbl.replace tbl replica prepared;
      if Hashtbl.length tbl >= Config.pi_threshold (cfg t) && t.sent_vc_for < target
      then begin
        Sanitizer.check_quorum t.san Sanitizer.Pi ~count:(Hashtbl.length tbl);
        start_view_change t ctx ~target_view:target
      end;
      if Int.equal (primary_of t target) t.id && Hashtbl.length tbl >= quorum t then begin
        Sanitizer.check_quorum t.san Sanitizer.Majority
          ~count:(Hashtbl.length tbl);
        (* Re-propose the highest-view prepared block per slot. *)
        (* Visit senders in replica-id order: equal-view ties keep the
           first certificate seen, so the winner must not depend on
           Hashtbl iteration order. *)
        let best : (int, int * Types.request list) Hashtbl.t = Hashtbl.create 16 in
        Det.iter_sorted ~compare:Int.compare
          (fun _ certs ->
            List.iter
              (fun (seq, v, reqs) ->
                match Hashtbl.find_opt best seq with
                | Some (v', _) when v' >= v -> ()
                | _ -> Hashtbl.replace best seq (v, reqs))
              certs)
          tbl;
        let pre_prepares =
          Hashtbl.fold (fun seq (_, reqs) acc -> (seq, reqs) :: acc) best []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        trace t ctx "send:new-view" (Printf.sprintf "view=%d" target);
        broadcast t ctx (Pbft_types.New_view { view = target; pre_prepares })
      end
    end
  end

and on_new_view t ctx ~view ~pre_prepares =
  if view > t.view then begin
    Sanitizer.record_view_entry t.san ~view;
    t.view <- view;
    t.n_view_changes <- t.n_view_changes + 1;
    t.vc_backoff <- 0;
    note_progress t ctx;
    (* Reset per-view state of open slots. *)
    Det.iter_sorted ~compare:Int.compare
      (fun _ sl ->
        if sl.committed = None then begin
          sl.pp <- None;
          Hashtbl.reset sl.prepares;
          Hashtbl.reset sl.commits;
          sl.sent_prepare <- false;
          sl.sent_commit <- false;
          sl.prepared <- false
        end)
      t.slots;
    let top = ref t.ls in
    List.iter
      (fun (seq, reqs) ->
        if seq > !top then top := seq;
        if seq > t.ls then on_pre_prepare t ctx ~seq ~view ~reqs)
      pre_prepares;
    if is_primary t then begin
      t.next_seq <- max t.next_seq (!top + 1);
      (* Re-drive requests stranded by the old view, in (client,
         timestamp) order: the pending queue and resend sequence are
         replay-visible. *)
      Det.iter_sorted ~compare:(Det.compare_pair Int.compare Int.compare)
        (fun key r ->
          if not (Hashtbl.mem t.pending_keys key) then begin
            Hashtbl.replace t.pending_keys key ();
            Queue.push r t.pending
          end)
        t.outstanding;
      try_propose t ctx
    end
    else
      Det.iter_sorted ~compare:(Det.compare_pair Int.compare Int.compare)
        (fun _ r -> send t ctx ~dst:(primary_of t t.view) (Pbft_types.Request r))
        t.outstanding
  end

and liveness_tick t ctx =
  let config = cfg t in
  let waiting = Hashtbl.length t.outstanding > 0 || not (Queue.is_empty t.pending) in
  if waiting then begin
    let timeout = config.Config.view_change_timeout * (1 lsl min 6 t.vc_backoff) in
    if Engine.ctx_now ctx - t.last_progress > timeout then begin
      t.vc_backoff <- t.vc_backoff + 1;
      start_view_change t ctx ~target_view:(max (t.view + 1) (t.sent_vc_for + 1))
    end
  end

let rec arm_liveness t =
  ignore
    (set_replica_timer t
       ~after:((cfg t).Config.view_change_timeout / 2)
       (fun ctx ->
         liveness_tick t ctx;
         arm_liveness t))

let start t ctx =
  note_progress t ctx;
  arm_liveness t
