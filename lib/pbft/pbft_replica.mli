(** Scale-optimized PBFT replica — the paper's baseline system.

    Classic Castro-Liskov three-phase commit with all-to-all prepare and
    commit rounds ([n = 3f + 1]); every server message carries an RSA
    signature (following "Making BFT systems tolerate Byzantine faults",
    the configuration the paper benchmarks against); clients collect
    [f + 1] matching replies.  Includes batching, checkpointing with
    all-to-all checkpoint messages, and a PBFT-style view change. *)

type env = {
  engine : Sbft_sim.Engine.t;
  trace : Sbft_sim.Trace.t;
  keys : Sbft_core.Keys.t;  (** only the PKI part is used *)
  send : Sbft_sim.Engine.ctx -> src:int -> dst:int -> Pbft_types.msg -> unit;
  exec_cost : Pbft_types.request list -> Sbft_sim.Engine.time;
}

type t

val create : env:env -> id:int -> store:Sbft_store.Auth_store.t -> t

val id : t -> int
val view : t -> int
val last_executed : t -> int
val state_digest : t -> string
val blocks_committed : t -> int
val view_changes_completed : t -> int
val committed_block : t -> int -> Pbft_types.request list option

(** {2 Adversary observation surface}

    Mirrors {!Sbft_core.Replica}'s [obs_*] namespace: view/progress
    counters and the highest active slot.  Results are attacker-visible
    by definition — the R6 taint lint bars protocol handlers from
    consuming them. *)

val obs_view : t -> int
val obs_last_executed : t -> int
val obs_next_seq : t -> int

(** Highest slot with any protocol activity at this replica. *)
val obs_frontier : t -> int

val on_message : t -> Sbft_sim.Engine.ctx -> src:int -> Pbft_types.msg -> unit
val start : t -> Sbft_sim.Engine.ctx -> unit

val retire : t -> unit
(** Permanently silence this replica's timers (batch and liveness):
    armed callbacks still in flight become no-ops.  Used at cluster
    teardown / crash so a dead incarnation cannot tick on. *)
