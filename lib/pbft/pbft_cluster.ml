open Sbft_sim
module Config = Sbft_core.Config
module Keys = Sbft_core.Keys
module Cluster = Sbft_core.Cluster

type t = {
  engine : Engine.t;
  network : Network.t;
  trace : Trace.t;
  keys : Keys.t;
  config : Config.t;
  replicas : Pbft_replica.t array;
  clients : Pbft_client.t array;
  latency : Stats.Latency.t;
  throughput : Stats.Throughput.t;
}

let send_overhead = Engine.us 20

let create ?(seed = 1L) ?(trace = false) ?(cpu_scale = 1.0) ~config ~num_clients
    ~topology ~(service : Cluster.service) () =
  let config = { config with Config.c = 0 } in
  let n = Config.n config in
  let num_nodes = n + num_clients in
  let engine = Engine.create ~num_nodes ~seed () in
  for node = 0 to num_nodes - 1 do
    Engine.set_cpu_scale engine node cpu_scale
  done;
  let network = Network.create ~topology:(topology ~num_nodes) () in
  let tr = Trace.create ~enabled:trace () in
  let rng = Rng.split (Engine.rng engine) in
  let keys, _replica_keys, client_kps = Keys.setup rng ~config ~num_clients in
  let deliver = ref (fun _ctx ~src:_ ~dst:_ _msg -> ()) in
  let send ctx ~src ~dst msg =
    Engine.charge ctx send_overhead;
    Network.send network engine ~src ~dst ~size:(Pbft_types.size msg)
      ~at:(Engine.ctx_now ctx) (fun ctx -> !deliver ctx ~src ~dst msg)
  in
  let env =
    { Pbft_replica.engine; trace = tr; keys; send; exec_cost = service.Cluster.exec_cost }
  in
  let exec_cache = Sbft_store.Auth_store.new_cache () in
  let replicas =
    Array.init n (fun i ->
        let store = service.Cluster.make_store () in
        Sbft_store.Auth_store.set_cache store exec_cache;
        Pbft_replica.create ~env ~id:i ~store)
  in
  let latency = Stats.Latency.create () in
  let throughput = Stats.Throughput.create () in
  let clients =
    Array.init num_clients (fun i ->
        Pbft_client.create ~env ~id:(n + i) ~keypair:client_kps.(i)
          ~on_complete:(fun ~timestamp:_ ~latency:l ~value:_ ->
            Stats.Latency.add latency l;
            Stats.Throughput.add throughput ~at:(Engine.now engine) 1))
  in
  deliver :=
    (fun ctx ~src ~dst msg ->
      if dst < n then Pbft_replica.on_message replicas.(dst) ctx ~src msg
      else if dst < num_nodes then Pbft_client.on_message clients.(dst - n) ctx ~src msg);
  Array.iter
    (fun r ->
      Engine.dispatch engine ~dst:(Pbft_replica.id r) ~at:0 (fun ctx ->
          Pbft_replica.start r ctx))
    replicas;
  { engine; network; trace = tr; keys; config; replicas; clients; latency; throughput }

let start_clients t ~requests_per_client ~make_op =
  Array.iteri
    (fun i c ->
      Pbft_client.run_closed_loop c ~num_requests:requests_per_client
        ~make_op:(fun k -> make_op ~client:i k)
        ~start_at:0)
    t.clients

let crash_replicas t ids =
  List.iter
    (fun id ->
      (* Retire first so any timer already armed by this incarnation is
         a no-op if the engine ever re-enables the node. *)
      Pbft_replica.retire t.replicas.(id);
      Engine.crash t.engine id)
    ids
let run_for t duration = Engine.run_until t.engine (Engine.now t.engine + duration)

let total_completed t =
  Array.fold_left (fun acc c -> acc + Pbft_client.completed c) 0 t.clients

let agreement_ok t =
  let ok = ref true in
  let max_exec =
    Array.fold_left (fun acc r -> max acc (Pbft_replica.last_executed r)) 0 t.replicas
  in
  for seq = 1 to max_exec do
    let blocks =
      Array.to_list t.replicas
      |> List.filter_map (fun r -> Pbft_replica.committed_block r seq)
      |> List.map (List.map (fun (r : Sbft_core.Types.request) -> r.Sbft_core.Types.op))
    in
    match blocks with
    | [] -> ()
    | first :: rest ->
        if not (List.for_all (List.equal String.equal first) rest) then ok := false
  done;
  Array.iter
    (fun ri ->
      Array.iter
        (fun rj ->
          if
            Int.equal (Pbft_replica.last_executed ri) (Pbft_replica.last_executed rj)
            && Pbft_replica.last_executed ri > 0
            && not (String.equal (Pbft_replica.state_digest ri) (Pbft_replica.state_digest rj))
          then ok := false)
        t.replicas)
    t.replicas;
  !ok
