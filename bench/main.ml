(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index) plus
   micro-benchmarks of the cryptographic and EVM substrates.

   Usage:
     bench/main.exe                 run everything at quick scale
     bench/main.exe --full ...      paper scale (f=64, n=193-209; slow)
     bench/main.exe fig1            Figure 1 message-flow trace
     bench/main.exe fig2            Figures 2+3 grids (throughput/latency)
     bench/main.exe contract-continent | contract-world | contract-baseline
     bench/main.exe ablation        ingredient ablations
     bench/main.exe micro           Bechamel micro-benchmarks
     bench/main.exe regress         regression grid -> BENCH_3.json, diffed
                                    against bench/baseline.json (CI gate);
                                    --update-baseline rewrites the baseline
     bench/main.exe regress --paper [--only NAME] [--budget-wall-s N]
                                    paper-scale smoke (n=193-209, ~102k ops
                                    per row); writes bench_out/paper_profile.json
                                    and fails rows over the wall budget
     bench/main.exe regress --sweep S [--only NAME]
                                    seeded sweep of the paper family, S seeds;
                                    mean +/- 95% CI -> bench_out/seed_sweep.json
     bench/main.exe check ...       schedule fuzzer: generate -> run property
                                    oracles -> shrink counterexamples (see
                                    `check --help`; also `check replay-dir
                                    test/corpus`) *)

open Sbft_harness

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks *)

let micro () =
  let open Bechamel in
  let open Sbft_crypto in
  Printf.printf "\n=== Micro-benchmarks (host-CPU performance of the substrates) ===\n%!";
  let msg64 = String.make 64 'x' and msg1k = String.make 1024 'x' in
  let rng = Sbft_sim.Rng.create 5L in
  let scheme, keys = Threshold.setup rng ~n:25 ~k:17 in
  let shares =
    Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg:msg64) keys)
  in
  let sigma = Threshold.combine_exn scheme ~msg:msg64 shares in
  let leaves = List.init 64 (fun i -> Printf.sprintf "leaf-%d" i) in
  let tree = Merkle.build leaves in
  let mm =
    List.fold_left
      (fun m i -> Merkle_map.set m ~key:(string_of_int i) ~value:"v")
      Merkle_map.empty
      (List.init 1000 (fun i -> i))
  in
  let a = Sbft_evm.U256.of_bytes_be (Sha256.digest "a") in
  let b = Sbft_evm.U256.of_bytes_be (Sha256.digest "b") in
  (* EVM: the pre-deployed token and a transfer call. *)
  let sender = Sbft_workload.Eth_workload.account 1 in
  let state =
    let store = Sbft_workload.Eth_workload.service.Sbft_core.Cluster.make_store () in
    Sbft_store.Auth_store.state store
  in
  let transfer_data =
    Sbft_evm.Contracts.token_transfer
      ~to_:(Sbft_workload.Eth_workload.account 2)
      ~amount:(Sbft_evm.U256.of_int 5)
  in
  let token = Sbft_workload.Eth_workload.token_address 0 in
  let tests =
    [
      Test.make ~name:"sha256-64B" (Staged.stage (fun () -> Sha256.digest msg64));
      Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Sha256.digest msg1k));
      Test.make ~name:"keccak256-64B" (Staged.stage (fun () -> Keccak.digest msg64));
      Test.make ~name:"hmac-64B" (Staged.stage (fun () -> Hmac.mac ~key:"k" msg64));
      Test.make ~name:"threshold-share-sign"
        (Staged.stage (fun () -> Threshold.share_sign keys.(0) ~msg:msg64));
      Test.make ~name:"threshold-combine-17of25"
        (Staged.stage (fun () -> Threshold.combine scheme ~msg:msg64 shares));
      Test.make ~name:"threshold-verify"
        (Staged.stage (fun () -> Threshold.verify scheme ~msg:msg64 sigma));
      Test.make ~name:"merkle-build-64" (Staged.stage (fun () -> Merkle.build leaves));
      Test.make ~name:"merkle-prove" (Staged.stage (fun () -> Merkle.prove tree 13));
      Test.make ~name:"merkle-map-set"
        (Staged.stage (fun () -> Merkle_map.set mm ~key:"new-key" ~value:"v"));
      Test.make ~name:"merkle-map-prove"
        (Staged.stage (fun () -> Merkle_map.prove mm "500"));
      Test.make ~name:"u256-mul" (Staged.stage (fun () -> Sbft_evm.U256.mul a b));
      Test.make ~name:"u256-div" (Staged.stage (fun () -> Sbft_evm.U256.div a b));
      Test.make ~name:"evm-token-transfer"
        (Staged.stage (fun () ->
             Sbft_evm.Interpreter.call ~ctx:Sbft_evm.Interpreter.default_context
               ~state ~caller:sender ~address:token ~value:Sbft_evm.U256.zero
               ~data:transfer_data ~gas:200_000));
    ]
  in
  let test = Test.make_grouped ~name:"sbft" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Printf.printf "%-34s %14.1f ns/op\n" name est
      | _ -> Printf.printf "%-34s %14s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

(* All file output lands in the gitignored bench_out/, never the repo
   root. *)
let bench_out file =
  let dir = "bench_out" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Filename.concat dir file

(* ------------------------------------------------------------------ *)
(* Benchmark regression gate (CI): run the grid, emit BENCH_3.json,
   diff against the committed baseline within tolerance bands. *)

let regress_report_path = "BENCH_3.json"
let regress_baseline_path = "bench/baseline.json"

(* Paper-scale smoke (CI): run the n=193/209 family with its finite
   ~102k-operation budget, write the profile artifact, and (optionally)
   fail on an absolute wall-clock budget — the only place wall time
   gates anything. *)
let regress_paper ~only ~budget_wall_s ~sweep_seeds =
  match sweep_seeds with
  | Some seeds ->
      let rows = Regress.sweep ?only ~seeds () in
      Regress.print_sweep rows;
      let path = bench_out "seed_sweep.json" in
      let oc = open_out path in
      output_string oc (Regress.sweep_report_json rows);
      close_out oc;
      Printf.printf "sweep report written to %s\n%!" path
  | None ->
      let rows = Regress.measure_paper ?only () in
      if rows = [] then begin
        Printf.eprintf "regress --paper: no row matches --only filter\n%!";
        exit 1
      end;
      Regress.print
        { Regress.schema = Regress.schema_id;
          entries = List.map (fun r -> r.Regress.entry) rows };
      let path = bench_out "paper_profile.json" in
      let oc = open_out path in
      output_string oc (Regress.paper_report_json rows);
      close_out oc;
      Printf.printf "profile artifact written to %s\n%!" path;
      let failures = ref 0 in
      List.iter
        (fun { Regress.entry; point } ->
          let expected =
            Regress.paper_clients * Regress.paper_requests_per_client
          in
          if not point.Scenario.agreement then begin
            incr failures;
            Printf.eprintf "paper: %s violated agreement\n%!" entry.Regress.name
          end;
          if point.Scenario.completed_requests < expected then begin
            incr failures;
            Printf.eprintf "paper: %s completed %d/%d requests\n%!"
              entry.Regress.name point.Scenario.completed_requests expected
          end;
          match budget_wall_s with
          | Some budget when entry.Regress.wall_ms > budget *. 1000. ->
              incr failures;
              Printf.eprintf
                "paper: %s took %.1f s of wall clock (budget %.0f s)\n%!"
                entry.Regress.name
                (entry.Regress.wall_ms /. 1000.)
                budget
          | _ -> ())
        rows;
      if !failures > 0 then exit 1;
      Printf.printf "paper-scale smoke: OK%s\n%!"
        (match budget_wall_s with
        | Some b -> Printf.sprintf " (within %.0f s wall budget per row)" b
        | None -> "")

let regress ~scale ~update_baseline =
  let current = Regress.measure scale in
  Regress.write ~path:regress_report_path current;
  Regress.print current;
  Printf.printf "report written to %s\n%!" regress_report_path;
  if update_baseline then begin
    Regress.write ~path:regress_baseline_path current;
    Printf.printf "baseline updated: %s\n%!" regress_baseline_path
  end
  else
    match scale with
    | `Full ->
        (* The committed baseline is recorded at quick scale; a full-
           scale run is informational only. *)
        Printf.printf "full scale: baseline comparison skipped (baseline is quick-scale)\n%!"
    | `Quick -> (
        match Regress.load ~path:regress_baseline_path with
        | Error e ->
            Printf.eprintf
              "regress: cannot load %s (%s); run with --update-baseline to create it\n%!"
              regress_baseline_path e;
            exit 1
        | Ok baseline -> (
            (* Wall clock is advisory on push/PR runs: print, don't gate. *)
            List.iter
              (fun a -> Printf.printf "advisory: %s\n%!" a)
              (Regress.wall_advisories ~baseline ~current ());
            match Regress.compare_reports ~baseline ~current () with
            | [] -> Printf.printf "regression gate: OK (within tolerance of %s)\n%!"
                      regress_baseline_path
            | violations ->
                Printf.eprintf "regression gate: FAILED vs %s\n" regress_baseline_path;
                List.iter (fun v -> Printf.eprintf "  - %s\n" v) violations;
                Printf.eprintf
                  "if the change is intentional, refresh the baseline with:\n\
                  \  bench/main.exe regress --update-baseline\n%!";
                exit 1))

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* `check` owns its argument list (its --quick differs from the
     benchmark-scale flag below), so dispatch before the flag filter. *)
  (match args with
  | "check" :: rest -> exit (Sbft_check.Check.main rest)
  | _ -> ());
  (* Valued flags (--only NAME, --budget-wall-s N, --sweep S) are
     stripped with their argument before the boolean-flag filter. *)
  let opt_value key args =
    let rec go acc = function
      | k :: v :: rest when String.equal k key -> (Some v, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let only, args = opt_value "--only" args in
  let budget_wall_s, args = opt_value "--budget-wall-s" args in
  let sweep_seeds, args = opt_value "--sweep" args in
  let full = List.mem "--full" args in
  let paper = List.mem "--paper" args in
  let update_baseline = List.mem "--update-baseline" args in
  let scale : Experiments.scale = if full then `Full else `Quick in
  let cmds =
    List.filter
      (fun a ->
        not (List.mem a [ "--full"; "--quick"; "--update-baseline"; "--paper" ]))
      args
  in
  let run_all () =
    Experiments.fig1 ();
    micro ();
    Experiments.fig2_fig3 ~csv:(bench_out "fig2_fig3.csv") scale;
    Experiments.contract_bench scale `Continent;
    Experiments.contract_bench scale `World;
    Experiments.contract_baseline ();
    Experiments.ablation_c scale;
    Experiments.ablation_fast_mode scale;
    Experiments.ablation_stagger scale
  in
  match cmds with
  | [] -> run_all ()
  | cmds ->
      List.iter
        (function
          | "fig1" -> Experiments.fig1 ()
          | "fig2" | "fig3" -> Experiments.fig2_fig3 ~csv:(bench_out "fig2_fig3.csv") scale
          | "replay" -> if not (Experiments.replay ()) then exit 1
          | "contract-continent" -> Experiments.contract_bench scale `Continent
          | "contract-world" -> Experiments.contract_bench scale `World
          | "contract-baseline" -> Experiments.contract_baseline ()
          | "ablation" ->
              Experiments.ablation_c scale;
              Experiments.ablation_fast_mode scale;
              Experiments.ablation_stagger scale
          | "micro" -> micro ()
          | "regress" ->
              if paper || sweep_seeds <> None then
                regress_paper ~only
                  ~budget_wall_s:(Option.map float_of_string budget_wall_s)
                  ~sweep_seeds:(Option.map int_of_string sweep_seeds)
              else regress ~scale ~update_baseline
          | other ->
              Printf.eprintf
                "unknown benchmark %S (try fig1 fig2 contract-continent \
                 contract-world contract-baseline ablation micro replay \
                 regress)\n"
                other;
              exit 1)
        cmds
