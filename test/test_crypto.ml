(* Tests for the cryptographic substrate: official test vectors for
   SHA-256 / Keccak-256 / HMAC, algebraic properties of the field (qcheck),
   Shamir reconstruction, threshold/group signature semantics including
   robustness against invalid shares, and Merkle structures. *)

open Sbft_crypto

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let rng () = Sbft_sim.Rng.create 2024L

(* ------------------------------------------------------------------ *)
(* SHA-256: FIPS 180-4 vectors *)

let test_sha256_vectors () =
  check_str "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex (Sha256.digest ""));
  check_str "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex (Sha256.digest "abc"));
  check_str "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  check_str "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (Sha256.digest (String.make 1_000_000 'a')))

let test_sha256_incremental () =
  (* Feeding in odd-sized chunks must match one-shot hashing. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 7; 63; 64; 65; 100; 300; 400 ] in
  List.iter
    (fun sz ->
      let take = min sz (String.length msg - !pos) in
      Sha256.feed ctx (String.sub msg !pos take);
      pos := !pos + take)
    sizes;
  Sha256.feed ctx (String.sub msg !pos (String.length msg - !pos));
  check_str "incremental = one-shot" (Sha256.hex (Sha256.digest msg))
    (Sha256.hex (Sha256.finalize ctx))

let test_sha256_length_boundaries () =
  (* Around the 55/56/64-byte padding boundaries. *)
  List.iter
    (fun len ->
      let m = String.make len 'x' in
      let d1 = Sha256.digest m in
      let ctx = Sha256.init () in
      Sha256.feed ctx m;
      check_str (Printf.sprintf "len %d" len) (Sha256.hex d1)
        (Sha256.hex (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128 ]

(* ------------------------------------------------------------------ *)
(* Keccak-256: Ethereum-flavor vectors *)

let test_keccak_vectors () =
  check_str "empty" "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
    (Sha256.hex (Keccak.digest ""));
  check_str "abc" "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
    (Sha256.hex (Keccak.digest "abc"));
  check_str "fox"
    "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"
    (Sha256.hex (Keccak.digest "The quick brown fox jumps over the lazy dog"))

let test_keccak_rate_boundaries () =
  (* 135/136/137 bytes cross the sponge-rate boundary; just check
     determinism and distinctness. *)
  let d135 = Keccak.digest (String.make 135 'a') in
  let d136 = Keccak.digest (String.make 136 'a') in
  let d137 = Keccak.digest (String.make 137 'a') in
  check "distinct" true (d135 <> d136 && d136 <> d137);
  check_str "deterministic" (Sha256.hex d136)
    (Sha256.hex (Keccak.digest (String.make 136 'a')))

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256: RFC 4231 vectors *)

let test_hmac_vectors () =
  check_str "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hex (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  check_str "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_verify () =
  let tag = Hmac.mac ~key:"k" "msg" in
  check "accepts" true (Hmac.verify ~key:"k" "msg" ~tag);
  check "rejects wrong msg" false (Hmac.verify ~key:"k" "msg2" ~tag);
  check "rejects wrong key" false (Hmac.verify ~key:"k2" "msg" ~tag)

(* ------------------------------------------------------------------ *)
(* Field: algebra (qcheck) *)

let field_gen =
  QCheck2.Gen.map (fun i -> Field.of_int64 (Int64.abs i)) QCheck2.Gen.int64

let qtest name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen prop)

let field_props =
  [
    qtest "add comm" QCheck2.Gen.(pair field_gen field_gen) (fun (a, b) ->
        Field.equal (Field.add a b) (Field.add b a));
    qtest "mul comm" QCheck2.Gen.(pair field_gen field_gen) (fun (a, b) ->
        Field.equal (Field.mul a b) (Field.mul b a));
    qtest "add assoc" QCheck2.Gen.(triple field_gen field_gen field_gen)
      (fun (a, b, c) ->
        Field.equal (Field.add a (Field.add b c)) (Field.add (Field.add a b) c));
    qtest "mul assoc" QCheck2.Gen.(triple field_gen field_gen field_gen)
      (fun (a, b, c) ->
        Field.equal (Field.mul a (Field.mul b c)) (Field.mul (Field.mul a b) c));
    qtest "distributive" QCheck2.Gen.(triple field_gen field_gen field_gen)
      (fun (a, b, c) ->
        Field.equal
          (Field.mul a (Field.add b c))
          (Field.add (Field.mul a b) (Field.mul a c)));
    qtest "sub inverse of add" QCheck2.Gen.(pair field_gen field_gen) (fun (a, b) ->
        Field.equal (Field.sub (Field.add a b) b) a);
    qtest "neg" field_gen (fun a -> Field.equal (Field.add a (Field.neg a)) Field.zero);
    qtest "inv" field_gen (fun a ->
        Field.equal a Field.zero || Field.equal (Field.mul a (Field.inv a)) Field.one);
    qtest "bytes roundtrip" field_gen (fun a ->
        Field.equal a (Field.of_bytes (Field.to_bytes a)));
    qtest "pow matches repeated mul" field_gen (fun a ->
        let m5 = Field.mul a (Field.mul a (Field.mul a (Field.mul a a))) in
        Field.equal (Field.pow a 5L) m5);
  ]

let test_field_edge_cases () =
  check "p reduces to 0" true (Field.equal (Field.of_int64 Field.p) Field.zero);
  check "p+1 reduces to 1" true
    (Field.equal (Field.of_int64 (Int64.add Field.p 1L)) Field.one);
  check "max int64" true
    (let v = Field.of_int64 Int64.max_int in
     Int64.compare (Field.to_int64 v) Field.p < 0);
  check "mul by zero" true (Field.equal (Field.mul (Field.of_int 12345) Field.zero) Field.zero);
  check "of_digest nonzero" true
    (not (Field.equal (Field.of_digest (Sha256.digest "x")) Field.zero))

let test_field_known_products () =
  (* (2^60) * 2 = 2^61 = p + 1 ≡ 1. *)
  let two_pow_60 = Field.pow (Field.of_int 2) 60L in
  check "2^60 * 2 = 1" true (Field.equal (Field.mul two_pow_60 (Field.of_int 2)) Field.one);
  (* Fermat: a^(p-1) = 1. *)
  let a = Field.of_int 123456789 in
  check "fermat" true (Field.equal (Field.pow a (Int64.sub Field.p 1L)) Field.one)

(* ------------------------------------------------------------------ *)
(* Polynomial / Shamir *)

let test_polynomial_eval () =
  (* 3 + 2x + x^2 at x = 5 -> 38 *)
  let p = Polynomial.of_coeffs [| Field.of_int 3; Field.of_int 2; Field.of_int 1 |] in
  check "horner" true (Field.equal (Polynomial.eval p (Field.of_int 5)) (Field.of_int 38))

let test_lagrange_recovers_constant () =
  let r = rng () in
  let const = Field.of_int 777 in
  let p = Polynomial.random r ~degree:3 ~const in
  let points =
    List.map (fun x -> (Field.of_int x, Polynomial.eval p (Field.of_int x))) [ 1; 3; 5; 9 ]
  in
  check "interpolates" true (Field.equal (Polynomial.lagrange_at_zero points) const)

let test_lagrange_rejects_bad_points () =
  check "zero x" true
    (try
       ignore (Polynomial.lagrange_at_zero [ (Field.zero, Field.one) ]);
       false
     with Invalid_argument _ -> true);
  check "dup x" true
    (try
       ignore
         (Polynomial.lagrange_at_zero
            [ (Field.one, Field.one); (Field.one, Field.of_int 2) ]);
       false
     with Invalid_argument _ -> true)

let test_shamir_roundtrip () =
  let r = rng () in
  let secret = Field.random r in
  let shares = Shamir.deal r ~secret ~threshold:5 ~num_shares:12 in
  (* Any 5 shares reconstruct. *)
  let subset = [ shares.(0); shares.(3); shares.(7); shares.(8); shares.(11) ] in
  check "reconstruct" true (Field.equal (Shamir.reconstruct subset) secret);
  (* 4 shares give garbage (overwhelmingly). *)
  let small = [ shares.(0); shares.(3); shares.(7); shares.(8) ] in
  check "under threshold" false (Field.equal (Shamir.reconstruct small) secret)

let test_shamir_invalid_params () =
  let r = rng () in
  check "threshold > n" true
    (try
       ignore (Shamir.deal r ~secret:Field.one ~threshold:5 ~num_shares:4);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Threshold signatures *)

let test_threshold_basic () =
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let msg = "decision block 42" in
  let shares = Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg) keys) in
  (match Threshold.combine scheme ~msg shares with
  | Some s -> check "verifies" true (Threshold.verify scheme ~msg s)
  | None -> Alcotest.fail "combine failed");
  (* Exactly k shares suffice. *)
  let k_shares = List.filteri (fun i _ -> i < 5) shares in
  match Threshold.combine scheme ~msg k_shares with
  | Some s ->
      check "k shares verify" true (Threshold.verify scheme ~msg s);
      check "wrong msg rejected" false (Threshold.verify scheme ~msg:"other" s)
  | None -> Alcotest.fail "combine with k shares failed"

let test_threshold_insufficient () =
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let msg = "m" in
  let shares =
    List.filteri (fun i _ -> i < 4)
      (Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg) keys))
  in
  check "under threshold" true (Threshold.combine scheme ~msg shares = None)

let test_threshold_robustness () =
  (* k valid shares mixed with invalid/duplicate ones still combine. *)
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let msg = "m" in
  let valid =
    List.filteri (fun i _ -> i < 5)
      (Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg) keys))
  in
  let forged = [ Threshold.forge_invalid_share ~signer:6; Threshold.forge_invalid_share ~signer:7 ] in
  let dup = [ List.hd valid ] in
  (match Threshold.combine scheme ~msg (forged @ dup @ valid) with
  | Some s -> check "robust combine" true (Threshold.verify scheme ~msg s)
  | None -> Alcotest.fail "robust combine failed");
  (* 4 valid + forged junk must NOT combine. *)
  let four = List.filteri (fun i _ -> i < 4) valid in
  check "forged cannot fill threshold" true
    (Threshold.combine scheme ~msg (forged @ four) = None)

let test_threshold_share_verify () =
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:4 ~k:3 in
  let msg = "m" in
  let sh = Threshold.share_sign keys.(2) ~msg in
  check "valid share" true (Threshold.share_verify scheme ~msg sh);
  check "wrong msg" false (Threshold.share_verify scheme ~msg:"m2" sh);
  check "forged" false
    (Threshold.share_verify scheme ~msg (Threshold.forge_invalid_share ~signer:1))

let test_threshold_cross_scheme_isolation () =
  (* A signature under one scheme instance must not verify under another. *)
  let r = rng () in
  let s1, k1 = Threshold.setup r ~n:4 ~k:3 in
  let s2, _ = Threshold.setup r ~n:4 ~k:3 in
  let msg = "m" in
  let shares = Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg) k1) in
  let sig1 = Threshold.combine_exn s1 ~msg shares in
  check "isolated" false (Threshold.verify s2 ~msg sig1)

let check_int = Alcotest.(check int)

let test_combine_verified_optimistic () =
  (* k honest shares: the optimistic path combines and checks the single
     combined signature with zero per-share verifications. *)
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let msg = "block" in
  let shares = Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg) keys) in
  let o = Threshold.combine_verified scheme ~msg shares in
  check "no fallback" false o.Threshold.fallback;
  check_int "zero per-share checks" 0 o.Threshold.fresh_checks;
  check "no bad signers" true (List.length o.Threshold.bad_signers = 0);
  match o.Threshold.signature with
  | Some s ->
      check "verifies" true (Threshold.verify scheme ~msg s);
      check "matches pessimistic combine" true
        (Field.equal s (Threshold.combine_exn scheme ~msg shares))
  | None -> Alcotest.fail "optimistic combine failed"

let test_combine_verified_fallback () =
  (* A Byzantine share among the first k trips the combined check; the
     fallback identifies exactly the bad signer, evicts it, and still
     combines a valid signature from the honest remainder. *)
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let msg = "block" in
  let shares =
    Array.to_list
      (Array.mapi
         (fun i k ->
           if i = 1 then Threshold.forge_invalid_share ~signer:2
           else Threshold.share_sign k ~msg)
         keys)
  in
  let o = Threshold.combine_verified scheme ~msg shares in
  check "fallback ran" true o.Threshold.fallback;
  check "exactly the bad signer" true
    (match o.Threshold.bad_signers with [ 2 ] -> true | _ -> false);
  (* Identification checks every candidate share (all n of them here). *)
  check_int "fresh checks cover all candidates" 7 o.Threshold.fresh_checks;
  (match o.Threshold.signature with
  | Some s -> check "recombined verifies" true (Threshold.verify scheme ~msg s)
  | None -> Alcotest.fail "fallback should still combine from honest shares");
  (* Not enough honest shares left: identification still names the bad
     signers but no signature can form. *)
  let two_bad =
    List.filteri (fun i _ -> i < 5)
      (List.mapi
         (fun i sh ->
           if i < 2 then Threshold.forge_invalid_share ~signer:(i + 1) else sh)
         shares)
  in
  let o2 = Threshold.combine_verified scheme ~msg two_bad in
  check "fallback ran (2 bad)" true o2.Threshold.fallback;
  check "both bad signers named" true
    (match o2.Threshold.bad_signers with [ 1; 2 ] -> true | _ -> false);
  check "no signature from 3 honest" true (o2.Threshold.signature = None)

let test_combine_verified_under_threshold () =
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let msg = "m" in
  let four =
    List.filteri (fun i _ -> i < 4)
      (Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg) keys))
  in
  let o = Threshold.combine_verified scheme ~msg four in
  check "no signature" true (o.Threshold.signature = None);
  check "no fallback below threshold" false o.Threshold.fallback

let test_combine_coeff_memo () =
  (* Repeated signer sets reuse the memoized Lagrange coefficients and
     produce bit-identical signatures, regardless of share order. *)
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let sign msg = Array.to_list (Array.map (fun k -> Threshold.share_sign k ~msg) keys) in
  let o1 = Threshold.combine_verified scheme ~msg:"m1" (sign "m1") in
  check "first combination computes coefficients" false o1.Threshold.coeffs_cached;
  let o2 = Threshold.combine_verified scheme ~msg:"m2" (List.rev (sign "m2")) in
  check "second combination hits the memo" true o2.Threshold.coeffs_cached;
  (match o2.Threshold.signature with
  | Some s ->
      check "memoized result identical to uncached combine" true
        (Field.equal s (Threshold.combine_exn scheme ~msg:"m2" (sign "m2")))
  | None -> Alcotest.fail "memoized combine failed");
  (* A different signer subset misses the memo. *)
  let subset = List.filteri (fun i _ -> i >= 2) (sign "m3") in
  let o3 = Threshold.combine_verified scheme ~msg:"m3" subset in
  check "different signer set misses the memo" false o3.Threshold.coeffs_cached

let test_share_verify_cache () =
  let r = rng () in
  let scheme, keys = Threshold.setup r ~n:7 ~k:5 in
  let msg = "m" in
  let sh = Threshold.share_sign keys.(0) ~msg in
  check "cached verify agrees (valid)" true (Threshold.share_verify_cached scheme ~msg sh);
  check "cached verify agrees on re-delivery" true
    (Threshold.share_verify_cached scheme ~msg sh);
  let forged = Threshold.forge_invalid_share ~signer:1 in
  check "cached verify agrees (forged)" false
    (Threshold.share_verify_cached scheme ~msg forged);
  check "negative verdicts cached too" false
    (Threshold.share_verify_cached scheme ~msg forged);
  (* The cache key includes the share value: a Byzantine signer
     re-sending a *different* share for the same message is re-checked,
     not answered from the stale verdict. *)
  check "same signer, fresh value, fresh verdict" true
    (Threshold.share_verify_cached scheme ~msg sh);
  (* Fallback identification over already-cached shares computes zero
     fresh per-share verifications. *)
  let shares =
    Array.to_list
      (Array.mapi
         (fun i k ->
           if i = 1 then Threshold.forge_invalid_share ~signer:2
           else Threshold.share_sign k ~msg)
         keys)
  in
  let o1 = Threshold.combine_verified scheme ~msg shares in
  check "first fallback verifies afresh" true (o1.Threshold.fresh_checks > 0);
  let o2 = Threshold.combine_verified scheme ~msg shares in
  check "re-delivered shares answered from cache" true
    (Int.equal o2.Threshold.fresh_checks 0)

let test_group_combine_verified () =
  let r = rng () in
  let scheme, keys = Group_sig.setup r ~n:5 in
  let msg = "block" in
  let shares = Array.to_list (Array.map (fun k -> Group_sig.share_sign k ~msg) keys) in
  let o = Group_sig.combine_verified scheme ~msg shares in
  check "no fallback" false o.Group_sig.fallback;
  (match o.Group_sig.signature with
  | Some s -> check "verifies" true (Group_sig.verify scheme ~msg s)
  | None -> Alcotest.fail "group combine failed");
  (* Missing signer: no combination, no fallback (nothing to identify). *)
  let o_missing = Group_sig.combine_verified scheme ~msg (List.tl shares) in
  check "missing signer -> None" true (o_missing.Group_sig.signature = None);
  check "missing signer -> no fallback" false o_missing.Group_sig.fallback;
  (* Corrupt share: fallback names the culprit; n-of-n admits no
     exclusion, so no signature. *)
  let corrupted =
    List.mapi
      (fun i sh ->
        if i = 2 then { sh with Group_sig.value = Field.add sh.Group_sig.value Field.one }
        else sh)
      shares
  in
  let o_bad = Group_sig.combine_verified scheme ~msg corrupted in
  check "fallback ran" true o_bad.Group_sig.fallback;
  check "culprit identified" true
    (match o_bad.Group_sig.bad_signers with [ 3 ] -> true | _ -> false);
  check "no signature possible" true (o_bad.Group_sig.signature = None)

let threshold_props =
  [
    qtest "combine any k-subset" QCheck2.Gen.(pair (int_range 1 20) (int_range 0 1000))
      (fun (k_extra, seed) ->
        let r = Sbft_sim.Rng.create (Int64.of_int (seed + 17)) in
        let k = 1 + (k_extra mod 6) in
        let n = k + (seed mod 5) in
        let scheme, keys = Threshold.setup r ~n ~k in
        let msg = Printf.sprintf "msg-%d" seed in
        let all = Array.map (fun key -> Threshold.share_sign key ~msg) keys in
        let idx = Array.init n (fun i -> i) in
        Sbft_sim.Rng.shuffle r idx;
        let subset = List.init k (fun i -> all.(idx.(i))) in
        match Threshold.combine scheme ~msg subset with
        | Some s -> Threshold.verify scheme ~msg s
        | None -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Group signatures *)

let test_group_sig () =
  let r = rng () in
  let scheme, keys = Group_sig.setup r ~n:5 in
  let msg = "block" in
  let shares = Array.to_list (Array.map (fun k -> Group_sig.share_sign k ~msg) keys) in
  (match Group_sig.combine scheme ~msg shares with
  | Some s ->
      check "verifies" true (Group_sig.verify scheme ~msg s);
      check "wrong msg" false (Group_sig.verify scheme ~msg:"x" s)
  | None -> Alcotest.fail "combine failed");
  (* n-1 shares are not enough. *)
  let missing = List.tl shares in
  check "needs all n" true (Group_sig.combine scheme ~msg missing = None)

let test_group_sig_share_verify () =
  let r = rng () in
  let scheme, keys = Group_sig.setup r ~n:3 in
  let sh = Group_sig.share_sign keys.(0) ~msg:"m" in
  check "valid" true (Group_sig.share_verify scheme ~msg:"m" sh);
  check "invalid msg" false (Group_sig.share_verify scheme ~msg:"w" sh)

(* ------------------------------------------------------------------ *)
(* PKI *)

let test_pki () =
  let r = rng () in
  let kp1 = Pki.generate r ~id:1 and kp2 = Pki.generate r ~id:2 in
  let s = Pki.sign kp1 "hello" in
  check "verifies" true (Pki.verify (Pki.public_key kp1) "hello" s);
  check "wrong msg" false (Pki.verify (Pki.public_key kp1) "bye" s);
  check "wrong key" false (Pki.verify (Pki.public_key kp2) "hello" s);
  Alcotest.(check int) "key id" 1 (Pki.key_id (Pki.public_key kp1))

(* ------------------------------------------------------------------ *)
(* Merkle tree *)

let test_merkle_roundtrip () =
  let leaves = List.init 13 (fun i -> Printf.sprintf "op-%d" i) in
  let t = Merkle.build leaves in
  Alcotest.(check int) "num leaves" 13 (Merkle.num_leaves t);
  List.iteri
    (fun i leaf ->
      let proof = Merkle.prove t i in
      check (Printf.sprintf "leaf %d verifies" i) true
        (Merkle.verify ~root:(Merkle.root t) ~leaf proof);
      check "wrong leaf fails" false
        (Merkle.verify ~root:(Merkle.root t) ~leaf:"bogus" proof))
    leaves

let test_merkle_single_and_empty () =
  let t1 = Merkle.build [ "only" ] in
  let p = Merkle.prove t1 0 in
  check "single leaf" true (Merkle.verify ~root:(Merkle.root t1) ~leaf:"only" p);
  let t0 = Merkle.build [] in
  check "empty root defined" true (String.length (Merkle.root t0) = 32)

let test_merkle_tamper_detection () =
  let t = Merkle.build [ "a"; "b"; "c"; "d" ] in
  let ta = Merkle.build [ "a"; "b"; "x"; "d" ] in
  check "roots differ" false (String.equal (Merkle.root t) (Merkle.root ta));
  (* Proof from the tampered tree fails against the honest root. *)
  let p = Merkle.prove ta 2 in
  check "cross verify fails" false (Merkle.verify ~root:(Merkle.root t) ~leaf:"x" p)

let merkle_props =
  [
    qtest "all proofs verify for random sizes" QCheck2.Gen.(int_range 1 64)
      (fun n ->
        let leaves = List.init n (fun i -> Printf.sprintf "leaf%d" i) in
        let t = Merkle.build leaves in
        List.for_all
          (fun i -> Merkle.verify ~root:(Merkle.root t) ~leaf:(List.nth leaves i) (Merkle.prove t i))
          (List.init n (fun i -> i)));
  ]

(* ------------------------------------------------------------------ *)
(* Merkle map *)

let test_merkle_map_basic () =
  let m = Merkle_map.empty in
  let m = Merkle_map.set m ~key:"alice" ~value:"10" in
  let m = Merkle_map.set m ~key:"bob" ~value:"20" in
  Alcotest.(check int) "cardinal" 2 (Merkle_map.cardinal m);
  Alcotest.(check (option string)) "get alice" (Some "10") (Merkle_map.get m "alice");
  Alcotest.(check (option string)) "get carol" None (Merkle_map.get m "carol");
  let m2 = Merkle_map.set m ~key:"alice" ~value:"15" in
  Alcotest.(check int) "overwrite keeps cardinal" 2 (Merkle_map.cardinal m2);
  Alcotest.(check (option string)) "updated" (Some "15") (Merkle_map.get m2 "alice");
  (* Persistence: old version unchanged. *)
  Alcotest.(check (option string)) "old version" (Some "10") (Merkle_map.get m "alice")

let test_merkle_map_digest_changes () =
  let m = Merkle_map.set Merkle_map.empty ~key:"k" ~value:"v" in
  let m2 = Merkle_map.set m ~key:"k" ~value:"v2" in
  check "digest reflects value" false (String.equal (Merkle_map.root m) (Merkle_map.root m2))

let test_merkle_map_proofs () =
  let m = ref Merkle_map.empty in
  for i = 0 to 99 do
    m := Merkle_map.set !m ~key:(Printf.sprintf "key%d" i) ~value:(Printf.sprintf "val%d" i)
  done;
  let root = Merkle_map.root !m in
  for i = 0 to 99 do
    let key = Printf.sprintf "key%d" i in
    match Merkle_map.prove !m key with
    | None -> Alcotest.fail "missing proof"
    | Some p ->
        check "proof verifies" true
          (Merkle_map.verify ~root ~key ~value:(Printf.sprintf "val%d" i) p);
        check "wrong value fails" false (Merkle_map.verify ~root ~key ~value:"evil" p)
  done;
  check "absent key" true (Merkle_map.prove !m "nope" = None)

let test_merkle_map_remove () =
  let m = ref Merkle_map.empty in
  for i = 0 to 19 do
    m := Merkle_map.set !m ~key:(string_of_int i) ~value:"v"
  done;
  let with_all = !m in
  for i = 10 to 19 do
    m := Merkle_map.remove !m (string_of_int i)
  done;
  Alcotest.(check int) "cardinal" 10 (Merkle_map.cardinal !m);
  check "removed" true (Merkle_map.get !m "15" = None);
  check "kept" true (Merkle_map.get !m "5" = Some "v");
  (* Canonical shape: root after removals equals root of fresh build. *)
  let fresh = ref Merkle_map.empty in
  for i = 0 to 9 do
    fresh := Merkle_map.set !fresh ~key:(string_of_int i) ~value:"v"
  done;
  check_str "canonical root" (Sha256.hex (Merkle_map.root !fresh))
    (Sha256.hex (Merkle_map.root !m));
  check "remove absent is noop" true
    (Merkle_map.root (Merkle_map.remove with_all "zzz") = Merkle_map.root with_all)

let test_merkle_map_fold () =
  let m =
    List.fold_left
      (fun m (k, v) -> Merkle_map.set m ~key:k ~value:v)
      Merkle_map.empty
      [ ("a", "1"); ("b", "2"); ("c", "3") ]
  in
  let bindings = Merkle_map.fold (fun k v acc -> (k, v) :: acc) m [] in
  Alcotest.(check int) "three bindings" 3 (List.length bindings);
  check "contains b" true (List.mem ("b", "2") bindings)

let merkle_map_props =
  [
    qtest "insertion order does not change root"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let r = Sbft_sim.Rng.create (Int64.of_int seed) in
        let n = 1 + Sbft_sim.Rng.int r 30 in
        let keys = Array.init n (fun i -> Printf.sprintf "k%d" i) in
        let build order =
          Array.fold_left
            (fun m k -> Merkle_map.set m ~key:k ~value:("v" ^ k))
            Merkle_map.empty order
        in
        let m1 = build keys in
        let shuffled = Array.copy keys in
        Sbft_sim.Rng.shuffle r shuffled;
        let m2 = build shuffled in
        String.equal (Merkle_map.root m1) (Merkle_map.root m2));
    qtest "set/remove sequences stay canonical"
      QCheck2.Gen.(int_range 0 500)
      (fun seed ->
        let r = Sbft_sim.Rng.create (Int64.of_int (seed * 31)) in
        let m = ref Merkle_map.empty in
        let reference = Hashtbl.create 16 in
        for _ = 1 to 40 do
          let k = Printf.sprintf "k%d" (Sbft_sim.Rng.int r 12) in
          if Sbft_sim.Rng.bool r 0.3 then begin
            m := Merkle_map.remove !m k;
            Hashtbl.remove reference k
          end
          else begin
            let v = Printf.sprintf "v%d" (Sbft_sim.Rng.int r 100) in
            m := Merkle_map.set !m ~key:k ~value:v;
            Hashtbl.replace reference k v
          end
        done;
        let fresh =
          Hashtbl.fold (fun k v acc -> Merkle_map.set acc ~key:k ~value:v) reference
            Merkle_map.empty
        in
        String.equal (Merkle_map.root fresh) (Merkle_map.root !m)
        && Merkle_map.cardinal !m = Hashtbl.length reference);
  ]

(* ------------------------------------------------------------------ *)
(* Cost model sanity *)

let test_cost_model_monotone () =
  check "batch verify grows" true
    (Cost_model.bls_batch_verify 10 < Cost_model.bls_batch_verify 100);
  check "combine grows" true (Cost_model.bls_combine 10 < Cost_model.bls_combine 100);
  check "group cheaper than threshold" true
    (Cost_model.group_combine 100 < Cost_model.bls_combine 100);
  check "rsa sign dominates verify" true (Cost_model.rsa_verify < Cost_model.rsa_sign);
  check "all positive" true
    (List.for_all (fun x -> x > 0)
       [
         Cost_model.bls_share_sign; Cost_model.bls_share_verify; Cost_model.bls_verify;
         Cost_model.rsa_sign; Cost_model.rsa_verify; Cost_model.sha256 100;
         Cost_model.hmac 100; Cost_model.merkle_build 10; Cost_model.kv_execute_op;
         Cost_model.persist_block 1000; Cost_model.evm_execute_tx;
       ])

let () =
  Alcotest.run "sbft_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
          Alcotest.test_case "length boundaries" `Quick test_sha256_length_boundaries;
        ] );
      ( "keccak",
        [
          Alcotest.test_case "vectors" `Quick test_keccak_vectors;
          Alcotest.test_case "rate boundaries" `Quick test_keccak_rate_boundaries;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "vectors" `Quick test_hmac_vectors;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "field",
        [
          Alcotest.test_case "edge cases" `Quick test_field_edge_cases;
          Alcotest.test_case "known products" `Quick test_field_known_products;
        ]
        @ field_props );
      ( "shamir",
        [
          Alcotest.test_case "polynomial eval" `Quick test_polynomial_eval;
          Alcotest.test_case "lagrange constant" `Quick test_lagrange_recovers_constant;
          Alcotest.test_case "lagrange bad points" `Quick test_lagrange_rejects_bad_points;
          Alcotest.test_case "roundtrip" `Quick test_shamir_roundtrip;
          Alcotest.test_case "invalid params" `Quick test_shamir_invalid_params;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "basic" `Quick test_threshold_basic;
          Alcotest.test_case "insufficient" `Quick test_threshold_insufficient;
          Alcotest.test_case "robustness" `Quick test_threshold_robustness;
          Alcotest.test_case "share verify" `Quick test_threshold_share_verify;
          Alcotest.test_case "scheme isolation" `Quick test_threshold_cross_scheme_isolation;
          Alcotest.test_case "optimistic combine" `Quick test_combine_verified_optimistic;
          Alcotest.test_case "fallback identification" `Quick test_combine_verified_fallback;
          Alcotest.test_case "under threshold" `Quick test_combine_verified_under_threshold;
          Alcotest.test_case "coefficient memo" `Quick test_combine_coeff_memo;
          Alcotest.test_case "verify cache" `Quick test_share_verify_cache;
        ]
        @ threshold_props );
      ( "group_sig",
        [
          Alcotest.test_case "basic" `Quick test_group_sig;
          Alcotest.test_case "share verify" `Quick test_group_sig_share_verify;
          Alcotest.test_case "optimistic combine" `Quick test_group_combine_verified;
        ] );
      ("pki", [ Alcotest.test_case "sign/verify" `Quick test_pki ]);
      ( "merkle",
        [
          Alcotest.test_case "roundtrip" `Quick test_merkle_roundtrip;
          Alcotest.test_case "single/empty" `Quick test_merkle_single_and_empty;
          Alcotest.test_case "tamper" `Quick test_merkle_tamper_detection;
        ]
        @ merkle_props );
      ( "merkle_map",
        [
          Alcotest.test_case "basic" `Quick test_merkle_map_basic;
          Alcotest.test_case "digest changes" `Quick test_merkle_map_digest_changes;
          Alcotest.test_case "proofs" `Quick test_merkle_map_proofs;
          Alcotest.test_case "remove" `Quick test_merkle_map_remove;
          Alcotest.test_case "fold" `Quick test_merkle_map_fold;
        ]
        @ merkle_map_props );
      ("cost_model", [ Alcotest.test_case "monotone" `Quick test_cost_model_monotone ]);
    ]
