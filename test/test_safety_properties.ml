(* Randomized safety testing, rebuilt on the schedule DSL (lib/check).

   Theorem VI.1 states that no two non-faulty replicas ever commit
   different blocks at the same sequence number, in the fully
   asynchronous model with up to f Byzantine replicas.  These property
   tests drive the same generator the `bench/main.exe check` fuzzer
   uses: fixed seeds produce fixed schedules, each run evaluates the
   full oracle suite (agreement, validity, checkpoint consistency,
   at-most-once, liveness-after-GST), and a failure prints the schedule
   text so the counterexample can be committed to test/corpus/ as-is. *)

open Sbft_check

let qtest name count gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let fail_with sched (v : Oracle.verdict) =
  QCheck2.Test.fail_reportf "oracle %s: %s\nschedule:\n%s" v.Oracle.name
    v.Oracle.detail (Schedule.to_string sched)

(* Safety oracles (everything but liveness) must hold on any generated
   schedule — the generator keeps the adversary within the f-budget. *)
let safety_only (outcome : Runner.outcome) =
  List.filter
    (fun (v : Oracle.verdict) -> not (String.equal v.Oracle.name "liveness"))
    outcome.Runner.verdicts

let prop_safety =
  qtest "safety oracles hold under random fault schedules" 10
    QCheck2.Gen.(int_range 0 10_000)
    (fun index ->
      let sched = Gen.generate ~profile:{ Gen.default_profile with quick = true } ~seed:0x5EEDL index in
      let outcome = Runner.run sched in
      match List.find_opt (fun (v : Oracle.verdict) -> not v.Oracle.pass) (safety_only outcome) with
      | Some v -> fail_with sched v
      | None -> true)

let prop_liveness_after_gst =
  (* Eventually-synchronous schedules guarantee a heal and quiet period
     after GST; every closed-loop request must then complete, and the
     at-most-once oracle pins the values clients accepted. *)
  qtest "liveness after GST" 6
    QCheck2.Gen.(int_range 0 10_000)
    (fun index ->
      let base = Gen.generate ~profile:{ Gen.default_profile with quick = true } ~seed:0x11FEL index in
      let sched = base in
      match sched.Schedule.gst_ms with
      | None -> true (* generator chose an async schedule: nothing to assert *)
      | Some _ -> (
          let outcome = Runner.run sched in
          match outcome.Runner.failed with
          | Some v -> fail_with sched v
          | None -> true))

let test_crash_only_liveness () =
  (* Deterministic regression: one crash + recovery, every request
     completes and at-most-once holds. *)
  let sched =
    {
      (Schedule.default ~name:"crash-only" ~seed:99L) with
      Schedule.requests = 10;
      gst_ms = Some 5_000;
      horizon_ms = 120_000;
      expect = Schedule.Expect_pass;
      steps =
        [
          { Schedule.at_ms = 700; action = Schedule.Crash 2 };
          { Schedule.at_ms = 5_000; action = Schedule.Recover 2 };
        ];
    }
  in
  let outcome = Runner.run sched in
  (match Runner.meets_expectation outcome with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "all requests completed" 20 outcome.Runner.completed

let test_at_most_once_under_retries () =
  (* Drops + a link delay force client retries to all replicas; the
     at-most-once oracle checks no retried request executed twice (each
     counter cell equals the client's request count). *)
  let sched =
    {
      (Schedule.default ~name:"retry-dedup" ~seed:5L) with
      Schedule.requests = 8;
      acks = false;
      gst_ms = Some 8_000;
      horizon_ms = 120_000;
      expect = Schedule.Expect_pass;
      steps =
        [
          { Schedule.at_ms = 300; action = Schedule.Set_drop 0.3 };
          { Schedule.at_ms = 1_000; action = Schedule.Delay_link { src = 0; dst = 1; delay_ms = 600 } };
          { Schedule.at_ms = 8_000; action = Schedule.Set_drop 0.0 };
          { Schedule.at_ms = 8_000; action = Schedule.Delay_link { src = 0; dst = 1; delay_ms = 0 } };
        ];
    }
  in
  let outcome = Runner.run sched in
  match Runner.meets_expectation outcome with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "sbft_safety_properties"
    [
      ( "random-schedules",
        [ prop_safety; prop_liveness_after_gst ] );
      ( "fixed-schedules",
        [
          Alcotest.test_case "crash-only liveness" `Quick test_crash_only_liveness;
          Alcotest.test_case "at-most-once under retries" `Quick test_at_most_once_under_retries;
        ] );
    ]
