(* Oracle unit tests over hand-built counterexample traces.

   Each of the six oracles gets a minimal synthetic [Oracle.obs]
   snapshot that trips it and a sibling that passes, driven through the
   pure [Oracle.evaluate_obs] — no simulator run involved.  An oracle
   weakened by refactoring (a dropped comparison, an inverted guard)
   fails these loudly instead of silently accepting whatever the
   fuzzer produces. *)

open Sbft_check

let verdict name obs =
  match
    List.find_opt
      (fun (v : Oracle.verdict) -> String.equal v.Oracle.name name)
      (Oracle.evaluate_obs obs)
  with
  | Some v -> v
  | None -> Alcotest.failf "oracle %s missing from verdict list" name

let check_trips name obs =
  let v = verdict name obs in
  if v.Oracle.pass then Alcotest.failf "oracle %s accepted the counterexample trace" name

let check_passes name obs =
  let v = verdict name obs in
  if not v.Oracle.pass then
    Alcotest.failf "oracle %s rejected the healthy trace: %s" name v.Oracle.detail

(* A healthy 4-replica cluster (f=1, c=0 shape) with one client
   (node id 4) that submitted and completed one request, executed at
   seq 1 by the two replicas we observe. *)

let healthy_replica rid =
  {
    Oracle.rid;
    last_executed = 1;
    digest = "digest-h1";
    blocks = [ (1, [ (4, 1, Oracle.expected_op 0) ]) ];
    certified = [ (0, "digest-genesis") ];
    counters = [| 1 |];
    executed_for = [| 1 |];
  }

let healthy =
  {
    Oracle.num_replicas = 4;
    num_clients = 1;
    replicas = [ healthy_replica 0; healthy_replica 1 ];
    submitted = [| 1 |];
    completed_ops = [| 1 |];
    accepted = [| [ (1, "1") ] |];
    requests = 1;
    gst_ms = Some 1_000;
    sanitizer_violation = None;
  }

let with_replicas replicas = { healthy with Oracle.replicas }

let test_healthy_passes_all () =
  List.iter
    (fun (v : Oracle.verdict) ->
      if not v.Oracle.pass then
        Alcotest.failf "healthy trace failed %s: %s" v.Oracle.name v.Oracle.detail)
    (Oracle.evaluate_obs healthy)

(* --- sanitizer ---------------------------------------------------- *)

let test_sanitizer () =
  check_trips "sanitizer"
    { healthy with Oracle.sanitizer_violation = Some "tau quorum below threshold" };
  check_passes "sanitizer" healthy

(* --- agreement ---------------------------------------------------- *)

let test_agreement_block_divergence () =
  (* Two honest replicas committed different blocks at seq 1.  Both
     blocks are individually valid (the client really submitted both
     timestamps), so only agreement may trip. *)
  let r1 =
    {
      (healthy_replica 1) with
      Oracle.digest = "digest-h1'";
      blocks = [ (1, [ (4, 2, Oracle.expected_op 0) ]) ];
      executed_for = [| 2 |];
      counters = [| 2 |];
    }
  in
  let trace = { (with_replicas [ healthy_replica 0; r1 ]) with Oracle.submitted = [| 2 |] } in
  check_trips "agreement" trace;
  check_passes "validity" trace;
  check_passes "at-most-once" trace;
  check_passes "agreement" healthy

let test_agreement_digest_divergence () =
  (* Same blocks, equal executed heights, different state digests. *)
  let r1 = { (healthy_replica 1) with Oracle.digest = "digest-forked" } in
  check_trips "agreement" (with_replicas [ healthy_replica 0; r1 ]);
  (* Different heights with different digests are fine: replica 1 is
     merely behind. *)
  let behind = { (healthy_replica 1) with Oracle.digest = "d0"; last_executed = 0; blocks = [] } in
  check_passes "agreement" (with_replicas [ healthy_replica 0; behind ])

(* --- validity ----------------------------------------------------- *)

let test_validity () =
  (* Executed operation from a client id that does not exist. *)
  let ghost =
    { (healthy_replica 0) with Oracle.blocks = [ (1, [ (9, 1, Oracle.expected_op 0) ]) ] }
  in
  let behind = { (healthy_replica 1) with Oracle.last_executed = 0; blocks = []; digest = "d0" } in
  let trace = with_replicas [ ghost; behind ] in
  check_trips "validity" trace;
  check_passes "agreement" trace;
  (* Executed operation whose bytes differ from what the client
     submitted. *)
  let forged =
    { (healthy_replica 0) with Oracle.blocks = [ (1, [ (4, 1, "write x=evil") ]) ] }
  in
  check_trips "validity" (with_replicas [ forged; behind ]);
  (* A timestamp the client never issued. *)
  let replayed =
    { (healthy_replica 0) with Oracle.blocks = [ (1, [ (4, 7, Oracle.expected_op 0) ]) ] }
  in
  check_trips "validity" (with_replicas [ replayed; behind ]);
  (* The view change's null filler is legitimate. *)
  let filler = { (healthy_replica 0) with Oracle.blocks = [ (1, [ (-1, 0, "") ]) ] } in
  check_passes "validity" (with_replicas [ filler; behind ]);
  check_passes "validity" healthy

(* --- checkpoints -------------------------------------------------- *)

let test_checkpoints () =
  (* π-certified checkpoints at the same sequence with different
     digests — exactly what a successful rollback attack manufactures
     when the victim re-executes a divergent history. *)
  let r0 = { (healthy_replica 0) with Oracle.certified = [ (8, "cp-a") ] } in
  let r1 = { (healthy_replica 1) with Oracle.certified = [ (8, "cp-b") ] } in
  check_trips "checkpoints" (with_replicas [ r0; r1 ]);
  (* Disjoint checkpoint sequences never compare. *)
  let r1' = { (healthy_replica 1) with Oracle.certified = [ (16, "cp-b") ] } in
  check_passes "checkpoints" (with_replicas [ r0; r1' ]);
  check_passes "checkpoints" healthy

(* --- at-most-once ------------------------------------------------- *)

let test_at_most_once () =
  (* Server side: a retried request executed twice leaves the counter
     ahead of the distinct-request count. *)
  let doubled = { (healthy_replica 0) with Oracle.counters = [| 2 |] } in
  check_trips "at-most-once" (with_replicas [ doubled; healthy_replica 1 ]);
  (* Client side: the accepted reply value must equal the request's
     timestamp (the k-th counter reading). *)
  check_trips "at-most-once" { healthy with Oracle.accepted = [| [ (1, "2") ] |] };
  (* A replica that never executed is not inspected server-side. *)
  let idle =
    { (healthy_replica 1) with Oracle.last_executed = 0; blocks = []; counters = [| 0 |]; digest = "d0" }
  in
  check_passes "at-most-once" (with_replicas [ healthy_replica 0; idle ]);
  check_passes "at-most-once" healthy

(* --- liveness ----------------------------------------------------- *)

let test_liveness () =
  (* Eventually-synchronous schedule, but a client finished only some
     of its closed-loop requests. *)
  check_trips "liveness" { healthy with Oracle.completed_ops = [| 0 |] };
  (* No GST: liveness is vacuous on fully asynchronous schedules. *)
  check_passes "liveness" { healthy with Oracle.completed_ops = [| 0 |]; gst_ms = None };
  check_passes "liveness" healthy

let () =
  Alcotest.run "sbft_oracle"
    [
      ( "oracle-traces",
        [
          Alcotest.test_case "healthy trace passes all six" `Quick test_healthy_passes_all;
          Alcotest.test_case "sanitizer" `Quick test_sanitizer;
          Alcotest.test_case "agreement: block divergence" `Quick test_agreement_block_divergence;
          Alcotest.test_case "agreement: digest divergence" `Quick test_agreement_digest_divergence;
          Alcotest.test_case "validity" `Quick test_validity;
          Alcotest.test_case "checkpoints" `Quick test_checkpoints;
          Alcotest.test_case "at-most-once" `Quick test_at_most_once;
          Alcotest.test_case "liveness" `Quick test_liveness;
        ] );
    ]
