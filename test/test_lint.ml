(* Unit tests for the sbft-lint AST pass: one accepting and one
   rejecting case per rule R1-R5, allowlist semantics, and exit codes
   (synthetic snippets attributed to in-scope / out-of-scope paths);
   unit tests for the R12 symbolic extractor and bounded-enumeration
   prover; the lint_fixtures/ corpus golden-diffed against
   expected.txt; and mutation self-checks over the real sources
   proving R9 (delete a wal_sync), R10 (delete a charge), R11 (disable
   a pacing guard), R12 (weaken quorum_vc), R13 (drop the timer-wrapper
   guard), R14 (drop a check_quorum) and R15 (wildcard a size case) are
   load-bearing. *)

module Lint = Sbft_analysis.Lint
module Discipline = Sbft_analysis.Discipline
module Quorum = Sbft_analysis.Quorum
module Msgflow = Sbft_analysis.Msgflow

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lint ~path source = Lint.lint_source ~path source

let has_rule r findings =
  List.exists (fun (f : Lint.finding) -> String.equal f.Lint.rule r) findings

let count_rule r findings =
  List.length
    (List.filter (fun (f : Lint.finding) -> String.equal f.Lint.rule r) findings)

let clean findings = check "no findings" true (findings = [])

(* ------------------------------------------------------------------ *)
(* R1: polymorphic comparison in protocol code *)

let test_r1_flags_poly_eq () =
  let fs = lint ~path:"lib/core/foo.ml" "let f a b = a = b" in
  check "poly = flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f a b = a <> b" in
  check "poly <> flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/pbft/foo.ml" "let f a b = compare a b" in
  check "poly compare flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/crypto/foo.ml" "let h x = Hashtbl.hash x" in
  check "Hashtbl.hash flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f a b = Stdlib.( = ) a b" in
  check "Stdlib.(=) flagged" true (has_rule "R1" fs)

let test_r1_accepts () =
  (* Explicit monomorphic equality. *)
  clean (lint ~path:"lib/core/foo.ml" "let f a b = Int.equal a b");
  (* Constant operand: tag-only check, exempt. *)
  clean (lint ~path:"lib/core/foo.ml" "let f a = a = None");
  clean (lint ~path:"lib/core/foo.ml" "let f a = 0 = a");
  clean (lint ~path:"lib/core/foo.ml" "let f a = a = Blue");
  (* Out of protocol scope. *)
  clean (lint ~path:"lib/sim/foo.ml" "let f a b = a = b");
  clean (lint ~path:"bin/foo.ml" "let f a b = compare a b")

(* ------------------------------------------------------------------ *)
(* R2: partial stdlib functions in protocol code *)

let test_r2_flags_partial () =
  let fs = lint ~path:"lib/core/foo.ml" "let f l = List.hd l" in
  check "List.hd flagged" true (has_rule "R2" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f o = Option.get o" in
  check "Option.get flagged" true (has_rule "R2" fs);
  let fs = lint ~path:"lib/pbft/foo.ml" "let f t k = Hashtbl.find t k" in
  check "Hashtbl.find flagged" true (has_rule "R2" fs)

let test_r2_accepts () =
  clean (lint ~path:"lib/core/foo.ml" "let f t k = Hashtbl.find_opt t k");
  clean (lint ~path:"lib/core/foo.ml" "let f l n = List.nth_opt l n");
  (* Out of protocol scope. *)
  clean (lint ~path:"lib/harness/foo.ml" "let f l = List.hd l")

(* ------------------------------------------------------------------ *)
(* R3: catch-all exception handlers (everywhere, including bin/) *)

let test_r3_flags_catch_all () =
  let fs = lint ~path:"lib/harness/foo.ml" "let f g = try g () with _ -> 0" in
  check "with _ flagged" true (has_rule "R3" fs);
  let fs = lint ~path:"bin/foo.ml" "let f g = try g () with _ -> 0" in
  check "with _ flagged in bin" true (has_rule "R3" fs);
  let fs =
    lint ~path:"lib/core/foo.ml" "let f g = match g () with x -> x | exception _ -> 0"
  in
  check "exception _ flagged" true (has_rule "R3" fs)

let test_r3_accepts () =
  clean (lint ~path:"lib/harness/foo.ml" "let f g = try g () with Not_found -> 0");
  clean
    (lint ~path:"lib/core/foo.ml"
       "let f g = match g () with x -> x | exception Exit -> 0")

(* ------------------------------------------------------------------ *)
(* R4: quorum-literal arithmetic outside config.ml *)

let test_r4_flags_quorum_literal () =
  let fs = lint ~path:"lib/core/foo.ml" "let q f = (3 * f) + 1" in
  check "3 * f flagged" true (has_rule "R4" fs);
  let fs = lint ~path:"lib/pbft/foo.ml" "let q t = (2 * t.f) + 1" in
  check "2 * t.f flagged" true (has_rule "R4" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let q c = c * 2" in
  check "c * 2 flagged" true (has_rule "R4" fs)

let test_r4_accepts () =
  (* The one blessed home for quorum arithmetic. *)
  clean (lint ~path:"lib/core/config.ml" "let sigma t = (3 * t.f) + t.c + 1");
  (* A multiplication that does not involve the fault parameters. *)
  clean (lint ~path:"lib/core/foo.ml" "let area w h = w * h");
  clean (lint ~path:"lib/core/foo.ml" "let twice x = 2 * x")

(* ------------------------------------------------------------------ *)
(* R5: lib/ modules need a .mli *)

let test_r5_missing_mli () =
  (match Lint.missing_mli ~path:"lib/core/foo.ml" ~mli_exists:false with
  | Some f ->
      check "rule is R5" true (String.equal f.Lint.rule "R5");
      check "path kept" true (String.equal f.Lint.file "lib/core/foo.ml")
  | None -> Alcotest.fail "expected an R5 finding");
  check "mli present -> ok" true
    (Lint.missing_mli ~path:"lib/core/foo.ml" ~mli_exists:true = None);
  check "bin/ exempt" true
    (Lint.missing_mli ~path:"bin/foo.ml" ~mli_exists:false = None)

(* ------------------------------------------------------------------ *)
(* Parse failures surface as findings, not exceptions *)

let test_parse_error () =
  let fs = lint ~path:"lib/core/foo.ml" "let let let" in
  check_int "single finding" 1 (List.length fs);
  check "parse rule" true (has_rule "parse" fs)

(* ------------------------------------------------------------------ *)
(* Allowlist *)

let finding_at ~rule ~file ~line =
  { Lint.rule; severity = Lint.Error; file; line; message = "test" }

let test_allowlist () =
  let allow =
    Lint.Allow.parse
      "# comment\n\
       R1 lib/core/foo.ml:3   # vetted\n\
       R2 lib/core/bar.ml     # whole file\n\
       * lib/core/baz.ml      # any rule\n"
  in
  let f_exact = finding_at ~rule:"R1" ~file:"lib/core/foo.ml" ~line:3 in
  let f_wrong_line = finding_at ~rule:"R1" ~file:"lib/core/foo.ml" ~line:4 in
  let f_wrong_rule = finding_at ~rule:"R2" ~file:"lib/core/foo.ml" ~line:3 in
  let f_file_wide = finding_at ~rule:"R2" ~file:"lib/core/bar.ml" ~line:17 in
  let f_wildcard = finding_at ~rule:"R4" ~file:"lib/core/baz.ml" ~line:1 in
  check "exact entry matches" true (Lint.Allow.is_allowed allow f_exact);
  check "line must match" false (Lint.Allow.is_allowed allow f_wrong_line);
  check "rule must match" false (Lint.Allow.is_allowed allow f_wrong_rule);
  check "file-wide entry" true (Lint.Allow.is_allowed allow f_file_wide);
  check "wildcard rule" true (Lint.Allow.is_allowed allow f_wildcard);
  check "empty allows nothing" false (Lint.Allow.is_allowed Lint.Allow.empty f_exact);
  let kept, allowed =
    Lint.filter allow [ f_exact; f_wrong_line; f_file_wide ]
  in
  check_int "kept" 1 (List.length kept);
  check_int "allowed" 2 (List.length allowed);
  (* Stale entries are reported. *)
  let unused = Lint.Allow.unused allow [ f_exact ] in
  check_int "two stale entries" 2 (List.length unused)

(* ------------------------------------------------------------------ *)
(* Exit codes *)

let test_exit_code () =
  check_int "no findings -> 0" 0 (Lint.exit_code []);
  check_int "error -> 1" 1
    (Lint.exit_code [ finding_at ~rule:"R1" ~file:"lib/core/foo.ml" ~line:1 ]);
  let warning =
    { Lint.rule = "R9"; severity = Lint.Warning; file = "lib/core/foo.ml";
      line = 1; message = "advisory" }
  in
  check_int "warning alone -> 0" 0 (Lint.exit_code [ warning ])

(* ------------------------------------------------------------------ *)
(* A multi-violation source is fully reported, sorted by line *)

let test_multiple_findings () =
  let src =
    "let a x y = x = y\n\
     let b l = List.hd l\n\
     let c g = try g () with _ -> 0\n"
  in
  let fs = lint ~path:"lib/core/foo.ml" src in
  check_int "R1" 1 (count_rule "R1" fs);
  check_int "R2" 1 (count_rule "R2" fs);
  check_int "R3" 1 (count_rule "R3" fs);
  let lines = List.map (fun (f : Lint.finding) -> f.Lint.line) fs in
  check "sorted by line" true (List.sort Int.compare lines = lines)

let index_from s start sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sub then Some i
    else go (i + 1)
  in
  go start

let has_finding ~rule ~needle findings =
  List.exists
    (fun (f : Lint.finding) ->
      String.equal f.Lint.rule rule
      && (match index_from f.Lint.message 0 needle with
         | Some _ -> true
         | None -> false))
    findings

(* ------------------------------------------------------------------ *)
(* R12: symbolic extractor + bounded-enumeration prover.  Definitions
   are extracted from synthetic config-like sources and the shared
   obligation list is discharged (or not) by Quorum.lint_defs. *)

let quorum ~path source =
  Quorum.lint_source ~defs:Quorum.default_defs ~path source

let defs_findings source =
  match Msgflow.parse ~path:"lib/core/config.ml" source with
  | None -> Alcotest.fail "definition source failed to parse"
  | Some structure -> (
      match Quorum.extract_defs ~path:"lib/core/config.ml" structure with
      | None -> Alcotest.fail "no threshold definitions extracted"
      | Some defs -> Quorum.lint_defs defs)

let canonical_defs_src =
  "let n t = (3 * t.f) + (2 * t.c) + 1\n\
   let sigma_threshold t = (3 * t.f) + t.c + 1\n\
   let tau_threshold t = (2 * t.f) + t.c + 1\n\
   let pi_threshold t = t.f + 1\n\
   let quorum_vc t = (2 * t.f) + (2 * t.c) + 1\n\
   let quorum_bft t = (2 * t.f) + 1\n"

let test_r12_extractor_canonical () =
  (* The canonical formulas extract as linear forms and discharge every
     obligation: no findings. *)
  Alcotest.(check (list string))
    "canonical definitions are clean" []
    (List.map Lint.pp_finding (defs_findings canonical_defs_src))

let test_r12_extractor_shapes () =
  (* Nested additions, subtraction and both ident/field spellings of
     the fault parameters all normalize to the same linear form. *)
  let src =
    "let n t = t.f + t.f + t.f + t.c + t.c + 1\n\
     let sigma_threshold t = (3 * t.f) + (t.c + 2) - 1\n\
     let tau_threshold cfg = (2 * cfg.f) + cfg.c + 1\n\
     let pi_threshold t = t.f + 1\n\
     let quorum_vc t = (2 * t.f) + (2 * t.c) + 1\n\
     let quorum_bft t = (2 * t.f) + 1\n"
  in
  Alcotest.(check (list string))
    "equivalent spellings are clean" []
    (List.map Lint.pp_finding (defs_findings src))

let test_r12_prover_weak_tau () =
  (* tau = 2f + c fails tau-tau intersection; the prover reports a
     concrete witness point on the admissible grid. *)
  let src =
    "let n t = (3 * t.f) + (2 * t.c) + 1\n\
     let sigma_threshold t = (3 * t.f) + t.c + 1\n\
     let tau_threshold t = (2 * t.f) + t.c\n\
     let pi_threshold t = t.f + 1\n\
     let quorum_vc t = (2 * t.f) + (2 * t.c) + 1\n\
     let quorum_bft t = (2 * t.f) + 1\n"
  in
  let fs = defs_findings src in
  check "weakened tau diverges" true (has_finding ~rule:"R12" ~needle:"diverges" fs);
  check "tau-tau intersection violated" true
    (has_finding ~rule:"R12" ~needle:"tau-tau-intersection" fs)

let test_r12_prover_nonlinear () =
  let src =
    "let n t = (3 * t.f) + (2 * t.c) + 1\n\
     let sigma_threshold t = t.f * t.f + 1\n\
     let tau_threshold t = (2 * t.f) + t.c + 1\n\
     let pi_threshold t = t.f + 1\n\
     let quorum_vc t = (2 * t.f) + (2 * t.c) + 1\n\
     let quorum_bft t = (2 * t.f) + 1\n"
  in
  check "non-linear sigma flagged" true
    (has_finding ~rule:"R12" ~needle:"not a linear form"
       (defs_findings src))

let test_r12_mutation_branches () =
  (* A mutation branch that weakens sigma is live (clean); one that
     restates the canonical formula is vacuous. *)
  let with_branch body =
    "type mutation = M\n\
     let n t = (3 * t.f) + (2 * t.c) + 1\n\
     let sigma_threshold t = match t.mutation with Some M -> " ^ body
    ^ " | _ -> (3 * t.f) + t.c + 1\n\
       let tau_threshold t = (2 * t.f) + t.c + 1\n\
       let pi_threshold t = t.f + 1\n\
       let quorum_vc t = (2 * t.f) + (2 * t.c) + 1\n\
       let quorum_bft t = (2 * t.f) + 1\n"
  in
  Alcotest.(check (list string))
    "weakening mutation is clean" []
    (List.map Lint.pp_finding (defs_findings (with_branch "(2 * t.f) + t.c")));
  check "canonical mutation is vacuous" true
    (has_finding ~rule:"R12" ~needle:"vacuous"
       (defs_findings (with_branch "(3 * t.f) + t.c + 1")))

let test_r12_adjust_annotation () =
  (* The pbft [quorum t - 1] shape: a local alias of quorum_bft,
     hand-adjusted by one implicit vote.  Without the annotation R12
     fires; with the matching annotation it is clean. *)
  let src annotate =
    "let quorum t = Config.quorum_bft (cfg t)\n\
     let check t =\n\
    \  (Hashtbl.length t.prepares >= quorum t - 1)" ^ annotate ^ "\n"
  in
  check "unannotated adjustment flagged" true
    (has_finding ~rule:"R12" ~needle:"[@quorum.adjust 1]"
       (quorum ~path:"lib/pbft/foo.ml" (src "")));
  Alcotest.(check (list string))
    "annotated adjustment is clean" []
    (List.map Lint.pp_finding
       (quorum ~path:"lib/pbft/foo.ml" (src " [@quorum.adjust 1]")))

let test_r15_cost_model_scope () =
  (* Every top-level variant table in cost_model.ml is a price table:
     wildcards are rejected there even without a msg type. *)
  let src = "let price = function Add -> 3 | _ -> 5\n" in
  check "wildcard price table flagged" true
    (has_finding ~rule:"R15" ~needle:"wildcard case in price"
       (quorum ~path:"lib/core/cost_model.ml" src));
  clean (quorum ~path:"lib/core/cost_model.ml"
           "let price = function Add -> 3 | Mul -> 5\n");
  (* The same table outside cost_model.ml is not wire-accounting. *)
  clean (quorum ~path:"lib/core/foo.ml" src)

let test_r12_obligation_report () =
  let report = Quorum.obligation_report Quorum.default_defs in
  let contains needle =
    match index_from report 0 needle with Some _ -> true | None -> false
  in
  check "report lists sigma formula" true (contains "sigma_threshold");
  check "report passes tau-tau" true (contains "PASS tau-tau-intersection");
  check "report has no failures" false (contains "FAIL")

(* ------------------------------------------------------------------ *)
(* Fixture corpus: every file under lint_fixtures/ is linted (with the
   prefix stripped so rule scoping sees lib/core/...) and the findings
   are diffed against the committed golden file. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc e -> walk_ml acc (Filename.concat path e)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let by_line_rule (a : Lint.finding) (b : Lint.finding) =
  match Int.compare a.Lint.line b.Lint.line with
  | 0 -> String.compare a.Lint.rule b.Lint.rule
  | n -> n

let lint_fixture disk_path =
  let prefix = "lint_fixtures/" in
  let lint_path =
    String.sub disk_path (String.length prefix)
      (String.length disk_path - String.length prefix)
  in
  let source = read_file disk_path in
  (* Only the r05_* fixtures exercise the missing-mli rule; no other
     fixture ships an interface on purpose. *)
  let r5 =
    if starts_with ~prefix:"r05" (Filename.basename disk_path) then
      match
        Lint.missing_mli ~path:lint_path
          ~mli_exists:(Sys.file_exists (disk_path ^ "i"))
      with
      | Some f -> [ f ]
      | None -> []
    else []
  in
  List.sort by_line_rule
    (r5
    @ Lint.lint_source ~path:lint_path source
    @ Discipline.lint_source ~path:lint_path source
    @ Quorum.lint_source ~defs:Quorum.default_defs ~path:lint_path source)

let test_fixture_golden () =
  let files = walk_ml [] "lint_fixtures" |> List.sort String.compare in
  Alcotest.(check bool) "corpus present" true (List.length files > 20);
  let actual =
    String.concat ""
      (List.concat_map
         (fun disk_path ->
           List.map (fun f -> Lint.pp_finding f ^ "\n") (lint_fixture disk_path))
         files)
  in
  let expected = read_file "lint_fixtures/expected.txt" in
  Alcotest.(check string) "fixture findings match golden" expected actual

(* ------------------------------------------------------------------ *)
(* Mutation self-checks against the real replica implementation: the
   acceptance bar for R9-R11 is that deleting one wal_sync, one charge,
   or one pacing guard makes the lint fail at the exact site.  The
   allowlist is applied so the checks prove a *new* finding appears,
   not that vetted ones exist.  (A mutation shifts line numbers below
   the edit, so line-pinned allow entries there go stale; the checks
   therefore assert presence of the expected finding, not counts.) *)

let replica_path = "../lib/core/replica.ml"
let config_path = "../lib/core/config.ml"
let types_path = "../lib/core/types.ml"

let lint_real ~path source =
  let findings =
    Lint.lint_source ~path source
    @ Discipline.lint_source ~path source
    @ Quorum.lint_source ~defs:Quorum.default_defs ~path source
  in
  let allow = Lint.Allow.parse (read_file "../lint.allow") in
  let kept, _ = Lint.filter allow findings in
  kept

let lint_replica source = lint_real ~path:"lib/core/replica.ml" source

(* Replace the first occurrence of [needle] at-or-after [after] with
   [repl], failing loudly if either string has drifted out of the
   source (so a refactor cannot silently turn these into no-ops). *)
let mutate source ~after ~needle ~repl =
  match index_from source 0 after with
  | None -> Alcotest.fail (Printf.sprintf "mutation anchor not found: %s" after)
  | Some a -> (
      match index_from source (a + String.length after) needle with
      | None -> Alcotest.fail (Printf.sprintf "mutation needle not found: %s" needle)
      | Some i ->
          String.concat ""
            [
              String.sub source 0 i;
              repl;
              String.sub source
                (i + String.length needle)
                (String.length source - i - String.length needle);
            ])

let test_replica_baseline () =
  let kept = lint_replica (read_file replica_path) in
  Alcotest.(check (list string))
    "no unvetted findings in pristine replica.ml" []
    (List.map Lint.pp_finding kept)

(* R9: drop the wal_sync between logging Accepted_pre_prepare and
   sending the Sign_share (the first occurrence is on_pre_prepare; the
   second is adopt_pre_prepare on the view-change path). *)
let test_mutation_r9_sign_share () =
  let mutated =
    mutate (read_file replica_path)
      ~after:"Accepted_pre_prepare { seq; view; ops = wal_ops reqs });"
      ~needle:"wal_sync t ctx;" ~repl:""
  in
  let kept = lint_replica mutated in
  Alcotest.(check bool) "R9 finding names Sign_share" true
    (has_finding ~rule:"R9" ~needle:"Sign_share" kept)

(* R9 again on an unrelated record/message pair: drop the wal_sync
   after logging View_change_started, before the View_change vote. *)
let test_mutation_r9_view_change () =
  let mutated =
    mutate (read_file replica_path)
      ~after:"View_change_started target_view);"
      ~needle:"wal_sync t ctx;" ~repl:""
  in
  let kept = lint_replica mutated in
  Alcotest.(check bool) "R9 finding names View_change" true
    (has_finding ~rule:"R9" ~needle:"View_change" kept)

(* R10: drop the wal_append charge inside wal_log, leaving the
   Wal.append call unpriced. *)
let test_mutation_r10_wal_append () =
  let mutated =
    mutate (read_file replica_path) ~after:"let wal_log t ctx record ="
      ~needle:
        "Engine.charge ctx (Cost_model.Tally.note \"wal_append\" (Cost_model.wal_append bytes))"
      ~repl:"ignore bytes"
  in
  let kept = lint_replica mutated in
  Alcotest.(check bool) "R10 finding names Wal.append" true
    (has_finding ~rule:"R10" ~needle:"Wal.append" kept)

(* R11: disable the per-requester pacing guard in on_get_state, turning
   Get_state floods back into State_resp floods. *)
let test_mutation_r11_get_state () =
  let mutated =
    mutate (read_file replica_path) ~after:"and on_get_state"
      ~needle:"if allow then begin" ~repl:"if true then begin"
  in
  let kept = lint_replica mutated in
  Alcotest.(check bool) "R11 finding names State_resp" true
    (has_finding ~rule:"R11" ~needle:"State_resp" kept)

(* R12: weaken the real view-change quorum to 2f+2c.  The symbolic
   prover must name the violated intersection obligation. *)
let test_mutation_r12_weak_vc () =
  let mutated =
    mutate (read_file config_path) ~after:"let quorum_vc t ="
      ~needle:"| _ -> (2 * t.f) + (2 * t.c) + 1"
      ~repl:"| _ -> (2 * t.f) + (2 * t.c)"
  in
  let kept = lint_real ~path:"lib/core/config.ml" mutated in
  Alcotest.(check bool) "R12 finding names tau-vc-intersection" true
    (has_finding ~rule:"R12" ~needle:"tau-vc-intersection" kept)

(* R13: drop the retire guard from the replica's timer wrapper — every
   armed callback becomes a potential zombie tick. *)
let test_mutation_r13_timer_guard () =
  let mutated =
    mutate (read_file replica_path) ~after:"let set_replica_timer"
      ~needle:"if not t.retired then f ctx" ~repl:"f ctx"
  in
  let kept = lint_replica mutated in
  Alcotest.(check bool) "R13 finding at the raw arm site" true
    (has_finding ~rule:"R13" ~needle:"set_timer arms a timer" kept)

(* R14: remove the check_quorum pairing the pi-threshold view-change
   join decision. *)
let test_mutation_r14_drop_check () =
  let mutated =
    mutate (read_file replica_path) ~after:"and on_view_change"
      ~needle:"Sanitizer.check_quorum t.san Sanitizer.Pi ~count:support;"
      ~repl:""
  in
  let kept = lint_replica mutated in
  Alcotest.(check bool) "R14 finding demands check_quorum Pi" true
    (has_finding ~rule:"R14" ~needle:"check_quorum Pi" kept)

(* R15: hide a message constructor behind a wildcard in the real wire
   size table. *)
let test_mutation_r15_wildcard_size () =
  let mutated =
    mutate (read_file types_path) ~after:"let size = function"
      ~needle:"| Sign_state _ -> header + share_size + 32"
      ~repl:"| _ -> header + share_size + 32"
  in
  let kept = lint_real ~path:"lib/core/types.ml" mutated in
  Alcotest.(check bool) "R15 finding at the wildcarded size case" true
    (has_finding ~rule:"R15" ~needle:"wildcard case in size" kept)

let () =
  Alcotest.run "sbft_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "r1 flags" `Quick test_r1_flags_poly_eq;
          Alcotest.test_case "r1 accepts" `Quick test_r1_accepts;
          Alcotest.test_case "r2 flags" `Quick test_r2_flags_partial;
          Alcotest.test_case "r2 accepts" `Quick test_r2_accepts;
          Alcotest.test_case "r3 flags" `Quick test_r3_flags_catch_all;
          Alcotest.test_case "r3 accepts" `Quick test_r3_accepts;
          Alcotest.test_case "r4 flags" `Quick test_r4_flags_quorum_literal;
          Alcotest.test_case "r4 accepts" `Quick test_r4_accepts;
          Alcotest.test_case "r5 missing mli" `Quick test_r5_missing_mli;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "multiple findings" `Quick test_multiple_findings;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "r12 extractor canonical" `Quick
            test_r12_extractor_canonical;
          Alcotest.test_case "r12 extractor shapes" `Quick
            test_r12_extractor_shapes;
          Alcotest.test_case "r12 prover weak tau" `Quick
            test_r12_prover_weak_tau;
          Alcotest.test_case "r12 prover nonlinear" `Quick
            test_r12_prover_nonlinear;
          Alcotest.test_case "r12 mutation branches" `Quick
            test_r12_mutation_branches;
          Alcotest.test_case "r12 adjust annotation" `Quick
            test_r12_adjust_annotation;
          Alcotest.test_case "r15 cost-model scope" `Quick
            test_r15_cost_model_scope;
          Alcotest.test_case "r12 obligation report" `Quick
            test_r12_obligation_report;
        ] );
      ( "driver",
        [
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "exit code" `Quick test_exit_code;
        ] );
      ( "fixtures",
        [ Alcotest.test_case "golden corpus" `Quick test_fixture_golden ] );
      ( "mutations",
        [
          Alcotest.test_case "replica baseline clean" `Quick
            test_replica_baseline;
          Alcotest.test_case "r9 sign-share" `Quick test_mutation_r9_sign_share;
          Alcotest.test_case "r9 view-change" `Quick
            test_mutation_r9_view_change;
          Alcotest.test_case "r10 wal-append" `Quick
            test_mutation_r10_wal_append;
          Alcotest.test_case "r11 get-state" `Quick
            test_mutation_r11_get_state;
          Alcotest.test_case "r12 weak-vc" `Quick test_mutation_r12_weak_vc;
          Alcotest.test_case "r13 timer-guard" `Quick
            test_mutation_r13_timer_guard;
          Alcotest.test_case "r14 drop-check" `Quick
            test_mutation_r14_drop_check;
          Alcotest.test_case "r15 wildcard-size" `Quick
            test_mutation_r15_wildcard_size;
        ] );
    ]
