(* Unit tests for the sbft-lint AST pass: one accepting and one
   rejecting case per rule R1-R5, allowlist semantics, and exit codes.
   Sources are synthetic snippets attributed to in-scope / out-of-scope
   paths rather than files on disk. *)

module Lint = Sbft_analysis.Lint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lint ~path source = Lint.lint_source ~path source

let has_rule r findings =
  List.exists (fun (f : Lint.finding) -> String.equal f.Lint.rule r) findings

let count_rule r findings =
  List.length
    (List.filter (fun (f : Lint.finding) -> String.equal f.Lint.rule r) findings)

let clean findings = check "no findings" true (findings = [])

(* ------------------------------------------------------------------ *)
(* R1: polymorphic comparison in protocol code *)

let test_r1_flags_poly_eq () =
  let fs = lint ~path:"lib/core/foo.ml" "let f a b = a = b" in
  check "poly = flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f a b = a <> b" in
  check "poly <> flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/pbft/foo.ml" "let f a b = compare a b" in
  check "poly compare flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/crypto/foo.ml" "let h x = Hashtbl.hash x" in
  check "Hashtbl.hash flagged" true (has_rule "R1" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f a b = Stdlib.( = ) a b" in
  check "Stdlib.(=) flagged" true (has_rule "R1" fs)

let test_r1_accepts () =
  (* Explicit monomorphic equality. *)
  clean (lint ~path:"lib/core/foo.ml" "let f a b = Int.equal a b");
  (* Constant operand: tag-only check, exempt. *)
  clean (lint ~path:"lib/core/foo.ml" "let f a = a = None");
  clean (lint ~path:"lib/core/foo.ml" "let f a = 0 = a");
  clean (lint ~path:"lib/core/foo.ml" "let f a = a = Blue");
  (* Out of protocol scope. *)
  clean (lint ~path:"lib/sim/foo.ml" "let f a b = a = b");
  clean (lint ~path:"bin/foo.ml" "let f a b = compare a b")

(* ------------------------------------------------------------------ *)
(* R2: partial stdlib functions in protocol code *)

let test_r2_flags_partial () =
  let fs = lint ~path:"lib/core/foo.ml" "let f l = List.hd l" in
  check "List.hd flagged" true (has_rule "R2" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let f o = Option.get o" in
  check "Option.get flagged" true (has_rule "R2" fs);
  let fs = lint ~path:"lib/pbft/foo.ml" "let f t k = Hashtbl.find t k" in
  check "Hashtbl.find flagged" true (has_rule "R2" fs)

let test_r2_accepts () =
  clean (lint ~path:"lib/core/foo.ml" "let f t k = Hashtbl.find_opt t k");
  clean (lint ~path:"lib/core/foo.ml" "let f l n = List.nth_opt l n");
  (* Out of protocol scope. *)
  clean (lint ~path:"lib/harness/foo.ml" "let f l = List.hd l")

(* ------------------------------------------------------------------ *)
(* R3: catch-all exception handlers (everywhere, including bin/) *)

let test_r3_flags_catch_all () =
  let fs = lint ~path:"lib/harness/foo.ml" "let f g = try g () with _ -> 0" in
  check "with _ flagged" true (has_rule "R3" fs);
  let fs = lint ~path:"bin/foo.ml" "let f g = try g () with _ -> 0" in
  check "with _ flagged in bin" true (has_rule "R3" fs);
  let fs =
    lint ~path:"lib/core/foo.ml" "let f g = match g () with x -> x | exception _ -> 0"
  in
  check "exception _ flagged" true (has_rule "R3" fs)

let test_r3_accepts () =
  clean (lint ~path:"lib/harness/foo.ml" "let f g = try g () with Not_found -> 0");
  clean
    (lint ~path:"lib/core/foo.ml"
       "let f g = match g () with x -> x | exception Exit -> 0")

(* ------------------------------------------------------------------ *)
(* R4: quorum-literal arithmetic outside config.ml *)

let test_r4_flags_quorum_literal () =
  let fs = lint ~path:"lib/core/foo.ml" "let q f = (3 * f) + 1" in
  check "3 * f flagged" true (has_rule "R4" fs);
  let fs = lint ~path:"lib/pbft/foo.ml" "let q t = (2 * t.f) + 1" in
  check "2 * t.f flagged" true (has_rule "R4" fs);
  let fs = lint ~path:"lib/core/foo.ml" "let q c = c * 2" in
  check "c * 2 flagged" true (has_rule "R4" fs)

let test_r4_accepts () =
  (* The one blessed home for quorum arithmetic. *)
  clean (lint ~path:"lib/core/config.ml" "let sigma t = (3 * t.f) + t.c + 1");
  (* A multiplication that does not involve the fault parameters. *)
  clean (lint ~path:"lib/core/foo.ml" "let area w h = w * h");
  clean (lint ~path:"lib/core/foo.ml" "let twice x = 2 * x")

(* ------------------------------------------------------------------ *)
(* R5: lib/ modules need a .mli *)

let test_r5_missing_mli () =
  (match Lint.missing_mli ~path:"lib/core/foo.ml" ~mli_exists:false with
  | Some f ->
      check "rule is R5" true (String.equal f.Lint.rule "R5");
      check "path kept" true (String.equal f.Lint.file "lib/core/foo.ml")
  | None -> Alcotest.fail "expected an R5 finding");
  check "mli present -> ok" true
    (Lint.missing_mli ~path:"lib/core/foo.ml" ~mli_exists:true = None);
  check "bin/ exempt" true
    (Lint.missing_mli ~path:"bin/foo.ml" ~mli_exists:false = None)

(* ------------------------------------------------------------------ *)
(* Parse failures surface as findings, not exceptions *)

let test_parse_error () =
  let fs = lint ~path:"lib/core/foo.ml" "let let let" in
  check_int "single finding" 1 (List.length fs);
  check "parse rule" true (has_rule "parse" fs)

(* ------------------------------------------------------------------ *)
(* Allowlist *)

let finding_at ~rule ~file ~line =
  { Lint.rule; severity = Lint.Error; file; line; message = "test" }

let test_allowlist () =
  let allow =
    Lint.Allow.parse
      "# comment\n\
       R1 lib/core/foo.ml:3   # vetted\n\
       R2 lib/core/bar.ml     # whole file\n\
       * lib/core/baz.ml      # any rule\n"
  in
  let f_exact = finding_at ~rule:"R1" ~file:"lib/core/foo.ml" ~line:3 in
  let f_wrong_line = finding_at ~rule:"R1" ~file:"lib/core/foo.ml" ~line:4 in
  let f_wrong_rule = finding_at ~rule:"R2" ~file:"lib/core/foo.ml" ~line:3 in
  let f_file_wide = finding_at ~rule:"R2" ~file:"lib/core/bar.ml" ~line:17 in
  let f_wildcard = finding_at ~rule:"R4" ~file:"lib/core/baz.ml" ~line:1 in
  check "exact entry matches" true (Lint.Allow.is_allowed allow f_exact);
  check "line must match" false (Lint.Allow.is_allowed allow f_wrong_line);
  check "rule must match" false (Lint.Allow.is_allowed allow f_wrong_rule);
  check "file-wide entry" true (Lint.Allow.is_allowed allow f_file_wide);
  check "wildcard rule" true (Lint.Allow.is_allowed allow f_wildcard);
  check "empty allows nothing" false (Lint.Allow.is_allowed Lint.Allow.empty f_exact);
  let kept, allowed =
    Lint.filter allow [ f_exact; f_wrong_line; f_file_wide ]
  in
  check_int "kept" 1 (List.length kept);
  check_int "allowed" 2 (List.length allowed);
  (* Stale entries are reported. *)
  let unused = Lint.Allow.unused allow [ f_exact ] in
  check_int "two stale entries" 2 (List.length unused)

(* ------------------------------------------------------------------ *)
(* Exit codes *)

let test_exit_code () =
  check_int "no findings -> 0" 0 (Lint.exit_code []);
  check_int "error -> 1" 1
    (Lint.exit_code [ finding_at ~rule:"R1" ~file:"lib/core/foo.ml" ~line:1 ]);
  let warning =
    { Lint.rule = "R9"; severity = Lint.Warning; file = "lib/core/foo.ml";
      line = 1; message = "advisory" }
  in
  check_int "warning alone -> 0" 0 (Lint.exit_code [ warning ])

(* ------------------------------------------------------------------ *)
(* A multi-violation source is fully reported, sorted by line *)

let test_multiple_findings () =
  let src =
    "let a x y = x = y\n\
     let b l = List.hd l\n\
     let c g = try g () with _ -> 0\n"
  in
  let fs = lint ~path:"lib/core/foo.ml" src in
  check_int "R1" 1 (count_rule "R1" fs);
  check_int "R2" 1 (count_rule "R2" fs);
  check_int "R3" 1 (count_rule "R3" fs);
  let lines = List.map (fun (f : Lint.finding) -> f.Lint.line) fs in
  check "sorted by line" true (List.sort Int.compare lines = lines)

let () =
  Alcotest.run "sbft_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "r1 flags" `Quick test_r1_flags_poly_eq;
          Alcotest.test_case "r1 accepts" `Quick test_r1_accepts;
          Alcotest.test_case "r2 flags" `Quick test_r2_flags_partial;
          Alcotest.test_case "r2 accepts" `Quick test_r2_accepts;
          Alcotest.test_case "r3 flags" `Quick test_r3_flags_catch_all;
          Alcotest.test_case "r3 accepts" `Quick test_r3_accepts;
          Alcotest.test_case "r4 flags" `Quick test_r4_flags_quorum_literal;
          Alcotest.test_case "r4 accepts" `Quick test_r4_accepts;
          Alcotest.test_case "r5 missing mli" `Quick test_r5_missing_mli;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "multiple findings" `Quick test_multiple_findings;
        ] );
      ( "driver",
        [
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "exit code" `Quick test_exit_code;
        ] );
    ]
